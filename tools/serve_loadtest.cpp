// serve_loadtest: concurrent load-test client for the copift_serve daemon.
//
// Spawns N client connections that issue a mix of identical and distinct
// sweep requests (the identical ones must be deduplicated by the server's
// result cache / in-flight coalescing), validates that every response
// arrives complete, then re-issues the same workload as a warm phase and
// reports cold vs warm-cache latency and requests/sec — optionally as a
// BENCH_serving.json the CI regression gate consumes.
//
//   serve_loadtest --port 7774 --clients 8 --requests 4 --json BENCH.json
//
// Exits non-zero when any response is missing/incomplete/an error, or when
// --expect-dedupe is given and the server's stats do not prove that fewer
// points were simulated than requested.
#include <algorithm>
#include <arpa/inet.h>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <mutex>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <string>
#include <sys/socket.h>
#include <thread>
#include <unistd.h>
#include <vector>

#include "common/error.hpp"
#include "serve/net.hpp"
#include "serve/protocol.hpp"

namespace {

using namespace copift;
using clock_type = std::chrono::steady_clock;

struct Options {
  std::uint16_t port = 7774;
  unsigned clients = 8;
  unsigned requests = 4;  // per client per phase
  std::string json_path;
  bool expect_dedupe = false;
};

/// One blocking client connection speaking the line-delimited JSON protocol.
class Client {
 public:
  explicit Client(std::uint16_t port) {
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd_ < 0) throw Error("socket: " + std::string(std::strerror(errno)));
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(port);
    if (::connect(fd_, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) != 0) {
      const std::string what = std::strerror(errno);
      ::close(fd_);
      throw Error("connect to 127.0.0.1:" + std::to_string(port) + ": " + what);
    }
    const int one = 1;
    ::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    conn_ = std::make_unique<serve::Connection>(fd_);  // takes fd ownership
  }

  /// Send one request and block until its result/error event (progress and
  /// accepted events are counted but not returned). 60 s safety timeout.
  serve::Json roundtrip(const std::string& line, std::uint64_t id) {
    if (!conn_->send_line(line)) throw Error("send failed (server closed connection?)");
    std::string reply;
    while (true) {
      const auto status = conn_->read_line(reply, -1, 60000, 1 << 24);
      if (status != serve::Connection::ReadStatus::kLine) {
        throw Error("connection lost waiting for response to request " + std::to_string(id) +
                    " (status " + std::to_string(static_cast<int>(status)) + ")");
      }
      const serve::Json doc = serve::Json::parse(reply);
      if (doc.at("id").as_u64() != id) continue;  // stale event from earlier request
      const std::string& event = doc.at("event").as_string();
      if (event == "progress") {
        ++progress_events_;
        continue;
      }
      if (event == "accepted") continue;
      return doc;  // result, error, health or stats
    }
  }

  [[nodiscard]] std::uint64_t progress_events() const noexcept { return progress_events_; }

 private:
  int fd_ = -1;
  std::unique_ptr<serve::Connection> conn_;
  std::uint64_t progress_events_ = 0;
};

struct PhaseResult {
  std::vector<double> latencies_ms;
  double wall_seconds = 0.0;
  unsigned failures = 0;
  std::uint64_t rows = 0;
  std::uint64_t progress_events = 0;
};

/// The request each (client, index) issues. Even indices are the SHARED
/// sweep — byte-identical across every client and iteration, so all but the
/// first must be served from cache/coalescing. Odd indices are distinct per
/// client+index (unique seeds), forcing real simulations.
std::string request_line(unsigned client, unsigned index, std::uint64_t id) {
  if (index % 2 == 0) {
    return "{\"id\":" + std::to_string(id) +
           ",\"type\":\"run\",\"workloads\":[\"exp\"],"
           "\"variants\":[\"copift\",\"baseline\"],\"block\":[16,32,64],\"n\":[384]}";
  }
  const unsigned seed = 1000 + client * 131 + index;
  return "{\"id\":" + std::to_string(id) +
         ",\"type\":\"run\",\"workloads\":[\"axpy\"],\"variants\":[\"copift\"],"
         "\"n\":[256],\"seeds\":[" + std::to_string(seed) + "]}";
}

serve::Json roundtrip_checked(Client& client, unsigned c, unsigned r, std::uint64_t id,
                              unsigned& failures);

PhaseResult run_phase(const Options& opt, const char* phase_name) {
  PhaseResult result;
  std::mutex mutex;
  std::vector<std::thread> threads;
  const auto t0 = clock_type::now();
  for (unsigned c = 0; c < opt.clients; ++c) {
    threads.emplace_back([&, c] {
      std::vector<double> latencies;
      unsigned failures = 0;
      std::uint64_t rows = 0;
      std::uint64_t progress = 0;
      try {
        Client client(opt.port);
        for (unsigned r = 0; r < opt.requests; ++r) {
          const std::uint64_t id = static_cast<std::uint64_t>(c) * 10000 + r + 1;
          const auto start = clock_type::now();
          const serve::Json reply = roundtrip_checked(client, c, r, id, failures);
          latencies.push_back(
              std::chrono::duration<double, std::milli>(clock_type::now() - start).count());
          if (reply.is_object() && reply.find("rows") != nullptr) {
            rows += reply.at("rows").as_array().size();
          }
        }
        progress = client.progress_events();
      } catch (const std::exception& e) {
        std::fprintf(stderr, "[%s] client %u: %s\n", phase_name, c, e.what());
        failures += opt.requests;
      }
      std::lock_guard lock(mutex);
      result.latencies_ms.insert(result.latencies_ms.end(), latencies.begin(), latencies.end());
      result.failures += failures;
      result.rows += rows;
      result.progress_events += progress;
    });
  }
  for (auto& t : threads) t.join();
  result.wall_seconds = std::chrono::duration<double>(clock_type::now() - t0).count();
  return result;
}

serve::Json roundtrip_checked(Client& client, unsigned c, unsigned r, std::uint64_t id,
                              unsigned& failures) {
  const std::string line = request_line(c, r, id);
  serve::Json reply = client.roundtrip(line, id);
  const std::string& event = reply.at("event").as_string();
  if (event != "result") {
    std::fprintf(stderr, "client %u request %llu: got %s: %s\n", c,
                 static_cast<unsigned long long>(id), event.c_str(), reply.dump().c_str());
    ++failures;
    return reply;
  }
  const auto& rows = reply.at("rows").as_array();
  if (rows.empty()) {
    std::fprintf(stderr, "client %u request %llu: empty result\n", c,
                 static_cast<unsigned long long>(id));
    ++failures;
    return reply;
  }
  for (const auto& row : rows) {
    if (!row.at("verified").as_bool()) {
      std::fprintf(stderr, "client %u request %llu: unverified row %s\n", c,
                   static_cast<unsigned long long>(id), row.dump().c_str());
      ++failures;
    }
  }
  return reply;
}

double mean(const std::vector<double>& v) {
  if (v.empty()) return 0.0;
  double sum = 0.0;
  for (const double x : v) sum += x;
  return sum / static_cast<double>(v.size());
}

double percentile(std::vector<double> v, double p) {
  if (v.empty()) return 0.0;
  std::sort(v.begin(), v.end());
  const auto idx = static_cast<std::size_t>(p * static_cast<double>(v.size() - 1));
  return v[idx];
}

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  try {
    int i = 1;
    const auto value_of = [&](const std::string& flag) -> const char* {
      if (i + 1 >= argc) throw Error(flag + " requires a value");
      return argv[++i];
    };
    for (; i < argc; ++i) {
      const std::string arg = argv[i];
      if (arg == "--port") opt.port = static_cast<std::uint16_t>(std::stoul(value_of(arg)));
      else if (arg == "--clients") opt.clients = static_cast<unsigned>(std::stoul(value_of(arg)));
      else if (arg == "--requests") opt.requests = static_cast<unsigned>(std::stoul(value_of(arg)));
      else if (arg == "--json") opt.json_path = value_of(arg);
      else if (arg == "--expect-dedupe") opt.expect_dedupe = true;
      else if (arg == "--help" || arg == "-h") {
        std::printf("usage: serve_loadtest [--port N] [--clients N] [--requests N]\n"
                    "                      [--json FILE] [--expect-dedupe]\n");
        return 0;
      } else {
        throw Error("unknown argument '" + arg + "'");
      }
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 2;
  }

  try {
    std::printf("load test: %u clients x %u requests against 127.0.0.1:%u\n", opt.clients,
                opt.requests, opt.port);

    const PhaseResult cold = run_phase(opt, "cold");
    const PhaseResult warm = run_phase(opt, "warm");

    // One final stats request proves (or disproves) that deduplication fired.
    Client probe(opt.port);
    const serve::Json stats = probe.roundtrip("{\"id\":999999,\"type\":\"stats\"}", 999999);
    const std::uint64_t requested = stats.at("points_requested").as_u64();
    const std::uint64_t simulated = stats.at("points_simulated").as_u64();
    const auto& cache = stats.at("cache");
    const std::uint64_t hits = cache.at("hits").as_u64();
    const std::uint64_t coalesced = cache.at("coalesced").as_u64();

    const auto report = [](const char* name, const PhaseResult& r, unsigned total_requests) {
      std::printf("%-5s %u requests in %.3f s (%.1f req/s): latency mean %.2f ms, "
                  "p50 %.2f ms, max %.2f ms; %llu rows, %llu progress events, %u failures\n",
                  name, total_requests, r.wall_seconds,
                  r.wall_seconds > 0 ? static_cast<double>(total_requests) / r.wall_seconds : 0.0,
                  mean(r.latencies_ms), percentile(r.latencies_ms, 0.5),
                  r.latencies_ms.empty()
                      ? 0.0
                      : *std::max_element(r.latencies_ms.begin(), r.latencies_ms.end()),
                  static_cast<unsigned long long>(r.rows),
                  static_cast<unsigned long long>(r.progress_events), r.failures);
    };
    const unsigned per_phase = opt.clients * opt.requests;
    report("cold", cold, per_phase);
    report("warm", warm, per_phase);
    std::printf("dedupe: %llu points requested, %llu simulated, %llu cache hits, "
                "%llu coalesced\n",
                static_cast<unsigned long long>(requested),
                static_cast<unsigned long long>(simulated),
                static_cast<unsigned long long>(hits),
                static_cast<unsigned long long>(coalesced));

    if (!opt.json_path.empty()) {
      std::FILE* out = std::fopen(opt.json_path.c_str(), "w");
      if (out == nullptr) throw Error("cannot open " + opt.json_path + " for writing");
      const double cold_rps =
          cold.wall_seconds > 0 ? static_cast<double>(per_phase) / cold.wall_seconds : 0.0;
      const double warm_rps =
          warm.wall_seconds > 0 ? static_cast<double>(per_phase) / warm.wall_seconds : 0.0;
      std::fprintf(out,
                   "{\n"
                   "  \"schema\": \"copift-bench-simulator/1\",\n"
                   "  \"generated_by\": \"serve_loadtest (%u clients x %u requests)\",\n"
                   "  \"benchmarks\": [\n"
                   "    {\"name\": \"serve_cold_requests\", \"items_per_sec\": %.3f,\n"
                   "     \"latency_ms_mean\": %.3f, \"latency_ms_p50\": %.3f},\n"
                   "    {\"name\": \"serve_warm_requests\", \"items_per_sec\": %.3f,\n"
                   "     \"latency_ms_mean\": %.3f, \"latency_ms_p50\": %.3f}\n"
                   "  ]\n"
                   "}\n",
                   opt.clients, opt.requests, cold_rps, mean(cold.latencies_ms),
                   percentile(cold.latencies_ms, 0.5), warm_rps, mean(warm.latencies_ms),
                   percentile(warm.latencies_ms, 0.5));
      std::fclose(out);
      std::printf("wrote %s\n", opt.json_path.c_str());
    }

    if (cold.failures + warm.failures > 0) {
      std::fprintf(stderr, "FAIL: %u responses missing or invalid\n",
                   cold.failures + warm.failures);
      return 1;
    }
    if (opt.expect_dedupe) {
      if (simulated >= requested) {
        std::fprintf(stderr, "FAIL: dedupe never fired (%llu simulated of %llu requested)\n",
                     static_cast<unsigned long long>(simulated),
                     static_cast<unsigned long long>(requested));
        return 1;
      }
      if (hits + coalesced == 0) {
        std::fprintf(stderr, "FAIL: no cache hits or coalesced requests recorded\n");
        return 1;
      }
    }
    std::printf("PASS\n");
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}

#include <cstdio>
#include "kernels/runner.hpp"
using namespace copift::kernels;
using copift::sim::ActivityCounters;
int main() {
  const char* names[] = {"exp","log","poly_lcg","pi_lcg","poly_x","pi_x"};
  KernelId ids[] = {KernelId::kExp, KernelId::kLog, KernelId::kPolyLcg, KernelId::kPiLcg, KernelId::kPolyXoshiro, KernelId::kPiXoshiro};
  for (int k = 0; k < 6; ++k) {
    for (auto v : {Variant::kBaseline, Variant::kCopift}) {
      KernelConfig cfg; cfg.n = 3840; cfg.block = 96;
      auto r = run_kernel(generate(ids[k], v, cfg));
      const auto& c = r.region;
      double cy = (double)c.cycles;
      printf("%-8s %-6s cyc=%7llu tcdm/cy=%.3f l0ref/cy=%.4f ssr/cy=%.3f dma_busy/cy=%.4f fp/cy=%.3f int/cy=%.3f\n",
        names[k], v==Variant::kBaseline?"base":"copift", (unsigned long long)c.cycles,
        (c.tcdm_reads+c.tcdm_writes)/cy, c.l0_refills/cy, c.ssr_elements/cy, c.dma_busy_cycles/cy,
        (double)c.fp_retired/cy, (double)c.int_retired/cy);
    }
  }
  return 0;
}

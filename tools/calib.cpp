// Energy-model calibration dump: per-kernel activity rates used to fit the
// per-event energies (see src/energy). Runs the 12-point grid on the engine.
#include <cstdio>
#include <cstring>

#include "common/error.hpp"
#include "engine/experiment.hpp"

using namespace copift;
using workload::Variant;

int main(int argc, char** argv) {
  try {
  engine::SimEngine pool(engine::parse_threads(argc, argv));
  const auto table = engine::Experiment()
                         .over(std::span<const std::string_view>(kernels::kPaperWorkloads))
                         .over({Variant::kBaseline, Variant::kCopift})
                         .n(3840)
                         .block(96)
                         .run(pool);

  for (const auto name : kernels::kPaperWorkloads) {
    for (auto v : {Variant::kBaseline, Variant::kCopift}) {
      const auto* row = table.find(name, v);
      if (row == nullptr) throw Error("missing calib row");
      const auto& c = row->run.region;
      const double cy = static_cast<double>(c.cycles);
      printf("%-16s %-6s cyc=%7llu tcdm/cy=%.3f l0ref/cy=%.4f ssr/cy=%.3f dma_busy/cy=%.4f fp/cy=%.3f int/cy=%.3f\n",
             std::string(name).c_str(), workload::variant_name(v),
             (unsigned long long)c.cycles, (c.tcdm_reads + c.tcdm_writes) / cy,
             c.l0_refills / cy, c.ssr_elements / cy, c.dma_busy_cycles / cy,
             (double)c.fp_retired / cy, (double)c.int_retired / cy);
    }
  }
  return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 2;
  }
}

// Steady-state comparison table (base vs COPIFT) for all six paper kernels,
// produced by one engine experiment over their registry names. `--threads N`
// sets the pool size; `--csv` dumps the raw ResultTable instead of the
// formatted summary; `--cores v1,v2,...` adds a hart-count axis and appends
// a per-kernel scaling summary (speedup and energy per item vs cores).
#include <cstdio>
#include <cstring>
#include <iostream>
#include <vector>

#include "common/error.hpp"
#include "engine/experiment.hpp"

using namespace copift;
using workload::Variant;

int main(int argc, char** argv) {
  try {
    bool csv = false;
    for (int i = 1; i < argc; ++i) {
      if (std::strcmp(argv[i], "--csv") == 0) csv = true;
    }
    const auto cores_list = engine::parse_cores_list(argc, argv);

    engine::SimEngine pool(engine::parse_threads(argc, argv));
    const auto table =
        engine::Experiment()
            .over(std::span<const std::string_view>(kernels::kPaperWorkloads))
            .over({Variant::kBaseline, Variant::kCopift})
            .block(96)
            .sweep_cores(std::span<const std::uint32_t>(cores_list))
            .steady(1920, 3840)
            .run(pool);
    if (csv) {
      table.write_csv(std::cout);
      return 0;
    }

    for (const std::uint32_t cores : cores_list) {
      if (cores_list.size() > 1) printf("=== cores=%u ===\n", cores);
      printf("%-18s %8s %8s %8s | %8s %8s %8s | %6s %6s\n", "kernel", "b.ipc", "c.ipc",
             "gain", "b.mW", "c.mW", "ratio", "speedup", "E.impr");
      for (const auto name : kernels::kPaperWorkloads) {
        const auto* b = table.find(name, Variant::kBaseline, 0, 0, {}, cores);
        const auto* c = table.find(name, Variant::kCopift, 0, 0, {}, cores);
        if (b == nullptr || c == nullptr) throw Error("missing steady row");
        const double speedup = b->metrics.cycles_per_item / c->metrics.cycles_per_item;
        const double eimpr = b->metrics.energy_pj_per_item / c->metrics.energy_pj_per_item;
        printf("%-18s %8.3f %8.3f %8.2f | %8.1f %8.1f %8.3f | %6.2f %6.2f\n",
               std::string(name).c_str(), b->metrics.ipc, c->metrics.ipc,
               c->metrics.ipc / b->metrics.ipc, b->metrics.power_mw, c->metrics.power_mw,
               c->metrics.power_mw / b->metrics.power_mw, speedup, eimpr);
      }
      if (cores_list.size() > 1) printf("\n");
    }

    if (cores_list.size() > 1) {
      // Scaling summary: COPIFT cycles/item speedup and energy/item relative
      // to the smallest swept core count.
      printf("COPIFT scaling vs cores=%u (cycles/item speedup : energy pJ/item)\n",
             cores_list.front());
      printf("%-18s", "kernel");
      for (const std::uint32_t cores : cores_list) printf("  %13u", cores);
      printf("\n");
      for (const auto name : kernels::kPaperWorkloads) {
        const auto* ref = table.find(name, Variant::kCopift, 0, 0, {}, cores_list.front());
        if (ref == nullptr) throw Error("missing steady row");
        printf("%-18s", std::string(name).c_str());
        for (const std::uint32_t cores : cores_list) {
          const auto* c = table.find(name, Variant::kCopift, 0, 0, {}, cores);
          if (c == nullptr) throw Error("missing steady row");
          printf("  %5.2fx %6.0f",
                 ref->metrics.cycles_per_item / c->metrics.cycles_per_item,
                 c->metrics.energy_pj_per_item);
        }
        printf("\n");
      }
    }
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 2;
  }
}

// Steady-state comparison table (base vs COPIFT) for all six paper kernels,
// produced by one engine experiment over their registry names. `--threads N`
// sets the pool size; `--csv` dumps the raw ResultTable instead of the
// formatted summary.
#include <cstdio>
#include <cstring>
#include <iostream>

#include "common/error.hpp"
#include "engine/experiment.hpp"

using namespace copift;
using workload::Variant;

int main(int argc, char** argv) {
  bool csv = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--csv") == 0) csv = true;
  }

  engine::SimEngine pool(engine::parse_threads(argc, argv));
  const auto table = engine::Experiment()
                         .over(std::span<const std::string_view>(kernels::kPaperWorkloads))
                         .over({Variant::kBaseline, Variant::kCopift})
                         .block(96)
                         .steady(1920, 3840)
                         .run(pool);
  if (csv) {
    table.write_csv(std::cout);
    return 0;
  }

  printf("%-18s %8s %8s %8s | %8s %8s %8s | %6s %6s\n", "kernel", "b.ipc", "c.ipc", "gain",
         "b.mW", "c.mW", "ratio", "speedup", "E.impr");
  for (const auto name : kernels::kPaperWorkloads) {
    const auto* b = table.find(name, Variant::kBaseline);
    const auto* c = table.find(name, Variant::kCopift);
    if (b == nullptr || c == nullptr) throw Error("missing steady row");
    const double speedup = b->metrics.cycles_per_item / c->metrics.cycles_per_item;
    const double eimpr = b->metrics.energy_pj_per_item / c->metrics.energy_pj_per_item;
    printf("%-18s %8.3f %8.3f %8.2f | %8.1f %8.1f %8.3f | %6.2f %6.2f\n",
           std::string(name).c_str(), b->metrics.ipc, c->metrics.ipc,
           c->metrics.ipc / b->metrics.ipc, b->metrics.power_mw, c->metrics.power_mw,
           c->metrics.power_mw / b->metrics.power_mw, speedup, eimpr);
  }
  return 0;
}

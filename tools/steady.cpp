#include <cstdio>
#include "kernels/runner.hpp"
using namespace copift::kernels;
int main() {
  const char* names[] = {"exp","log","poly_lcg","pi_lcg","poly_x","pi_x"};
  KernelId ids[] = {KernelId::kExp, KernelId::kLog, KernelId::kPolyLcg, KernelId::kPiLcg, KernelId::kPolyXoshiro, KernelId::kPiXoshiro};
  printf("%-10s %8s %8s %8s | %8s %8s %8s | %6s %6s\n", "kernel","b.ipc","c.ipc","gain","b.mW","c.mW","ratio","speedup","E.impr");
  for (int k = 0; k < 6; ++k) {
    KernelConfig cfg; cfg.block = 96;
    auto b = steady_metrics(ids[k], Variant::kBaseline, cfg, 1920, 3840);
    auto c = steady_metrics(ids[k], Variant::kCopift, cfg, 1920, 3840);
    double speedup = b.cycles_per_item / c.cycles_per_item;
    double eimpr = b.energy_pj_per_item / c.energy_pj_per_item;
    printf("%-10s %8.3f %8.3f %8.2f | %8.1f %8.1f %8.3f | %6.2f %6.2f\n",
           names[k], b.ipc, c.ipc, c.ipc/b.ipc, b.power_mw, c.power_mw, c.power_mw/b.power_mw, speedup, eimpr);
  }
  return 0;
}

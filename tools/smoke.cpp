// Quick per-workload smoke run: every registered workload, every supported
// variant, one small configuration. `smoke <name>` restricts to one workload.
#include <cstdio>
#include <cstring>

#include "kernels/runner.hpp"
#include "workload/workload.hpp"

using namespace copift;

int main(int argc, char** argv) {
  const char* only = argc > 1 ? argv[1] : nullptr;
  const auto& registry = workload::WorkloadRegistry::instance();
  if (only != nullptr && registry.find(only) == nullptr) {
    fprintf(stderr, "smoke: unknown workload '%s'\nregistered workloads: %s\n", only,
            registry.names_list().c_str());
    return 2;
  }
  for (const auto& name : registry.names()) {
    if (only != nullptr && name != only) continue;
    const auto w = registry.find(name);
    workload::WorkloadConfig cfg = w->default_config();
    cfg.n = 256;
    cfg.block = 32;
    for (const auto v : w->variants()) {
      try {
        const auto run = kernels::run_kernel(w->instantiate(v, cfg));
        printf("%-18s %-8s OK  ipc=%.3f cycles=%llu power=%.1f mW\n", name.c_str(),
               workload::variant_name(v), run.ipc(),
               (unsigned long long)run.region.cycles, run.power_mw());
      } catch (const std::exception& e) {
        printf("%-18s %-8s FAIL: %s\n", name.c_str(), workload::variant_name(v), e.what());
      }
    }
  }
  return 0;
}

#include <cstdio>
#include "kernels/runner.hpp"
using namespace copift;
using namespace copift::kernels;
int main(int argc, char** argv) {
  KernelConfig cfg; cfg.n = 256; cfg.block = 32;
  const char* names[] = {"exp","log","poly_lcg","pi_lcg","poly_x","pi_x"};
  KernelId ids[] = {KernelId::kExp, KernelId::kLog, KernelId::kPolyLcg, KernelId::kPiLcg, KernelId::kPolyXoshiro, KernelId::kPiXoshiro};
  int only = argc > 1 ? atoi(argv[1]) : -1;
  for (int k = 0; k < 6; ++k) {
    if (only >= 0 && k != only) continue;
    for (auto v : {Variant::kBaseline, Variant::kCopift}) {
      try {
        auto run = run_kernel(generate(ids[k], v, cfg));
        printf("%-8s %-8s OK  ipc=%.3f cycles=%llu power=%.1f mW\n", names[k],
               v==Variant::kBaseline?"base":"copift", run.ipc(),
               (unsigned long long)run.region.cycles, run.power_mw());
      } catch (const std::exception& e) {
        printf("%-8s %-8s FAIL: %s\n", names[k], v==Variant::kBaseline?"base":"copift", e.what());
      }
    }
  }
  return 0;
}

#!/usr/bin/env python3
"""Validate a copift_sim sweep's CSV/JSON pair with conforming parsers.

Usage: validate_sweep.py SWEEP.csv SWEEP.json

Checks that the CSV parses per RFC 4180 into a non-ragged table, that the
JSON document parses, that both carry the same rows, and that every row
verified against its golden reference. CI runs this over a cores sweep of
every registry workload, so an unescaped label or an unverified multi-hart
run fails the build.
"""
import csv
import json
import sys


def main() -> int:
    csv_path, json_path = sys.argv[1], sys.argv[2]
    with open(csv_path, newline="") as f:
        rows = list(csv.reader(f))
    assert len(rows) >= 2, f"{csv_path}: no data rows"
    width = len(rows[0])
    assert all(len(r) == width for r in rows), f"{csv_path}: ragged CSV"
    verified = rows[0].index("verified")
    cores = rows[0].index("cores")
    bad = [r for r in rows[1:] if r[verified] != "1"]
    assert not bad, f"{csv_path}: unverified rows {bad}"

    with open(json_path) as f:
        data = json.load(f)
    assert len(data) == len(rows) - 1, (
        f"{csv_path}/{json_path}: row mismatch ({len(rows) - 1} vs {len(data)})"
    )
    assert all(p["verified"] for p in data), f"{json_path}: unverified rows"
    swept = sorted({r[cores] for r in rows[1:]})
    print(f"{csv_path}: {len(rows) - 1} rows OK (cores swept: {', '.join(swept)})")
    return 0


if __name__ == "__main__":
    sys.exit(main())

#!/usr/bin/env python3
"""Check intra-repo markdown links.

Walks every *.md file in the repository (skipping build trees) and verifies
that every relative link target exists, and that every anchor link (both
same-file `#heading` and cross-file `doc.md#heading`) matches a heading in
the target file using GitHub's anchor slugification. External links
(http/https/mailto) are not fetched.

Exits non-zero listing every dead link, so CI fails on doc rot.
Stdlib only — no third-party dependencies.
"""

import functools
import os
import re
import sys

SKIP_DIRS = {".git", "build", "build-asan", ".claude", "node_modules"}
LINK_RE = re.compile(r"(?<!\!)\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")
INLINE_CODE_RE = re.compile(r"`[^`]*`")
HEADING_RE = re.compile(r"^#{1,6}\s+(.*)$")


def slugify(heading: str) -> str:
    """GitHub-style anchor slug: lowercase, drop punctuation, dashes for spaces."""
    text = re.sub(r"`([^`]*)`", r"\1", heading)          # unwrap inline code
    text = re.sub(r"\[([^\]]*)\]\([^)]*\)", r"\1", text)  # unwrap links
    text = text.strip().lower()
    text = re.sub(r"[^\w\- ]", "", text)
    return text.replace(" ", "-")


@functools.lru_cache(maxsize=None)
def headings_of(path: str) -> frozenset[str]:
    anchors: set[str] = set()
    in_code_block = False
    with open(path, encoding="utf-8") as f:
        for line in f:
            if line.lstrip().startswith("```"):
                in_code_block = not in_code_block
                continue
            if in_code_block:
                continue
            m = HEADING_RE.match(line)
            if m:
                slug = slugify(m.group(1))
                # GitHub de-duplicates repeated headings with -1, -2, ...
                candidate, i = slug, 0
                while candidate in anchors:
                    i += 1
                    candidate = f"{slug}-{i}"
                anchors.add(candidate)
    return frozenset(anchors)


def md_files(root: str):
    for dirpath, dirnames, filenames in os.walk(root):
        dirnames[:] = [d for d in dirnames if d not in SKIP_DIRS]
        for name in filenames:
            if name.endswith(".md"):
                yield os.path.join(dirpath, name)


def main() -> int:
    root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    errors = []
    checked = 0
    for md in md_files(root):
        in_code_block = False
        with open(md, encoding="utf-8") as f:
            for lineno, line in enumerate(f, 1):
                if line.lstrip().startswith("```"):
                    in_code_block = not in_code_block
                    continue
                if in_code_block:
                    continue
                for target in LINK_RE.findall(INLINE_CODE_RE.sub("", line)):
                    if target.startswith(("http://", "https://", "mailto:")):
                        continue
                    checked += 1
                    path_part, _, anchor = target.partition("#")
                    resolved = (
                        os.path.normpath(os.path.join(os.path.dirname(md), path_part))
                        if path_part
                        else md
                    )
                    rel = os.path.relpath(md, root)
                    if not os.path.exists(resolved):
                        errors.append(f"{rel}:{lineno}: dead link: {target}")
                        continue
                    if anchor and resolved.endswith(".md"):
                        if anchor not in headings_of(resolved):
                            errors.append(f"{rel}:{lineno}: dead anchor: {target}")
    for e in errors:
        print(e, file=sys.stderr)
    print(f"checked {checked} intra-repo links: "
          f"{'FAIL' if errors else 'OK'} ({len(errors)} dead)")
    return 1 if errors else 0


if __name__ == "__main__":
    sys.exit(main())

// copift_serve: simulation-as-a-service daemon.
//
// Serves sweep requests over a line-delimited JSON TCP protocol (see
// docs/serving.md), scheduling work on the SimEngine pool, deduping
// identical grid points through a bounded LRU result cache, and streaming
// progress events for long sweeps.
//
//   copift_serve --port 7774 --threads 8 --cache-entries 4096
//
// SIGINT/SIGTERM trigger a graceful shutdown: the daemon stops accepting,
// drains every queued sweep, flushes every pending response, prints a final
// stats line and exits 0. A second signal aborts the in-flight batch between
// grid points and exits 1 (clients with unfinished sweeps receive error
// events instead of results).
#include <atomic>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "common/error.hpp"
#include "lint/lint.hpp"
#include "serve/server.hpp"

namespace {

using namespace copift;

constexpr const char* kVersion = "0.1.0";

serve::Server* g_server = nullptr;
std::atomic<int> g_signals{0};

void on_signal(int) {
  // Async-signal-safe: both request paths are an atomic store + pipe write.
  const int n = g_signals.fetch_add(1, std::memory_order_relaxed);
  if (g_server == nullptr) return;
  if (n == 0) g_server->request_shutdown();
  else g_server->request_abort();
}

void print_usage(std::FILE* out) {
  std::fprintf(out,
               "usage: copift_serve [options]\n"
               "\n"
               "  --port N           TCP port on 127.0.0.1 (default 7774; 0 = ephemeral,\n"
               "                     the bound port is printed on startup)\n"
               "  --threads N        SimEngine worker threads (0 = all cores)\n"
               "  --cache-entries N  result-cache capacity in grid points (default 4096)\n"
               "  --cache-file F     persist completed results to F on graceful shutdown\n"
               "                     and reload them at startup (stale files from other\n"
               "                     builds are ignored with a warning)\n"
               "  --idle-timeout S   close connections idle for S seconds (default 120,\n"
               "                     0 = never)\n"
               "  --max-points N     reject requests expanding past N grid points\n"
               "                     (default 65536)\n"
               "  --lint MODE        lint every generated program (off, warn, strict);\n"
               "                     strict turns lint diagnostics into per-request\n"
               "                     error events carrying the rule, PC and label\n"
               "  --help, -h         this message\n"
               "  --version          print the version and exit\n"
               "\n"
               "protocol: one JSON object per line; see docs/serving.md for the schema\n"
               "and example transcripts. Try:\n"
               "  printf '{\"id\":1,\"type\":\"run\",\"workloads\":[\"exp\"],"
               "\"block\":[32,64]}\\n' | nc 127.0.0.1 7774\n");
}

std::uint64_t parse_u64(const char* flag, const char* value) {
  char* end = nullptr;
  const unsigned long long v = std::strtoull(value, &end, 10);
  if (end == value || *end != '\0' || std::strchr(value, '-') != nullptr) {
    throw Error(std::string(flag) + ": invalid value '" + value + "'");
  }
  return v;
}

}  // namespace

int main(int argc, char** argv) {
  serve::ServerConfig config;
  config.port = 7774;
  try {
    int i = 1;
    const auto value_of = [&](const std::string& flag) -> const char* {
      if (i + 1 >= argc) throw Error(flag + " requires a value");
      return argv[++i];
    };
    for (; i < argc; ++i) {
      const std::string arg = argv[i];
      if (arg == "--help" || arg == "-h") {
        print_usage(stdout);
        return 0;
      } else if (arg == "--version") {
        std::printf("copift_serve %s\n", kVersion);
        return 0;
      } else if (arg == "--port") {
        const auto v = parse_u64("--port", value_of(arg));
        if (v > 65535) throw Error("--port: " + std::to_string(v) + " is out of range");
        config.port = static_cast<std::uint16_t>(v);
      } else if (arg == "--threads") {
        const auto v = parse_u64("--threads", value_of(arg));
        if (v > engine::SimEngine::kMaxThreads) {
          throw Error("--threads: " + std::to_string(v) + " is out of range (0.." +
                      std::to_string(engine::SimEngine::kMaxThreads) + ")");
        }
        config.engine_threads = static_cast<unsigned>(v);
      } else if (arg == "--cache-entries") {
        config.cache_entries = static_cast<std::size_t>(parse_u64("--cache-entries", value_of(arg)));
      } else if (arg == "--cache-file") {
        config.cache_file = value_of(arg);
        if (config.cache_file.empty()) throw Error("--cache-file: path must be non-empty");
      } else if (arg == "--idle-timeout") {
        config.idle_timeout_ms = static_cast<int>(parse_u64("--idle-timeout", value_of(arg)) * 1000);
      } else if (arg == "--max-points") {
        config.max_grid_points = static_cast<std::size_t>(parse_u64("--max-points", value_of(arg)));
      } else if (arg == "--lint") {
        // Strict enum parse (mode_from throws on anything unknown). The mode
        // applies process-wide: every program the engine assembles for a
        // request is linted post-assembly, and strict-mode failures surface
        // as error events on the requesting connection.
        lint::set_pipeline_mode(lint::mode_from(value_of(arg)));
      } else {
        std::fprintf(stderr, "error: unknown argument '%s'\n", arg.c_str());
        print_usage(stderr);
        return 2;
      }
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    print_usage(stderr);
    return 2;
  }

  try {
    serve::Server server(config);
    server.start();
    g_server = &server;
    std::signal(SIGINT, on_signal);
    std::signal(SIGTERM, on_signal);

    std::printf("copift_serve %s listening on 127.0.0.1:%u (%u engine threads, "
                "%zu cache entries)\n",
                kVersion, server.port(), server.engine_threads(), config.cache_entries);
    std::fflush(stdout);

    server.wait();
    g_server = nullptr;

    const auto s = server.stats();
    std::fprintf(stderr,
                 "copift_serve: shut down after %llu ms: %llu connections, "
                 "%llu requests served (%llu failed), %llu/%llu points simulated, "
                 "cache hits %llu / coalesced %llu / evictions %llu / reloaded %llu\n",
                 static_cast<unsigned long long>(s.uptime_ms),
                 static_cast<unsigned long long>(s.connections_accepted),
                 static_cast<unsigned long long>(s.requests_served),
                 static_cast<unsigned long long>(s.requests_failed),
                 static_cast<unsigned long long>(s.points_simulated),
                 static_cast<unsigned long long>(s.points_requested),
                 static_cast<unsigned long long>(s.cache.hits),
                 static_cast<unsigned long long>(s.cache.coalesced),
                 static_cast<unsigned long long>(s.cache.evictions),
                 static_cast<unsigned long long>(s.cache.reloaded));
    // Two signals = hard abort; report it in the exit status.
    return g_signals.load(std::memory_order_relaxed) > 1 ? 1 : 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}

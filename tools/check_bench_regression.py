#!/usr/bin/env python3
"""Gate simulator-performance regressions against the committed baseline.

Usage: check_bench_regression.py BASELINE.json FRESH.json [--min-ratio R]

Both files follow the bench_simulator JSON schema
(``copift-bench-simulator/1``): an object with a ``benchmarks`` array whose
entries carry ``name``, ``sim_cycles_per_sec`` and ``items_per_sec``. The
baseline (the committed ``BENCH_simulator.json`` at the repo root) may carry
extra keys (e.g. the pre-optimization ``before`` snapshot); only its
``benchmarks`` array is compared.

For every benchmark present in both files the primary throughput metric is
``sim_cycles_per_sec`` when non-zero, otherwise ``items_per_sec``. The check
fails (exit 1) when any fresh metric drops below ``min-ratio`` times the
baseline (default 0.8, i.e. a >20% regression). Benchmarks that only exist
on one side are reported but never fail the check, so adding or retiring a
benchmark does not require lock-step baseline updates.
"""

import argparse
import json
import sys


def load_benchmarks(path):
    with open(path) as f:
        doc = json.load(f)
    schema = doc.get("schema", "")
    if not schema.startswith("copift-bench-simulator/"):
        sys.exit(f"{path}: unexpected schema {schema!r}")
    return {b["name"]: b for b in doc.get("benchmarks", [])}


def metric(bench):
    if bench.get("sim_cycles_per_sec", 0.0) > 0.0:
        return "sim_cycles_per_sec", bench["sim_cycles_per_sec"]
    return "items_per_sec", bench.get("items_per_sec", 0.0)


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("baseline")
    parser.add_argument("fresh")
    parser.add_argument("--min-ratio", type=float, default=0.8,
                        help="fail when fresh/baseline falls below this (default 0.8)")
    args = parser.parse_args()

    baseline = load_benchmarks(args.baseline)
    fresh = load_benchmarks(args.fresh)

    failures = []
    for name, base in baseline.items():
        if name not in fresh:
            print(f"  {name:<24} SKIP (not in fresh run)")
            continue
        key, base_value = metric(base)
        _, fresh_value = metric(fresh[name])
        if base_value <= 0.0:
            print(f"  {name:<24} SKIP (no baseline metric)")
            continue
        ratio = fresh_value / base_value
        status = "ok" if ratio >= args.min_ratio else "REGRESSION"
        print(f"  {name:<24} {key}: {fresh_value:>14.1f} vs {base_value:>14.1f}"
              f"  ({ratio:6.2f}x)  {status}")
        if ratio < args.min_ratio:
            failures.append(name)
    for name in fresh:
        if name not in baseline:
            print(f"  {name:<24} NEW (not in baseline)")

    if failures:
        print(f"\n{len(failures)} benchmark(s) regressed by more than "
              f"{(1 - args.min_ratio) * 100:.0f}%: {', '.join(failures)}")
        return 1
    print("\nno benchmark regressed beyond the "
          f"{(1 - args.min_ratio) * 100:.0f}% gate")
    return 0


if __name__ == "__main__":
    sys.exit(main())

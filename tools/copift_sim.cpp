// copift-sim: command-line driver for the Snitch cluster simulator.
//
// Usage:
//   copift_sim <file.s> [--trace] [--max-cycles N]
//   copift_sim --list
//   copift_sim --kernel <name> [--variant base|copift|both] [--n N] [--block B]
//   copift_sim --kernel <name> --sweep <axis>=<v1,v2,...> [--sweep ...]
//              [--threads N] [--json] [--no-verify]
//
// Runs an assembly file (or any workload registered in the WorkloadRegistry)
// and prints the run summary, per-region IPC and the energy report. With
// `--sweep`, expands the requested axes (block, n, seed) into a grid, fans
// the independent runs out over `--threads N` engine workers, and prints the
// result table as CSV (or JSON with `--json`). `--list` shows every
// registered workload with its supported variants and default configuration.
#include <cerrno>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iomanip>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "debug/stub.hpp"
#include "energy/energy.hpp"
#include "engine/experiment.hpp"
#include "kernels/runner.hpp"
#include "lint/lint.hpp"
#include "rvasm/assembler.hpp"
#include "sim/cluster.hpp"
#include "sim/trace_export.hpp"
#include "workload/workload.hpp"

namespace {

using namespace copift;

constexpr const char* kVersion = "0.3.0";

// Sweep-mode SIGINT handling: the handler only flips the engine CancelToken
// (an async-signal-safe atomic store); the main thread then finishes the
// grid points already in flight and writes a partial table.
engine::CancelToken g_cancel;

void on_sigint(int) { g_cancel.request_stop(); }

void print_usage(std::FILE* out) {
  std::fprintf(out,
               "usage: copift_sim <file.s> [options]\n"
               "       copift_sim --kernel <name> [options]\n"
               "       copift_sim --kernel <name> --sweep <axis>=<v1,v2,...> [options]\n"
               "       copift_sim --list\n"
               "\n"
               "workload selection:\n"
               "  <file.s>               run an assembly file on the cluster\n"
               "  --kernel <name>        run a registered workload (see --list)\n"
               "  --variant base|copift|both\n"
               "                         workload variant (both requires --sweep)\n"
               "  --n N, --block B, --seed S\n"
               "                         override the workload's default config\n"
               "  --cores N              run on N core complexes (multi-hart workloads\n"
               "                         partition via mhartid; assembly files must\n"
               "                         handle mhartid/barrier themselves)\n"
               "  --tile T               DMA tile size in elements: place the workload's\n"
               "                         arrays in DRAM behind the double-buffered tile\n"
               "                         loop so n can exceed TCDM (0 = untiled;\n"
               "                         tiled-capable workloads only)\n"
               "  --dram                 enable the DRAM timing model (row-buffer +\n"
               "                         bandwidth); off = DMA at TCDM speed\n"
               "  --list                 print registered workloads and exit\n"
               "\n"
               "introspection (single-run mode):\n"
               "  --trace                print the first trace entries after the run\n"
               "  --trace-json FILE      write a Chrome/Perfetto trace-event JSON file\n"
               "                         (load it at https://ui.perfetto.dev); implies tracing\n"
               "  --report               print the top-down pipeline report: issue-slot\n"
               "                         occupancy, stall-cause histogram, dual-issue rate,\n"
               "                         hottest PCs, per-hart issue slots, barrier-wait\n"
               "                         cycles, the DMA/memory section (DMA busy%%, DRAM\n"
               "                         row hit rate, bytes moved) and the stall legend\n"
               "\n"
               "batch mode:\n"
               "  --sweep axis=v1,v2,... sweep an axis (block, n, seed, cores, tile);\n"
               "                         repeatable\n"
               "  --threads N            engine worker threads (0 = all cores)\n"
               "  --json                 emit the sweep result table as JSON, not CSV\n"
               "  --no-verify            skip golden-reference output verification\n"
               "\n"
               "debugging (single-run mode):\n"
               "  --gdb PORT             serve a GDB remote-serial-protocol stub on\n"
               "                         127.0.0.1:PORT (0 = ephemeral; the bound port is\n"
               "                         printed) and wait for a client before cycle 0.\n"
               "                         Attach with `gdb -ex 'target remote :PORT'` or\n"
               "                         tools/rsp_client.py; see docs/debugging.md\n"
               "\n"
               "linting:\n"
               "  --lint[=MODE]          statically verify the program before running it\n"
               "                         (MODE: off, warn, strict; bare --lint = warn).\n"
               "                         warn prints diagnostics and continues, strict\n"
               "                         makes any diagnostic a hard error; the mode also\n"
               "                         applies to every program a --sweep generates.\n"
               "                         Default: warn in debug builds, off in release\n"
               "                         (override with COPIFT_LINT=off|warn|strict)\n"
               "  --lint-json            lint only (no simulation): print the machine-\n"
               "                         readable lint report as JSON and exit 0 when\n"
               "                         clean, 1 when diagnostics fired\n"
               "\n"
               "misc:\n"
               "  --profile              print host-side timing after a single run:\n"
               "                         assemble+decode time, simulation time, simulated\n"
               "                         cycles per host second, and skip-ahead statistics\n"
               "  --no-skip-ahead        force per-cycle execution (disable the\n"
               "                         event-driven clock jump; results are identical)\n"
               "  --max-cycles N         abort the simulation after N cycles\n"
               "  --help, -h             this message\n"
               "  --version              print the version and exit\n"
               "\n"
               "examples:\n"
               "  copift_sim --kernel exp --sweep block=32,64,96,128   # paper Fig. 3 axis\n"
               "  copift_sim --kernel exp --sweep cores=1,2,4 --json   # dual-issue IPC and\n"
               "                         # energy scaling over the cluster size; every\n"
               "                         # multi-hart workload partitions via mhartid and\n"
               "                         # verifies bit-exact against the single-hart run\n"
               "\n"
               "See docs/performance-debugging.md for the stall-analysis workflow and\n"
               "docs/trace-format.md for the exact trace JSON / report schema.\n");
}

int usage() {
  print_usage(stderr);
  return 2;
}

/// Lint status of a workload for `--list`: every supported variant at the
/// default config, on the default core count.
std::string list_lint_status(const workload::Workload& w) {
  std::size_t diags = 0;
  try {
    const auto cfg = w.default_config();
    for (const auto v : w.variants()) {
      const auto generated = w.instantiate(v, cfg);
      diags += lint::lint_program(rvasm::assemble(generated.source), cfg.cores).diags.size();
    }
  } catch (const std::exception&) {
    return "error";
  }
  return diags == 0 ? "clean" : std::to_string(diags) + " diags";
}

int list_workloads() {
  const auto& registry = workload::WorkloadRegistry::instance();
  std::printf("%-18s %-18s %-10s %-26s %-8s %s\n", "workload", "variants", "cores",
              "default config", "lint", "description");
  for (const auto& name : registry.names()) {
    const auto w = registry.find(name);
    const auto cfg = w->default_config();
    bool multi_hart = false;
    for (const auto v : w->variants()) multi_hart = multi_hart || w->multi_hart_capable(v);
    char cfgbuf[64];
    std::snprintf(cfgbuf, sizeof(cfgbuf), "n=%u block=%u seed=%u", cfg.n, cfg.block, cfg.seed);
    std::printf("%-18s %-18s %-10s %-26s %-8s %s\n", name.c_str(), w->variants_list().c_str(),
                multi_hart ? "multi-hart" : "1", cfgbuf, list_lint_status(*w).c_str(),
                w->description().c_str());
  }
  return 0;
}

/// Strict uint32 flag-value parse: the whole string must be a decimal number
/// in range (stoul-style prefix parses silently accepted `--threads 4x`).
std::uint32_t parse_u32_flag(const char* flag, const char* value) {
  char* end = nullptr;
  errno = 0;
  const unsigned long v = std::strtoul(value, &end, 10);
  if (end == value || *end != '\0' || errno == ERANGE || v > 0xFFFFFFFFul ||
      std::strchr(value, '-') != nullptr) {
    throw copift::Error(std::string(flag) + ": invalid value '" + value + "'");
  }
  return static_cast<std::uint32_t>(v);
}

std::uint64_t parse_u64_flag(const char* flag, const char* value) {
  char* end = nullptr;
  errno = 0;
  const unsigned long long v = std::strtoull(value, &end, 10);
  if (end == value || *end != '\0' || errno == ERANGE ||
      std::strchr(value, '-') != nullptr) {
    throw copift::Error(std::string(flag) + ": invalid value '" + value + "'");
  }
  return v;
}

int unknown_workload(const std::string& name) {
  std::fprintf(stderr, "error: unknown workload '%s'\nregistered workloads: %s\n",
               name.c_str(),
               workload::WorkloadRegistry::instance().names_list().c_str());
  return 2;
}

void print_summary(sim::Cluster& cluster) {
  const auto& c = cluster.counters();
  std::printf("cycles:        %llu\n", static_cast<unsigned long long>(c.cycles));
  std::printf("instructions:  %llu (int %llu, fp %llu, frep replays %llu)\n",
              static_cast<unsigned long long>(c.retired()),
              static_cast<unsigned long long>(c.int_retired),
              static_cast<unsigned long long>(c.fp_retired),
              static_cast<unsigned long long>(c.frep_replays));
  std::printf("IPC:           %.3f\n", c.ipc());
  std::printf("stalls:        raw %llu, wb-port %llu, offload %llu, tcdm %llu, "
              "barrier %llu, hw-barrier %llu, icache %llu, branch %llu, mem-order %llu, "
              "dma-wait %llu, dma-dram %llu\n",
              static_cast<unsigned long long>(c.stall_raw),
              static_cast<unsigned long long>(c.stall_wb_port),
              static_cast<unsigned long long>(c.stall_offload_full),
              static_cast<unsigned long long>(c.stall_tcdm),
              static_cast<unsigned long long>(c.stall_barrier),
              static_cast<unsigned long long>(c.stall_hw_barrier),
              static_cast<unsigned long long>(c.stall_icache),
              static_cast<unsigned long long>(c.stall_branch),
              static_cast<unsigned long long>(c.stall_mem_order),
              static_cast<unsigned long long>(c.stall_dma_wait),
              static_cast<unsigned long long>(c.stall_dma_dram));
  std::printf("memory:        tcdm reads %llu, writes %llu, conflicts %llu, "
              "ssr elements %llu\n",
              static_cast<unsigned long long>(c.tcdm_reads),
              static_cast<unsigned long long>(c.tcdm_writes),
              static_cast<unsigned long long>(c.tcdm_conflicts),
              static_cast<unsigned long long>(c.ssr_elements));
  if (c.dma_bytes > 0 || c.dma_busy_cycles > 0) {
    const std::uint64_t bursts = c.dram_row_hits + c.dram_row_misses;
    std::printf("dma/dram:      %llu bytes moved, dma busy %.1f%% of %llu cycles",
                static_cast<unsigned long long>(c.dma_bytes),
                c.cycles > 0 ? 100.0 * static_cast<double>(c.dma_busy_cycles) /
                                   static_cast<double>(c.cycles)
                             : 0.0,
                static_cast<unsigned long long>(c.cycles));
    if (bursts > 0) {
      std::printf(", dram row hits %llu/%llu (%.1f%%)",
                  static_cast<unsigned long long>(c.dram_row_hits),
                  static_cast<unsigned long long>(bursts),
                  100.0 * static_cast<double>(c.dram_row_hits) / static_cast<double>(bursts));
    }
    std::printf("\n");
  }
  // Per-complex energy: hart 0 carries the cluster constants, each further
  // hart its complex constant — the same model the engine sweeps use, so
  // single runs and sweep rows agree for any core count (for one core this
  // is exactly EnergyModel::evaluate).
  std::vector<sim::ActivityCounters> per_hart;
  per_hart.reserve(cluster.num_cores());
  for (unsigned h = 0; h < cluster.num_cores(); ++h) {
    per_hart.push_back(cluster.complex(h).counters());
  }
  const auto reports = energy::EnergyModel().evaluate_harts(per_hart);
  const auto report = energy::sum_reports(reports);
  std::printf("power/energy:  %.1f mW, %.1f nJ (const %.0f%%, int %.0f%%, fpss %.0f%%, "
              "mem %.0f%%, i$ %.0f%%)\n",
              report.power_mw(), report.energy_nj(),
              100 * report.constant_pj / report.total_pj,
              100 * report.int_core_pj / report.total_pj,
              100 * report.fpss_pj / report.total_pj,
              100 * report.memory_pj / report.total_pj,
              100 * report.icache_pj / report.total_pj);
  // Region delta aggregated over every hart's own marker window (cycles =
  // the slowest hart's window), matching the engine's region columns.
  sim::ActivityCounters region_delta{};
  bool have_regions = true;
  for (unsigned h = 0; h < cluster.num_cores(); ++h) {
    const auto& regions = cluster.complex(h).regions();
    if (regions.size() < 2) {
      have_regions = false;
      break;
    }
    region_delta = region_delta.plus(regions.back().snapshot.minus(regions.front().snapshot));
  }
  if (have_regions) {
    std::printf("region IPC:    %.3f over %llu cycles%s\n", region_delta.ipc(),
                static_cast<unsigned long long>(region_delta.cycles),
                cluster.num_cores() > 1 ? " (all harts, slowest marker window)" : "");
  }
}

/// --report section for the beyond-TCDM path: how busy the DMA engine was,
/// how well the access pattern exploited the DRAM row buffer, and how much
/// data crossed the cluster boundary. All zeros for TCDM-resident workloads.
std::string render_dma_report(const sim::Cluster& cluster) {
  const auto& c = cluster.counters();
  std::ostringstream os;
  os << "--- dma / memory hierarchy ---\n";
  const double busy_pct = c.cycles > 0 ? 100.0 * static_cast<double>(c.dma_busy_cycles) /
                                             static_cast<double>(c.cycles)
                                       : 0.0;
  os << "dma busy:      " << c.dma_busy_cycles << " of " << c.cycles << " cycles ("
     << std::fixed << std::setprecision(1) << busy_pct << "%)\n";
  os << "bytes moved:   " << c.dma_bytes << " (" << c.dma_cmds << " dmcpy commands)\n";
  const std::uint64_t bursts = c.dram_row_hits + c.dram_row_misses;
  if (bursts > 0) {
    os << "dram bursts:   " << bursts << ", row hits " << c.dram_row_hits << " ("
       << std::setprecision(1)
       << 100.0 * static_cast<double>(c.dram_row_hits) / static_cast<double>(bursts)
       << "%), row misses " << c.dram_row_misses << "\n";
  } else {
    os << "dram bursts:   0 (no DRAM traffic, or dram timing disabled)\n";
  }
  os << "dma stalls:    dmwait on TCDM-side drain " << c.stall_dma_wait
     << " cycles, on DRAM bursts " << c.stall_dma_dram << " cycles\n";
  return os.str();
}

/// One `--sweep axis=v1,v2,...` specification.
struct SweepSpec {
  std::string axis;
  std::vector<std::uint32_t> values;
};

bool parse_sweep(const std::string& arg, SweepSpec& out) {
  const auto eq = arg.find('=');
  if (eq == std::string::npos || eq == 0 || eq + 1 >= arg.size()) return false;
  out.axis = arg.substr(0, eq);
  if (out.axis != "block" && out.axis != "n" && out.axis != "seed" && out.axis != "cores" &&
      out.axis != "tile") {
    return false;
  }
  out.values.clear();
  std::stringstream ss(arg.substr(eq + 1));
  std::string item;
  while (std::getline(ss, item, ',')) {
    if (item.empty()) return false;
    out.values.push_back(static_cast<std::uint32_t>(std::stoul(item)));
  }
  return !out.values.empty();
}

}  // namespace

int main(int argc, char** argv) {
  std::string file;
  std::string kernel;
  std::string variant;  // empty = workload default
  std::string trace_json;
  bool trace = false;
  bool report = false;
  bool json = false;
  bool verify = true;
  bool profile = false;
  bool skip_ahead = true;
  std::uint64_t max_cycles = 0;
  // -1 = flag absent, use the workload's default (0 is a legal user value
  // that validate() will reject with a config-specific message).
  std::int64_t n = -1;
  std::int64_t block = -1;
  std::int64_t seed = -1;
  std::int64_t cores = -1;
  std::int64_t tile = -1;
  bool dram = false;
  // -1 = no stub; 0..65535 = serve the gdb stub on that port (0 = ephemeral).
  std::int32_t gdb_port = -1;
  unsigned threads = 0;
  bool lint_flag = false;  // --lint[=MODE] given: mode set explicitly below
  bool lint_json = false;
  std::vector<SweepSpec> sweeps;
  try {
  int i = 1;
  // A value-taking flag with nothing after it (e.g. `--threads` as the last
  // argument) is a usage error, never a silent no-op.
  const auto value_of = [&](const std::string& flag) -> const char* {
    if (i + 1 >= argc) throw copift::Error(flag + " requires a value");
    return argv[++i];
  };
  for (; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--trace") trace = true;
    else if (arg == "--help" || arg == "-h") {
      print_usage(stdout);
      return 0;
    }
    else if (arg == "--version") {
      std::printf("copift_sim %s\n", kVersion);
      return 0;
    }
    else if (arg == "--report") report = true;
    else if (arg == "--profile") profile = true;
    else if (arg == "--no-skip-ahead") skip_ahead = false;
    else if (arg == "--trace-json") trace_json = value_of(arg);
    else if (arg.rfind("--trace-json=", 0) == 0) trace_json = arg.substr(13);
    else if (arg == "--list") return list_workloads();
    else if (arg == "--json") json = true;
    else if (arg == "--no-verify") verify = false;
    else if (arg == "--kernel") kernel = value_of(arg);
    else if (arg == "--variant") variant = value_of(arg);
    else if (arg == "--n") n = parse_u32_flag("--n", value_of(arg));
    else if (arg == "--block") block = parse_u32_flag("--block", value_of(arg));
    else if (arg == "--seed") seed = parse_u32_flag("--seed", value_of(arg));
    else if (arg == "--cores") cores = parse_u32_flag("--cores", value_of(arg));
    else if (arg == "--tile") tile = parse_u32_flag("--tile", value_of(arg));
    else if (arg == "--dram") dram = true;
    // (numeric flag values are parsed as uint32 and stored widened, so -1
    // never collides with a user-supplied value)
    else if (arg == "--gdb") {
      // Strict numeric parse, same convention as --threads: `--gdb` as the
      // last argument or with a non-numeric value is an error, never a
      // silent default.
      const std::uint32_t port = parse_u32_flag("--gdb", value_of(arg));
      if (port > 65535) throw copift::Error("--gdb: port out of range (0-65535)");
      gdb_port = static_cast<std::int32_t>(port);
    }
    else if (arg == "--lint") {
      lint_flag = true;
      lint::set_pipeline_mode(lint::Mode::kWarn);
    }
    else if (arg.rfind("--lint=", 0) == 0) {
      // Strict enum parse: anything but off/warn/strict is an error, same
      // convention as the numeric flags.
      lint_flag = true;
      lint::set_pipeline_mode(lint::mode_from(arg.substr(7)));
    }
    else if (arg == "--lint-json") lint_json = true;
    else if (arg == "--max-cycles") max_cycles = parse_u64_flag("--max-cycles", value_of(arg));
    else if (arg == "--threads") threads = parse_u32_flag("--threads", value_of(arg));
    else if (arg == "--sweep") {
      SweepSpec spec;
      if (!parse_sweep(value_of(arg), spec)) return usage();
      sweeps.push_back(std::move(spec));
    }
    else if (arg.rfind("--", 0) == 0) return usage();
    else file = arg;
  }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return usage();  // missing or malformed flag value
  }
  if (file.empty() && kernel.empty()) return usage();
  if (!sweeps.empty() && kernel.empty()) return usage();
  if (!variant.empty() && variant != "base" && variant != "baseline" && variant != "copift" &&
      variant != "both") {
    return usage();
  }
  if (variant == "both" && sweeps.empty()) {
    std::fprintf(stderr, "error: --variant both requires --sweep\n");
    return usage();
  }
  if (!sweeps.empty() && (report || !trace_json.empty())) {
    std::fprintf(stderr,
                 "error: --report/--trace-json trace a single run; drop --sweep\n"
                 "(sweep CSV/JSON already carries per-point stall-cause columns)\n");
    return 2;
  }
  if (gdb_port >= 0 && !sweeps.empty()) {
    std::fprintf(stderr, "error: --gdb debugs a single run; drop --sweep\n");
    return 2;
  }
  if (lint_json && !sweeps.empty()) {
    std::fprintf(stderr, "error: --lint-json lints a single program; drop --sweep\n");
    return 2;
  }

  try {
    sim::SimParams params;
    if (max_cycles > 0) params.max_cycles = max_cycles;
    if (cores >= 0) params.num_cores = static_cast<unsigned>(cores);
    params.skip_ahead = skip_ahead;
    params.dram_enabled = dram;

    std::shared_ptr<const workload::Workload> wl;
    std::vector<workload::Variant> run_variants;
    kernels::KernelConfig cfg;
    if (!kernel.empty()) {
      wl = workload::WorkloadRegistry::instance().find(kernel);
      if (wl == nullptr) return unknown_workload(kernel);
      cfg = wl->default_config();
      if (n >= 0) cfg.n = static_cast<std::uint32_t>(n);
      if (block >= 0) cfg.block = static_cast<std::uint32_t>(block);
      if (seed >= 0) cfg.seed = static_cast<std::uint32_t>(seed);
      if (cores >= 0) cfg.cores = static_cast<std::uint32_t>(cores);
      if (tile >= 0) cfg.tile = static_cast<std::uint32_t>(tile);
      if (variant == "both") {
        run_variants = {workload::Variant::kBaseline, workload::Variant::kCopift};
      } else if (!variant.empty()) {
        run_variants = {workload::variant_from(variant)};
      } else {
        run_variants = {wl->default_variant()};
      }
      for (const auto v : run_variants) {
        if (!wl->supports(v)) {
          std::fprintf(stderr, "error: workload '%s' does not support variant '%s'"
                       " (supported: %s)\n",
                       kernel.c_str(), workload::variant_name(v),
                       wl->variants_list().c_str());
          return 2;
        }
      }
    }

    if (!sweeps.empty()) {
      // Batch mode: expand the sweep axes into one engine experiment.
      engine::Experiment experiment;
      experiment.over(kernel).n(cfg.n).block(cfg.block).seed(cfg.seed).cores(cfg.cores)
          .tile(cfg.tile).verify(verify);
      experiment.over(std::span<const workload::Variant>(run_variants));
      if (max_cycles > 0 || dram) experiment.with_params("default", params);
      for (const auto& spec : sweeps) {
        const std::span<const std::uint32_t> values(spec.values);
        if (spec.axis == "block") experiment.sweep(values);
        else if (spec.axis == "n") experiment.sweep_n(values);
        else if (spec.axis == "cores") experiment.sweep_cores(values);
        else if (spec.axis == "tile") experiment.sweep_tiles(values);
        else experiment.sweep_seeds(values);
      }
      engine::SimEngine pool(threads);
      // Ctrl-C mid-sweep cancels between grid points and still emits the
      // finished rows, so a long sweep never dies with nothing to show.
      std::signal(SIGINT, on_sigint);
      const auto table = experiment.run(pool, &g_cancel);
      std::signal(SIGINT, SIG_DFL);
      if (json) table.write_json(std::cout);
      else table.write_csv(std::cout);
      const std::size_t total = experiment.grid().size();
      if (table.size() < total) {
        std::fprintf(stderr,
                     "interrupted: wrote %zu of %zu grid points (partial sweep)\n",
                     table.size(), total);
        return 130;  // 128 + SIGINT, the conventional interrupted-exit status
      }
      std::fprintf(stderr, "sweep: %zu grid points on %u threads\n", table.size(),
                   pool.threads());
      return 0;
    }

    std::string source;
    kernels::GeneratedKernel generated;
    bool have_kernel = false;
    if (wl != nullptr) {
      generated = wl->instantiate(run_variants.front(), cfg);
      source = generated.source;
      have_kernel = true;
      params.num_cores = cfg.cores;  // topology follows the workload config
      std::printf("workload %s (%s), n=%u, block=%u, seed=%u, cores=%u, tile=%u%s\n",
                  kernel.c_str(), workload::variant_name(generated.variant), cfg.n, cfg.block,
                  cfg.seed, cfg.cores, cfg.tile, dram ? " (dram timing on)" : "");
    } else {
      std::ifstream in(file);
      if (!in) {
        std::fprintf(stderr, "cannot open %s\n", file.c_str());
        return 1;
      }
      std::ostringstream ss;
      ss << in.rdbuf();
      source = ss.str();
    }

    using clock = std::chrono::steady_clock;
    const auto t0 = clock::now();
    rvasm::Program program = rvasm::assemble(source);
    const std::string lint_what = have_kernel ? generated.name() : file;
    if (lint_json) {
      // Lint-only mode: machine-readable report, no simulation.
      const auto lint_report = lint::lint_program(program, params.num_cores);
      std::printf("%s\n", lint_report.json().c_str());
      return lint_report.clean() ? 0 : 1;
    }
    // Warn or fail before spending cycles on a broken program (strict mode
    // throws; the catch below renders the value-carrying diagnostics).
    if (lint::pipeline_mode() != lint::Mode::kOff) {
      const auto lint_report = lint::lint_program(program, params.num_cores);
      if (!lint_report.clean()) {
        const std::string header =
            "lint: " + lint_what + ": " + std::to_string(lint_report.diags.size()) +
            " diagnostic" + (lint_report.diags.size() == 1 ? "" : "s");
        if (lint::pipeline_mode() == lint::Mode::kStrict) {
          throw copift::Error(header + "\n" + lint_report.summary());
        }
        std::fprintf(stderr, "%s\n%s\n", header.c_str(), lint_report.summary().c_str());
      } else if (lint_flag) {
        std::printf("lint:          clean (%zu rules, %u hart%s)\n", lint::kNumRules,
                    params.num_cores, params.num_cores == 1 ? "" : "s");
      }
    }
    sim::Cluster cluster(std::move(program), params);
    const auto t1 = clock::now();
    cluster.set_tracing(trace || report || !trace_json.empty());
    if (have_kernel) kernels::populate_inputs(cluster, generated);
    const auto t2 = clock::now();
    sim::RunResult result;
    if (gdb_port >= 0) {
      // Wait-for-attach before cycle 0: the stub accepts one client, then
      // the client owns execution until the program exits or it detaches.
      debug::GdbStub stub(cluster, {static_cast<std::uint16_t>(gdb_port), false});
      std::printf("gdb stub listening on 127.0.0.1:%u\n", stub.port());
      std::fflush(stdout);
      result = stub.serve();
    } else {
      result = cluster.run();
    }
    const auto t3 = clock::now();
    std::printf("halted after %llu cycles (exit code %u)\n",
                static_cast<unsigned long long>(result.cycles), result.exit_code);
    print_summary(cluster);
    if (profile) {
      const auto ms = [](clock::duration d) {
        return std::chrono::duration<double, std::milli>(d).count();
      };
      const double sim_seconds = std::chrono::duration<double>(t3 - t2).count();
      const double cps = sim_seconds > 0.0
                             ? static_cast<double>(result.cycles) / sim_seconds
                             : 0.0;
      std::printf("\n--- host profile ---\n");
      std::printf("assemble+decode:  %.3f ms\n", ms(t1 - t0));
      std::printf("input setup:      %.3f ms\n", ms(t2 - t1));
      std::printf("simulation:       %.3f ms\n", ms(t3 - t2));
      std::printf("host throughput:  %.0f simulated cycles/s\n", cps);
      std::printf("skip-ahead:       %s, %llu jumps covering %llu of %llu cycles (%.1f%%)\n",
                  skip_ahead ? "on" : "off",
                  static_cast<unsigned long long>(cluster.skip_jumps()),
                  static_cast<unsigned long long>(cluster.skipped_cycles()),
                  static_cast<unsigned long long>(result.cycles),
                  result.cycles > 0
                      ? 100.0 * static_cast<double>(cluster.skipped_cycles()) /
                            static_cast<double>(result.cycles)
                      : 0.0);
    }
    if (have_kernel && verify) {
      kernels::verify_outputs(cluster, generated);
      std::printf("verification:  PASS (bit-exact vs golden reference)\n");
    } else if (have_kernel) {
      std::printf("verification:  skipped (--no-verify)\n");
    }
    if (!trace_json.empty()) {
      std::ofstream out(trace_json);
      if (!out) {
        std::fprintf(stderr, "cannot open %s for writing\n", trace_json.c_str());
        return 1;
      }
      sim::write_chrome_trace(out, cluster);  // one track group per hart
      std::printf("trace:         %s (load at https://ui.perfetto.dev)\n", trace_json.c_str());
    }
    if (report) {
      std::printf("\n%s\n%s\n%s\n%s",
                  sim::render_report(cluster.tracer(), cluster.counters(), 10,
                                     cluster.num_cores(), &cluster.program())
                      .c_str(),
                  sim::render_hart_summary(cluster).c_str(),
                  render_dma_report(cluster).c_str(),
                  sim::stall_taxonomy_legend().c_str());
      const auto lint_report = lint::lint_program(cluster.program(), cluster.num_cores());
      if (lint_report.clean()) {
        std::printf("lint: clean (%zu rules)\n", lint::kNumRules);
      } else {
        std::printf("lint: %zu diagnostics (rerun with --lint for details)\n",
                    lint_report.diags.size());
      }
    }
    if (trace) {
      std::printf("\n--- first 64 trace entries ---\n");
      unsigned count = 0;
      for (const auto& e : cluster.tracer().entries()) {
        if (++count > 64) break;
        (void)e;
      }
      std::fputs(cluster.tracer()
                     .render(0, cluster.tracer().entries().size() > 64
                                    ? cluster.tracer().entries()[63].cycle
                                    : UINT64_MAX)
                     .c_str(),
                 stdout);
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  return 0;
}

#!/usr/bin/env python3
"""Dependency-free GDB remote-serial-protocol client for the copift_sim stub.

Library half: RspClient speaks framed RSP (`$...#xx`, acks, escaping) over a
loopback TCP socket and exposes typed helpers for registers, memory,
breakpoints, stepping and `monitor` commands.

CLI half: a headless smoke scenario used by CI and the test suite against
`copift_sim --gdb` — set a breakpoint at a label, hit it on every hart, read
GPR/FPR/TCDM state and stall counters, single-step, then continue to a clean
exit:

    copift_sim --kernel axpy --cores 4 --gdb 0 &   # prints the bound port
    python3 tools/rsp_client.py --port PORT --harts 4 smoke

Exits 0 when every check passed, 1 with a diagnostic otherwise.
"""

import argparse
import binascii
import re
import socket
import sys


def checksum(payload: bytes) -> int:
    return sum(payload) % 256


def escape(payload: bytes) -> bytes:
    out = bytearray()
    for b in payload:
        if b in (0x23, 0x24, 0x7D):  # '#', '$', '}'
            out += bytes((0x7D, b ^ 0x20))
        else:
            out.append(b)
    return bytes(out)


def unescape(raw: bytes) -> bytes:
    out = bytearray()
    i = 0
    while i < len(raw):
        if raw[i] == 0x7D and i + 1 < len(raw):
            out.append(raw[i + 1] ^ 0x20)
            i += 2
        else:
            out.append(raw[i])
            i += 1
    return bytes(out)


def frame(payload: bytes) -> bytes:
    body = escape(payload)
    return b"$" + body + b"#" + f"{checksum(body):02x}".encode()


class RspError(Exception):
    pass


class RspClient:
    """One RSP session. Ack mode stays on (the stub never negotiates it off)."""

    def __init__(self, host: str, port: int, timeout: float = 60.0, verbose: bool = False):
        self.sock = socket.create_connection((host, port), timeout=timeout)
        self.sock.settimeout(timeout)
        self.buf = b""
        self.verbose = verbose

    def close(self):
        self.sock.close()

    def _recv_more(self):
        chunk = self.sock.recv(4096)
        if not chunk:
            raise RspError("connection closed by stub")
        self.buf += chunk

    def _recv_packet(self) -> bytes:
        """Read one framed packet, answer '+', return the unescaped payload."""
        while True:
            start = self.buf.find(b"$")
            if start >= 0:
                end = self.buf.find(b"#", start)
                if end >= 0 and end + 2 < len(self.buf):
                    body = self.buf[start + 1:end]
                    want = int(self.buf[end + 1:end + 3], 16)
                    self.buf = self.buf[end + 3:]
                    if checksum(body) != want:
                        self.sock.sendall(b"-")
                        continue
                    self.sock.sendall(b"+")
                    payload = unescape(body)
                    if self.verbose:
                        print(f"<- {payload.decode(errors='replace')}", file=sys.stderr)
                    return payload
            self._recv_more()

    def _recv_ack(self):
        while True:
            for i, b in enumerate(self.buf):
                if b in (0x2B, 0x2D):  # '+', '-'
                    ack = self.buf[i]
                    self.buf = self.buf[:i] + self.buf[i + 1:]
                    if ack == 0x2D:
                        raise RspError("stub rejected packet checksum (NACK)")
                    return
            self._recv_more()

    def cmd(self, payload: str) -> str:
        """Send one command, return the stub's reply payload."""
        if self.verbose:
            print(f"-> {payload}", file=sys.stderr)
        self.sock.sendall(frame(payload.encode()))
        self._recv_ack()
        return self._recv_packet().decode(errors="replace")

    def interrupt(self):
        """Ctrl-C: a bare 0x03 byte; the stop reply follows."""
        self.sock.sendall(b"\x03")
        return self._recv_packet().decode(errors="replace")

    # --- typed helpers ------------------------------------------------------

    def monitor(self, text: str) -> str:
        reply = self.cmd("qRcmd," + text.encode().hex())
        if reply in ("", "OK"):
            return ""
        if reply.startswith("E"):
            raise RspError(f"monitor {text!r} failed: {reply}")
        return bytes.fromhex(reply).decode(errors="replace")

    def set_thread(self, hart: int):
        reply = self.cmd(f"Hg{hart + 1:x}")
        if reply != "OK":
            raise RspError(f"Hg failed: {reply}")

    def read_registers(self):
        """Returns (gprs[32], pc, fprs[32]) for the focus hart."""
        reply = self.cmd("g")
        if reply.startswith("E"):
            raise RspError(f"g failed: {reply}")
        raw = bytes.fromhex(reply)
        gprs = [int.from_bytes(raw[i * 4:i * 4 + 4], "little") for i in range(32)]
        pc = int.from_bytes(raw[128:132], "little")
        fprs = [int.from_bytes(raw[132 + i * 8:140 + i * 8], "little")
                for i in range(32)] if len(raw) >= 132 + 256 else []
        return gprs, pc, fprs

    def read_reg(self, regnum: int) -> int:
        reply = self.cmd(f"p{regnum:x}")
        if reply.startswith("E"):
            raise RspError(f"p{regnum:x} failed: {reply}")
        return int.from_bytes(bytes.fromhex(reply), "little")

    def write_reg(self, regnum: int, value: int, bits: int = 32):
        data = value.to_bytes(bits // 8, "little").hex()
        reply = self.cmd(f"P{regnum:x}={data}")
        if reply != "OK":
            raise RspError(f"P{regnum:x} failed: {reply}")

    def read_mem(self, addr: int, length: int) -> bytes:
        reply = self.cmd(f"m{addr:x},{length:x}")
        if reply.startswith("E"):
            raise RspError(f"m failed at 0x{addr:x}: {reply}")
        return bytes.fromhex(reply)

    def write_mem(self, addr: int, data: bytes):
        reply = self.cmd(f"M{addr:x},{len(data):x}:{data.hex()}")
        if reply != "OK":
            raise RspError(f"M failed at 0x{addr:x}: {reply}")

    def set_breakpoint(self, addr: int):
        reply = self.cmd(f"Z0,{addr:x},4")
        if reply != "OK":
            raise RspError(f"Z0 failed: {reply}")

    def clear_breakpoint(self, addr: int):
        reply = self.cmd(f"z0,{addr:x},4")
        if reply != "OK":
            raise RspError(f"z0 failed: {reply}")

    def set_watchpoint(self, addr: int, length: int, kind: int = 2):
        reply = self.cmd(f"Z{kind},{addr:x},{length:x}")
        if reply != "OK":
            raise RspError(f"Z{kind} failed: {reply}")

    def cont(self) -> str:
        return self.cmd("c")

    def step(self) -> str:
        return self.cmd("s")

    def label_addr(self, label: str) -> int:
        text = self.monitor(f"addr {label}").strip()
        if not text.startswith("0x"):
            raise RspError(f"monitor addr {label}: unexpected reply {text!r}")
        return int(text, 16)

    @staticmethod
    def stop_thread(reply: str):
        """Hart index from a T stop reply's thread:<tid>; pair, else None."""
        m = re.search(r"thread:([0-9a-fA-F]+);", reply)
        return int(m.group(1), 16) - 1 if m else None


# --- CI smoke scenario ------------------------------------------------------

def fail(msg: str) -> int:
    print(f"rsp smoke: FAIL: {msg}", file=sys.stderr)
    return 1


def smoke(args) -> int:
    c = RspClient(args.host, args.port, timeout=args.timeout, verbose=args.verbose)
    try:
        supported = c.cmd("qSupported:swbreak+")
        if "PacketSize" not in supported:
            return fail(f"qSupported reply looks wrong: {supported!r}")
        first = c.cmd("?")
        if not first.startswith("T"):
            return fail(f"expected initial stop reply, got {first!r}")

        # Thread enumeration must list every hart.
        threads = c.cmd("qfThreadInfo")
        tids = threads[1:].split(",") if threads.startswith("m") else []
        if len(tids) != args.harts:
            return fail(f"expected {args.harts} threads, got {threads!r}")

        # Breakpoint at the label every hart executes.
        bp = c.label_addr(args.label)
        c.set_breakpoint(bp)
        print(f"rsp smoke: breakpoint at {args.label} = 0x{bp:x}")

        # Continue until the breakpoint reported on every hart.
        seen = set()
        for _ in range(args.harts * 16):
            reply = c.cont()
            if reply.startswith("W"):
                return fail(f"program exited before every hart hit the "
                            f"breakpoint (saw harts {sorted(seen)})")
            hart = c.stop_thread(reply)
            if hart is None or "swbreak" not in reply:
                return fail(f"unexpected stop reply {reply!r}")
            seen.add(hart)
            if len(seen) == args.harts:
                break
        if len(seen) != args.harts:
            return fail(f"breakpoint hit only on harts {sorted(seen)} "
                        f"of {args.harts}")
        print(f"rsp smoke: breakpoint hit on all {args.harts} harts")

        # Registers: every hart must be stopped at the breakpoint PC, with
        # mhartid-consistent state reachable per thread.
        for hart in range(args.harts):
            c.set_thread(hart)
            _, pc, fprs = c.read_registers()
            if pc != bp:
                return fail(f"hart {hart} stopped at 0x{pc:x}, expected 0x{bp:x}")
            if c.read_reg(2) == 0:  # sp is never 0 on a running hart
                return fail(f"hart {hart} has sp == 0")
            if len(fprs) != 32:
                return fail("g reply carries no FPRs (target.xml ignored?)")
            c.read_reg(33)  # ft0 must be readable via p as well
        c.set_thread(0)

        # Memory: the breakpoint instruction itself, plus a TCDM window.
        insn = c.read_mem(bp, 4)
        if len(insn) != 4:
            return fail("m at breakpoint returned wrong length")
        if args.mem_label:
            addr = c.label_addr(args.mem_label)
            data = c.read_mem(addr, 32)
            if len(data) != 32:
                return fail(f"m at {args.mem_label} returned wrong length")
            print(f"rsp smoke: {args.mem_label}[0:32] = {data[:8].hex()}...")

        # Monitor commands: stall counters and symbolized PCs.
        stalls = c.monitor("stalls")
        if "hart 0" not in stalls:
            return fail(f"monitor stalls reply looks wrong: {stalls!r}")
        where = c.monitor("where")
        if args.label.split("+")[0] not in where:
            return fail(f"monitor where not symbolized: {where!r}")
        c.monitor("energy")
        c.monitor("dma")

        # Single-step: the focus hart advances by exactly one instruction.
        _, pc_before, _ = c.read_registers()
        reply = c.step()
        if not reply.startswith("T"):
            return fail(f"step reply {reply!r}")
        _, pc_after, _ = c.read_registers()
        if pc_after == pc_before:
            return fail("single-step did not advance the PC")
        print(f"rsp smoke: stepped 0x{pc_before:x} -> 0x{pc_after:x}")

        # Clear the breakpoint and run to a clean exit.
        c.clear_breakpoint(bp)
        reply = c.cont()
        if not reply.startswith("W"):
            return fail(f"expected exit reply, got {reply!r}")
        code = int(reply[1:3], 16)
        if code != 0:
            return fail(f"program exited with code {code}")
        print("rsp smoke: PASS (clean exit)")
        return 0
    except (RspError, socket.timeout, binascii.Error, ValueError) as e:
        return fail(str(e))
    finally:
        c.close()


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__,
                                     formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument("mode", choices=["smoke"], nargs="?", default="smoke")
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, required=True)
    parser.add_argument("--harts", type=int, default=1,
                        help="expected hart count (default 1)")
    parser.add_argument("--label", default="body_begin",
                        help="breakpoint label every hart executes")
    parser.add_argument("--mem-label", default="xarr",
                        help="data label to read 32 TCDM bytes from ('' skips)")
    parser.add_argument("--timeout", type=float, default=60.0)
    parser.add_argument("--verbose", action="store_true")
    args = parser.parse_args()
    return smoke(args)


if __name__ == "__main__":
    sys.exit(main())

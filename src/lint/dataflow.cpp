#include "lint/dataflow.hpp"

#include <algorithm>
#include <cstdio>
#include <deque>
#include <optional>
#include <string>

#include "common/layout.hpp"
#include "isa/csr.hpp"
#include "isa/instr.hpp"
#include "isa/reg.hpp"
#include "ssr/ssr.hpp"

namespace copift::lint {

// ---------------------------------------------------------------------------
// Lattice operations
// ---------------------------------------------------------------------------

Value Value::join(const Value& o) const noexcept {
  if (tag == o.tag) {
    if (tag != Tag::kConst || c == o.c) return *this;
    return unknown();  // two different constants
  }
  // Any mix involving (maybe-)undef is maybe-undef: the register is not
  // written on every path.
  if (tag == Tag::kUndef || o.tag == Tag::kUndef || tag == Tag::kMaybeUndef ||
      o.tag == Tag::kMaybeUndef) {
    return {Tag::kMaybeUndef, 0};
  }
  return unknown();  // const vs unknown
}

FpDef join(FpDef a, FpDef b) noexcept {
  if (a == b) return a;
  return FpDef::kMaybeUndef;
}

Tri join(Tri a, Tri b) noexcept { return a == b ? a : Tri::kTop; }

bool LaneState::join_from(const LaneState& o) noexcept {
  const LaneState before = *this;
  if (armed != o.armed) armed = Armed::kTop;
  if (remaining != o.remaining) remaining = Count::unknown();
  for (std::size_t i = 0; i < cfg.size(); ++i) cfg[i] = cfg[i].join(o.cfg[i]);
  idx_touched = idx_touched || o.idx_touched;
  return !(*this == before);
}

bool DmaState::join_from(const DmaState& o) {
  const DmaState before = *this;
  src = src.join(o.src);
  dst = dst.join(o.dst);
  saturated = saturated || o.saturated;
  if (saturated) {
    pending.clear();
  } else {
    // Keep only windows pending on *both* paths, so the load-before-wait
    // rule stays a must-property.
    std::vector<Interval> both;
    for (const Interval& iv : pending) {
      if (std::find(o.pending.begin(), o.pending.end(), iv) != o.pending.end()) {
        both.push_back(iv);
      }
    }
    pending = std::move(both);
  }
  return !(*this == before);
}

void DmaState::add_pending(std::uint32_t lo, std::uint32_t hi) {
  if (saturated || lo >= hi) return;
  if (pending.size() >= kMaxPending) {
    saturated = true;
    pending.clear();
    return;
  }
  pending.push_back({lo, hi});
  std::sort(pending.begin(), pending.end(),
            [](const Interval& a, const Interval& b) { return a.lo < b.lo; });
}

HartState HartState::entry(unsigned hart) {
  HartState s;
  s.reachable = true;
  s.gpr[0] = Value::konst(0);
  s.gpr[2] = Value::konst(kStackTop - hart * kHartStackBytes);  // sp
  // SSR config words reset to zero in hardware; starting them as constant 0
  // keeps stream element counts exact for codegen that never writes `repeat`.
  for (LaneState& lane : s.lane) lane.cfg.fill(Value::konst(0));
  return s;
}

bool HartState::join_from(const HartState& o) {
  if (!o.reachable) return false;
  if (!reachable) {
    *this = o;
    return true;
  }
  bool changed = false;
  for (std::size_t i = 0; i < 32; ++i) {
    const Value v = gpr[i].join(o.gpr[i]);
    if (!(v == gpr[i])) { gpr[i] = v; changed = true; }
    const FpDef f = lint::join(fpr[i], o.fpr[i]);
    if (f != fpr[i]) { fpr[i] = f; changed = true; }
  }
  const Tri e = lint::join(ssr_enabled, o.ssr_enabled);
  if (e != ssr_enabled) { ssr_enabled = e; changed = true; }
  for (std::size_t l = 0; l < lane.size(); ++l) {
    changed = lane[l].join_from(o.lane[l]) || changed;
  }
  changed = dma.join_from(o.dma) || changed;
  return changed;
}

// ---------------------------------------------------------------------------
// Transfer function
// ---------------------------------------------------------------------------

namespace {

using isa::ExecUnit;
using isa::Format;
using isa::InstrInfo;
using isa::Mnemonic;
using isa::RegClass;

std::string hex(std::uint32_t v) {
  char buf[16];
  std::snprintf(buf, sizeof buf, "0x%x", v);
  return buf;
}

/// Streams never total more than this; larger products mean garbage geometry
/// and the counter degrades to unknown rather than risking overflow.
constexpr std::uint64_t kMaxElements = std::uint64_t{1} << 40;

unsigned access_bytes(Mnemonic m) {
  switch (m) {
    case Mnemonic::kLb: case Mnemonic::kLbu: case Mnemonic::kSb: return 1;
    case Mnemonic::kLh: case Mnemonic::kLhu: case Mnemonic::kSh: return 2;
    case Mnemonic::kFld: case Mnemonic::kFsd: return 8;
    default: return 4;  // lw/sw/flw/fsw
  }
}

/// Mirror of sim::Core's ALU/mul/div fold over two known operands — the
/// abstract interpreter must agree bit-for-bit with the simulator or the
/// address rules would lie.
std::uint32_t fold_alu(Mnemonic m, std::uint32_t a, std::uint32_t b,
                       std::uint32_t pc, std::int32_t imm) {
  const auto sa = static_cast<std::int32_t>(a);
  const auto sb = static_cast<std::int32_t>(b);
  switch (m) {
    case Mnemonic::kLui: return static_cast<std::uint32_t>(imm) << 12;
    case Mnemonic::kAuipc: return pc + (static_cast<std::uint32_t>(imm) << 12);
    case Mnemonic::kAddi: return a + static_cast<std::uint32_t>(imm);
    case Mnemonic::kSlti: return sa < imm ? 1 : 0;
    case Mnemonic::kSltiu: return a < static_cast<std::uint32_t>(imm) ? 1 : 0;
    case Mnemonic::kXori: return a ^ static_cast<std::uint32_t>(imm);
    case Mnemonic::kOri: return a | static_cast<std::uint32_t>(imm);
    case Mnemonic::kAndi: return a & static_cast<std::uint32_t>(imm);
    case Mnemonic::kSlli: return a << (imm & 31);
    case Mnemonic::kSrli: return a >> (imm & 31);
    case Mnemonic::kSrai: return static_cast<std::uint32_t>(sa >> (imm & 31));
    case Mnemonic::kAdd: return a + b;
    case Mnemonic::kSub: return a - b;
    case Mnemonic::kSll: return a << (b & 31);
    case Mnemonic::kSlt: return sa < sb ? 1 : 0;
    case Mnemonic::kSltu: return a < b ? 1 : 0;
    case Mnemonic::kXor: return a ^ b;
    case Mnemonic::kSrl: return a >> (b & 31);
    case Mnemonic::kSra: return static_cast<std::uint32_t>(sa >> (b & 31));
    case Mnemonic::kOr: return a | b;
    case Mnemonic::kAnd: return a & b;
    case Mnemonic::kMul: return a * b;
    case Mnemonic::kMulh:
      return static_cast<std::uint32_t>(
          (static_cast<std::int64_t>(sa) * static_cast<std::int64_t>(sb)) >> 32);
    case Mnemonic::kMulhsu:
      return static_cast<std::uint32_t>(
          (static_cast<std::int64_t>(sa) * static_cast<std::int64_t>(static_cast<std::uint64_t>(b))) >> 32);
    case Mnemonic::kMulhu:
      return static_cast<std::uint32_t>(
          (static_cast<std::uint64_t>(a) * static_cast<std::uint64_t>(b)) >> 32);
    case Mnemonic::kDiv:
      if (b == 0) return ~std::uint32_t{0};
      if (a == 0x8000'0000u && sb == -1) return a;
      return static_cast<std::uint32_t>(sa / sb);
    case Mnemonic::kDivu:
      return b == 0 ? ~std::uint32_t{0} : a / b;
    case Mnemonic::kRem:
      if (b == 0) return a;
      if (a == 0x8000'0000u && sb == -1) return 0;
      return static_cast<std::uint32_t>(sa % sb);
    case Mnemonic::kRemu:
      return b == 0 ? a : a % b;
    default: return 0;
  }
}

bool branch_taken(Mnemonic m, std::uint32_t a, std::uint32_t b) {
  const auto sa = static_cast<std::int32_t>(a);
  const auto sb = static_cast<std::int32_t>(b);
  switch (m) {
    case Mnemonic::kBeq: return a == b;
    case Mnemonic::kBne: return a != b;
    case Mnemonic::kBlt: return sa < sb;
    case Mnemonic::kBge: return sa >= sb;
    case Mnemonic::kBltu: return a < b;
    case Mnemonic::kBgeu: return a >= b;
    default: return false;
  }
}

/// One block-local walk context: applies the transfer function instruction
/// by instruction, tracking the active FREP replay multiplier, and (in the
/// report pass) emits diagnostics into `sink`.
class Walker {
 public:
  Walker(const rvasm::Program& program, const Cfg& cfg, unsigned hart,
         std::vector<LintDiag>* sink, std::vector<InstrIndex>* barriers)
      : program_(program), cfg_(cfg), hart_(hart), sink_(sink), barriers_(barriers) {
    // Map each frep instruction to its region id for multiplier tracking.
    frep_region_by_instr_.assign(program.text.size(), kNoInstr);
    for (std::size_t r = 0; r < cfg.frep_regions.size(); ++r) {
      frep_region_by_instr_[cfg.frep_regions[r].frep] = static_cast<std::uint32_t>(r);
    }
  }

  void begin_block() {
    active_region_ = kNoInstr;
    mult_ = Count::of(1);
    queued_region_ = kNoInstr;
    queued_mult_ = Count::of(1);
  }

  void step(HartState& s, InstrIndex idx) {
    sync_frep_region(idx);
    const isa::Instr& in = program_.text[idx];
    const InstrInfo& mi = in.meta();

    check_gpr_reads(s, in, mi, idx);
    const std::array<unsigned, 3> pops = check_fp_reads(s, in, mi, idx);
    apply_pops(s, pops);

    switch (mi.unit) {
      case ExecUnit::kIntAlu:
      case ExecUnit::kMul:
      case ExecUnit::kDiv:
        step_alu(s, in, mi, idx);
        break;
      case ExecUnit::kLoad:
        check_access(s, in, idx, /*is_load=*/true);
        set_gpr(s, in.rd, Value::unknown());
        break;
      case ExecUnit::kStore:
        check_access(s, in, idx, /*is_load=*/false);
        break;
      case ExecUnit::kBranch:
        break;  // reads already checked; successor choice is the caller's
      case ExecUnit::kJump:
        set_gpr(s, in.rd, Value::konst(cfg_.pc_of(idx) + 4));
        break;
      case ExecUnit::kCsr:
        step_csr(s, in, idx);
        break;
      case ExecUnit::kSys:
      case ExecUnit::kBarrier:
        break;
      case ExecUnit::kFpu:
        step_fp_result(s, in, mi);
        break;
      case ExecUnit::kFpLoad:
        check_access(s, in, idx, /*is_load=*/true);
        step_fp_result(s, in, mi);
        break;
      case ExecUnit::kFpStore:
        check_access(s, in, idx, /*is_load=*/false);
        break;
      case ExecUnit::kFrep:
        queue_frep(s, in, idx);
        break;
      case ExecUnit::kSsrCfg:
        step_ssr_cfg(s, in, idx);
        break;
      case ExecUnit::kDma:
        step_dma(s, in, idx);
        break;
    }
  }

  /// Fold the terminator branch of a block whose walk ended in `s`:
  /// true/false when both operands are constants, nullopt otherwise.
  [[nodiscard]] std::optional<bool> fold_branch(const HartState& s,
                                                InstrIndex idx) const {
    const isa::Instr& in = program_.text[idx];
    if (in.meta().unit != ExecUnit::kBranch) return std::nullopt;
    const Value a = get(s, in.rs1);
    const Value b = get(s, in.rs2);
    if (!a.is_const() || !b.is_const()) return std::nullopt;
    return branch_taken(in.mnemonic, a.c, b.c);
  }

 private:
  static Value get(const HartState& s, unsigned r) {
    return r == 0 ? Value::konst(0) : s.gpr[r];
  }
  static void set_gpr(HartState& s, unsigned r, Value v) {
    if (r != 0) s.gpr[r] = v;
  }

  void diag(Rule rule, InstrIndex idx, std::string message) {
    if (!sink_) return;
    LintDiag d;
    d.rule = rule;
    d.pc = cfg_.pc_of(idx);
    d.hart = hart_;
    d.message = std::move(message);
    d.label = program_.symbolize(d.pc);
    sink_->push_back(std::move(d));
  }

  void sync_frep_region(InstrIndex idx) {
    const std::uint32_t r = cfg_.frep_region_of[idx];
    if (r == active_region_) return;
    active_region_ = r;
    if (r == kNoInstr) {
      mult_ = Count::of(1);
    } else if (r == queued_region_) {
      mult_ = queued_mult_;  // entered the body right after its frep
    } else {
      mult_ = Count::unknown();  // entered a body without executing its frep
    }
  }

  void queue_frep(HartState& s, const isa::Instr& in, InstrIndex idx) {
    queued_region_ = frep_region_by_instr_[idx];
    const Value n = get(s, in.rs1);
    if (n.is_const() && n.c < kMaxElements) {
      queued_mult_ = Count::of(static_cast<std::uint64_t>(n.c) + 1);
    } else {
      queued_mult_ = Count::unknown();
    }
  }

  void check_gpr_reads(const HartState& s, const isa::Instr& in,
                       const InstrInfo& mi, InstrIndex idx) {
    const auto check = [&](RegClass cls, unsigned r) {
      if (cls != RegClass::kInt || r == 0) return;
      if (s.gpr[r].is_undef()) {
        diag(Rule::kUseBeforeDef, idx,
             isa::int_reg_name(r) + " read by " + std::string(mi.name) +
                 " but never written on any path to this point");
      }
    };
    check(mi.rs1_class, in.rs1);
    check(mi.rs2_class, in.rs2);
  }

  /// Check FP source reads and return the per-lane pop count of this
  /// instruction (occurrences, not yet multiplied by the FREP factor).
  std::array<unsigned, 3> check_fp_reads(const HartState& s, const isa::Instr& in,
                                         const InstrInfo& mi, InstrIndex idx) {
    std::array<unsigned, 3> pops{};
    const auto check = [&](RegClass cls, unsigned r) {
      if (cls != RegClass::kFp) return;
      if (r >= isa::kNumSsrLanes || s.ssr_enabled == Tri::kFalse) {
        // A plain FP register read (lanes only remap ft0..ft2 under SSR).
        if (s.fpr[r] == FpDef::kUndef) {
          diag(Rule::kUseBeforeDef, idx,
               isa::fp_reg_name(r) + " read by " + std::string(mi.name) +
                   " but never written on any path to this point");
        }
        return;
      }
      const LaneState& lane = s.lane[r];
      if (s.ssr_enabled == Tri::kTrue && lane.armed == LaneState::Armed::kRead) {
        ++pops[r];  // stream pop
        return;
      }
      if (s.ssr_enabled == Tri::kTrue && lane.armed == LaneState::Armed::kIdle &&
          s.fpr[r] == FpDef::kUndef) {
        diag(Rule::kSsrReadBeforeConfig, idx,
             isa::fp_reg_name(r) + " read under SSR but lane " + std::to_string(r) +
                 " was never armed (no rptr/wptr config write) and the register "
                 "itself holds no value");
      }
      // Armed-write or unknown lane state: stay silent (conservative).
    };
    check(mi.rs1_class, in.rs1);
    check(mi.rs2_class, in.rs2);
    check(mi.rs3_class, in.rs3);
    return pops;
  }

  void apply_pops(HartState& s, const std::array<unsigned, 3>& pops) {
    for (unsigned l = 0; l < isa::kNumSsrLanes; ++l) {
      if (pops[l] == 0) continue;
      LaneState& lane = s.lane[l];
      if (!lane.remaining.known) continue;
      if (!mult_.known) {
        lane.remaining = Count::unknown();
        continue;
      }
      const std::uint64_t consumed = static_cast<std::uint64_t>(pops[l]) * mult_.v;
      lane.remaining.v = consumed >= lane.remaining.v ? 0 : lane.remaining.v - consumed;
    }
  }

  void step_alu(HartState& s, const isa::Instr& in, const InstrInfo& mi,
                InstrIndex idx) {
    Value a = get(s, in.rs1);
    Value b = get(s, in.rs2);
    // U-format (lui/auipc) has no register sources; the fold only needs imm/pc.
    const bool unary = mi.rs1_class != RegClass::kInt;
    const bool binary = mi.rs2_class == RegClass::kInt;
    if ((unary || a.is_const()) && (!binary || b.is_const())) {
      set_gpr(s, in.rd,
              Value::konst(fold_alu(in.mnemonic, a.c, b.c, cfg_.pc_of(idx), in.imm)));
    } else {
      set_gpr(s, in.rd, Value::unknown());
    }
  }

  void check_access(HartState& s, const isa::Instr& in, InstrIndex idx,
                    bool is_load) {
    const Value base = get(s, in.rs1);
    if (!base.is_const()) return;
    const std::uint32_t lo = base.c + static_cast<std::uint32_t>(in.imm);
    const unsigned size = access_bytes(in.mnemonic);
    const std::uint64_t hi = static_cast<std::uint64_t>(lo) + size;
    const bool tcdm = lo >= kTcdmBase && hi <= std::uint64_t{kTcdmBase} + kTcdmSize;
    const bool dram = lo >= kDramBase && hi <= std::uint64_t{kDramBase} + kDramSize;
    if (!tcdm && !dram) {
      diag(Rule::kOobAccess, idx,
           std::string(in.meta().name) + " of " + std::to_string(size) +
               " bytes at constant address " + hex(lo) +
               " lies outside TCDM [" + hex(kTcdmBase) + ", +128KiB) and DRAM [" +
               hex(kDramBase) + ", +32MiB)");
      return;
    }
    if (is_load && !s.dma.saturated) {
      for (const Interval& iv : s.dma.pending) {
        if (lo < iv.hi && hi > iv.lo) {
          diag(Rule::kDmaLoadBeforeWait, idx,
               std::string(in.meta().name) + " at " + hex(lo) +
                   " reads DMA destination window [" + hex(iv.lo) + ", " +
                   hex(iv.hi) + ") with no dmwait since the dmcpy that wrote it");
          break;
        }
      }
    }
  }

  void step_csr(HartState& s, const isa::Instr& in, InstrIndex idx) {
    const auto csr = static_cast<std::uint16_t>(in.imm);
    const bool imm_form = in.mnemonic == Mnemonic::kCsrrwi ||
                          in.mnemonic == Mnemonic::kCsrrsi ||
                          in.mnemonic == Mnemonic::kCsrrci;
    // Source value: zimm5 for the immediate forms, rs1 for the register forms.
    Value src = imm_form ? Value::konst(in.rs1) : get(s, in.rs1);
    const bool is_write = in.mnemonic == Mnemonic::kCsrrw || in.mnemonic == Mnemonic::kCsrrwi;
    const bool is_set = in.mnemonic == Mnemonic::kCsrrs || in.mnemonic == Mnemonic::kCsrrsi;
    // A csrrs/csrrc with source x0 / zimm 0 is a pure read.
    const bool pure_read = !is_write && ((imm_form && in.rs1 == 0) ||
                                         (!imm_form && in.rs1 == 0));

    if (csr == isa::kCsrBarrier && barriers_) barriers_->push_back(idx);

    if (csr == isa::kCsrSsr && !pure_read) {
      if (src.is_const()) {
        const bool bit0 = (src.c & 1) != 0;
        if (is_write) {
          set_ssr_enabled(s, bit0);
        } else if (bit0) {
          set_ssr_enabled(s, is_set);  // csrrs sets the bit, csrrc clears it
        }
      } else {
        s.ssr_enabled = Tri::kTop;
      }
    }

    // Result value.
    if (csr == isa::kCsrMhartid) {
      set_gpr(s, in.rd, Value::konst(hart_));
    } else {
      set_gpr(s, in.rd, Value::unknown());
    }
  }

  void set_ssr_enabled(HartState& s, bool on) {
    s.ssr_enabled = on ? Tri::kTrue : Tri::kFalse;
    if (!on) {
      // Disabling waits for write streams to drain and discards the read
      // generators: every lane returns to idle. Geometry words persist.
      for (LaneState& lane : s.lane) {
        lane.armed = LaneState::Armed::kIdle;
        lane.remaining = Count::of(0);
      }
    }
  }

  void step_ssr_cfg(HartState& s, const isa::Instr& in, InstrIndex idx) {
    if (in.mnemonic == Mnemonic::kScfgri) {
      set_gpr(s, in.rd, Value::unknown());
      return;
    }
    const auto word = static_cast<std::uint32_t>(in.imm);
    const std::uint32_t lane_no = word / 32;
    const std::uint32_t reg = word % 32;
    if (lane_no >= isa::kNumSsrLanes) return;
    LaneState& lane = s.lane[lane_no];
    const Value v = get(s, in.rs1);

    const bool is_arm = (reg >= ssr::kRegRptr0 && reg <= ssr::kRegWptr3) ||
                        reg == ssr::kRegIdxCfg;
    if (!is_arm) {
      // Geometry/stride/index-setup write. Rewriting these while a stream is
      // provably mid-flight is the classic lost-update codegen bug: the
      // in-flight generator keeps its armed snapshot, so the write silently
      // applies to the *next* arm only.
      if (s.ssr_enabled == Tri::kTrue &&
          (lane.armed == LaneState::Armed::kRead ||
           lane.armed == LaneState::Armed::kWrite) &&
          lane.remaining.known && lane.remaining.v > 0) {
        diag(Rule::kSsrReconfigWhileStreaming, idx,
             "lane " + std::to_string(lane_no) + " config word " +
                 std::to_string(reg) + " rewritten while the armed stream still has " +
                 std::to_string(lane.remaining.v) + " elements in flight");
      }
      if (reg <= ssr::kRegBound3) {
        lane.cfg[reg] = v;
      } else if (reg >= ssr::kRegIdxBase && reg <= ssr::kRegIdxShift) {
        lane.idx_touched = true;
      }
      return;
    }

    if (reg == ssr::kRegIdxCfg) {
      // ISSR: writing the index count arms the lane as an indirect read
      // stream; element accounting is data-dependent, so unknown.
      lane.armed = LaneState::Armed::kRead;
      lane.remaining = Count::unknown();
      lane.idx_touched = true;
      return;
    }

    const bool write_stream = reg >= ssr::kRegWptr0;
    const std::uint32_t dims = write_stream ? reg - ssr::kRegWptr0 + 1
                                            : reg - ssr::kRegRptr0 + 1;
    lane.armed = write_stream ? LaneState::Armed::kWrite : LaneState::Armed::kRead;
    lane.remaining = stream_total(lane, dims);
  }

  /// (repeat+1) * prod(bound_d + 1) for d < dims, when the geometry the arm
  /// snapshots is fully constant.
  static Count stream_total(const LaneState& lane, std::uint32_t dims) {
    if (lane.idx_touched) return Count::unknown();
    std::uint64_t total = 1;
    for (std::uint32_t w = 0; w <= dims; ++w) {  // word 0 = repeat, 1..dims = bounds
      const Value& v = lane.cfg[w];
      if (!v.is_const()) return Count::unknown();
      total *= static_cast<std::uint64_t>(v.c) + 1;
      if (total > kMaxElements) return Count::unknown();
    }
    return Count::of(total);
  }

  void step_fp_result(HartState& s, const isa::Instr& in, const InstrInfo& mi) {
    if (mi.rd_class == RegClass::kInt) {
      set_gpr(s, in.rd, Value::unknown());  // feq/flt/fle, fclass, fcvt.w.d, fmv.x.w
      return;
    }
    if (mi.rd_class != RegClass::kFp) return;
    if (in.rd < isa::kNumSsrLanes && s.ssr_enabled == Tri::kTrue &&
        s.lane[in.rd].armed == LaneState::Armed::kWrite) {
      // Result goes to the write stream, not the register file.
      LaneState& lane = s.lane[in.rd];
      if (lane.remaining.known) {
        if (!mult_.known) {
          lane.remaining = Count::unknown();
        } else {
          lane.remaining.v = mult_.v >= lane.remaining.v ? 0 : lane.remaining.v - mult_.v;
        }
      }
      return;
    }
    s.fpr[in.rd] = FpDef::kDef;
  }

  void step_dma(HartState& s, const isa::Instr& in, InstrIndex) {
    switch (in.mnemonic) {
      case Mnemonic::kDmsrc:
        s.dma.src = get(s, in.rs1);
        break;
      case Mnemonic::kDmdst:
        s.dma.dst = get(s, in.rs1);
        break;
      case Mnemonic::kDmcpy: {
        const Value size = get(s, in.rs1);
        if (s.dma.dst.is_const() && size.is_const()) {
          s.dma.add_pending(s.dma.dst.c,
                            static_cast<std::uint32_t>(
                                std::min<std::uint64_t>(std::uint64_t{s.dma.dst.c} + size.c,
                                                        ~std::uint32_t{0})));
        }
        // An untracked transfer cannot invalidate tracked windows: both stay
        // pending until dmwait either way.
        set_gpr(s, in.rd, Value::unknown());
        break;
      }
      case Mnemonic::kDmstat:
        set_gpr(s, in.rd, Value::unknown());
        break;
      case Mnemonic::kDmwait:
        s.dma.pending.clear();
        s.dma.saturated = false;
        break;
      default:
        break;
    }
  }

  const rvasm::Program& program_;
  const Cfg& cfg_;
  unsigned hart_;
  std::vector<LintDiag>* sink_;
  std::vector<InstrIndex>* barriers_;

  std::vector<std::uint32_t> frep_region_by_instr_;
  std::uint32_t active_region_ = kNoInstr;
  Count mult_ = Count::of(1);
  std::uint32_t queued_region_ = kNoInstr;
  Count queued_mult_ = Count::of(1);
};

}  // namespace

// ---------------------------------------------------------------------------
// Fixpoint driver + report pass
// ---------------------------------------------------------------------------

namespace {

/// Successor blocks of `b` given the out-state of its walk: a constant
/// branch condition folds to the single edge the hart actually takes.
std::vector<std::uint32_t> successors(const rvasm::Program& program, const Cfg& cfg,
                                      const Walker& walker, const HartState& out,
                                      std::uint32_t b) {
  const BasicBlock& block = cfg.blocks[b];
  const auto taken = walker.fold_branch(out, block.last);
  if (!taken.has_value()) return block.succs;
  std::vector<std::uint32_t> succs;
  if (*taken) {
    const InstrIndex t = resolve_target(cfg, program, block.last);
    if (t != kNoInstr) succs.push_back(cfg.block_of[t]);
  } else {
    const InstrIndex next = block.last + 1;
    if (next < program.text.size()) succs.push_back(cfg.block_of[next]);
  }
  return succs;
}

}  // namespace

HartAnalysis analyze_hart(const rvasm::Program& program, const Cfg& cfg,
                          unsigned hart, unsigned /*cores*/) {
  HartAnalysis result;
  result.hart = hart;
  result.block_in.assign(cfg.blocks.size(), HartState{});
  if (program.text.empty()) return result;

  // --- fixpoint ---
  (void)result.block_in[cfg.entry_block].join_from(HartState::entry(hart));
  std::deque<std::uint32_t> worklist{cfg.entry_block};
  std::vector<bool> queued(cfg.blocks.size(), false);
  queued[cfg.entry_block] = true;
  Walker walker(program, cfg, hart, nullptr, nullptr);
  while (!worklist.empty()) {
    const std::uint32_t b = worklist.front();
    worklist.pop_front();
    queued[b] = false;
    HartState out = result.block_in[b];
    walker.begin_block();
    const BasicBlock& block = cfg.blocks[b];
    for (InstrIndex i = block.first; i <= block.last; ++i) walker.step(out, i);
    for (const std::uint32_t succ : successors(program, cfg, walker, out, b)) {
      if (result.block_in[succ].join_from(out) && !queued[succ]) {
        queued[succ] = true;
        worklist.push_back(succ);
      }
    }
  }

  // --- report pass over the stable states ---
  Walker reporter(program, cfg, hart, &result.diags, &result.barrier_sites);
  for (std::uint32_t b = 0; b < cfg.blocks.size(); ++b) {
    if (!result.block_in[b].reachable) continue;
    HartState state = result.block_in[b];
    reporter.begin_block();
    const BasicBlock& block = cfg.blocks[b];
    for (InstrIndex i = block.first; i <= block.last; ++i) reporter.step(state, i);
  }
  return result;
}

}  // namespace copift::lint

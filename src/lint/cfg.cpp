#include "lint/cfg.hpp"

#include <algorithm>

#include "isa/instr.hpp"

namespace copift::lint {

namespace {

using isa::ExecUnit;
using isa::Mnemonic;

bool is_halt(Mnemonic m) noexcept {
  // ecall halts the hart; ebreak raises SimError — either way execution of
  // this hart ends here. fence shares ExecUnit::kSys but falls through.
  return m == Mnemonic::kEcall || m == Mnemonic::kEbreak;
}

bool is_terminator(const isa::Instr& instr) noexcept {
  return instr.meta().is_control_flow() || is_halt(instr.mnemonic);
}

}  // namespace

InstrIndex resolve_target(const Cfg& cfg, const rvasm::Program& program,
                          InstrIndex from) {
  const auto n = static_cast<InstrIndex>(program.text.size());
  const std::int64_t pc =
      static_cast<std::int64_t>(cfg.pc_of(from)) + program.text[from].imm;
  const std::int64_t off = pc - program.text_base;
  if (off < 0 || off % 4 != 0 || off / 4 >= n) return kNoInstr;
  return static_cast<InstrIndex>(off / 4);
}

Cfg build_cfg(const rvasm::Program& program) {
  Cfg cfg;
  cfg.text_base = program.text_base;
  const auto n = static_cast<InstrIndex>(program.text.size());
  cfg.block_of.assign(n, 0);
  cfg.frep_region_of.assign(n, kNoInstr);
  if (n == 0) {
    cfg.blocks.push_back(BasicBlock{});
    return cfg;
  }


  // --- leaders ---
  std::vector<bool> leader(n, false);
  leader[0] = true;
  for (InstrIndex i = 0; i < n; ++i) {
    const isa::Instr& instr = program.text[i];
    if (!is_terminator(instr)) continue;
    if (i + 1 < n) leader[i + 1] = true;
    if (instr.meta().unit == ExecUnit::kBranch ||
        instr.mnemonic == Mnemonic::kJal) {
      const InstrIndex t = resolve_target(cfg, program, i);
      if (t != kNoInstr) leader[t] = true;
    }
  }
  // The entry point may not be instruction 0.
  const std::int64_t entry_off =
      static_cast<std::int64_t>(program.entry) - program.text_base;
  InstrIndex entry_idx = 0;
  if (entry_off >= 0 && entry_off % 4 == 0 && entry_off / 4 < n) {
    entry_idx = static_cast<InstrIndex>(entry_off / 4);
    leader[entry_idx] = true;
  }

  // --- blocks ---
  for (InstrIndex i = 0; i < n; ++i) {
    if (leader[i]) {
      cfg.blocks.push_back(BasicBlock{i, i, {}, false});
    }
    cfg.block_of[i] = static_cast<std::uint32_t>(cfg.blocks.size() - 1);
    cfg.blocks.back().last = i;
  }
  cfg.entry_block = cfg.block_of[entry_idx];

  // --- edges ---
  for (auto& block : cfg.blocks) {
    const isa::Instr& term = program.text[block.last];
    const InstrIndex next = block.last + 1;
    const auto add_fallthrough = [&] {
      if (next < n) {
        block.succs.push_back(cfg.block_of[next]);
      } else {
        block.falls_off_end = true;
      }
    };
    if (term.meta().unit == ExecUnit::kBranch) {
      add_fallthrough();
      const InstrIndex t = resolve_target(cfg, program, block.last);
      if (t != kNoInstr) {
        block.succs.push_back(cfg.block_of[t]);  // deduplicated below
      } else {
        block.falls_off_end = true;  // branch leaves the text section
      }
    } else if (term.mnemonic == Mnemonic::kJal) {
      const InstrIndex t = resolve_target(cfg, program, block.last);
      if (t != kNoInstr) {
        block.succs.push_back(cfg.block_of[t]);
      } else {
        block.falls_off_end = true;
      }
    } else if (term.mnemonic == Mnemonic::kJalr) {
      // Indirect: targets unknown. Reachability-based rules are suppressed
      // via has_indirect_jump instead of guessing.
      cfg.has_indirect_jump = true;
    } else if (is_halt(term.mnemonic)) {
      // Execution ends; no successors.
    } else {
      add_fallthrough();
    }
    // Deduplicate a conditional branch whose target equals its fall-through.
    std::sort(block.succs.begin(), block.succs.end());
    block.succs.erase(std::unique(block.succs.begin(), block.succs.end()),
                      block.succs.end());
  }

  // --- FREP regions ---
  for (InstrIndex i = 0; i < n; ++i) {
    const Mnemonic m = program.text[i].mnemonic;
    if (m != Mnemonic::kFrepO && m != Mnemonic::kFrepI) continue;
    FrepRegion region;
    region.frep = i;
    const auto n_instr = static_cast<std::uint32_t>(
        std::max<std::int32_t>(program.text[i].imm, 0));
    region.body_first = i + 1;
    const std::uint64_t want_last = static_cast<std::uint64_t>(i) + n_instr;
    region.truncated = want_last >= n || n_instr == 0;
    region.body_last =
        static_cast<InstrIndex>(std::min<std::uint64_t>(want_last, n - 1));
    const auto id = static_cast<std::uint32_t>(cfg.frep_regions.size());
    for (InstrIndex j = region.body_first; j <= region.body_last && j < n; ++j) {
      // Nested bodies keep the innermost region (the outer frep-body-non-fp
      // diagnostic already fires on the inner frep instruction itself).
      cfg.frep_region_of[j] = id;
    }
    cfg.frep_regions.push_back(region);
  }

  return cfg;
}

}  // namespace copift::lint

#include "lint/lint.hpp"

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <set>
#include <sstream>
#include <tuple>

#include "common/error.hpp"
#include "isa/csr.hpp"
#include "isa/instr.hpp"
#include "isa/reg.hpp"
#include "lint/cfg.hpp"
#include "lint/dataflow.hpp"
#include "rvasm/assembler.hpp"

namespace copift::lint {

namespace {

using isa::Mnemonic;

constexpr const char* kRuleIds[kNumRules] = {
    "use-before-def",
    "oob-access",
    "ssr-read-before-config",
    "ssr-reconfig-while-streaming",
    "frep-body-non-fp",
    "frep-branch-into-body",
    "dma-load-before-wait",
    "barrier-divergence",
    "tiled-reg-clobber",
    "unreachable-code",
    "fall-off-end",
};

std::string hex(std::uint32_t v) {
  char buf[16];
  std::snprintf(buf, sizeof buf, "0x%x", v);
  return buf;
}

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace

const char* rule_id(Rule rule) noexcept {
  const auto i = static_cast<std::size_t>(rule);
  return i < kNumRules ? kRuleIds[i] : "unknown-rule";
}

std::string LintDiag::format() const {
  std::string out = rule_id(rule);
  out += " @ ";
  out += hex(pc);
  if (!label.empty()) {
    out += " (";
    out += label;
    out += ")";
  }
  if (hart != kAnyHart) {
    out += " [hart ";
    out += std::to_string(hart);
    out += "]";
  }
  out += ": ";
  out += message;
  return out;
}

std::string LintReport::summary() const {
  std::string out;
  for (const LintDiag& d : diags) {
    if (!out.empty()) out += '\n';
    out += d.format();
  }
  return out;
}

std::string LintReport::json() const {
  std::ostringstream os;
  os << "{\"clean\":" << (clean() ? "true" : "false") << ",\"cores\":" << cores
     << ",\"rules\":" << kNumRules
     << ",\"analysis_complete\":" << (analysis_complete ? "true" : "false")
     << ",\"diags\":[";
  bool first = true;
  for (const LintDiag& d : diags) {
    if (!first) os << ',';
    first = false;
    os << "{\"rule\":\"" << rule_id(d.rule) << "\",\"pc\":" << d.pc << ",\"hart\":";
    if (d.hart == kAnyHart) {
      os << "null";
    } else {
      os << d.hart;
    }
    os << ",\"label\":\"" << json_escape(d.label) << "\",\"message\":\""
       << json_escape(d.message) << "\"}";
  }
  os << "]}";
  return os.str();
}

// ---------------------------------------------------------------------------
// Structural rules (CFG-only; hart analyses supply reachability)
// ---------------------------------------------------------------------------

namespace {

void add_diag(std::vector<LintDiag>& diags, const rvasm::Program& program,
              const Cfg& cfg, Rule rule, InstrIndex idx, unsigned hart,
              std::string message) {
  LintDiag d;
  d.rule = rule;
  d.pc = cfg.pc_of(idx);
  d.hart = hart;
  d.message = std::move(message);
  d.label = program.symbolize(d.pc);
  diags.push_back(std::move(d));
}

void check_frep_bodies(const rvasm::Program& program, const Cfg& cfg,
                       std::vector<LintDiag>& diags) {
  for (const FrepRegion& region : cfg.frep_regions) {
    if (region.truncated) {
      const std::int32_t n = program.text[region.frep].imm;
      add_diag(diags, program, cfg, Rule::kFrepBodyNonFp, region.frep, kAnyHart,
               n <= 0 ? "frep with an empty body repeats nothing"
                      : "frep body of " + std::to_string(n) +
                            " instructions extends past the end of .text");
    }
    for (InstrIndex i = region.body_first;
         i <= region.body_last && i < program.text.size(); ++i) {
      const isa::Instr& in = program.text[i];
      if (in.meta().offloaded()) continue;
      add_diag(diags, program, cfg, Rule::kFrepBodyNonFp, i, kAnyHart,
               std::string(in.meta().name) +
                   " inside an frep body: only FP instructions are replayed by "
                   "the FPSS sequencer");
    }
  }
}

void check_frep_branch_into_body(const rvasm::Program& program, const Cfg& cfg,
                                 std::vector<LintDiag>& diags) {
  for (InstrIndex i = 0; i < program.text.size(); ++i) {
    const isa::Instr& in = program.text[i];
    const bool is_branch = in.meta().unit == isa::ExecUnit::kBranch;
    if (!is_branch && in.mnemonic != Mnemonic::kJal) continue;
    const InstrIndex t = resolve_target(cfg, program, i);
    if (t == kNoInstr) continue;
    const std::uint32_t target_region = cfg.frep_region_of[t];
    if (target_region == kNoInstr || target_region == cfg.frep_region_of[i]) continue;
    add_diag(diags, program, cfg, Rule::kFrepBranchIntoBody, i, kAnyHart,
             "control flow enters the frep body at " + hex(cfg.pc_of(t)) +
                 " from outside: the FPSS sequencer only sees instructions "
                 "issued through the frep");
  }
}

void check_tiled_reg_clobber(const rvasm::Program& program, const Cfg& cfg,
                             std::vector<LintDiag>& diags) {
  // The TiledBuffer convention (see workload/tiled_buffer.hpp): gp holds the
  // remaining tile count, ra the running checksum, tp the running sum; the
  // loop closes with `addi gp,gp,-1; bnez gp, tile_loop`. Identify that loop
  // shape and flag any other write to gp/ra/tp inside it.
  constexpr unsigned kRa = 1, kGp = 3, kTp = 4;
  for (InstrIndex i = 0; i < program.text.size(); ++i) {
    const isa::Instr& in = program.text[i];
    if (in.mnemonic != Mnemonic::kBne || in.rs1 != kGp || in.rs2 != 0 || in.imm >= 0) {
      continue;
    }
    const InstrIndex top = resolve_target(cfg, program, i);
    if (top == kNoInstr || top >= i) continue;
    bool has_decrement = false;
    for (InstrIndex j = top; j < i; ++j) {
      const isa::Instr& body = program.text[j];
      if (body.mnemonic == Mnemonic::kAddi && body.rd == kGp && body.rs1 == kGp) {
        has_decrement = true;
        break;
      }
    }
    if (!has_decrement) continue;  // a gp loop, but not the TiledBuffer shape
    for (InstrIndex j = top; j <= i; ++j) {
      const isa::Instr& body = program.text[j];
      if (body.meta().rd_class != isa::RegClass::kInt) continue;
      const unsigned rd = body.rd;
      if (rd != kRa && rd != kGp && rd != kTp) continue;
      const bool allowed =
          (rd == kGp && body.mnemonic == Mnemonic::kAddi && body.rs1 == kGp) ||
          (rd == kRa &&
           (body.mnemonic == Mnemonic::kXor || body.mnemonic == Mnemonic::kXori) &&
           body.rs1 == kRa) ||
          (rd == kTp &&
           (body.mnemonic == Mnemonic::kAdd || body.mnemonic == Mnemonic::kAddi) &&
           body.rs1 == kTp);
      if (allowed) continue;
      add_diag(diags, program, cfg, Rule::kTiledRegClobber, j, kAnyHart,
               std::string(body.meta().name) + " writes " + isa::int_reg_name(rd) +
                   " inside a tile loop: gp/ra/tp carry the TiledBuffer "
                   "count/checksum/sum convention");
    }
  }
}

void check_reachability(const rvasm::Program& program, const Cfg& cfg,
                        const std::vector<HartAnalysis>& harts,
                        std::vector<LintDiag>& diags) {
  for (std::uint32_t b = 0; b < cfg.blocks.size(); ++b) {
    const BasicBlock& block = cfg.blocks[b];
    bool any = false;
    bool all = true;
    for (const HartAnalysis& h : harts) {
      if (h.block_reachable(b)) {
        any = true;
      } else {
        all = false;
      }
    }
    if (!any) {
      add_diag(diags, program, cfg, Rule::kUnreachableCode, block.first, kAnyHart,
               "no hart can reach this code");
      continue;
    }
    if (block.falls_off_end) {
      unsigned hart = kAnyHart;
      if (!all) {
        for (const HartAnalysis& h : harts) {
          if (h.block_reachable(b)) { hart = h.hart; break; }
        }
      }
      const isa::Instr& term = program.text[block.last];
      const bool out_of_text_branch =
          term.meta().unit == isa::ExecUnit::kBranch &&
          resolve_target(cfg, program, block.last) == kNoInstr;
      add_diag(diags, program, cfg, Rule::kFallOffEnd, block.last, hart,
               out_of_text_branch
                   ? "branch target leaves the .text section"
                   : "execution runs past the last instruction of .text "
                     "(no ecall/ebreak or backward branch terminates this path)");
    }
  }
}

void check_barrier_divergence(const rvasm::Program& program, const Cfg& cfg,
                              const std::vector<HartAnalysis>& harts,
                              std::vector<LintDiag>& diags) {
  std::set<InstrIndex> all_sites;
  for (const HartAnalysis& h : harts) {
    all_sites.insert(h.barrier_sites.begin(), h.barrier_sites.end());
  }
  for (const InstrIndex site : all_sites) {
    std::vector<unsigned> can;
    std::vector<unsigned> cannot;
    for (const HartAnalysis& h : harts) {
      const bool reaches = std::find(h.barrier_sites.begin(), h.barrier_sites.end(),
                                     site) != h.barrier_sites.end();
      (reaches ? can : cannot).push_back(h.hart);
    }
    if (cannot.empty()) continue;
    std::string msg = "barrier reachable by hart";
    for (const unsigned h : can) msg += " " + std::to_string(h);
    msg += " but not by hart";
    for (const unsigned h : cannot) msg += " " + std::to_string(h);
    msg += ": the cluster barrier releases only when every hart arrives";
    add_diag(diags, program, cfg, Rule::kBarrierDivergence, site, cannot.front(),
             std::move(msg));
  }
}

}  // namespace

// ---------------------------------------------------------------------------
// lint_program / lint_source
// ---------------------------------------------------------------------------

LintReport lint_program(const rvasm::Program& program, unsigned cores) {
  LintReport report;
  report.cores = cores == 0 ? 1 : cores;
  if (program.text.empty()) return report;

  const Cfg cfg = build_cfg(program);
  report.analysis_complete = !cfg.has_indirect_jump;

  std::vector<HartAnalysis> harts;
  harts.reserve(report.cores);
  for (unsigned h = 0; h < report.cores; ++h) {
    harts.push_back(analyze_hart(program, cfg, h, report.cores));
  }

  // Per-hart dataflow diagnostics; identical findings across every hart
  // collapse to one hart-independent diagnostic.
  if (report.cores == 1) {
    report.diags = harts[0].diags;
  } else {
    std::map<std::tuple<Rule, std::uint32_t, std::string>, std::vector<unsigned>>
        grouped;
    for (const HartAnalysis& h : harts) {
      for (const LintDiag& d : h.diags) {
        grouped[{d.rule, d.pc, d.message}].push_back(d.hart);
      }
    }
    for (auto& [key, hart_list] : grouped) {
      LintDiag d;
      d.rule = std::get<0>(key);
      d.pc = std::get<1>(key);
      d.message = std::get<2>(key);
      d.label = program.symbolize(d.pc);
      d.hart = hart_list.size() == report.cores ? kAnyHart : hart_list.front();
      report.diags.push_back(std::move(d));
    }
  }

  // Structural rules.
  check_frep_bodies(program, cfg, report.diags);
  check_frep_branch_into_body(program, cfg, report.diags);
  check_tiled_reg_clobber(program, cfg, report.diags);
  if (report.analysis_complete) {
    check_reachability(program, cfg, harts, report.diags);
    if (report.cores > 1) check_barrier_divergence(program, cfg, harts, report.diags);
  }

  std::stable_sort(report.diags.begin(), report.diags.end(),
                   [](const LintDiag& a, const LintDiag& b) {
                     if (a.pc != b.pc) return a.pc < b.pc;
                     if (a.rule != b.rule) return a.rule < b.rule;
                     return a.hart < b.hart;
                   });
  // An instruction naming the same undefined register twice (fadd.d f, x, x)
  // yields byte-identical diagnostics; keep one.
  report.diags.erase(
      std::unique(report.diags.begin(), report.diags.end(),
                  [](const LintDiag& a, const LintDiag& b) {
                    return a.rule == b.rule && a.pc == b.pc && a.hart == b.hart &&
                           a.message == b.message;
                  }),
      report.diags.end());
  return report;
}

LintReport lint_source(std::string_view source, unsigned cores) {
  return lint_program(rvasm::assemble(source), cores);
}

// ---------------------------------------------------------------------------
// Pipeline integration
// ---------------------------------------------------------------------------

Mode mode_from(std::string_view name) {
  if (name == "off") return Mode::kOff;
  if (name == "warn") return Mode::kWarn;
  if (name == "strict") return Mode::kStrict;
  throw Error("invalid lint mode '" + std::string(name) +
              "' (expected off, warn or strict)");
}

const char* mode_name(Mode mode) noexcept {
  switch (mode) {
    case Mode::kOff: return "off";
    case Mode::kWarn: return "warn";
    case Mode::kStrict: return "strict";
  }
  return "off";
}

namespace {

std::atomic<int> g_mode_override{-1};

Mode env_or_default_mode() noexcept {
#ifdef NDEBUG
  Mode mode = Mode::kOff;
#else
  Mode mode = Mode::kWarn;
#endif
  if (const char* env = std::getenv("COPIFT_LINT")) {
    const std::string_view v(env);
    if (v == "off") {
      mode = Mode::kOff;
    } else if (v == "warn") {
      mode = Mode::kWarn;
    } else if (v == "strict") {
      mode = Mode::kStrict;
    } else if (!v.empty()) {
      static std::atomic<bool> warned{false};
      if (!warned.exchange(true)) {
        std::fprintf(stderr,
                     "copift: ignoring COPIFT_LINT='%s' (expected off, warn or "
                     "strict)\n",
                     env);
      }
    }
  }
  return mode;
}

}  // namespace

Mode pipeline_mode() noexcept {
  const int v = g_mode_override.load(std::memory_order_relaxed);
  if (v >= 0) return static_cast<Mode>(v);
  static const Mode env_mode = env_or_default_mode();
  return env_mode;
}

void set_pipeline_mode(Mode mode) noexcept {
  g_mode_override.store(static_cast<int>(mode), std::memory_order_relaxed);
}

void pipeline_check(const rvasm::Program& program, unsigned cores,
                    std::string_view what) {
  const Mode mode = pipeline_mode();
  if (mode == Mode::kOff) return;
  const LintReport report = lint_program(program, cores);
  if (report.clean()) return;
  const std::string header = "lint: " + std::string(what) + ": " +
                             std::to_string(report.diags.size()) + " diagnostic" +
                             (report.diags.size() == 1 ? "" : "s");
  if (mode == Mode::kStrict) {
    throw Error(header + "\n" + report.summary());
  }
  std::fprintf(stderr, "%s\n%s\n", header.c_str(), report.summary().c_str());
}

}  // namespace copift::lint

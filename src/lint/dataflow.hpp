// Per-hart forward dataflow analysis over the lint CFG.
//
// The abstract domain is small and purpose-built for generated code:
//
//   * integer registers carry a definedness + constant lattice
//     (undef < const(c) < unknown, with a maybe-undef top for merges), so
//     `mhartid` folds to the analyzed hart and address arithmetic over
//     `la`/`li`/`addi`/`add`/shifts stays concrete;
//   * FP registers carry definedness only;
//   * each SSR lane runs a protocol automaton (idle / armed read / armed
//     write) plus an element countdown: when the geometry written before the
//     arm is constant, the analysis knows exactly how many elements the
//     stream produces and how many the FP instructions seen so far consumed
//     (FREP bodies multiply by the replay count), which is what lets the
//     reconfigure-while-streaming rule fire only on *proven* in-flight
//     streams;
//   * the DMA engine tracks the last programmed src/dst and the set of
//     constant destination windows with no `dmwait` behind them.
//
// Everything degrades to "unknown" rather than guessing: a rule backed by an
// unknown value stays silent (see lint.hpp for the conservatism contract).
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "lint/cfg.hpp"
#include "lint/lint.hpp"
#include "rvasm/program.hpp"

namespace copift::lint {

/// Constant-propagation lattice for one integer register.
struct Value {
  enum class Tag : std::uint8_t {
    kUndef,       // never written on any path reaching here
    kMaybeUndef,  // written on some paths, not all
    kConst,       // written on every path, same known value
    kUnknown,     // written on every path, value not tracked
  };
  Tag tag = Tag::kUndef;
  std::uint32_t c = 0;

  static Value undef() noexcept { return {}; }
  static Value konst(std::uint32_t v) noexcept { return {Tag::kConst, v}; }
  static Value unknown() noexcept { return {Tag::kUnknown, 0}; }

  [[nodiscard]] bool is_const() const noexcept { return tag == Tag::kConst; }
  [[nodiscard]] bool is_undef() const noexcept { return tag == Tag::kUndef; }

  [[nodiscard]] Value join(const Value& o) const noexcept;
  friend bool operator==(const Value& a, const Value& b) = default;
};

/// Definedness lattice for one FP register.
enum class FpDef : std::uint8_t { kUndef, kMaybeUndef, kDef };
[[nodiscard]] FpDef join(FpDef a, FpDef b) noexcept;

/// A constant-or-unknown element counter.
struct Count {
  bool known = false;
  std::uint64_t v = 0;

  static Count of(std::uint64_t n) noexcept { return {true, n}; }
  static Count unknown() noexcept { return {}; }
  friend bool operator==(const Count& a, const Count& b) = default;
};

/// One SSR lane's protocol state.
struct LaneState {
  enum class Armed : std::uint8_t { kIdle, kRead, kWrite, kTop };
  Armed armed = Armed::kIdle;
  /// Elements the armed stream will still produce/accept; meaningful only
  /// when armed and known (constant geometry at arm, constant consumption).
  Count remaining;
  /// Geometry words as last written: repeat, bound0..bound3 (SsrCfgReg 0-4).
  std::array<Value, 5> cfg{};
  /// ISSR index configuration touched: stream totals become unknowable.
  bool idx_touched = false;

  [[nodiscard]] bool join_from(const LaneState& o) noexcept;  // true if changed
  friend bool operator==(const LaneState& a, const LaneState& b) = default;
};

/// Three-valued boolean (SSR enable bit).
enum class Tri : std::uint8_t { kFalse, kTrue, kTop };
[[nodiscard]] Tri join(Tri a, Tri b) noexcept;

/// [lo, hi) byte window.
struct Interval {
  std::uint32_t lo = 0;
  std::uint32_t hi = 0;
  friend bool operator==(const Interval& a, const Interval& b) = default;
};

/// DMA engine state: last programmed addresses plus the constant destination
/// windows of transfers issued since the last `dmwait`.
struct DmaState {
  Value src;
  Value dst;
  std::vector<Interval> pending;  // sorted by lo, capped
  bool saturated = false;         // cap overflow: tracking abandoned (absorbing)

  static constexpr std::size_t kMaxPending = 8;
  [[nodiscard]] bool join_from(const DmaState& o);
  void add_pending(std::uint32_t lo, std::uint32_t hi);
  friend bool operator==(const DmaState& a, const DmaState& b) = default;
};

/// The whole per-hart abstract state at one program point.
struct HartState {
  bool reachable = false;  // false = bottom; remaining fields meaningless
  std::array<Value, 32> gpr{};
  std::array<FpDef, 32> fpr{};
  Tri ssr_enabled = Tri::kFalse;
  std::array<LaneState, isa::kNumSsrLanes> lane{};
  DmaState dma;

  /// Entry state for `hart` of a `cores`-hart cluster: x0 = 0, sp = the
  /// hart's stack top, everything else undefined.
  static HartState entry(unsigned hart);

  [[nodiscard]] bool join_from(const HartState& o);  // true if changed
};

/// Result of analyzing one hart: final (fixpoint) block in-states plus the
/// facts the cross-hart rules need.
struct HartAnalysis {
  unsigned hart = 0;
  std::vector<HartState> block_in;       // indexed by block id
  std::vector<InstrIndex> barrier_sites; // reachable hw-barrier CSR accesses
  /// Diagnostics this hart's dataflow rules produced (use-before-def, OOB,
  /// SSR protocol, DMA-wait), in instruction order.
  std::vector<LintDiag> diags;

  [[nodiscard]] bool block_reachable(std::uint32_t block) const {
    return block < block_in.size() && block_in[block].reachable;
  }
};

/// Run the forward dataflow for one hart to fixpoint, then walk the stable
/// states once to collect diagnostics. Pure function of its inputs.
[[nodiscard]] HartAnalysis analyze_hart(const rvasm::Program& program, const Cfg& cfg,
                                        unsigned hart, unsigned cores);

}  // namespace copift::lint

// rvlint: static verification of generated RISC-V programs.
//
// Every workload in this repo *generates* its programs (HartSlice slicing,
// TiledBuffer double buffering, six paper kernels x variants x cores x
// tiles), and the Xfrep/Xssr/Xdma/Xcopift extensions carry protocol rules
// the simulator only catches dynamically — or not at all. rvlint checks
// them at assemble time: it builds a CFG over the assembled
// `rvasm::Program`, runs a forward dataflow analysis once per hart (the
// `mhartid` CSR constant-propagates, so hart-divergent codegen folds to the
// path that hart actually executes), and reports named, value-carrying
// diagnostics with the PC and nearest label.
//
// The analysis is conservative in the classical sense: a rule only fires
// when the abstract state *proves* the violation (constant addresses that
// overlap, a lane that is armed on no path, a barrier one hart can never
// reach). Unknown values silence a rule rather than tripping it, so a clean
// report is not a proof of correctness — but every diagnostic is a real,
// reachable defect under the abstract semantics. See docs/linting.md for
// the rule catalog and the abstract domain.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

#include "rvasm/program.hpp"

namespace copift::lint {

/// Named lint rules. Stable ids (rule_id) appear in diagnostics, JSON
/// output and docs/linting.md; append new rules before kCount.
enum class Rule : std::uint8_t {
  kUseBeforeDef,              // register read with no dominating definition
  kOobAccess,                 // constant load/store address outside TCDM/DRAM
  kSsrReadBeforeConfig,       // ft0..ft2 touched under SSR with the lane unarmed
  kSsrReconfigWhileStreaming, // lane geometry rewritten while it may be streaming
  kFrepBodyNonFp,             // non-offloadable instruction inside an FREP body
  kFrepBranchIntoBody,        // control flow enters an FREP body from outside
  kDmaLoadBeforeWait,         // load from a DMA destination with no dmwait between
  kBarrierDivergence,         // a barrier site only a subset of harts can reach
  kTiledRegClobber,           // gp/ra/tp tile-loop convention registers clobbered
  kUnreachableCode,           // code no hart can reach
  kFallOffEnd,                // execution can run past the end of .text
  kCount
};

inline constexpr std::size_t kNumRules = static_cast<std::size_t>(Rule::kCount);

/// Stable kebab-case identifier, e.g. "use-before-def".
[[nodiscard]] const char* rule_id(Rule rule) noexcept;

/// Hart value used for diagnostics that are hart-independent (structural
/// rules such as frep-body-non-fp or unreachable-code).
inline constexpr unsigned kAnyHart = ~0U;

/// One diagnostic: which rule fired, where, for which hart, and why (the
/// message carries the offending values — register names, addresses,
/// lane numbers — in text).
struct LintDiag {
  Rule rule = Rule::kCount;
  std::uint32_t pc = 0;     // address of the offending instruction
  unsigned hart = kAnyHart; // analyzed hart, or kAnyHart for structural rules
  std::string message;
  std::string label;        // Program::symbolize(pc): "label+0xNN", may be empty

  /// "rule-id @ pc (label) [hart H]: message" — the one-line rendering used
  /// by the CLI and error paths.
  [[nodiscard]] std::string format() const;
};

/// Result of linting one program.
struct LintReport {
  std::vector<LintDiag> diags;
  unsigned cores = 1;            // harts the analysis covered
  /// False when the program contains an indirect jump (jalr) whose targets
  /// the CFG cannot resolve; reachability-based rules (unreachable-code,
  /// fall-off-end, barrier-divergence) are suppressed in that case.
  bool analysis_complete = true;

  [[nodiscard]] bool clean() const noexcept { return diags.empty(); }
  /// All diagnostics joined as one value-carrying multi-line string.
  [[nodiscard]] std::string summary() const;
  /// Machine-readable JSON: {"clean":bool,"cores":N,"rules":N,"diags":[...]}.
  [[nodiscard]] std::string json() const;
};

/// Lint an assembled program as it would run on a `cores`-hart cluster.
/// Pure function of its inputs: never mutates the program, never touches
/// simulator state (linting is observation-only by construction).
[[nodiscard]] LintReport lint_program(const rvasm::Program& program, unsigned cores = 1);

/// Convenience for tests and tools: assemble `source` then lint. Throws
/// rvasm::AsmError if the source itself does not assemble.
[[nodiscard]] LintReport lint_source(std::string_view source, unsigned cores = 1);

// --- pipeline integration ---------------------------------------------------

/// How the codegen pipeline reacts to lint diagnostics.
enum class Mode : std::uint8_t {
  kOff,     // do not lint
  kWarn,    // lint, print diagnostics to stderr, continue
  kStrict,  // lint, throw copift::Error carrying the diagnostics
};

/// Parse "off" / "warn" / "strict". Throws copift::Error naming the value
/// and the accepted modes on anything else (same strict-parse convention as
/// the CLI's numeric flags).
[[nodiscard]] Mode mode_from(std::string_view name);
[[nodiscard]] const char* mode_name(Mode mode) noexcept;

/// Pipeline lint mode for this process. Defaults to kWarn in debug builds
/// (!NDEBUG) and kOff in release; the COPIFT_LINT environment variable
/// ("off"/"warn"/"strict") overrides the default, and an explicit
/// set_pipeline_mode (e.g. from `copift_sim --lint`) overrides both.
[[nodiscard]] Mode pipeline_mode() noexcept;
void set_pipeline_mode(Mode mode) noexcept;

/// Post-assembly hook called by the workload runner on every generated
/// program: lints at pipeline_mode() and warns or throws accordingly.
/// `what` names the program in messages (e.g. "exp/copift n=1024 cores=4").
void pipeline_check(const rvasm::Program& program, unsigned cores, std::string_view what);

}  // namespace copift::lint

// Control-flow graph over an assembled rvasm::Program's text section.
//
// Basic blocks are maximal straight-line instruction runs; edges follow
// branch/jump targets resolved through the program's (already-relocated)
// pc-relative immediates. `frep.o`/`frep.i` bodies — the n_instr
// instructions after the frep — are recorded as implicit loop regions on
// the side: the integer core runs them exactly once in program order (the
// FPSS replays them), so they do NOT create back edges, but rules need to
// know which instructions live inside which region.
#pragma once

#include <cstdint>
#include <vector>

#include "rvasm/program.hpp"

namespace copift::lint {

/// Index of an instruction within Program::text.
using InstrIndex = std::uint32_t;
inline constexpr InstrIndex kNoInstr = ~InstrIndex{0};

struct BasicBlock {
  InstrIndex first = 0;  // inclusive
  InstrIndex last = 0;   // inclusive index of the terminator / last instr
  /// Successor block ids. Empty for halting terminators (ecall/ebreak) and
  /// for indirect jumps (jalr), which instead set Cfg::has_indirect_jump.
  std::vector<std::uint32_t> succs;
  /// True when execution can fall past `last` off the end of .text (the
  /// block is last in text and its terminator does not end execution).
  bool falls_off_end = false;
};

/// One FREP region: the frep instruction plus its recorded body.
struct FrepRegion {
  InstrIndex frep = 0;        // index of the frep.o / frep.i instruction
  InstrIndex body_first = 0;  // frep + 1
  InstrIndex body_last = 0;   // frep + n_instr (inclusive); clamped to text end
  bool truncated = false;     // body extends past the end of .text
};

struct Cfg {
  std::vector<BasicBlock> blocks;       // ordered by first instruction index
  std::vector<std::uint32_t> block_of;  // instruction index -> block id
  std::uint32_t entry_block = 0;
  std::vector<FrepRegion> frep_regions;
  /// frep region id per instruction (index into frep_regions), or kNoInstr
  /// when the instruction is outside every body. The frep instruction
  /// itself is NOT part of its body.
  std::vector<std::uint32_t> frep_region_of;
  bool has_indirect_jump = false;

  [[nodiscard]] std::uint32_t pc_of(InstrIndex i) const noexcept {
    return text_base + i * 4;
  }
  std::uint32_t text_base = 0;
};

/// Build the CFG for `program`. Branch targets that leave the text section
/// terminate their block with no successor (the fall-off-end rule reports
/// them); an empty text section yields a single empty-block CFG.
[[nodiscard]] Cfg build_cfg(const rvasm::Program& program);

/// Resolve the pc-relative target of the branch/jal at instruction `from`
/// to an instruction index; kNoInstr when the target leaves .text. The
/// dataflow engine uses this to tell the taken edge from the fall-through
/// when it folds a constant branch condition.
[[nodiscard]] InstrIndex resolve_target(const Cfg& cfg, const rvasm::Program& program,
                                        InstrIndex from);

}  // namespace copift::lint

#include "debug/stub.hpp"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <sstream>

#include "common/error.hpp"
#include "energy/energy.hpp"

namespace copift::debug {

namespace {

constexpr const char* kGprNames[32] = {
    "zero", "ra", "sp", "gp", "tp", "t0", "t1", "t2", "fp", "s1", "a0",
    "a1",   "a2", "a3", "a4", "a5", "a6", "a7", "s2", "s3", "s4", "s5",
    "s6",   "s7", "s8", "s9", "s10", "s11", "t3", "t4", "t5", "t6"};

constexpr const char* kFprNames[32] = {
    "ft0", "ft1", "ft2",  "ft3",  "ft4", "ft5", "ft6",  "ft7",
    "fs0", "fs1", "fa0",  "fa1",  "fa2", "fa3", "fa4",  "fa5",
    "fa6", "fa7", "fs2",  "fs3",  "fs4", "fs5", "fs6",  "fs7",
    "fs8", "fs9", "fs10", "fs11", "ft8", "ft9", "ft10", "ft11"};

std::string hex_addr(std::uint32_t addr) {
  char buf[16];
  std::snprintf(buf, sizeof(buf), "%x", addr);
  return buf;
}

}  // namespace

GdbStub::GdbStub(sim::Cluster& cluster, StubOptions options)
    : hub_(cluster), options_(options), listener_(options.port) {}

sim::RunResult GdbStub::serve() {
  serve::WakePipe wake;  // nothing wakes it; keeps accept_client interruptible
  std::fprintf(stderr, "gdb-stub: waiting for a client on 127.0.0.1:%u "
               "(gdb: `target remote :%u`)\n", port(), port());
  int fd = -1;
  while (fd < 0) fd = listener_.accept_client(wake.read_fd());
  conn_ = std::make_unique<serve::Connection>(fd);
  listener_.close();  // one debugger per run
  std::fprintf(stderr, "gdb-stub: client attached at cycle %" PRIu64 "\n",
               hub_.cluster().cycles());

  bool open = true;
  while (open && !detached_) {
    if (inbox_.empty()) {
      open = pump(-1);
      continue;
    }
    const auto event = inbox_.front();
    inbox_.pop_front();
    handle_event(event);
  }
  conn_.reset();

  // Detach, kill, or client hangup: the run still has to finish so the
  // driver can print its summary and verify outputs. free_run() returns
  // immediately when the run already completed under the debugger.
  if (!timed_out_) {
    const Stop final = hub_.free_run();
    timed_out_ = final.reason == Stop::Reason::kTimeout;
  }
  if (timed_out_) {
    throw SimError("simulation exceeded max_cycles (" +
                   std::to_string(hub_.cluster().topology().shared().max_cycles) + ")");
  }
  sim::RunResult result;
  result.halted = hub_.cluster().halted();
  result.cycles = hub_.cluster().cycles();
  result.exit_code = hub_.cluster().core().exit_code();
  return result;
}

bool GdbStub::pump(int timeout_ms) {
  std::string bytes;
  const auto status = conn_->read_bytes(bytes, -1, timeout_ms);
  if (status == serve::Connection::ReadStatus::kClosed ||
      status == serve::Connection::ReadStatus::kWake) {
    return false;
  }
  if (!bytes.empty()) {
    reader_.feed(bytes);
    while (auto event = reader_.next()) inbox_.push_back(std::move(*event));
  }
  return true;
}

bool GdbStub::take_interrupt() {
  const auto it = std::find_if(inbox_.begin(), inbox_.end(), [](const auto& e) {
    return e.kind == rsp::PacketReader::Event::Kind::kInterrupt;
  });
  if (it == inbox_.end()) return false;
  inbox_.erase(it);
  return true;
}

void GdbStub::handle_event(const rsp::PacketReader::Event& event) {
  using Kind = rsp::PacketReader::Event::Kind;
  switch (event.kind) {
    case Kind::kPacket: {
      conn_->send_bytes("+");
      if (options_.verbose) std::fprintf(stderr, "gdb-stub: <- %s\n", event.payload.c_str());
      reply(dispatch(event.payload));
      break;
    }
    case Kind::kBadChecksum:
      conn_->send_bytes("-");
      break;
    case Kind::kNack:
      if (!last_frame_.empty()) conn_->send_bytes(last_frame_);
      break;
    case Kind::kAck:
      break;
    case Kind::kInterrupt:
      // Ctrl-C outside a running continue: already stopped, report it.
      reply("T02thread:" + std::to_string(hub_.focus_hart() + 1) + ";");
      break;
  }
}

void GdbStub::reply(std::string_view payload) {
  if (options_.verbose) {
    std::fprintf(stderr, "gdb-stub: -> %.*s\n", static_cast<int>(payload.size()),
                 payload.data());
  }
  last_frame_ = rsp::frame(payload);
  conn_->send_bytes(last_frame_);
}

unsigned GdbStub::cont_hart() const {
  if (cont_hart_ > 0 && static_cast<unsigned>(cont_hart_) <= hub_.num_harts()) {
    return static_cast<unsigned>(cont_hart_) - 1;
  }
  return hub_.focus_hart();
}

std::string GdbStub::stop_reply(const Stop& stop) {
  last_stop_ = stop;
  have_stop_ = true;
  const std::string thread = "thread:" + std::to_string(stop.hart + 1) + ";";
  switch (stop.reason) {
    case Stop::Reason::kBreakpoint:
      return "T05" + thread + "swbreak:;";
    case Stop::Reason::kWatchpoint: {
      const char* key = stop.watch_kind == WatchKind::kRead
                            ? "rwatch"
                            : stop.watch_kind == WatchKind::kAccess ? "awatch" : "watch";
      return "T05" + thread + key + ":" + hex_addr(stop.addr) + ";";
    }
    case Stop::Reason::kStep:
      return "T05" + thread;
    case Stop::Reason::kInterrupt:
      return "T02" + thread;
    case Stop::Reason::kExited: {
      char buf[8];
      std::snprintf(buf, sizeof(buf), "W%02x", stop.exit_code & 0xFF);
      return buf;
    }
    case Stop::Reason::kTimeout:
      timed_out_ = true;
      return "X06";  // terminated (SIGABRT): max_cycles elapsed
  }
  return "E01";
}

std::string GdbStub::dispatch(std::string_view p) {
  if (p.empty()) return "";
  switch (p[0]) {
    case '?':
      return have_stop_ ? stop_reply(last_stop_)
                        : "T05thread:" + std::to_string(hub_.focus_hart() + 1) + ";";
    case 'g': return handle_registers_read();
    case 'G': return handle_registers_write(p.substr(1));
    case 'p': return handle_reg_read(p.substr(1));
    case 'P': return handle_reg_write(p.substr(1));
    case 'm': return handle_mem_read(p.substr(1));
    case 'M': return handle_mem_write(p.substr(1));
    case 'Z': return handle_breakpoint(p.substr(1), true);
    case 'z': return handle_breakpoint(p.substr(1), false);
    case 'H': return handle_thread_op(p.substr(1));
    case 'T': {
      const auto tid = rsp::parse_hex_num(p.substr(1));
      return tid && *tid >= 1 && *tid <= hub_.num_harts() ? "OK" : "E01";
    }
    case 's': return handle_step(p.substr(1), false);
    case 'i': return handle_step(p.substr(1), true);
    case 'c': return handle_continue(p.substr(1));
    case 'D':
      detached_ = true;
      std::fprintf(stderr, "gdb-stub: client detached at cycle %" PRIu64
                   ", free-running to completion\n", hub_.cluster().cycles());
      return "OK";
    case 'k':
      detached_ = true;
      std::fprintf(stderr, "gdb-stub: kill request, free-running to completion\n");
      return "OK";
    case 'q': return handle_query(p);
    case 'v':
      if (p == "vCont?") return "";  // no vCont: gdb falls back to Hc + s/c
      return "";
    default:
      return "";  // unsupported packet: empty reply per the protocol
  }
}

std::string GdbStub::handle_query(std::string_view p) {
  if (p.rfind("qSupported", 0) == 0) {
    return "PacketSize=4000;qXfer:features:read+;swbreak+;hwbreak+";
  }
  if (p == "qC") return "QC" + std::to_string(hub_.focus_hart() + 1);
  if (p == "qfThreadInfo") {
    std::string out = "m";
    for (unsigned h = 0; h < hub_.num_harts(); ++h) {
      if (h > 0) out += ',';
      out += std::to_string(h + 1);
    }
    return out;
  }
  if (p == "qsThreadInfo") return "l";
  if (p == "qAttached") return "1";
  if (p == "qOffsets") return "Text=0;Data=0;Bss=0";
  if (p.rfind("qSymbol", 0) == 0) return "OK";
  if (p.rfind("qThreadExtraInfo,", 0) == 0) {
    const auto tid = rsp::parse_hex_num(p.substr(17));
    if (!tid || *tid < 1 || *tid > hub_.num_harts()) return "E01";
    const unsigned hart = static_cast<unsigned>(*tid) - 1;
    std::string info = "hart " + std::to_string(hart) +
                       (hub_.hart_halted(hart) ? " [halted]" : " [running]");
    return rsp::to_hex(info);
  }
  if (p.rfind("qXfer:features:read:target.xml:", 0) == 0) {
    const auto range = p.substr(31);
    const auto comma = range.find(',');
    if (comma == std::string_view::npos) return "E01";
    const auto off = rsp::parse_hex_num(range.substr(0, comma));
    const auto len = rsp::parse_hex_num(range.substr(comma + 1));
    if (!off || !len) return "E01";
    const std::string xml = target_xml();
    if (*off >= xml.size()) return "l";
    const std::string chunk = xml.substr(*off, *len);
    return (*off + chunk.size() >= xml.size() ? "l" : "m") + chunk;
  }
  if (p.rfind("qRcmd,", 0) == 0) return handle_monitor(p.substr(6));
  return "";
}

std::string GdbStub::handle_registers_read() {
  const unsigned hart = hub_.focus_hart();
  std::string out;
  out.reserve(33 * 8 + 32 * 16);
  for (unsigned i = 0; i < 32; ++i) out += rsp::hex_u32_le(hub_.read_gpr(hart, i));
  out += rsp::hex_u32_le(hub_.pc(hart));
  for (unsigned i = 0; i < 32; ++i) out += rsp::hex_u64_le(hub_.read_fpr(hart, i));
  return out;
}

std::string GdbStub::handle_registers_write(std::string_view p) {
  const unsigned hart = hub_.focus_hart();
  if (p.size() < 33 * 8) return "E01";
  for (unsigned i = 0; i < 32; ++i) {
    const auto v = rsp::parse_u32_le(p.substr(i * 8, 8));
    if (!v) return "E01";
    hub_.write_gpr(hart, i, *v);
  }
  const auto pc = rsp::parse_u32_le(p.substr(32 * 8, 8));
  if (!pc) return "E01";
  hub_.set_pc(hart, *pc);
  if (p.size() >= 33 * 8 + 32 * 16) {
    for (unsigned i = 0; i < 32; ++i) {
      const auto v = rsp::parse_u64_le(p.substr(33 * 8 + i * 16, 16));
      if (!v) return "E01";
      hub_.write_fpr(hart, i, *v);
    }
  }
  return "OK";
}

std::string GdbStub::handle_reg_read(std::string_view p) {
  const auto reg = rsp::parse_hex_num(p);
  if (!reg) return "E01";
  const unsigned hart = hub_.focus_hart();
  if (*reg < 32) return rsp::hex_u32_le(hub_.read_gpr(hart, static_cast<unsigned>(*reg)));
  if (*reg == 32) return rsp::hex_u32_le(hub_.pc(hart));
  if (*reg <= 64) return rsp::hex_u64_le(hub_.read_fpr(hart, static_cast<unsigned>(*reg) - 33));
  return "E01";
}

std::string GdbStub::handle_reg_write(std::string_view p) {
  const auto eq = p.find('=');
  if (eq == std::string_view::npos) return "E01";
  const auto reg = rsp::parse_hex_num(p.substr(0, eq));
  if (!reg) return "E01";
  const auto value = p.substr(eq + 1);
  const unsigned hart = hub_.focus_hart();
  if (*reg < 32) {
    const auto v = rsp::parse_u32_le(value);
    if (!v) return "E01";
    hub_.write_gpr(hart, static_cast<unsigned>(*reg), *v);
    return "OK";
  }
  if (*reg == 32) {
    const auto v = rsp::parse_u32_le(value);
    if (!v) return "E01";
    hub_.set_pc(hart, *v);
    return "OK";
  }
  if (*reg <= 64) {
    const auto v = rsp::parse_u64_le(value);
    if (!v) return "E01";
    hub_.write_fpr(hart, static_cast<unsigned>(*reg) - 33, *v);
    return "OK";
  }
  return "E01";
}

std::string GdbStub::handle_mem_read(std::string_view p) {
  const auto comma = p.find(',');
  if (comma == std::string_view::npos) return "E01";
  const auto addr = rsp::parse_hex_num(p.substr(0, comma));
  const auto len = rsp::parse_hex_num(p.substr(comma + 1));
  if (!addr || !len || *len > 0x4000) return "E01";
  try {
    const auto bytes = hub_.read_mem(static_cast<std::uint32_t>(*addr),
                                     static_cast<std::uint32_t>(*len));
    std::string out;
    out.reserve(bytes.size() * 2);
    for (const std::uint8_t b : bytes) {
      out += "0123456789abcdef"[b >> 4];
      out += "0123456789abcdef"[b & 0xF];
    }
    return out;
  } catch (const SimError&) {
    return "E14";  // EFAULT: unmapped address
  }
}

std::string GdbStub::handle_mem_write(std::string_view p) {
  const auto comma = p.find(',');
  const auto colon = p.find(':');
  if (comma == std::string_view::npos || colon == std::string_view::npos || colon < comma) {
    return "E01";
  }
  const auto addr = rsp::parse_hex_num(p.substr(0, comma));
  const auto len = rsp::parse_hex_num(p.substr(comma + 1, colon - comma - 1));
  const auto data = rsp::from_hex(p.substr(colon + 1));
  if (!addr || !len || !data || data->size() != *len) return "E01";
  try {
    hub_.write_mem(static_cast<std::uint32_t>(*addr),
                   std::vector<std::uint8_t>(data->begin(), data->end()));
    return "OK";
  } catch (const SimError&) {
    return "E14";
  }
}

std::string GdbStub::handle_breakpoint(std::string_view p, bool insert) {
  // Format: <type>,<addr>,<kind>
  const auto c1 = p.find(',');
  if (c1 == std::string_view::npos) return "E01";
  const auto c2 = p.find(',', c1 + 1);
  if (c2 == std::string_view::npos) return "E01";
  const auto type = rsp::parse_hex_num(p.substr(0, c1));
  const auto addr = rsp::parse_hex_num(p.substr(c1 + 1, c2 - c1 - 1));
  const auto kind = rsp::parse_hex_num(p.substr(c2 + 1));
  if (!type || !addr || !kind) return "E01";
  const auto a = static_cast<std::uint32_t>(*addr);
  const auto len = static_cast<std::uint32_t>(*kind);
  switch (*type) {
    case 0:  // software breakpoint — PC match, no instruction patching needed
    case 1:  // hardware breakpoint — same mechanism in a simulator
      if (insert) hub_.set_breakpoint(a);
      else hub_.clear_breakpoint(a);
      return "OK";
    case 2:
      if (insert) hub_.set_watchpoint(a, len, WatchKind::kWrite);
      else hub_.clear_watchpoint(a, len, WatchKind::kWrite);
      return "OK";
    case 3:
      if (insert) hub_.set_watchpoint(a, len, WatchKind::kRead);
      else hub_.clear_watchpoint(a, len, WatchKind::kRead);
      return "OK";
    case 4:
      if (insert) hub_.set_watchpoint(a, len, WatchKind::kAccess);
      else hub_.clear_watchpoint(a, len, WatchKind::kAccess);
      return "OK";
    default:
      return "";  // unsupported type
  }
}

std::string GdbStub::handle_thread_op(std::string_view p) {
  if (p.empty()) return "E01";
  const char op = p[0];
  const auto tid_str = p.substr(1);
  int tid = 0;
  if (tid_str == "-1") {
    tid = -1;
  } else {
    const auto v = rsp::parse_hex_num(tid_str);
    if (!v) return "E01";
    tid = static_cast<int>(*v);
  }
  if (tid > static_cast<int>(hub_.num_harts())) return "E01";
  if (op == 'g') {
    hub_.set_focus_hart(tid >= 1 ? static_cast<unsigned>(tid) - 1 : 0);
    return "OK";
  }
  if (op == 'c') {
    cont_hart_ = tid;
    return "OK";
  }
  return "E01";
}

std::string GdbStub::handle_step(std::string_view p, bool cycle_step) {
  if (!p.empty()) {  // optional resume address
    const auto addr = rsp::parse_hex_num(p);
    if (!addr) return "E01";
    hub_.set_pc(cont_hart(), static_cast<std::uint32_t>(*addr));
  }
  const Stop stop = cycle_step ? hub_.step_cycle() : hub_.step_instruction(cont_hart());
  return stop_reply(stop);
}

std::string GdbStub::handle_continue(std::string_view p) {
  if (!p.empty()) {
    const auto addr = rsp::parse_hex_num(p);
    if (!addr) return "E01";
    hub_.set_pc(cont_hart(), static_cast<std::uint32_t>(*addr));
  }
  const Stop stop = hub_.resume([this] {
    if (!pump(0)) return true;  // peer gone: stop, the session loop closes up
    return take_interrupt();
  });
  return stop_reply(stop);
}

std::string GdbStub::handle_monitor(std::string_view hex_command) {
  const auto decoded = rsp::from_hex(hex_command);
  if (!decoded) return "E01";
  std::string text;
  try {
    text = monitor_text(*decoded);
  } catch (const std::exception& e) {
    text = std::string("error: ") + e.what() + "\n";
  }
  return rsp::to_hex(text);
}

std::string GdbStub::monitor_text(const std::string& command) {
  std::istringstream in(command);
  std::string verb;
  in >> verb;
  sim::Cluster& cluster = hub_.cluster();
  std::ostringstream os;

  if (verb == "help" || verb.empty()) {
    os << "monitor commands:\n"
       << "  cycles           cycle count and skip-ahead statistics\n"
       << "  stalls [hart]    per-hart stall-attribution counters\n"
       << "  dma              DMA engine and DRAM state\n"
       << "  energy           energy model totals so far\n"
       << "  where            per-hart PC with nearest rvasm label\n"
       << "  addr <label>     address of an rvasm label (hex)\n"
       << "  symbols          all text labels\n";
    return os.str();
  }
  if (verb == "cycles") {
    os << "cycle " << cluster.cycles() << ", skip-ahead jumps " << cluster.skip_jumps()
       << " covering " << cluster.skipped_cycles() << " cycles\n";
    return os.str();
  }
  if (verb == "stalls") {
    int only = -1;
    if (in >> only && (only < 0 || only >= static_cast<int>(cluster.num_cores()))) {
      return "error: no such hart\n";
    }
    for (unsigned h = 0; h < cluster.num_cores(); ++h) {
      if (only >= 0 && h != static_cast<unsigned>(only)) continue;
      const auto& c = cluster.complex(h).counters();
      os << "hart " << h << ": issue " << c.int_issue_cycles() << ", stalls "
         << c.int_stall_cycles() << " (raw " << c.stall_raw << ", wb-port "
         << c.stall_wb_port << ", offload " << c.stall_offload_full << ", icache "
         << c.stall_icache << ", tcdm " << c.stall_tcdm << ", branch " << c.stall_branch
         << ", barrier " << c.stall_barrier << ", hw-barrier " << c.stall_hw_barrier
         << ", div " << c.stall_div_busy << ", mem-order " << c.stall_mem_order
         << ", dma-wait " << c.stall_dma_wait << ", dma-dram " << c.stall_dma_dram
         << "), fpss issue " << c.fpss_issue_cycles() << ", fpss stalls "
         << c.fpss_stall_cycles() << "\n";
    }
    return os.str();
  }
  if (verb == "dma") {
    const auto& dma = cluster.dma();
    os << "dma: " << dma.pending() << " pending transfers (" << dma.dram_pending()
       << " touching dram), busy " << dma.busy_cycles() << " cycles, "
       << dma.bytes_moved() << " bytes moved\n";
    if (const auto* dram = cluster.dram()) {
      os << "dram: row hits " << dram->row_hits() << ", row misses " << dram->row_misses()
         << "\n";
    } else {
      os << "dram: timing model disabled\n";
    }
    return os.str();
  }
  if (verb == "energy") {
    std::vector<sim::ActivityCounters> per_hart;
    per_hart.reserve(cluster.num_cores());
    for (unsigned h = 0; h < cluster.num_cores(); ++h) {
      per_hart.push_back(cluster.complex(h).counters());
    }
    const auto reports = energy::EnergyModel().evaluate_harts(per_hart);
    const auto total = energy::sum_reports(reports);
    char buf[160];
    std::snprintf(buf, sizeof(buf),
                  "energy so far: %.1f nJ over %" PRIu64 " cycles (%.1f mW avg)\n",
                  total.energy_nj(), total.cycles, total.power_mw());
    os << buf;
    return os.str();
  }
  if (verb == "where") {
    const auto& program = cluster.program();
    for (unsigned h = 0; h < cluster.num_cores(); ++h) {
      const std::uint32_t hart_pc = hub_.pc(h);
      const std::string sym = program.symbolize(hart_pc);
      os << "hart " << h << ": pc 0x" << std::hex << hart_pc << std::dec;
      if (!sym.empty()) os << " <" << sym << ">";
      if (hub_.hart_halted(h)) os << " [halted]";
      os << "\n";
    }
    return os.str();
  }
  if (verb == "addr") {
    std::string label;
    if (!(in >> label)) return "usage: addr <label>\n";
    if (!cluster.program().has_symbol(label)) return "error: no such label\n";
    os << "0x" << std::hex << cluster.program().symbol(label) << "\n";
    return os.str();
  }
  if (verb == "symbols") {
    for (const auto& [name, value] : cluster.program().symbols) {
      os << "0x" << std::hex << value << std::dec << "  " << name << "\n";
    }
    return os.str();
  }
  return "unknown command '" + verb + "' (try `monitor help`)\n";
}

std::string GdbStub::target_xml() const {
  std::string xml =
      "<?xml version=\"1.0\"?>\n"
      "<!DOCTYPE target SYSTEM \"gdb-target.dtd\">\n"
      "<target version=\"1.0\">\n"
      "<architecture>riscv:rv32</architecture>\n"
      "<feature name=\"org.gnu.gdb.riscv.cpu\">\n";
  for (unsigned i = 0; i < 32; ++i) {
    xml += "  <reg name=\"" + std::string(kGprNames[i]) +
           "\" bitsize=\"32\" type=\"int\" regnum=\"" + std::to_string(i) + "\"/>\n";
  }
  xml += "  <reg name=\"pc\" bitsize=\"32\" type=\"code_ptr\" regnum=\"32\"/>\n";
  xml += "</feature>\n<feature name=\"org.gnu.gdb.riscv.fpu\">\n";
  for (unsigned i = 0; i < 32; ++i) {
    xml += "  <reg name=\"" + std::string(kFprNames[i]) +
           "\" bitsize=\"64\" type=\"ieee_double\" regnum=\"" + std::to_string(33 + i) +
           "\"/>\n";
  }
  xml += "</feature>\n</target>\n";
  return xml;
}

}  // namespace copift::debug

#include "debug/rsp.hpp"

namespace copift::debug::rsp {

namespace {

constexpr char kEscape = '}';
constexpr char kInterruptByte = '\x03';

[[nodiscard]] int hex_digit(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  return -1;
}

[[nodiscard]] char hex_char(unsigned v) { return "0123456789abcdef"[v & 0xF]; }

}  // namespace

std::uint8_t checksum(std::string_view payload) {
  unsigned sum = 0;
  for (const char c : payload) sum += static_cast<std::uint8_t>(c);
  return static_cast<std::uint8_t>(sum);
}

std::string escape(std::string_view payload) {
  std::string out;
  out.reserve(payload.size());
  for (const char c : payload) {
    if (c == '$' || c == '#' || c == kEscape) {
      out += kEscape;
      out += static_cast<char>(c ^ 0x20);
    } else {
      out += c;
    }
  }
  return out;
}

std::string unescape(std::string_view raw) {
  std::string out;
  out.reserve(raw.size());
  for (std::size_t i = 0; i < raw.size(); ++i) {
    if (raw[i] == kEscape && i + 1 < raw.size()) {
      out += static_cast<char>(raw[++i] ^ 0x20);
    } else if (raw[i] != kEscape) {
      out += raw[i];
    }
  }
  return out;
}

std::string frame(std::string_view payload) {
  const std::string escaped = escape(payload);
  const std::uint8_t sum = checksum(escaped);
  std::string out;
  out.reserve(escaped.size() + 4);
  out += '$';
  out += escaped;
  out += '#';
  out += hex_char(sum >> 4);
  out += hex_char(sum);
  return out;
}

std::string to_hex(std::string_view bytes) {
  std::string out;
  out.reserve(bytes.size() * 2);
  for (const char c : bytes) {
    const auto b = static_cast<std::uint8_t>(c);
    out += hex_char(b >> 4);
    out += hex_char(b);
  }
  return out;
}

std::optional<std::string> from_hex(std::string_view hex) {
  if (hex.size() % 2 != 0) return std::nullopt;
  std::string out;
  out.reserve(hex.size() / 2);
  for (std::size_t i = 0; i < hex.size(); i += 2) {
    const int hi = hex_digit(hex[i]);
    const int lo = hex_digit(hex[i + 1]);
    if (hi < 0 || lo < 0) return std::nullopt;
    out += static_cast<char>((hi << 4) | lo);
  }
  return out;
}

std::string hex_u32_le(std::uint32_t value) {
  std::string out;
  out.reserve(8);
  for (unsigned i = 0; i < 4; ++i) {
    const auto b = static_cast<std::uint8_t>(value >> (8 * i));
    out += hex_char(b >> 4);
    out += hex_char(b);
  }
  return out;
}

std::string hex_u64_le(std::uint64_t value) {
  std::string out;
  out.reserve(16);
  for (unsigned i = 0; i < 8; ++i) {
    const auto b = static_cast<std::uint8_t>(value >> (8 * i));
    out += hex_char(b >> 4);
    out += hex_char(b);
  }
  return out;
}

std::optional<std::uint32_t> parse_u32_le(std::string_view hex) {
  if (hex.size() != 8) return std::nullopt;
  const auto bytes = from_hex(hex);
  if (!bytes) return std::nullopt;
  std::uint32_t v = 0;
  for (unsigned i = 0; i < 4; ++i) {
    v |= static_cast<std::uint32_t>(static_cast<std::uint8_t>((*bytes)[i])) << (8 * i);
  }
  return v;
}

std::optional<std::uint64_t> parse_u64_le(std::string_view hex) {
  if (hex.size() != 16) return std::nullopt;
  const auto bytes = from_hex(hex);
  if (!bytes) return std::nullopt;
  std::uint64_t v = 0;
  for (unsigned i = 0; i < 8; ++i) {
    v |= static_cast<std::uint64_t>(static_cast<std::uint8_t>((*bytes)[i])) << (8 * i);
  }
  return v;
}

std::optional<std::uint64_t> parse_hex_num(std::string_view hex) {
  if (hex.empty() || hex.size() > 16) return std::nullopt;
  std::uint64_t v = 0;
  for (const char c : hex) {
    const int d = hex_digit(c);
    if (d < 0) return std::nullopt;
    v = (v << 4) | static_cast<unsigned>(d);
  }
  return v;
}

void PacketReader::feed(std::string_view bytes) {
  buf_.append(bytes);
  parse();
}

std::optional<PacketReader::Event> PacketReader::next() {
  if (events_.empty()) return std::nullopt;
  Event e = std::move(events_.front());
  events_.pop_front();
  return e;
}

void PacketReader::parse() {
  std::size_t i = 0;
  while (i < buf_.size()) {
    const char c = buf_[i];
    if (c == '+') {
      events_.push_back({Event::Kind::kAck, {}});
      ++i;
      continue;
    }
    if (c == '-') {
      events_.push_back({Event::Kind::kNack, {}});
      ++i;
      continue;
    }
    if (c == kInterruptByte) {
      events_.push_back({Event::Kind::kInterrupt, {}});
      ++i;
      continue;
    }
    if (c != '$') {
      ++i;  // stray byte between frames: skip, as gdb stubs do
      continue;
    }
    // Frame start: need `$...#xx` complete before consuming anything.
    const std::size_t hash = buf_.find('#', i + 1);
    if (hash == std::string::npos || hash + 2 >= buf_.size()) break;  // incomplete
    const std::string_view body(buf_.data() + i + 1, hash - i - 1);
    const int hi = hex_digit(buf_[hash + 1]);
    const int lo = hex_digit(buf_[hash + 2]);
    if (hi < 0 || lo < 0 || checksum(body) != ((hi << 4) | lo)) {
      events_.push_back({Event::Kind::kBadChecksum, {}});
    } else {
      events_.push_back({Event::Kind::kPacket, unescape(body)});
    }
    i = hash + 3;
  }
  buf_.erase(0, i);
}

}  // namespace copift::debug::rsp

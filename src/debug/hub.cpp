#include "debug/hub.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace copift::debug {

DebugHub::DebugHub(sim::Cluster& cluster)
    : cluster_(&cluster), ignore_(cluster.num_cores()) {
  cluster_->memory().set_watcher(this);
}

DebugHub::~DebugHub() { cluster_->memory().set_watcher(nullptr); }

void DebugHub::set_focus_hart(unsigned hart) {
  check_hart(hart);
  focus_hart_ = hart;
}

void DebugHub::set_watchpoint(std::uint32_t addr, std::uint32_t len, WatchKind kind) {
  if (len == 0) len = 1;
  clear_watchpoint(addr, len, kind);  // setting twice stays one watchpoint
  watchpoints_.push_back({addr, len, kind});
}

bool DebugHub::clear_watchpoint(std::uint32_t addr, std::uint32_t len, WatchKind kind) {
  if (len == 0) len = 1;
  const auto it = std::find_if(watchpoints_.begin(), watchpoints_.end(),
                               [&](const Watchpoint& w) {
                                 return w.addr == addr && w.len == len && w.kind == kind;
                               });
  if (it == watchpoints_.end()) return false;
  watchpoints_.erase(it);
  return true;
}

std::uint64_t DebugHub::issue_count(unsigned hart) const {
  const auto& c = cluster_->complex(hart).counters();
  return c.int_retired + c.int_offloads;
}

bool DebugHub::fpss_all_idle() const {
  for (unsigned h = 0; h < cluster_->num_cores(); ++h) {
    if (!cluster_->complex(h).fpss().idle()) return false;
  }
  return true;
}

bool DebugHub::run_complete() const { return cluster_->halted() && fpss_all_idle(); }

void DebugHub::check_hart(unsigned hart) const {
  if (hart >= cluster_->num_cores()) {
    throw Error("debug: hart " + std::to_string(hart) + " out of range (cluster has " +
                std::to_string(cluster_->num_cores()) + ")");
  }
}

bool DebugHub::use_fast() const {
  // Jumps are breakpoint-safe (PCs frozen while every hart provably stalls)
  // but not watchpoint-safe: the DMA may move memory inside a jump and the
  // stop must land on its own cycle.
  return cluster_->topology().shared().skip_ahead && watchpoints_.empty();
}

void DebugHub::tick_checked(bool fast) {
  watch_hits_.clear();
  recording_ = !watchpoints_.empty();
  if (fast) {
    cluster_->step_fast();
  } else {
    cluster_->tick();
  }
  recording_ = false;
}

void DebugHub::on_load(std::uint32_t addr, std::uint32_t size) {
  if (recording_) watch_hits_.push_back({addr, size, false});
}

void DebugHub::on_store(std::uint32_t addr, std::uint32_t size) {
  if (recording_) watch_hits_.push_back({addr, size, true});
}

void DebugHub::collect_stops() {
  for (unsigned h = 0; h < cluster_->num_cores(); ++h) {
    Ignore& ig = ignore_[h];
    const std::uint32_t hart_pc = cluster_->complex(h).core().pc();
    if (ig.active && (hart_pc != ig.pc || issue_count(h) > ig.issue_baseline)) {
      ig.active = false;
    }
    if (cluster_->complex(h).core().halted()) continue;
    if (!breakpoints_.contains(hart_pc)) continue;
    if (ig.active && ig.pc == hart_pc) continue;  // reported, not yet past it
    // Avoid queueing the same hit every stall cycle the hart sits at the
    // breakpoint: suppress immediately, pop_pending() re-reports it.
    ig.active = true;
    ig.pc = hart_pc;
    ig.issue_baseline = issue_count(h);
    pending_.push_back({Stop::Reason::kBreakpoint, h, hart_pc, WatchKind::kAccess, 0});
  }
  for (const WatchHit& hit : watch_hits_) {
    for (const Watchpoint& wp : watchpoints_) {
      const bool kind_match = wp.kind == WatchKind::kAccess ||
                              (wp.kind == WatchKind::kWrite && hit.store) ||
                              (wp.kind == WatchKind::kRead && !hit.store);
      if (!kind_match) continue;
      if (hit.addr >= wp.addr + wp.len || wp.addr >= hit.addr + hit.size) continue;
      const std::uint32_t addr = std::max(hit.addr, wp.addr);
      const bool dup = std::any_of(pending_.begin(), pending_.end(), [&](const Stop& s) {
        return s.reason == Stop::Reason::kWatchpoint && s.addr == addr &&
               s.watch_kind == wp.kind;
      });
      if (!dup) {
        pending_.push_back({Stop::Reason::kWatchpoint, focus_hart_, addr, wp.kind, 0});
      }
      break;  // one stop per hit is enough
    }
  }
  watch_hits_.clear();
}

std::optional<Stop> DebugHub::pop_pending() {
  if (pending_.empty()) return std::nullopt;
  Stop s = pending_.front();
  pending_.pop_front();
  return s;
}

Stop DebugHub::report(Stop stop) {
  // Re-arm suppression for the reported hart at its current PC so continue
  // makes progress even when a breakpoint sits right here.
  if (stop.hart < ignore_.size()) {
    Ignore& ig = ignore_[stop.hart];
    ig.active = true;
    ig.pc = cluster_->complex(stop.hart).core().pc();
    ig.issue_baseline = issue_count(stop.hart);
  }
  return stop;
}

Stop DebugHub::exited_stop() const {
  return {Stop::Reason::kExited, 0, 0, WatchKind::kAccess,
          cluster_->complex(0).core().exit_code()};
}

Stop DebugHub::step_cycle() {
  if (const auto s = pop_pending()) return report(*s);
  if (run_complete()) return exited_stop();
  if (cluster_->cycles() >= cluster_->topology().shared().max_cycles) {
    return {Stop::Reason::kTimeout, focus_hart_, 0, WatchKind::kAccess, 0};
  }
  tick_checked(false);
  collect_stops();
  if (const auto s = pop_pending()) return report(*s);
  return report({Stop::Reason::kStep, focus_hart_, pc(focus_hart_), WatchKind::kAccess, 0});
}

Stop DebugHub::step_instruction(unsigned hart) {
  check_hart(hart);
  if (const auto s = pop_pending()) return report(*s);
  const std::uint64_t max_cycles = cluster_->topology().shared().max_cycles;
  const std::uint64_t baseline = issue_count(hart);
  const bool fast = use_fast();
  while (true) {
    if (run_complete()) return exited_stop();
    if (cluster_->cycles() >= max_cycles) {
      return {Stop::Reason::kTimeout, hart, 0, WatchKind::kAccess, 0};
    }
    tick_checked(fast);
    collect_stops();
    if (const auto s = pop_pending()) return report(*s);
    if (issue_count(hart) > baseline || cluster_->complex(hart).core().halted()) {
      return report({Stop::Reason::kStep, hart, pc(hart), WatchKind::kAccess, 0});
    }
  }
}

Stop DebugHub::resume(const std::function<bool()>& interrupted) {
  if (const auto s = pop_pending()) return report(*s);
  const std::uint64_t max_cycles = cluster_->topology().shared().max_cycles;
  const bool fast = use_fast();
  std::uint64_t ticks = 0;
  while (true) {
    if (run_complete()) return exited_stop();
    if (cluster_->cycles() >= max_cycles) {
      return {Stop::Reason::kTimeout, focus_hart_, 0, WatchKind::kAccess, 0};
    }
    tick_checked(fast);
    collect_stops();
    if (const auto s = pop_pending()) return report(*s);
    if (interrupted && (++ticks & 0x3FF) == 0 && interrupted()) {
      return report({Stop::Reason::kInterrupt, focus_hart_, pc(focus_hart_),
                     WatchKind::kAccess, 0});
    }
  }
}

Stop DebugHub::free_run() {
  breakpoints_.clear();
  watchpoints_.clear();
  pending_.clear();
  for (Ignore& ig : ignore_) ig.active = false;
  const std::uint64_t max_cycles = cluster_->topology().shared().max_cycles;
  const bool fast = cluster_->topology().shared().skip_ahead;
  while (!run_complete()) {
    if (cluster_->cycles() >= max_cycles) {
      return {Stop::Reason::kTimeout, 0, 0, WatchKind::kAccess, 0};
    }
    fast ? cluster_->step_fast() : cluster_->tick();
  }
  return exited_stop();
}

std::uint32_t DebugHub::read_gpr(unsigned hart, unsigned index) const {
  check_hart(hart);
  if (index >= 32) throw Error("debug: GPR index out of range");
  return cluster_->complex(hart).core().reg(index);
}

void DebugHub::write_gpr(unsigned hart, unsigned index, std::uint32_t value) {
  check_hart(hart);
  if (index >= 32) throw Error("debug: GPR index out of range");
  cluster_->complex(hart).core().set_reg(index, value);
}

std::uint64_t DebugHub::read_fpr(unsigned hart, unsigned index) const {
  check_hart(hart);
  if (index >= 32) throw Error("debug: FPR index out of range");
  return cluster_->complex(hart).fpss().rf().read(index);
}

void DebugHub::write_fpr(unsigned hart, unsigned index, std::uint64_t value) {
  check_hart(hart);
  if (index >= 32) throw Error("debug: FPR index out of range");
  cluster_->complex(hart).fpss().rf().write(index, value);
}

std::uint32_t DebugHub::pc(unsigned hart) const {
  check_hart(hart);
  return cluster_->complex(hart).core().pc();
}

void DebugHub::set_pc(unsigned hart, std::uint32_t pc) {
  check_hart(hart);
  cluster_->complex(hart).core().debug_set_pc(pc);
}

bool DebugHub::hart_halted(unsigned hart) const {
  check_hart(hart);
  return cluster_->complex(hart).core().halted();
}

std::vector<std::uint8_t> DebugHub::read_mem(std::uint32_t addr, std::uint32_t len) const {
  // Text lives predecoded in the Program, not in the AddressSpace; serve it
  // from the raw encodings so debuggers can disassemble at the PC.
  const rvasm::Program& prog = cluster_->program();
  const std::uint32_t text_end =
      prog.text_base + static_cast<std::uint32_t>(prog.text_words.size()) * 4;
  std::vector<std::uint8_t> out;
  out.reserve(len);
  for (std::uint32_t i = 0; i < len; ++i) {
    const std::uint32_t a = addr + i;
    if (a >= prog.text_base && a < text_end) {
      const std::uint32_t word = prog.text_words[(a - prog.text_base) / 4];
      out.push_back(static_cast<std::uint8_t>(word >> (8 * (a % 4))));
    } else {
      out.push_back(cluster_->memory().load8(a));
    }
  }
  return out;
}

void DebugHub::write_mem(std::uint32_t addr, const std::vector<std::uint8_t>& bytes) {
  for (std::size_t i = 0; i < bytes.size(); ++i) {
    cluster_->memory().store8(addr + static_cast<std::uint32_t>(i), bytes[i]);
  }
}

}  // namespace copift::debug

// Loopback TCP GDB stub for the simulated cluster.
//
// Listens on 127.0.0.1 (port 0 = ephemeral, port() reports the bound one),
// blocks until one RSP client attaches — so the program is inspectable from
// cycle 0 — then serves the session synchronously: the stub owns the
// simulation loop, and the cluster only advances inside continue/step
// requests. Threads map to harts (RSP thread id = hart + 1). Detach (`D`)
// and kill (`k`) both free-run the simulation to completion so the driver
// still gets its summary and output verification.
//
// Protocol surface: g/G/p/P (GPRs, FPRs, PC), m/M (TCDM + DRAM window),
// Z0/Z1 + Z2-4 (PC breakpoints, memory watchpoints), s/i/c, H/T/qC/
// qfThreadInfo/qThreadExtraInfo, qXfer:features:read (RISC-V target.xml so
// stock gdb picks up the FP registers), Ctrl-C interrupt, and qRcmd monitor
// commands exposing stall attribution, DMA/DRAM state, energy and nearest
// rvasm labels (see docs/debugging.md for the full reference).
#pragma once

#include <cstdint>
#include <deque>
#include <memory>
#include <string>

#include "debug/hub.hpp"
#include "debug/rsp.hpp"
#include "serve/net.hpp"
#include "sim/cluster.hpp"

namespace copift::debug {

struct StubOptions {
  std::uint16_t port = 0;  // 0 = ephemeral
  bool verbose = false;    // log every packet to stderr
};

class GdbStub {
 public:
  GdbStub(sim::Cluster& cluster, StubOptions options);

  [[nodiscard]] std::uint16_t port() const noexcept { return listener_.port(); }

  /// Block until a client attaches, serve the session, and return once the
  /// simulation completed (or the client detached and the free-run
  /// finished). Throws SimError when max_cycles elapse, exactly like
  /// Cluster::run().
  sim::RunResult serve();

 private:
  bool pump(int timeout_ms);  // read bytes into inbox_; false when closed
  bool take_interrupt();      // remove a queued Ctrl-C from inbox_
  void handle_event(const rsp::PacketReader::Event& event);
  void reply(std::string_view payload);
  std::string dispatch(std::string_view packet);

  std::string handle_query(std::string_view packet);
  std::string handle_registers_read();
  std::string handle_registers_write(std::string_view packet);
  std::string handle_reg_read(std::string_view packet);
  std::string handle_reg_write(std::string_view packet);
  std::string handle_mem_read(std::string_view packet);
  std::string handle_mem_write(std::string_view packet);
  std::string handle_breakpoint(std::string_view packet, bool insert);
  std::string handle_thread_op(std::string_view packet);
  std::string handle_step(std::string_view packet, bool cycle_step);
  std::string handle_continue(std::string_view packet);
  std::string handle_monitor(std::string_view hex_command);
  std::string stop_reply(const Stop& stop);
  std::string monitor_text(const std::string& command);
  [[nodiscard]] std::string target_xml() const;
  [[nodiscard]] unsigned cont_hart() const;

  DebugHub hub_;
  StubOptions options_;
  serve::Listener listener_;
  std::unique_ptr<serve::Connection> conn_;
  rsp::PacketReader reader_;
  std::deque<rsp::PacketReader::Event> inbox_;
  std::string last_frame_;  // retransmitted on NACK
  int cont_hart_ = -1;      // RSP `Hc`: -1 = all/any
  Stop last_stop_{};
  bool have_stop_ = false;
  bool detached_ = false;
  bool timed_out_ = false;
};

}  // namespace copift::debug

// GDB remote-serial-protocol packet codec.
//
// RSP frames every command/reply as `$<payload>#<xx>` where <xx> is the
// two-hex-digit modulo-256 sum of the payload bytes, and (in ack mode, the
// default) answers each frame with `+` (good checksum) or `-` (retransmit).
// The bytes `$`, `#` and `}` inside a payload are escaped as `}` followed by
// the byte XOR 0x20. A lone 0x03 byte outside any frame is the interrupt
// request (Ctrl-C in gdb).
//
// This header is the pure, socket-free half of the stub: framing, escaping,
// hex encode/decode, and an incremental PacketReader that turns a raw byte
// stream into protocol events. All of it is unit-tested without a cluster
// or a connection (tests/test_debug.cpp).
#pragma once

#include <cstdint>
#include <deque>
#include <optional>
#include <string>
#include <string_view>

namespace copift::debug::rsp {

/// Modulo-256 sum of the payload bytes (computed over the *escaped* payload,
/// per the protocol).
[[nodiscard]] std::uint8_t checksum(std::string_view payload);

/// Escape `$`, `#` and `}` as `}` + (byte ^ 0x20).
[[nodiscard]] std::string escape(std::string_view payload);

/// Inverse of escape(); a trailing lone `}` is dropped (malformed input).
[[nodiscard]] std::string unescape(std::string_view raw);

/// Full frame for a payload: `$` + escape(payload) + `#` + checksum.
[[nodiscard]] std::string frame(std::string_view payload);

// --- hex helpers (RSP is ASCII-hex almost everywhere) -----------------------

[[nodiscard]] std::string to_hex(std::string_view bytes);
/// Decodes pairs of hex digits; returns nullopt on odd length or non-hex.
[[nodiscard]] std::optional<std::string> from_hex(std::string_view hex);

/// Little-endian byte-order hex of a 32/64-bit value, as `g`/`p` replies
/// expect for RISC-V targets (8 resp. 16 hex chars).
[[nodiscard]] std::string hex_u32_le(std::uint32_t value);
[[nodiscard]] std::string hex_u64_le(std::uint64_t value);
/// Inverse: parse exactly 8/16 hex chars of little-endian bytes.
[[nodiscard]] std::optional<std::uint32_t> parse_u32_le(std::string_view hex);
[[nodiscard]] std::optional<std::uint64_t> parse_u64_le(std::string_view hex);

/// Big-endian (natural) hex number parse, as used for addresses/lengths in
/// `m`/`M`/`Z` packets; empty or over-long input returns nullopt.
[[nodiscard]] std::optional<std::uint64_t> parse_hex_num(std::string_view hex);

/// Incremental frame parser. feed() raw bytes as they arrive, then drain
/// next() until it returns nullopt. Bad-checksum frames surface as
/// kBadChecksum (the transport should answer `-`); garbage between frames
/// is skipped, as gdb's own stubs do.
class PacketReader {
 public:
  struct Event {
    enum class Kind { kPacket, kAck, kNack, kInterrupt, kBadChecksum };
    Kind kind;
    std::string payload;  // unescaped, kPacket only
  };

  void feed(std::string_view bytes);
  [[nodiscard]] std::optional<Event> next();

 private:
  void parse();

  std::string buf_;
  std::deque<Event> events_;
};

}  // namespace copift::debug::rsp

// DebugHub: interactive execution control over a sim::Cluster.
//
// The hub is the protocol-free half of the debug subsystem: it owns
// breakpoints (PC match), watchpoints (functional-memory traffic observed
// through mem::MemWatcher), stepping and resumption, and safe register/
// memory access while the cluster is stopped. The GDB stub (debug/stub.hpp)
// translates RSP packets into hub calls; tests drive the hub directly.
//
// Execution model: all harts share the cluster clock, so any step or resume
// advances every hart together — stepping "one hart" means advancing the
// cluster until that hart issues its next instruction. Breakpoints match the
// architectural PC at the end of a cycle; because programs are decoded once
// and immutable (ebreak raises a simulation error), PC match replaces the
// usual instruction patching and needs no memory writes.
//
// Skip-ahead interaction: resume() keeps the event-driven clock jump active
// when only breakpoints are armed — a jump is legal only while no hart can
// retire, so PCs are frozen and no breakpoint can be newly hit inside the
// jumped window. Any armed watchpoint forces per-cycle execution (the DMA is
// allowed to move memory inside a jump, and a watch stop must land on its
// exact cycle), trading speed for precision only while the user asks for it.
//
// Observation-only guarantee: a hub that is attached but idle (no client,
// no breakpoints, no watchpoints) changes nothing — the memory watcher
// records only inside hub-driven ticks, and every cycle-advancing path is
// bit-identical to Cluster::run() (asserted in tests/test_debug.cpp).
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <optional>
#include <set>
#include <vector>

#include "mem/address_space.hpp"
#include "sim/cluster.hpp"

namespace copift::debug {

/// Watchpoint flavor, mirroring RSP Z2 (write) / Z3 (read) / Z4 (access).
enum class WatchKind : std::uint8_t { kWrite, kRead, kAccess };

/// Why execution stopped. kExited carries hart 0's exit code; kTimeout means
/// max_cycles elapsed without every hart halting.
struct Stop {
  enum class Reason : std::uint8_t {
    kBreakpoint,
    kWatchpoint,
    kStep,
    kInterrupt,
    kExited,
    kTimeout,
  };
  Reason reason = Reason::kStep;
  unsigned hart = 0;           // the stopping hart (focus hart for watch/interrupt)
  std::uint32_t addr = 0;      // breakpoint PC or watched address
  WatchKind watch_kind = WatchKind::kAccess;
  std::uint32_t exit_code = 0;  // kExited only
};

class DebugHub final : public mem::MemWatcher {
 public:
  explicit DebugHub(sim::Cluster& cluster);
  ~DebugHub() override;
  DebugHub(const DebugHub&) = delete;
  DebugHub& operator=(const DebugHub&) = delete;

  [[nodiscard]] sim::Cluster& cluster() noexcept { return *cluster_; }
  [[nodiscard]] const sim::Cluster& cluster() const noexcept { return *cluster_; }
  [[nodiscard]] unsigned num_harts() const noexcept { return cluster_->num_cores(); }

  /// Watch/interrupt stops need a hart to attribute to; the stub keeps this
  /// in sync with the RSP focus thread (`Hg`).
  void set_focus_hart(unsigned hart);
  [[nodiscard]] unsigned focus_hart() const noexcept { return focus_hart_; }

  // --- breakpoints / watchpoints -------------------------------------------
  void set_breakpoint(std::uint32_t addr) { breakpoints_.insert(addr); }
  bool clear_breakpoint(std::uint32_t addr) { return breakpoints_.erase(addr) > 0; }
  void set_watchpoint(std::uint32_t addr, std::uint32_t len, WatchKind kind);
  bool clear_watchpoint(std::uint32_t addr, std::uint32_t len, WatchKind kind);
  [[nodiscard]] std::size_t num_breakpoints() const noexcept { return breakpoints_.size(); }
  [[nodiscard]] std::size_t num_watchpoints() const noexcept { return watchpoints_.size(); }

  // --- execution -----------------------------------------------------------
  /// Advance exactly one cluster cycle (RSP `i`). Reports any stop the cycle
  /// produced, else a kStep stop on the focus hart.
  Stop step_cycle();
  /// Advance until `hart` issues one instruction (RSP `s`), a breakpoint/
  /// watchpoint fires first, or the run ends.
  Stop step_instruction(unsigned hart);
  /// Run until a stop event (RSP `c`). `interrupted` is polled periodically
  /// (every ~1k cycles) so a transport can deliver Ctrl-C.
  Stop resume(const std::function<bool()>& interrupted = {});
  /// Detach: drop all breakpoints/watchpoints and run to completion.
  Stop free_run();

  // --- stopped-state access (hart out of range throws copift::Error) -------
  [[nodiscard]] std::uint32_t read_gpr(unsigned hart, unsigned index) const;
  void write_gpr(unsigned hart, unsigned index, std::uint32_t value);
  [[nodiscard]] std::uint64_t read_fpr(unsigned hart, unsigned index) const;
  void write_fpr(unsigned hart, unsigned index, std::uint64_t value);
  [[nodiscard]] std::uint32_t pc(unsigned hart) const;
  void set_pc(unsigned hart, std::uint32_t pc);
  [[nodiscard]] bool hart_halted(unsigned hart) const;
  /// Byte-wise memory access; throws SimError on unmapped addresses. Hub
  /// accesses never trigger watchpoints.
  [[nodiscard]] std::vector<std::uint8_t> read_mem(std::uint32_t addr, std::uint32_t len) const;
  void write_mem(std::uint32_t addr, const std::vector<std::uint8_t>& bytes);

  // --- mem::MemWatcher -----------------------------------------------------
  void on_load(std::uint32_t addr, std::uint32_t size) override;
  void on_store(std::uint32_t addr, std::uint32_t size) override;

 private:
  struct Watchpoint {
    std::uint32_t addr;
    std::uint32_t len;
    WatchKind kind;
  };
  struct WatchHit {
    std::uint32_t addr;
    std::uint32_t size;
    bool store;
  };
  // A reported stop arms a one-shot suppression: the stopped hart does not
  // re-report a breakpoint at its current PC until it makes progress (PC
  // change or an issued instruction — the latter covers one-instruction
  // self-loops). Without it, continue-from-breakpoint could never leave a
  // stall window at the breakpoint address.
  struct Ignore {
    bool active = false;
    std::uint32_t pc = 0;
    std::uint64_t issue_baseline = 0;
  };

  [[nodiscard]] std::uint64_t issue_count(unsigned hart) const;
  [[nodiscard]] bool fpss_all_idle() const;
  [[nodiscard]] bool run_complete() const;  // halted + FPSS drained
  void check_hart(unsigned hart) const;
  /// One cycle with watch recording; `fast` additionally allows a clock jump.
  void tick_checked(bool fast);
  /// Scan PCs and watch hits after a cycle, queueing fresh stops.
  void collect_stops();
  [[nodiscard]] std::optional<Stop> pop_pending();
  [[nodiscard]] Stop report(Stop stop);
  [[nodiscard]] Stop exited_stop() const;
  [[nodiscard]] bool use_fast() const;

  sim::Cluster* cluster_;
  unsigned focus_hart_ = 0;
  std::set<std::uint32_t> breakpoints_;
  std::vector<Watchpoint> watchpoints_;
  std::vector<Ignore> ignore_;
  std::deque<Stop> pending_;
  std::vector<WatchHit> watch_hits_;
  bool recording_ = false;  // true only inside tick_checked()
};

}  // namespace copift::debug

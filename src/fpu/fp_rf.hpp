// Floating-point register file (32 x 64-bit, NaN-boxed singles).
#pragma once

#include <array>
#include <cstdint>

#include "common/bits.hpp"

namespace copift::fpu {

class FpRegFile {
 public:
  [[nodiscard]] std::uint64_t read(unsigned index) const noexcept { return regs_[index]; }
  void write(unsigned index, std::uint64_t value) noexcept { regs_[index] = value; }

  [[nodiscard]] double read_d(unsigned index) const noexcept {
    return copift::bit_cast<double>(regs_[index]);
  }
  void write_d(unsigned index, double value) noexcept {
    regs_[index] = copift::bit_cast<std::uint64_t>(value);
  }

  /// Singles are NaN-boxed in the upper 32 bits per the RISC-V spec.
  [[nodiscard]] float read_s(unsigned index) const noexcept {
    return copift::bit_cast<float>(static_cast<std::uint32_t>(regs_[index]));
  }
  void write_s(unsigned index, float value) noexcept {
    regs_[index] = 0xFFFFFFFF00000000ULL | copift::bit_cast<std::uint32_t>(value);
  }

 private:
  std::array<std::uint64_t, 32> regs_{};
};

}  // namespace copift::fpu

// Functional + timing model of the Snitch FPU (FPnew).
//
// Functionally, operations are evaluated on host IEEE-754 arithmetic (RISC-V
// RNE rounding == host default). Timing is a per-class latency with full
// pipelining except div/sqrt, which occupy the unit for their whole latency.
#pragma once

#include <cstdint>

#include "isa/instr.hpp"

namespace copift::fpu {

/// Per-class result latencies in cycles (issue to writeback/forward).
/// Defaults approximate FPnew in the Snitch cluster at 1 GHz.
struct FpuLatencies {
  unsigned add = 3;
  unsigned mul = 3;
  unsigned fma = 3;
  unsigned div_sqrt = 11;
  unsigned cmp = 1;
  unsigned cvt = 2;
  unsigned move = 1;
  unsigned minmax = 1;
  unsigned fclass = 1;

  [[nodiscard]] unsigned of(isa::FpuClass cls) const noexcept;
};

/// Result of executing one FP instruction.
struct FpuResult {
  std::uint64_t fp = 0;        // value for an FP destination (raw bits)
  std::uint32_t intval = 0;    // value for an integer destination
  bool writes_fp = false;
  bool writes_int = false;
};

/// Execute `instr` functionally. `rs1`/`rs2`/`rs3` are the raw 64-bit FP
/// operand bits; `int_rs1` is the integer-RF operand for instructions that
/// consume one (fcvt.d.w, fmv.w.x). Throws SimError for non-FPU mnemonics.
FpuResult execute(const isa::Instr& instr, std::uint64_t rs1, std::uint64_t rs2,
                  std::uint64_t rs3, std::uint32_t int_rs1);

/// RISC-V fclass result bitmask for a double.
std::uint32_t fclass_d(double value);

}  // namespace copift::fpu

#include "fpu/fpu.hpp"

#include <cmath>
#include <limits>

#include "common/bits.hpp"
#include "common/error.hpp"

namespace copift::fpu {

namespace {

using isa::Mnemonic;

double as_d(std::uint64_t raw) { return copift::bit_cast<double>(raw); }
std::uint64_t raw_d(double v) { return copift::bit_cast<std::uint64_t>(v); }
float as_s(std::uint64_t raw) {
  return copift::bit_cast<float>(static_cast<std::uint32_t>(raw));
}
std::uint64_t raw_s(float v) {
  return 0xFFFFFFFF00000000ULL | copift::bit_cast<std::uint32_t>(v);
}

/// fcvt.w.d with RNE rounding and RISC-V saturation semantics.
std::int32_t cvt_w_d(double v) {
  if (std::isnan(v)) return std::numeric_limits<std::int32_t>::max();
  const double r = std::nearbyint(v);
  if (r >= 2147483648.0) return std::numeric_limits<std::int32_t>::max();
  if (r < -2147483648.0) return std::numeric_limits<std::int32_t>::min();
  return static_cast<std::int32_t>(r);
}

std::uint32_t cvt_wu_d(double v) {
  if (std::isnan(v)) return std::numeric_limits<std::uint32_t>::max();
  const double r = std::nearbyint(v);
  if (r >= 4294967296.0) return std::numeric_limits<std::uint32_t>::max();
  if (r < 0.0) return 0;
  return static_cast<std::uint32_t>(r);
}

std::uint64_t sgnj_d(std::uint64_t a, std::uint64_t b, int mode) {
  constexpr std::uint64_t kSign = 0x8000000000000000ULL;
  const std::uint64_t sign = mode == 0 ? (b & kSign) : mode == 1 ? (~b & kSign) : ((a ^ b) & kSign);
  return (a & ~kSign) | sign;
}

std::uint64_t sgnj_s(std::uint64_t a, std::uint64_t b, int mode) {
  constexpr std::uint32_t kSign = 0x80000000U;
  const auto au = static_cast<std::uint32_t>(a);
  const auto bu = static_cast<std::uint32_t>(b);
  const std::uint32_t sign = mode == 0 ? (bu & kSign) : mode == 1 ? (~bu & kSign) : ((au ^ bu) & kSign);
  return 0xFFFFFFFF00000000ULL | ((au & ~kSign) | sign);
}

FpuResult fp_result(std::uint64_t raw) {
  FpuResult r;
  r.fp = raw;
  r.writes_fp = true;
  return r;
}

FpuResult int_result(std::uint32_t v) {
  FpuResult r;
  r.intval = v;
  r.writes_int = true;
  return r;
}

}  // namespace

unsigned FpuLatencies::of(isa::FpuClass cls) const noexcept {
  switch (cls) {
    case isa::FpuClass::kAdd: return add;
    case isa::FpuClass::kMul: return mul;
    case isa::FpuClass::kFma: return fma;
    case isa::FpuClass::kDivSqrt: return div_sqrt;
    case isa::FpuClass::kCmp: return cmp;
    case isa::FpuClass::kCvt: return cvt;
    case isa::FpuClass::kMove: return move;
    case isa::FpuClass::kMinMax: return minmax;
    case isa::FpuClass::kClass: return fclass;
    case isa::FpuClass::kNone: return 1;
  }
  return 1;
}

std::uint32_t fclass_d(double v) {
  if (std::isnan(v)) {
    const auto raw = copift::bit_cast<std::uint64_t>(v);
    const bool quiet = (raw & 0x0008000000000000ULL) != 0;
    return quiet ? (1U << 9) : (1U << 8);
  }
  const bool neg = std::signbit(v);
  if (std::isinf(v)) return neg ? (1U << 0) : (1U << 7);
  if (v == 0.0) return neg ? (1U << 3) : (1U << 4);
  if (std::fpclassify(v) == FP_SUBNORMAL) return neg ? (1U << 2) : (1U << 5);
  return neg ? (1U << 1) : (1U << 6);
}

FpuResult execute(const isa::Instr& instr, std::uint64_t rs1, std::uint64_t rs2,
                  std::uint64_t rs3, std::uint32_t int_rs1) {
  const double a = as_d(rs1), b = as_d(rs2), c = as_d(rs3);
  const float fa = as_s(rs1), fb = as_s(rs2), fc = as_s(rs3);
  switch (instr.mnemonic) {
    // ---- double precision ----
    case Mnemonic::kFaddD: return fp_result(raw_d(a + b));
    case Mnemonic::kFsubD: return fp_result(raw_d(a - b));
    case Mnemonic::kFmulD: return fp_result(raw_d(a * b));
    case Mnemonic::kFdivD: return fp_result(raw_d(a / b));
    case Mnemonic::kFsqrtD: return fp_result(raw_d(std::sqrt(a)));
    case Mnemonic::kFmaddD: return fp_result(raw_d(std::fma(a, b, c)));
    case Mnemonic::kFmsubD: return fp_result(raw_d(std::fma(a, b, -c)));
    case Mnemonic::kFnmsubD: return fp_result(raw_d(std::fma(-a, b, c)));
    case Mnemonic::kFnmaddD: return fp_result(raw_d(-std::fma(a, b, c)));
    case Mnemonic::kFsgnjD: return fp_result(sgnj_d(rs1, rs2, 0));
    case Mnemonic::kFsgnjnD: return fp_result(sgnj_d(rs1, rs2, 1));
    case Mnemonic::kFsgnjxD: return fp_result(sgnj_d(rs1, rs2, 2));
    case Mnemonic::kFminD: return fp_result(raw_d(std::fmin(a, b)));
    case Mnemonic::kFmaxD: return fp_result(raw_d(std::fmax(a, b)));
    case Mnemonic::kFeqD: return int_result(a == b ? 1 : 0);
    case Mnemonic::kFltD: return int_result(a < b ? 1 : 0);
    case Mnemonic::kFleD: return int_result(a <= b ? 1 : 0);
    case Mnemonic::kFclassD: return int_result(fclass_d(a));
    case Mnemonic::kFcvtWD: return int_result(static_cast<std::uint32_t>(cvt_w_d(a)));
    case Mnemonic::kFcvtWuD: return int_result(cvt_wu_d(a));
    case Mnemonic::kFcvtDW:
      return fp_result(raw_d(static_cast<double>(static_cast<std::int32_t>(int_rs1))));
    case Mnemonic::kFcvtDWu: return fp_result(raw_d(static_cast<double>(int_rs1)));
    case Mnemonic::kFcvtSD: return fp_result(raw_s(static_cast<float>(a)));
    case Mnemonic::kFcvtDS: return fp_result(raw_d(static_cast<double>(fa)));
    // ---- single precision ----
    case Mnemonic::kFaddS: return fp_result(raw_s(fa + fb));
    case Mnemonic::kFsubS: return fp_result(raw_s(fa - fb));
    case Mnemonic::kFmulS: return fp_result(raw_s(fa * fb));
    case Mnemonic::kFdivS: return fp_result(raw_s(fa / fb));
    case Mnemonic::kFsqrtS: return fp_result(raw_s(std::sqrt(fa)));
    case Mnemonic::kFmaddS: return fp_result(raw_s(std::fmaf(fa, fb, fc)));
    case Mnemonic::kFmsubS: return fp_result(raw_s(std::fmaf(fa, fb, -fc)));
    case Mnemonic::kFnmsubS: return fp_result(raw_s(std::fmaf(-fa, fb, fc)));
    case Mnemonic::kFnmaddS: return fp_result(raw_s(-std::fmaf(fa, fb, fc)));
    case Mnemonic::kFsgnjS: return fp_result(sgnj_s(rs1, rs2, 0));
    case Mnemonic::kFsgnjnS: return fp_result(sgnj_s(rs1, rs2, 1));
    case Mnemonic::kFsgnjxS: return fp_result(sgnj_s(rs1, rs2, 2));
    case Mnemonic::kFminS: return fp_result(raw_s(std::fmin(fa, fb)));
    case Mnemonic::kFmaxS: return fp_result(raw_s(std::fmax(fa, fb)));
    case Mnemonic::kFeqS: return int_result(fa == fb ? 1 : 0);
    case Mnemonic::kFltS: return int_result(fa < fb ? 1 : 0);
    case Mnemonic::kFleS: return int_result(fa <= fb ? 1 : 0);
    case Mnemonic::kFclassS: return int_result(fclass_d(static_cast<double>(fa)));
    case Mnemonic::kFcvtWS: return int_result(static_cast<std::uint32_t>(cvt_w_d(fa)));
    case Mnemonic::kFcvtWuS: return int_result(cvt_wu_d(fa));
    case Mnemonic::kFcvtSW:
      return fp_result(raw_s(static_cast<float>(static_cast<std::int32_t>(int_rs1))));
    case Mnemonic::kFcvtSWu: return fp_result(raw_s(static_cast<float>(int_rs1)));
    case Mnemonic::kFmvXW: return int_result(static_cast<std::uint32_t>(rs1));
    case Mnemonic::kFmvWX: return fp_result(0xFFFFFFFF00000000ULL | int_rs1);
    // ---- Xcopift: all-FP-RF semantics (paper Section II-B) ----
    // Conversions read/write the integer *bit pattern* in the FP register's
    // low 32 bits; comparisons produce 0.0/1.0 doubles so hit counts can be
    // accumulated with fadd.d without touching the integer RF.
    case Mnemonic::kFcvtDWCop:
      return fp_result(raw_d(static_cast<double>(static_cast<std::int32_t>(rs1))));
    case Mnemonic::kFcvtDWuCop:
      return fp_result(raw_d(static_cast<double>(static_cast<std::uint32_t>(rs1))));
    case Mnemonic::kFcvtWDCop:
      return fp_result(static_cast<std::uint32_t>(cvt_w_d(a)));
    case Mnemonic::kFcvtWuDCop: return fp_result(cvt_wu_d(a));
    case Mnemonic::kFeqDCop: return fp_result(raw_d(a == b ? 1.0 : 0.0));
    case Mnemonic::kFltDCop: return fp_result(raw_d(a < b ? 1.0 : 0.0));
    case Mnemonic::kFleDCop: return fp_result(raw_d(a <= b ? 1.0 : 0.0));
    case Mnemonic::kFclassDCop: return fp_result(fclass_d(a));
    default:
      throw SimError("non-FPU instruction reached FPU: " + std::string(instr.meta().name));
  }
}

}  // namespace copift::fpu

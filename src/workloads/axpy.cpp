// AXPY workload: y[i] = a * x[i] + y[i] over doubles — the first
// out-of-paper scenario, implemented purely against the public workload API
// (workload.hpp + the AsmBuilder codegen helpers). Nothing in the harness or
// engine knows this file exists; registration alone makes `--kernel axpy`,
// sweeps, steady metrics and CSV/JSON work end-to-end.
//
// Variants:
//   baseline — 4x-unrolled scalar loop (fld/fld/fmadd.d/fsd), op-major so
//              independent elements hide FPU and load latencies.
//   copift   — SSR/FREP streaming form: lanes 0/1 stream x and y into the
//              FPSS, lane 2 streams the results back to memory, and a single
//              2x-unrolled FREP keeps the FPU busy with zero loop overhead.
//              (AXPY has no integer phase to co-issue, so "copift" here means
//              the paper's stream/FREP machinery rather than a dual-issue
//              partition.)
//
// Both variants are multi-hart capable: with cores > 1 each hart reads
// `mhartid`, processes the contiguous n/cores-element slice starting at
// hart * (n/cores), and synchronizes at the hardware `barrier` CSR before
// halting. cores == 1 generates exactly the historical single-core code.
#include <cmath>
#include <memory>
#include <string>
#include <vector>

#include "common/bits.hpp"
#include "common/error.hpp"
#include "kernels/codegen.hpp"
#include "kernels/prng.hpp"
#include "sim/cluster.hpp"
#include "workload/hart_slice.hpp"
#include "workload/tiled_buffer.hpp"
#include "workload/workload.hpp"

namespace copift::workloads {
namespace {

using kernels::AsmBuilder;
using kernels::cat;
using kernels::dword_of;
using kernels::Lcg;
using kernels::to_unit_double;
using workload::ConfigError;
using workload::Variant;
using workload::WorkloadConfig;

constexpr unsigned kUnroll = 4;

/// The scalar coefficient, derived deterministically from the seed so every
/// run is reproducible but sweeps over seeds exercise different values.
double axpy_a(std::uint32_t seed) {
  Lcg gen(seed ^ 0xA4B1C2D3u);
  return to_unit_double(gen.next()) * 4.0 - 2.0;  // [-2, 2)
}

std::vector<double> axpy_x(std::uint32_t n, std::uint32_t seed) {
  Lcg gen(seed ^ 0x0A590A59u);
  std::vector<double> x(n);
  for (auto& v : x) v = to_unit_double(gen.next()) * 2.0 - 1.0;  // [-1, 1)
  return x;
}

std::vector<double> axpy_y(std::uint32_t n, std::uint32_t seed) {
  Lcg gen(seed ^ 0x59A059A0u);
  std::vector<double> y(n);
  for (auto& v : y) v = to_unit_double(gen.next()) * 2.0 - 1.0;
  return y;
}

/// The workload's two streamed arrays; in tiled mode TiledBuffer places them
/// in DRAM and stages `<name>_buf` double buffers in TCDM.
workload::TiledBuffer make_tiled(const WorkloadConfig& cfg) {
  return workload::TiledBuffer(
      cfg, {{"xarr", workload::TiledBuffer::kIn, 8},
            {"yarr", workload::TiledBuffer::kInOut, 8}});
}

void emit_data(AsmBuilder& b, const WorkloadConfig& cfg,
               const workload::TiledBuffer& tiled) {
  b.raw(".data\n");
  b.l(".align 3");
  b.label("axpy_const");
  b.l(dword_of(axpy_a(cfg.seed)));
  if (tiled.enabled()) {
    tiled.emit_data(b);
    return;
  }
  b.label("xarr");
  b.l(cat(".space ", cfg.n * 8));
  b.label("yarr");
  b.l(cat(".space ", cfg.n * 8));
  b.raw(".text\n");
}

/// Point a3/a4 at this hart's slice of x/y (no-op single-core, so cores == 1
/// programs stay byte-identical to the historical generator).
void emit_hart_slice(AsmBuilder& b, const workload::HartSlice& slice) {
  slice.read_hartid(b, "t5", "partition: this hart's contiguous chunk of x and y");
  slice.offset_by_elements(b, "t5", 8, {"a3", "a4"}, "t1", "t2");
}

/// The 4x-unrolled scalar loop with x in a3, y in a4 and the iteration count
/// preloaded in t3 (shared by the untiled program and each tile).
void emit_baseline_body(AsmBuilder& b) {
  b.label("body_begin");
  b.c("op-major over 4 independent elements");
  for (unsigned u = 0; u < kUnroll; ++u) b.l(cat("fld fa", u, ", ", u * 8, "(a3)"));
  for (unsigned u = 0; u < kUnroll; ++u) b.l(cat("fld ft", u, ", ", u * 8, "(a4)"));
  for (unsigned u = 0; u < kUnroll; ++u) {
    b.l(cat("fmadd.d ft", u, ", fs0, fa", u, ", ft", u));
  }
  for (unsigned u = 0; u < kUnroll; ++u) b.l(cat("fsd ft", u, ", ", u * 8, "(a4)"));
  b.l(cat("addi a3, a3, ", kUnroll * 8));
  b.l(cat("addi a4, a4, ", kUnroll * 8));
  b.l("addi t3, t3, -1");
  b.l("bnez t3, body_begin");
  b.label("body_end");
}

std::string generate_baseline(const WorkloadConfig& cfg) {
  const workload::HartSlice slice(cfg);
  const std::uint32_t chunk = slice.chunk();
  workload::TiledBuffer tiled = make_tiled(cfg);
  AsmBuilder b;
  emit_data(b, cfg, tiled);
  b.label("_start");
  if (tiled.enabled()) {
    b.l("la s0, axpy_const");
    b.l("fld fs0, 0(s0)");  // a
    slice.read_hartid(b, "t5", "partition: this hart's slice of every tile");
    tiled.prologue(b, slice);
    b.l("csrwi region, 1");
    b.label("tile_loop");
    tiled.hart0_stage(b, slice);
    tiled.compute_base(b, "a3", 0, "t5", "t1", "t2");
    tiled.compute_base(b, "a4", 1, "t5", "t1", "t2");
    b.l(cat("li t3, ", tiled.chunk() / kUnroll));
    emit_baseline_body(b);
    b.l("csrr t0, fpss");  // land the offloaded fsd stores before the DMA-out
    tiled.tile_epilogue(b, slice, "tile_loop");
    b.l("csrwi region, 2");
    tiled.final_store(b, slice);
    slice.epilogue(b);
    return b.str();
  }
  b.l("la a3, xarr");
  b.l("la a4, yarr");
  b.l("la s0, axpy_const");
  b.l("fld fs0, 0(s0)");  // a
  emit_hart_slice(b, slice);
  b.l(cat("li t3, ", chunk / kUnroll));
  b.l("csrwi region, 1");
  emit_baseline_body(b);
  b.l("csrwi region, 2");
  b.l("csrr t0, fpss");  // drain offloaded stores before halting
  slice.epilogue(b);  // harts leave together; barrier-wait counters expose imbalance
  return b.str();
}

/// Bounds/strides for the three SSR lanes over `count` contiguous doubles
/// (lane0 reads x, lane1 reads y, lane2 writes y). Clobbers t6.
void emit_ssr_geometry(AsmBuilder& b, std::uint32_t count) {
  b.c("lane0 reads x (ft0), lane1 reads y (ft1), lane2 writes y (ft2);");
  b.c("all three are 1-D streams of this hart's contiguous doubles");
  b.l(cat("li t6, ", count - 1));
  b.l("scfgwi t6, 1");    // lane0 bound0 = n-1
  b.l("scfgwi t6, 33");   // lane1 bound0
  b.l("scfgwi t6, 65");   // lane2 bound0
  b.l("li t6, 8");
  b.l("scfgwi t6, 5");    // lane0 stride0 = 8
  b.l("scfgwi t6, 37");   // lane1 stride0
  b.l("scfgwi t6, 69");   // lane2 stride0
}

/// Arm the lane pointers at a3/a4 and run one FREP burst over them. The
/// trailing `csrr t0, fpss` lands the lane-2 writes in TCDM.
void emit_copift_body(AsmBuilder& b) {
  b.l("scfgwi a3, 24");   // lane0 RPTR0 <- x (arms the read stream)
  b.l("scfgwi a4, 56");   // lane1 RPTR0 <- y
  b.l("scfgwi a4, 92");   // lane2 WPTR0 <- y (arms the write stream)
  b.label("body_begin");
  b.l("frep.o t4, 2");
  b.l("fmadd.d ft2, fs0, ft0, ft1");
  b.l("fmadd.d ft2, fs0, ft0, ft1");
  b.label("body_end");
  b.l("csrr t0, fpss");  // drain the FPSS and the lane-2 write stream
}

std::string generate_copift(const WorkloadConfig& cfg) {
  const workload::HartSlice slice(cfg);
  const std::uint32_t chunk = slice.chunk();
  workload::TiledBuffer tiled = make_tiled(cfg);
  AsmBuilder b;
  emit_data(b, cfg, tiled);
  b.label("_start");
  if (tiled.enabled()) {
    b.l("la s0, axpy_const");
    b.l("fld fs0, 0(s0)");  // a
    slice.read_hartid(b, "t5", "partition: this hart's slice of every tile");
    tiled.prologue(b, slice);
    b.c("stream geometry is per-tile-constant; only the pointers re-arm");
    emit_ssr_geometry(b, tiled.chunk());
    b.l(cat("li t4, ", tiled.chunk() / 2 - 1));  // FREP repetitions - 1
    b.l("csrwi region, 1");
    b.label("tile_loop");
    tiled.hart0_stage(b, slice);
    tiled.compute_base(b, "a3", 0, "t5", "t1", "t2");
    tiled.compute_base(b, "a4", 1, "t5", "t1", "t2");
    b.l("csrsi ssr, 1");
    emit_copift_body(b);
    b.l("csrci ssr, 1");  // release ft0-2 before the tile barrier
    tiled.tile_epilogue(b, slice, "tile_loop");
    b.l("csrwi region, 2");
    tiled.final_store(b, slice);
    slice.epilogue(b);
    return b.str();
  }
  b.l("la a3, xarr");
  b.l("la a4, yarr");
  b.l("la s0, axpy_const");
  b.l("fld fs0, 0(s0)");  // a
  emit_hart_slice(b, slice);
  b.l(cat("li t4, ", chunk / 2 - 1));  // FREP repetitions - 1 (2x unrolled body)
  b.l("csrsi ssr, 1");
  emit_ssr_geometry(b, chunk);
  b.l("csrwi region, 1");
  emit_copift_body(b);
  b.l("csrci ssr, 1");
  b.l("csrwi region, 2");
  slice.epilogue(b);
  return b.str();
}

class AxpyWorkload final : public workload::Workload {
 public:
  [[nodiscard]] std::string name() const override { return "axpy"; }
  [[nodiscard]] std::string description() const override {
    return "y[i] = a*x[i] + y[i] over doubles (out-of-paper demo workload)";
  }

  [[nodiscard]] bool multi_hart_capable(Variant) const override { return true; }
  [[nodiscard]] bool tiled_capable(Variant) const override { return true; }

  void validate(Variant variant, const WorkloadConfig& config) const override {
    Workload::validate(variant, config);
    if (config.n % kUnroll != 0) {
      throw ConfigError(name(), variant, "n=" + std::to_string(config.n) +
                                             " must be a multiple of the unroll factor 4");
    }
    if (config.tile != 0) {
      // Two arrays of doubles; reserve a little TCDM for axpy_const.
      workload::TiledBuffer::validate(name(), variant, config, kUnroll,
                                      "the unroll factor", 1, 16, 256);
      return;
    }
    workload::HartSlice::validate(name(), variant, config, kUnroll, "the unroll factor");
  }

  [[nodiscard]] std::string generate(Variant variant,
                                     const WorkloadConfig& config) const override {
    return variant == Variant::kBaseline ? generate_baseline(config)
                                         : generate_copift(config);
  }

  void populate_inputs(sim::Cluster& cluster, const WorkloadConfig& config) const override {
    const auto& program = cluster.program();
    const std::uint32_t xbase = program.symbol("xarr");
    const std::uint32_t ybase = program.symbol("yarr");
    const auto x = axpy_x(config.n, config.seed);
    const auto y = axpy_y(config.n, config.seed);
    for (std::uint32_t i = 0; i < config.n; ++i) {
      cluster.memory().store64(xbase + i * 8, copift::bit_cast<std::uint64_t>(x[i]));
      cluster.memory().store64(ybase + i * 8, copift::bit_cast<std::uint64_t>(y[i]));
    }
  }

  void verify_outputs(sim::Cluster& cluster, Variant,
                      const WorkloadConfig& config) const override {
    const double a = axpy_a(config.seed);
    const auto x = axpy_x(config.n, config.seed);
    const auto y = axpy_y(config.n, config.seed);
    workload::verify_doubles(cluster, name(), "yarr", config.n,
                             [&](std::uint32_t i) { return std::fma(a, x[i], y[i]); });
  }
};

const workload::Registrar kAxpyReg(std::make_shared<AxpyWorkload>());

}  // namespace
}  // namespace copift::workloads

// Softmax workload: p[i] = exp(x[i]) / sum_j exp(x[j]), entirely on the
// simulated cluster — promoted from examples/softmax.cpp (which ran only the
// exp phase on-device and normalized on the host). The paper motivates exp
// as "the main component of softmax, which consumes a considerable fraction
// of cycles in modern LLMs" (Section III-A); this workload completes the
// story: exponentiation, the serial denominator reduction and the normalizing
// division all execute on the cluster and verify bit-exactly.
//
// Like axpy, this file is an out-of-paper scenario implemented purely against
// the public workload API — registration alone wires it into the runner, the
// batch engine, copift_sim sweeps and the CSV/JSON emitters.
//
// Variant support is intentionally partial: only the baseline variant exists
// (a COPIFT partition of the fused softmax loop is future work), which
// exercises the registry's declared-variants machinery end to end.
#include <memory>
#include <string>
#include <vector>

#include "common/bits.hpp"
#include "common/error.hpp"
#include "kernels/codegen.hpp"
#include "kernels/glibc_math.hpp"
#include "kernels/prng.hpp"
#include "sim/cluster.hpp"
#include "workload/workload.hpp"

namespace copift::workloads {
namespace {

using kernels::AsmBuilder;
using kernels::cat;
using kernels::dword_of;
using kernels::exp_constants;
using kernels::exp_table;
using kernels::Lcg;
using kernels::ref_exp;
using kernels::to_unit_double;
using workload::ConfigError;
using workload::Variant;
using workload::WorkloadConfig;

constexpr unsigned kUnroll = 2;

/// Logits in [-1, 1) — the glibc expf table path is exact on this range.
std::vector<double> softmax_logits(std::uint32_t n, std::uint32_t seed) {
  Lcg gen(seed ^ 0x50F7A3C5u);
  std::vector<double> x(n);
  for (auto& v : x) v = to_unit_double(gen.next()) * 2.0 - 1.0;
  return x;
}

/// Host reference: exp via the bit-exact glibc oracle, then the same serial
/// reduction and division order the assembly performs.
struct SoftmaxRef {
  std::vector<double> probs;
  double denom = 0.0;
};

SoftmaxRef softmax_ref(std::uint32_t n, std::uint32_t seed) {
  const auto x = softmax_logits(n, seed);
  SoftmaxRef ref;
  ref.probs.resize(n);
  for (std::uint32_t i = 0; i < n; ++i) ref.probs[i] = ref_exp(x[i]);
  for (std::uint32_t i = 0; i < n; ++i) ref.denom += ref.probs[i];
  for (std::uint32_t i = 0; i < n; ++i) ref.probs[i] /= ref.denom;
  return ref;
}

void emit_data(AsmBuilder& b, const WorkloadConfig& cfg) {
  const auto cst = exp_constants();
  b.raw(".data\n");
  b.l(".align 3");
  b.label("exp_tab");
  for (const std::uint64_t entry : exp_table()) b.l(dword_of(entry));
  b.label("exp_const");
  b.l(dword_of(cst.inv_ln2_n));
  b.l(dword_of(cst.shift));
  b.l(dword_of(cst.c0));
  b.l(dword_of(cst.c1));
  b.l(dword_of(cst.c2));
  b.l(dword_of(1.0));
  b.label("kd_buf");
  b.l(cat(".space ", kUnroll * 8));
  b.label("t_buf");
  b.l(cat(".space ", kUnroll * 8));
  b.label("result");
  b.l(".space 8");
  b.label("xarr");
  b.l(cat(".space ", cfg.n * 8));
  b.label("yarr");
  b.l(cat(".space ", cfg.n * 8));
  b.raw(".text\n");
}

std::string generate_baseline(const WorkloadConfig& cfg) {
  AsmBuilder b;
  emit_data(b, cfg);
  b.label("_start");
  b.l("la a3, xarr");
  b.l("la a4, yarr");
  b.l("la t0, exp_tab");
  b.l("la t1, kd_buf");
  b.l("la t2, t_buf");
  b.l("la s0, exp_const");
  for (unsigned i = 0; i < 6; ++i) b.l(cat("fld fs", i, ", ", i * 8, "(s0)"));
  b.l(cat("li t3, ", cfg.n / kUnroll));
  b.l("csrwi region, 1");

  b.c("pass 1: y[i] = exp(x[i]) (glibc dataflow, 2x unrolled)");
  b.label("body_begin");
  for (unsigned u = 0; u < kUnroll; ++u) b.l(cat("fld fa", u, ", ", u * 8, "(a3)"));
  for (unsigned u = 0; u < kUnroll; ++u) b.l(cat("fmul.d fa", u, ", fs0, fa", u));  // z
  for (unsigned u = 0; u < kUnroll; ++u) {
    b.l(cat("fadd.d fa", 2 + u, ", fa", u, ", fs1"));  // kd
  }
  for (unsigned u = 0; u < kUnroll; ++u) b.l(cat("fsd fa", 2 + u, ", ", u * 8, "(t1)"));
  b.c("integer table lookup (low word of kd)");
  for (unsigned u = 0; u < kUnroll; ++u) {
    const char* ki = u == 0 ? "a0" : "a5";
    const char* ptr = u == 0 ? "a1" : "a6";
    const char* lo = u == 0 ? "a2" : "a7";
    b.l(cat("lw ", ki, ", ", u * 8, "(t1)"));
    b.l(cat("andi ", ptr, ", ", ki, ", 31"));
    b.l(cat("slli ", ptr, ", ", ptr, ", 3"));
    b.l(cat("add ", ptr, ", t0, ", ptr));
    b.l(cat("lw ", lo, ", 0(", ptr, ")"));
    b.l(cat("lw ", ptr, ", 4(", ptr, ")"));
    b.l(cat("slli ", ki, ", ", ki, ", 15"));
    b.l(cat("add ", ki, ", ", ki, ", ", ptr));
    b.l(cat("sw ", lo, ", ", u * 8, "(t2)"));
    b.l(cat("sw ", ki, ", ", u * 8 + 4, "(t2)"));
  }
  b.c("FP tail: r, p1, p2, w = p1*r2 + p2, y = w * s");
  for (unsigned u = 0; u < kUnroll; ++u) {
    b.l(cat("fsub.d fa", 2 + u, ", fa", 2 + u, ", fs1"));  // kd2
  }
  for (unsigned u = 0; u < kUnroll; ++u) {
    b.l(cat("fsub.d fa", u, ", fa", u, ", fa", 2 + u));  // r
  }
  for (unsigned u = 0; u < kUnroll; ++u) {
    b.l(cat("fmadd.d ft", u, ", fs2, fa", u, ", fs3"));  // p1
  }
  for (unsigned u = 0; u < kUnroll; ++u) {
    b.l(cat("fmadd.d fa", 2 + u, ", fs4, fa", u, ", fs5"));  // p2
  }
  for (unsigned u = 0; u < kUnroll; ++u) b.l(cat("fmul.d fa", u, ", fa", u, ", fa", u));  // r2
  for (unsigned u = 0; u < kUnroll; ++u) b.l(cat("fld ft", 2 + u, ", ", u * 8, "(t2)"));
  for (unsigned u = 0; u < kUnroll; ++u) {
    b.l(cat("fmadd.d fa", 2 + u, ", ft", u, ", fa", u, ", fa", 2 + u));  // w
  }
  for (unsigned u = 0; u < kUnroll; ++u) {
    b.l(cat("fmul.d fa", 2 + u, ", fa", 2 + u, ", ft", 2 + u));  // y = w * s
  }
  for (unsigned u = 0; u < kUnroll; ++u) b.l(cat("fsd fa", 2 + u, ", ", u * 8, "(a4)"));
  b.l(cat("addi a3, a3, ", kUnroll * 8));
  b.l(cat("addi a4, a4, ", kUnroll * 8));
  b.l("addi t3, t3, -1");
  b.l("bnez t3, body_begin");
  b.label("body_end");

  b.c("pass 2: denom = serial sum of y (same order as the host reference)");
  b.l("la a3, yarr");
  b.l(cat("li t3, ", cfg.n));
  b.l("fcvt.d.w fa0, zero");
  b.label("sum_loop");
  b.l("fld fa1, 0(a3)");
  b.l("fadd.d fa0, fa0, fa1");
  b.l("addi a3, a3, 8");
  b.l("addi t3, t3, -1");
  b.l("bnez t3, sum_loop");
  b.l("la t5, result");
  b.l("fsd fa0, 0(t5)");

  b.c("pass 3: p[i] = y[i] / denom");
  b.l("la a3, yarr");
  b.l(cat("li t3, ", cfg.n));
  b.label("norm_loop");
  b.l("fld fa1, 0(a3)");
  b.l("fdiv.d fa1, fa1, fa0");
  b.l("fsd fa1, 0(a3)");
  b.l("addi a3, a3, 8");
  b.l("addi t3, t3, -1");
  b.l("bnez t3, norm_loop");

  b.l("csrr t0, fpss");  // drain offloaded stores
  b.l("csrwi region, 2");
  b.l("ecall");
  return b.str();
}

class SoftmaxWorkload final : public workload::Workload {
 public:
  [[nodiscard]] std::string name() const override { return "softmax"; }
  [[nodiscard]] std::string description() const override {
    return "p[i] = exp(x[i]) / sum(exp(x)), fully on-device (attention-row softmax)";
  }

  [[nodiscard]] std::vector<Variant> variants() const override {
    return {Variant::kBaseline};
  }

  void validate(Variant variant, const WorkloadConfig& config) const override {
    Workload::validate(variant, config);
    if (config.n % kUnroll != 0) {
      throw ConfigError(name(), variant, "n=" + std::to_string(config.n) +
                                             " must be a multiple of the unroll factor 2");
    }
  }

  [[nodiscard]] std::string generate(Variant,
                                     const WorkloadConfig& config) const override {
    return generate_baseline(config);
  }

  void populate_inputs(sim::Cluster& cluster, const WorkloadConfig& config) const override {
    const std::uint32_t base = cluster.program().symbol("xarr");
    const auto x = softmax_logits(config.n, config.seed);
    for (std::uint32_t i = 0; i < config.n; ++i) {
      cluster.memory().store64(base + i * 8, copift::bit_cast<std::uint64_t>(x[i]));
    }
  }

  void verify_outputs(sim::Cluster& cluster, Variant,
                      const WorkloadConfig& config) const override {
    const auto& program = cluster.program();
    const SoftmaxRef ref = softmax_ref(config.n, config.seed);
    const std::uint64_t denom_got = cluster.memory().load64(program.symbol("result"));
    if (denom_got != copift::bit_cast<std::uint64_t>(ref.denom)) {
      throw Error("softmax verification failed: denominator got " +
                  std::to_string(copift::bit_cast<double>(denom_got)) + ", expected " +
                  std::to_string(ref.denom));
    }
    workload::verify_doubles(cluster, name(), "yarr", config.n,
                             [&](std::uint32_t i) { return ref.probs[i]; });
  }
};

const workload::Registrar kSoftmaxReg(std::make_shared<SoftmaxWorkload>());

}  // namespace
}  // namespace copift::workloads

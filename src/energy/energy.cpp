#include "energy/energy.hpp"

#include <algorithm>

namespace copift::energy {

EnergyReport EnergyModel::evaluate_events(const sim::ActivityCounters& c,
                                          double constant_pj_per_cycle) const {
  EnergyReport r;
  r.cycles = c.cycles;
  const auto n = [](std::uint64_t v) { return static_cast<double>(v); };

  r.constant_pj = constant_pj_per_cycle * n(c.cycles);

  const double int_issues = n(c.int_retired);
  r.int_core_pj = params_.int_issue_pj * int_issues +
                  params_.int_alu_pj * n(c.int_alu) +
                  params_.int_mul_pj * n(c.int_mul) +
                  params_.int_div_pj_per_cycle * n(c.int_div) +
                  params_.branch_pj * n(c.branches + c.jumps) +
                  params_.offload_pj * n(c.fp_retired - c.frep_replays + c.ssr_cfg + c.frep_cfg);

  r.fpss_pj = params_.fp_issue_pj * n(c.fp_retired) +
              params_.fp_add_pj * n(c.fp_add) +
              params_.fp_mul_pj * n(c.fp_mul) +
              params_.fp_fma_pj * n(c.fp_fma) +
              params_.fp_divsqrt_pj * n(c.fp_divsqrt) +
              params_.fp_cmp_pj * n(c.fp_cmp + c.fp_class) +
              params_.fp_cvt_pj * n(c.fp_cvt) +
              params_.fp_move_pj * n(c.fp_move + c.fp_minmax);

  r.memory_pj = params_.tcdm_access_pj * n(c.tcdm_reads + c.tcdm_writes) +
                params_.ssr_element_pj * n(c.ssr_elements + c.issr_indices);

  r.icache_pj = params_.l0_hit_pj * n(c.l0_hits) + params_.l0_refill_pj * n(c.l0_refills);

  r.dma_pj = params_.dma_active_pj_per_cycle * n(c.dma_busy_cycles) +
             params_.dma_byte_pj * n(c.dma_bytes);

  r.total_pj = r.constant_pj + r.int_core_pj + r.fpss_pj + r.memory_pj + r.icache_pj + r.dma_pj;
  return r;
}

EnergyReport EnergyModel::evaluate(const sim::ActivityCounters& c) const {
  return evaluate_events(c, params_.base_pj_per_cycle + params_.dma_idle_pj_per_cycle);
}

std::vector<EnergyReport> EnergyModel::evaluate_harts(
    std::span<const sim::ActivityCounters> per_hart) const {
  std::vector<EnergyReport> reports;
  reports.reserve(per_hart.size());
  for (std::size_t h = 0; h < per_hart.size(); ++h) {
    const double constant = h == 0
                                ? params_.base_pj_per_cycle + params_.dma_idle_pj_per_cycle
                                : params_.complex_pj_per_cycle;
    reports.push_back(evaluate_events(per_hart[h], constant));
  }
  return reports;
}

EnergyReport sum_reports(std::span<const EnergyReport> reports) {
  EnergyReport total;
  for (const EnergyReport& r : reports) {
    total.total_pj += r.total_pj;
    total.constant_pj += r.constant_pj;
    total.int_core_pj += r.int_core_pj;
    total.fpss_pj += r.fpss_pj;
    total.memory_pj += r.memory_pj;
    total.icache_pj += r.icache_pj;
    total.dma_pj += r.dma_pj;
    total.cycles = std::max(total.cycles, r.cycles);
  }
  return total;
}

}  // namespace copift::energy

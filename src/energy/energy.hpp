// Activity-based energy/power model.
//
// Substitution for the paper's post-layout PrimeTime power flow (GF12LP+,
// 1 GHz, 0.8 V, 25 C). Total energy is a constant per-cycle term (clock tree,
// leakage, idle logic — the paper notes power is "dominated by constant
// components") plus per-event energies for every counted activity. Power in
// mW falls out directly because 1 cycle == 1 ns: P[mW] = E[pJ] / cycles.
//
// The per-event energies in EnergyParams are calibrated so that the six
// baseline kernels land in the paper's 37-42 mW band and the COPIFT variants
// show the paper's <= 1.17x power increase; see DESIGN.md and EXPERIMENTS.md.
#pragma once

#include <span>
#include <vector>

#include "sim/counters.hpp"

namespace copift::energy {

/// Per-event energies in picojoules, plus constant per-cycle power.
struct EnergyParams {
  // Constant components (pJ per cycle == mW): clock network, leakage,
  // always-on control. Split so configurations without a DMA could drop it.
  // `base` covers the cluster infrastructure plus the first core complex;
  // each additional complex of a multi-hart topology adds `complex` (its
  // clock leaves, register files and sequencer are clocked even when idle).
  double base_pj_per_cycle = 30.0;
  double complex_pj_per_cycle = 6.0;
  double dma_idle_pj_per_cycle = 2.0;

  // Integer core events.
  double int_issue_pj = 1.1;    // any issued integer instruction (fetch+decode+RF)
  double int_alu_pj = 0.6;
  double int_mul_pj = 1.8;
  double int_div_pj_per_cycle = 0.9;  // iterative divider activity
  double branch_pj = 0.5;

  // FPSS events (64-bit datapath).
  double fp_issue_pj = 1.0;     // sequencer/offload handling per FP issue
  double fp_add_pj = 3.4;
  double fp_mul_pj = 4.6;
  double fp_fma_pj = 6.8;
  double fp_divsqrt_pj = 18.0;
  double fp_cmp_pj = 1.2;
  double fp_cvt_pj = 2.2;
  double fp_move_pj = 0.8;

  // Memory events.
  double tcdm_access_pj = 7.0;  // one 64-bit bank access
  double l0_hit_pj = 0.4;
  double l0_refill_pj = 28.0;   // one line (8 instrs) from L1 I$ + L0 fill
  double ssr_element_pj = 0.7;  // address generation + FIFO movement
  double dma_active_pj_per_cycle = 6.5;
  double dma_byte_pj = 0.25;

  // Offload FIFO push (core -> FPSS handshake).
  double offload_pj = 0.4;
};

/// Energy/power report for a counters delta.
struct EnergyReport {
  double total_pj = 0.0;
  double constant_pj = 0.0;
  double int_core_pj = 0.0;
  double fpss_pj = 0.0;
  double memory_pj = 0.0;
  double icache_pj = 0.0;
  double dma_pj = 0.0;
  std::uint64_t cycles = 0;

  /// Average power in mW at 1 GHz (1 cycle = 1 ns).
  [[nodiscard]] double power_mw() const noexcept {
    return cycles == 0 ? 0.0 : total_pj / static_cast<double>(cycles);
  }
  /// Energy in nanojoules.
  [[nodiscard]] double energy_nj() const noexcept { return total_pj / 1000.0; }
};

class EnergyModel {
 public:
  explicit EnergyModel(EnergyParams params = {}) : params_(params) {}

  /// Compute the energy for a span of execution described by a counters
  /// delta (use ActivityCounters::minus for regions). The delta is treated
  /// as a whole single-complex cluster: the constant terms are charged once.
  [[nodiscard]] EnergyReport evaluate(const sim::ActivityCounters& delta) const;

  /// Per-complex attribution for a multi-hart cluster: element h of the
  /// input is hart h's counters delta, element h of the output its energy.
  /// Hart 0 carries the cluster-constant terms (base + DMA idle, plus the
  /// shared DMA's activity, which the cluster attributes to hart 0); every
  /// other hart carries its complex-constant term plus its own events.
  [[nodiscard]] std::vector<EnergyReport> evaluate_harts(
      std::span<const sim::ActivityCounters> per_hart) const;

  [[nodiscard]] const EnergyParams& params() const noexcept { return params_; }

 private:
  [[nodiscard]] EnergyReport evaluate_events(const sim::ActivityCounters& delta,
                                             double constant_pj_per_cycle) const;

  EnergyParams params_;
};

/// Component-wise sum of per-hart reports into one cluster report. `cycles`
/// takes the max (the harts share the cluster clock).
[[nodiscard]] EnergyReport sum_reports(std::span<const EnergyReport> reports);

}  // namespace copift::energy

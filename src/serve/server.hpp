// The copift_serve core: accept loop, fair request queue, batch scheduler
// and graceful shutdown, tying the net / protocol / cache layers onto the
// existing SimEngine pool.
//
// Threading model:
//   - one accept thread (poll on listener + wake pipe),
//   - one reader thread per connection (parses line-delimited requests;
//     answers health/stats inline so observability stays responsive while
//     sweeps run; enqueues run requests),
//   - one scheduler thread that drains the queue in *epochs*: all requests
//     queued at that moment are ordered round-robin across clients, their
//     grid points are resolved against the ResultCache (deduping identical
//     points within and across requests), and the remaining misses run as a
//     single SimEngine::parallel_for batch. Responses — including per-point
//     progress events — stream back as entries complete.
//
// Shutdown: request_shutdown() is async-signal-safe (atomic flag + self-pipe
// write). The listener closes, readers stop consuming input, the scheduler
// drains every queued request and flushes every pending response, then all
// threads join. request_abort() additionally fires the engine CancelToken so
// in-flight sweeps stop between grid points; requests with unfinished points
// then receive error events instead of silently vanishing.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "engine/engine.hpp"
#include "serve/cache.hpp"
#include "serve/net.hpp"
#include "serve/protocol.hpp"

namespace copift::serve {

struct ServerConfig {
  /// TCP port on 127.0.0.1; 0 binds an ephemeral port (see Server::port()).
  std::uint16_t port = 0;
  /// SimEngine worker threads; 0 = hardware concurrency.
  unsigned engine_threads = 0;
  /// ResultCache capacity (completed grid points kept resident).
  std::size_t cache_entries = 4096;
  /// Close connections idle longer than this; <= 0 disables the timeout.
  int idle_timeout_ms = 120000;
  /// Reject run requests expanding to more grid points than this.
  std::size_t max_grid_points = 65536;
  /// Reject request lines longer than this (protocol violation).
  std::size_t max_line_bytes = 1 << 20;
  /// Persist the ResultCache here: reload at start(), write back after the
  /// shutdown drain in wait(). Empty disables persistence. A missing file is
  /// a fresh start; a stale or corrupt one logs a warning and starts empty.
  std::string cache_file;
};

struct ServerStats {
  std::uint64_t uptime_ms = 0;
  std::uint64_t connections_accepted = 0;
  std::uint64_t active_connections = 0;
  std::uint64_t requests_received = 0;  // run requests accepted into the queue
  std::uint64_t requests_served = 0;    // result events sent
  std::uint64_t requests_failed = 0;    // error events sent for run requests
  std::uint64_t inflight = 0;           // queued or currently scheduled
  std::uint64_t points_requested = 0;   // grid points across all run requests
  std::uint64_t points_simulated = 0;   // points that actually ran a simulation
  CacheStats cache;
};

class Server {
 public:
  explicit Server(ServerConfig config = {});
  ~Server();
  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Bind + listen and spawn the accept and scheduler threads.
  void start();

  /// The bound TCP port (the actual one when config.port was 0).
  [[nodiscard]] std::uint16_t port() const;

  /// Resolved SimEngine worker count (>= 1; includes the scheduler thread's
  /// own participation in each batch).
  [[nodiscard]] unsigned engine_threads() const noexcept { return engine_.threads(); }

  /// Graceful shutdown: stop accepting, drain queued sweeps, flush every
  /// pending response. Async-signal-safe (atomic store + pipe write).
  void request_shutdown() noexcept;
  /// Shutdown + cancel the in-flight engine batch between grid points.
  /// Async-signal-safe.
  void request_abort() noexcept;

  /// Block until every thread has exited and every response is flushed.
  void wait();

  [[nodiscard]] ServerStats stats() const;

 private:
  /// One fully resolved grid coordinate of a run request.
  struct PointSpec {
    std::string workload;
    workload::Variant variant = workload::Variant::kCopift;
    workload::WorkloadConfig config{};
  };

  struct Client {
    explicit Client(int fd) : conn(fd) {}
    std::uint64_t id = 0;
    Connection conn;
    std::uint64_t next_seq = 0;  // per-client request counter (reader thread only)
  };

  struct PendingRequest {
    std::shared_ptr<Client> client;
    Request request;
    std::vector<PointSpec> points;
    std::uint64_t client_seq = 0;  // fairness: round-robin key across clients
  };

  void accept_loop();
  void reader_loop(std::shared_ptr<Client> client);
  void scheduler_loop();
  void run_epoch(std::vector<PendingRequest> epoch);
  bool handle_line(const std::shared_ptr<Client>& client, const std::string& line);
  [[nodiscard]] static std::vector<PointSpec> expand(const Request& request);
  [[nodiscard]] engine::ResultRow simulate_point(const PointSpec& spec, bool verify,
                                                 engine::ProgramCache& programs) const;
  [[nodiscard]] std::string stats_json(std::uint64_t id, const char* event) const;
  void load_cache_file();
  void save_cache_file();

  ServerConfig config_;
  engine::SimEngine engine_;
  ResultCache cache_;
  std::unique_ptr<Listener> listener_;
  WakePipe wake_;

  std::atomic<bool> shutdown_{false};
  std::atomic<bool> cache_saved_{false};  // wait() persists at most once
  engine::CancelToken cancel_;
  std::chrono::steady_clock::time_point start_time_{};

  /// A per-connection reader thread plus its exit flag, so the accept loop
  /// can reap finished readers instead of accumulating joinable threads for
  /// the lifetime of the daemon.
  struct Reader {
    std::thread thread;
    std::shared_ptr<std::atomic<bool>> done;
  };

  std::thread accept_thread_;
  std::thread scheduler_thread_;
  std::mutex readers_mutex_;
  std::vector<Reader> reader_threads_;  // guarded by readers_mutex_
  std::atomic<std::uint64_t> active_readers_{0};

  std::mutex queue_mutex_;
  std::condition_variable queue_cv_;
  std::deque<PendingRequest> queue_;  // guarded by queue_mutex_

  std::atomic<std::uint64_t> connections_accepted_{0};
  std::atomic<std::uint64_t> active_connections_{0};
  std::atomic<std::uint64_t> requests_received_{0};
  std::atomic<std::uint64_t> requests_served_{0};
  std::atomic<std::uint64_t> requests_failed_{0};
  std::atomic<std::uint64_t> inflight_{0};
  std::atomic<std::uint64_t> points_requested_{0};
  std::atomic<std::uint64_t> points_simulated_{0};
};

}  // namespace copift::serve

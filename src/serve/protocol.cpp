#include "serve/protocol.hpp"

#include <cctype>
#include <charconv>
#include <cmath>
#include <cstdio>
#include <limits>

namespace copift::serve {

// --- Json constructors ------------------------------------------------------

Json Json::boolean(bool v) {
  Json j;
  j.type_ = Type::kBool;
  j.bool_ = v;
  return j;
}

Json Json::number(double v) {
  Json j;
  j.type_ = Type::kNumber;
  j.number_ = v;
  return j;
}

Json Json::number(std::uint64_t v) {
  Json j;
  j.type_ = Type::kNumber;
  j.number_ = static_cast<double>(v);
  j.int_kind_ = IntKind::kUnsigned;
  j.uint_ = v;
  return j;
}

Json Json::number(std::int64_t v) {
  if (v >= 0) return number(static_cast<std::uint64_t>(v));
  Json j;
  j.type_ = Type::kNumber;
  j.number_ = static_cast<double>(v);
  j.int_kind_ = IntKind::kNegative;
  j.uint_ = static_cast<std::uint64_t>(-(v + 1)) + 1;  // |v| without overflow
  return j;
}

Json Json::string(std::string v) {
  Json j;
  j.type_ = Type::kString;
  j.string_ = std::move(v);
  return j;
}

Json Json::array(Array v) {
  Json j;
  j.type_ = Type::kArray;
  j.array_ = std::make_shared<const Array>(std::move(v));
  return j;
}

Json Json::object(Object v) {
  Json j;
  j.type_ = Type::kObject;
  j.object_ = std::make_shared<const Object>(std::move(v));
  return j;
}

// --- accessors --------------------------------------------------------------

namespace {

const char* type_name(Json::Type t) {
  switch (t) {
    case Json::Type::kNull: return "null";
    case Json::Type::kBool: return "bool";
    case Json::Type::kNumber: return "number";
    case Json::Type::kString: return "string";
    case Json::Type::kArray: return "array";
    case Json::Type::kObject: return "object";
  }
  return "?";
}

[[noreturn]] void type_error(const char* wanted, Json::Type got) {
  throw ProtocolError(std::string("expected ") + wanted + ", got " + type_name(got));
}

}  // namespace

bool Json::as_bool() const {
  if (type_ != Type::kBool) type_error("bool", type_);
  return bool_;
}

double Json::as_number() const {
  if (type_ != Type::kNumber) type_error("number", type_);
  return number_;
}

std::uint64_t Json::as_u64() const {
  if (type_ != Type::kNumber) type_error("number", type_);
  if (int_kind_ != IntKind::kUnsigned) {
    throw ProtocolError("expected a non-negative integer, got " + dump());
  }
  return uint_;
}

std::uint32_t Json::as_u32() const {
  const std::uint64_t v = as_u64();
  if (v > 0xFFFFFFFFull) {
    throw ProtocolError("integer " + dump() + " does not fit in 32 bits");
  }
  return static_cast<std::uint32_t>(v);
}

const std::string& Json::as_string() const {
  if (type_ != Type::kString) type_error("string", type_);
  return string_;
}

const Json::Array& Json::as_array() const {
  if (type_ != Type::kArray) type_error("array", type_);
  return *array_;
}

const Json::Object& Json::as_object() const {
  if (type_ != Type::kObject) type_error("object", type_);
  return *object_;
}

const Json* Json::find(std::string_view key) const {
  for (const auto& [k, v] : as_object()) {
    if (k == key) return &v;
  }
  return nullptr;
}

const Json& Json::at(std::string_view key) const {
  const Json* v = find(key);
  if (v == nullptr) throw ProtocolError("missing required key \"" + std::string(key) + "\"");
  return *v;
}

// --- parser -----------------------------------------------------------------

namespace {

class Parser {
 public:
  Parser(std::string_view text, unsigned max_depth) : text_(text), max_depth_(max_depth) {}

  Json run() {
    Json v = value(0);
    skip_ws();
    if (pos_ != text_.size()) fail("trailing characters after JSON document");
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& what) const {
    throw ProtocolError("at offset " + std::to_string(pos_) + ": " + what);
  }

  void skip_ws() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "', got '" + text_[pos_] + "'");
    ++pos_;
  }

  bool consume_word(std::string_view word) {
    if (text_.substr(pos_, word.size()) != word) return false;
    pos_ += word.size();
    return true;
  }

  Json value(unsigned depth) {
    if (depth > max_depth_) fail("nesting deeper than " + std::to_string(max_depth_));
    skip_ws();
    const char c = peek();
    switch (c) {
      case '{': return object(depth);
      case '[': return array(depth);
      case '"': return Json::string(string_body());
      case 't':
        if (consume_word("true")) return Json::boolean(true);
        fail("invalid literal (expected 'true')");
      case 'f':
        if (consume_word("false")) return Json::boolean(false);
        fail("invalid literal (expected 'false')");
      case 'n':
        if (consume_word("null")) return Json();
        fail("invalid literal (expected 'null')");
      default:
        if (c == '-' || (c >= '0' && c <= '9')) return number();
        fail(std::string("unexpected character '") + c + "'");
    }
  }

  Json object(unsigned depth) {
    expect('{');
    Json::Object members;
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return Json::object(std::move(members));
    }
    while (true) {
      skip_ws();
      if (peek() != '"') fail("object key must be a string");
      std::string key = string_body();
      for (const auto& [k, v] : members) {
        if (k == key) fail("duplicate object key \"" + key + "\"");
      }
      skip_ws();
      expect(':');
      members.emplace_back(std::move(key), value(depth + 1));
      skip_ws();
      const char c = peek();
      ++pos_;
      if (c == '}') break;
      if (c != ',') fail(std::string("expected ',' or '}' in object, got '") + c + "'");
    }
    return Json::object(std::move(members));
  }

  Json array(unsigned depth) {
    expect('[');
    Json::Array items;
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return Json::array(std::move(items));
    }
    while (true) {
      items.push_back(value(depth + 1));
      skip_ws();
      const char c = peek();
      ++pos_;
      if (c == ']') break;
      if (c != ',') fail(std::string("expected ',' or ']' in array, got '") + c + "'");
    }
    return Json::array(std::move(items));
  }

  unsigned hex4() {
    unsigned v = 0;
    for (int i = 0; i < 4; ++i) {
      const char c = peek();
      ++pos_;
      v <<= 4;
      if (c >= '0' && c <= '9') v |= static_cast<unsigned>(c - '0');
      else if (c >= 'a' && c <= 'f') v |= static_cast<unsigned>(c - 'a' + 10);
      else if (c >= 'A' && c <= 'F') v |= static_cast<unsigned>(c - 'A' + 10);
      else fail(std::string("invalid hex digit '") + c + "' in \\u escape");
    }
    return v;
  }

  void append_utf8(std::string& out, unsigned cp) {
    if (cp < 0x80) {
      out += static_cast<char>(cp);
    } else if (cp < 0x800) {
      out += static_cast<char>(0xC0 | (cp >> 6));
      out += static_cast<char>(0x80 | (cp & 0x3F));
    } else if (cp < 0x10000) {
      out += static_cast<char>(0xE0 | (cp >> 12));
      out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
      out += static_cast<char>(0x80 | (cp & 0x3F));
    } else {
      out += static_cast<char>(0xF0 | (cp >> 18));
      out += static_cast<char>(0x80 | ((cp >> 12) & 0x3F));
      out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
      out += static_cast<char>(0x80 | (cp & 0x3F));
    }
  }

  std::string string_body() {
    expect('"');
    std::string out;
    while (true) {
      if (pos_ >= text_.size()) fail("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') break;
      if (static_cast<unsigned char>(c) < 0x20) {
        --pos_;
        fail("raw control character in string (must be escaped)");
      }
      if (c != '\\') {
        out += c;
        continue;
      }
      const char e = peek();
      ++pos_;
      switch (e) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          unsigned cp = hex4();
          if (cp >= 0xD800 && cp <= 0xDBFF) {  // high surrogate: pair required
            if (pos_ + 1 >= text_.size() || text_[pos_] != '\\' || text_[pos_ + 1] != 'u') {
              fail("unpaired UTF-16 high surrogate");
            }
            pos_ += 2;
            const unsigned lo = hex4();
            if (lo < 0xDC00 || lo > 0xDFFF) fail("invalid UTF-16 low surrogate");
            cp = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
          } else if (cp >= 0xDC00 && cp <= 0xDFFF) {
            fail("unpaired UTF-16 low surrogate");
          }
          append_utf8(out, cp);
          break;
        }
        default: fail(std::string("invalid escape '\\") + e + "'");
      }
    }
    return out;
  }

  Json number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    if (peek() == '0') {
      ++pos_;
      if (pos_ < text_.size() && std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        fail("leading zero in number");
      }
    } else if (std::isdigit(static_cast<unsigned char>(peek()))) {
      while (pos_ < text_.size() && std::isdigit(static_cast<unsigned char>(text_[pos_]))) ++pos_;
    } else {
      fail("invalid number");
    }
    bool integral = true;
    if (pos_ < text_.size() && text_[pos_] == '.') {
      integral = false;
      ++pos_;
      if (pos_ >= text_.size() || !std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        fail("digit required after decimal point");
      }
      while (pos_ < text_.size() && std::isdigit(static_cast<unsigned char>(text_[pos_]))) ++pos_;
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      integral = false;
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-')) ++pos_;
      if (pos_ >= text_.size() || !std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        fail("digit required in exponent");
      }
      while (pos_ < text_.size() && std::isdigit(static_cast<unsigned char>(text_[pos_]))) ++pos_;
    }
    const std::string_view literal = text_.substr(start, pos_ - start);
    if (integral) {
      // Keep integers exact: a 64-bit cycle count must survive a round trip.
      if (literal[0] == '-') {
        std::int64_t v = 0;
        const auto [p, ec] = std::from_chars(literal.begin() + 0, literal.end(), v);
        if (ec == std::errc() && p == literal.end()) return Json::number(v);
      } else {
        std::uint64_t v = 0;
        const auto [p, ec] = std::from_chars(literal.begin() + 0, literal.end(), v);
        if (ec == std::errc() && p == literal.end()) return Json::number(v);
      }
      // Out of 64-bit range: fall through to the double view.
    }
    double d = 0.0;
    const auto [p, ec] = std::from_chars(literal.begin() + 0, literal.end(), d);
    if (ec != std::errc() || p != literal.end()) fail("number out of range");
    return Json::number(d);
  }

  std::string_view text_;
  std::size_t pos_ = 0;
  unsigned max_depth_;
};

}  // namespace

Json Json::parse(std::string_view text, unsigned max_depth) {
  return Parser(text, max_depth).run();
}

// --- writer -----------------------------------------------------------------

void Json::append_quoted(std::string& out, std::string_view value) {
  out += '"';
  for (const char c : value) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          constexpr const char* kHex = "0123456789abcdef";
          out += "\\u00";
          out += kHex[(c >> 4) & 0xF];
          out += kHex[c & 0xF];
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

void Json::dump_to(std::string& out) const {
  switch (type_) {
    case Type::kNull: out += "null"; return;
    case Type::kBool: out += bool_ ? "true" : "false"; return;
    case Type::kNumber: {
      char buf[32];
      if (int_kind_ == IntKind::kUnsigned) {
        std::snprintf(buf, sizeof(buf), "%llu", static_cast<unsigned long long>(uint_));
      } else if (int_kind_ == IntKind::kNegative) {
        std::snprintf(buf, sizeof(buf), "-%llu", static_cast<unsigned long long>(uint_));
      } else if (std::isfinite(number_)) {
        std::snprintf(buf, sizeof(buf), "%.17g", number_);
      } else {
        // JSON has no Inf/NaN; null is the conventional degradation.
        std::snprintf(buf, sizeof(buf), "null");
      }
      out += buf;
      return;
    }
    case Type::kString: append_quoted(out, string_); return;
    case Type::kArray: {
      out += '[';
      bool first = true;
      for (const auto& v : *array_) {
        if (!first) out += ',';
        first = false;
        v.dump_to(out);
      }
      out += ']';
      return;
    }
    case Type::kObject: {
      out += '{';
      bool first = true;
      for (const auto& [k, v] : *object_) {
        if (!first) out += ',';
        first = false;
        append_quoted(out, k);
        out += ':';
        v.dump_to(out);
      }
      out += '}';
      return;
    }
  }
}

std::string Json::dump() const {
  std::string out;
  dump_to(out);
  return out;
}

// --- request validation -----------------------------------------------------

namespace {

std::vector<std::uint32_t> axis_values(const Json& req, const char* key, bool allow_zero) {
  const Json* v = req.find(key);
  if (v == nullptr) return {};
  std::vector<std::uint32_t> out;
  const auto& items = v->is_array() ? v->as_array() : Json::Array{*v};
  if (items.empty()) {
    throw ProtocolError(std::string("\"") + key + "\" must not be an empty array");
  }
  out.reserve(items.size());
  for (std::size_t i = 0; i < items.size(); ++i) {
    std::uint32_t value;
    try {
      value = items[i].as_u32();
    } catch (const ProtocolError& e) {
      throw ProtocolError(std::string("\"") + key + "\"[" + std::to_string(i) +
                          "]: " + e.what());
    }
    if (value == 0 && !allow_zero) {
      throw ProtocolError(std::string("\"") + key + "\"[" + std::to_string(i) +
                          "]=0: must be positive");
    }
    out.push_back(value);
  }
  return out;
}

}  // namespace

Request parse_request(std::string_view line, std::size_t max_points) {
  const Json doc = Json::parse(line);
  if (!doc.is_object()) {
    throw ProtocolError("request must be a JSON object, got " + doc.dump());
  }

  static constexpr const char* kKnownKeys[] = {"id",    "type",  "workloads", "variants",
                                               "n",     "block", "cores",     "tile",
                                               "seeds", "verify", "progress"};
  for (const auto& [key, value] : doc.as_object()) {
    bool known = false;
    for (const char* k : kKnownKeys) known = known || key == k;
    if (!known) {
      std::string allowed;
      for (const char* k : kKnownKeys) {
        if (!allowed.empty()) allowed += ", ";
        allowed += k;
      }
      throw ProtocolError("unknown key \"" + key + "\" (allowed: " + allowed + ")");
    }
  }

  Request req;
  req.id = doc.at("id").as_u64();

  const std::string& type = doc.at("type").as_string();
  if (type == "health") req.type = Request::Type::kHealth;
  else if (type == "stats") req.type = Request::Type::kStats;
  else if (type == "run") req.type = Request::Type::kRun;
  else {
    throw ProtocolError("unknown request type \"" + type +
                        "\" (expected one of: run, health, stats)");
  }
  if (req.type != Request::Type::kRun) return req;

  const auto& registry = workload::WorkloadRegistry::instance();
  const Json& workloads = doc.at("workloads");
  const auto& wl_items =
      workloads.is_array() ? workloads.as_array() : Json::Array{workloads};
  if (wl_items.empty()) throw ProtocolError("\"workloads\" must not be an empty array");
  for (const auto& item : wl_items) {
    const std::string& name = item.as_string();
    if (registry.find(name) == nullptr) {
      throw ProtocolError("unknown workload \"" + name +
                          "\" (registered: " + registry.names_list() + ")");
    }
    req.workloads.push_back(name);
  }

  if (const Json* variants = doc.find("variants")) {
    const auto& items = variants->is_array() ? variants->as_array() : Json::Array{*variants};
    if (items.empty()) throw ProtocolError("\"variants\" must not be an empty array");
    for (const auto& item : items) {
      try {
        req.variants.push_back(workload::variant_from(item.as_string()));
      } catch (const Error& e) {
        throw ProtocolError(std::string("\"variants\": ") + e.what());
      }
    }
  }

  req.ns = axis_values(doc, "n", false);
  req.blocks = axis_values(doc, "block", false);
  req.cores = axis_values(doc, "cores", false);
  req.tiles = axis_values(doc, "tile", true);  // 0 = untiled
  req.seeds = axis_values(doc, "seeds", true);  // 0 is a legal seed
  if (const Json* verify = doc.find("verify")) req.verify = verify->as_bool();
  if (const Json* progress = doc.find("progress")) req.progress = progress->as_bool();

  // Pre-validate every (workload, variant, config) the grid will expand to,
  // with each workload's own defaults filling absent axes — a doomed request
  // is rejected here with the workload's value-carrying ConfigError instead
  // of failing halfway through a scheduled sweep.
  //
  // The point count is a *product* of axis sizes, so a compact request line
  // can encode an astronomically large grid; the limit must be enforced on
  // the saturating product of sizes BEFORE the cross-product loop runs, or a
  // single line would pin the reader thread for the lifetime of the process.
  constexpr std::size_t kSaturated = std::numeric_limits<std::size_t>::max();
  std::size_t points = 0;
  for (const auto& name : req.workloads) {
    const auto wl = registry.at(name);
    const auto defaults = wl->default_config();
    const auto variants =
        req.variants.empty() ? std::vector<workload::Variant>{wl->default_variant()}
                             : req.variants;
    const auto ns = req.ns.empty() ? std::vector<std::uint32_t>{defaults.n} : req.ns;
    const auto blocks =
        req.blocks.empty() ? std::vector<std::uint32_t>{defaults.block} : req.blocks;
    const auto cores =
        req.cores.empty() ? std::vector<std::uint32_t>{defaults.cores} : req.cores;
    const auto tiles =
        req.tiles.empty() ? std::vector<std::uint32_t>{defaults.tile} : req.tiles;
    const auto seeds = req.seeds.empty() ? std::vector<std::uint32_t>{defaults.seed} : req.seeds;

    std::size_t count = 1;
    for (const std::size_t axis :
         {variants.size(), ns.size(), blocks.size(), cores.size(), tiles.size(),
          seeds.size()}) {
      count = count > kSaturated / axis ? kSaturated : count * axis;
    }
    points = count > kSaturated - points ? kSaturated : points + count;
    if (points > max_points) {
      throw ProtocolError("request expands to " +
                          (points == kSaturated ? std::string("over ") +
                                                      std::to_string(kSaturated)
                                                : std::to_string(points)) +
                          " grid points, above the server limit of " +
                          std::to_string(max_points));
    }

    for (const auto variant : variants) {
      for (const auto n : ns) {
        for (const auto block : blocks) {
          for (const auto core_count : cores) {
            for (const auto tile : tiles) {
              for (const auto seed : seeds) {
                workload::WorkloadConfig cfg;
                cfg.n = n;
                cfg.block = block;
                cfg.seed = seed;
                cfg.cores = core_count;
                cfg.tile = tile;
                try {
                  wl->validate(variant, cfg);
                } catch (const Error& e) {
                  throw ProtocolError(std::string("invalid grid point: ") + e.what());
                }
              }
            }
          }
        }
      }
    }
  }
  return req;
}

std::string single_line(std::string_view json_text) {
  std::string out;
  out.reserve(json_text.size());
  for (const char c : json_text) {
    if (c != '\n' && c != '\r') out += c;
  }
  return out;
}

}  // namespace copift::serve

// Wire protocol for the copift_serve daemon: line-delimited JSON.
//
// Every message — request or response — is one JSON object on one line,
// terminated by '\n'. The repo could already *write* JSON (ResultTable,
// trace export); this header adds the missing half: a small recursive-descent
// JSON parser (serve::Json) plus the typed request schema the server
// validates against, with the same descriptive value-carrying errors the
// workload registry uses.
//
// Requests (client -> server):
//   {"id":1,"type":"run","workloads":["exp"],"variants":["copift"],
//    "block":[32,64],"cores":[1,2],"verify":true}
//   {"id":2,"type":"health"}
//   {"id":3,"type":"stats"}
//
// Responses (server -> client, all carrying the request id):
//   {"id":1,"event":"accepted","points":4,"cached":1}
//   {"id":1,"event":"progress","done":2,"total":4}
//   {"id":1,"event":"result","rows":[...],"cache":{...}}
//   {"id":1,"event":"error","message":"..."}
//
// See docs/serving.md for complete transcripts and field semantics.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/error.hpp"
#include "workload/workload.hpp"

namespace copift::serve {

/// Raised on malformed JSON or a request that violates the schema. Parse
/// errors carry the byte offset of the offending character; validation
/// errors name the offending key and value.
class ProtocolError : public Error {
 public:
  explicit ProtocolError(const std::string& what) : Error("protocol error: " + what) {}
};

/// An immutable JSON value: null, bool, number, string, array or object.
/// Integer literals that fit in 64 bits are kept exact alongside the double
/// view, so cycle counts survive a round trip bit-for-bit.
class Json {
 public:
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };
  using Array = std::vector<Json>;
  /// Insertion-ordered (a std::map would silently reorder keys and hide
  /// duplicate-key bugs; the parser rejects duplicates instead).
  using Object = std::vector<std::pair<std::string, Json>>;

  Json() = default;  // null
  static Json boolean(bool v);
  static Json number(double v);
  static Json number(std::uint64_t v);
  static Json number(std::int64_t v);
  static Json string(std::string v);
  static Json array(Array v);
  static Json object(Object v);

  /// Parse exactly one JSON document; trailing non-whitespace is an error.
  /// Throws ProtocolError with the byte offset on malformed input. `depth`
  /// bounds nesting so hostile input cannot overflow the parser stack.
  static Json parse(std::string_view text, unsigned max_depth = 64);

  [[nodiscard]] Type type() const noexcept { return type_; }
  [[nodiscard]] bool is_null() const noexcept { return type_ == Type::kNull; }
  [[nodiscard]] bool is_bool() const noexcept { return type_ == Type::kBool; }
  [[nodiscard]] bool is_number() const noexcept { return type_ == Type::kNumber; }
  [[nodiscard]] bool is_string() const noexcept { return type_ == Type::kString; }
  [[nodiscard]] bool is_array() const noexcept { return type_ == Type::kArray; }
  [[nodiscard]] bool is_object() const noexcept { return type_ == Type::kObject; }

  /// Typed accessors; throw ProtocolError naming the actual type on mismatch.
  [[nodiscard]] bool as_bool() const;
  [[nodiscard]] double as_number() const;
  /// The value as an exact unsigned integer; throws when the literal was
  /// fractional, negative, or does not fit (value carried in the message).
  [[nodiscard]] std::uint64_t as_u64() const;
  [[nodiscard]] std::uint32_t as_u32() const;
  [[nodiscard]] const std::string& as_string() const;
  [[nodiscard]] const Array& as_array() const;
  [[nodiscard]] const Object& as_object() const;

  /// Object member lookup; nullptr when absent (throws on non-objects).
  [[nodiscard]] const Json* find(std::string_view key) const;
  /// Object member that must exist; the error names the missing key.
  [[nodiscard]] const Json& at(std::string_view key) const;

  /// Serialize back to compact (single-line) JSON text. Exact-integer
  /// numbers print as integers; other numbers round-trip via 17 significant
  /// digits, matching ResultTable's writer.
  [[nodiscard]] std::string dump() const;
  void dump_to(std::string& out) const;

  /// Escape + quote `value` per RFC 8259 (shared with response builders).
  static void append_quoted(std::string& out, std::string_view value);

 private:
  Type type_ = Type::kNull;
  bool bool_ = false;
  double number_ = 0.0;
  // Exact-integer sidecar for number values (kIntNone when fractional/huge).
  enum class IntKind { kNone, kUnsigned, kNegative } int_kind_ = IntKind::kNone;
  std::uint64_t uint_ = 0;  // magnitude; kNegative means value is -(int64)uint_
  std::string string_;
  std::shared_ptr<const Array> array_;
  std::shared_ptr<const Object> object_;
};

/// A validated client request. `grid` axes mirror engine::ParamGrid; empty
/// axes were absent from the JSON and take the workload defaults when the
/// server materializes the sweep.
struct Request {
  enum class Type { kRun, kHealth, kStats };

  std::uint64_t id = 0;
  Type type = Type::kRun;

  // kRun fields.
  std::vector<std::string> workloads;
  std::vector<workload::Variant> variants;
  std::vector<std::uint32_t> ns;
  std::vector<std::uint32_t> blocks;
  std::vector<std::uint32_t> cores;
  std::vector<std::uint32_t> tiles;  // 0 = untiled (TCDM-resident arrays)
  std::vector<std::uint32_t> seeds;
  bool verify = true;
  bool progress = true;  // emit per-point progress events for this request
};

/// Parse + validate one request line. Errors are descriptive and
/// value-carrying: unknown workloads list the registered names, bad axis
/// values name the axis, index and offending value, and every workload x
/// variant x config point is pre-validated through Workload::validate so a
/// doomed sweep is rejected before it is scheduled. `max_points` bounds the
/// expanded grid size.
Request parse_request(std::string_view line, std::size_t max_points);

/// `ResultTable::json()` output is a multi-line document whose newlines only
/// ever separate tokens (strings escape theirs), so stripping them yields the
/// same document on one line — the form the wire protocol needs.
std::string single_line(std::string_view json_text);

}  // namespace copift::serve

// Bounded LRU memoization cache for simulation results.
//
// Every simulated run is a pure function of (workload, variant, config
// values, SimParams, cores, seed) — the exact coordinates ProgramCache keys
// assembled programs on, extended with a SimParams fingerprint and the
// verify flag. The serving layer therefore never simulates the same point
// twice while it stays resident: repeat requests hit the cache, and
// identical *in-flight* points coalesce onto one computation (N concurrent
// clients asking for the same sweep trigger one simulation; the other N-1
// wait on the shared entry).
//
// Thread-safe; eviction is strict LRU over completed entries.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <iosfwd>
#include <list>
#include <map>
#include <memory>
#include <mutex>
#include <string>

#include "engine/experiment.hpp"
#include "sim/params.hpp"

namespace copift::serve {

/// Cache coordinates of one simulated grid point. Mirrors ProgramCache's
/// (name, variant, n, block, seed, cores, tile) key, plus the simulator
/// configuration (fingerprinted field-by-field) and whether golden-reference
/// verification ran — two runs that differ in either are different results.
struct ResultKey {
  std::string workload;
  int variant = 0;
  std::uint32_t n = 0;
  std::uint32_t block = 0;
  std::uint32_t seed = 0;
  std::uint32_t cores = 0;
  std::uint32_t tile = 0;
  std::string params_fingerprint;
  bool verify = true;

  auto operator<=>(const ResultKey&) const = default;
};

/// Canonical field-by-field serialization of SimParams (including FPU
/// latencies). Two SimParams with equal fingerprints produce bit-identical
/// simulations; any field change changes the fingerprint.
std::string params_fingerprint(const sim::SimParams& params);

/// Counters exposed through the daemon's `stats` request.
struct CacheStats {
  std::uint64_t hits = 0;        // completed entry found
  std::uint64_t misses = 0;      // claimed for computation by the caller
  std::uint64_t coalesced = 0;   // attached to another caller's in-flight entry
  std::uint64_t evictions = 0;
  std::uint64_t failures = 0;    // entries dropped because computation threw
  std::uint64_t reloaded = 0;    // entries restored from a persisted cache file
  std::size_t entries = 0;
  std::size_t capacity = 0;
};

class ResultCache {
 public:
  /// One key's shared computation state. The producer publishes exactly once
  /// (value or failure); consumers wait(). Entries outlive eviction: waiters
  /// hold the shared_ptr, so evicting a key never dangles a consumer.
  struct Entry {
    std::mutex mutex;
    std::condition_variable cv;
    bool ready = false;
    bool failed = false;
    std::string error;             // valid when failed
    engine::ResultRow row;         // valid when ready && !failed

    /// Block until published; throws copift::Error carrying the producer's
    /// message on failure.
    const engine::ResultRow& wait();
  };
  using EntryPtr = std::shared_ptr<Entry>;

  enum class Claim {
    kHit,     // entry was complete: out->row is ready now
    kOwned,   // caller claimed the key and must publish (or fail) the entry
    kShared,  // another caller is computing: wait() on the entry
  };

  explicit ResultCache(std::size_t capacity);

  /// Look `key` up, claiming it for computation when absent. Exactly one
  /// caller per key gets kOwned until the entry is published or failed.
  Claim lookup_or_claim(const ResultKey& key, EntryPtr& out);

  /// Publish the computed row for a kOwned claim and wake waiters.
  void publish(const EntryPtr& entry, engine::ResultRow row);
  /// Publish failure for a kOwned claim: waiters rethrow `message`, and the
  /// key is removed so a later request retries instead of caching the error.
  void fail(const ResultKey& key, const EntryPtr& entry, const std::string& message);

  [[nodiscard]] CacheStats stats() const;

  /// Maps a persisted workload name back to its registry handle; return
  /// nullptr to skip the entry (e.g. an out-of-tree workload that is not
  /// registered in this process).
  using WorkloadResolver =
      std::function<std::shared_ptr<const workload::Workload>(const std::string&)>;

  /// Persist every completed (ready, non-failed) entry whose key matches the
  /// canonical serving configuration (default SimParams at the point's core
  /// count — the only configuration the daemon ever caches under) to a
  /// version-stamped text stream, least-recently-used first so load()
  /// restores the LRU order. In-flight entries are skipped. Returns the
  /// number of entries written.
  std::size_t save(std::ostream& os) const;

  /// Reload entries written by save(). The header's version stamp and
  /// counter-layout size must match this build exactly; throws copift::Error
  /// otherwise (callers typically warn and start empty). Entries whose
  /// workload the resolver cannot map are skipped; already-resident keys are
  /// kept (the live entry wins). Each restored entry counts toward
  /// CacheStats::reloaded. Returns the number of entries restored.
  std::size_t load(std::istream& is, const WorkloadResolver& resolver);

 private:
  void touch_locked(const ResultKey& key);
  void evict_excess_locked();

  mutable std::mutex mutex_;
  std::size_t capacity_;
  // LRU order: front = most recent. The map points into the list.
  std::list<std::pair<ResultKey, EntryPtr>> lru_;
  std::map<ResultKey, std::list<std::pair<ResultKey, EntryPtr>>::iterator> index_;
  CacheStats stats_{};
};

}  // namespace copift::serve

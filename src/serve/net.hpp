// Minimal POSIX TCP layer for the serving daemon: a listener with a
// poll-based accept loop that a wake pipe can interrupt, and a per-connection
// line-framed reader/writer with idle timeouts.
//
// Deliberately blocking-with-poll rather than a full event loop: the daemon
// serves tens of concurrent sweep clients, not millions of idle sockets, and
// one reader thread per connection keeps request parsing trivially ordered
// per client while the scheduler provides cross-client fairness.
#pragma once

#include <cstdint>
#include <mutex>
#include <string>

#include "common/error.hpp"

namespace copift::serve {

/// Raised on socket-level failures (bind, listen, accept); carries errno text.
class NetError : public Error {
 public:
  explicit NetError(const std::string& what) : Error("net error: " + what) {}
};

/// A self-pipe whose read end can be poll()ed alongside sockets and whose
/// write end is async-signal-safe — the canonical POSIX way to turn SIGTERM
/// into a wakeup for threads blocked in poll().
class WakePipe {
 public:
  WakePipe();
  ~WakePipe();
  WakePipe(const WakePipe&) = delete;
  WakePipe& operator=(const WakePipe&) = delete;

  /// Async-signal-safe: a single write() of one byte.
  void wake() noexcept;
  [[nodiscard]] int read_fd() const noexcept { return fds_[0]; }

 private:
  int fds_[2];
};

/// Listening TCP socket bound to 127.0.0.1 (the daemon is a local service;
/// fronting proxies own external exposure). Port 0 binds an ephemeral port —
/// port() reports the actual one, which tests and scripts rely on.
class Listener {
 public:
  explicit Listener(std::uint16_t port);
  ~Listener();
  Listener(const Listener&) = delete;
  Listener& operator=(const Listener&) = delete;

  [[nodiscard]] std::uint16_t port() const noexcept { return port_; }

  /// Block in poll() until a client connects or `wake_fd` becomes readable.
  /// Returns the accepted fd, or -1 when woken/interrupted without a client.
  [[nodiscard]] int accept_client(int wake_fd);

  void close() noexcept;

 private:
  int fd_ = -1;
  std::uint16_t port_ = 0;
};

/// One accepted client connection with '\n'-framed messages.
///
/// read_line() may only be called from the connection's single reader
/// thread; send_line() is serialized by an internal mutex so the scheduler,
/// engine workers (progress events) and the reader thread can all write.
class Connection {
 public:
  enum class ReadStatus {
    kLine,         // `out` holds one complete line (without the '\n')
    kClosed,       // peer closed or connection error
    kIdleTimeout,  // no traffic for the idle window
    kWake,         // wake_fd fired (shutdown requested)
    kOverflow,     // line exceeded max_line_bytes (protocol violation)
  };

  explicit Connection(int fd);
  ~Connection();
  Connection(const Connection&) = delete;
  Connection& operator=(const Connection&) = delete;

  /// Read until a full line, idle timeout (`idle_timeout_ms`; <= 0 waits
  /// forever), wake, or EOF. Lines longer than `max_line_bytes` are a
  /// protocol violation (kOverflow) — the caller should answer and close.
  ReadStatus read_line(std::string& out, int wake_fd, int idle_timeout_ms,
                       std::size_t max_line_bytes);

  /// Raw-byte read for non-line protocols (the RSP debug stub): append
  /// whatever is available to `out`. Drains internally buffered bytes first;
  /// otherwise polls up to `timeout_ms` (< 0 waits forever, 0 is a pure
  /// non-blocking check). Returns kLine when bytes were appended,
  /// kIdleTimeout when the poll window expired with nothing to read.
  ReadStatus read_bytes(std::string& out, int wake_fd, int timeout_ms);

  /// Append '\n' and write the whole message (looping over partial writes).
  /// Returns false once the peer is gone; errors never raise SIGPIPE.
  bool send_line(std::string_view line);

  /// Write raw bytes without framing (the RSP stub frames its own packets).
  bool send_bytes(std::string_view bytes);

  /// Shut down the socket for reading so a blocked reader thread returns;
  /// queued writes still flush.
  void shutdown_read() noexcept;

 private:
  int fd_;
  std::string buffer_;  // bytes received but not yet returned as lines
  std::mutex write_mutex_;
  bool peer_gone_ = false;  // guarded by write_mutex_
};

}  // namespace copift::serve

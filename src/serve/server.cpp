#include "serve/server.hpp"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <sys/socket.h>
#include <sys/time.h>
#include <unordered_map>

#include "kernels/runner.hpp"

namespace copift::serve {

namespace {

std::string event_prefix(std::uint64_t id, const char* event) {
  return "{\"id\":" + std::to_string(id) + ",\"event\":\"" + event + "\"";
}

std::string error_event(std::uint64_t id, std::string_view message) {
  std::string out = event_prefix(id, "error") + ",\"message\":";
  Json::append_quoted(out, message);
  out += '}';
  return out;
}

/// Best-effort id recovery from a line that failed full request validation,
/// so the client can still correlate the error event.
std::uint64_t peek_id(const std::string& line) {
  try {
    const Json doc = Json::parse(line);
    if (doc.is_object()) {
      if (const Json* id = doc.find("id"); id != nullptr) return id->as_u64();
    }
  } catch (const Error&) {
  }
  return 0;
}

std::string describe(const ResultKey& key) {
  return key.workload + "/" + workload::variant_name(static_cast<workload::Variant>(key.variant)) +
         " n=" + std::to_string(key.n) + " block=" + std::to_string(key.block) +
         " cores=" + std::to_string(key.cores) + " tile=" + std::to_string(key.tile) +
         " seed=" + std::to_string(key.seed);
}

}  // namespace

Server::Server(ServerConfig config)
    : config_(config), engine_(config.engine_threads), cache_(config.cache_entries) {}

Server::~Server() {
  request_shutdown();
  wait();
}

void Server::start() {
  load_cache_file();
  listener_ = std::make_unique<Listener>(config_.port);
  start_time_ = std::chrono::steady_clock::now();
  accept_thread_ = std::thread([this] { accept_loop(); });
  scheduler_thread_ = std::thread([this] { scheduler_loop(); });
}

std::uint16_t Server::port() const {
  if (listener_ == nullptr) throw Error("Server::port called before start()");
  return listener_->port();
}

void Server::request_shutdown() noexcept {
  shutdown_.store(true, std::memory_order_relaxed);
  wake_.wake();
}

void Server::request_abort() noexcept {
  cancel_.request_stop();
  request_shutdown();
}

void Server::wait() {
  if (accept_thread_.joinable()) accept_thread_.join();
  {
    std::lock_guard lock(readers_mutex_);
    for (auto& reader : reader_threads_) {
      if (reader.thread.joinable()) reader.thread.join();
    }
    reader_threads_.clear();
  }
  if (scheduler_thread_.joinable()) scheduler_thread_.join();
  // Every queued sweep has drained and published by now, so the snapshot is
  // complete: a restart with the same --cache-file answers repeats instantly.
  if (!cache_saved_.exchange(true)) save_cache_file();
}

// --- accept / read ----------------------------------------------------------

void Server::accept_loop() {
  std::uint64_t next_client_id = 1;
  while (!shutdown_.load(std::memory_order_relaxed)) {
    const int fd = listener_->accept_client(wake_.read_fd());
    if (fd < 0) continue;  // woken (shutdown) or transient accept failure
    // Bound blocking writes to unresponsive clients so shutdown can always
    // drain: a peer that stops reading for 30s forfeits its responses.
    timeval tv{30, 0};
    ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));
    auto client = std::make_shared<Client>(fd);
    client->id = next_client_id++;
    connections_accepted_.fetch_add(1, std::memory_order_relaxed);
    active_connections_.fetch_add(1, std::memory_order_relaxed);
    active_readers_.fetch_add(1, std::memory_order_relaxed);
    std::lock_guard lock(readers_mutex_);
    // Reap readers whose connection already ended (their done flag is set, so
    // join() returns immediately); without this a long-running daemon keeps
    // one joinable thread's stack and descriptor per connection ever served.
    for (auto it = reader_threads_.begin(); it != reader_threads_.end();) {
      if (it->done->load(std::memory_order_acquire)) {
        it->thread.join();
        it = reader_threads_.erase(it);
      } else {
        ++it;
      }
    }
    auto done = std::make_shared<std::atomic<bool>>(false);
    std::thread thread([this, client = std::move(client), done]() mutable {
      reader_loop(std::move(client));
      done->store(true, std::memory_order_release);
    });
    reader_threads_.push_back(Reader{std::move(thread), std::move(done)});
  }
  listener_->close();
  // The scheduler's exit predicate watches shutdown_ + active_readers_; kick
  // it from thread context (a signal handler cannot notify a cv).
  queue_cv_.notify_all();
}

void Server::reader_loop(std::shared_ptr<Client> client) {
  std::string line;
  while (!shutdown_.load(std::memory_order_relaxed)) {
    const auto status = client->conn.read_line(line, wake_.read_fd(), config_.idle_timeout_ms,
                                               config_.max_line_bytes);
    if (status == Connection::ReadStatus::kLine) {
      if (line.empty()) continue;
      if (!handle_line(client, line)) break;
      continue;
    }
    if (status == Connection::ReadStatus::kIdleTimeout) {
      client->conn.send_line(error_event(
          0, "closing connection: idle for " + std::to_string(config_.idle_timeout_ms) + " ms"));
    } else if (status == Connection::ReadStatus::kOverflow) {
      client->conn.send_line(error_event(
          0, "request line exceeds " + std::to_string(config_.max_line_bytes) + " bytes"));
    }
    break;  // closed, idle, overflow or wake: stop consuming input
  }
  active_connections_.fetch_sub(1, std::memory_order_relaxed);
  active_readers_.fetch_sub(1, std::memory_order_relaxed);
  // Queued requests from this client keep the Connection alive through their
  // shared_ptr; their responses still flush before the socket closes.
  queue_cv_.notify_all();
}

bool Server::handle_line(const std::shared_ptr<Client>& client, const std::string& line) {
  Request request;
  try {
    request = parse_request(line, config_.max_grid_points);
  } catch (const std::exception& e) {
    client->conn.send_line(error_event(peek_id(line), e.what()));
    return true;  // validation errors are per-request; the connection survives
  }

  if (request.type == Request::Type::kHealth || request.type == Request::Type::kStats) {
    return client->conn.send_line(
        stats_json(request.id, request.type == Request::Type::kHealth ? "health" : "stats"));
  }

  PendingRequest pending;
  pending.client = client;
  pending.points = expand(request);
  pending.request = std::move(request);
  pending.client_seq = client->next_seq++;

  // Send 'accepted' before the request becomes visible to the scheduler:
  // once it is enqueued the sweep can complete and its 'result' line go out
  // on this connection, and the documented accepted -> progress -> result
  // order must hold. A failed send means the client is gone, so the request
  // is dropped instead of simulated for nobody.
  const std::string accepted = event_prefix(pending.request.id, "accepted") +
                               ",\"points\":" + std::to_string(pending.points.size()) + "}";
  if (!client->conn.send_line(accepted)) return false;

  requests_received_.fetch_add(1, std::memory_order_relaxed);
  points_requested_.fetch_add(pending.points.size(), std::memory_order_relaxed);
  inflight_.fetch_add(1, std::memory_order_relaxed);
  {
    std::lock_guard lock(queue_mutex_);
    queue_.push_back(std::move(pending));
  }
  queue_cv_.notify_all();
  return true;
}

std::vector<Server::PointSpec> Server::expand(const Request& request) {
  // Axis nesting mirrors ParamGrid's row-major order (workloads, variants,
  // n, block, cores, tiles, seeds — last fastest) so a response table is
  // ordered exactly like the equivalent batch-mode Experiment's.
  std::vector<PointSpec> points;
  const auto& registry = workload::WorkloadRegistry::instance();
  for (const auto& name : request.workloads) {
    const auto wl = registry.at(name);
    const auto defaults = wl->default_config();
    const auto variants =
        request.variants.empty() ? std::vector<workload::Variant>{wl->default_variant()}
                                 : request.variants;
    const auto ns = request.ns.empty() ? std::vector<std::uint32_t>{defaults.n} : request.ns;
    const auto blocks =
        request.blocks.empty() ? std::vector<std::uint32_t>{defaults.block} : request.blocks;
    const auto cores =
        request.cores.empty() ? std::vector<std::uint32_t>{defaults.cores} : request.cores;
    const auto tiles =
        request.tiles.empty() ? std::vector<std::uint32_t>{defaults.tile} : request.tiles;
    const auto seeds =
        request.seeds.empty() ? std::vector<std::uint32_t>{defaults.seed} : request.seeds;
    for (const auto variant : variants) {
      for (const auto n : ns) {
        for (const auto block : blocks) {
          for (const auto core_count : cores) {
            for (const auto tile : tiles) {
              for (const auto seed : seeds) {
                PointSpec spec;
                spec.workload = name;
                spec.variant = variant;
                spec.config.n = n;
                spec.config.block = block;
                spec.config.seed = seed;
                spec.config.cores = core_count;
                spec.config.tile = tile;
                points.push_back(std::move(spec));
              }
            }
          }
        }
      }
    }
  }
  return points;
}

// --- scheduling -------------------------------------------------------------

void Server::scheduler_loop() {
  while (true) {
    std::vector<PendingRequest> epoch;
    {
      std::unique_lock lock(queue_mutex_);
      // The 100 ms timeout is a shutdown fallback: request_shutdown() runs in
      // signal context and cannot notify the cv itself.
      queue_cv_.wait_for(lock, std::chrono::milliseconds(100), [&] {
        return !queue_.empty() || shutdown_.load(std::memory_order_relaxed);
      });
      if (queue_.empty()) {
        if (shutdown_.load(std::memory_order_relaxed) &&
            active_readers_.load(std::memory_order_relaxed) == 0) {
          return;  // drained: nothing queued and nobody left to enqueue
        }
        continue;
      }
      epoch.assign(std::make_move_iterator(queue_.begin()),
                   std::make_move_iterator(queue_.end()));
      queue_.clear();
    }
    // Fair scheduling across clients: order the epoch so every client's
    // first queued request runs before any client's second one (stable, so
    // arrival order breaks ties).
    std::stable_sort(epoch.begin(), epoch.end(),
                     [](const PendingRequest& a, const PendingRequest& b) {
                       return a.client_seq < b.client_seq;
                     });
    run_epoch(std::move(epoch));
  }
}

void Server::run_epoch(std::vector<PendingRequest> epoch) {
  struct ReqState {
    PendingRequest* req = nullptr;
    std::vector<std::pair<ResultKey, ResultCache::EntryPtr>> points;
    std::atomic<std::uint64_t> done{0};
    std::uint64_t hits = 0;
    std::uint64_t coalesced = 0;
    std::uint64_t owned = 0;
    std::chrono::steady_clock::time_point t0;
  };
  struct Job {
    ResultKey key;
    const PointSpec* spec = nullptr;
    bool verify = true;
    ResultCache::EntryPtr entry;
  };

  const std::string fingerprint_base = [] {
    sim::SimParams p;
    return params_fingerprint(p);
  }();

  std::vector<std::unique_ptr<ReqState>> states;
  std::vector<std::vector<Job>> jobs_per_request;
  // Progress subscribers: every request (same-epoch) waiting on an entry.
  std::unordered_map<ResultCache::Entry*, std::vector<ReqState*>> subscribers;

  for (auto& pending : epoch) {
    auto state = std::make_unique<ReqState>();
    state->req = &pending;
    state->t0 = std::chrono::steady_clock::now();
    jobs_per_request.emplace_back();
    for (const auto& spec : pending.points) {
      ResultKey key;
      key.workload = spec.workload;
      key.variant = static_cast<int>(spec.variant);
      key.n = spec.config.n;
      key.block = spec.config.block;
      key.seed = spec.config.seed;
      key.cores = spec.config.cores;
      key.tile = spec.config.tile;
      // All server runs use default SimParams with num_cores = the point's
      // cores value; that value is already the `cores` component, so the
      // base fingerprint is shared.
      key.params_fingerprint = fingerprint_base;
      key.verify = pending.request.verify;

      ResultCache::EntryPtr entry;
      const auto claim = cache_.lookup_or_claim(key, entry);
      switch (claim) {
        case ResultCache::Claim::kHit:
          ++state->hits;
          state->done.fetch_add(1, std::memory_order_relaxed);
          break;
        case ResultCache::Claim::kOwned:
          ++state->owned;
          subscribers[entry.get()].push_back(state.get());
          jobs_per_request.back().push_back(
              Job{key, &spec, pending.request.verify, entry});
          break;
        case ResultCache::Claim::kShared:
          // The owner is earlier in this same epoch (the scheduler fully
          // drains each epoch before starting the next, so no entry stays
          // in flight across epochs).
          ++state->coalesced;
          subscribers[entry.get()].push_back(state.get());
          break;
      }
      state->points.emplace_back(std::move(key), std::move(entry));
    }
    states.push_back(std::move(state));
  }

  // Interleave the owned jobs round-robin across requests so a small request
  // queued behind a huge sweep still sees its points (and progress events)
  // early in the batch.
  std::vector<Job> jobs;
  std::size_t widest = 0;
  for (const auto& per_req : jobs_per_request) widest = std::max(widest, per_req.size());
  for (std::size_t k = 0; k < widest; ++k) {
    for (auto& per_req : jobs_per_request) {
      if (k < per_req.size()) jobs.push_back(std::move(per_req[k]));
    }
  }

  const auto notify_progress = [&](ResultCache::Entry* entry) {
    const auto it = subscribers.find(entry);
    if (it == subscribers.end()) return;
    for (ReqState* state : it->second) {
      const std::uint64_t done = state->done.fetch_add(1, std::memory_order_relaxed) + 1;
      const std::uint64_t total = state->points.size();
      if (state->req->request.progress && total > 1 && done < total) {
        state->req->client->conn.send_line(event_prefix(state->req->request.id, "progress") +
                                           ",\"done\":" + std::to_string(done) +
                                           ",\"total\":" + std::to_string(total) + "}");
      }
    }
  };

  if (!jobs.empty()) {
    engine::ProgramCache programs;  // assemble-once within the epoch
    engine_.parallel_for(
        jobs.size(),
        [&](std::size_t i) {
          Job& job = jobs[i];
          try {
            auto row = simulate_point(*job.spec, job.verify, programs);
            points_simulated_.fetch_add(1, std::memory_order_relaxed);
            cache_.publish(job.entry, std::move(row));
          } catch (const std::exception& e) {
            cache_.fail(job.key, job.entry, e.what());
          }
          notify_progress(job.entry.get());
        },
        &cancel_);
    // A cancelled batch leaves claimed-but-never-run entries unpublished;
    // fail them so same-epoch waiters and the response pass below see a
    // definite state instead of hanging.
    for (const auto& job : jobs) {
      bool ready;
      {
        std::lock_guard lock(job.entry->mutex);
        ready = job.entry->ready;
      }
      if (!ready) cache_.fail(job.key, job.entry, "cancelled by server shutdown");
    }
  }

  // Respond in the fair epoch order. Every entry is ready (published or
  // failed) by now, so none of this blocks on simulation.
  for (const auto& state : states) {
    const PendingRequest& pending = *state->req;
    std::vector<engine::ResultRow> rows;
    rows.reserve(state->points.size());
    std::string failure;
    for (std::size_t i = 0; i < state->points.size() && failure.empty(); ++i) {
      const auto& [key, entry] = state->points[i];
      std::lock_guard lock(entry->mutex);
      if (!entry->ready) {
        failure = "internal error: grid point " + describe(key) + " was never scheduled";
      } else if (entry->failed) {
        failure = "grid point " + describe(key) + " failed: " + entry->error;
      } else {
        rows.push_back(entry->row);
        rows.back().point.index = i;  // re-key to this request's own grid
      }
    }
    if (!failure.empty()) {
      requests_failed_.fetch_add(1, std::memory_order_relaxed);
      pending.client->conn.send_line(error_event(pending.request.id, failure));
    } else {
      const auto elapsed = std::chrono::duration<double, std::milli>(
                               std::chrono::steady_clock::now() - state->t0)
                               .count();
      const engine::ResultTable table(std::move(rows));
      std::string msg = event_prefix(pending.request.id, "result");
      msg += ",\"rows\":" + single_line(table.json());
      char elapsed_buf[40];
      std::snprintf(elapsed_buf, sizeof(elapsed_buf), ",\"elapsed_ms\":%.3f", elapsed);
      msg += elapsed_buf;
      msg += ",\"cache\":{\"hits\":" + std::to_string(state->hits) +
             ",\"coalesced\":" + std::to_string(state->coalesced) +
             ",\"simulated\":" + std::to_string(state->owned) + "}}";
      requests_served_.fetch_add(1, std::memory_order_relaxed);
      pending.client->conn.send_line(msg);
    }
    inflight_.fetch_sub(1, std::memory_order_relaxed);
  }
}

engine::ResultRow Server::simulate_point(const PointSpec& spec, bool verify,
                                         engine::ProgramCache& programs) const {
  // Mirrors Experiment::run's non-steady path exactly (default SimParams
  // with the point's core count, default energy model), so served rows are
  // bit-identical to batch-mode sweeps.
  const auto wl = workload::WorkloadRegistry::instance().at(spec.workload);
  engine::ResultRow row;
  row.point.workload = wl;
  row.point.variant = spec.variant;
  row.point.config = spec.config;
  row.point.params_label = "default";
  row.point.params = sim::SimParams{};
  row.point.params.num_cores = spec.config.cores;
  const auto kernel = wl->instantiate(spec.variant, spec.config);
  row.run = kernels::run_kernel(kernel, programs.get(kernel), row.point.params, verify,
                                energy::EnergyParams{});
  return row;
}

// --- stats ------------------------------------------------------------------

void Server::load_cache_file() {
  if (config_.cache_file.empty()) return;
  std::ifstream in(config_.cache_file);
  if (!in.is_open()) return;  // first run: nothing persisted yet
  try {
    const std::size_t restored = cache_.load(
        in, [](const std::string& name) { return workload::WorkloadRegistry::instance().find(name); });
    std::fprintf(stderr, "copift_serve: reloaded %zu cached result(s) from %s\n", restored,
                 config_.cache_file.c_str());
  } catch (const Error& e) {
    std::fprintf(stderr, "copift_serve: ignoring cache file %s: %s\n", config_.cache_file.c_str(),
                 e.what());
  }
}

void Server::save_cache_file() {
  if (config_.cache_file.empty()) return;
  // A server that never started never loaded the previous snapshot; writing
  // here would clobber it with an empty cache.
  if (listener_ == nullptr) return;
  // Write-then-rename so a crash mid-write never corrupts the previous
  // snapshot (load() would reject a torn file, losing the whole cache).
  const std::string tmp = config_.cache_file + ".tmp";
  std::size_t written = 0;
  {
    std::ofstream out(tmp, std::ios::trunc);
    if (!out.is_open()) {
      std::fprintf(stderr, "copift_serve: cannot write cache file %s\n", tmp.c_str());
      return;
    }
    written = cache_.save(out);
    out.flush();
    if (!out) {
      std::fprintf(stderr, "copift_serve: short write to cache file %s\n", tmp.c_str());
      std::remove(tmp.c_str());
      return;
    }
  }
  if (std::rename(tmp.c_str(), config_.cache_file.c_str()) != 0) {
    std::fprintf(stderr, "copift_serve: cannot rename %s into place\n", tmp.c_str());
    std::remove(tmp.c_str());
    return;
  }
  std::fprintf(stderr, "copift_serve: persisted %zu cached result(s) to %s\n", written,
               config_.cache_file.c_str());
}

ServerStats Server::stats() const {
  ServerStats s;
  s.uptime_ms = static_cast<std::uint64_t>(std::chrono::duration_cast<std::chrono::milliseconds>(
                                               std::chrono::steady_clock::now() - start_time_)
                                               .count());
  s.connections_accepted = connections_accepted_.load(std::memory_order_relaxed);
  s.active_connections = active_connections_.load(std::memory_order_relaxed);
  s.requests_received = requests_received_.load(std::memory_order_relaxed);
  s.requests_served = requests_served_.load(std::memory_order_relaxed);
  s.requests_failed = requests_failed_.load(std::memory_order_relaxed);
  s.inflight = inflight_.load(std::memory_order_relaxed);
  s.points_requested = points_requested_.load(std::memory_order_relaxed);
  s.points_simulated = points_simulated_.load(std::memory_order_relaxed);
  s.cache = cache_.stats();
  return s;
}

std::string Server::stats_json(std::uint64_t id, const char* event) const {
  const ServerStats s = stats();
  std::string out = event_prefix(id, event);
  out += ",\"status\":\"ok\"";
  out += ",\"uptime_ms\":" + std::to_string(s.uptime_ms);
  out += ",\"inflight\":" + std::to_string(s.inflight);
  out += ",\"served_requests\":" + std::to_string(s.requests_served);
  if (std::string_view(event) == "stats") {
    out += ",\"connections_accepted\":" + std::to_string(s.connections_accepted);
    out += ",\"active_connections\":" + std::to_string(s.active_connections);
    out += ",\"requests_received\":" + std::to_string(s.requests_received);
    out += ",\"requests_failed\":" + std::to_string(s.requests_failed);
    out += ",\"points_requested\":" + std::to_string(s.points_requested);
    out += ",\"points_simulated\":" + std::to_string(s.points_simulated);
    out += ",\"engine_threads\":" + std::to_string(engine_.threads());
  }
  const double lookups = static_cast<double>(s.cache.hits + s.cache.misses + s.cache.coalesced);
  char rate[32];
  std::snprintf(rate, sizeof(rate), "%.4f",
                lookups > 0.0 ? static_cast<double>(s.cache.hits) / lookups : 0.0);
  out += ",\"cache\":{\"hits\":" + std::to_string(s.cache.hits) +
         ",\"misses\":" + std::to_string(s.cache.misses) +
         ",\"coalesced\":" + std::to_string(s.cache.coalesced) +
         ",\"evictions\":" + std::to_string(s.cache.evictions) +
         ",\"reloaded\":" + std::to_string(s.cache.reloaded) +
         ",\"entries\":" + std::to_string(s.cache.entries) +
         ",\"capacity\":" + std::to_string(s.cache.capacity) + ",\"hit_rate\":" + rate + "}}";
  return out;
}

}  // namespace copift::serve

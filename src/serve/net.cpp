#include "serve/net.hpp"

#include <arpa/inet.h>
#include <cerrno>
#include <cstring>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

namespace copift::serve {

namespace {

std::string errno_text(const std::string& op) {
  return op + ": " + std::strerror(errno);
}

}  // namespace

// --- WakePipe ---------------------------------------------------------------

WakePipe::WakePipe() {
  if (::pipe(fds_) != 0) throw NetError(errno_text("pipe"));
  // The write end must never block inside a signal handler.
  ::fcntl(fds_[1], F_SETFL, O_NONBLOCK);
}

WakePipe::~WakePipe() {
  ::close(fds_[0]);
  ::close(fds_[1]);
}

void WakePipe::wake() noexcept {
  const char byte = 'w';
  // A full pipe already guarantees pending wakeups; dropping the byte is fine.
  [[maybe_unused]] const auto n = ::write(fds_[1], &byte, 1);
}

// --- Listener ---------------------------------------------------------------

Listener::Listener(std::uint16_t port) {
  fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd_ < 0) throw NetError(errno_text("socket"));
  const int one = 1;
  ::setsockopt(fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::bind(fd_, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) != 0) {
    const std::string what = errno_text("bind to 127.0.0.1:" + std::to_string(port));
    ::close(fd_);
    fd_ = -1;
    throw NetError(what);
  }
  if (::listen(fd_, 64) != 0) {
    const std::string what = errno_text("listen");
    ::close(fd_);
    fd_ = -1;
    throw NetError(what);
  }
  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  if (::getsockname(fd_, reinterpret_cast<sockaddr*>(&bound), &len) != 0) {
    const std::string what = errno_text("getsockname");
    ::close(fd_);
    fd_ = -1;
    throw NetError(what);
  }
  port_ = ntohs(bound.sin_port);
}

Listener::~Listener() { close(); }

void Listener::close() noexcept {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

int Listener::accept_client(int wake_fd) {
  if (fd_ < 0) return -1;
  pollfd fds[2] = {{fd_, POLLIN, 0}, {wake_fd, POLLIN, 0}};
  const int rc = ::poll(fds, 2, -1);
  if (rc <= 0) return -1;  // EINTR or poll error: let the caller re-decide
  if ((fds[1].revents & POLLIN) != 0) return -1;  // woken for shutdown
  if ((fds[0].revents & POLLIN) == 0) return -1;
  const int client = ::accept(fd_, nullptr, nullptr);
  if (client < 0) return -1;
  const int one = 1;
  // Sweep responses are latency-sensitive single lines; don't Nagle them.
  ::setsockopt(client, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return client;
}

// --- Connection -------------------------------------------------------------

Connection::Connection(int fd) : fd_(fd) {}

Connection::~Connection() {
  if (fd_ >= 0) ::close(fd_);
}

Connection::ReadStatus Connection::read_line(std::string& out, int wake_fd,
                                             int idle_timeout_ms, std::size_t max_line_bytes) {
  while (true) {
    const auto newline = buffer_.find('\n');
    if (newline != std::string::npos) {
      out.assign(buffer_, 0, newline);
      if (!out.empty() && out.back() == '\r') out.pop_back();
      buffer_.erase(0, newline + 1);
      return ReadStatus::kLine;
    }
    if (buffer_.size() > max_line_bytes) return ReadStatus::kOverflow;

    pollfd fds[2] = {{fd_, POLLIN, 0}, {wake_fd, POLLIN, 0}};
    const int rc = ::poll(fds, 2, idle_timeout_ms > 0 ? idle_timeout_ms : -1);
    if (rc == 0) return ReadStatus::kIdleTimeout;
    if (rc < 0) {
      if (errno == EINTR) continue;
      return ReadStatus::kClosed;
    }
    if ((fds[1].revents & POLLIN) != 0) return ReadStatus::kWake;
    if ((fds[0].revents & (POLLIN | POLLHUP | POLLERR)) == 0) continue;

    char chunk[4096];
    const ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
    if (n == 0) return ReadStatus::kClosed;
    if (n < 0) {
      if (errno == EINTR || errno == EAGAIN) continue;
      return ReadStatus::kClosed;
    }
    buffer_.append(chunk, static_cast<std::size_t>(n));
  }
}

Connection::ReadStatus Connection::read_bytes(std::string& out, int wake_fd, int timeout_ms) {
  if (!buffer_.empty()) {
    out.append(buffer_);
    buffer_.clear();
    return ReadStatus::kLine;
  }
  while (true) {
    pollfd fds[2] = {{fd_, POLLIN, 0}, {wake_fd, POLLIN, 0}};
    const int rc = ::poll(fds, 2, timeout_ms);
    if (rc == 0) return ReadStatus::kIdleTimeout;
    if (rc < 0) {
      if (errno == EINTR) continue;
      return ReadStatus::kClosed;
    }
    if ((fds[1].revents & POLLIN) != 0) return ReadStatus::kWake;
    if ((fds[0].revents & (POLLIN | POLLHUP | POLLERR)) == 0) continue;

    char chunk[4096];
    const ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
    if (n == 0) return ReadStatus::kClosed;
    if (n < 0) {
      if (errno == EINTR || errno == EAGAIN) continue;
      return ReadStatus::kClosed;
    }
    out.append(chunk, static_cast<std::size_t>(n));
    return ReadStatus::kLine;
  }
}

bool Connection::send_line(std::string_view line) {
  std::string framed;
  framed.reserve(line.size() + 1);
  framed.append(line);
  framed += '\n';
  return send_bytes(framed);
}

bool Connection::send_bytes(std::string_view bytes) {
  std::lock_guard lock(write_mutex_);
  if (peer_gone_) return false;
  std::size_t sent = 0;
  while (sent < bytes.size()) {
    const ssize_t n = ::send(fd_, bytes.data() + sent, bytes.size() - sent, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      peer_gone_ = true;
      return false;
    }
    sent += static_cast<std::size_t>(n);
  }
  return true;
}

void Connection::shutdown_read() noexcept { ::shutdown(fd_, SHUT_RD); }

}  // namespace copift::serve

#include "serve/cache.hpp"

#include "common/error.hpp"

namespace copift::serve {

std::string params_fingerprint(const sim::SimParams& p) {
  std::string out;
  out.reserve(160);
  const auto field = [&out](const char* name, std::uint64_t value) {
    out += name;
    out += '=';
    out += std::to_string(value);
    out += ';';
  };
  field("fpu.add", p.fpu.add);
  field("fpu.mul", p.fpu.mul);
  field("fpu.fma", p.fpu.fma);
  field("fpu.div_sqrt", p.fpu.div_sqrt);
  field("fpu.cmp", p.fpu.cmp);
  field("fpu.cvt", p.fpu.cvt);
  field("fpu.move", p.fpu.move);
  field("fpu.minmax", p.fpu.minmax);
  field("fpu.fclass", p.fpu.fclass);
  field("num_cores", p.num_cores);
  field("offload_fifo_depth", p.offload_fifo_depth);
  field("frep_capacity", p.frep_capacity);
  field("ssr_cfg_latency", p.ssr_cfg_latency);
  field("load_use_latency", p.load_use_latency);
  field("mul_latency", p.mul_latency);
  field("div_latency", p.div_latency);
  field("branch_taken_penalty", p.branch_taken_penalty);
  field("fp_load_latency", p.fp_load_latency);
  field("num_tcdm_banks", p.num_tcdm_banks);
  field("l0_lines", p.l0_lines);
  field("l0_words_per_line", p.l0_words_per_line);
  field("l0_branch_penalty", p.l0_branch_penalty);
  field("ssr_fifo_depth", p.ssr_fifo_depth);
  field("dma_bytes_per_cycle", p.dma_bytes_per_cycle);
  field("max_cycles", p.max_cycles);
  field("skip_ahead", p.skip_ahead ? 1 : 0);
  field("dram_enabled", p.dram_enabled ? 1 : 0);
  field("dram_t_row_hit", p.dram_t_row_hit);
  field("dram_t_row_miss", p.dram_t_row_miss);
  field("dram_row_bytes", p.dram_row_bytes);
  field("dram_bytes_per_cycle", p.dram_bytes_per_cycle);
  field("dram_burst_bytes", p.dram_burst_bytes);
  field("dram_channels", p.dram_channels);
  field("dram_max_inflight", p.dram_max_inflight);
  return out;
}

const engine::ResultRow& ResultCache::Entry::wait() {
  std::unique_lock lock(mutex);
  cv.wait(lock, [this] { return ready; });
  if (failed) throw Error("cached computation failed: " + error);
  return row;
}

ResultCache::ResultCache(std::size_t capacity) : capacity_(capacity == 0 ? 1 : capacity) {
  stats_.capacity = capacity_;
}

ResultCache::Claim ResultCache::lookup_or_claim(const ResultKey& key, EntryPtr& out) {
  std::lock_guard lock(mutex_);
  const auto it = index_.find(key);
  if (it != index_.end()) {
    out = it->second->second;
    touch_locked(key);
    bool ready;
    {
      std::lock_guard entry_lock(out->mutex);
      ready = out->ready;
    }
    // A failed entry never stays in the index (fail() erases it), so a
    // ready resident entry always carries a valid row.
    if (ready) {
      ++stats_.hits;
      return Claim::kHit;
    }
    ++stats_.coalesced;
    return Claim::kShared;
  }
  out = std::make_shared<Entry>();
  lru_.emplace_front(key, out);
  index_.emplace(key, lru_.begin());
  ++stats_.misses;
  evict_excess_locked();
  return Claim::kOwned;
}

void ResultCache::publish(const EntryPtr& entry, engine::ResultRow row) {
  {
    std::lock_guard lock(entry->mutex);
    entry->row = std::move(row);
    entry->ready = true;
  }
  entry->cv.notify_all();
}

void ResultCache::fail(const ResultKey& key, const EntryPtr& entry, const std::string& message) {
  {
    // Drop the key from the index *before* publishing failed/ready: if the
    // entry became ready-and-failed while still resident, a concurrent
    // lookup_or_claim would see ready == true and return kHit for an entry
    // with no valid row. Only drop the entry we failed — a later request may
    // already have re-claimed the key with a fresh entry.
    std::lock_guard lock(mutex_);
    const auto it = index_.find(key);
    if (it != index_.end() && it->second->second == entry) {
      lru_.erase(it->second);
      index_.erase(it);
    }
    ++stats_.failures;
  }
  {
    std::lock_guard lock(entry->mutex);
    entry->failed = true;
    entry->error = message;
    entry->ready = true;
  }
  entry->cv.notify_all();
}

CacheStats ResultCache::stats() const {
  std::lock_guard lock(mutex_);
  CacheStats s = stats_;
  s.entries = index_.size();
  s.capacity = capacity_;
  return s;
}

void ResultCache::touch_locked(const ResultKey& key) {
  const auto it = index_.find(key);
  lru_.splice(lru_.begin(), lru_, it->second);
  it->second = lru_.begin();
}

void ResultCache::evict_excess_locked() {
  while (index_.size() > capacity_) {
    // Evict the least-recently-used *completed* entry; in-flight entries are
    // pinned (their producer still needs to publish through the cache, and
    // dropping them would re-trigger the very computation they deduplicate).
    auto victim = lru_.end();
    for (auto it = std::prev(lru_.end());; --it) {
      bool ready;
      {
        std::lock_guard entry_lock(it->second->mutex);
        ready = it->second->ready;
      }
      if (ready) {
        victim = it;
        break;
      }
      if (it == lru_.begin()) break;
    }
    if (victim == lru_.end()) return;  // everything in flight: allow overshoot
    index_.erase(victim->first);
    lru_.erase(victim);
    ++stats_.evictions;
  }
}

}  // namespace copift::serve

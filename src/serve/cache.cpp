#include "serve/cache.hpp"

#include <cstring>
#include <istream>
#include <ostream>
#include <sstream>
#include <type_traits>

#include "common/error.hpp"

namespace copift::serve {

namespace {

// The persisted format stores ActivityCounters as raw 64-bit words, so the
// struct must be a flat array of them; the header's `counters=` stamp
// additionally rejects files from builds where the field set changed.
static_assert(std::is_trivially_copyable_v<sim::ActivityCounters> &&
                  sizeof(sim::ActivityCounters) % 8 == 0,
              "cache persistence assumes ActivityCounters is packed u64s");

constexpr std::size_t kCounterWords = sizeof(sim::ActivityCounters) / 8;
constexpr const char* kMagic = "copift-cache";
constexpr unsigned kVersion = 1;

void put_counters(std::ostream& os, const char* tag, const sim::ActivityCounters& c) {
  std::uint64_t words[kCounterWords];
  std::memcpy(words, &c, sizeof(c));
  os << tag;
  for (const std::uint64_t w : words) os << ' ' << std::hex << w;
  os << std::dec << '\n';
}

void put_energy(std::ostream& os, const char* tag, const energy::EnergyReport& e) {
  const auto bits = [](double d) {
    std::uint64_t u;
    std::memcpy(&u, &d, sizeof(u));
    return u;
  };
  os << tag << std::hex << ' ' << bits(e.total_pj) << ' ' << bits(e.constant_pj) << ' '
     << bits(e.int_core_pj) << ' ' << bits(e.fpss_pj) << ' ' << bits(e.memory_pj) << ' '
     << bits(e.icache_pj) << ' ' << bits(e.dma_pj) << ' ' << e.cycles << std::dec << '\n';
}

/// One line of the persisted stream, pre-split on the expected tag. Throws
/// copift::Error naming the tag on any mismatch so a truncated or hand-edited
/// file fails loudly instead of half-loading.
std::istringstream expect_line(std::istream& is, const char* tag) {
  std::string line;
  if (!std::getline(is, line)) throw Error(std::string("cache file truncated before '") + tag + "'");
  std::istringstream ls(line);
  std::string got;
  ls >> got;
  if (got != tag) throw Error("cache file: expected '" + std::string(tag) + "', got '" + got + "'");
  return ls;
}

sim::ActivityCounters get_counters(std::istream& is, const char* tag) {
  auto ls = expect_line(is, tag);
  std::uint64_t words[kCounterWords];
  for (std::uint64_t& w : words) {
    if (!(ls >> std::hex >> w)) throw Error(std::string("cache file: short counter line '") + tag + "'");
  }
  sim::ActivityCounters c;
  std::memcpy(&c, words, sizeof(c));
  return c;
}

energy::EnergyReport get_energy(std::istream& is, const char* tag) {
  auto ls = expect_line(is, tag);
  std::uint64_t words[8];
  for (std::uint64_t& w : words) {
    if (!(ls >> std::hex >> w)) throw Error(std::string("cache file: short energy line '") + tag + "'");
  }
  energy::EnergyReport e;
  const auto dbl = [](std::uint64_t u) {
    double d;
    std::memcpy(&d, &u, sizeof(d));
    return d;
  };
  e.total_pj = dbl(words[0]);
  e.constant_pj = dbl(words[1]);
  e.int_core_pj = dbl(words[2]);
  e.fpss_pj = dbl(words[3]);
  e.memory_pj = dbl(words[4]);
  e.icache_pj = dbl(words[5]);
  e.dma_pj = dbl(words[6]);
  e.cycles = words[7];
  return e;
}

/// The one SimParams configuration the daemon simulates (and therefore
/// caches) under: defaults with the point's core count. Mirrors
/// Server::simulate_point.
sim::SimParams canonical_params(std::uint32_t cores) {
  sim::SimParams params{};
  params.num_cores = cores;
  return params;
}

}  // namespace

std::string params_fingerprint(const sim::SimParams& p) {
  std::string out;
  out.reserve(160);
  const auto field = [&out](const char* name, std::uint64_t value) {
    out += name;
    out += '=';
    out += std::to_string(value);
    out += ';';
  };
  field("fpu.add", p.fpu.add);
  field("fpu.mul", p.fpu.mul);
  field("fpu.fma", p.fpu.fma);
  field("fpu.div_sqrt", p.fpu.div_sqrt);
  field("fpu.cmp", p.fpu.cmp);
  field("fpu.cvt", p.fpu.cvt);
  field("fpu.move", p.fpu.move);
  field("fpu.minmax", p.fpu.minmax);
  field("fpu.fclass", p.fpu.fclass);
  field("num_cores", p.num_cores);
  field("offload_fifo_depth", p.offload_fifo_depth);
  field("frep_capacity", p.frep_capacity);
  field("ssr_cfg_latency", p.ssr_cfg_latency);
  field("load_use_latency", p.load_use_latency);
  field("mul_latency", p.mul_latency);
  field("div_latency", p.div_latency);
  field("branch_taken_penalty", p.branch_taken_penalty);
  field("fp_load_latency", p.fp_load_latency);
  field("num_tcdm_banks", p.num_tcdm_banks);
  field("l0_lines", p.l0_lines);
  field("l0_words_per_line", p.l0_words_per_line);
  field("l0_branch_penalty", p.l0_branch_penalty);
  field("ssr_fifo_depth", p.ssr_fifo_depth);
  field("dma_bytes_per_cycle", p.dma_bytes_per_cycle);
  field("max_cycles", p.max_cycles);
  field("skip_ahead", p.skip_ahead ? 1 : 0);
  field("dram_enabled", p.dram_enabled ? 1 : 0);
  field("dram_t_row_hit", p.dram_t_row_hit);
  field("dram_t_row_miss", p.dram_t_row_miss);
  field("dram_row_bytes", p.dram_row_bytes);
  field("dram_bytes_per_cycle", p.dram_bytes_per_cycle);
  field("dram_burst_bytes", p.dram_burst_bytes);
  field("dram_channels", p.dram_channels);
  field("dram_max_inflight", p.dram_max_inflight);
  return out;
}

const engine::ResultRow& ResultCache::Entry::wait() {
  std::unique_lock lock(mutex);
  cv.wait(lock, [this] { return ready; });
  if (failed) throw Error("cached computation failed: " + error);
  return row;
}

ResultCache::ResultCache(std::size_t capacity) : capacity_(capacity == 0 ? 1 : capacity) {
  stats_.capacity = capacity_;
}

ResultCache::Claim ResultCache::lookup_or_claim(const ResultKey& key, EntryPtr& out) {
  std::lock_guard lock(mutex_);
  const auto it = index_.find(key);
  if (it != index_.end()) {
    out = it->second->second;
    touch_locked(key);
    bool ready;
    {
      std::lock_guard entry_lock(out->mutex);
      ready = out->ready;
    }
    // A failed entry never stays in the index (fail() erases it), so a
    // ready resident entry always carries a valid row.
    if (ready) {
      ++stats_.hits;
      return Claim::kHit;
    }
    ++stats_.coalesced;
    return Claim::kShared;
  }
  out = std::make_shared<Entry>();
  lru_.emplace_front(key, out);
  index_.emplace(key, lru_.begin());
  ++stats_.misses;
  evict_excess_locked();
  return Claim::kOwned;
}

void ResultCache::publish(const EntryPtr& entry, engine::ResultRow row) {
  {
    std::lock_guard lock(entry->mutex);
    entry->row = std::move(row);
    entry->ready = true;
  }
  entry->cv.notify_all();
}

void ResultCache::fail(const ResultKey& key, const EntryPtr& entry, const std::string& message) {
  {
    // Drop the key from the index *before* publishing failed/ready: if the
    // entry became ready-and-failed while still resident, a concurrent
    // lookup_or_claim would see ready == true and return kHit for an entry
    // with no valid row. Only drop the entry we failed — a later request may
    // already have re-claimed the key with a fresh entry.
    std::lock_guard lock(mutex_);
    const auto it = index_.find(key);
    if (it != index_.end() && it->second->second == entry) {
      lru_.erase(it->second);
      index_.erase(it);
    }
    ++stats_.failures;
  }
  {
    std::lock_guard lock(entry->mutex);
    entry->failed = true;
    entry->error = message;
    entry->ready = true;
  }
  entry->cv.notify_all();
}

std::size_t ResultCache::save(std::ostream& os) const {
  std::lock_guard lock(mutex_);
  os << kMagic << " v" << kVersion << " counters=" << sizeof(sim::ActivityCounters) << '\n';
  std::size_t written = 0;
  // Back-to-front (LRU first): load() re-inserts each entry at the MRU end,
  // so reading in this order reproduces today's recency ranking.
  for (auto it = lru_.rbegin(); it != lru_.rend(); ++it) {
    const ResultKey& key = it->first;
    const EntryPtr& entry = it->second;
    engine::ResultRow row;
    {
      std::lock_guard entry_lock(entry->mutex);
      if (!entry->ready || entry->failed) continue;  // in-flight entries are not results
      row = entry->row;
    }
    // Guard against rows cached under a non-canonical simulator config (not
    // producible by the daemon today); the fingerprint could not be
    // reconstructed at load time, so skip rather than persist a lie.
    if (key.params_fingerprint != params_fingerprint(canonical_params(key.cores))) continue;
    if (row.steady) continue;  // likewise: the daemon never produces steady rows
    os << "point " << (key.verify ? 1 : 0) << ' ' << key.variant << ' ' << key.n << ' '
       << key.block << ' ' << key.seed << ' ' << key.cores << ' ' << key.tile << ' '
       << key.workload << '\n';
    const kernels::KernelRun& run = row.run;
    os << "run " << (run.result.halted ? 1 : 0) << ' ' << run.result.cycles << ' '
       << run.result.exit_code << ' ' << (run.verified ? 1 : 0) << ' '
       << run.hart_region.size() << '\n';
    put_counters(os, "total", run.total);
    put_counters(os, "region", run.region);
    put_energy(os, "energy", run.region_energy);
    for (const auto& hc : run.hart_region) put_counters(os, "hc", hc);
    for (const auto& he : run.hart_energy) put_energy(os, "he", he);
    os << "end\n";
    ++written;
  }
  return written;
}

std::size_t ResultCache::load(std::istream& is, const WorkloadResolver& resolver) {
  {
    auto header = expect_line(is, kMagic);
    std::string version, counters;
    header >> version >> counters;
    const std::string want_version = "v" + std::to_string(kVersion);
    const std::string want_counters = "counters=" + std::to_string(sizeof(sim::ActivityCounters));
    if (version != want_version) {
      throw Error("cache file version mismatch: got '" + version + "', want '" + want_version + "'");
    }
    if (counters != want_counters) {
      throw Error("cache file counter layout mismatch: got '" + counters + "', want '" +
                  want_counters + "' (stale file from another build)");
    }
  }
  std::size_t restored = 0;
  std::string line;
  while (is.peek() != std::char_traits<char>::eof() && std::getline(is, line)) {
    std::istringstream ls(line);
    std::string tag;
    ls >> tag;
    if (tag.empty()) continue;
    if (tag != "point") throw Error("cache file: expected 'point', got '" + tag + "'");
    ResultKey key;
    int verify = 0;
    ls >> verify >> key.variant >> key.n >> key.block >> key.seed >> key.cores >> key.tile >>
        key.workload;
    if (!ls || key.workload.empty()) throw Error("cache file: malformed point line");
    key.verify = verify != 0;
    key.params_fingerprint = params_fingerprint(canonical_params(key.cores));

    engine::ResultRow row;
    std::size_t harts = 0;
    {
      auto rs = expect_line(is, "run");
      int halted = 0, verified = 0;
      rs >> halted >> row.run.result.cycles >> row.run.result.exit_code >> verified >> harts;
      if (!rs) throw Error("cache file: malformed run line");
      row.run.result.halted = halted != 0;
      row.run.verified = verified != 0;
    }
    row.run.total = get_counters(is, "total");
    row.run.region = get_counters(is, "region");
    row.run.region_energy = get_energy(is, "energy");
    for (std::size_t h = 0; h < harts; ++h) row.run.hart_region.push_back(get_counters(is, "hc"));
    for (std::size_t h = 0; h < harts; ++h) row.run.hart_energy.push_back(get_energy(is, "he"));
    expect_line(is, "end");

    const auto wl = resolver ? resolver(key.workload) : nullptr;
    if (wl == nullptr) continue;  // not registered in this process: skip
    row.point.workload = wl;
    row.point.variant = static_cast<workload::Variant>(key.variant);
    row.point.config.n = key.n;
    row.point.config.block = key.block;
    row.point.config.seed = key.seed;
    row.point.config.cores = key.cores;
    row.point.config.tile = key.tile;
    row.point.params_label = "default";
    row.point.params = canonical_params(key.cores);

    auto entry = std::make_shared<Entry>();
    entry->ready = true;
    entry->row = std::move(row);
    {
      std::lock_guard lock(mutex_);
      if (index_.find(key) != index_.end()) continue;  // live entry wins
      lru_.emplace_front(key, std::move(entry));
      index_.emplace(key, lru_.begin());
      ++stats_.reloaded;
      evict_excess_locked();
    }
    ++restored;
  }
  return restored;
}

CacheStats ResultCache::stats() const {
  std::lock_guard lock(mutex_);
  CacheStats s = stats_;
  s.entries = index_.size();
  s.capacity = capacity_;
  return s;
}

void ResultCache::touch_locked(const ResultKey& key) {
  const auto it = index_.find(key);
  lru_.splice(lru_.begin(), lru_, it->second);
  it->second = lru_.begin();
}

void ResultCache::evict_excess_locked() {
  while (index_.size() > capacity_) {
    // Evict the least-recently-used *completed* entry; in-flight entries are
    // pinned (their producer still needs to publish through the cache, and
    // dropping them would re-trigger the very computation they deduplicate).
    auto victim = lru_.end();
    for (auto it = std::prev(lru_.end());; --it) {
      bool ready;
      {
        std::lock_guard entry_lock(it->second->mutex);
        ready = it->second->ready;
      }
      if (ready) {
        victim = it;
        break;
      }
      if (it == lru_.begin()) break;
    }
    if (victim == lru_.end()) return;  // everything in flight: allow overshoot
    index_.erase(victim->first);
    lru_.erase(victim);
    ++stats_.evictions;
  }
}

}  // namespace copift::serve

#include "engine/experiment.hpp"

#include <array>
#include <ostream>
#include <sstream>

#include "common/error.hpp"

namespace copift::engine {

// --- ProgramCache -----------------------------------------------------------

std::shared_ptr<const rvasm::Program> ProgramCache::get(const kernels::GeneratedKernel& kernel) {
  Key key{kernel.name(),        static_cast<int>(kernel.variant), kernel.config.n,
          kernel.config.block,  kernel.config.seed,               kernel.config.cores,
          kernel.config.tile};
  std::lock_guard lock(mutex_);
  auto it = programs_.find(key);
  if (it != programs_.end()) {
    ++hits_;
    return it->second;
  }
  // Assemble under the lock: each program is built exactly once even when
  // many workers request it simultaneously. Assembly is cheap next to the
  // simulations that follow.
  auto program = kernels::assemble_kernel(kernel);
  programs_.emplace(std::move(key), program);
  return program;
}

std::size_t ProgramCache::size() const {
  std::lock_guard lock(mutex_);
  return programs_.size();
}

std::uint64_t ProgramCache::hits() const {
  std::lock_guard lock(mutex_);
  return hits_;
}

// --- ParamGrid --------------------------------------------------------------

std::size_t ParamGrid::size() const noexcept {
  return workloads.size() * variants.size() * ns.size() * blocks.size() * cores.size() *
         tiles.size() * seeds.size() * params.size();
}

GridPoint ParamGrid::point(std::size_t index) const {
  if (index >= size()) throw Error("ParamGrid::point: index out of range");
  GridPoint p;
  p.index = index;
  // Row-major, last axis fastest.
  std::size_t rest = index;
  const std::size_t pi = rest % params.size();
  rest /= params.size();
  const std::size_t si = rest % seeds.size();
  rest /= seeds.size();
  const std::size_t ti = rest % tiles.size();
  rest /= tiles.size();
  const std::size_t ci = rest % cores.size();
  rest /= cores.size();
  const std::size_t bi = rest % blocks.size();
  rest /= blocks.size();
  const std::size_t ni = rest % ns.size();
  rest /= ns.size();
  const std::size_t vi = rest % variants.size();
  rest /= variants.size();
  const std::size_t ki = rest;
  p.workload = workload::WorkloadRegistry::instance().at(workloads[ki]);
  p.variant = variants[vi];
  p.config.n = ns[ni];
  p.config.block = blocks[bi];
  p.config.seed = seeds[si];
  p.config.cores = cores[ci];
  p.config.tile = tiles[ti];
  p.params_label = params[pi].label;
  p.params = params[pi].params;
  p.params.num_cores = cores[ci];
  return p;
}

// --- ResultTable ------------------------------------------------------------

const ResultRow* ResultTable::find(std::string_view workload, Variant variant,
                                   std::uint32_t n, std::uint32_t block,
                                   const std::string& params_label, std::uint32_t cores,
                                   std::optional<std::uint32_t> seed,
                                   std::optional<std::uint32_t> tile) const {
  for (const auto& row : rows_) {
    if (row.point.name() != workload || row.point.variant != variant) continue;
    if (n != 0 && row.point.config.n != n) continue;
    if (block != 0 && row.point.config.block != block) continue;
    if (!params_label.empty() && row.point.params_label != params_label) continue;
    if (cores != 0 && row.point.config.cores != cores) continue;
    if (seed.has_value() && row.point.config.seed != *seed) continue;
    if (tile.has_value() && row.point.config.tile != *tile) continue;
    return &row;
  }
  return nullptr;
}

namespace {

/// RFC 4180 field quoting: wrap in double quotes when the value contains a
/// comma, quote, or line break, doubling embedded quotes. Plain values pass
/// through unchanged, so existing tables keep their exact bytes.
std::string csv_field(const std::string& value) {
  if (value.find_first_of(",\"\n\r") == std::string::npos) return value;
  std::string out;
  out.reserve(value.size() + 2);
  out += '"';
  for (const char c : value) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

/// JSON string escaping per RFC 8259: quote, backslash and control
/// characters; everything else passes through byte-for-byte.
void write_json_string(std::ostream& os, std::string_view value) {
  os << '"';
  for (const char c : value) {
    switch (c) {
      case '"': os << "\\\""; break;
      case '\\': os << "\\\\"; break;
      case '\n': os << "\\n"; break;
      case '\r': os << "\\r"; break;
      case '\t': os << "\\t"; break;
      case '\b': os << "\\b"; break;
      case '\f': os << "\\f"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          constexpr const char* kHex = "0123456789abcdef";
          os << "\\u00" << kHex[(c >> 4) & 0xF] << kHex[c & 0xF];
        } else {
          os << c;
        }
    }
  }
  os << '"';
}

void write_number(std::ostream& os, double v) {
  // Shortest round-trippable representation keeps the emitted tables
  // deterministic across thread counts and runs.
  std::ostringstream ss;
  ss.precision(17);
  ss << v;
  os << ss.str();
}

// Stall-cause columns come from the marginal region for steady rows (the
// prologue-free window the paper reports) and the main-loop region
// otherwise, so utilization-vs-block plots line up with the IPC columns.
const sim::ActivityCounters& stall_region(const ResultRow& row) {
  return row.steady ? row.steady_region : row.run.region;
}

constexpr std::array<const char*, 22> kStallColumns = {
    "int_issue_cycles", "int_stall_cycles", "int_halt_cycles", "stall_raw",
    "stall_wb_port", "stall_offload_full", "stall_icache", "stall_branch",
    "stall_div_busy", "stall_tcdm", "stall_mem_order", "stall_barrier",
    "stall_hw_barrier", "stall_dma_wait", "stall_dma_dram",
    "fpss_issue_cycles", "fpss_stall_cycles", "fpss_idle",
    "fpss_stall_raw", "fpss_stall_ssr", "fpss_stall_struct", "fpss_stall_tcdm"};

/// The stall-cause values in kStallColumns order.
std::array<std::uint64_t, 22> stall_values(const sim::ActivityCounters& r) {
  return {r.int_issue_cycles(), r.int_stall_cycles(), r.int_halt_cycles,
          r.stall_raw,          r.stall_wb_port,      r.stall_offload_full,
          r.stall_icache,       r.stall_branch,       r.stall_div_busy,
          r.stall_tcdm,         r.stall_mem_order,    r.stall_barrier,
          r.stall_hw_barrier,   r.stall_dma_wait,     r.stall_dma_dram,
          r.fpss_issue_cycles(), r.fpss_stall_cycles(), r.fpss_idle,
          r.fpss_stall_raw,     r.fpss_stall_ssr,     r.fpss_stall_struct,
          r.fpss_stall_tcdm};
}

}  // namespace

void ResultTable::write_csv(std::ostream& os) const {
  os << "index,kernel,variant,n,block,seed,cores,tile,params,verified,cycles,region_cycles,"
        "int_retired,fp_retired,ipc,power_mw,energy_nj,steady,steady_ipc,"
        "cycles_per_item,energy_pj_per_item";
  for (const char* col : kStallColumns) os << ',' << col;
  os << '\n';
  for (const auto& row : rows_) {
    const auto& p = row.point;
    os << p.index << ',' << csv_field(p.name()) << ',' << workload::variant_name(p.variant)
       << ',' << p.config.n << ',' << p.config.block << ',' << p.config.seed << ','
       << p.config.cores << ',' << p.config.tile << ','
       << csv_field(p.params_label) << ',' << (row.run.verified ? 1 : 0) << ','
       << row.run.result.cycles
       << ',' << row.run.region.cycles << ',' << row.run.region.int_retired << ','
       << row.run.region.fp_retired << ',';
    write_number(os, row.run.ipc());
    os << ',';
    write_number(os, row.run.power_mw());
    os << ',';
    write_number(os, row.run.energy_nj());
    os << ',' << (row.steady ? 1 : 0) << ',';
    write_number(os, row.steady ? row.metrics.ipc : 0.0);
    os << ',';
    write_number(os, row.steady ? row.metrics.cycles_per_item : 0.0);
    os << ',';
    write_number(os, row.steady ? row.metrics.energy_pj_per_item : 0.0);
    for (const std::uint64_t v : stall_values(stall_region(row))) os << ',' << v;
    os << '\n';
  }
}

void ResultTable::write_json(std::ostream& os) const {
  os << "[\n";
  for (std::size_t i = 0; i < rows_.size(); ++i) {
    const auto& row = rows_[i];
    const auto& p = row.point;
    os << "  {\"index\":" << p.index << ",\"kernel\":";
    write_json_string(os, p.name());
    os << ",\"variant\":\"" << workload::variant_name(p.variant)
       << "\",\"n\":" << p.config.n
       << ",\"block\":" << p.config.block << ",\"seed\":" << p.config.seed
       << ",\"cores\":" << p.config.cores << ",\"tile\":" << p.config.tile
       << ",\"params\":";
    write_json_string(os, p.params_label);
    os << ",\"verified\":" << (row.run.verified ? "true" : "false")
       << ",\"cycles\":" << row.run.result.cycles
       << ",\"region_cycles\":" << row.run.region.cycles << ",\"ipc\":";
    write_number(os, row.run.ipc());
    os << ",\"power_mw\":";
    write_number(os, row.run.power_mw());
    os << ",\"energy_nj\":";
    write_number(os, row.run.energy_nj());
    if (row.steady) {
      os << ",\"steady_ipc\":";
      write_number(os, row.metrics.ipc);
      os << ",\"cycles_per_item\":";
      write_number(os, row.metrics.cycles_per_item);
      os << ",\"energy_pj_per_item\":";
      write_number(os, row.metrics.energy_pj_per_item);
    }
    os << ",\"stalls\":{";
    const auto values = stall_values(stall_region(row));
    for (std::size_t s = 0; s < values.size(); ++s) {
      os << (s == 0 ? "" : ",") << '"' << kStallColumns[s] << "\":" << values[s];
    }
    os << "}}" << (i + 1 < rows_.size() ? "," : "") << '\n';
  }
  os << "]\n";
}

std::string ResultTable::csv() const {
  std::ostringstream ss;
  write_csv(ss);
  return ss.str();
}

std::string ResultTable::json() const {
  std::ostringstream ss;
  write_json(ss);
  return ss.str();
}

// --- Experiment -------------------------------------------------------------

Experiment& Experiment::over(std::string_view workload) {
  grid_.workloads.assign(1, std::string(workload));
  return *this;
}
Experiment& Experiment::over(std::span<const std::string_view> workloads) {
  grid_.workloads.assign(workloads.begin(), workloads.end());
  return *this;
}
Experiment& Experiment::over(std::span<const std::string> workloads) {
  grid_.workloads.assign(workloads.begin(), workloads.end());
  return *this;
}
Experiment& Experiment::over(std::initializer_list<std::string_view> workloads) {
  grid_.workloads.assign(workloads.begin(), workloads.end());
  return *this;
}
Experiment& Experiment::over(Variant variant) {
  grid_.variants.assign(1, variant);
  return *this;
}
Experiment& Experiment::over(std::span<const Variant> variants) {
  grid_.variants.assign(variants.begin(), variants.end());
  return *this;
}
Experiment& Experiment::over(std::initializer_list<Variant> variants) {
  grid_.variants.assign(variants.begin(), variants.end());
  return *this;
}

Experiment& Experiment::sweep(std::span<const std::uint32_t> blocks) {
  grid_.blocks.assign(blocks.begin(), blocks.end());
  return *this;
}
Experiment& Experiment::sweep(std::initializer_list<std::uint32_t> blocks) {
  grid_.blocks.assign(blocks.begin(), blocks.end());
  return *this;
}
Experiment& Experiment::sweep_n(std::span<const std::uint32_t> ns) {
  grid_.ns.assign(ns.begin(), ns.end());
  return *this;
}
Experiment& Experiment::sweep_n(std::initializer_list<std::uint32_t> ns) {
  grid_.ns.assign(ns.begin(), ns.end());
  return *this;
}
Experiment& Experiment::sweep_seeds(std::span<const std::uint32_t> seeds) {
  grid_.seeds.assign(seeds.begin(), seeds.end());
  return *this;
}
Experiment& Experiment::sweep_seeds(std::initializer_list<std::uint32_t> seeds) {
  grid_.seeds.assign(seeds.begin(), seeds.end());
  return *this;
}

Experiment& Experiment::n(std::uint32_t n) {
  grid_.ns.assign(1, n);
  return *this;
}
Experiment& Experiment::block(std::uint32_t block) {
  grid_.blocks.assign(1, block);
  return *this;
}
Experiment& Experiment::seed(std::uint32_t seed) {
  grid_.seeds.assign(1, seed);
  return *this;
}
Experiment& Experiment::cores(std::uint32_t cores) {
  grid_.cores.assign(1, cores);
  return *this;
}
Experiment& Experiment::sweep_cores(std::span<const std::uint32_t> cores) {
  grid_.cores.assign(cores.begin(), cores.end());
  return *this;
}
Experiment& Experiment::sweep_cores(std::initializer_list<std::uint32_t> cores) {
  grid_.cores.assign(cores.begin(), cores.end());
  return *this;
}
Experiment& Experiment::tile(std::uint32_t tile) {
  grid_.tiles.assign(1, tile);
  return *this;
}
Experiment& Experiment::sweep_tiles(std::span<const std::uint32_t> tiles) {
  grid_.tiles.assign(tiles.begin(), tiles.end());
  return *this;
}
Experiment& Experiment::sweep_tiles(std::initializer_list<std::uint32_t> tiles) {
  grid_.tiles.assign(tiles.begin(), tiles.end());
  return *this;
}

Experiment& Experiment::with_params(std::string label, const sim::SimParams& params) {
  if (params_defaulted_) {
    grid_.params.clear();
    params_defaulted_ = false;
  }
  grid_.params.push_back(ParamsVariant{std::move(label), params});
  return *this;
}

Experiment& Experiment::energy(const energy::EnergyParams& params) {
  energy_ = params;
  return *this;
}

Experiment& Experiment::verify(bool enabled) {
  verify_ = enabled;
  return *this;
}

Experiment& Experiment::verify_if(std::function<bool(const GridPoint&)> predicate) {
  verify_pred_ = std::move(predicate);
  return *this;
}

Experiment& Experiment::steady(std::uint32_t n1, std::uint32_t n2) {
  if (n2 <= n1) throw Error("Experiment::steady requires n2 > n1");
  steady_ = true;
  steady_n1_ = n1;
  steady_n2_ = n2;
  return *this;
}

ResultTable Experiment::run(SimEngine& engine, const CancelToken* cancel) const {
  const std::size_t count = grid_.size();
  std::vector<ResultRow> rows(count);
  std::vector<unsigned char> done(count, 0);
  ProgramCache cache;
  const bool complete = engine.parallel_for(count, [&](std::size_t i) {
    const GridPoint pt = grid_.point(i);
    const bool verify = verify_ && (!verify_pred_ || verify_pred_(pt));
    ResultRow row;
    row.point = pt;
    if (steady_) {
      kernels::KernelConfig c1 = pt.config;
      c1.n = steady_n1_;
      kernels::KernelConfig c2 = pt.config;
      c2.n = steady_n2_;
      const auto k1 = pt.workload->instantiate(pt.variant, c1);
      const auto k2 = pt.workload->instantiate(pt.variant, c2);
      const auto r1 = kernels::run_kernel(k1, cache.get(k1), pt.params, verify, energy_);
      auto r2 = kernels::run_kernel(k2, cache.get(k2), pt.params, verify, energy_);
      row.steady = true;
      row.metrics = kernels::steady_from_runs(r1, r2, pt.workload->items(c1),
                                              pt.workload->items(c2));
      row.steady_region = r2.region.minus(r1.region);
      row.run = std::move(r2);
      row.point.config.n = steady_n2_;
    } else {
      const auto kernel = pt.workload->instantiate(pt.variant, pt.config);
      row.run = kernels::run_kernel(kernel, cache.get(kernel), pt.params, verify, energy_);
    }
    rows[i] = std::move(row);
    done[i] = 1;
  }, cancel);
  if (!complete) {
    // Keep only the grid points that finished, preserving grid order, so an
    // interrupted sweep still yields every result that was paid for.
    std::vector<ResultRow> partial;
    for (std::size_t i = 0; i < count; ++i) {
      if (done[i]) partial.push_back(std::move(rows[i]));
    }
    return ResultTable(std::move(partial));
  }
  return ResultTable(std::move(rows));
}

}  // namespace copift::engine

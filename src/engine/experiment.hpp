// Declarative parameter-sweep experiments over the workload simulator.
//
//   engine::SimEngine pool(8);
//   auto table = engine::Experiment()
//                    .over({"exp", "log", "pi_lcg"})  // registry names
//                    .over({workload::Variant::kBaseline, workload::Variant::kCopift})
//                    .sweep({32, 64, 96, 128})        // COPIFT block sizes
//                    .run(pool);
//   table.write_csv(std::cout);
//
// Workloads are addressed by their WorkloadRegistry names — any workload
// registered through the public API (including out-of-tree ones) sweeps
// exactly like the paper kernels. The experiment expands its axes into a
// cartesian ParamGrid, assembles each distinct program exactly once into a
// shared immutable rvasm::Program (via ProgramCache), fans the runs out
// across the engine's worker threads, and collects results keyed by grid
// index — so a ResultTable is bit-identical whether it was produced by
// 1 thread or by 16.
#pragma once

#include <cstdint>
#include <functional>
#include <iosfwd>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <tuple>
#include <vector>

#include "energy/energy.hpp"
#include "engine/engine.hpp"
#include "kernels/runner.hpp"
#include "sim/params.hpp"
#include "workload/workload.hpp"

namespace copift::engine {

using workload::Variant;

/// Assemble-once cache: maps (workload name, variant, config) to the shared
/// immutable program every run of that grid point reuses. Thread-safe.
class ProgramCache {
 public:
  /// Return the shared program for `kernel`, assembling it on first use.
  std::shared_ptr<const rvasm::Program> get(const kernels::GeneratedKernel& kernel);

  [[nodiscard]] std::size_t size() const;
  [[nodiscard]] std::uint64_t hits() const;

 private:
  using Key = std::tuple<std::string, int, std::uint32_t, std::uint32_t, std::uint32_t,
                         std::uint32_t, std::uint32_t>;
  mutable std::mutex mutex_;
  std::map<Key, std::shared_ptr<const rvasm::Program>> programs_;
  std::uint64_t hits_ = 0;
};

/// A named simulator configuration for hardware-parameter sweeps
/// (e.g. the ablation benchmarks sweep offload FIFO depths).
struct ParamsVariant {
  std::string label = "default";
  sim::SimParams params{};
};

/// One fully resolved grid coordinate. `workload` is the registry handle for
/// the point's workload name.
struct GridPoint {
  std::size_t index = 0;  // row-major position in the grid
  std::shared_ptr<const workload::Workload> workload;
  Variant variant = Variant::kCopift;
  kernels::KernelConfig config{};
  std::string params_label = "default";
  sim::SimParams params{};

  [[nodiscard]] std::string name() const {
    return workload ? workload->name() : std::string();
  }
};

/// Cartesian product of experiment axes. Every axis has a single default
/// value, so an empty grid is one default COPIFT exp run. Workloads are
/// named; names resolve through the process-wide WorkloadRegistry when a
/// point is materialized (unknown names throw, listing what is registered).
class ParamGrid {
 public:
  std::vector<std::string> workloads{"exp"};
  std::vector<Variant> variants{Variant::kCopift};
  std::vector<std::uint32_t> ns{1024};
  std::vector<std::uint32_t> blocks{32};
  std::vector<std::uint32_t> cores{1};
  /// DMA tile sizes (0 = untiled TCDM-resident codegen; > 0 places the
  /// workload's arrays in DRAM behind the double-buffered tile loop).
  std::vector<std::uint32_t> tiles{0};
  std::vector<std::uint32_t> seeds{42};
  std::vector<ParamsVariant> params{ParamsVariant{}};

  [[nodiscard]] std::size_t size() const noexcept;
  /// Resolve the i-th point (row-major over workloads, variants, ns, blocks,
  /// cores, tiles, seeds, params — last axis fastest). The point's cores
  /// value lands in both config.cores and params.num_cores. Throws on
  /// out-of-range or an unregistered workload name.
  [[nodiscard]] GridPoint point(std::size_t index) const;
};

/// One completed grid point.
struct ResultRow {
  GridPoint point;
  kernels::KernelRun run;  // steady mode: the larger (n2) run

  // Steady-state mode extras (valid when `steady` is true).
  bool steady = false;
  kernels::SteadyMetrics metrics{};
  sim::ActivityCounters steady_region{};  // marginal counters: region(n2) - region(n1)

  [[nodiscard]] double ipc() const noexcept { return steady ? metrics.ipc : run.ipc(); }
  [[nodiscard]] double power_mw() const noexcept {
    return steady ? metrics.power_mw : run.power_mw();
  }
};

/// Deterministically ordered sweep results (row i == grid point i).
class ResultTable {
 public:
  ResultTable() = default;
  explicit ResultTable(std::vector<ResultRow> rows) : rows_(std::move(rows)) {}

  [[nodiscard]] const std::vector<ResultRow>& rows() const noexcept { return rows_; }
  [[nodiscard]] std::size_t size() const noexcept { return rows_.size(); }
  [[nodiscard]] const ResultRow& at(std::size_t index) const { return rows_.at(index); }

  /// First row matching the given coordinates; 0 means "any" for n, block
  /// and cores (cores is always >= 1 in a materialized grid), and an empty
  /// optional means "any" seed or tile (0 is a legal seed value and the
  /// untiled tile value). Tables produced by cores, tile or seed sweeps hold
  /// several rows per (workload, variant) pair — pass the cores/tile/seed
  /// filters there or the first row of the wrong configuration comes back.
  /// Returns nullptr when no row matches.
  [[nodiscard]] const ResultRow* find(std::string_view workload, Variant variant,
                                      std::uint32_t n = 0, std::uint32_t block = 0,
                                      const std::string& params_label = {},
                                      std::uint32_t cores = 0,
                                      std::optional<std::uint32_t> seed = std::nullopt,
                                      std::optional<std::uint32_t> tile = std::nullopt) const;

  void write_csv(std::ostream& os) const;
  void write_json(std::ostream& os) const;
  [[nodiscard]] std::string csv() const;
  [[nodiscard]] std::string json() const;

 private:
  std::vector<ResultRow> rows_;
};

/// Builder for a batch experiment. All setters return *this for chaining:
///   Experiment().over({"exp", "log"}).over(variants).sweep(blocks).run(engine)
class Experiment {
 public:
  // --- workload / variant axes ---------------------------------------------
  Experiment& over(std::string_view workload);
  Experiment& over(std::span<const std::string_view> workloads);
  Experiment& over(std::span<const std::string> workloads);
  Experiment& over(std::initializer_list<std::string_view> workloads);
  Experiment& over(Variant variant);
  Experiment& over(std::span<const Variant> variants);
  Experiment& over(std::initializer_list<Variant> variants);

  // --- numeric axes -------------------------------------------------------
  /// Sweep the COPIFT block size B (the paper's Fig. 3 x-axis).
  Experiment& sweep(std::span<const std::uint32_t> blocks);
  Experiment& sweep(std::initializer_list<std::uint32_t> blocks);
  Experiment& sweep_n(std::span<const std::uint32_t> ns);
  Experiment& sweep_n(std::initializer_list<std::uint32_t> ns);
  Experiment& sweep_seeds(std::span<const std::uint32_t> seeds);
  Experiment& sweep_seeds(std::initializer_list<std::uint32_t> seeds);
  /// Sweep the hart count (each point runs on a topology of that many
  /// core complexes; the workload must be multi-hart capable for values > 1).
  Experiment& sweep_cores(std::span<const std::uint32_t> cores);
  Experiment& sweep_cores(std::initializer_list<std::uint32_t> cores);
  /// Sweep the DMA tile size (0 = untiled; > 0 needs a tiled-capable
  /// workload — the arrays move to DRAM behind double-buffered DMA).
  Experiment& sweep_tiles(std::span<const std::uint32_t> tiles);
  Experiment& sweep_tiles(std::initializer_list<std::uint32_t> tiles);

  /// Fix single values without sweeping.
  Experiment& n(std::uint32_t n);
  Experiment& block(std::uint32_t block);
  Experiment& seed(std::uint32_t seed);
  Experiment& cores(std::uint32_t cores);
  Experiment& tile(std::uint32_t tile);

  // --- simulator / energy configuration -----------------------------------
  /// Add a named SimParams variant to the params axis. The first call
  /// replaces the default configuration; later calls append.
  Experiment& with_params(std::string label, const sim::SimParams& params);
  Experiment& energy(const energy::EnergyParams& params);

  // --- run semantics -------------------------------------------------------
  /// Verify every run against the golden references (default on).
  Experiment& verify(bool enabled);
  /// Per-point verification predicate (e.g. verify only small problems).
  Experiment& verify_if(std::function<bool(const GridPoint&)> predicate);
  /// Steady-state mode: each grid point runs at n1 and n2 > n1 and reports
  /// marginal (prologue-free) metrics; the grid's n axis is ignored. The
  /// per-item normalization uses the workload's items() accounting.
  Experiment& steady(std::uint32_t n1, std::uint32_t n2);

  [[nodiscard]] const ParamGrid& grid() const noexcept { return grid_; }
  [[nodiscard]] ParamGrid& grid() noexcept { return grid_; }

  /// Execute the whole grid on the engine's worker pool. Each distinct
  /// program is assembled exactly once and shared immutably across runs.
  /// Results are keyed by grid index: the returned table is identical for
  /// any engine thread count.
  ///
  /// When `cancel` is given and fires mid-sweep, no further grid points
  /// start; the returned table then holds only the points that finished, in
  /// grid order (compare size() against grid().size() to detect truncation —
  /// completed rows are never discarded).
  [[nodiscard]] ResultTable run(SimEngine& engine, const CancelToken* cancel = nullptr) const;

 private:
  ParamGrid grid_;
  energy::EnergyParams energy_{};
  bool verify_ = true;
  std::function<bool(const GridPoint&)> verify_pred_;
  bool steady_ = false;
  std::uint32_t steady_n1_ = 0;
  std::uint32_t steady_n2_ = 0;
  bool params_defaulted_ = true;
};

}  // namespace copift::engine

// SimEngine: a persistent worker-thread pool for batch simulation.
//
// Every simulated run is an independent, deterministic function of
// (Program, SimParams, KernelConfig), so parameter sweeps are embarrassingly
// parallel. The engine fans jobs out across worker threads and collects
// results keyed by job index, which makes the output independent of thread
// count and scheduling order (see tests/test_engine.cpp).
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace copift::engine {

/// Parse a `--threads N` flag from a command line; returns 0 (hardware
/// concurrency) when the flag is absent. Throws copift::Error — a usage
/// error — when the flag has no value (e.g. `--threads` as the last
/// argument) or the value is malformed, negative, or absurd; silent
/// fallbacks used to mask typos like `--threads 4x` with a full-width pool.
unsigned parse_threads(int argc, char** argv);

/// Parse a `--cores v1,v2,...` flag from a command line; returns {1} (the
/// single-core paper setup) when the flag is absent. Throws copift::Error
/// on a missing value or a malformed list (empty entries, zero, negative,
/// non-numeric, out of 32-bit range).
std::vector<std::uint32_t> parse_cores_list(int argc, char** argv);

/// Cooperative cancellation for batch work. A producer (signal handler,
/// server shutdown path, disconnecting client) calls request_stop(); consumers
/// poll stop_requested() between units of work and wind down cleanly. The
/// token is a single atomic flag, so request_stop() is async-signal-safe and
/// may be called from a SIGINT/SIGTERM handler.
class CancelToken {
 public:
  void request_stop() noexcept { stop_.store(true, std::memory_order_relaxed); }
  [[nodiscard]] bool stop_requested() const noexcept {
    return stop_.load(std::memory_order_relaxed);
  }
  /// Re-arm a token between batches (e.g. a CLI that catches the first ^C).
  void reset() noexcept { stop_.store(false, std::memory_order_relaxed); }

 private:
  std::atomic<bool> stop_{false};
};

class SimEngine {
 public:
  /// Worker counts are clamped to [1, kMaxThreads].
  static constexpr unsigned kMaxThreads = 256;

  /// `threads == 0` uses the host's hardware concurrency. The calling thread
  /// participates in every batch, so `threads == 1` runs jobs inline with no
  /// worker threads at all (handy for debugging and determinism baselines).
  explicit SimEngine(unsigned threads = 0);
  ~SimEngine();

  SimEngine(const SimEngine&) = delete;
  SimEngine& operator=(const SimEngine&) = delete;

  [[nodiscard]] unsigned threads() const noexcept {
    return static_cast<unsigned>(workers_.size()) + 1;
  }

  /// Invoke `fn(i)` for every i in [0, count), possibly concurrently, and
  /// block until all started jobs have finished. Job exceptions are captured
  /// per index and the one with the lowest index is rethrown after the batch
  /// drains — identical behaviour at any thread count.
  ///
  /// When `cancel` is non-null the token is polled between jobs: once
  /// request_stop() has been called no *new* job starts, jobs already running
  /// complete normally, and parallel_for returns false. A full batch returns
  /// true. Cancellation never throws and never loses a finished job.
  ///
  /// Not reentrant: calling parallel_for from inside one of its own jobs
  /// throws copift::Error (the nested batch would self-deadlock waiting for
  /// the caller's own worker slot), as does a concurrent call from a second
  /// thread while a batch is in flight — use one engine per independent
  /// caller, or serialize requests in front of the pool as serve::Server
  /// does.
  bool parallel_for(std::size_t count, const std::function<void(std::size_t)>& fn,
                    const CancelToken* cancel = nullptr);

 private:
  // Per-batch state lives on the heap and is snapshotted (shared_ptr) by
  // every participating thread. A worker that wakes late and still holds a
  // finished batch finds its cursor exhausted and touches nothing else, so
  // it can never consume a newer batch's indices or call a dead closure.
  struct Batch {
    const std::function<void(std::size_t)>* fn = nullptr;
    std::size_t count = 0;
    const CancelToken* cancel = nullptr;
    std::atomic<std::size_t> next{0};
    std::atomic<std::size_t> started{0};  // jobs actually begun (<= count)
    std::size_t completed = 0;  // jobs finished or skipped; guarded by the engine mutex
    std::vector<std::exception_ptr> errors;
  };

  void worker_loop();
  /// Pull and run jobs from `batch` until its cursor is exhausted.
  void drain_batch(Batch& batch);

  std::mutex mutex_;
  std::condition_variable work_cv_;  // workers wait here for a new batch
  std::condition_variable done_cv_;  // parallel_for waits here for completion

  std::shared_ptr<Batch> batch_;  // guarded by mutex_
  std::uint64_t generation_ = 0;
  bool shutdown_ = false;

  std::vector<std::thread> workers_;
};

}  // namespace copift::engine

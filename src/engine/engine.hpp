// SimEngine: a persistent worker-thread pool for batch simulation.
//
// Every simulated run is an independent, deterministic function of
// (Program, SimParams, KernelConfig), so parameter sweeps are embarrassingly
// parallel. The engine fans jobs out across worker threads and collects
// results keyed by job index, which makes the output independent of thread
// count and scheduling order (see tests/test_engine.cpp).
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace copift::engine {

/// Parse a `--threads N` flag from a command line; returns 0 (hardware
/// concurrency) when the flag is absent. Throws copift::Error — a usage
/// error — when the flag has no value (e.g. `--threads` as the last
/// argument) or the value is malformed, negative, or absurd; silent
/// fallbacks used to mask typos like `--threads 4x` with a full-width pool.
unsigned parse_threads(int argc, char** argv);

/// Parse a `--cores v1,v2,...` flag from a command line; returns {1} (the
/// single-core paper setup) when the flag is absent. Throws copift::Error
/// on a missing value or a malformed list (empty entries, zero, negative,
/// non-numeric, out of 32-bit range).
std::vector<std::uint32_t> parse_cores_list(int argc, char** argv);

class SimEngine {
 public:
  /// Worker counts are clamped to [1, kMaxThreads].
  static constexpr unsigned kMaxThreads = 256;

  /// `threads == 0` uses the host's hardware concurrency. The calling thread
  /// participates in every batch, so `threads == 1` runs jobs inline with no
  /// worker threads at all (handy for debugging and determinism baselines).
  explicit SimEngine(unsigned threads = 0);
  ~SimEngine();

  SimEngine(const SimEngine&) = delete;
  SimEngine& operator=(const SimEngine&) = delete;

  [[nodiscard]] unsigned threads() const noexcept {
    return static_cast<unsigned>(workers_.size()) + 1;
  }

  /// Invoke `fn(i)` for every i in [0, count), possibly concurrently, and
  /// block until all jobs have finished. Job exceptions are captured per
  /// index and the one with the lowest index is rethrown after the batch
  /// drains — identical behaviour at any thread count. Not reentrant: do not
  /// call parallel_for from inside a job.
  void parallel_for(std::size_t count, const std::function<void(std::size_t)>& fn);

 private:
  // Per-batch state lives on the heap and is snapshotted (shared_ptr) by
  // every participating thread. A worker that wakes late and still holds a
  // finished batch finds its cursor exhausted and touches nothing else, so
  // it can never consume a newer batch's indices or call a dead closure.
  struct Batch {
    const std::function<void(std::size_t)>* fn = nullptr;
    std::size_t count = 0;
    std::atomic<std::size_t> next{0};
    std::size_t completed = 0;  // guarded by the engine mutex
    std::vector<std::exception_ptr> errors;
  };

  void worker_loop();
  /// Pull and run jobs from `batch` until its cursor is exhausted.
  void drain_batch(Batch& batch);

  std::mutex mutex_;
  std::condition_variable work_cv_;  // workers wait here for a new batch
  std::condition_variable done_cv_;  // parallel_for waits here for completion

  std::shared_ptr<Batch> batch_;  // guarded by mutex_
  std::uint64_t generation_ = 0;
  bool shutdown_ = false;

  std::vector<std::thread> workers_;
};

}  // namespace copift::engine

#include "engine/engine.hpp"

#include <cstdlib>
#include <cstring>

#include "common/error.hpp"

namespace copift::engine {

unsigned parse_threads(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--threads") != 0) continue;
    if (i + 1 >= argc) {
      throw Error("--threads requires a value (worker count, 0 = all hardware threads)");
    }
    const char* value = argv[i + 1];
    char* end = nullptr;
    const long v = std::strtol(value, &end, 10);
    if (end == value || *end != '\0' || v < 0 ||
        v > static_cast<long>(SimEngine::kMaxThreads)) {
      throw Error("--threads: invalid value '" + std::string(value) + "' (expected 0.." +
                  std::to_string(SimEngine::kMaxThreads) + ")");
    }
    return static_cast<unsigned>(v);
  }
  return 0;
}

std::vector<std::uint32_t> parse_cores_list(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--cores") != 0) continue;
    if (i + 1 >= argc) throw Error("--cores requires a value (e.g. --cores 1,2,4)");
    const char* list = argv[i + 1];
    const auto malformed = [&]() -> Error {
      return Error(std::string("--cores: invalid list '") + list +
                   "' (expected comma-separated positive core counts, e.g. 1,2,4)");
    };
    if (std::strchr(list, '-') != nullptr) throw malformed();
    std::vector<std::uint32_t> out;
    const char* s = list;
    while (true) {
      char* end = nullptr;
      const unsigned long v = std::strtoul(s, &end, 10);
      if (end == s || v == 0 || v > 0xFFFFFFFFul) throw malformed();
      out.push_back(static_cast<std::uint32_t>(v));
      if (*end == '\0') break;
      if (*end != ',' || end[1] == '\0') throw malformed();
      s = end + 1;
    }
    return out;
  }
  return {1};
}

SimEngine::SimEngine(unsigned threads) {
  if (threads == 0) {
    threads = std::thread::hardware_concurrency();
    if (threads == 0) threads = 1;
  }
  if (threads > kMaxThreads) threads = kMaxThreads;
  workers_.reserve(threads - 1);
  for (unsigned i = 0; i + 1 < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

SimEngine::~SimEngine() {
  {
    std::lock_guard lock(mutex_);
    shutdown_ = true;
  }
  work_cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void SimEngine::drain_batch(Batch& batch) {
  std::size_t done_here = 0;
  while (true) {
    const std::size_t i = batch.next.fetch_add(1, std::memory_order_relaxed);
    if (i >= batch.count) break;
    try {
      (*batch.fn)(i);
    } catch (...) {
      batch.errors[i] = std::current_exception();  // slot i is owned by this job
    }
    ++done_here;
  }
  if (done_here != 0) {
    std::lock_guard lock(mutex_);
    batch.completed += done_here;
    if (batch.completed == batch.count) done_cv_.notify_all();
  }
}

void SimEngine::worker_loop() {
  std::uint64_t seen = 0;
  while (true) {
    std::shared_ptr<Batch> batch;
    {
      std::unique_lock lock(mutex_);
      work_cv_.wait(lock, [&] { return shutdown_ || generation_ != seen; });
      if (shutdown_) return;
      seen = generation_;
      batch = batch_;
    }
    if (batch) drain_batch(*batch);
  }
}

void SimEngine::parallel_for(std::size_t count, const std::function<void(std::size_t)>& fn) {
  if (count == 0) return;
  auto batch = std::make_shared<Batch>();
  batch->fn = &fn;
  batch->count = count;
  batch->errors.assign(count, nullptr);
  {
    std::lock_guard lock(mutex_);
    if (batch_ != nullptr && batch_->completed != batch_->count) {
      throw Error("SimEngine::parallel_for is not reentrant");
    }
    batch_ = batch;
    ++generation_;
  }
  work_cv_.notify_all();

  // The calling thread is one of the workers.
  drain_batch(*batch);

  {
    std::unique_lock lock(mutex_);
    done_cv_.wait(lock, [&] { return batch->completed == batch->count; });
    if (batch_ == batch) batch_.reset();
  }
  for (const auto& err : batch->errors) {
    if (err) std::rethrow_exception(err);
  }
}

}  // namespace copift::engine

#include "engine/engine.hpp"

#include <cstdlib>
#include <cstring>

#include "common/error.hpp"

namespace copift::engine {

unsigned parse_threads(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--threads") != 0) continue;
    if (i + 1 >= argc) {
      throw Error("--threads requires a value (worker count, 0 = all hardware threads)");
    }
    const char* value = argv[i + 1];
    char* end = nullptr;
    const long v = std::strtol(value, &end, 10);
    if (end == value || *end != '\0' || v < 0 ||
        v > static_cast<long>(SimEngine::kMaxThreads)) {
      throw Error("--threads: invalid value '" + std::string(value) + "' (expected 0.." +
                  std::to_string(SimEngine::kMaxThreads) + ")");
    }
    return static_cast<unsigned>(v);
  }
  return 0;
}

std::vector<std::uint32_t> parse_cores_list(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--cores") != 0) continue;
    if (i + 1 >= argc) throw Error("--cores requires a value (e.g. --cores 1,2,4)");
    const char* list = argv[i + 1];
    const auto malformed = [&]() -> Error {
      return Error(std::string("--cores: invalid list '") + list +
                   "' (expected comma-separated positive core counts, e.g. 1,2,4)");
    };
    if (std::strchr(list, '-') != nullptr) throw malformed();
    std::vector<std::uint32_t> out;
    const char* s = list;
    while (true) {
      char* end = nullptr;
      const unsigned long v = std::strtoul(s, &end, 10);
      if (end == s || v == 0 || v > 0xFFFFFFFFul) throw malformed();
      out.push_back(static_cast<std::uint32_t>(v));
      if (*end == '\0') break;
      if (*end != ',' || end[1] == '\0') throw malformed();
      s = end + 1;
    }
    return out;
  }
  return {1};
}

SimEngine::SimEngine(unsigned threads) {
  if (threads == 0) {
    threads = std::thread::hardware_concurrency();
    if (threads == 0) threads = 1;
  }
  if (threads > kMaxThreads) threads = kMaxThreads;
  workers_.reserve(threads - 1);
  for (unsigned i = 0; i + 1 < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

SimEngine::~SimEngine() {
  {
    std::lock_guard lock(mutex_);
    shutdown_ = true;
  }
  work_cv_.notify_all();
  for (auto& w : workers_) w.join();
}

namespace {
// The engine whose batch the current thread is draining a job of, if any.
// Lets parallel_for detect a nested call from inside its own jobs — which
// would otherwise deadlock or throw a misleading "concurrent use" error —
// and explain the actual mistake.
thread_local const SimEngine* t_draining_engine = nullptr;
}  // namespace

void SimEngine::drain_batch(Batch& batch) {
  std::size_t done_here = 0;
  const SimEngine* const prev = t_draining_engine;
  t_draining_engine = this;
  while (true) {
    const std::size_t i = batch.next.fetch_add(1, std::memory_order_relaxed);
    if (i >= batch.count) break;
    // A cancelled batch still claims and accounts every remaining index (so
    // the completion wait below stays uniform); it just stops invoking fn.
    if (batch.cancel == nullptr || !batch.cancel->stop_requested()) {
      batch.started.fetch_add(1, std::memory_order_relaxed);
      try {
        (*batch.fn)(i);
      } catch (...) {
        batch.errors[i] = std::current_exception();  // slot i is owned by this job
      }
    }
    ++done_here;
  }
  t_draining_engine = prev;
  if (done_here != 0) {
    std::lock_guard lock(mutex_);
    batch.completed += done_here;
    if (batch.completed == batch.count) done_cv_.notify_all();
  }
}

void SimEngine::worker_loop() {
  std::uint64_t seen = 0;
  while (true) {
    std::shared_ptr<Batch> batch;
    {
      std::unique_lock lock(mutex_);
      work_cv_.wait(lock, [&] { return shutdown_ || generation_ != seen; });
      if (shutdown_) return;
      seen = generation_;
      batch = batch_;
    }
    if (batch) drain_batch(*batch);
  }
}

bool SimEngine::parallel_for(std::size_t count, const std::function<void(std::size_t)>& fn,
                             const CancelToken* cancel) {
  if (count == 0) return true;
  if (t_draining_engine == this) {
    throw Error(
        "SimEngine::parallel_for called from inside one of its own jobs; a "
        "nested batch would deadlock waiting for the worker slot the caller "
        "occupies — run the nested work inline or give it its own SimEngine");
  }
  auto batch = std::make_shared<Batch>();
  batch->fn = &fn;
  batch->count = count;
  batch->cancel = cancel;
  batch->errors.assign(count, nullptr);
  {
    std::lock_guard lock(mutex_);
    if (batch_ != nullptr && batch_->completed != batch_->count) {
      throw Error(
          "SimEngine::parallel_for called while another thread's batch is "
          "still in flight; the engine runs one batch at a time — serialize "
          "callers in front of the pool or use one SimEngine per caller");
    }
    batch_ = batch;
    ++generation_;
  }
  work_cv_.notify_all();

  // The calling thread is one of the workers.
  drain_batch(*batch);

  {
    std::unique_lock lock(mutex_);
    done_cv_.wait(lock, [&] { return batch->completed == batch->count; });
    if (batch_ == batch) batch_.reset();
  }
  for (const auto& err : batch->errors) {
    if (err) std::rethrow_exception(err);
  }
  return batch->started.load(std::memory_order_relaxed) == count;
}

}  // namespace copift::engine

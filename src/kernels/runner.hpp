// Workload execution harness: assemble a generated workload, populate its
// inputs, run it on the cluster, verify results against the golden
// references, and extract performance/energy metrics. All per-workload
// behaviour (inputs, verification, item counting) is delegated to the
// Workload handle carried by the GeneratedWorkload — the harness contains
// no per-workload dispatch.
#pragma once

#include <cstdint>
#include <memory>
#include <string_view>
#include <vector>

#include "energy/energy.hpp"
#include "kernels/kernels.hpp"
#include "sim/cluster.hpp"
#include "workload/workload.hpp"

namespace copift::kernels {

struct KernelRun {
  sim::RunResult result;
  sim::ActivityCounters total;    // whole program (all harts aggregated)
  sim::ActivityCounters region;   // between region markers 1 and 2 (main loop)
  energy::EnergyReport region_energy;
  bool verified = false;

  // Per-complex attribution, populated for multi-hart runs (config.cores >
  // 1): element h is hart h's own region delta and its share of the region
  // energy (hart 0 carries the cluster-constant and DMA terms). Empty for
  // single-core runs, where `region`/`region_energy` already are hart 0.
  std::vector<sim::ActivityCounters> hart_region;
  std::vector<energy::EnergyReport> hart_energy;

  [[nodiscard]] double ipc() const noexcept { return region.ipc(); }
  [[nodiscard]] double power_mw() const noexcept { return region_energy.power_mw(); }
  [[nodiscard]] double energy_nj() const noexcept { return region_energy.energy_nj(); }
};

/// Assemble a generated workload into a shared immutable program. The result
/// may be handed to many clusters at once (runs only read it), so a sweep
/// assembles each program exactly once and fans the runs out.
std::shared_ptr<const rvasm::Program> assemble_kernel(const GeneratedKernel& kernel);

/// Assemble + load + populate inputs + run + verify. Throws copift::Error on
/// assembly/simulation problems or verification mismatches (set
/// `verify=false` to skip the golden check, e.g. for parameter sweeps).
KernelRun run_kernel(const GeneratedKernel& kernel, const sim::SimParams& params = {},
                     bool verify = true,
                     const energy::EnergyParams& energy_params = {});

/// Same, but runs a pre-assembled shared program (no per-run program copy);
/// `program` must have been assembled from `kernel.source`.
KernelRun run_kernel(const GeneratedKernel& kernel,
                     std::shared_ptr<const rvasm::Program> program,
                     const sim::SimParams& params = {}, bool verify = true,
                     const energy::EnergyParams& energy_params = {});

/// Steady-state metrics via the two-size marginal method: run the workload at
/// n1 and n2 > n1 and report marginal IPC/power over the extra work. This
/// removes prologue/epilogue and setup overheads exactly (paper Fig. 2
/// reports steady-state iterations).
struct SteadyMetrics {
  double ipc = 0.0;
  double power_mw = 0.0;
  double cycles_per_item = 0.0;   // marginal cycles per element/sample
  double energy_pj_per_item = 0.0;
  std::uint64_t delta_cycles = 0;
};
SteadyMetrics steady_metrics(std::string_view workload, Variant variant,
                             const KernelConfig& config, std::uint32_t n1, std::uint32_t n2,
                             const sim::SimParams& params = {},
                             const energy::EnergyParams& energy_params = {});
/// Legacy-enum wrapper.
SteadyMetrics steady_metrics(KernelId id, Variant variant, const KernelConfig& config,
                             std::uint32_t n1, std::uint32_t n2,
                             const sim::SimParams& params = {},
                             const energy::EnergyParams& energy_params = {});

/// Derive steady-state metrics from two completed runs that performed
/// items1 < items2 work items. Shared by steady_metrics() and the engine's
/// steady-mode experiments.
SteadyMetrics steady_from_runs(const KernelRun& r1, const KernelRun& r2,
                               std::uint64_t items1, std::uint64_t items2);

/// Delegates to the workload carried by `kernel` (kept as free functions for
/// the single-run CLI path and custom experiments).
void populate_inputs(sim::Cluster& cluster, const GeneratedKernel& kernel);
void verify_outputs(sim::Cluster& cluster, const GeneratedKernel& kernel);

/// Deterministic input vectors (shared by populate/verify/tests).
std::vector<double> exp_inputs(std::uint32_t n, std::uint32_t seed);
std::vector<float> log_inputs(std::uint32_t n, std::uint32_t seed);

}  // namespace copift::kernels

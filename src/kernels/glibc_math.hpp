// Reference implementations of the transcendental kernels, following the
// GNU C Library's table-based algorithms (glibc v2.40 sysdeps/ieee754):
//   exp: 32-entry exp2 table + degree-3 polynomial (__expf path, performed
//        in double precision on double inputs, matching paper Fig. 1b),
//   log: 16-entry {invc, logc} table + degree-3 polynomial (__logf path).
//
// These are bit-exact oracles for the assembly kernels: both use the same
// constants, the same table and the same FMA contraction order.
#pragma once

#include <array>
#include <cstdint>
#include <span>

namespace copift::kernels {

// ---- exp (paper Fig. 1a: y[i] = expf(x[i]), evaluated in double) ----

inline constexpr unsigned kExpTableBits = 5;
inline constexpr unsigned kExpTableSize = 1u << kExpTableBits;  // 32

/// Polynomial/scaling constants of the glibc expf algorithm (N = 32).
struct ExpConstants {
  double inv_ln2_n;  // N / ln(2)
  double shift;      // 0x1.8p52 round-to-int shift
  double c0, c1, c2; // poly coefficients (c3 == 1.0)
};

[[nodiscard]] ExpConstants exp_constants() noexcept;

/// T[i] = asuint64(2^(i/N)) - (i << (52 - kExpTableBits)).
[[nodiscard]] const std::array<std::uint64_t, kExpTableSize>& exp_table() noexcept;

/// One element of the reference kernel (exactly the Fig. 1b dataflow).
[[nodiscard]] double ref_exp(double x) noexcept;

/// Vector form.
void ref_exp(std::span<const double> x, std::span<double> y) noexcept;

// ---- log (double variant of the glibc logf algorithm) ----

inline constexpr unsigned kLogTableBits = 4;
inline constexpr unsigned kLogTableSize = 1u << kLogTableBits;  // 16

struct LogConstants {
  double ln2;
  double a0, a1, a2;  // poly coefficients
  std::uint32_t off;  // exponent bias offset 0x3f330000
};

[[nodiscard]] LogConstants log_constants() noexcept;

struct LogTableEntry {
  double invc;
  double logc;
};

[[nodiscard]] const std::array<LogTableEntry, kLogTableSize>& log_table() noexcept;

/// Index and scaled mantissa extraction (the integer thread's work).
struct LogDecomposition {
  std::uint32_t index;   // table index
  std::int32_t k;        // exponent
  std::uint32_t iz_bits; // float bits of the scaled mantissa z
};
[[nodiscard]] LogDecomposition log_decompose(float x) noexcept;

/// One element of the reference kernel (float input, double result).
[[nodiscard]] double ref_log(float x) noexcept;

void ref_log(std::span<const float> x, std::span<double> y) noexcept;

}  // namespace copift::kernels

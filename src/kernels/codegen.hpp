// Small helper for emitting assembly text from C++ kernel generators.
#pragma once

#include <cstdint>
#include <sstream>
#include <string>

namespace copift::kernels {

class AsmBuilder {
 public:
  /// Append one instruction/directive line (indented).
  AsmBuilder& l(const std::string& line) {
    os_ << "  " << line << "\n";
    return *this;
  }
  /// Append a label definition.
  AsmBuilder& label(const std::string& name) {
    os_ << name << ":\n";
    return *this;
  }
  /// Append a comment line.
  AsmBuilder& c(const std::string& text) {
    os_ << "  # " << text << "\n";
    return *this;
  }
  /// Append raw text (multi-line allowed).
  AsmBuilder& raw(const std::string& text) {
    os_ << text;
    return *this;
  }

  [[nodiscard]] std::string str() const { return os_.str(); }

 private:
  std::ostringstream os_;
};

/// Variadic string concatenation: cat("lw a0, ", off, "(", base, ")").
template <typename... Parts>
std::string cat(Parts&&... parts) {
  std::ostringstream os;
  (os << ... << parts);
  return os.str();
}

/// Emit a double constant as a `.dword` with its bit pattern.
std::string dword_of(double value);
/// Emit a raw 64-bit word as a `.dword`.
std::string dword_of(std::uint64_t bits);

/// Emit `dst = src + imm`, falling back to li+add through `tmp` when the
/// immediate exceeds the addi range (large COPIFT block sizes). `tmp` may
/// equal `dst` when `dst != src`.
void emit_add_imm(AsmBuilder& b, const std::string& dst, const std::string& src,
                  std::int64_t imm, const std::string& tmp);

}  // namespace copift::kernels

// The six paper kernels as workload-registry entries. Each class bundles the
// assembly generator (kernel_internal.hpp), the input populator and the
// bit-exact golden verifier that used to be hardwired into the runner's
// enum switches.
#include <memory>
#include <string>

#include "common/bits.hpp"
#include "common/error.hpp"
#include "kernels/glibc_math.hpp"
#include "kernels/kernel_internal.hpp"
#include "kernels/kernels.hpp"
#include "kernels/montecarlo.hpp"
#include "kernels/runner.hpp"
#include "sim/cluster.hpp"
#include "workload/hart_slice.hpp"
#include "workload/tiled_buffer.hpp"
#include "workload/workload.hpp"

namespace copift::kernels {
namespace {

using workload::ConfigError;
using workload::Variant;
using workload::WorkloadConfig;

/// Shared validation of the paper kernels' blocked-loop structure: the
/// baseline needs n to be a multiple of the unroll factor; COPIFT tiles n
/// into at least two blocks whose size is a multiple of the unroll factor.
void validate_blocked(const std::string& name, Variant variant, const WorkloadConfig& cfg,
                      std::uint32_t unroll) {
  const auto fail = [&](const std::string& what) { throw ConfigError(name, variant, what); };
  if (variant == Variant::kBaseline) {
    if (cfg.n % unroll != 0) {
      fail("n=" + std::to_string(cfg.n) + " must be a multiple of the unroll factor " +
           std::to_string(unroll));
    }
    return;
  }
  if (cfg.block == 0 || cfg.block % unroll != 0) {
    fail("block=" + std::to_string(cfg.block) + " must be a positive multiple of the unroll "
         "factor " + std::to_string(unroll));
  }
  if (cfg.n % cfg.block != 0) {
    fail("block=" + std::to_string(cfg.block) + " does not divide n=" + std::to_string(cfg.n));
  }
  if (cfg.n / cfg.block < 2) {
    fail("n=" + std::to_string(cfg.n) + " with block=" + std::to_string(cfg.block) +
         " yields fewer than 2 blocks (the software pipeline needs a prologue block)");
  }
}

/// Multi-hart partitioning checks: each hart's contiguous chunk must obey
/// the same blocked-loop structure the single-core variant needs.
void validate_harts(const std::string& name, Variant variant, const WorkloadConfig& cfg,
                    std::uint32_t unroll) {
  if (cfg.cores <= 1) return;
  workload::HartSlice::validate(name, variant, cfg, unroll, "the unroll factor");
  if (variant != Variant::kCopift) return;
  const std::uint32_t chunk = cfg.n / cfg.cores;
  const auto fail = [&](const std::string& what) { throw ConfigError(name, variant, what); };
  if (chunk % cfg.block != 0) {
    fail("block=" + std::to_string(cfg.block) + " does not divide the per-hart chunk " +
         std::to_string(chunk) + " (n=" + std::to_string(cfg.n) + " / cores=" +
         std::to_string(cfg.cores) + ")");
  }
  if (chunk / cfg.block < 2) {
    fail("per-hart chunk " + std::to_string(chunk) + " with block=" +
         std::to_string(cfg.block) +
         " yields fewer than 2 blocks per hart (the software pipeline needs a prologue "
         "block)");
  }
}

/// Common shape of the paper kernels: both variants supported, n=1920/B=96
/// defaults (the paper's steady-state operating point), blocked-loop
/// validation parameterized by the kernel's unroll factor, and multi-hart
/// execution via contiguous mhartid slicing (cores=1 keeps the historical
/// single-core codegen byte-for-byte).
class PaperWorkload : public workload::Workload {
 public:
  [[nodiscard]] WorkloadConfig default_config() const override {
    WorkloadConfig cfg;
    cfg.n = 1920;
    cfg.block = 96;
    return cfg;
  }

  [[nodiscard]] bool multi_hart_capable(Variant) const override { return true; }

  void validate(Variant variant, const WorkloadConfig& config) const override {
    Workload::validate(variant, config);
    validate_blocked(name(), variant, config, unroll());
    if (config.tile != 0) {
      // Tiled runs stream DRAM-resident data; the per-hart-per-tile chunk
      // takes over the structural role of the per-hart chunk.
      validate_tiled(variant, config);
      return;
    }
    validate_harts(name(), variant, config, unroll());
  }

 protected:
  /// Elements (exp/log) or samples (MC) per unrolled loop iteration.
  [[nodiscard]] virtual std::uint32_t unroll() const = 0;

  /// Tiled-structure checks; only reachable for workloads whose
  /// tiled_capable() returns true (Workload::validate rejects the rest).
  virtual void validate_tiled(Variant, const WorkloadConfig&) const {}
};

// --- exp / log (transcendental vector kernels) ------------------------------

class ExpWorkload final : public PaperWorkload {
 public:
  [[nodiscard]] std::string name() const override { return "exp"; }
  [[nodiscard]] std::string description() const override {
    return "y[i] = exp(x[i]), glibc-style table+poly over doubles (paper Fig. 1)";
  }

  [[nodiscard]] bool tiled_capable(Variant) const override { return true; }

  [[nodiscard]] std::string generate(Variant variant,
                                     const WorkloadConfig& config) const override {
    return generate_exp(variant, config);
  }

  void populate_inputs(sim::Cluster& cluster, const WorkloadConfig& config) const override {
    const std::uint32_t base = cluster.program().symbol("xarr");
    const auto x = exp_inputs(config.n, config.seed);
    for (std::uint32_t i = 0; i < config.n; ++i) {
      cluster.memory().store64(base + i * 8, copift::bit_cast<std::uint64_t>(x[i]));
    }
  }

  void verify_outputs(sim::Cluster& cluster, Variant,
                      const WorkloadConfig& config) const override {
    const auto x = exp_inputs(config.n, config.seed);
    workload::verify_doubles(cluster, name(), "yarr", config.n,
                             [&](std::uint32_t i) { return ref_exp(x[i]); });
  }

 protected:
  [[nodiscard]] std::uint32_t unroll() const override { return 4; }

  void validate_tiled(Variant variant, const WorkloadConfig& cfg) const override {
    // x + y are 16 bytes per element; exp_tab + exp_const + per-hart rows
    // stay TCDM-resident alongside the double buffers.
    if (variant == Variant::kCopift) {
      const std::uint32_t arena = 3 * 3 * cfg.block * 8 * cfg.cores;
      // The steady-state do-while needs prologue, steady and epilogue
      // blocks, i.e. at least 3 blocks per hart per tile.
      workload::TiledBuffer::validate(name(), variant, cfg, cfg.block, "the block size",
                                      3, 16, arena + 4096);
    } else {
      const std::uint32_t spill = 2 * 4 * 8 * cfg.cores;
      workload::TiledBuffer::validate(name(), variant, cfg, 4, "the unroll factor",
                                      1, 16, spill + 4096);
    }
  }
};

class LogWorkload final : public PaperWorkload {
 public:
  [[nodiscard]] std::string name() const override { return "log"; }
  [[nodiscard]] std::string description() const override {
    return "y[i] = log(x[i]), glibc-style table+poly (ISSR + fcvt.d.w.cop)";
  }

  [[nodiscard]] std::string generate(Variant variant,
                                     const WorkloadConfig& config) const override {
    return generate_log(variant, config);
  }

  void populate_inputs(sim::Cluster& cluster, const WorkloadConfig& config) const override {
    const std::uint32_t base = cluster.program().symbol("xarr");
    const auto x = log_inputs(config.n, config.seed);
    for (std::uint32_t i = 0; i < config.n; ++i) {
      cluster.memory().store32(base + i * 4, copift::bit_cast<std::uint32_t>(x[i]));
    }
  }

  void verify_outputs(sim::Cluster& cluster, Variant,
                      const WorkloadConfig& config) const override {
    const auto x = log_inputs(config.n, config.seed);
    workload::verify_doubles(cluster, name(), "yarr", config.n,
                             [&](std::uint32_t i) { return ref_log(x[i]); });
  }

 protected:
  [[nodiscard]] std::uint32_t unroll() const override { return 4; }
};

// --- Monte Carlo family -----------------------------------------------------

class McWorkload final : public PaperWorkload {
 public:
  McWorkload(std::string name, bool poly, bool xoshiro)
      : name_(std::move(name)), poly_(poly), xoshiro_(xoshiro) {}

  [[nodiscard]] std::string name() const override { return name_; }
  [[nodiscard]] std::string description() const override {
    return std::string("Monte Carlo ") + (poly_ ? "polynomial integration" : "pi estimation") +
           " with the " + (xoshiro_ ? "xoshiro128+" : "LCG") + " PRNG";
  }

  [[nodiscard]] std::string generate(Variant variant,
                                     const WorkloadConfig& config) const override {
    return generate_mc(variant, config, poly_, xoshiro_);
  }

  // Monte Carlo kernels seed their PRNGs from immediates; nothing to populate.

  void verify_outputs(sim::Cluster& cluster, Variant variant,
                      const WorkloadConfig& config) const override {
    const std::uint32_t addr = cluster.program().symbol("result");
    std::uint64_t got;
    if (variant == Variant::kBaseline) {
      got = cluster.memory().load32(addr);
    } else {
      got = static_cast<std::uint64_t>(
          copift::bit_cast<double>(cluster.memory().load64(addr)));
    }
    const std::uint64_t expected = expected_hits(variant, config);
    if (got != expected) {
      throw Error(name_ + " verification failed: got " + std::to_string(got) +
                  " hits, expected " + std::to_string(expected));
    }
  }

 protected:
  [[nodiscard]] std::uint32_t unroll() const override { return kMcUnroll; }

 private:
  [[nodiscard]] std::uint64_t expected_hits(Variant variant,
                                            const WorkloadConfig& cfg) const {
    // The COPIFT poly kernels evaluate an even/odd split (raw-domain, which
    // differs from the unit-domain reference only by exact power-of-two
    // scalings); the baselines evaluate Horner.
    const PolyScheme scheme =
        variant == Variant::kCopift ? PolyScheme::kEvenOdd : PolyScheme::kHorner;
    if (poly_) {
      return xoshiro_ ? ref_poly_hits_xoshiro(cfg.seed, cfg.n, scheme)
                      : ref_poly_hits_lcg(cfg.seed, cfg.n, scheme);
    }
    return xoshiro_ ? ref_pi_hits_xoshiro(cfg.seed, cfg.n) : ref_pi_hits_lcg(cfg.seed, cfg.n);
  }

  std::string name_;
  bool poly_;
  bool xoshiro_;
};

const workload::Registrar kExpReg(std::make_shared<ExpWorkload>());
const workload::Registrar kLogReg(std::make_shared<LogWorkload>());
const workload::Registrar kPolyLcgReg(
    std::make_shared<McWorkload>("poly_lcg", /*poly=*/true, /*xoshiro=*/false));
const workload::Registrar kPiLcgReg(
    std::make_shared<McWorkload>("pi_lcg", /*poly=*/false, /*xoshiro=*/false));
const workload::Registrar kPolyXoshiroReg(
    std::make_shared<McWorkload>("poly_xoshiro128p", /*poly=*/true, /*xoshiro=*/true));
const workload::Registrar kPiXoshiroReg(
    std::make_shared<McWorkload>("pi_xoshiro128p", /*poly=*/false, /*xoshiro=*/true));

}  // namespace
}  // namespace copift::kernels

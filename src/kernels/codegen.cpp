#include "kernels/codegen.hpp"

#include <iomanip>

#include "common/bits.hpp"

namespace copift::kernels {

std::string dword_of(std::uint64_t bits) {
  std::ostringstream os;
  os << ".dword 0x" << std::hex << std::setw(16) << std::setfill('0') << bits;
  return os.str();
}

std::string dword_of(double value) { return dword_of(copift::bit_cast<std::uint64_t>(value)); }

void emit_add_imm(AsmBuilder& b, const std::string& dst, const std::string& src,
                  std::int64_t imm, const std::string& tmp) {
  if (imm >= -2048 && imm <= 2047) {
    b.l(cat("addi ", dst, ", ", src, ", ", imm));
  } else {
    b.l(cat("li ", tmp, ", ", imm));
    b.l(cat("add ", dst, ", ", src, ", ", tmp));
  }
}

}  // namespace copift::kernels

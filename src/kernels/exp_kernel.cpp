// Assembly generators for the `exp` kernel (paper Fig. 1): the glibc-style
// table-based exponential over a vector of doubles.
//
// Baseline: the Fig. 1b instruction mix, unrolled 4x and scheduled op-major
// so independent elements hide FPU and load latencies (the paper's
// "Snitch-optimized RV32G baseline").
//
// COPIFT: the full Fig. 1d-1j pipeline — three phases (FP front, integer
// table lookup, FP scale), loop tiling with block size B, triple-buffered
// slot arena, SSR-mapped streams, two FREP loops per block iteration and a
// copift.barrier for inter-iteration synchronization.
#include <string>

#include "common/error.hpp"
#include "kernels/codegen.hpp"
#include "kernels/glibc_math.hpp"
#include "kernels/kernel_internal.hpp"
#include "workload/hart_slice.hpp"
#include "workload/tiled_buffer.hpp"

namespace copift::kernels {

namespace {

using workload::HartSlice;

constexpr unsigned kUnroll = 4;

/// Tiled (tile > 0) runs stream x/y between DRAM and TCDM double buffers;
/// the table, constants and arena/spill rows stay TCDM-resident.
workload::TiledBuffer make_exp_tiled(const KernelConfig& cfg) {
  return workload::TiledBuffer(cfg, {{"xarr", workload::TiledBuffer::kIn, 8},
                                     {"yarr", workload::TiledBuffer::kOut, 8}});
}

// Per-slot integer working registers for the table-lookup phase.
const char* b0(unsigned u) {
  static constexpr const char* kRegs[] = {"a0", "a5", "s5", "s8"};
  return kRegs[u];
}
const char* b1(unsigned u) {
  static constexpr const char* kRegs[] = {"a1", "a6", "s6", "s9"};
  return kRegs[u];
}
const char* b2(unsigned u) {
  static constexpr const char* kRegs[] = {"a2", "a7", "s7", "s10"};
  return kRegs[u];
}

void emit_exp_data(AsmBuilder& b, const KernelConfig& cfg, bool copift,
                   const workload::TiledBuffer& tiled) {
  const ExpConstants cst = exp_constants();
  b.raw(".data\n");
  b.l(".align 3");
  b.label("exp_tab");
  for (const std::uint64_t entry : exp_table()) b.l(dword_of(entry));
  b.label("exp_const");
  b.l(dword_of(cst.inv_ln2_n));
  b.l(dword_of(cst.shift));
  b.l(dword_of(cst.c0));
  b.l(dword_of(cst.c1));
  b.l(dword_of(cst.c2));
  b.l(dword_of(1.0));
  if (copift) {
    // Slot arena: 3 slots x fields [ki | w | t], each field B doubles.
    // One arena row per hart — harts triple-buffer independently.
    b.label("arena");
    b.l(cat(".space ", 3 * 3 * cfg.block * 8 * cfg.cores));
  } else {
    // One row of spill buffers per hart.
    b.label("ki_buf");
    b.l(cat(".space ", kUnroll * 8 * cfg.cores));
    b.label("t_buf");
    b.l(cat(".space ", kUnroll * 8 * cfg.cores));
  }
  if (tiled.enabled()) {
    // Real DRAM traffic: x/y live in DRAM, staged through double buffers.
    // The artificial dram_in/dram_out staging stream is superseded.
    tiled.emit_data(b);
    return;
  }
  b.label("xarr");
  b.l(cat(".space ", cfg.n * 8));
  b.label("yarr");
  b.l(cat(".space ", cfg.n * 8));
  // DRAM staging exercised by the concurrent DMA stream (models the
  // double-buffered input/output movement of the paper's setup; the Monte
  // Carlo kernels leave the DMA idle — paper Section III-B).
  b.raw(".section .dram\n");
  b.label("dram_in");
  b.l(cat(".space ", cfg.n * 8));
  b.label("dram_out");
  b.l(cat(".space ", cfg.n * 8));
  b.raw(".text\n");
}

void emit_load_constants(AsmBuilder& b) {
  b.l("la s0, exp_const");
  for (unsigned i = 0; i < 6; ++i) b.l(cat("fld fs", i, ", ", i * 8, "(s0)"));
}

void emit_dma_stream(AsmBuilder& b, std::uint32_t bytes) {
  b.c("concurrent DMA stream (input/output staging of the next problem)");
  b.l("la s1, dram_in");
  b.l("dmsrc s1");
  b.l("la s1, dram_out");
  b.l("dmdst s1");
  b.l(cat("li s1, ", bytes));
  b.l("dmcpy s1, s1");
}

/// The integer table-lookup for 4 elements: ki values read at `rp` (+8i),
/// t values written at `wp` (+8i). Exactly Fig. 1b instructions 5-14.
void emit_int_lookup4(AsmBuilder& b, const std::string& rp, const std::string& wp) {
  for (unsigned u = 0; u < kUnroll; ++u) b.l(cat("lw ", b0(u), ", ", u * 8, "(", rp, ")"));
  for (unsigned u = 0; u < kUnroll; ++u) b.l(cat("andi ", b1(u), ", ", b0(u), ", 31"));
  for (unsigned u = 0; u < kUnroll; ++u) b.l(cat("slli ", b1(u), ", ", b1(u), ", 3"));
  for (unsigned u = 0; u < kUnroll; ++u) b.l(cat("add ", b1(u), ", t0, ", b1(u)));
  for (unsigned u = 0; u < kUnroll; ++u) b.l(cat("lw ", b2(u), ", 0(", b1(u), ")"));
  for (unsigned u = 0; u < kUnroll; ++u) b.l(cat("lw ", b1(u), ", 4(", b1(u), ")"));
  for (unsigned u = 0; u < kUnroll; ++u) b.l(cat("slli ", b0(u), ", ", b0(u), ", 15"));
  for (unsigned u = 0; u < kUnroll; ++u) b.l(cat("sw ", b2(u), ", ", u * 8, "(", wp, ")"));
  for (unsigned u = 0; u < kUnroll; ++u) b.l(cat("add ", b0(u), ", ", b0(u), ", ", b1(u)));
  for (unsigned u = 0; u < kUnroll; ++u) b.l(cat("sw ", b0(u), ", ", u * 8 + 4, "(", wp, ")"));
}

/// The Fig. 1b loop over one run of elements: x at a3, y at a4, spill rows at
/// t1/t2, exp_tab at t0, iteration count preloaded in t3 (shared by the
/// untiled program and each tile of the tiled one).
void emit_baseline_loop(AsmBuilder& b) {
  b.label("body_begin");
  b.c("FP front (Fig. 1b inst. 1-4), op-major over 4 elements");
  for (unsigned u = 0; u < kUnroll; ++u) b.l(cat("fld fa", u, ", ", u * 8, "(a3)"));
  for (unsigned u = 0; u < kUnroll; ++u) b.l(cat("fmul.d fa", u, ", fs0, fa", u));
  for (unsigned u = 0; u < kUnroll; ++u) b.l(cat("fadd.d fa", 4 + u, ", fa", u, ", fs1"));
  for (unsigned u = 0; u < kUnroll; ++u) b.l(cat("fsd fa", 4 + u, ", ", u * 8, "(t1)"));
  b.c("integer table lookup (inst. 5-14)");
  emit_int_lookup4(b, "t1", "t2");
  b.c("FP tail (inst. 15-23)");
  for (unsigned u = 0; u < kUnroll; ++u) b.l(cat("fsub.d fa", 4 + u, ", fa", 4 + u, ", fs1"));
  for (unsigned u = 0; u < kUnroll; ++u) b.l(cat("fsub.d fa", u, ", fa", u, ", fa", 4 + u));
  for (unsigned u = 0; u < kUnroll; ++u) b.l(cat("fmadd.d ft", u, ", fs2, fa", u, ", fs3"));
  for (unsigned u = 0; u < kUnroll; ++u) b.l(cat("fld ft", 4 + u, ", ", u * 8, "(t2)"));
  for (unsigned u = 0; u < kUnroll; ++u) b.l(cat("fmadd.d fa", 4 + u, ", fs4, fa", u, ", fs5"));
  for (unsigned u = 0; u < kUnroll; ++u) b.l(cat("fmul.d fa", u, ", fa", u, ", fa", u));
  for (unsigned u = 0; u < kUnroll; ++u) {
    b.l(cat("fmadd.d fa", 4 + u, ", ft", u, ", fa", u, ", fa", 4 + u));
  }
  for (unsigned u = 0; u < kUnroll; ++u) b.l(cat("fmul.d fa", 4 + u, ", fa", 4 + u, ", ft", 4 + u));
  for (unsigned u = 0; u < kUnroll; ++u) b.l(cat("fsd fa", 4 + u, ", ", u * 8, "(a4)"));
  b.l(cat("addi a3, a3, ", kUnroll * 8));
  b.l(cat("addi a4, a4, ", kUnroll * 8));
  b.l("addi t3, t3, -1");
  b.l("bnez t3, body_begin");
  b.label("body_end");
}

std::string generate_baseline(const KernelConfig& cfg) {
  if (cfg.n % kUnroll != 0) throw Error(cat("exp/baseline: n=", cfg.n, " must be a multiple of 4"));
  const HartSlice slice(cfg);
  workload::TiledBuffer tiled = make_exp_tiled(cfg);
  AsmBuilder b;
  emit_exp_data(b, cfg, /*copift=*/false, tiled);
  b.label("_start");
  if (tiled.enabled()) {
    b.l("la t0, exp_tab");
    b.l("la t1, ki_buf");
    b.l("la t2, t_buf");
    slice.read_hartid(b, "t5", "partition: this hart's tile slice and spill-buffer row");
    slice.offset_by_rows(b, "t5", kUnroll * 8, {"t1", "t2"}, "t6", "a0");
    emit_load_constants(b);
    tiled.prologue(b, slice);
    b.l("csrwi region, 1");
    b.label("tile_loop");
    tiled.hart0_stage(b, slice);
    tiled.compute_base(b, "a3", 0, "t5", "t6", "a0");
    tiled.compute_base(b, "a4", 1, "t5", "t6", "a0");
    b.l(cat("li t3, ", tiled.chunk() / kUnroll));
    emit_baseline_loop(b);
    b.l("csrr t6, fpss");  // land the offloaded fsd stores (t0 keeps exp_tab)
    tiled.tile_epilogue(b, slice, "tile_loop");
    b.l("csrwi region, 2");
    tiled.final_store(b, slice);
    slice.epilogue(b);
    return b.str();
  }
  b.l("la a3, xarr");
  b.l("la a4, yarr");
  b.l("la t0, exp_tab");
  b.l("la t1, ki_buf");
  b.l("la t2, t_buf");
  slice.read_hartid(b, "t5", "partition: this hart's x/y chunk and spill-buffer row");
  slice.offset_by_elements(b, "t5", 8, {"a3", "a4"}, "t6", "a0");
  slice.offset_by_rows(b, "t5", kUnroll * 8, {"t1", "t2"}, "t6", "a0");
  b.l(cat("li t3, ", slice.chunk() / kUnroll));
  emit_load_constants(b);
  slice.begin_hart0_only(b, "t5", "dma_done");  // the DMA engine is shared
  emit_dma_stream(b, cfg.n * 8);
  slice.end_hart0_only(b, "dma_done");
  b.l("csrwi region, 1");
  emit_baseline_loop(b);
  b.l("csrwi region, 2");
  b.l("csrr t0, fpss");
  slice.epilogue(b);
  return b.str();
}

// ---------------------------------------------------------------------------
// COPIFT variant
// ---------------------------------------------------------------------------

/// Phase 0 FREP body, unrolled 2x (element pair A/B per iteration, op-major
/// so the two dependency chains interleave and hide FPU latency): computes
/// ki and the polynomial w from x. A regs: fa0..fa4; B regs: ft3..ft7.
void emit_frep_a(AsmBuilder& b, std::uint32_t block) {
  b.c("frep A: phase 0 (reads x on ft0, writes ki+w on ft1), 2x unrolled");
  b.l("scfgwi s0, 33");   // lane1 bound0 <- 1 (pair dim of the 3-D write)
  b.l("scfgwi a3, 24");   // lane0 RPTR0 <- x block
  b.l("scfgwi s2, 62");   // lane1 WPTR2 <- ki/w slot (3-D pair/field/group)
  b.l("frep.o t4, 18");
  b.l("fmul.d fa0, fs0, ft0");        // zA = InvLn2N * xA
  b.l("fmul.d ft3, fs0, ft0");        // zB
  b.l("fadd.d fa1, fa0, fs1");        // kdA = z + SHIFT
  b.l("fadd.d ft4, ft3, fs1");        // kdB
  b.l("fmv.d ft1, fa1");              // emit kiA (low word of kd)
  b.l("fmv.d ft1, ft4");              // emit kiB
  b.l("fsub.d fa2, fa1, fs1");        // kd2A
  b.l("fsub.d ft5, ft4, fs1");        // kd2B
  b.l("fsub.d fa0, fa0, fa2");        // rA = z - kd2
  b.l("fsub.d ft3, ft3, ft5");        // rB
  b.l("fmadd.d fa3, fs2, fa0, fs3");  // p1A = C0*r + C1
  b.l("fmadd.d ft6, fs2, ft3, fs3");  // p1B
  b.l("fmadd.d fa4, fs4, fa0, fs5");  // p2A = C2*r + 1
  b.l("fmadd.d ft7, fs4, ft3, fs5");  // p2B
  b.l("fmul.d fa0, fa0, fa0");        // r2A
  b.l("fmul.d ft3, ft3, ft3");        // r2B
  b.l("fmadd.d ft1, fa3, fa0, fa4");  // emit wA = p1*r2 + p2
  b.l("fmadd.d ft1, ft6, ft3, ft7");  // emit wB
  emit_add_imm(b, "a3", "a3", block * 8, "t6");
}

/// Phase 2 FREP body: y = w * s with w on lane ft2 and s on lane ft1 (two
/// lanes so each fmul needs only one element per lane per cycle — one
/// element of y per cycle in steady state). Unrolled 2x to share the B/2-1
/// repetition register with frep A.
void emit_frep_b(AsmBuilder& b, std::uint32_t block) {
  b.c("frep B: phase 2 (reads w on ft2 and t on ft1, writes y on ft0)");
  b.l("scfgwi s11, 33");  // lane1 bound0 <- B-1 (1-D read of the t field)
  emit_add_imm(b, "t6", "s4", block * 8, "t6");  // w field of the w/t slot
  b.l("scfgwi t6, 88");   // lane2 RPTR0 <- w (1-D)
  emit_add_imm(b, "t6", "s4", 2 * block * 8, "t6");  // t field
  b.l("scfgwi t6, 56");   // lane1 RPTR0 <- t (1-D)
  b.l("scfgwi a4, 28");   // lane0 WPTR0 <- y block
  b.l("frep.o t4, 2");
  b.l("fmul.d ft0, ft2, ft1");  // yA = wA * sA
  b.l("fmul.d ft0, ft2, ft1");  // yB
  emit_add_imm(b, "a4", "a4", block * 8, "t6");
}

/// Integer phase 1 over one block (slot base in s3).
void emit_int_phase(AsmBuilder& b, std::uint32_t block, unsigned site) {
  b.c("integer phase 1: table lookup over the block");
  b.l("mv t5, s3");
  emit_add_imm(b, "s1", "s3", 2 * block * 8, "s1");
  emit_add_imm(b, "t2", "s3", block * 8, "t2");
  b.label(cat("int_loop_", site));
  emit_int_lookup4(b, "t5", "s1");
  b.l("addi t5, t5, 32");
  b.l("addi s1, s1, 32");
  b.l(cat("bne t5, t2, int_loop_", site));
}

void emit_rotate(AsmBuilder& b) {
  b.c("rotate slot roles: kiw -> int -> wt -> kiw");
  b.l("mv t6, s3");
  b.l("mv s3, s2");
  b.l("mv s2, s4");
  b.l("mv s4, t6");
}

/// The SSR lane shapes shared by every block (and, tiled, every tile):
/// geometry depends only on the block size, so it is configured once.
/// Leaves the constants s0 = 1 and s11 = B-1 live. Clobbers t6.
void emit_ssr_shapes(AsmBuilder& b, std::uint32_t block) {
  b.c("static SSR shapes: lane0 1-D (B) for x reads / y writes; lane1 is a");
  b.c("3-D pair/field/group write (frep A) or a 1-D t read (frep B) — its");
  b.c("bound0 toggles per arm; lane2 is a 1-D w read");
  b.l("li s0, 1");                      // constant: pair-dim bound
  b.l(cat("li s11, ", block - 1));      // constant: 1-D bound
  b.l("scfgwi s11, 1");   // lane0 bound0 = B-1
  b.l("li t6, 8");
  b.l("scfgwi t6, 5");    // lane0 stride0 = 8
  // lane1: stride0 = 8; d1 = field ki->w (2 x B*8), d2 = group (B/2 x 16B).
  b.l("li t6, 8");
  b.l("scfgwi t6, 37");                 // stride0 = 8
  b.l("li t6, 1");
  b.l("scfgwi t6, 34");                 // bound1 = 1
  b.l(cat("li t6, ", block * 8));
  b.l("scfgwi t6, 38");                 // stride1 = B*8
  b.l(cat("li t6, ", block / 2 - 1));
  b.l("scfgwi t6, 35");                 // bound2 = B/2-1
  b.l("li t6, 16");
  b.l("scfgwi t6, 39");                 // stride2 = 16
  // lane2: 1-D read of B doubles.
  b.l("scfgwi s11, 65");                // bound0 = B-1
  b.l("li t6, 8");
  b.l("scfgwi t6, 69");                 // stride0 = 8
}

/// The three-phase software pipeline over one run of nb blocks (x at a3, y
/// at a4, arena slots in s2/s3/s4, steady count nb-2 preloaded in t3):
/// prologue (2 blocks), steady loop, epilogue (2 blocks). Shared by the
/// untiled program and each tile of the tiled one.
void emit_copift_pipeline(AsmBuilder& b, std::uint32_t block) {
  b.c("prologue j'=0: phase 0 of block 0");
  emit_frep_a(b, block);
  emit_rotate(b);
  b.c("prologue j'=1: phase 0 of block 1, integer phase of block 0");
  emit_frep_a(b, block);
  b.l("copift.barrier");
  emit_int_phase(b, block, 0);
  emit_rotate(b);

  b.label("steady");
  b.label("body_begin");
  emit_frep_a(b, block);
  b.l("copift.barrier");
  emit_frep_b(b, block);
  emit_int_phase(b, block, 1);
  emit_rotate(b);
  b.l("addi t3, t3, -1");
  b.l("bnez t3, steady");
  b.label("body_end");

  b.c("epilogue j'=NB: integer phase of the last block, phase 2 of NB-2");
  b.l("copift.barrier");
  emit_frep_b(b, block);
  emit_int_phase(b, block, 2);
  emit_rotate(b);
  b.c("epilogue j'=NB+1: phase 2 of the last block");
  emit_frep_b(b, block);
}

std::string generate_copift(const KernelConfig& cfg) {
  const std::uint32_t block = cfg.block;
  if (block % kUnroll != 0) throw Error(cat("exp/copift: block=", block, " must be a multiple of 4"));
  if (cfg.n % block != 0) throw Error(cat("exp/copift: block=", block, " does not divide n=", cfg.n));
  const HartSlice slice(cfg);
  workload::TiledBuffer tiled = make_exp_tiled(cfg);
  // Blocks per pipelined run: one tile's per-hart chunk, or the whole chunk.
  const std::uint32_t nb = (tiled.enabled() ? tiled.chunk() : slice.chunk()) / block;
  if (nb < 2) throw Error(cat("exp/copift: n=", cfg.n, " with block=", block, " needs at least 2 blocks per hart"));

  AsmBuilder b;
  emit_exp_data(b, cfg, /*copift=*/true, tiled);
  b.label("_start");
  if (tiled.enabled()) {
    b.l("la t0, exp_tab");
    b.l(cat("li t4, ", block / 2 - 1));  // FREP repetitions - 1
    b.l("la s2, arena");             // p_kiw = slot(0)
    b.l(cat("la s3, arena + ", 2 * 3 * block * 8));  // p_int = slot(2)
    b.l(cat("la s4, arena + ", 3 * block * 8));      // p_wt  = slot(1)
    slice.read_hartid(b, "t5", "partition: this hart's tile slice and arena row");
    slice.offset_by_rows(b, "t5", 3 * 3 * block * 8, {"s2", "s3", "s4"}, "t1", "t2");
    emit_load_constants(b);
    emit_ssr_shapes(b, block);
    tiled.prologue(b, slice);
    b.l("csrwi region, 1");
    b.label("tile_loop");
    tiled.hart0_stage(b, slice);
    slice.read_hartid(b, "t5");  // the integer phase clobbered t5 last tile
    tiled.compute_base(b, "a3", 0, "t5", "t1", "t2");
    tiled.compute_base(b, "a4", 1, "t5", "t1", "t2");
    b.l("csrsi ssr, 1");
    b.l(cat("li t3, ", nb - 2));  // steady-state iterations (per hart per tile)
    emit_copift_pipeline(b, block);
    b.l("csrr t3, fpss");  // drain (t0 keeps exp_tab; t3 is spent)
    b.l("csrci ssr, 1");   // release ft0-2 before the tile barrier
    tiled.tile_epilogue(b, slice, "tile_loop");
    b.l("csrwi region, 2");
    tiled.final_store(b, slice);
    slice.epilogue(b);
    return b.str();
  }
  b.l("la a3, xarr");
  b.l("la a4, yarr");
  b.l("la t0, exp_tab");
  b.l(cat("li t4, ", block / 2 - 1));  // FREP repetitions - 1 (2x unrolled body)
  b.l("la s2, arena");             // p_kiw = slot(0)
  b.l(cat("la s3, arena + ", 2 * 3 * block * 8));  // p_int = slot(2)
  b.l(cat("la s4, arena + ", 3 * block * 8));      // p_wt  = slot(1)
  slice.read_hartid(b, "t5", "partition: this hart's x/y chunk and arena row");
  slice.offset_by_elements(b, "t5", 8, {"a3", "a4"}, "t1", "t2");
  slice.offset_by_rows(b, "t5", 3 * 3 * block * 8, {"s2", "s3", "s4"}, "t1", "t2");
  emit_load_constants(b);
  b.l("csrsi ssr, 1");
  emit_ssr_shapes(b, block);
  slice.begin_hart0_only(b, "t5", "dma_done");  // the DMA engine is shared
  emit_dma_stream(b, cfg.n * 8);
  slice.end_hart0_only(b, "dma_done");
  b.l(cat("li t3, ", nb - 2));  // steady-state iterations (per hart)
  b.l("csrwi region, 1");
  emit_copift_pipeline(b, block);
  b.l("csrr t0, fpss");  // drain
  b.l("csrci ssr, 1");
  b.l("csrwi region, 2");
  slice.epilogue(b);
  return b.str();
}

}  // namespace

std::string generate_exp(Variant variant, const KernelConfig& cfg) {
  return variant == Variant::kBaseline ? generate_baseline(cfg) : generate_copift(cfg);
}

}  // namespace copift::kernels

// Assembly generators for the `log` kernel: glibc-style table-based
// logarithm over a vector of floats (double-precision evaluation).
//
// The table lookup is indexed by mantissa bits computed by integer code — a
// Type-1 (dynamic memory) dependency. The baseline performs it with `fld`
// from a computed address; the COPIFT variant maps it to an ISSR indirect
// stream (paper Table I marks logf with ‡), and moves the exponent
// conversion into the FP thread with fcvt.d.w.cop (*).
#include <string>

#include "common/error.hpp"
#include "kernels/codegen.hpp"
#include "kernels/glibc_math.hpp"
#include "kernels/kernel_internal.hpp"
#include "workload/hart_slice.hpp"

namespace copift::kernels {

namespace {

using workload::HartSlice;

constexpr unsigned kUnroll = 4;

const char* c0(unsigned u) {
  static constexpr const char* kRegs[] = {"a0", "a7", "s4", "s7"};
  return kRegs[u];
}
const char* c1(unsigned u) {
  static constexpr const char* kRegs[] = {"a5", "s2", "s5", "s8"};
  return kRegs[u];
}
const char* c2(unsigned u) {
  static constexpr const char* kRegs[] = {"a6", "s3", "s6", "s9"};
  return kRegs[u];
}

void emit_log_data(AsmBuilder& b, const KernelConfig& cfg, bool copift) {
  const LogConstants cst = log_constants();
  b.raw(".data\n");
  b.l(".align 3");
  b.label("log_tab");
  for (const LogTableEntry& e : log_table()) {
    b.l(dword_of(e.invc));
    b.l(dword_of(e.logc));
  }
  b.label("log_const");
  b.l(dword_of(cst.ln2));   // fs0
  b.l(dword_of(cst.a1));    // fs1
  b.l(dword_of(cst.a2));    // fs2
  b.l(dword_of(cst.a0));    // fs3
  b.l(dword_of(1.0));       // fs5 (loaded separately)
  if (copift) {
    // One double-buffered arena row per hart.
    b.label("izk_arena");  // 2 slots x (2B 8-byte cells: iz, k interleaved)
    b.l(cat(".space ", 2 * 2 * cfg.block * 8 * cfg.cores));
    b.label("idx_arena");  // 2 slots x (2B 4-byte indices)
    b.l(cat(".space ", 2 * 2 * cfg.block * 4 * cfg.cores));
  } else {
    b.label("iz_buf");  // one row per hart
    b.l(cat(".space ", kUnroll * 4 * cfg.cores));
  }
  b.label("xarr");
  b.l(cat(".space ", cfg.n * 4));
  b.l(".align 3");
  b.label("yarr");
  b.l(cat(".space ", cfg.n * 8));
  b.raw(".section .dram\n");
  b.label("dram_in");
  b.l(cat(".space ", cfg.n * 8));
  b.label("dram_out");
  b.l(cat(".space ", cfg.n * 8));
  b.raw(".text\n");
}

void emit_log_constants(AsmBuilder& b) {
  b.l("la s1, log_const");
  b.l("fld fs0, 0(s1)");
  b.l("fld fs1, 8(s1)");
  b.l("fld fs2, 16(s1)");
  b.l("fld fs3, 24(s1)");
  b.l("fld fs5, 32(s1)");
}

void emit_dma_stream(AsmBuilder& b, std::uint32_t bytes) {
  b.l("la s1, dram_in");
  b.l("dmsrc s1");
  b.l("la s1, dram_out");
  b.l("dmdst s1");
  b.l(cat("li s1, ", bytes));
  b.l("dmcpy s1, s1");
}

std::string generate_baseline(const KernelConfig& cfg) {
  if (cfg.n % kUnroll != 0) throw Error(cat("log/baseline: n=", cfg.n, " must be a multiple of 4"));
  const HartSlice slice(cfg);
  const LogConstants cst = log_constants();
  AsmBuilder b;
  emit_log_data(b, cfg, /*copift=*/false);
  b.label("_start");
  b.l("la a3, xarr");
  b.l("la a4, yarr");
  b.l("la t0, log_tab");
  b.l("la t1, iz_buf");
  slice.read_hartid(b, "t5", "partition: this hart's x (floats) / y (doubles) chunks");
  slice.offset_by_elements(b, "t5", 4, {"a3"}, "t6", "a0");
  slice.offset_by_elements(b, "t5", 8, {"a4"}, "t6", "a0");
  slice.offset_by_rows(b, "t5", kUnroll * 4, {"t1"}, "t6", "a0");
  b.l(cat("li t2, ", cst.off));
  b.l(cat("li s0, ", 0xff800000u));
  b.l(cat("li t3, ", slice.chunk() / kUnroll));
  emit_log_constants(b);
  slice.begin_hart0_only(b, "t5", "dma_done");  // the DMA engine is shared
  emit_dma_stream(b, cfg.n * 8);
  slice.end_hart0_only(b, "dma_done");
  b.l("csrwi region, 1");
  b.label("body_begin");
  b.c("integer decomposition (op-major over 4 elements)");
  for (unsigned u = 0; u < kUnroll; ++u) b.l(cat("lw ", c0(u), ", ", u * 4, "(a3)"));
  for (unsigned u = 0; u < kUnroll; ++u) b.l(cat("sub ", c1(u), ", ", c0(u), ", t2"));
  for (unsigned u = 0; u < kUnroll; ++u) b.l(cat("srai ", c2(u), ", ", c1(u), ", 23"));
  for (unsigned u = 0; u < kUnroll; ++u) b.l(cat("fcvt.d.w fa", u, ", ", c2(u)));  // kd
  for (unsigned u = 0; u < kUnroll; ++u) b.l(cat("and ", c2(u), ", ", c1(u), ", s0"));
  for (unsigned u = 0; u < kUnroll; ++u) b.l(cat("sub ", c2(u), ", ", c0(u), ", ", c2(u)));
  for (unsigned u = 0; u < kUnroll; ++u) b.l(cat("sw ", c2(u), ", ", u * 4, "(t1)"));  // iz
  for (unsigned u = 0; u < kUnroll; ++u) b.l(cat("srli ", c0(u), ", ", c1(u), ", 19"));
  for (unsigned u = 0; u < kUnroll; ++u) b.l(cat("andi ", c0(u), ", ", c0(u), ", 15"));
  for (unsigned u = 0; u < kUnroll; ++u) b.l(cat("slli ", c0(u), ", ", c0(u), ", 4"));
  for (unsigned u = 0; u < kUnroll; ++u) b.l(cat("add ", c0(u), ", t0, ", c0(u)));
  b.c("FP evaluation");
  for (unsigned u = 0; u < kUnroll; ++u) b.l(cat("flw fa", 4 + u, ", ", u * 4, "(t1)"));
  for (unsigned u = 0; u < kUnroll; ++u) b.l(cat("fcvt.d.s fa", 4 + u, ", fa", 4 + u));  // z
  for (unsigned u = 0; u < kUnroll; ++u) b.l(cat("fld ft", u, ", 0(", c0(u), ")"));   // invc
  for (unsigned u = 0; u < kUnroll; ++u) b.l(cat("fld ft", 4 + u, ", 8(", c0(u), ")"));  // logc
  for (unsigned u = 0; u < kUnroll; ++u) {
    b.l(cat("fmsub.d ft", u, ", fa", 4 + u, ", ft", u, ", fs5"));  // r = z*invc - 1
  }
  for (unsigned u = 0; u < kUnroll; ++u) {
    b.l(cat("fmadd.d fa", u, ", fa", u, ", fs0, ft", 4 + u));  // y0 = k*ln2 + logc
  }
  for (unsigned u = 0; u < kUnroll; ++u) {
    b.l(cat("fmul.d fa", 4 + u, ", ft", u, ", ft", u));  // r2
  }
  for (unsigned u = 0; u < kUnroll; ++u) {
    b.l(cat("fmadd.d ft", 4 + u, ", fs1, ft", u, ", fs2"));  // p = A1*r + A2
  }
  for (unsigned u = 0; u < kUnroll; ++u) {
    b.l(cat("fmadd.d ft", 4 + u, ", fs3, fa", 4 + u, ", ft", 4 + u));  // p = A0*r2 + p
  }
  for (unsigned u = 0; u < kUnroll; ++u) {
    b.l(cat("fadd.d fa", u, ", fa", u, ", ft", u));  // y0 + r
  }
  for (unsigned u = 0; u < kUnroll; ++u) {
    b.l(cat("fmadd.d fa", u, ", ft", 4 + u, ", fa", 4 + u, ", fa", u));  // result
  }
  for (unsigned u = 0; u < kUnroll; ++u) b.l(cat("fsd fa", u, ", ", u * 8, "(a4)"));
  b.l(cat("addi a3, a3, ", kUnroll * 4));
  b.l(cat("addi a4, a4, ", kUnroll * 8));
  b.l("addi t3, t3, -1");
  b.l("bnez t3, body_begin");
  b.label("body_end");
  b.l("csrwi region, 2");
  b.l("csrr t0, fpss");
  slice.epilogue(b);
  return b.str();
}

// ---------------------------------------------------------------------------
// COPIFT variant: 2 phases (integer decompose -> FP evaluate).
// ---------------------------------------------------------------------------

/// Cell offsets: the FREP body is 2x unrolled op-major, so per element pair
/// the streams deliver izA, izB, kA, kB (lane0) and invcA, invcB, logcA,
/// logcB (ISSR index order).
std::uint32_t iz_cell(unsigned e) { return (e / 2) * 32 + (e % 2) * 8; }
std::uint32_t k_cell(unsigned e) { return iz_cell(e) + 16; }
std::uint32_t invc_idx(unsigned e) { return (e / 2) * 16 + (e % 2) * 4; }
std::uint32_t logc_idx(unsigned e) { return invc_idx(e) + 8; }

void emit_int_phase(AsmBuilder& b, const KernelConfig& cfg, unsigned site) {
  const std::uint32_t block = cfg.block;
  b.c("integer phase: decompose block into (iz, k) cells and table indices");
  b.l("mv a1, s10");   // izk write pointer
  b.l("mv a2, t5");    // idx write pointer (t5 = idx write slot)
  emit_add_imm(b, "t1", "a3", block * 4, "t1");  // end of x block
  b.label(cat("dec_loop_", site));
  for (unsigned u = 0; u < kUnroll; ++u) b.l(cat("lw ", c0(u), ", ", u * 4, "(a3)"));
  for (unsigned u = 0; u < kUnroll; ++u) b.l(cat("sub ", c1(u), ", ", c0(u), ", t2"));
  for (unsigned u = 0; u < kUnroll; ++u) b.l(cat("srai ", c2(u), ", ", c1(u), ", 23"));
  for (unsigned u = 0; u < kUnroll; ++u) b.l(cat("sw ", c2(u), ", ", k_cell(u), "(a1)"));
  for (unsigned u = 0; u < kUnroll; ++u) b.l(cat("and ", c2(u), ", ", c1(u), ", s0"));
  for (unsigned u = 0; u < kUnroll; ++u) b.l(cat("sub ", c2(u), ", ", c0(u), ", ", c2(u)));
  for (unsigned u = 0; u < kUnroll; ++u) b.l(cat("sw ", c2(u), ", ", iz_cell(u), "(a1)"));
  for (unsigned u = 0; u < kUnroll; ++u) b.l(cat("srli ", c0(u), ", ", c1(u), ", 19"));
  for (unsigned u = 0; u < kUnroll; ++u) b.l(cat("andi ", c0(u), ", ", c0(u), ", 15"));
  for (unsigned u = 0; u < kUnroll; ++u) b.l(cat("slli ", c0(u), ", ", c0(u), ", 1"));
  for (unsigned u = 0; u < kUnroll; ++u) b.l(cat("sw ", c0(u), ", ", invc_idx(u), "(a2)"));
  for (unsigned u = 0; u < kUnroll; ++u) b.l(cat("addi ", c0(u), ", ", c0(u), ", 1"));
  for (unsigned u = 0; u < kUnroll; ++u) b.l(cat("sw ", c0(u), ", ", logc_idx(u), "(a2)"));
  b.l(cat("addi a3, a3, ", kUnroll * 4));
  b.l(cat("addi a1, a1, ", kUnroll * 16));
  b.l(cat("addi a2, a2, ", kUnroll * 8));
  b.l(cat("bne a3, t1, dec_loop_", site));
}

void emit_fp_frep(AsmBuilder& b, const KernelConfig& cfg) {
  const std::uint32_t block = cfg.block;
  b.c("FP phase (2x unrolled): ft0 = (iz,k), ft1 = ISSR table, ft2 = y");
  b.l("scfgwi s11, 26");             // lane0 RPTR2 <- izk slot (3-D)
  b.l("scfgwi t6, 41");              // lane1 IdxBase <- idx read slot (32+9)
  b.l(cat("li a0, ", 2 * block));
  b.l("scfgwi a0, 43");              // lane1 IdxCfg: 2B indices (32+11)
  b.l("scfgwi t0, 56");              // lane1 RPTR0 <- table base, arms ISSR (32+24)
  b.l("scfgwi a4, 92");              // lane2 WPTR0 <- y block (64+28)
  b.l("frep.o t4, 18");
  b.l("fcvt.d.s fa0, ft0");          // zA from iz bits
  b.l("fcvt.d.s ft3, ft0");          // zB
  b.l("fcvt.d.w.cop fa1, ft0");      // kdA from k
  b.l("fcvt.d.w.cop ft4, ft0");      // kdB
  b.l("fmsub.d fa2, fa0, ft1, fs5"); // rA = z*invc - 1
  b.l("fmsub.d ft5, ft3, ft1, fs5"); // rB
  b.l("fmadd.d fa3, fa1, fs0, ft1"); // y0A = kd*ln2 + logc
  b.l("fmadd.d ft6, ft4, fs0, ft1"); // y0B
  b.l("fmul.d fa0, fa2, fa2");       // r2A
  b.l("fmul.d ft3, ft5, ft5");       // r2B
  b.l("fmadd.d fa4, fs1, fa2, fs2"); // pA = A1*r + A2
  b.l("fmadd.d ft7, fs1, ft5, fs2"); // pB
  b.l("fmadd.d fa4, fs3, fa0, fa4"); // pA = A0*r2 + p
  b.l("fmadd.d ft7, fs3, ft3, ft7"); // pB
  b.l("fadd.d fa3, fa3, fa2");       // y0A + rA
  b.l("fadd.d ft6, ft6, ft5");       // y0B + rB
  b.l("fmadd.d ft2, fa4, fa0, fa3"); // resultA -> y
  b.l("fmadd.d ft2, ft7, ft3, ft6"); // resultB -> y
  emit_add_imm(b, "a4", "a4", block * 8, "a0");
}

void emit_swap_slots(AsmBuilder& b) {
  b.l("mv t1, s10");
  b.l("mv s10, s11");
  b.l("mv s11, t1");
  b.l("mv t1, t5");
  b.l("mv t5, t6");
  b.l("mv t6, t1");
}

std::string generate_copift(const KernelConfig& cfg) {
  const std::uint32_t block = cfg.block;
  if (block % kUnroll != 0) throw Error(cat("log/copift: block=", block, " must be a multiple of 4"));
  if (cfg.n % block != 0) throw Error(cat("log/copift: block=", block, " does not divide n=", cfg.n));
  const HartSlice slice(cfg);
  const std::uint32_t nb = slice.chunk() / block;  // blocks per hart
  if (nb < 2) throw Error(cat("log/copift: n=", cfg.n, " with block=", block, " needs at least 2 blocks per hart"));
  const LogConstants cst = log_constants();

  AsmBuilder b;
  emit_log_data(b, cfg, /*copift=*/true);
  b.label("_start");
  b.l("la a3, xarr");
  b.l("la a4, yarr");
  b.l("la t0, log_tab");
  b.l(cat("li t2, ", cst.off));
  b.l(cat("li s0, ", 0xff800000u));
  b.l("la s10, izk_arena");
  b.l(cat("la s11, izk_arena + ", 2 * block * 8));
  b.l("la t5, idx_arena");
  b.l(cat("la t6, idx_arena + ", 2 * block * 4));
  // a1 keeps the hart id (t5/t6 hold the idx slot pointers here); a0/a2 are
  // setup-time scratch, reused by the integer phase later.
  slice.read_hartid(b, "a1", "partition: this hart's x/y chunks and arena rows");
  slice.offset_by_elements(b, "a1", 4, {"a3"}, "a0", "a2");
  slice.offset_by_elements(b, "a1", 8, {"a4"}, "a0", "a2");
  slice.offset_by_rows(b, "a1", 2 * 2 * block * 8, {"s10", "s11"}, "a0", "a2");
  slice.offset_by_rows(b, "a1", 2 * 2 * block * 4, {"t5", "t6"}, "a0", "a2");
  b.l(cat("li t4, ", block / 2 - 1));  // FREP reps (2 elements per iteration)
  b.l(cat("li t3, ", nb - 1));
  emit_log_constants(b);
  b.l("csrsi ssr, 1");
  b.c("lane0: 3-D read izA,izB,kA,kB; lane1: ISSR shift 3; lane2: 1-D write");
  b.l("li a0, 1");
  b.l("scfgwi a0, 1");    // bound0 = 1 (pair)
  b.l("li a0, 8");
  b.l("scfgwi a0, 5");    // stride0 = 8
  b.l("li a0, 1");
  b.l("scfgwi a0, 2");    // bound1 = 1 (iz -> k field)
  b.l("li a0, 16");
  b.l("scfgwi a0, 6");    // stride1 = 16
  b.l(cat("li a0, ", block / 2 - 1));
  b.l("scfgwi a0, 3");    // bound2 = groups
  b.l("li a0, 32");
  b.l("scfgwi a0, 7");    // stride2 = 32
  b.l("li a0, 3");
  b.l("scfgwi a0, 42");  // lane1 IdxShift (32+10)
  b.l(cat("li a0, ", block - 1));
  b.l("scfgwi a0, 65");  // lane2 bound0 (64+1)
  b.l("li a0, 8");
  b.l("scfgwi a0, 69");  // lane2 stride0 (64+5)
  slice.begin_hart0_only(b, "a1", "dma_done");  // the DMA engine is shared
  emit_dma_stream(b, cfg.n * 8);
  slice.end_hart0_only(b, "dma_done");
  b.l("csrwi region, 1");

  b.c("prologue: decompose block 0");
  emit_int_phase(b, cfg, 0);
  emit_swap_slots(b);

  b.label("steady");
  b.label("body_begin");
  emit_fp_frep(b, cfg);
  b.l("copift.barrier");
  emit_int_phase(b, cfg, 1);
  emit_swap_slots(b);
  b.l("addi t3, t3, -1");
  b.l("bnez t3, steady");
  b.label("body_end");

  b.c("epilogue: FP phase of the last block");
  emit_fp_frep(b, cfg);
  b.l("csrr t1, fpss");
  b.l("csrci ssr, 1");
  b.l("csrwi region, 2");
  slice.epilogue(b);
  return b.str();
}

}  // namespace

std::string generate_log(Variant variant, const KernelConfig& cfg) {
  return variant == Variant::kBaseline ? generate_baseline(cfg) : generate_copift(cfg);
}

}  // namespace copift::kernels

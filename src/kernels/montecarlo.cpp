#include "kernels/montecarlo.hpp"

#include <cmath>
#include <vector>

#include "common/error.hpp"

namespace copift::kernels {

const std::array<double, 6>& mc_poly_coeffs() noexcept {
  static const std::array<double, 6> coeffs = {1.0 / 6, 1.0 / 6, 1.0 / 6,
                                               1.0 / 6, 1.0 / 6, 1.0 / 6};
  return coeffs;
}

double mc_poly(double x, PolyScheme scheme) noexcept {
  const auto& c = mc_poly_coeffs();
  if (scheme == PolyScheme::kHorner) {
    // Horner with FMAs, highest degree first (c[5]*x^5 + ... + c[0]).
    double acc = c[5];
    for (int i = 4; i >= 0; --i) acc = std::fma(acc, x, c[i]);
    return acc;
  }
  if (scheme == PolyScheme::kEstrin) {
    const double x2 = x * x;
    const double t0 = std::fma(c[1], x, c[0]);
    const double t1 = std::fma(c[3], x, c[2]);
    const double t2 = std::fma(c[5], x, c[4]);
    const double x4 = x2 * x2;
    const double r = std::fma(t1, x2, t0);
    return std::fma(t2, x4, r);
  }
  // Even/odd split, mirroring the COPIFT FREP body's dataflow exactly (the
  // kernel evaluates it in the raw PRN domain; that differs only by exact
  // power-of-two coefficient scalings, which commute with FMA rounding).
  const double t = x * x;
  double e = std::fma(c[4], t, c[2]);
  double o = std::fma(c[5], t, c[3]);
  e = std::fma(e, t, c[0]);
  o = std::fma(o, t, c[1]);
  return std::fma(o, x, e);
}

bool pi_hit(std::uint32_t xraw, std::uint32_t yraw) noexcept {
  const double x = to_unit_double(xraw);
  const double y = to_unit_double(yraw);
  const double xx = x * x;
  const double tt = std::fma(y, y, xx);
  return tt < 1.0;
}

bool poly_hit(std::uint32_t xraw, std::uint32_t yraw, PolyScheme scheme) noexcept {
  const double x = to_unit_double(xraw);
  const double y = to_unit_double(yraw);
  return y < mc_poly(x, scheme);
}

namespace {

template <typename Prng, typename HitFn>
std::uint64_t run_mc(std::vector<Prng> streams, std::uint64_t samples, HitFn&& hit) {
  if (samples % kMcUnroll != 0) throw Error("sample count must be a multiple of the unroll");
  std::uint64_t hits = 0;
  for (std::uint64_t i = 0; i < samples / kMcUnroll; ++i) {
    for (unsigned u = 0; u < kMcUnroll; ++u) {
      const std::uint32_t x = streams[u].next();
      const std::uint32_t y = streams[u].next();
      hits += hit(x, y) ? 1 : 0;
    }
  }
  return hits;
}

std::vector<Lcg> lcg_streams(std::uint32_t seed) {
  std::vector<Lcg> s;
  for (unsigned u = 0; u < kMcUnroll; ++u) s.emplace_back(seed + u);
  return s;
}

// xoshiro state is too large for one stream per unroll slot (4 registers per
// generator); the kernel keeps one x-generator and one y-generator in
// registers, so the reference does too.
template <typename HitFn>
std::uint64_t run_mc_xoshiro(std::uint32_t seed, std::uint64_t samples, HitFn&& hit) {
  if (samples % kMcUnroll != 0) throw Error("sample count must be a multiple of the unroll");
  Xoshiro128Plus gx = Xoshiro128Plus::seeded(seed);
  Xoshiro128Plus gy = Xoshiro128Plus::seeded(seed + 1);
  std::uint64_t hits = 0;
  for (std::uint64_t i = 0; i < samples; ++i) {
    const std::uint32_t x = gx.next();
    const std::uint32_t y = gy.next();
    hits += hit(x, y) ? 1 : 0;
  }
  return hits;
}

}  // namespace

std::uint64_t ref_pi_hits_lcg(std::uint32_t seed, std::uint64_t samples) {
  return run_mc(lcg_streams(seed), samples,
                [](std::uint32_t x, std::uint32_t y) { return pi_hit(x, y); });
}

std::uint64_t ref_poly_hits_lcg(std::uint32_t seed, std::uint64_t samples, PolyScheme scheme) {
  return run_mc(lcg_streams(seed), samples,
                [scheme](std::uint32_t x, std::uint32_t y) { return poly_hit(x, y, scheme); });
}

std::uint64_t ref_pi_hits_xoshiro(std::uint32_t seed, std::uint64_t samples) {
  return run_mc_xoshiro(seed, samples,
                        [](std::uint32_t x, std::uint32_t y) { return pi_hit(x, y); });
}

std::uint64_t ref_poly_hits_xoshiro(std::uint32_t seed, std::uint64_t samples,
                                    PolyScheme scheme) {
  return run_mc_xoshiro(seed, samples, [scheme](std::uint32_t x, std::uint32_t y) {
    return poly_hit(x, y, scheme);
  });
}

}  // namespace copift::kernels

// Pseudo-random number generators used by the Monte Carlo kernels
// (paper Section III-A): a 32-bit linear congruential generator and
// xoshiro128+. These reference implementations are bit-exact matches of the
// assembly kernels, so simulated hit counts can be checked exactly.
#pragma once

#include <array>
#include <cstdint>

namespace copift::kernels {

/// Numerical Recipes LCG: s' = 1664525*s + 1013904223 (mod 2^32).
class Lcg {
 public:
  static constexpr std::uint32_t kMul = 1664525u;
  static constexpr std::uint32_t kInc = 1013904223u;

  explicit Lcg(std::uint32_t seed) : state_(seed) {}

  std::uint32_t next() noexcept {
    state_ = kMul * state_ + kInc;
    return state_;
  }

  [[nodiscard]] std::uint32_t state() const noexcept { return state_; }

 private:
  std::uint32_t state_;
};

/// xoshiro128+ (Blackman & Vigna). Returns s0 + s3 before the state update.
class Xoshiro128Plus {
 public:
  explicit Xoshiro128Plus(std::array<std::uint32_t, 4> seed) : s_(seed) {}

  /// SplitMix-style seeding from a single word (all-zero state is invalid).
  static Xoshiro128Plus seeded(std::uint32_t seed);

  std::uint32_t next() noexcept;

  [[nodiscard]] const std::array<std::uint32_t, 4>& state() const noexcept { return s_; }

 private:
  std::array<std::uint32_t, 4> s_;
};

/// Map a raw 32-bit PRN to [0, 1) the way the kernels do: u * 2^-32.
double to_unit_double(std::uint32_t raw) noexcept;

}  // namespace copift::kernels

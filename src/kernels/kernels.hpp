// Kernel registry: the six paper kernels, each in an optimized RV32G
// baseline variant and a COPIFT variant (paper Table I).
//
// Each generator returns complete assembly for the simulated cluster:
//   _start -> setup -> [region marker 1] main loop [region marker 2]
//          -> drain FPSS -> store results -> ecall
// Inputs (x arrays, seeds) are poked into data-section symbols by the
// harness (see runner.hpp); results are read back from the `result` symbol.
//
// Convention of labels used by the analysis/bench code:
//   body_begin / body_end — the steady-state loop body (Table I counting)
#pragma once

#include <cstdint>
#include <string>

namespace copift::kernels {

enum class KernelId {
  kExp,          // y[i] = exp(x[i]) (glibc-style, paper Fig. 1)
  kLog,          // y[i] = log(x[i]) (uses ISSR + fcvt.d.w.cop)
  kPolyLcg,      // MC integration of a degree-5 polynomial, LCG PRNG
  kPiLcg,        // MC pi estimation, LCG PRNG
  kPolyXoshiro,  // MC polynomial, xoshiro128+ PRNG
  kPiXoshiro,    // MC pi, xoshiro128+ PRNG
};

enum class Variant { kBaseline, kCopift };

inline constexpr KernelId kAllKernels[] = {KernelId::kExp,     KernelId::kLog,
                                           KernelId::kPolyLcg, KernelId::kPiLcg,
                                           KernelId::kPolyXoshiro, KernelId::kPiXoshiro};

[[nodiscard]] std::string kernel_name(KernelId id);
[[nodiscard]] bool is_transcendental(KernelId id);  // exp/log vs Monte Carlo

struct KernelConfig {
  /// Problem size: elements (exp/log) or samples (MC). Must be a multiple of
  /// the block size; MC requires multiples of kMcUnroll.
  std::uint32_t n = 1024;
  /// COPIFT block size B (ignored by baselines). Must divide n.
  std::uint32_t block = 32;
  /// PRNG seed for the MC kernels / input generator seed for exp/log.
  std::uint32_t seed = 42;
};

struct GeneratedKernel {
  std::string source;
  KernelId id;
  Variant variant;
  KernelConfig config;
};

/// Generate the assembly for a kernel variant. Throws copift::Error on
/// invalid configurations (non-divisible block, FREP body too large, ...).
GeneratedKernel generate(KernelId id, Variant variant, const KernelConfig& config);

}  // namespace copift::kernels

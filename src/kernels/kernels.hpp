// The six paper kernels (paper Table I), published as workload-registry
// entries: "exp", "log", "poly_lcg", "pi_lcg", "poly_xoshiro128p" and
// "pi_xoshiro128p", each in an optimized RV32G baseline variant and a COPIFT
// variant. See src/workload/workload.hpp for the Workload interface the
// whole harness dispatches through.
//
// Each generator returns complete assembly for the simulated cluster:
//   _start -> setup -> [region marker 1] main loop [region marker 2]
//          -> drain FPSS -> store results -> ecall
// Inputs (x arrays, seeds) are poked into data-section symbols by the
// workload's populate_inputs; results are read back by verify_outputs.
//
// Convention of labels used by the analysis/bench code:
//   body_begin / body_end — the steady-state loop body (Table I counting)
//
// `KernelId` survives only as a thin compatibility shim that resolves to
// registry names; nothing in the harness dispatches on it anymore.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "workload/workload.hpp"

namespace copift::kernels {

// The workload vocabulary, re-exported under the legacy names.
using Variant = workload::Variant;
using KernelConfig = workload::WorkloadConfig;
using GeneratedKernel = workload::GeneratedWorkload;

/// Registry names of the six paper kernels, in enum-shim order.
inline constexpr std::string_view kPaperWorkloads[] = {
    "exp", "log", "poly_lcg", "pi_lcg", "poly_xoshiro128p", "pi_xoshiro128p"};

// --- KernelId compatibility shim -------------------------------------------
// Legacy callers identified kernels with this closed enum. It now only maps
// onto the open registry: kernel_name() yields the registry key and
// generate() resolves through WorkloadRegistry. New code should use names.

enum class KernelId {
  kExp,          // y[i] = exp(x[i]) (glibc-style, paper Fig. 1)
  kLog,          // y[i] = log(x[i]) (uses ISSR + fcvt.d.w.cop)
  kPolyLcg,      // MC integration of a degree-5 polynomial, LCG PRNG
  kPiLcg,        // MC pi estimation, LCG PRNG
  kPolyXoshiro,  // MC polynomial, xoshiro128+ PRNG
  kPiXoshiro,    // MC pi, xoshiro128+ PRNG
};

inline constexpr KernelId kAllKernels[] = {KernelId::kExp,     KernelId::kLog,
                                           KernelId::kPolyLcg, KernelId::kPiLcg,
                                           KernelId::kPolyXoshiro, KernelId::kPiXoshiro};

/// Registry name of a legacy kernel id.
[[nodiscard]] std::string kernel_name(KernelId id);

/// exp/log vs Monte Carlo, by registry name (and the legacy-id wrapper).
[[nodiscard]] bool is_transcendental(std::string_view name);
[[nodiscard]] bool is_transcendental(KernelId id);

/// Generate the assembly for a kernel variant by resolving the registry.
/// Throws workload::ConfigError on invalid configurations (non-divisible
/// block, too few blocks, ...).
[[nodiscard]] GeneratedKernel generate(KernelId id, Variant variant,
                                       const KernelConfig& config);

}  // namespace copift::kernels

// Hit-and-miss Monte Carlo integration references (paper Section III-A).
//
// Two integration problems x two PRNGs:
//  - pi:   count (x, y) with x^2 + y^2 < 1           -> pi ~= 4 * hits / N
//  - poly: count (x, y) with y < P(x), P a degree-5
//          polynomial with values in [1/6, 1]        -> integral ~= hits / N
//
// Each unrolled assembly slot u in [0, kMcUnroll) owns an independent PRNG
// stream seeded with `seed + u`; samples are drawn slot-major per iteration.
// The references replicate that exact draw order so hit counts match the
// simulation bit-for-bit.
#pragma once

#include <array>
#include <cstdint>

#include "kernels/prng.hpp"

namespace copift::kernels {

inline constexpr unsigned kMcUnroll = 8;

/// Degree-5 polynomial P(x), coefficients all 1/6 so P maps [0,1) into
/// [1/6, 1]. Multiple FMA dataflows are provided because the baseline kernel
/// evaluates Horner while the COPIFT kernel evaluates an even/odd split (for
/// ILP under FREP) — hit counts are compared bit-exactly, so the reference
/// must mirror the exact FMA contraction order of each variant. (kEstrin is
/// kept for the scheduling experiments/tests.)
enum class PolyScheme { kHorner, kEstrin, kEvenOdd };
[[nodiscard]] double mc_poly(double x, PolyScheme scheme = PolyScheme::kHorner) noexcept;
[[nodiscard]] const std::array<double, 6>& mc_poly_coeffs() noexcept;

/// Hit counts for `samples` total samples (must be a multiple of kMcUnroll).
/// Every sample draws x then y from its slot's stream.
[[nodiscard]] std::uint64_t ref_pi_hits_lcg(std::uint32_t seed, std::uint64_t samples);
[[nodiscard]] std::uint64_t ref_poly_hits_lcg(std::uint32_t seed, std::uint64_t samples,
                                              PolyScheme scheme = PolyScheme::kHorner);
[[nodiscard]] std::uint64_t ref_pi_hits_xoshiro(std::uint32_t seed, std::uint64_t samples);
[[nodiscard]] std::uint64_t ref_poly_hits_xoshiro(std::uint32_t seed, std::uint64_t samples,
                                                  PolyScheme scheme = PolyScheme::kHorner);

/// One sample's hit predicate (shared by references and tests).
[[nodiscard]] bool pi_hit(std::uint32_t xraw, std::uint32_t yraw) noexcept;
[[nodiscard]] bool poly_hit(std::uint32_t xraw, std::uint32_t yraw,
                            PolyScheme scheme = PolyScheme::kHorner) noexcept;

}  // namespace copift::kernels

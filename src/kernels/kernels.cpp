#include "kernels/kernels.hpp"

#include "common/error.hpp"
#include "kernels/kernel_internal.hpp"

namespace copift::kernels {

std::string kernel_name(KernelId id) {
  switch (id) {
    case KernelId::kExp: return "exp";
    case KernelId::kLog: return "log";
    case KernelId::kPolyLcg: return "poly_lcg";
    case KernelId::kPiLcg: return "pi_lcg";
    case KernelId::kPolyXoshiro: return "poly_xoshiro128p";
    case KernelId::kPiXoshiro: return "pi_xoshiro128p";
  }
  return "?";
}

bool is_transcendental(KernelId id) {
  return id == KernelId::kExp || id == KernelId::kLog;
}

GeneratedKernel generate(KernelId id, Variant variant, const KernelConfig& config) {
  GeneratedKernel g;
  g.id = id;
  g.variant = variant;
  g.config = config;
  switch (id) {
    case KernelId::kExp:
      g.source = generate_exp(variant, config);
      break;
    case KernelId::kLog:
      g.source = generate_log(variant, config);
      break;
    case KernelId::kPolyLcg:
      g.source = generate_mc(variant, config, /*poly=*/true, /*xoshiro=*/false);
      break;
    case KernelId::kPiLcg:
      g.source = generate_mc(variant, config, /*poly=*/false, /*xoshiro=*/false);
      break;
    case KernelId::kPolyXoshiro:
      g.source = generate_mc(variant, config, /*poly=*/true, /*xoshiro=*/true);
      break;
    case KernelId::kPiXoshiro:
      g.source = generate_mc(variant, config, /*poly=*/false, /*xoshiro=*/true);
      break;
  }
  return g;
}

}  // namespace copift::kernels

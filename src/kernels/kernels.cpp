#include "kernels/kernels.hpp"

#include "common/error.hpp"

namespace copift::kernels {

std::string kernel_name(KernelId id) {
  const auto index = static_cast<std::size_t>(id);
  if (index >= std::size(kPaperWorkloads)) throw Error("kernel_name: invalid KernelId");
  return std::string(kPaperWorkloads[index]);
}

bool is_transcendental(std::string_view name) {
  return name == "exp" || name == "log";
}

bool is_transcendental(KernelId id) {
  return is_transcendental(kernel_name(id));
}

GeneratedKernel generate(KernelId id, Variant variant, const KernelConfig& config) {
  return workload::generate(kernel_name(id), variant, config);
}

}  // namespace copift::kernels

#include "kernels/glibc_math.hpp"

#include <cmath>

#include "common/bits.hpp"

namespace copift::kernels {

// ---------------------------------------------------------------------------
// exp
// ---------------------------------------------------------------------------

ExpConstants exp_constants() noexcept {
  constexpr double kN = kExpTableSize;
  ExpConstants c{};
  c.inv_ln2_n = 0x1.71547652b82fep+0 * kN;  // log2(e) * N
  c.shift = 0x1.8p52;
  // glibc e_exp2f_data poly, pre-scaled by the table size.
  c.c0 = 0x1.c6af84b912394p-5 / kN / kN / kN;
  c.c1 = 0x1.ebfce50fac4f3p-3 / kN / kN;
  c.c2 = 0x1.62e42ff0c52d6p-1 / kN;
  return c;
}

const std::array<std::uint64_t, kExpTableSize>& exp_table() noexcept {
  static const auto table = [] {
    std::array<std::uint64_t, kExpTableSize> t{};
    for (unsigned i = 0; i < kExpTableSize; ++i) {
      const double v = std::exp2(static_cast<double>(i) / kExpTableSize);
      t[i] = copift::bit_cast<std::uint64_t>(v) -
             (static_cast<std::uint64_t>(i) << (52 - kExpTableBits));
    }
    return t;
  }();
  return table;
}

double ref_exp(double x) noexcept {
  const ExpConstants cst = exp_constants();
  const auto& tab = exp_table();
  const double z = cst.inv_ln2_n * x;
  const double kd = z + cst.shift;
  // The assembly reads the low word of kd with `lw` (paper Fig. 1b inst. 5).
  const auto ki = static_cast<std::uint32_t>(copift::bit_cast<std::uint64_t>(kd));
  const std::uint64_t t = tab[ki & (kExpTableSize - 1)];
  // 32-bit exponent adjustment, exactly as `slli a0,a0,15; add` performs it.
  const auto lo = static_cast<std::uint32_t>(t);
  const auto hi = static_cast<std::uint32_t>(t >> 32) + (ki << 15);
  const double s = copift::bit_cast<double>((static_cast<std::uint64_t>(hi) << 32) | lo);
  const double kd2 = kd - cst.shift;
  const double r = z - kd2;
  const double p1 = std::fma(cst.c0, r, cst.c1);
  const double p2 = std::fma(cst.c2, r, 1.0);
  const double r2 = r * r;
  const double y = std::fma(p1, r2, p2);
  return y * s;
}

void ref_exp(std::span<const double> x, std::span<double> y) noexcept {
  for (std::size_t i = 0; i < x.size() && i < y.size(); ++i) y[i] = ref_exp(x[i]);
}

// ---------------------------------------------------------------------------
// log
// ---------------------------------------------------------------------------

LogConstants log_constants() noexcept {
  LogConstants c{};
  c.ln2 = 0x1.62e42fefa39efp-1;
  // log(1+r) ~= r + a2*r^2 + a1*r^3 + a0*r^4 over |r| <= 0.05.
  c.a0 = -0.25;
  c.a1 = 1.0 / 3.0;
  c.a2 = -0.5;
  c.off = 0x3f330000u;
  return c;
}

const std::array<LogTableEntry, kLogTableSize>& log_table() noexcept {
  static const auto table = [] {
    std::array<LogTableEntry, kLogTableSize> t{};
    const LogConstants cst = log_constants();
    for (unsigned i = 0; i < kLogTableSize; ++i) {
      // Midpoint of the i-th mantissa subinterval of z in [0.699, 1.398).
      const std::uint32_t bits = cst.off + (i << (23 - kLogTableBits)) +
                                 (1u << (23 - kLogTableBits - 1));
      const auto c = static_cast<double>(copift::bit_cast<float>(bits));
      t[i].invc = 1.0 / c;
      t[i].logc = std::log(c);
    }
    return t;
  }();
  return table;
}

LogDecomposition log_decompose(float x) noexcept {
  const LogConstants cst = log_constants();
  const auto ix = copift::bit_cast<std::uint32_t>(x);
  const std::uint32_t tmp = ix - cst.off;
  LogDecomposition d{};
  d.index = (tmp >> (23 - kLogTableBits)) & (kLogTableSize - 1);
  d.k = static_cast<std::int32_t>(tmp) >> 23;
  d.iz_bits = ix - (tmp & 0xff800000u);
  return d;
}

double ref_log(float x) noexcept {
  const LogConstants cst = log_constants();
  const auto& tab = log_table();
  const LogDecomposition d = log_decompose(x);
  const auto z = static_cast<double>(copift::bit_cast<float>(d.iz_bits));
  const LogTableEntry e = tab[d.index];
  const double r = std::fma(z, e.invc, -1.0);
  const double y0 = std::fma(static_cast<double>(d.k), cst.ln2, e.logc);
  const double r2 = r * r;
  const double p = std::fma(cst.a1, r, cst.a2);
  const double y = std::fma(cst.a0, r2, p);
  const double yr = y0 + r;
  return std::fma(y, r2, yr);
}

void ref_log(std::span<const float> x, std::span<double> y) noexcept {
  for (std::size_t i = 0; i < x.size() && i < y.size(); ++i) y[i] = ref_log(x[i]);
}

}  // namespace copift::kernels

#include "kernels/runner.hpp"

#include <cmath>

#include "common/error.hpp"
#include "kernels/prng.hpp"
#include "lint/lint.hpp"
#include "rvasm/assembler.hpp"

namespace copift::kernels {

std::vector<double> exp_inputs(std::uint32_t n, std::uint32_t seed) {
  Lcg gen(seed ^ 0xE0E0E0E0u);
  std::vector<double> x(n);
  for (auto& v : x) v = to_unit_double(gen.next()) * 2.0 - 1.0;  // [-1, 1)
  return x;
}

std::vector<float> log_inputs(std::uint32_t n, std::uint32_t seed) {
  Lcg gen(seed ^ 0x10601060u);
  std::vector<float> x(n);
  for (auto& v : x) {
    v = static_cast<float>(0.25 + to_unit_double(gen.next()) * 3.75);  // [0.25, 4)
  }
  return x;
}

void populate_inputs(sim::Cluster& cluster, const GeneratedKernel& kernel) {
  if (kernel.workload == nullptr) throw Error("populate_inputs: kernel has no workload");
  kernel.workload->populate_inputs(cluster, kernel.config);
}

void verify_outputs(sim::Cluster& cluster, const GeneratedKernel& kernel) {
  if (kernel.workload == nullptr) throw Error("verify_outputs: kernel has no workload");
  kernel.workload->verify_outputs(cluster, kernel.variant, kernel.config);
}

std::shared_ptr<const rvasm::Program> assemble_kernel(const GeneratedKernel& kernel) {
  auto program = std::make_shared<const rvasm::Program>(rvasm::assemble(kernel.source));
  // Every generated program funnels through here (CLI single runs, engine
  // sweeps, serve jobs), so this is the one post-assembly lint hook.
  lint::pipeline_check(*program, kernel.config.cores, kernel.name());
  return program;
}

KernelRun run_kernel(const GeneratedKernel& kernel, const sim::SimParams& params, bool verify,
                     const energy::EnergyParams& energy_params) {
  return run_kernel(kernel, assemble_kernel(kernel), params, verify, energy_params);
}

namespace {

/// Delta between region markers 1 and 2 of one hart's region stream.
sim::ActivityCounters region_delta(const std::vector<sim::RegionEvent>& regions,
                                   unsigned hart) {
  const sim::RegionEvent* begin = nullptr;
  const sim::RegionEvent* end = nullptr;
  for (const auto& r : regions) {
    if (r.id == 1) begin = &r;
    if (r.id == 2) end = &r;
  }
  if (begin == nullptr || end == nullptr) {
    throw Error("kernel did not emit region markers 1 and 2 on hart " + std::to_string(hart));
  }
  return end->snapshot.minus(begin->snapshot);
}

}  // namespace

KernelRun run_kernel(const GeneratedKernel& kernel,
                     std::shared_ptr<const rvasm::Program> program,
                     const sim::SimParams& params, bool verify,
                     const energy::EnergyParams& energy_params) {
  // The workload config owns the hart count: the generated program encodes
  // its partitioning, so the topology must match it exactly.
  sim::SimParams run_params = params;
  run_params.num_cores = kernel.config.cores;
  sim::Cluster cluster(std::move(program), run_params);
  populate_inputs(cluster, kernel);
  KernelRun out;
  out.result = cluster.run();
  out.total = cluster.counters();
  const energy::EnergyModel model(energy_params);
  if (cluster.num_cores() == 1) {
    out.region = region_delta(cluster.regions(), 0);
    out.region_energy = model.evaluate(out.region);
  } else {
    // Per-hart attribution: each hart's own marker-1..2 window, summed into
    // the aggregate (cycles = the slowest hart's window).
    out.hart_region.reserve(cluster.num_cores());
    for (unsigned h = 0; h < cluster.num_cores(); ++h) {
      out.hart_region.push_back(region_delta(cluster.complex(h).regions(), h));
    }
    out.region = sim::ActivityCounters{};
    for (const auto& r : out.hart_region) out.region = out.region.plus(r);
    out.hart_energy = model.evaluate_harts(out.hart_region);
    out.region_energy = energy::sum_reports(out.hart_energy);
  }
  if (verify) {
    verify_outputs(cluster, kernel);
    out.verified = true;
  }
  return out;
}

SteadyMetrics steady_metrics(std::string_view workload, Variant variant,
                             const KernelConfig& config, std::uint32_t n1, std::uint32_t n2,
                             const sim::SimParams& params,
                             const energy::EnergyParams& energy_params) {
  if (n2 <= n1) throw Error("steady_metrics requires n2 > n1");
  const auto handle = workload::WorkloadRegistry::instance().at(workload);
  KernelConfig c1 = config;
  c1.n = n1;
  KernelConfig c2 = config;
  c2.n = n2;
  const KernelRun r1 = run_kernel(handle->instantiate(variant, c1), params, /*verify=*/true,
                                  energy_params);
  const KernelRun r2 = run_kernel(handle->instantiate(variant, c2), params, /*verify=*/true,
                                  energy_params);
  return steady_from_runs(r1, r2, handle->items(c1), handle->items(c2));
}

SteadyMetrics steady_metrics(KernelId id, Variant variant, const KernelConfig& config,
                             std::uint32_t n1, std::uint32_t n2, const sim::SimParams& params,
                             const energy::EnergyParams& energy_params) {
  return steady_metrics(kernel_name(id), variant, config, n1, n2, params, energy_params);
}

SteadyMetrics steady_from_runs(const KernelRun& r1, const KernelRun& r2, std::uint64_t items1,
                               std::uint64_t items2) {
  if (items2 <= items1) throw Error("steady_from_runs requires items2 > items1");
  SteadyMetrics m;
  const auto dc = r2.region.cycles - r1.region.cycles;
  const auto di = r2.region.retired() - r1.region.retired();
  const double de = r2.region_energy.total_pj - r1.region_energy.total_pj;
  const auto d_items = static_cast<double>(items2 - items1);
  m.delta_cycles = dc;
  m.ipc = dc == 0 ? 0.0 : static_cast<double>(di) / static_cast<double>(dc);
  m.power_mw = dc == 0 ? 0.0 : de / static_cast<double>(dc);
  m.cycles_per_item = static_cast<double>(dc) / d_items;
  m.energy_pj_per_item = de / d_items;
  return m;
}

}  // namespace copift::kernels

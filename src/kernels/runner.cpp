#include "kernels/runner.hpp"

#include <cmath>
#include <sstream>

#include "common/bits.hpp"
#include "common/error.hpp"
#include "kernels/glibc_math.hpp"
#include "kernels/montecarlo.hpp"
#include "kernels/prng.hpp"
#include "rvasm/assembler.hpp"

namespace copift::kernels {

std::vector<double> exp_inputs(std::uint32_t n, std::uint32_t seed) {
  Lcg gen(seed ^ 0xE0E0E0E0u);
  std::vector<double> x(n);
  for (auto& v : x) v = to_unit_double(gen.next()) * 2.0 - 1.0;  // [-1, 1)
  return x;
}

std::vector<float> log_inputs(std::uint32_t n, std::uint32_t seed) {
  Lcg gen(seed ^ 0x10601060u);
  std::vector<float> x(n);
  for (auto& v : x) {
    v = static_cast<float>(0.25 + to_unit_double(gen.next()) * 3.75);  // [0.25, 4)
  }
  return x;
}

void populate_inputs(sim::Cluster& cluster, const GeneratedKernel& kernel) {
  const auto& program = cluster.program();
  if (kernel.id == KernelId::kExp) {
    const std::uint32_t base = program.symbol("xarr");
    const auto x = exp_inputs(kernel.config.n, kernel.config.seed);
    for (std::uint32_t i = 0; i < kernel.config.n; ++i) {
      cluster.memory().store64(base + i * 8, copift::bit_cast<std::uint64_t>(x[i]));
    }
  } else if (kernel.id == KernelId::kLog) {
    const std::uint32_t base = program.symbol("xarr");
    const auto x = log_inputs(kernel.config.n, kernel.config.seed);
    for (std::uint32_t i = 0; i < kernel.config.n; ++i) {
      cluster.memory().store32(base + i * 4, copift::bit_cast<std::uint32_t>(x[i]));
    }
  }
  // Monte Carlo kernels seed their PRNGs from immediates; nothing to do.
}

namespace {

void verify_transcendental(sim::Cluster& cluster, const GeneratedKernel& kernel) {
  const auto& cfg = kernel.config;
  const std::uint32_t ybase = cluster.program().symbol("yarr");
  std::uint64_t mismatches = 0;
  std::ostringstream detail;
  for (std::uint32_t i = 0; i < cfg.n; ++i) {
    double expected;
    if (kernel.id == KernelId::kExp) {
      expected = ref_exp(exp_inputs(cfg.n, cfg.seed)[i]);
    } else {
      expected = ref_log(log_inputs(cfg.n, cfg.seed)[i]);
    }
    const std::uint64_t got = cluster.memory().load64(ybase + i * 8);
    if (got != copift::bit_cast<std::uint64_t>(expected)) {
      if (mismatches == 0) {
        detail << " first at i=" << i << ": got " << copift::bit_cast<double>(got)
               << ", expected " << expected;
      }
      ++mismatches;
    }
  }
  if (mismatches != 0) {
    throw Error(kernel_name(kernel.id) + std::string(" verification failed: ") +
                std::to_string(mismatches) + " mismatches" + detail.str());
  }
}

std::uint64_t expected_hits(const GeneratedKernel& kernel) {
  const auto& cfg = kernel.config;
  // The COPIFT poly kernels evaluate an even/odd split (raw-domain, which
  // differs from the unit-domain reference only by exact power-of-two
  // scalings); the baselines evaluate Horner.
  const PolyScheme scheme =
      kernel.variant == Variant::kCopift ? PolyScheme::kEvenOdd : PolyScheme::kHorner;
  switch (kernel.id) {
    case KernelId::kPiLcg: return ref_pi_hits_lcg(cfg.seed, cfg.n);
    case KernelId::kPolyLcg: return ref_poly_hits_lcg(cfg.seed, cfg.n, scheme);
    case KernelId::kPiXoshiro: return ref_pi_hits_xoshiro(cfg.seed, cfg.n);
    case KernelId::kPolyXoshiro: return ref_poly_hits_xoshiro(cfg.seed, cfg.n, scheme);
    default: throw Error("not an MC kernel");
  }
}

void verify_mc(sim::Cluster& cluster, const GeneratedKernel& kernel) {
  const std::uint32_t addr = cluster.program().symbol("result");
  std::uint64_t got;
  if (kernel.variant == Variant::kBaseline) {
    got = cluster.memory().load32(addr);
  } else {
    got = static_cast<std::uint64_t>(
        copift::bit_cast<double>(cluster.memory().load64(addr)));
  }
  const std::uint64_t expected = expected_hits(kernel);
  if (got != expected) {
    throw Error(kernel_name(kernel.id) + std::string(" verification failed: got ") +
                std::to_string(got) + " hits, expected " + std::to_string(expected));
  }
}

}  // namespace

void verify_outputs(sim::Cluster& cluster, const GeneratedKernel& kernel) {
  if (is_transcendental(kernel.id)) {
    verify_transcendental(cluster, kernel);
  } else {
    verify_mc(cluster, kernel);
  }
}

std::shared_ptr<const rvasm::Program> assemble_kernel(const GeneratedKernel& kernel) {
  return std::make_shared<const rvasm::Program>(rvasm::assemble(kernel.source));
}

KernelRun run_kernel(const GeneratedKernel& kernel, const sim::SimParams& params, bool verify,
                     const energy::EnergyParams& energy_params) {
  return run_kernel(kernel, assemble_kernel(kernel), params, verify, energy_params);
}

KernelRun run_kernel(const GeneratedKernel& kernel,
                     std::shared_ptr<const rvasm::Program> program,
                     const sim::SimParams& params, bool verify,
                     const energy::EnergyParams& energy_params) {
  sim::Cluster cluster(std::move(program), params);
  populate_inputs(cluster, kernel);
  KernelRun out;
  out.result = cluster.run();
  out.total = cluster.counters();
  const auto& regions = cluster.regions();
  const sim::RegionEvent* begin = nullptr;
  const sim::RegionEvent* end = nullptr;
  for (const auto& r : regions) {
    if (r.id == 1) begin = &r;
    if (r.id == 2) end = &r;
  }
  if (begin == nullptr || end == nullptr) {
    throw Error("kernel did not emit region markers 1 and 2");
  }
  out.region = end->snapshot.minus(begin->snapshot);
  out.region_energy = energy::EnergyModel(energy_params).evaluate(out.region);
  if (verify) {
    verify_outputs(cluster, kernel);
    out.verified = true;
  }
  return out;
}

SteadyMetrics steady_metrics(KernelId id, Variant variant, const KernelConfig& config,
                             std::uint32_t n1, std::uint32_t n2, const sim::SimParams& params,
                             const energy::EnergyParams& energy_params) {
  if (n2 <= n1) throw Error("steady_metrics requires n2 > n1");
  KernelConfig c1 = config;
  c1.n = n1;
  KernelConfig c2 = config;
  c2.n = n2;
  const KernelRun r1 = run_kernel(generate(id, variant, c1), params, /*verify=*/true,
                                  energy_params);
  const KernelRun r2 = run_kernel(generate(id, variant, c2), params, /*verify=*/true,
                                  energy_params);
  return steady_from_runs(r1, r2, n1, n2);
}

SteadyMetrics steady_from_runs(const KernelRun& r1, const KernelRun& r2, std::uint32_t n1,
                               std::uint32_t n2) {
  if (n2 <= n1) throw Error("steady_from_runs requires n2 > n1");
  SteadyMetrics m;
  const auto dc = r2.region.cycles - r1.region.cycles;
  const auto di = r2.region.retired() - r1.region.retired();
  const double de = r2.region_energy.total_pj - r1.region_energy.total_pj;
  m.delta_cycles = dc;
  m.ipc = dc == 0 ? 0.0 : static_cast<double>(di) / static_cast<double>(dc);
  m.power_mw = dc == 0 ? 0.0 : de / static_cast<double>(dc);
  m.cycles_per_item = static_cast<double>(dc) / (n2 - n1);
  m.energy_pj_per_item = de / (n2 - n1);
  return m;
}

}  // namespace copift::kernels

#include "kernels/prng.hpp"

#include "common/bits.hpp"

namespace copift::kernels {

Xoshiro128Plus Xoshiro128Plus::seeded(std::uint32_t seed) {
  // SplitMix32 expansion; guarantees a non-zero state.
  std::array<std::uint32_t, 4> s{};
  std::uint32_t x = seed;
  for (auto& word : s) {
    x += 0x9E3779B9u;
    std::uint32_t z = x;
    z = (z ^ (z >> 16)) * 0x85EBCA6Bu;
    z = (z ^ (z >> 13)) * 0xC2B2AE35u;
    word = z ^ (z >> 16);
  }
  if (s[0] == 0 && s[1] == 0 && s[2] == 0 && s[3] == 0) s[0] = 1;
  return Xoshiro128Plus(s);
}

std::uint32_t Xoshiro128Plus::next() noexcept {
  const std::uint32_t result = s_[0] + s_[3];
  const std::uint32_t t = s_[1] << 9;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl32(s_[3], 11);
  return result;
}

double to_unit_double(std::uint32_t raw) noexcept {
  return static_cast<double>(raw) * 0x1p-32;
}

}  // namespace copift::kernels

// Assembly generators for the Monte Carlo kernels (paper Section III-A):
// {pi, poly} x {LCG, xoshiro128+}.
//
// Baselines draw pseudo-random pairs with integer arithmetic, convert and
// test in double precision, and accumulate hits in an integer register
// (flt.d bridges FP -> integer RF each sample — the Type-3 dependency).
//
// COPIFT variants split the PRN generation (integer phase) from the
// conversion/test (FP phase under FREP): raw PRNs are spilled to a
// double-buffered TCDM arena, streamed into the FPSS via an SSR, converted
// with fcvt.d.wu.cop, tested with flt.d.cop and accumulated with fadd.d —
// entirely inside the FP register file (paper Section II-B).
// Multi-hart runs partition the sample index space contiguously: hart h
// evaluates samples [h*chunk, (h+1)*chunk). Each hart's PRNG streams start
// from jump-ahead states computed at codegen time (stored in the per-hart
// `hart_prng` table), so the union of all harts' draws is exactly the
// single-hart sequence and the summed hit count is bit-identical to the
// single-core run. Harts store partial counts into `partials`, rendezvous at
// the hardware barrier, and hart 0 reduces into `result`.
#include <cmath>
#include <string>

#include "common/error.hpp"
#include "kernels/codegen.hpp"
#include "kernels/kernels.hpp"
#include "kernels/kernel_internal.hpp"
#include "kernels/montecarlo.hpp"
#include "kernels/prng.hpp"
#include "workload/hart_slice.hpp"

namespace copift::kernels {

namespace {

using workload::HartSlice;

const char* lcg_state(unsigned u) {
  static constexpr const char* kRegs[] = {"s2", "s3", "s4", "s5", "s6", "s7", "s8", "s9"};
  return kRegs[u];
}
const char* hit_reg(unsigned u) {
  static constexpr const char* kRegs[] = {"a2", "a3", "a4", "a5", "a6", "a7", "t5", "t6"};
  return kRegs[u];
}

/// Per-hart PRNG start-state rows (8 words each), jump-ahead computed on the
/// host. LCG rows hold the 8 slot-stream states (each slot consumes 2 draws
/// per group of kMcUnroll samples); xoshiro rows hold the x-generator and
/// y-generator states (each consumes one draw per sample).
void emit_prng_table(AsmBuilder& b, const KernelConfig& cfg, bool xoshiro) {
  const std::uint32_t chunk = cfg.n / cfg.cores;
  b.label("hart_prng");
  for (std::uint32_t h = 0; h < cfg.cores; ++h) {
    if (!xoshiro) {
      const std::uint64_t draws = static_cast<std::uint64_t>(h) * chunk / 4;
      for (unsigned u = 0; u < kMcUnroll; ++u) {
        Lcg gen(cfg.seed + u);
        for (std::uint64_t d = 0; d < draws; ++d) gen.next();
        b.l(cat(".word ", gen.state()));
      }
    } else {
      const std::uint64_t draws = static_cast<std::uint64_t>(h) * chunk;
      auto gx = Xoshiro128Plus::seeded(cfg.seed);
      auto gy = Xoshiro128Plus::seeded(cfg.seed + 1);
      for (std::uint64_t d = 0; d < draws; ++d) {
        gx.next();
        gy.next();
      }
      for (const std::uint32_t w : gx.state()) b.l(cat(".word ", w));
      for (const std::uint32_t w : gy.state()) b.l(cat(".word ", w));
    }
  }
}

void emit_mc_data(AsmBuilder& b, const KernelConfig& cfg, bool poly, bool copift,
                  bool xoshiro) {
  b.raw(".data\n");
  b.l(".align 3");
  b.label("mc_const");
  b.l(dword_of(0x1p-32));  // raw -> [0,1) scale
  b.l(dword_of(1.0));
  if (poly) {
    const auto& c = mc_poly_coeffs();
    if (!copift) {
      // Baseline: Horner order c5, c4, c3, c2, c1, c0 into fs2..fs7.
      for (int i = 5; i >= 0; --i) b.l(dword_of(c[static_cast<std::size_t>(i)]));
    } else {
      // COPIFT: even/odd split evaluated in the raw PRN domain
      // (X = x * 2^32, T = X^2 = t * 2^64), with coefficients pre-scaled by
      // exact powers of two so the result equals P(x) * 2^32 bit-for-bit:
      //   even chain: c4 * 2^-96, c2 * 2^-32, c0 * 2^32   (fs2, fs3, fs4)
      //   odd  chain: c5 * 2^-128, c3 * 2^-64, c1         (fs5, fs6, fs7)
      // This saves the two [0,1) scale multiplies per sample and halves the
      // dependency-chain depth vs Horner (see emit_fp_frep).
      b.l(dword_of(c[4] * 0x1p-96));
      b.l(dword_of(c[2] * 0x1p-32));
      b.l(dword_of(c[0] * 0x1p+32));
      b.l(dword_of(c[5] * 0x1p-128));
      b.l(dword_of(c[3] * 0x1p-64));
      b.l(dword_of(c[1]));
    }
  }
  b.label("result");
  b.l(".space 8");
  if (cfg.cores > 1) {
    b.label("partials");  // one 8-byte hit-count cell per hart
    b.l(cat(".space ", cfg.cores * 8));
    emit_prng_table(b, cfg, xoshiro);
  }
  if (copift) {
    // PRN arena: 2 slots x 2B raw values in 8-byte cells; one row per hart.
    b.label("arena");
    b.l(cat(".space ", 2 * 2 * cfg.block * 8 * cfg.cores));
  }
  b.raw(".text\n");
}

/// Load this hart's PRNG start states into s2..s9 (covers both the 8 LCG
/// slot streams and the xoshiro x/y generator states). Only for cores > 1;
/// single-core programs keep their historical `li` seed sequences.
void emit_prng_seed_load(AsmBuilder& b, const HartSlice& slice) {
  slice.read_hartid(b, "t5", "per-hart PRNG start states (jump-ahead computed at codegen)");
  slice.table_row(b, "t5", "a1", "hart_prng", 32, "t6");
  for (unsigned i = 0; i < 8; ++i) b.l(cat("lw s", 2 + i, ", ", i * 4, "(a1)"));
}

/// Store this hart's integer hit count (in a0), reduce on hart 0 into
/// `result`, and halt. Replaces the single-core `result` store.
void emit_int_reduction(AsmBuilder& b, const HartSlice& slice) {
  b.l("csrr t5, mhartid");
  slice.table_row(b, "t5", "t0", "partials", 8, "t6");
  b.l("sw a0, 0(t0)");
  b.l("csrwi region, 2");
  b.l("csrr zero, barrier");
  b.l("bnez t5, mc_done");
  b.c("hart 0: sum the per-hart partial counts");
  b.l("la t0, partials");
  b.l("lw a0, 0(t0)");
  for (std::uint32_t h = 1; h < slice.cores(); ++h) {
    b.l(cat("lw t1, ", h * 8, "(t0)"));
    b.l("add a0, a0, t1");
  }
  b.l("la t0, result");
  b.l("sw a0, 0(t0)");
  b.label("mc_done");
  b.l("ecall");
}

/// COPIFT counterpart: the partial lives in fa5 as an exact integer-valued
/// double; hart 0 sums in hart order (exact, so the total is bit-identical
/// to the single-core accumulation).
void emit_fp_reduction(AsmBuilder& b, const HartSlice& slice) {
  b.l("csrr t5, mhartid");
  slice.table_row(b, "t5", "t0", "partials", 8, "t6");
  b.l("fsd fa5, 0(t0)");
  b.l("csrr t2, fpss");  // drain the partial store before the barrier
  b.l("csrwi region, 2");
  b.l("csrr zero, barrier");
  b.l("bnez t5, mc_done");
  b.c("hart 0: sum the per-hart partial counts");
  b.l("la t0, partials");
  b.l("fld fa5, 0(t0)");
  for (std::uint32_t h = 1; h < slice.cores(); ++h) {
    b.l(cat("fld ft5, ", h * 8, "(t0)"));
    b.l("fadd.d fa5, fa5, ft5");
  }
  b.l("la t0, result");
  b.l("fsd fa5, 0(t0)");
  b.l("csrr t2, fpss");  // drain the result store
  b.label("mc_done");
  b.l("ecall");
}

void emit_mc_constants(AsmBuilder& b, bool poly) {
  b.l("la s0, mc_const");
  b.l("fld fs0, 0(s0)");  // 2^-32
  b.l("fld fs1, 8(s0)");  // 1.0
  if (poly) {
    for (unsigned i = 0; i < 6; ++i) b.l(cat("fld fs", 2 + i, ", ", 16 + i * 8, "(s0)"));
  }
}

const char* poly_p_reg(unsigned u) {
  static constexpr const char* kRegs[] = {"ft8", "ft9", "ft10", "ft11",
                                          "fs8", "fs9", "fs10", "fs11"};
  return kRegs[u];
}

// ---------------------------------------------------------------------------
// LCG baseline: 8 independent streams, op-major schedule.
// ---------------------------------------------------------------------------

std::string lcg_baseline(const KernelConfig& cfg, bool poly) {
  if (cfg.n % kMcUnroll != 0) throw Error(cat("mc/baseline: n=", cfg.n, " must be a multiple of 8"));
  const HartSlice slice(cfg);
  AsmBuilder b;
  emit_mc_data(b, cfg, poly, /*copift=*/false, /*xoshiro=*/false);
  b.label("_start");
  if (slice.multi()) {
    emit_prng_seed_load(b, slice);
  } else {
    for (unsigned u = 0; u < kMcUnroll; ++u) {
      b.l(cat("li ", lcg_state(u), ", ", cfg.seed + u));
    }
  }
  b.l(cat("li t0, ", Lcg::kMul));
  b.l(cat("li t1, ", Lcg::kInc));
  b.l("li a0, 0");  // hit accumulator
  b.l(cat("li t3, ", slice.chunk() / kMcUnroll));
  emit_mc_constants(b, poly);
  b.l("csrwi region, 1");
  b.label("body_begin");
  for (unsigned u = 0; u < kMcUnroll; ++u)
    b.l(cat("mul ", lcg_state(u), ", ", lcg_state(u), ", t0"));
  for (unsigned u = 0; u < kMcUnroll; ++u)
    b.l(cat("add ", lcg_state(u), ", ", lcg_state(u), ", t1"));
  for (unsigned u = 0; u < kMcUnroll; ++u) b.l(cat("fcvt.d.wu fa", u, ", ", lcg_state(u)));
  for (unsigned u = 0; u < kMcUnroll; ++u) b.l(cat("fmul.d fa", u, ", fa", u, ", fs0"));
  for (unsigned u = 0; u < kMcUnroll; ++u)
    b.l(cat("mul ", lcg_state(u), ", ", lcg_state(u), ", t0"));
  for (unsigned u = 0; u < kMcUnroll; ++u)
    b.l(cat("add ", lcg_state(u), ", ", lcg_state(u), ", t1"));
  for (unsigned u = 0; u < kMcUnroll; ++u) b.l(cat("fcvt.d.wu ft", u, ", ", lcg_state(u)));
  for (unsigned u = 0; u < kMcUnroll; ++u) b.l(cat("fmul.d ft", u, ", ft", u, ", fs0"));
  if (poly) {
    for (unsigned step = 0; step < 5; ++step) {
      for (unsigned u = 0; u < kMcUnroll; ++u) {
        if (step == 0) {
          b.l(cat("fmadd.d ", poly_p_reg(u), ", fs2, fa", u, ", fs3"));
        } else {
          b.l(cat("fmadd.d ", poly_p_reg(u), ", ", poly_p_reg(u), ", fa", u, ", fs",
                  3 + step));
        }
      }
    }
    for (unsigned u = 0; u < kMcUnroll; ++u)
      b.l(cat("flt.d ", hit_reg(u), ", ft", u, ", ", poly_p_reg(u)));
  } else {
    for (unsigned u = 0; u < kMcUnroll; ++u) b.l(cat("fmul.d fa", u, ", fa", u, ", fa", u));
    for (unsigned u = 0; u < kMcUnroll; ++u)
      b.l(cat("fmadd.d fa", u, ", ft", u, ", ft", u, ", fa", u));
    for (unsigned u = 0; u < kMcUnroll; ++u)
      b.l(cat("flt.d ", hit_reg(u), ", fa", u, ", fs1"));
  }
  for (unsigned u = 0; u < kMcUnroll; ++u) b.l(cat("add a0, a0, ", hit_reg(u)));
  b.l("addi t3, t3, -1");
  b.l("bnez t3, body_begin");
  b.label("body_end");
  if (slice.multi()) {
    emit_int_reduction(b, slice);
  } else {
    b.l("la t0, result");
    b.l("sw a0, 0(t0)");
    b.l("csrwi region, 2");
    b.l("ecall");
  }
  return b.str();
}

// ---------------------------------------------------------------------------
// xoshiro128+ baseline: one x-generator + one y-generator kept in registers.
// ---------------------------------------------------------------------------

/// Emit one xoshiro128+ draw into `dst` updating state regs {r0..r3}.
void emit_xoshiro_next(AsmBuilder& b, const char* dst, const char* r0, const char* r1,
                       const char* r2, const char* r3) {
  b.l(cat("add ", dst, ", ", r0, ", ", r3));  // result = s0 + s3
  b.l(cat("slli t5, ", r1, ", 9"));           // t = s1 << 9
  b.l(cat("xor ", r2, ", ", r2, ", ", r0));
  b.l(cat("xor ", r3, ", ", r3, ", ", r1));
  b.l(cat("xor ", r1, ", ", r1, ", ", r2));
  b.l(cat("xor ", r0, ", ", r0, ", ", r3));
  b.l(cat("xor ", r2, ", ", r2, ", t5"));
  b.l(cat("slli t6, ", r3, ", 11"));          // rotl(s3, 11)
  b.l(cat("srli ", r3, ", ", r3, ", 21"));
  b.l(cat("or ", r3, ", t6, ", r3));
}

void emit_xoshiro_seed(AsmBuilder& b, std::uint32_t seed, bool y_gen) {
  const auto gen = Xoshiro128Plus::seeded(seed);
  for (unsigned i = 0; i < 4; ++i) {
    b.l(cat("li ", y_gen ? "s" : "s", y_gen ? 6 + i : 2 + i, ", ", gen.state()[i]));
  }
}

std::string xoshiro_baseline(const KernelConfig& cfg, bool poly) {
  if (cfg.n % kMcUnroll != 0) throw Error(cat("mc/baseline: n=", cfg.n, " must be a multiple of 8"));
  const HartSlice slice(cfg);
  AsmBuilder b;
  emit_mc_data(b, cfg, poly, /*copift=*/false, /*xoshiro=*/true);
  b.label("_start");
  if (slice.multi()) {
    emit_prng_seed_load(b, slice);  // x-gen s2..s5, y-gen s6..s9
  } else {
    emit_xoshiro_seed(b, cfg.seed, /*y_gen=*/false);      // s2..s5
    emit_xoshiro_seed(b, cfg.seed + 1, /*y_gen=*/true);   // s6..s9
  }
  b.l("li a0, 0");   // accumulator
  b.l("li a5, 0");   // deferred hit of the previous sample
  b.l(cat("li t3, ", slice.chunk() / kMcUnroll));
  emit_mc_constants(b, poly);
  b.l("csrwi region, 1");
  b.label("body_begin");
  for (unsigned s = 0; s < kMcUnroll; ++s) {
    const unsigned u = s % 4;  // FP register rotation across samples
    const char* hit = (s % 2) == 0 ? "a4" : "a5";
    const char* prev = (s % 2) == 0 ? "a5" : "a4";
    emit_xoshiro_next(b, "a2", "s2", "s3", "s4", "s5");
    emit_xoshiro_next(b, "a3", "s6", "s7", "s8", "s9");
    b.l(cat("fcvt.d.wu fa", u, ", a2"));
    b.l(cat("fmul.d fa", u, ", fa", u, ", fs0"));
    b.l(cat("fcvt.d.wu ft", u, ", a3"));
    b.l(cat("fmul.d ft", u, ", ft", u, ", fs0"));
    if (poly) {
      b.l(cat("fmadd.d ", poly_p_reg(u), ", fs2, fa", u, ", fs3"));
      for (unsigned step = 1; step < 5; ++step) {
        b.l(cat("fmadd.d ", poly_p_reg(u), ", ", poly_p_reg(u), ", fa", u, ", fs", 3 + step));
      }
    } else {
      b.l(cat("fmul.d fa", u, ", fa", u, ", fa", u));
      b.l(cat("fmadd.d fa", u, ", ft", u, ", ft", u, ", fa", u));
    }
    b.l(cat("add a0, a0, ", prev));  // deferred accumulate (hides flt latency)
    if (poly) {
      b.l(cat("flt.d ", hit, ", ft", u, ", ", poly_p_reg(u)));
    } else {
      b.l(cat("flt.d ", hit, ", fa", u, ", fs1"));
    }
  }
  b.l("addi t3, t3, -1");
  b.l("bnez t3, body_begin");
  b.label("body_end");
  b.l("add a0, a0, a5");  // last pending hit (kMcUnroll is even)
  if (slice.multi()) {
    emit_int_reduction(b, slice);
  } else {
    b.l("la t0, result");
    b.l("sw a0, 0(t0)");
    b.l("csrwi region, 2");
    b.l("ecall");
  }
  return b.str();
}

// ---------------------------------------------------------------------------
// COPIFT variants
// ---------------------------------------------------------------------------

/// Raw-PRN cell offsets within the arena slot. The FP FREP body is unrolled
/// 2x op-major, so the stream consumption order per sample pair (A, B) is
/// xA, xB, yA, yB — cells are laid out in groups of four accordingly.
std::uint32_t x_cell(unsigned s) { return (s / 2) * 32 + (s % 2) * 8; }
std::uint32_t y_cell(unsigned s) { return x_cell(s) + 16; }

/// Integer PRN phase for one block: writes raw (x, y) values into 8-byte
/// cells at the arena slot in s10.
void emit_int_prn_phase(AsmBuilder& b, const KernelConfig& cfg, bool xoshiro, unsigned site) {
  const std::uint32_t block = cfg.block;
  b.c("integer phase: PRN generation into the write slot");
  b.l("mv a1, s10");
  emit_add_imm(b, "a0", "s10", 2 * block * 8, "a0");
  b.label(cat("prn_loop_", site));
  if (!xoshiro) {
    for (unsigned u = 0; u < kMcUnroll; ++u)
      b.l(cat("mul ", lcg_state(u), ", ", lcg_state(u), ", t0"));
    for (unsigned u = 0; u < kMcUnroll; ++u)
      b.l(cat("add ", lcg_state(u), ", ", lcg_state(u), ", t1"));
    for (unsigned u = 0; u < kMcUnroll; ++u)
      b.l(cat("sw ", lcg_state(u), ", ", x_cell(u), "(a1)"));
    for (unsigned u = 0; u < kMcUnroll; ++u)
      b.l(cat("mul ", lcg_state(u), ", ", lcg_state(u), ", t0"));
    for (unsigned u = 0; u < kMcUnroll; ++u)
      b.l(cat("add ", lcg_state(u), ", ", lcg_state(u), ", t1"));
    for (unsigned u = 0; u < kMcUnroll; ++u)
      b.l(cat("sw ", lcg_state(u), ", ", y_cell(u), "(a1)"));
  } else {
    for (unsigned s = 0; s < kMcUnroll; ++s) {
      emit_xoshiro_next(b, "a2", "s2", "s3", "s4", "s5");
      b.l(cat("sw a2, ", x_cell(s), "(a1)"));
      emit_xoshiro_next(b, "a3", "s6", "s7", "s8", "s9");
      b.l(cat("sw a3, ", y_cell(s), "(a1)"));
    }
  }
  b.l(cat("addi a1, a1, ", kMcUnroll * 16));
  b.l(cat("bne a1, a0, prn_loop_", site));
}

/// FP phase FREP body (2x unrolled, op-major): consumes sample pairs from
/// ft0 and accumulates hits into fa5 (pair slot A) and ft5 (pair slot B).
///
/// The accumulation is rotated by one loop iteration: each iteration adds
/// the *previous* iteration's hit flags (hit registers are zero-initialized
/// and the final pair is added in the epilogue). Combined with careful
/// op-major interleaving this gives every 3-cycle producer at least 3 issue
/// slots before its consumer — a zero-stall steady state.
void emit_fp_frep(AsmBuilder& b, bool poly) {
  const unsigned body = poly ? 20 : 16;
  b.l("scfgwi s11, 26");  // lane0 RPTR2 <- read slot (3-D pair/field/group)
  b.l(cat("frep.o t4, ", body));
  if (poly) {
    // Raw-domain even/odd evaluation: P''(X) = E''(T) + X*O''(T), T = X^2,
    // coefficients pre-scaled (see emit_mc_data). Hit: Y < P''(X).
    b.l("fcvt.d.wu.cop fa0, ft0");      // XA
    b.l("fcvt.d.wu.cop fa6, ft0");      // XB
    b.l("fcvt.d.wu.cop fa1, ft0");      // YA
    b.l("fcvt.d.wu.cop fa7, ft0");      // YB
    b.l("fmul.d fa2, fa0, fa0");        // TA
    b.l("fmul.d ft3, fa6, fa6");        // TB
    b.l("fmadd.d fa3, fs2, fa2, fs3");  // eA = c4''*T + c2''
    b.l("fmadd.d ft4, fs2, ft3, fs3");  // eB
    b.l("fmadd.d fa4, fs5, fa2, fs6");  // oA = c5''*T + c3''
    b.l("fmadd.d ft6, fs5, ft3, fs6");  // oB
    b.l("fmadd.d fa3, fa3, fa2, fs4");  // eA = e*T + c0''
    b.l("fmadd.d ft4, ft4, ft3, fs4");  // eB
    b.l("fmadd.d fa4, fa4, fa2, fs7");  // oA = o*T + c1''
    b.l("fmadd.d ft6, ft6, ft3, fs7");  // oB
    b.l("fadd.d fa5, fa5, ft7");        // accumulate previous pair's hits
    b.l("fmadd.d fa3, fa4, fa0, fa3");  // PA = o*X + e
    b.l("fmadd.d ft4, ft6, fa6, ft4");  // PB
    b.l("fadd.d ft5, ft5, ft8");
    b.l("flt.d.cop ft7, fa1, fa3");     // hitA = YA < PA
    b.l("flt.d.cop ft8, fa7, ft4");     // hitB
  } else {
    b.l("fcvt.d.wu.cop fa0, ft0");  // xA
    b.l("fcvt.d.wu.cop fa6, ft0");  // xB
    b.l("fcvt.d.wu.cop fa1, ft0");  // yA
    b.l("fcvt.d.wu.cop fa7, ft0");  // yB
    b.l("fmul.d fa0, fa0, fs0");
    b.l("fmul.d fa6, fa6, fs0");
    b.l("fmul.d fa1, fa1, fs0");
    b.l("fmul.d fa7, fa7, fs0");
    b.l("fmul.d fa0, fa0, fa0");    // xxA
    b.l("fmul.d fa6, fa6, fa6");    // xxB
    b.l("fadd.d fa5, fa5, fa2");    // accumulate previous pair's hits
    b.l("fmadd.d fa0, fa1, fa1, fa0");  // ttA
    b.l("fmadd.d fa6, fa7, fa7, fa6");  // ttB
    b.l("fadd.d ft5, ft5, fa4");
    b.l("flt.d.cop fa2, fa0, fs1");     // hitA
    b.l("flt.d.cop fa4, fa6, fs1");     // hitB
  }
}

std::string mc_copift(const KernelConfig& cfg, bool poly, bool xoshiro) {
  const std::uint32_t block = cfg.block;
  if (block % kMcUnroll != 0) throw Error(cat("mc/copift: block=", block, " must be a multiple of 8"));
  if (cfg.n % block != 0) throw Error(cat("mc/copift: block=", block, " does not divide n=", cfg.n));
  const HartSlice slice(cfg);
  const std::uint32_t nb = slice.chunk() / block;  // blocks per hart
  if (nb < 2) throw Error(cat("mc/copift: n=", cfg.n, " with block=", block, " needs at least 2 blocks per hart"));

  AsmBuilder b;
  emit_mc_data(b, cfg, poly, /*copift=*/true, xoshiro);
  b.label("_start");
  if (slice.multi()) {
    emit_prng_seed_load(b, slice);
    if (!xoshiro) {
      b.l(cat("li t0, ", Lcg::kMul));
      b.l(cat("li t1, ", Lcg::kInc));
    }
  } else if (!xoshiro) {
    for (unsigned u = 0; u < kMcUnroll; ++u)
      b.l(cat("li ", lcg_state(u), ", ", cfg.seed + u));
    b.l(cat("li t0, ", Lcg::kMul));
    b.l(cat("li t1, ", Lcg::kInc));
  } else {
    emit_xoshiro_seed(b, cfg.seed, /*y_gen=*/false);
    emit_xoshiro_seed(b, cfg.seed + 1, /*y_gen=*/true);
  }
  emit_mc_constants(b, poly);
  b.l("fcvt.d.w fa5, zero");  // accumulator A = 0.0
  b.l("fcvt.d.w ft5, zero");  // accumulator B = 0.0
  // Zero-initialize the rotated hit registers (see emit_fp_frep).
  if (poly) {
    b.l("fcvt.d.w ft7, zero");
    b.l("fcvt.d.w ft8, zero");
  } else {
    b.l("fcvt.d.w fa2, zero");
    b.l("fcvt.d.w fa4, zero");
  }
  b.l("la s10, arena");
  b.l(cat("la s11, arena + ", 2 * block * 8));
  if (slice.multi()) {
    b.c("this hart's double-buffered arena row (t5 still holds mhartid)");
    slice.offset_by_rows(b, "t5", 2 * 2 * block * 8, {"s10", "s11"}, "t2", "t6");
  }
  b.l(cat("li t4, ", block / 2 - 1));  // FREP reps (2 samples per iteration)
  b.l(cat("li t3, ", nb - 1));
  b.l("csrsi ssr, 1");
  b.c("lane0: 3-D read xA,xB,yA,yB per sample pair");
  b.l("li t2, 1");
  b.l("scfgwi t2, 1");    // bound0 = 1 (pair)
  b.l("li t2, 8");
  b.l("scfgwi t2, 5");    // stride0 = 8
  b.l("li t2, 1");
  b.l("scfgwi t2, 2");    // bound1 = 1 (x -> y field)
  b.l("li t2, 16");
  b.l("scfgwi t2, 6");    // stride1 = 16
  b.l(cat("li t2, ", block / 2 - 1));
  b.l("scfgwi t2, 3");    // bound2 = B/2-1 (groups)
  b.l("li t2, 32");
  b.l("scfgwi t2, 7");    // stride2 = 32
  b.l("csrwi region, 1");

  b.c("prologue: PRNs of block 0");
  emit_int_prn_phase(b, cfg, xoshiro, 0);
  b.l("mv t6, s10");
  b.l("mv s10, s11");
  b.l("mv s11, t6");

  b.label("steady");
  b.label("body_begin");
  emit_fp_frep(b, poly);
  b.l("copift.barrier");
  emit_int_prn_phase(b, cfg, xoshiro, 1);
  b.l("mv t6, s10");
  b.l("mv s10, s11");
  b.l("mv s11, t6");
  b.l("addi t3, t3, -1");
  b.l("bnez t3, steady");
  b.label("body_end");

  b.c("epilogue: FP phase of the last block");
  emit_fp_frep(b, poly);
  b.l("csrr t2, fpss");  // drain
  b.l("csrci ssr, 1");
  b.c("fold in the final pair's hits (rotated accumulation)");
  if (poly) {
    b.l("fadd.d fa5, fa5, ft7");
    b.l("fadd.d ft5, ft5, ft8");
  } else {
    b.l("fadd.d fa5, fa5, fa2");
    b.l("fadd.d ft5, ft5, fa4");
  }
  b.l("fadd.d fa5, fa5, ft5");  // merge the two accumulators
  if (slice.multi()) {
    emit_fp_reduction(b, slice);
  } else {
    b.l("la t0, result");
    b.l("fsd fa5, 0(t0)");
    b.l("csrr t2, fpss");  // drain the result store
    b.l("csrwi region, 2");
    b.l("ecall");
  }
  return b.str();
}

}  // namespace

std::string generate_mc(Variant variant, const KernelConfig& cfg, bool poly, bool xoshiro) {
  if (variant == Variant::kCopift) return mc_copift(cfg, poly, xoshiro);
  return xoshiro ? xoshiro_baseline(cfg, poly) : lcg_baseline(cfg, poly);
}

}  // namespace copift::kernels

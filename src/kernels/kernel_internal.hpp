// Internal interfaces between the per-kernel generator translation units.
#pragma once

#include <string>

#include "kernels/kernels.hpp"

namespace copift::kernels {

std::string generate_exp(Variant variant, const KernelConfig& config);
std::string generate_log(Variant variant, const KernelConfig& config);

/// Monte Carlo family: `poly` selects the polynomial-integration problem
/// (pi otherwise); `xoshiro` selects the PRNG (LCG otherwise).
std::string generate_mc(Variant variant, const KernelConfig& config, bool poly, bool xoshiro);

}  // namespace copift::kernels

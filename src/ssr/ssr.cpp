#include "ssr/ssr.hpp"

#include <utility>

#include "common/error.hpp"
#include "isa/reg.hpp"

namespace copift::ssr {

// ---------------------------------------------------------------------------
// AffineGenerator
// ---------------------------------------------------------------------------

void AffineGenerator::configure(std::uint32_t base, unsigned dims,
                                const std::array<std::uint32_t, 4>& bounds,
                                const std::array<std::int32_t, 4>& strides) {
  if (dims < 1 || dims > 4) throw SimError("SSR dims out of range");
  base_ = base;
  dims_ = dims;
  bounds_ = bounds;
  strides_ = strides;
  index_ = {0, 0, 0, 0};
  addr_ = base;
  done_ = false;
}

void AffineGenerator::advance() {
  if (done_) throw SimError("advance on exhausted SSR generator");
  for (unsigned d = 0; d < dims_; ++d) {
    if (index_[d] < bounds_[d]) {
      ++index_[d];
      addr_ += static_cast<std::uint32_t>(strides_[d]);
      return;
    }
    // Wrap this dimension: undo its accumulated offset and carry.
    addr_ -= static_cast<std::uint32_t>(strides_[d]) * index_[d];
    index_[d] = 0;
  }
  done_ = true;
}

std::uint64_t AffineGenerator::total() const noexcept {
  std::uint64_t n = 1;
  for (unsigned d = 0; d < dims_; ++d) n *= bounds_[d] + std::uint64_t{1};
  return n;
}

// ---------------------------------------------------------------------------
// SsrLane
// ---------------------------------------------------------------------------

void SsrLane::arm(bool write, unsigned dims, std::uint32_t base) {
  if (write_ && active_ && !fifo_.empty()) {
    throw SimError("re-arming SSR write lane with undrained data");
  }
  fifo_.clear();
  token_fifo_.clear();
  idx_fifo_.clear();
  ready_ = 0;
  fetched_this_cycle_ = 0;
  has_last_ = false;
  repeat_left_ = 0;
  write_ = write;
  active_ = true;
  data_base_ = base;
  indirect_ = !write && cfg_[kRegIdxCfg] != 0;
  if (indirect_) {
    // Index stream: `kRegIdxCfg` 32-bit indices fetched sequentially.
    const std::uint32_t count = cfg_[kRegIdxCfg];
    idx_gen_.configure(cfg_[kRegIdxBase], 1, {count - 1, 0, 0, 0}, {4, 0, 0, 0});
    cfg_[kRegIdxCfg] = 0;  // one-shot: next arm is affine unless reconfigured
  } else {
    const std::array<std::uint32_t, 4> bounds = {cfg_[kRegBound0], cfg_[kRegBound1],
                                                 cfg_[kRegBound2], cfg_[kRegBound3]};
    const std::array<std::int32_t, 4> strides = {
        static_cast<std::int32_t>(cfg_[kRegStride0]), static_cast<std::int32_t>(cfg_[kRegStride1]),
        static_cast<std::int32_t>(cfg_[kRegStride2]), static_cast<std::int32_t>(cfg_[kRegStride3])};
    gen_.configure(base, dims, bounds, strides);
  }
}

void SsrLane::write_cfg(unsigned reg, std::uint32_t value) {
  if (reg >= cfg_.size()) throw SimError("SSR config register out of range");
  if (reg >= kRegRptr0 && reg <= kRegRptr3) {
    cfg_[reg] = value;
    arm(/*write=*/false, reg - kRegRptr0 + 1, value);
    return;
  }
  if (reg >= kRegWptr0 && reg <= kRegWptr3) {
    cfg_[reg] = value;
    arm(/*write=*/true, reg - kRegWptr0 + 1, value);
    return;
  }
  cfg_[reg] = value;
}

std::uint32_t SsrLane::read_cfg(unsigned reg) const {
  if (reg >= cfg_.size()) throw SimError("SSR config register out of range");
  return cfg_[reg];
}

std::uint64_t SsrLane::pop() {
  if (!can_pop()) throw SimError("pop from empty SSR lane");
  const std::uint64_t value = fifo_.front();
  if (!has_last_) {
    repeat_left_ = cfg_[kRegRepeat];
    has_last_ = true;
  }
  if (repeat_left_ == 0) {
    fifo_.pop_front();
    --ready_;
    has_last_ = false;
  } else {
    --repeat_left_;
  }
  ++elements_moved_;
  return value;
}

void SsrLane::push(std::uint64_t value, std::uint64_t token) {
  if (!can_push()) throw SimError("push to full SSR lane");
  fifo_.push_back(value);
  token_fifo_.push_back(token);
  ++elements_moved_;
}

bool SsrLane::idle() const noexcept {
  if (!active_) return true;
  if (write_) return gen_.done() && fifo_.empty();
  if (indirect_) return idx_gen_.done() && idx_fifo_.empty();
  return gen_.done();
}

bool SsrLane::wants_data_access(std::uint32_t& addr) const {
  if (!active_) return false;
  if (write_) {
    if (fifo_.empty() || gen_.done()) return false;
    addr = gen_.current();
    return true;
  }
  if (fifo_.size() >= fifo_depth_) return false;
  if (indirect_) {
    if (idx_fifo_.empty()) return false;
    addr = data_base_ + (idx_fifo_.front() << cfg_[kRegIdxShift]);
    return true;
  }
  if (gen_.done()) return false;
  addr = gen_.current();
  return true;
}

bool SsrLane::wants_index_access(std::uint32_t& addr) const {
  if (!active_ || write_ || !indirect_) return false;
  if (idx_gen_.done() || idx_fifo_.size() >= fifo_depth_) return false;
  addr = idx_gen_.current();
  return true;
}

void SsrLane::data_granted(mem::AddressSpace& memory) {
  std::uint32_t addr = 0;
  if (!wants_data_access(addr)) throw SimError("unexpected SSR data grant");
  if (write_) {
    memory.store64(addr, fifo_.front());
    fifo_.pop_front();
    if (!token_fifo_.empty()) {
      if (token_fifo_.front() != kNoToken) drained_tokens_.push_back(token_fifo_.front());
      token_fifo_.pop_front();
    }
    gen_.advance();
  } else {
    fifo_.push_back(memory.load64(addr));
    ++fetched_this_cycle_;
    if (indirect_) {
      idx_fifo_.pop_front();
    } else {
      gen_.advance();
    }
  }
}

void SsrLane::index_granted(mem::AddressSpace& memory) {
  std::uint32_t addr = 0;
  if (!wants_index_access(addr)) throw SimError("unexpected SSR index grant");
  idx_fifo_.push_back(memory.load32(addr));
  idx_gen_.advance();
}

void SsrLane::commit_cycle() {
  ready_ += fetched_this_cycle_;
  fetched_this_cycle_ = 0;
}

// ---------------------------------------------------------------------------
// SsrUnit
// ---------------------------------------------------------------------------

void SsrUnit::write_cfg(unsigned imm, std::uint32_t value) {
  const unsigned lane = imm / 32;
  if (lane >= lanes_.size()) throw SimError("SSR lane out of range in scfgwi");
  lanes_[lane].write_cfg(imm % 32, value);
}

std::uint32_t SsrUnit::read_cfg(unsigned imm) const {
  const unsigned lane = imm / 32;
  if (lane >= lanes_.size()) throw SimError("SSR lane out of range in scfgri");
  return lanes_[lane].read_cfg(imm % 32);
}

bool SsrUnit::all_idle() const noexcept {
  for (const auto& lane : lanes_) {
    if (!lane.idle()) return false;
  }
  return true;
}

void SsrUnit::collect_requests(std::vector<mem::TcdmRequest>& requests,
                               std::vector<RequestTag>& tags) const {
  bool index_port_used = false;
  for (unsigned i = 0; i < lanes_.size(); ++i) {
    std::uint32_t addr = 0;
    // The ISSR index port is shared: one index fetch per cycle.
    if (!index_port_used && lanes_[i].wants_index_access(addr)) {
      requests.push_back({mem::TcdmPort::kIssrIndex, addr});
      tags.push_back({i, /*index=*/true});
      index_port_used = true;
    }
    if (lanes_[i].wants_data_access(addr)) {
      const auto port = static_cast<mem::TcdmPort>(static_cast<unsigned>(mem::TcdmPort::kSsr0) + i);
      requests.push_back({port, addr});
      tags.push_back({i, /*index=*/false});
    }
  }
}

void SsrUnit::apply_grant(const RequestTag& tag) {
  if (tag.index) {
    lanes_[tag.lane].index_granted(*memory_);
  } else {
    lanes_[tag.lane].data_granted(*memory_);
  }
}

void SsrUnit::commit_cycle() {
  for (auto& lane : lanes_) lane.commit_cycle();
}

}  // namespace copift::ssr

// Stream Semantic Registers (SSR) and Indirection SSR (ISSR) model.
//
// Snitch remaps FP registers ft0..ft2 to three stream lanes when the SSR CSR
// is enabled: reads of ft_n pop elements streamed from memory by a 4-D affine
// address generator, writes push elements that a data mover drains to memory
// (Schuiki et al., "Stream Semantic Registers"). The ISSR extension
// (Scheffler et al.) adds indirect streams: a second port fetches a stream of
// 32-bit indices and the lane reads `data_base + (index << shift)`.
//
// Configuration is memory-mapped through `scfgwi`/`scfgri` with the word
// address layout in SsrCfgReg below; writing RPTR/WPTR arms the lane as a
// read/write stream of the given dimensionality, mirroring the real driver.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "common/ring.hpp"
#include "isa/reg.hpp"
#include "mem/address_space.hpp"
#include "mem/tcdm.hpp"

namespace copift::ssr {

/// Config word offsets within a lane's 32-word window.
/// scfgwi imm = lane * 32 + register.
enum SsrCfgReg : unsigned {
  kRegRepeat = 0,     // each element delivered (value+1) times
  kRegBound0 = 1,     // iterations-1 for dim 0..3
  kRegBound1 = 2,
  kRegBound2 = 3,
  kRegBound3 = 4,
  kRegStride0 = 5,    // byte strides for dim 0..3
  kRegStride1 = 6,
  kRegStride2 = 7,
  kRegStride3 = 8,
  kRegIdxBase = 9,    // ISSR: base address of the 32-bit index array
  kRegIdxShift = 10,  // ISSR: element shift (3 => index * 8 bytes)
  kRegIdxCfg = 11,    // ISSR: number of indices - 1; arms indirection
  kRegRptr0 = 24,     // write base & arm READ stream with dims = 1..4
  kRegRptr1 = 25,
  kRegRptr2 = 26,
  kRegRptr3 = 27,
  kRegWptr0 = 28,     // write base & arm WRITE stream with dims = 1..4
  kRegWptr1 = 29,
  kRegWptr2 = 30,
  kRegWptr3 = 31,
};

/// 4-D affine address generator: enumerates
///   base + i0*s0 + i1*s1 + i2*s2 + i3*s3
/// with i_d in [0, bound_d], dim 0 innermost.
class AffineGenerator {
 public:
  void configure(std::uint32_t base, unsigned dims,
                 const std::array<std::uint32_t, 4>& bounds,
                 const std::array<std::int32_t, 4>& strides);

  [[nodiscard]] bool done() const noexcept { return done_; }
  [[nodiscard]] std::uint32_t current() const noexcept { return addr_; }
  void advance();

  /// Total number of elements the configured stream will produce.
  [[nodiscard]] std::uint64_t total() const noexcept;

 private:
  std::uint32_t base_ = 0;
  unsigned dims_ = 1;
  std::array<std::uint32_t, 4> bounds_{};   // iterations-1
  std::array<std::int32_t, 4> strides_{};
  std::array<std::uint32_t, 4> index_{};
  std::uint32_t addr_ = 0;
  bool done_ = true;
};

/// One stream lane (data FIFO + generator + optional indirection).
class SsrLane {
 public:
  SsrLane() = default;
  explicit SsrLane(unsigned fifo_depth) : fifo_depth_(fifo_depth) {}

  void write_cfg(unsigned reg, std::uint32_t value);
  [[nodiscard]] std::uint32_t read_cfg(unsigned reg) const;

  // --- processor-side interface ---
  [[nodiscard]] bool is_read_stream() const noexcept { return active_ && !write_; }
  [[nodiscard]] bool is_write_stream() const noexcept { return active_ && write_; }
  [[nodiscard]] bool can_pop() const noexcept { return ready_ > 0; }
  /// Number of elements consumable this cycle (instructions reading the same
  /// stream register multiple times pop once per operand occurrence).
  [[nodiscard]] unsigned ready_count() const noexcept { return ready_; }
  std::uint64_t pop();
  [[nodiscard]] bool can_push() const noexcept {
    return fifo_.size() < fifo_depth_;
  }
  /// Push a value into a write stream. `token` (if not kNoToken) is handed
  /// back via take_drained_tokens() once the value has landed in memory —
  /// the FPSS uses this to defer instruction completion until the store is
  /// architecturally visible (required by copift.barrier).
  static constexpr std::uint64_t kNoToken = ~std::uint64_t{0};
  void push(std::uint64_t value, std::uint64_t token = kNoToken);
  /// Tokens whose values have landed in memory since the consumer last
  /// called clear_drained_tokens(). Split into check/read/clear (instead of
  /// a take-by-value call) so the common nothing-drained cycle touches no
  /// heap: the backing vector is persistent and merely cleared.
  [[nodiscard]] bool has_drained_tokens() const noexcept { return !drained_tokens_.empty(); }
  [[nodiscard]] const std::vector<std::uint64_t>& drained_tokens() const noexcept {
    return drained_tokens_;
  }
  void clear_drained_tokens() noexcept { drained_tokens_.clear(); }

  /// Lane has no pending work (drained writes / exhausted reads).
  [[nodiscard]] bool idle() const noexcept;

  // --- memory-side interface (driven by the cluster each cycle) ---
  /// Does this lane want a TCDM data access this cycle? If so `addr` is set.
  [[nodiscard]] bool wants_data_access(std::uint32_t& addr) const;
  /// Does this lane want an ISSR index fetch this cycle?
  [[nodiscard]] bool wants_index_access(std::uint32_t& addr) const;
  /// Called when the data access was granted.
  void data_granted(mem::AddressSpace& memory);
  /// Called when the index access was granted.
  void index_granted(mem::AddressSpace& memory);
  /// End-of-cycle bookkeeping: freshly fetched data becomes consumable.
  void commit_cycle();

  [[nodiscard]] std::uint64_t stalled_pops() const noexcept { return stalled_pops_; }
  [[nodiscard]] std::uint64_t elements_moved() const noexcept { return elements_moved_; }

 private:
  void arm(bool write, unsigned dims, std::uint32_t base);

  unsigned fifo_depth_ = 4;
  std::array<std::uint32_t, 32> cfg_{};
  AffineGenerator gen_;
  // For reads: FIFO holds fetched data; `ready_` counts elements fetched in
  // previous cycles (data fetched this cycle is consumable next cycle).
  // For writes: FIFO holds data pending drain to memory.
  RingFifo<std::uint64_t> fifo_;
  unsigned ready_ = 0;
  unsigned fetched_this_cycle_ = 0;
  bool active_ = false;
  bool write_ = false;
  std::uint32_t data_base_ = 0;
  // Repetition: deliver each element (repeat+1) times.
  std::uint32_t repeat_left_ = 0;
  std::uint64_t last_value_ = 0;
  bool has_last_ = false;
  // Indirection (ISSR).
  RingFifo<std::uint64_t> token_fifo_;
  std::vector<std::uint64_t> drained_tokens_;
  bool indirect_ = false;
  std::uint32_t idx_remaining_ = 0;
  AffineGenerator idx_gen_;
  RingFifo<std::uint32_t> idx_fifo_;  // fetched indices pending data fetch
  std::uint64_t stalled_pops_ = 0;
  std::uint64_t elements_moved_ = 0;
};

/// The three lanes plus config decode, as seen by the core.
class SsrUnit {
 public:
  explicit SsrUnit(mem::AddressSpace& memory) : memory_(&memory) {}

  void write_cfg(unsigned imm, std::uint32_t value);
  [[nodiscard]] std::uint32_t read_cfg(unsigned imm) const;

  [[nodiscard]] SsrLane& lane(unsigned i) { return lanes_[i]; }
  [[nodiscard]] const SsrLane& lane(unsigned i) const { return lanes_[i]; }

  [[nodiscard]] bool enabled() const noexcept { return enabled_; }
  void set_enabled(bool on) noexcept { enabled_ = on; }

  [[nodiscard]] bool all_idle() const noexcept;

  /// True if any lane wants a TCDM data or index access this cycle. Stream
  /// traffic pins the cluster to per-cycle execution (skip-ahead gate).
  [[nodiscard]] bool wants_any_access() const noexcept {
    std::uint32_t addr = 0;
    for (const auto& lane : lanes_) {
      if (lane.wants_data_access(addr) || lane.wants_index_access(addr)) return true;
    }
    return false;
  }

  /// Gather this cycle's TCDM requests (appends to `requests`, recording
  /// which lane/kind each request belongs to in `tags`).
  struct RequestTag {
    unsigned lane;
    bool index;  // ISSR index fetch rather than data access
  };
  void collect_requests(std::vector<mem::TcdmRequest>& requests,
                        std::vector<RequestTag>& tags) const;
  void apply_grant(const RequestTag& tag);
  void commit_cycle();

 private:
  mem::AddressSpace* memory_;
  std::array<SsrLane, isa::kNumSsrLanes> lanes_{};
  bool enabled_ = false;
};

}  // namespace copift::ssr

#include "frep/frep.hpp"

#include "common/error.hpp"

namespace copift::frep {

void FrepSequencer::configure(unsigned body_size, std::uint64_t extra_reps, Mode mode) {
  if (state_ != State::kIdle) throw SimError("nested FREP configuration");
  if (body_size == 0) throw SimError("FREP body must contain at least one instruction");
  if (body_size > capacity_) {
    throw SimError("FREP body of " + std::to_string(body_size) +
                   " instructions exceeds buffer capacity " + std::to_string(capacity_));
  }
  buffer_.clear();
  body_size_ = body_size;
  extra_reps_ = extra_reps;
  mode_ = mode;
  state_ = State::kRecording;
  pending_replays_ = static_cast<std::uint64_t>(body_size) * extra_reps;
  if (pending_replays_ == 0) {
    // Degenerate single-iteration loop: nothing to replay.
    state_ = State::kIdle;
    body_size_ = 0;
  }
}

void FrepSequencer::record(const FrepEntry& entry) {
  if (state_ != State::kRecording) throw SimError("FREP record while not recording");
  if (!entry.instr.meta().offloaded()) {
    throw SimError("non-FP instruction inside FREP body: " + std::string(entry.instr.meta().name));
  }
  if (entry.instr.meta().unit == isa::ExecUnit::kFpLoad ||
      entry.instr.meta().unit == isa::ExecUnit::kFpStore) {
    throw SimError("FP load/store inside FREP body (map it to an SSR instead)");
  }
  buffer_.push_back(entry);
  if (mode_ == Mode::kInner) {
    // Repeat this instruction immediately extra_reps_ more times.
    pos_ = static_cast<unsigned>(buffer_.size()) - 1;
    inner_reps_left_ = extra_reps_;
    if (inner_reps_left_ > 0) {
      state_ = State::kReplaying;
      return;
    }
  }
  if (buffer_.size() == body_size_) {
    if (mode_ == Mode::kOuter) {
      pos_ = 0;
      reps_left_ = extra_reps_;
      state_ = reps_left_ > 0 ? State::kReplaying : State::kIdle;
    } else {
      state_ = State::kIdle;
    }
    if (state_ == State::kIdle) body_size_ = 0;
  }
}

const FrepEntry& FrepSequencer::current() const {
  if (state_ != State::kReplaying) throw SimError("FREP current() while not replaying");
  return buffer_[pos_];
}

void FrepSequencer::advance() {
  if (state_ != State::kReplaying) throw SimError("FREP advance() while not replaying");
  --pending_replays_;
  if (mode_ == Mode::kInner) {
    if (--inner_reps_left_ == 0) {
      // Back to recording until the body is fully recorded, or idle.
      state_ = buffer_.size() < body_size_ ? State::kRecording : State::kIdle;
      if (state_ == State::kIdle) body_size_ = 0;
    }
    return;
  }
  ++pos_;
  if (pos_ == buffer_.size()) {
    pos_ = 0;
    if (--reps_left_ == 0) {
      state_ = State::kIdle;
      body_size_ = 0;
    }
  }
}

}  // namespace copift::frep

// FREP hardware-loop sequencer.
//
// `frep.o rs1, n` marks the next `n` FP instructions as a loop body to be
// executed rs1+1 times. The first iteration flows through the offload FIFO
// as usual and is recorded into the sequencer's buffer; the remaining
// iterations are replayed from the buffer while the integer core keeps
// fetching its own stream — this is Snitch's pseudo dual-issue mechanism.
// `frep.i` repeats each instruction rs1+1 times back-to-back instead.
#pragma once

#include <cstdint>
#include <vector>

#include "isa/instr.hpp"

namespace copift::frep {

/// One buffered FP instruction. `epoch` is the COPIFT synchronization epoch
/// the instruction belongs to (see sim/fpss.hpp); replayed copies inherit
/// the epoch of the recorded original.
struct FrepEntry {
  isa::Instr instr;
  std::uint64_t epoch = 0;
};

class FrepSequencer {
 public:
  explicit FrepSequencer(unsigned capacity = 16) : capacity_(capacity) {}

  enum class Mode { kOuter, kInner };

  /// Arm the sequencer: record the next `body_size` instructions and replay
  /// the body `extra_reps` more times (outer) / each instruction
  /// `extra_reps` more times (inner). Throws if a loop is already active or
  /// the body exceeds the buffer capacity.
  void configure(unsigned body_size, std::uint64_t extra_reps, Mode mode);

  /// True while instructions popped from the offload FIFO must be recorded.
  [[nodiscard]] bool recording() const noexcept { return state_ == State::kRecording; }

  /// Record one instruction (the FPSS calls this as it issues the first
  /// iteration). May transition to replaying (outer) or trigger inner
  /// repetitions.
  void record(const FrepEntry& entry);

  /// True when the sequencer (not the FIFO) supplies the next instruction.
  [[nodiscard]] bool replaying() const noexcept { return state_ == State::kReplaying; }

  /// Current replay instruction; only valid while replaying().
  [[nodiscard]] const FrepEntry& current() const;

  /// Advance past the current replay instruction (called after issue).
  void advance();

  [[nodiscard]] bool idle() const noexcept { return state_ == State::kIdle; }

  /// Number of replay issues still owed (for barrier bookkeeping/tests).
  [[nodiscard]] std::uint64_t pending_replays() const noexcept { return pending_replays_; }

  [[nodiscard]] unsigned capacity() const noexcept { return capacity_; }

 private:
  enum class State { kIdle, kRecording, kReplaying };

  unsigned capacity_;
  State state_ = State::kIdle;
  Mode mode_ = Mode::kOuter;
  std::vector<FrepEntry> buffer_;
  unsigned body_size_ = 0;
  std::uint64_t extra_reps_ = 0;
  // Replay cursor.
  unsigned pos_ = 0;
  std::uint64_t reps_left_ = 0;       // outer: body repetitions remaining
  std::uint64_t inner_reps_left_ = 0; // inner: repeats of current instruction
  std::uint64_t pending_replays_ = 0;
};

}  // namespace copift::frep

#include "rvasm/program.hpp"

#include "common/error.hpp"

namespace copift::rvasm {

std::uint32_t Program::symbol(std::string_view name) const {
  const auto it = symbols.find(name);
  if (it == symbols.end()) throw Error("undefined symbol: " + std::string(name));
  return it->second;
}

bool Program::has_symbol(std::string_view name) const {
  return symbols.find(name) != symbols.end();
}

std::size_t Program::text_index(std::uint32_t addr) const {
  if (addr < text_base || (addr - text_base) / 4 >= text.size()) {
    throw Error("address outside text section: " + std::to_string(addr));
  }
  if ((addr & 3U) != 0) throw Error("misaligned text address");
  return (addr - text_base) / 4;
}

}  // namespace copift::rvasm

#include "rvasm/program.hpp"

#include <cstdio>

#include "common/error.hpp"

namespace copift::rvasm {

std::uint32_t Program::symbol(std::string_view name) const {
  const auto it = symbols.find(name);
  if (it == symbols.end()) throw Error("undefined symbol: " + std::string(name));
  return it->second;
}

bool Program::has_symbol(std::string_view name) const {
  return symbols.find(name) != symbols.end();
}

std::size_t Program::text_index(std::uint32_t addr) const {
  if (addr < text_base || (addr - text_base) / 4 >= text.size()) {
    throw Error("address outside text section: " + std::to_string(addr));
  }
  if ((addr & 3U) != 0) throw Error("misaligned text address");
  return (addr - text_base) / 4;
}

std::optional<Program::NearestLabel> Program::nearest_label(std::uint32_t addr) const {
  if (addr < text_base || (addr - text_base) / 4 >= text.size()) return std::nullopt;
  // Greatest text symbol <= addr. The symbol map is small (one entry per
  // label) and sorted by name, not address, so scan it; symbolization is a
  // reporting path, never the simulation hot path.
  std::optional<NearestLabel> best;
  for (const auto& [name, value] : symbols) {
    if (value > addr) continue;
    if (value < text_base || (value - text_base) / 4 >= text.size()) continue;
    if (!best || value > addr - best->offset) best = NearestLabel{name, addr - value};
  }
  return best;
}

std::string Program::symbolize(std::uint32_t addr) const {
  const auto label = nearest_label(addr);
  if (!label) return {};
  std::string out(label->name);
  if (label->offset != 0) {
    char buf[16];
    std::snprintf(buf, sizeof(buf), "+0x%x", label->offset);
    out += buf;
  }
  return out;
}

}  // namespace copift::rvasm

// Two-pass RISC-V assembler for the subset of GNU-as syntax the kernels use.
//
// Supported:
//  - sections:    .text (instruction memory), .data (TCDM), .section .dram
//  - directives:  .word .dword .float .double .space .zero .align .p2align
//                 .equ .set .globl/.global (no-op)
//  - labels, `#` comments, decimal/hex/char immediates
//  - expressions: + - * unary-minus over literals, labels and .equ symbols,
//                 %hi(expr) / %lo(expr)
//  - the full instruction set in isa/mnemonic.hpp plus the usual pseudo
//    instructions (li, la, mv, j, ret, beqz, fmv.d, csrr, ...)
//
// Like GNU as, data directives do NOT auto-align: use `.align n` explicitly
// before `.dword`/`.double` so labels and data agree (the simulator rejects
// misaligned 64-bit TCDM accesses).
#pragma once

#include <string_view>

#include "rvasm/program.hpp"

namespace copift::rvasm {

/// Assemble `source` into a program image. Throws copift::AsmError with line
/// information on malformed input.
Program assemble(std::string_view source);

}  // namespace copift::rvasm

// Assembled program image: predecoded text plus initialized data sections.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "isa/instr.hpp"

namespace copift::rvasm {

/// Output of the assembler; input to the simulator and the COPIFT toolkit.
struct Program {
  std::vector<isa::Instr> text;         // predecoded instructions
  std::vector<std::uint32_t> text_words;  // raw encodings (1:1 with text)
  std::vector<unsigned> text_lines;       // source line per instruction
  std::uint32_t text_base = 0;

  std::vector<std::uint8_t> data;  // TCDM image
  std::uint32_t data_base = 0;

  std::vector<std::uint8_t> dram;  // external memory image
  std::uint32_t dram_base = 0;

  std::map<std::string, std::uint32_t, std::less<>> symbols;

  /// Entry point: symbol `_start` if defined, else text_base.
  std::uint32_t entry = 0;

  /// Address of a symbol; throws copift::Error if undefined.
  [[nodiscard]] std::uint32_t symbol(std::string_view name) const;

  /// Whether a symbol is defined.
  [[nodiscard]] bool has_symbol(std::string_view name) const;

  /// Index into `text` for an address inside the text section; throws on
  /// out-of-range or misaligned addresses.
  [[nodiscard]] std::size_t text_index(std::uint32_t addr) const;

  /// Nearest text label at or below `addr`: the greatest symbol whose value
  /// is <= addr and inside the text section. Used to symbolize PCs as
  /// `label+0xNN` in reports and the debug stub; nullopt when `addr` is
  /// outside text or precedes every label.
  struct NearestLabel {
    std::string_view name;
    std::uint32_t offset = 0;  // addr - label address
  };
  [[nodiscard]] std::optional<NearestLabel> nearest_label(std::uint32_t addr) const;

  /// `label+0xNN` (or bare `label` at offset 0) for a text address, empty
  /// string when no label qualifies.
  [[nodiscard]] std::string symbolize(std::uint32_t addr) const;
};

}  // namespace copift::rvasm

#include "rvasm/assembler.hpp"

#include <cctype>
#include <cstring>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/bits.hpp"
#include "common/error.hpp"
#include "common/layout.hpp"
#include "isa/csr.hpp"

namespace copift::rvasm {

namespace {

using isa::Format;
using isa::Instr;
using isa::Mnemonic;
using isa::RegClass;

// ---------------------------------------------------------------------------
// Expressions
// ---------------------------------------------------------------------------

struct Expr;
using ExprPtr = std::shared_ptr<const Expr>;

struct Expr {
  enum class Kind { kNum, kSym, kHi, kLo, kAdd, kSub, kMul, kNeg };
  Kind kind = Kind::kNum;
  std::int64_t num = 0;
  std::string sym;
  ExprPtr lhs;
  ExprPtr rhs;
};

ExprPtr make_num(std::int64_t v) {
  auto e = std::make_shared<Expr>();
  e->kind = Expr::Kind::kNum;
  e->num = v;
  return e;
}

class SymbolTable {
 public:
  void define(const std::string& name, std::int64_t value, unsigned line) {
    if (table_.count(name) != 0) throw AsmError("redefinition of symbol " + name, line);
    table_[name] = value;
  }
  [[nodiscard]] std::optional<std::int64_t> lookup(const std::string& name) const {
    const auto it = table_.find(name);
    if (it == table_.end()) return std::nullopt;
    return it->second;
  }
  [[nodiscard]] const std::map<std::string, std::int64_t>& all() const { return table_; }

 private:
  std::map<std::string, std::int64_t> table_;
};

std::int64_t eval(const Expr& e, const SymbolTable& symbols, unsigned line) {
  switch (e.kind) {
    case Expr::Kind::kNum:
      return e.num;
    case Expr::Kind::kSym: {
      const auto v = symbols.lookup(e.sym);
      if (!v) throw AsmError("undefined symbol: " + e.sym, line);
      return *v;
    }
    case Expr::Kind::kHi: {
      const auto v = static_cast<std::uint32_t>(eval(*e.lhs, symbols, line));
      return (v + 0x800U) >> 12;
    }
    case Expr::Kind::kLo: {
      const auto v = static_cast<std::uint32_t>(eval(*e.lhs, symbols, line));
      return sign_extend(v & 0xFFFU, 12);
    }
    case Expr::Kind::kAdd:
      return eval(*e.lhs, symbols, line) + eval(*e.rhs, symbols, line);
    case Expr::Kind::kSub:
      return eval(*e.lhs, symbols, line) - eval(*e.rhs, symbols, line);
    case Expr::Kind::kMul:
      return eval(*e.lhs, symbols, line) * eval(*e.rhs, symbols, line);
    case Expr::Kind::kNeg:
      return -eval(*e.lhs, symbols, line);
  }
  throw AsmError("bad expression", line);
}

bool evaluable(const Expr& e, const SymbolTable& symbols) {
  switch (e.kind) {
    case Expr::Kind::kNum:
      return true;
    case Expr::Kind::kSym:
      return symbols.lookup(e.sym).has_value();
    case Expr::Kind::kHi:
    case Expr::Kind::kLo:
    case Expr::Kind::kNeg:
      return evaluable(*e.lhs, symbols);
    case Expr::Kind::kAdd:
    case Expr::Kind::kSub:
    case Expr::Kind::kMul:
      return evaluable(*e.lhs, symbols) && evaluable(*e.rhs, symbols);
  }
  return false;
}

// Recursive-descent parser over one operand string.
class ExprParser {
 public:
  ExprParser(std::string_view text, unsigned line) : text_(text), line_(line) {}

  ExprPtr parse() {
    auto e = parse_sum();
    skip_ws();
    if (pos_ != text_.size()) throw AsmError("trailing characters in expression", line_);
    return e;
  }

 private:
  ExprPtr parse_sum() {
    auto lhs = parse_product();
    for (;;) {
      skip_ws();
      if (consume('+')) {
        auto e = std::make_shared<Expr>();
        e->kind = Expr::Kind::kAdd;
        e->lhs = lhs;
        e->rhs = parse_product();
        lhs = e;
      } else if (consume('-')) {
        auto e = std::make_shared<Expr>();
        e->kind = Expr::Kind::kSub;
        e->lhs = lhs;
        e->rhs = parse_product();
        lhs = e;
      } else {
        return lhs;
      }
    }
  }

  ExprPtr parse_product() {
    auto lhs = parse_atom();
    for (;;) {
      skip_ws();
      if (consume('*')) {
        auto e = std::make_shared<Expr>();
        e->kind = Expr::Kind::kMul;
        e->lhs = lhs;
        e->rhs = parse_atom();
        lhs = e;
      } else {
        return lhs;
      }
    }
  }

  ExprPtr parse_atom() {
    skip_ws();
    if (consume('-')) {
      auto e = std::make_shared<Expr>();
      e->kind = Expr::Kind::kNeg;
      e->lhs = parse_atom();
      return e;
    }
    if (consume('(')) {
      auto e = parse_sum();
      expect(')');
      return e;
    }
    if (consume('%')) {
      const std::string fn = take_ident();
      expect('(');
      auto inner = parse_sum();
      expect(')');
      auto e = std::make_shared<Expr>();
      if (fn == "hi") {
        e->kind = Expr::Kind::kHi;
      } else if (fn == "lo") {
        e->kind = Expr::Kind::kLo;
      } else {
        throw AsmError("unknown relocation function %" + fn, line_);
      }
      e->lhs = inner;
      return e;
    }
    if (pos_ < text_.size() && (std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0)) {
      return make_num(take_number());
    }
    if (pos_ < text_.size() &&
        (std::isalpha(static_cast<unsigned char>(text_[pos_])) != 0 || text_[pos_] == '_' ||
         text_[pos_] == '.')) {
      auto e = std::make_shared<Expr>();
      e->kind = Expr::Kind::kSym;
      e->sym = take_ident();
      return e;
    }
    throw AsmError("expected expression", line_);
  }

  void skip_ws() {
    while (pos_ < text_.size() && (text_[pos_] == ' ' || text_[pos_] == '\t')) ++pos_;
  }
  bool consume(char c) {
    skip_ws();
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }
  void expect(char c) {
    if (!consume(c)) throw AsmError(std::string("expected '") + c + "'", line_);
  }
  std::string take_ident() {
    skip_ws();
    std::string out;
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_' || c == '.') {
        out.push_back(c);
        ++pos_;
      } else {
        break;
      }
    }
    if (out.empty()) throw AsmError("expected identifier", line_);
    return out;
  }
  std::int64_t take_number() {
    std::size_t end = pos_;
    int base = 10;
    if (text_.compare(pos_, 2, "0x") == 0 || text_.compare(pos_, 2, "0X") == 0) {
      base = 16;
      end += 2;
    }
    const std::size_t digits_start = end;
    while (end < text_.size() &&
           (std::isalnum(static_cast<unsigned char>(text_[end])) != 0)) {
      ++end;
    }
    const std::string digits(text_.substr(digits_start, end - digits_start));
    if (digits.empty()) throw AsmError("malformed number", line_);
    std::size_t used = 0;
    std::int64_t value = 0;
    try {
      // Parse as unsigned so 64-bit bit patterns (e.g. negative doubles in
      // .dword) round-trip; the value wraps into int64 two's complement.
      value = static_cast<std::int64_t>(std::stoull(digits, &used, base));
    } catch (const std::exception&) {
      throw AsmError("malformed number: " + digits, line_);
    }
    if (used != digits.size()) throw AsmError("malformed number: " + digits, line_);
    pos_ = end;
    return value;
  }

  std::string_view text_;
  std::size_t pos_ = 0;
  unsigned line_;
};

ExprPtr parse_expr(std::string_view text, unsigned line) {
  return ExprParser(text, line).parse();
}

// ---------------------------------------------------------------------------
// Line splitting
// ---------------------------------------------------------------------------

std::string_view trim(std::string_view s) {
  while (!s.empty() && (s.front() == ' ' || s.front() == '\t' || s.front() == '\r')) {
    s.remove_prefix(1);
  }
  while (!s.empty() && (s.back() == ' ' || s.back() == '\t' || s.back() == '\r')) {
    s.remove_suffix(1);
  }
  return s;
}

/// Split an operand list on top-level commas (parentheses nest).
std::vector<std::string_view> split_operands(std::string_view s) {
  std::vector<std::string_view> out;
  int depth = 0;
  std::size_t start = 0;
  for (std::size_t i = 0; i < s.size(); ++i) {
    if (s[i] == '(') ++depth;
    if (s[i] == ')') --depth;
    if (s[i] == ',' && depth == 0) {
      out.push_back(trim(s.substr(start, i - start)));
      start = i + 1;
    }
  }
  const auto last = trim(s.substr(start));
  if (!last.empty() || !out.empty()) out.push_back(last);
  if (out.size() == 1 && out[0].empty()) out.clear();
  return out;
}

// ---------------------------------------------------------------------------
// Assembler
// ---------------------------------------------------------------------------

enum class SectionId { kText, kData, kDram };

struct PendingInstr {
  Mnemonic mnemonic{};
  std::uint8_t rd = 0, rs1 = 0, rs2 = 0, rs3 = 0;
  ExprPtr imm;        // absolute immediate expression (or CSR number)
  bool pc_relative = false;  // imm is (target - pc)
  std::uint32_t addr = 0;
  unsigned line = 0;
};

const std::map<std::string, std::uint16_t, std::less<>>& csr_names() {
  static const std::map<std::string, std::uint16_t, std::less<>> names = {
      {"mcycle", isa::kCsrMcycle},
      {"minstret", isa::kCsrMinstret},
      {"ssr", isa::kCsrSsr},
      {"fpss", isa::kCsrFpss},
      {"region", 0x7C2},
      {"barrier", isa::kCsrBarrier},
      {"mhartid", isa::kCsrMhartid},
  };
  return names;
}

class Assembler {
 public:
  Program run(std::string_view source) {
    parse_all(source);
    finalize_symbols();
    encode_all();
    return std::move(program_);
  }

 private:
  // ---- pass 1: parse lines, expand pseudos, lay out sections ----

  void parse_all(std::string_view source) {
    unsigned line_no = 0;
    std::size_t pos = 0;
    while (pos <= source.size()) {
      const std::size_t eol = source.find('\n', pos);
      std::string_view line = source.substr(pos, eol == std::string_view::npos
                                                     ? std::string_view::npos
                                                     : eol - pos);
      pos = eol == std::string_view::npos ? source.size() + 1 : eol + 1;
      ++line_no;
      if (const auto hash = line.find('#'); hash != std::string_view::npos) {
        line = line.substr(0, hash);
      }
      line = trim(line);
      while (!line.empty()) {
        // Labels (possibly several, possibly followed by code).
        const auto colon = line.find(':');
        if (colon != std::string_view::npos) {
          const auto candidate = trim(line.substr(0, colon));
          if (!candidate.empty() && is_ident(candidate)) {
            define_label(std::string(candidate), line_no);
            line = trim(line.substr(colon + 1));
            continue;
          }
        }
        break;
      }
      if (line.empty()) continue;
      if (line[0] == '.') {
        handle_directive(line, line_no);
      } else {
        handle_instruction(line, line_no);
      }
    }
  }

  static bool is_ident(std::string_view s) {
    for (char c : s) {
      if (std::isalnum(static_cast<unsigned char>(c)) == 0 && c != '_' && c != '.') return false;
    }
    return !s.empty();
  }

  void define_label(const std::string& name, unsigned line) {
    symbols_.define(name, current_address(), line);
  }

  std::uint32_t current_address() const {
    switch (section_) {
      case SectionId::kText: return kTextBase + 4 * static_cast<std::uint32_t>(instrs_.size());
      case SectionId::kData: return kTcdmBase + static_cast<std::uint32_t>(data_.size());
      case SectionId::kDram: return kDramBase + static_cast<std::uint32_t>(dram_.size());
    }
    return 0;
  }

  std::vector<std::uint8_t>& current_bytes(unsigned line) {
    switch (section_) {
      case SectionId::kData: return data_;
      case SectionId::kDram: return dram_;
      case SectionId::kText: break;
    }
    throw AsmError("data directive outside a data section", line);
  }

  void handle_directive(std::string_view line, unsigned line_no) {
    const auto space = line.find_first_of(" \t");
    const std::string_view name = line.substr(0, space);
    const std::string_view rest =
        space == std::string_view::npos ? std::string_view{} : trim(line.substr(space + 1));
    const auto args = split_operands(rest);

    if (name == ".text") { section_ = SectionId::kText; return; }
    if (name == ".data") { section_ = SectionId::kData; return; }
    if (name == ".section") {
      if (args.size() != 1) throw AsmError(".section expects one argument", line_no);
      if (args[0] == ".text") section_ = SectionId::kText;
      else if (args[0] == ".data" || args[0] == ".bss") section_ = SectionId::kData;
      else if (args[0] == ".dram") section_ = SectionId::kDram;
      else throw AsmError("unknown section " + std::string(args[0]), line_no);
      return;
    }
    if (name == ".globl" || name == ".global") return;
    if (name == ".equ" || name == ".set") {
      if (args.size() != 2) throw AsmError(name.data() + std::string(" expects name, value"), line_no);
      const auto value = eval(*parse_expr(args[1], line_no), symbols_, line_no);
      symbols_.define(std::string(args[0]), value, line_no);
      return;
    }
    if (name == ".align" || name == ".p2align") {
      if (args.size() != 1) throw AsmError(".align expects one argument", line_no);
      const auto n = eval(*parse_expr(args[0], line_no), symbols_, line_no);
      align_to(1U << n, line_no);
      return;
    }
    if (name == ".word") { emit_scalars(args, 4, line_no); return; }
    if (name == ".dword" || name == ".quad") { emit_scalars(args, 8, line_no); return; }
    if (name == ".float") { emit_floats(args, /*dp=*/false, line_no); return; }
    if (name == ".double") { emit_floats(args, /*dp=*/true, line_no); return; }
    if (name == ".space" || name == ".zero") {
      if (args.size() != 1) throw AsmError(".space expects one argument", line_no);
      const auto n = eval(*parse_expr(args[0], line_no), symbols_, line_no);
      auto& bytes = current_bytes(line_no);
      bytes.insert(bytes.end(), static_cast<std::size_t>(n), 0);
      return;
    }
    throw AsmError("unknown directive " + std::string(name), line_no);
  }

  void align_to(std::uint32_t alignment, unsigned line_no) {
    if (section_ == SectionId::kText) {
      if (alignment > 4) throw AsmError("text alignment beyond 4 unsupported", line_no);
      return;  // instructions are always 4-aligned
    }
    auto& bytes = current_bytes(line_no);
    while ((bytes.size() % alignment) != 0) bytes.push_back(0);
  }

  void emit_scalars(const std::vector<std::string_view>& args, unsigned size, unsigned line_no) {
    auto& bytes = current_bytes(line_no);
    for (const auto& a : args) {
      // Data words may reference any symbol; resolve lazily via fixups.
      auto expr = parse_expr(a, line_no);
      fixups_.push_back(DataFixup{section_, bytes.size(), size, expr, line_no});
      bytes.insert(bytes.end(), size, 0);
    }
  }

  void emit_floats(const std::vector<std::string_view>& args, bool dp, unsigned line_no) {
    const unsigned size = dp ? 8 : 4;
    auto& bytes = current_bytes(line_no);
    for (const auto& a : args) {
      const double value = std::stod(std::string(a));
      std::uint64_t raw;
      if (dp) {
        raw = copift::bit_cast<std::uint64_t>(value);
      } else {
        raw = copift::bit_cast<std::uint32_t>(static_cast<float>(value));
      }
      for (unsigned i = 0; i < size; ++i) bytes.push_back(static_cast<std::uint8_t>(raw >> (8 * i)));
    }
  }

  // ---- instruction and pseudo-instruction handling ----

  void handle_instruction(std::string_view line, unsigned line_no) {
    if (section_ != SectionId::kText) throw AsmError("instruction outside .text", line_no);
    const auto space = line.find_first_of(" \t");
    const std::string mnemonic(line.substr(0, space));
    const std::string_view rest =
        space == std::string_view::npos ? std::string_view{} : trim(line.substr(space + 1));
    const auto ops = split_operands(rest);
    if (expand_pseudo(mnemonic, ops, line_no)) return;
    const auto m = isa::mnemonic_by_name(mnemonic);
    if (!m) throw AsmError("unknown mnemonic " + mnemonic, line_no);
    parse_real(*m, ops, line_no);
  }

  std::uint8_t parse_reg(std::string_view token, RegClass cls, unsigned line_no) const {
    if (cls == RegClass::kFp) {
      if (const auto r = isa::parse_fp_reg(token)) return static_cast<std::uint8_t>(*r);
      throw AsmError("expected FP register, got " + std::string(token), line_no);
    }
    if (const auto r = isa::parse_int_reg(token)) return static_cast<std::uint8_t>(*r);
    throw AsmError("expected integer register, got " + std::string(token), line_no);
  }

  /// Parse "offset(base)" into an expression + base register.
  std::pair<ExprPtr, std::uint8_t> parse_mem(std::string_view token, unsigned line_no) const {
    const auto open = token.rfind('(');
    if (open == std::string_view::npos || token.back() != ')') {
      throw AsmError("expected mem operand offset(reg): " + std::string(token), line_no);
    }
    const auto offset = trim(token.substr(0, open));
    const auto base = trim(token.substr(open + 1, token.size() - open - 2));
    ExprPtr expr = offset.empty() ? make_num(0) : parse_expr(offset, line_no);
    return {expr, parse_reg(base, RegClass::kInt, line_no)};
  }

  ExprPtr parse_csr(std::string_view token, unsigned line_no) const {
    const auto it = csr_names().find(token);
    if (it != csr_names().end()) return make_num(it->second);
    return parse_expr(token, line_no);
  }

  void emit(PendingInstr p) {
    p.addr = current_address();
    instrs_.push_back(std::move(p));
  }

  PendingInstr base(Mnemonic m, unsigned line_no) {
    PendingInstr p;
    p.mnemonic = m;
    p.line = line_no;
    return p;
  }

  void parse_real(Mnemonic m, const std::vector<std::string_view>& ops, unsigned line_no) {
    const auto& meta = isa::info(m);
    PendingInstr p = base(m, line_no);
    const auto expect_ops = [&](std::size_t n) {
      if (ops.size() != n) {
        throw AsmError(std::string(meta.name) + " expects " + std::to_string(n) + " operands",
                       line_no);
      }
    };
    switch (meta.format) {
      case Format::kR:
        expect_ops(3);
        p.rd = parse_reg(ops[0], meta.rd_class, line_no);
        p.rs1 = parse_reg(ops[1], meta.rs1_class, line_no);
        p.rs2 = parse_reg(ops[2], meta.rs2_class, line_no);
        break;
      case Format::kR4:
        expect_ops(4);
        p.rd = parse_reg(ops[0], meta.rd_class, line_no);
        p.rs1 = parse_reg(ops[1], meta.rs1_class, line_no);
        p.rs2 = parse_reg(ops[2], meta.rs2_class, line_no);
        p.rs3 = parse_reg(ops[3], meta.rs3_class, line_no);
        break;
      case Format::kRFpRm:
        expect_ops(3);
        p.rd = parse_reg(ops[0], meta.rd_class, line_no);
        p.rs1 = parse_reg(ops[1], meta.rs1_class, line_no);
        p.rs2 = parse_reg(ops[2], meta.rs2_class, line_no);
        break;
      case Format::kRFp1Rm:
      case Format::kRFp1:
        expect_ops(2);
        p.rd = parse_reg(ops[0], meta.rd_class, line_no);
        p.rs1 = parse_reg(ops[1], meta.rs1_class, line_no);
        break;
      case Format::kI:
        expect_ops(3);
        p.rd = parse_reg(ops[0], meta.rd_class, line_no);
        p.rs1 = parse_reg(ops[1], meta.rs1_class, line_no);
        p.imm = parse_expr(ops[2], line_no);
        break;
      case Format::kIShift:
        expect_ops(3);
        p.rd = parse_reg(ops[0], meta.rd_class, line_no);
        p.rs1 = parse_reg(ops[1], meta.rs1_class, line_no);
        p.imm = parse_expr(ops[2], line_no);
        break;
      case Format::kILoad: {
        expect_ops(2);
        p.rd = parse_reg(ops[0], meta.rd_class, line_no);
        auto [expr, reg] = parse_mem(ops[1], line_no);
        p.imm = expr;
        p.rs1 = reg;
        break;
      }
      case Format::kS: {
        expect_ops(2);
        p.rs2 = parse_reg(ops[0], meta.rs2_class, line_no);
        auto [expr, reg] = parse_mem(ops[1], line_no);
        p.imm = expr;
        p.rs1 = reg;
        break;
      }
      case Format::kB:
        expect_ops(3);
        p.rs1 = parse_reg(ops[0], RegClass::kInt, line_no);
        p.rs2 = parse_reg(ops[1], RegClass::kInt, line_no);
        p.imm = parse_expr(ops[2], line_no);
        p.pc_relative = true;
        break;
      case Format::kU:
        expect_ops(2);
        p.rd = parse_reg(ops[0], RegClass::kInt, line_no);
        p.imm = parse_expr(ops[1], line_no);
        break;
      case Format::kJ:
        expect_ops(2);
        p.rd = parse_reg(ops[0], RegClass::kInt, line_no);
        p.imm = parse_expr(ops[1], line_no);
        p.pc_relative = true;
        break;
      case Format::kICsr:
        expect_ops(3);
        p.rd = parse_reg(ops[0], RegClass::kInt, line_no);
        p.imm = parse_csr(ops[1], line_no);
        p.rs1 = parse_reg(ops[2], RegClass::kInt, line_no);
        break;
      case Format::kICsrImm: {
        expect_ops(3);
        p.rd = parse_reg(ops[0], RegClass::kInt, line_no);
        p.imm = parse_csr(ops[1], line_no);
        const auto z = eval(*parse_expr(ops[2], line_no), symbols_, line_no);
        if (z < 0 || z > 31) throw AsmError("zimm out of range", line_no);
        p.rs1 = static_cast<std::uint8_t>(z);
        break;
      }
      case Format::kFixed:
        expect_ops(0);
        break;
      case Format::kRdOnly:
        expect_ops(1);
        p.rd = parse_reg(ops[0], RegClass::kInt, line_no);
        break;
      case Format::kRs1Only:
        expect_ops(1);
        p.rs1 = parse_reg(ops[0], RegClass::kInt, line_no);
        break;
      case Format::kRdRs1:
        expect_ops(2);
        p.rd = parse_reg(ops[0], RegClass::kInt, line_no);
        p.rs1 = parse_reg(ops[1], RegClass::kInt, line_no);
        break;
      case Format::kRs1Imm:
        expect_ops(2);
        p.rs1 = parse_reg(ops[0], RegClass::kInt, line_no);
        p.imm = parse_expr(ops[1], line_no);
        break;
      case Format::kRdImm:
        expect_ops(2);
        p.rd = parse_reg(ops[0], RegClass::kInt, line_no);
        p.imm = parse_expr(ops[1], line_no);
        break;
    }
    emit(std::move(p));
  }

  /// Handles pseudo instructions; returns false if `mnemonic` is not one.
  bool expand_pseudo(const std::string& mnemonic, const std::vector<std::string_view>& ops,
                     unsigned line_no) {
    const auto expect_ops = [&](std::size_t n) {
      if (ops.size() != n) {
        throw AsmError(mnemonic + " expects " + std::to_string(n) + " operands", line_no);
      }
    };
    const auto ireg = [&](std::string_view t) { return parse_reg(t, RegClass::kInt, line_no); };
    const auto freg = [&](std::string_view t) { return parse_reg(t, RegClass::kFp, line_no); };
    const auto emit_i = [&](Mnemonic m, std::uint8_t rd, std::uint8_t rs1, ExprPtr imm) {
      PendingInstr p = base(m, line_no);
      p.rd = rd;
      p.rs1 = rs1;
      p.imm = std::move(imm);
      emit(std::move(p));
    };
    const auto emit_r = [&](Mnemonic m, std::uint8_t rd, std::uint8_t rs1, std::uint8_t rs2) {
      PendingInstr p = base(m, line_no);
      p.rd = rd;
      p.rs1 = rs1;
      p.rs2 = rs2;
      emit(std::move(p));
    };
    const auto emit_branch = [&](Mnemonic m, std::uint8_t rs1, std::uint8_t rs2,
                                 std::string_view target) {
      PendingInstr p = base(m, line_no);
      p.rs1 = rs1;
      p.rs2 = rs2;
      p.imm = parse_expr(target, line_no);
      p.pc_relative = true;
      emit(std::move(p));
    };

    if (mnemonic == "nop") {
      expect_ops(0);
      emit_i(Mnemonic::kAddi, 0, 0, make_num(0));
      return true;
    }
    if (mnemonic == "mv") {
      expect_ops(2);
      emit_i(Mnemonic::kAddi, ireg(ops[0]), ireg(ops[1]), make_num(0));
      return true;
    }
    if (mnemonic == "not") {
      expect_ops(2);
      emit_i(Mnemonic::kXori, ireg(ops[0]), ireg(ops[1]), make_num(-1));
      return true;
    }
    if (mnemonic == "neg") {
      expect_ops(2);
      emit_r(Mnemonic::kSub, ireg(ops[0]), 0, ireg(ops[1]));
      return true;
    }
    if (mnemonic == "seqz") {
      expect_ops(2);
      emit_i(Mnemonic::kSltiu, ireg(ops[0]), ireg(ops[1]), make_num(1));
      return true;
    }
    if (mnemonic == "snez") {
      expect_ops(2);
      emit_r(Mnemonic::kSltu, ireg(ops[0]), 0, ireg(ops[1]));
      return true;
    }
    if (mnemonic == "li") {
      expect_ops(2);
      const auto rd = ireg(ops[0]);
      auto expr = parse_expr(ops[1], line_no);
      if (!evaluable(*expr, symbols_)) {
        throw AsmError("li operand must be a constant expression (use la for labels)", line_no);
      }
      const auto value = eval(*expr, symbols_, line_no);
      if (fits_signed(value, 12)) {
        emit_i(Mnemonic::kAddi, rd, 0, make_num(value));
      } else {
        const auto hi = (static_cast<std::uint32_t>(value) + 0x800U) >> 12;
        const auto lo = sign_extend(static_cast<std::uint32_t>(value) & 0xFFFU, 12);
        emit_i(Mnemonic::kLui, rd, 0, make_num(static_cast<std::int64_t>(hi & 0xFFFFFU)));
        if (lo != 0) emit_i(Mnemonic::kAddi, rd, rd, make_num(lo));
      }
      return true;
    }
    if (mnemonic == "la") {
      expect_ops(2);
      const auto rd = ireg(ops[0]);
      auto expr = parse_expr(ops[1], line_no);
      auto hi = std::make_shared<Expr>();
      hi->kind = Expr::Kind::kHi;
      hi->lhs = expr;
      auto lo = std::make_shared<Expr>();
      lo->kind = Expr::Kind::kLo;
      lo->lhs = expr;
      emit_i(Mnemonic::kLui, rd, 0, hi);
      emit_i(Mnemonic::kAddi, rd, rd, lo);
      return true;
    }
    if (mnemonic == "j") {
      expect_ops(1);
      PendingInstr p = base(Mnemonic::kJal, line_no);
      p.rd = 0;
      p.imm = parse_expr(ops[0], line_no);
      p.pc_relative = true;
      emit(std::move(p));
      return true;
    }
    if (mnemonic == "call") {
      expect_ops(1);
      PendingInstr p = base(Mnemonic::kJal, line_no);
      p.rd = 1;
      p.imm = parse_expr(ops[0], line_no);
      p.pc_relative = true;
      emit(std::move(p));
      return true;
    }
    if (mnemonic == "jr") {
      expect_ops(1);
      emit_i(Mnemonic::kJalr, 0, ireg(ops[0]), make_num(0));
      return true;
    }
    if (mnemonic == "ret") {
      expect_ops(0);
      emit_i(Mnemonic::kJalr, 0, 1, make_num(0));
      return true;
    }
    if (mnemonic == "beqz") { expect_ops(2); emit_branch(Mnemonic::kBeq, ireg(ops[0]), 0, ops[1]); return true; }
    if (mnemonic == "bnez") { expect_ops(2); emit_branch(Mnemonic::kBne, ireg(ops[0]), 0, ops[1]); return true; }
    if (mnemonic == "bltz") { expect_ops(2); emit_branch(Mnemonic::kBlt, ireg(ops[0]), 0, ops[1]); return true; }
    if (mnemonic == "bgez") { expect_ops(2); emit_branch(Mnemonic::kBge, ireg(ops[0]), 0, ops[1]); return true; }
    if (mnemonic == "bgtz") { expect_ops(2); emit_branch(Mnemonic::kBlt, 0, ireg(ops[0]), ops[1]); return true; }
    if (mnemonic == "blez") { expect_ops(2); emit_branch(Mnemonic::kBge, 0, ireg(ops[0]), ops[1]); return true; }
    if (mnemonic == "bgt") { expect_ops(3); emit_branch(Mnemonic::kBlt, ireg(ops[1]), ireg(ops[0]), ops[2]); return true; }
    if (mnemonic == "ble") { expect_ops(3); emit_branch(Mnemonic::kBge, ireg(ops[1]), ireg(ops[0]), ops[2]); return true; }
    if (mnemonic == "bgtu") { expect_ops(3); emit_branch(Mnemonic::kBltu, ireg(ops[1]), ireg(ops[0]), ops[2]); return true; }
    if (mnemonic == "bleu") { expect_ops(3); emit_branch(Mnemonic::kBgeu, ireg(ops[1]), ireg(ops[0]), ops[2]); return true; }
    if (mnemonic == "fmv.d") { expect_ops(2); emit_r(Mnemonic::kFsgnjD, freg(ops[0]), freg(ops[1]), freg(ops[1])); return true; }
    if (mnemonic == "fneg.d") { expect_ops(2); emit_r(Mnemonic::kFsgnjnD, freg(ops[0]), freg(ops[1]), freg(ops[1])); return true; }
    if (mnemonic == "fabs.d") { expect_ops(2); emit_r(Mnemonic::kFsgnjxD, freg(ops[0]), freg(ops[1]), freg(ops[1])); return true; }
    if (mnemonic == "fmv.s") { expect_ops(2); emit_r(Mnemonic::kFsgnjS, freg(ops[0]), freg(ops[1]), freg(ops[1])); return true; }
    if (mnemonic == "fneg.s") { expect_ops(2); emit_r(Mnemonic::kFsgnjnS, freg(ops[0]), freg(ops[1]), freg(ops[1])); return true; }
    if (mnemonic == "fabs.s") { expect_ops(2); emit_r(Mnemonic::kFsgnjxS, freg(ops[0]), freg(ops[1]), freg(ops[1])); return true; }
    if (mnemonic == "csrr") {
      expect_ops(2);
      PendingInstr p = base(Mnemonic::kCsrrs, line_no);
      p.rd = ireg(ops[0]);
      p.imm = parse_csr(ops[1], line_no);
      p.rs1 = 0;
      emit(std::move(p));
      return true;
    }
    if (mnemonic == "csrw" || mnemonic == "csrs" || mnemonic == "csrc") {
      expect_ops(2);
      const Mnemonic m = mnemonic == "csrw"   ? Mnemonic::kCsrrw
                         : mnemonic == "csrs" ? Mnemonic::kCsrrs
                                              : Mnemonic::kCsrrc;
      PendingInstr p = base(m, line_no);
      p.rd = 0;
      p.imm = parse_csr(ops[0], line_no);
      p.rs1 = ireg(ops[1]);
      emit(std::move(p));
      return true;
    }
    if (mnemonic == "csrwi" || mnemonic == "csrsi" || mnemonic == "csrci") {
      expect_ops(2);
      const Mnemonic m = mnemonic == "csrwi"   ? Mnemonic::kCsrrwi
                         : mnemonic == "csrsi" ? Mnemonic::kCsrrsi
                                               : Mnemonic::kCsrrci;
      PendingInstr p = base(m, line_no);
      p.rd = 0;
      p.imm = parse_csr(ops[0], line_no);
      const auto z = eval(*parse_expr(ops[1], line_no), symbols_, line_no);
      if (z < 0 || z > 31) throw AsmError("zimm out of range", line_no);
      p.rs1 = static_cast<std::uint8_t>(z);
      emit(std::move(p));
      return true;
    }
    return false;
  }

  // ---- pass 2: resolve and encode ----

  void finalize_symbols() {
    program_.text_base = kTextBase;
    program_.data_base = kTcdmBase;
    program_.dram_base = kDramBase;
    for (const auto& [name, value] : symbols_.all()) {
      program_.symbols[name] = static_cast<std::uint32_t>(value);
    }
    program_.entry = program_.has_symbol("_start")
                         ? program_.symbol("_start")
                         : kTextBase;
  }

  void encode_all() {
    program_.text.reserve(instrs_.size());
    program_.text_words.reserve(instrs_.size());
    for (const auto& p : instrs_) {
      Instr instr;
      instr.mnemonic = p.mnemonic;
      instr.rd = p.rd;
      instr.rs1 = p.rs1;
      instr.rs2 = p.rs2;
      instr.rs3 = p.rs3;
      if (p.imm) {
        std::int64_t value = eval(*p.imm, symbols_, p.line);
        if (p.pc_relative) value -= p.addr;
        instr.imm = static_cast<std::int32_t>(value);
      }
      try {
        program_.text_words.push_back(isa::encode(instr));
      } catch (const EncodingError& e) {
        throw AsmError(e.what(), p.line);
      }
      program_.text.push_back(instr);
      program_.text_lines.push_back(p.line);
    }
    program_.data = std::move(data_);
    program_.dram = std::move(dram_);
    for (const auto& f : fixups_) {
      auto& bytes = f.section == SectionId::kData ? program_.data : program_.dram;
      const auto value = static_cast<std::uint64_t>(eval(*f.expr, symbols_, f.line));
      for (unsigned i = 0; i < f.size; ++i) {
        bytes[f.offset + i] = static_cast<std::uint8_t>(value >> (8 * i));
      }
    }
  }

  struct DataFixup {
    SectionId section;
    std::size_t offset;
    unsigned size;
    ExprPtr expr;
    unsigned line;
  };

  SectionId section_ = SectionId::kText;
  SymbolTable symbols_;
  std::vector<PendingInstr> instrs_;
  std::vector<std::uint8_t> data_;
  std::vector<std::uint8_t> dram_;
  std::vector<DataFixup> fixups_;
  Program program_;
};

}  // namespace

Program assemble(std::string_view source) { return Assembler().run(source); }

}  // namespace copift::rvasm

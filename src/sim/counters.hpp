// Activity and stall counters.
//
// Every architectural event the energy model charges for is counted here;
// region markers (csrw region, id) snapshot the whole struct so callers can
// compute per-region deltas (e.g. steady-state IPC as in paper Fig. 2a).
//
// The issue-slot counters obey an exact per-unit accounting identity over
// any simulated interval (asserted in tests/test_trace.cpp):
//
//   int_issue_cycles() + int_stall_cycles() + int_halt_cycles == cycles
//   fpss_issue_cycles() + fpss_stall_cycles() + fpss_idle     == cycles
//
// i.e. every cycle of each unit is attributed to exactly one cause: an
// issue (retire, offload handoff, or config consumption), a named stall,
// or idleness. `sim/trace.hpp` records the same attribution per cycle when
// tracing is enabled; `sim/trace_export.hpp` renders it.
#pragma once

#include <cstdint>
#include <vector>

namespace copift::sim {

struct ActivityCounters {
  std::uint64_t cycles = 0;

  // Retired instructions. `int_retired` counts instructions issued by the
  // integer core (including FREP/SSR config and CSR ops); `fp_retired`
  // counts FPSS issues including FREP replays — their sum over time divided
  // by cycles is the dual-issue IPC reported in the paper.
  std::uint64_t int_retired = 0;
  std::uint64_t fp_retired = 0;
  std::uint64_t frep_replays = 0;

  // Issue-slot cycles that are neither retires nor stalls: `int_offloads`
  // counts cycles the integer core spent handing an instruction to the FPSS
  // offload FIFO (the instruction retires later, on the FPSS side);
  // `int_halt_cycles` counts post-ecall cycles where the core sat halted
  // while in-flight FP work drained; `fpss_cfg_cycles` counts cycles the
  // FPSS spent consuming an SSR/FREP configuration entry.
  std::uint64_t int_offloads = 0;
  std::uint64_t int_halt_cycles = 0;
  std::uint64_t fpss_cfg_cycles = 0;

  // Integer-side events.
  std::uint64_t int_alu = 0;
  std::uint64_t int_mul = 0;
  std::uint64_t int_div = 0;
  std::uint64_t int_load = 0;
  std::uint64_t int_store = 0;
  std::uint64_t branches = 0;
  std::uint64_t branches_taken = 0;
  std::uint64_t jumps = 0;
  std::uint64_t csr_ops = 0;
  std::uint64_t dma_cmds = 0;
  std::uint64_t ssr_cfg = 0;
  std::uint64_t frep_cfg = 0;
  std::uint64_t barriers = 0;

  // FP-side events (by FPU class).
  std::uint64_t fp_add = 0;
  std::uint64_t fp_mul = 0;
  std::uint64_t fp_fma = 0;
  std::uint64_t fp_divsqrt = 0;
  std::uint64_t fp_cmp = 0;
  std::uint64_t fp_cvt = 0;
  std::uint64_t fp_move = 0;
  std::uint64_t fp_minmax = 0;
  std::uint64_t fp_class = 0;
  std::uint64_t fp_load = 0;
  std::uint64_t fp_store = 0;

  // Memory system.
  std::uint64_t tcdm_reads = 0;
  std::uint64_t tcdm_writes = 0;
  std::uint64_t tcdm_conflicts = 0;
  std::uint64_t ssr_elements = 0;
  std::uint64_t issr_indices = 0;
  std::uint64_t l0_hits = 0;
  std::uint64_t l0_refills = 0;
  std::uint64_t dma_busy_cycles = 0;
  std::uint64_t dma_bytes = 0;
  std::uint64_t dram_row_hits = 0;    // DRAM bursts that found their row open
  std::uint64_t dram_row_misses = 0;  // DRAM bursts that paid precharge+activate

  // Integer-core stall cycles by primary cause.
  std::uint64_t stall_raw = 0;
  std::uint64_t stall_wb_port = 0;
  std::uint64_t stall_offload_full = 0;
  std::uint64_t stall_icache = 0;
  std::uint64_t stall_tcdm = 0;
  std::uint64_t stall_barrier = 0;
  std::uint64_t stall_hw_barrier = 0;  // waiting for other harts at the barrier CSR
  std::uint64_t stall_branch = 0;
  std::uint64_t stall_div_busy = 0;
  std::uint64_t stall_mem_order = 0;  // int load held back by a queued FP store
  std::uint64_t stall_dma_wait = 0;   // dmwait: TCDM-local DMA transfers draining
  std::uint64_t stall_dma_dram = 0;   // dmwait: DRAM-touching DMA transfer in flight

  // FPSS stall/idle cycles.
  std::uint64_t fpss_stall_ssr = 0;
  std::uint64_t fpss_stall_raw = 0;
  std::uint64_t fpss_stall_struct = 0;
  std::uint64_t fpss_stall_tcdm = 0;
  std::uint64_t fpss_idle = 0;

  [[nodiscard]] std::uint64_t retired() const noexcept { return int_retired + fp_retired; }
  [[nodiscard]] double ipc() const noexcept {
    return cycles == 0 ? 0.0 : static_cast<double>(retired()) / static_cast<double>(cycles);
  }

  // Issue-slot aggregates (see the accounting identity in the file comment).
  [[nodiscard]] std::uint64_t int_issue_cycles() const noexcept {
    return int_retired + int_offloads;
  }
  [[nodiscard]] std::uint64_t int_stall_cycles() const noexcept {
    return stall_raw + stall_wb_port + stall_offload_full + stall_icache + stall_tcdm +
           stall_barrier + stall_hw_barrier + stall_branch + stall_div_busy + stall_mem_order +
           stall_dma_wait + stall_dma_dram;
  }
  [[nodiscard]] std::uint64_t fpss_issue_cycles() const noexcept {
    return fp_retired + fpss_cfg_cycles;
  }
  [[nodiscard]] std::uint64_t fpss_stall_cycles() const noexcept {
    return fpss_stall_ssr + fpss_stall_raw + fpss_stall_struct + fpss_stall_tcdm;
  }

  /// Element-wise difference (this - earlier) for region-delta analysis.
  [[nodiscard]] ActivityCounters minus(const ActivityCounters& earlier) const noexcept;

  /// Element-wise sum for cluster-level aggregation over harts. Every event
  /// and stall field adds; `cycles` takes the max (all harts share the
  /// cluster clock, so summing it would double-count wall time).
  [[nodiscard]] ActivityCounters plus(const ActivityCounters& other) const noexcept;
};

/// Region marker event, recorded when the program writes the `region` CSR.
struct RegionEvent {
  std::uint32_t id = 0;
  ActivityCounters snapshot;
};

}  // namespace copift::sim

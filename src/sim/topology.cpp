#include "sim/topology.hpp"

#include <algorithm>
#include <string>

#include "common/error.hpp"

namespace copift::sim {

ClusterTopology::ClusterTopology(const SimParams& base) : base_(base) {
  cores(base.num_cores);
}

ClusterTopology& ClusterTopology::cores(unsigned n) {
  requested_cores_ = n;
  complexes_.assign(std::min(n, kMaxHarts), base_);
  return *this;
}

ClusterTopology& ClusterTopology::add_complex(const SimParams& params) {
  if (complexes_.size() < kMaxHarts) complexes_.push_back(params);
  ++requested_cores_;
  return *this;
}

ClusterTopology& ClusterTopology::shared_params(const SimParams& base) {
  base_ = base;
  return *this;
}

void ClusterTopology::validate() const {
  // SimParams::validate names the field for both the zero and the
  // beyond-kMaxHarts cases; check against the *requested* count so a
  // clamped-at-construction topology still reports what the caller asked.
  SimParams shared_check = base_;
  shared_check.num_cores = requested_cores_;
  shared_check.validate();
  for (std::size_t h = 0; h < complexes_.size(); ++h) {
    SimParams per_hart = complexes_[h];
    per_hart.num_cores = requested_cores_;
    try {
      per_hart.validate();
    } catch (const Error& e) {
      throw Error("hart " + std::to_string(h) + ": " + e.what());
    }
  }
}

bool HwBarrier::try_pass(unsigned h) {
  if (released_[h]) {
    released_[h] = false;  // consume the pending release from the last round
    return true;
  }
  if (!arrived_[h]) {
    arrived_[h] = true;
    ++count_;
  }
  if (count_ < num_harts_) return false;
  // Full set: start a new round; this hart passes now, the rest on their
  // next poll.
  count_ = 0;
  ++rounds_;
  for (unsigned i = 0; i < num_harts_; ++i) {
    arrived_[i] = false;
    released_[i] = (i != h);
  }
  return true;
}

}  // namespace copift::sim

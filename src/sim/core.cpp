#include "sim/core.hpp"

#include <algorithm>

#include "common/bits.hpp"
#include "common/error.hpp"
#include "isa/csr.hpp"

namespace copift::sim {

using isa::ExecUnit;
using isa::Mnemonic;

namespace {
constexpr std::uint16_t kCsrRegion = 0x7C2;
}

IntCore::IntCore(const SimParams& params, const DecodedProgram& decoded,
                 mem::AddressSpace& memory, FpSubsystem& fpss, ssr::SsrUnit& ssr,
                 mem::L0ICache& icache, mem::DmaEngine& dma, ActivityCounters& counters,
                 std::vector<RegionEvent>& regions, Tracer& tracer, unsigned hart_id,
                 unsigned num_harts, HwBarrier& barrier)
    : params_(params),
      decoded_(&decoded),
      memory_(&memory),
      fpss_(&fpss),
      ssr_(&ssr),
      icache_(&icache),
      dma_(&dma),
      counters_(&counters),
      regions_(&regions),
      tracer_(&tracer),
      barrier_(&barrier),
      hart_id_(hart_id),
      num_harts_(num_harts),
      pc_(decoded.program().entry) {
  regs_[2] = kStackTop - hart_id * kHartStackBytes;  // sp
  // Size the write-port ring to cover the farthest-future booking any
  // instruction can make (+2 slack for the post-grant commit cycle).
  std::uint64_t horizon = 2;
  for (const std::uint64_t lat : {params.div_latency, params.mul_latency,
                                  params.load_use_latency, params.fp_load_latency}) {
    horizon = std::max(horizon, static_cast<std::uint64_t>(lat));
  }
  std::uint64_t size = 1;
  while (size < horizon + 2) size <<= 1;
  wb_ring_.assign(size, ~std::uint64_t{0});
  wb_ring_mask_ = size - 1;
}

void IntCore::add_stall(StallCause cause, std::uint64_t n) {
  switch (cause) {
    case StallCause::kIntRaw: counters_->stall_raw += n; break;
    case StallCause::kIntWbPort: counters_->stall_wb_port += n; break;
    case StallCause::kIntOffloadFull: counters_->stall_offload_full += n; break;
    case StallCause::kIntFrontend: counters_->stall_icache += n; break;
    case StallCause::kIntBranch: counters_->stall_branch += n; break;
    case StallCause::kIntDivBusy: counters_->stall_div_busy += n; break;
    case StallCause::kIntTcdm: counters_->stall_tcdm += n; break;
    case StallCause::kIntMemOrder: counters_->stall_mem_order += n; break;
    case StallCause::kIntBarrier: counters_->stall_barrier += n; break;
    case StallCause::kIntHwBarrier: counters_->stall_hw_barrier += n; break;
    case StallCause::kIntDmaWait: counters_->stall_dma_wait += n; break;
    case StallCause::kIntDmaDram: counters_->stall_dma_dram += n; break;
    case StallCause::kIntOffload: counters_->int_offloads += n; break;
    case StallCause::kIntHalted: counters_->int_halt_cycles += n; break;
    default: throw SimError("FPSS stall cause attributed to the integer core");
  }
}

void IntCore::account(std::uint64_t now, StallCause cause) {
  add_stall(cause, 1);
  tracer_->record_stall(now, TraceUnit::kIntCore, cause);
}

void IntCore::skip_stall(std::uint64_t now, std::uint64_t n, StallCause cause) {
  add_stall(cause, n);
  // Per-cycle execution would have decremented these counters each stall.
  if (cause == StallCause::kIntFrontend) fetch_stall_ -= static_cast<unsigned>(n);
  if (cause == StallCause::kIntBranch) branch_stall_ -= static_cast<unsigned>(n);
  if (tracer_->enabled()) {
    for (std::uint64_t i = 0; i < n; ++i) {
      tracer_->record_stall(now + i, TraceUnit::kIntCore, cause);
    }
  }
}

void IntCore::write_rd(unsigned rd, std::uint32_t value, std::uint64_t ready_at) {
  if (rd == 0) return;
  regs_[rd] = value;
  ready_[rd] = ready_at;
}

void IntCore::retire_and_advance(std::uint32_t next_pc, std::uint64_t now) {
  ++counters_->int_retired;
  tracer_->record(now, pc_, *op_->instr, TraceUnit::kIntCore);
  pc_ = next_pc;
  fetch_done_ = false;
}

void IntCore::execute_alu(const MicroOp& op, std::uint64_t now) {
  const std::uint32_t a = regs_[op.rs1];
  const std::uint32_t b = regs_[op.rs2];
  const auto imm = static_cast<std::uint32_t>(op.imm);
  const auto sa = static_cast<std::int32_t>(a);
  const auto sb = static_cast<std::int32_t>(b);
  std::uint32_t v = 0;
  unsigned latency = 1;
  switch (op.mnemonic) {
    case Mnemonic::kLui: v = imm << 12; break;
    case Mnemonic::kAuipc: v = pc_ + (imm << 12); break;
    case Mnemonic::kAddi: v = a + imm; break;
    case Mnemonic::kSlti: v = sa < static_cast<std::int32_t>(imm) ? 1 : 0; break;
    case Mnemonic::kSltiu: v = a < imm ? 1 : 0; break;
    case Mnemonic::kXori: v = a ^ imm; break;
    case Mnemonic::kOri: v = a | imm; break;
    case Mnemonic::kAndi: v = a & imm; break;
    case Mnemonic::kSlli: v = a << (imm & 31); break;
    case Mnemonic::kSrli: v = a >> (imm & 31); break;
    case Mnemonic::kSrai: v = static_cast<std::uint32_t>(sa >> (imm & 31)); break;
    case Mnemonic::kAdd: v = a + b; break;
    case Mnemonic::kSub: v = a - b; break;
    case Mnemonic::kSll: v = a << (b & 31); break;
    case Mnemonic::kSlt: v = sa < sb ? 1 : 0; break;
    case Mnemonic::kSltu: v = a < b ? 1 : 0; break;
    case Mnemonic::kXor: v = a ^ b; break;
    case Mnemonic::kSrl: v = a >> (b & 31); break;
    case Mnemonic::kSra: v = static_cast<std::uint32_t>(sa >> (b & 31)); break;
    case Mnemonic::kOr: v = a | b; break;
    case Mnemonic::kAnd: v = a & b; break;
    case Mnemonic::kMul:
      v = a * b;
      latency = params_.mul_latency;
      break;
    case Mnemonic::kMulh:
      v = static_cast<std::uint32_t>(
          (static_cast<std::int64_t>(sa) * static_cast<std::int64_t>(sb)) >> 32);
      latency = params_.mul_latency;
      break;
    case Mnemonic::kMulhsu:
      v = static_cast<std::uint32_t>(
          (static_cast<std::int64_t>(sa) * static_cast<std::uint64_t>(b)) >> 32);
      latency = params_.mul_latency;
      break;
    case Mnemonic::kMulhu:
      v = static_cast<std::uint32_t>(
          (static_cast<std::uint64_t>(a) * static_cast<std::uint64_t>(b)) >> 32);
      latency = params_.mul_latency;
      break;
    case Mnemonic::kDiv:
      v = b == 0                  ? 0xFFFFFFFFU
          : (sa == INT32_MIN && sb == -1) ? static_cast<std::uint32_t>(INT32_MIN)
                                          : static_cast<std::uint32_t>(sa / sb);
      latency = params_.div_latency;
      break;
    case Mnemonic::kDivu:
      v = b == 0 ? 0xFFFFFFFFU : a / b;
      latency = params_.div_latency;
      break;
    case Mnemonic::kRem:
      v = b == 0                  ? a
          : (sa == INT32_MIN && sb == -1) ? 0
                                          : static_cast<std::uint32_t>(sa % sb);
      latency = params_.div_latency;
      break;
    case Mnemonic::kRemu:
      v = b == 0 ? a : a % b;
      latency = params_.div_latency;
      break;
    default:
      throw SimError("non-ALU instruction in execute_alu");
  }
  write_rd(op.rd, v, now + latency);
  if (op.rd != 0) book_wb(now + latency);
}

bool IntCore::execute_csr(const MicroOp& op, std::uint64_t now) {
  const auto csr = static_cast<std::uint16_t>(op.imm);
  const bool imm_form = op.mnemonic == Mnemonic::kCsrrwi ||
                        op.mnemonic == Mnemonic::kCsrrsi ||
                        op.mnemonic == Mnemonic::kCsrrci;
  const std::uint32_t src = imm_form ? op.rs1 : regs_[op.rs1];
  const bool is_write = op.mnemonic == Mnemonic::kCsrrw || op.mnemonic == Mnemonic::kCsrrwi;
  const bool is_set = op.mnemonic == Mnemonic::kCsrrs || op.mnemonic == Mnemonic::kCsrrsi;
  const bool need_rd = op.rd != 0;
  if (need_rd && !wb_free(now + 1)) {
    account(now, StallCause::kIntWbPort);
    return false;
  }
  std::uint32_t old = 0;
  switch (csr) {
    case isa::kCsrMcycle:
      old = static_cast<std::uint32_t>(now);
      break;
    case isa::kCsrMinstret:
      old = static_cast<std::uint32_t>(counters_->retired());
      break;
    case isa::kCsrSsr: {
      old = ssr_->enabled() ? 1 : 0;
      std::uint32_t next = is_write ? src : is_set ? (old | src) : (old & ~src);
      next &= 1;
      if (old != 0 && next == 0 && !(ssr_->all_idle() && fpss_->idle())) {
        // Disabling waits for streams and in-flight FP work to drain.
        account(now, StallCause::kIntBarrier);
        return false;
      }
      ssr_->set_enabled(next != 0);
      break;
    }
    case isa::kCsrFpss:
      if (need_rd && !fpss_->idle()) {
        account(now, StallCause::kIntBarrier);
        return false;
      }
      old = 0;
      break;
    case isa::kCsrMhartid:
      old = hart_id_;  // read-only; writes are ignored
      break;
    case isa::kCsrBarrier:
      // Any access synchronizes: the hart holds its issue slot until every
      // hart in the cluster has reached the barrier.
      if (!barrier_->try_pass(hart_id_)) {
        account(now, StallCause::kIntHwBarrier);
        return false;
      }
      ++counters_->barriers;
      old = num_harts_;
      break;
    case kCsrRegion:
      if (is_write || src != 0) {
        counters_->cycles = now;
        regions_->push_back(RegionEvent{src, *counters_});
      }
      old = static_cast<std::uint32_t>(regions_->size());
      break;
    default: {
      old = scratch_csrs_[csr];
      const std::uint32_t next = is_write ? src : is_set ? (old | src) : (old & ~src);
      if (is_write || src != 0) scratch_csrs_[csr] = next;
      break;
    }
  }
  if (need_rd) {
    write_rd(op.rd, old, now + 1);
    book_wb(now + 1);
  }
  ++counters_->csr_ops;
  return true;
}

void IntCore::offload_fp(const MicroOp& op, std::uint64_t now) {
  (void)now;
  OffloadEntry entry;
  entry.instr = *op.instr;
  entry.epoch = epoch_counter_;
  switch (op.unit) {
    case ExecUnit::kFpLoad:
      entry.kind = OffloadKind::kLoad;
      entry.operand = regs_[op.rs1] + static_cast<std::uint32_t>(op.imm);
      break;
    case ExecUnit::kFpStore:
      entry.kind = OffloadKind::kStore;
      entry.operand = regs_[op.rs1] + static_cast<std::uint32_t>(op.imm);
      break;
    default:
      entry.kind = OffloadKind::kCompute;
      entry.operand = op.rs1_is_int() ? regs_[op.rs1] : 0;
      break;
  }
  if (op.writes_int_rf() && op.rd != 0) {
    ready_[op.rd] = kBusy;  // cleared when the FPSS writeback drains
  }
  fpss_->offload(std::move(entry));
}

std::optional<mem::TcdmRequest> IntCore::prepare(std::uint64_t now) {
  mem_action_ = MemAction::kNone;

  // Drain at most one FPSS integer writeback through the shared write port
  // (even after ecall, so in-flight FP results land before the run ends).
  if (wb_free(now)) {
    if (const auto wb = fpss_->take_int_writeback()) {
      book_wb(now);
      if (wb->rd != 0) {
        regs_[wb->rd] = wb->value;
        ready_[wb->rd] = now + 1;
      }
    }
  }
  if (halted_) {
    account(now, StallCause::kIntHalted);
    return std::nullopt;
  }

  if (fetch_stall_ > 0) {
    --fetch_stall_;
    account(now, StallCause::kIntFrontend);
    return std::nullopt;
  }
  if (branch_stall_ > 0) {
    --branch_stall_;
    account(now, StallCause::kIntBranch);
    return std::nullopt;
  }
  if (!fetch_done_) {
    op_ = &decoded_->op(decoded_->index_of(pc_));
    const unsigned penalty = icache_->fetch(pc_);
    fetch_done_ = true;
    counters_->l0_hits = icache_->stats().hits;
    counters_->l0_refills = icache_->stats().refills();
    if (penalty > 0) {
      fetch_stall_ = penalty - 1;  // this cycle is the first stall cycle
      account(now, StallCause::kIntFrontend);
      return std::nullopt;
    }
  }

  const MicroOp& op = *op_;

  // Integer operand readiness (sources and, for WAW ordering, destination).
  // Scoreboard indices are pre-resolved to 0 for non-integer operands, and
  // ready_[0] is never in the future (x0 is never marked busy).
  if (ready_[op.sb_rs1] > now || ready_[op.sb_rs2] > now || ready_[op.sb_rd] > now) {
    account(now, StallCause::kIntRaw);
    return std::nullopt;
  }

  switch (op.unit) {
    case ExecUnit::kIntAlu:
    case ExecUnit::kMul:
    case ExecUnit::kDiv: {
      unsigned latency = 1;
      if (op.unit == ExecUnit::kMul) latency = params_.mul_latency;
      if (op.unit == ExecUnit::kDiv) {
        if (div_busy_until_ > now) {
          account(now, StallCause::kIntDivBusy);
          return std::nullopt;
        }
        latency = params_.div_latency;
      }
      if (op.rd != 0 && !wb_free(now + latency)) {
        account(now, StallCause::kIntWbPort);
        return std::nullopt;
      }
      execute_alu(op, now);
      if (op.unit == ExecUnit::kIntAlu) ++counters_->int_alu;
      if (op.unit == ExecUnit::kMul) ++counters_->int_mul;
      if (op.unit == ExecUnit::kDiv) {
        ++counters_->int_div;
        div_busy_until_ = now + latency;
      }
      retire_and_advance(pc_ + 4, now);
      return std::nullopt;
    }
    case ExecUnit::kLoad: {
      if (op.rd != 0 && !wb_free(now + params_.load_use_latency)) {
        account(now, StallCause::kIntWbPort);
        return std::nullopt;
      }
      mem_addr_ = regs_[op.rs1] + static_cast<std::uint32_t>(op.imm);
      // Program-order interlock: wait for overlapping queued FP stores.
      if (fpss_->store_conflict(mem_addr_, 4)) {
        account(now, StallCause::kIntMemOrder);
        return std::nullopt;
      }
      mem_action_ = MemAction::kLoad;
      return mem::TcdmRequest{mem::TcdmPort::kIntLsu, mem_addr_};
    }
    case ExecUnit::kStore: {
      mem_action_ = MemAction::kStore;
      mem_addr_ = regs_[op.rs1] + static_cast<std::uint32_t>(op.imm);
      return mem::TcdmRequest{mem::TcdmPort::kIntLsu, mem_addr_};
    }
    case ExecUnit::kBranch: {
      const std::uint32_t a = regs_[op.rs1];
      const std::uint32_t b = regs_[op.rs2];
      const auto sa = static_cast<std::int32_t>(a);
      const auto sb = static_cast<std::int32_t>(b);
      bool taken = false;
      switch (op.mnemonic) {
        case Mnemonic::kBeq: taken = a == b; break;
        case Mnemonic::kBne: taken = a != b; break;
        case Mnemonic::kBlt: taken = sa < sb; break;
        case Mnemonic::kBge: taken = sa >= sb; break;
        case Mnemonic::kBltu: taken = a < b; break;
        case Mnemonic::kBgeu: taken = a >= b; break;
        default: throw SimError("bad branch");
      }
      ++counters_->branches;
      if (taken) {
        ++counters_->branches_taken;
        branch_stall_ = params_.branch_taken_penalty;
        retire_and_advance(pc_ + static_cast<std::uint32_t>(op.imm), now);
      } else {
        retire_and_advance(pc_ + 4, now);
      }
      return std::nullopt;
    }
    case ExecUnit::kJump: {
      if (op.rd != 0 && !wb_free(now + 1)) {
        account(now, StallCause::kIntWbPort);
        return std::nullopt;
      }
      std::uint32_t target;
      if (op.mnemonic == Mnemonic::kJal) {
        target = pc_ + static_cast<std::uint32_t>(op.imm);
      } else {
        target = (regs_[op.rs1] + static_cast<std::uint32_t>(op.imm)) & ~1U;
      }
      write_rd(op.rd, pc_ + 4, now + 1);
      if (op.rd != 0) book_wb(now + 1);
      ++counters_->jumps;
      branch_stall_ = params_.branch_taken_penalty;
      retire_and_advance(target, now);
      return std::nullopt;
    }
    case ExecUnit::kCsr:
      if (execute_csr(op, now)) retire_and_advance(pc_ + 4, now);
      return std::nullopt;
    case ExecUnit::kSys:
      if (op.mnemonic == Mnemonic::kEcall) {
        halted_ = true;
        retire_and_advance(pc_ + 4, now);
      } else if (op.mnemonic == Mnemonic::kEbreak) {
        throw SimError("ebreak executed at pc " + std::to_string(pc_));
      } else {  // fence
        retire_and_advance(pc_ + 4, now);
      }
      return std::nullopt;
    case ExecUnit::kFrep: {
      if (fpss_->fifo_full()) {
        account(now, StallCause::kIntOffloadFull);
        return std::nullopt;
      }
      OffloadEntry entry;
      entry.instr = *op.instr;
      entry.kind = OffloadKind::kFrepCfg;
      entry.operand = regs_[op.rs1];  // extra repetitions
      entry.epoch = epoch_counter_;
      fpss_->offload(std::move(entry));
      ++epoch_counter_;
      ++counters_->frep_cfg;
      retire_and_advance(pc_ + 4, now);
      return std::nullopt;
    }
    case ExecUnit::kSsrCfg: {
      if (fpss_->fifo_full()) {
        account(now, StallCause::kIntOffloadFull);
        return std::nullopt;
      }
      OffloadEntry entry;
      entry.instr = *op.instr;
      entry.epoch = epoch_counter_;
      if (op.mnemonic == Mnemonic::kScfgwi) {
        entry.kind = OffloadKind::kSsrCfgWrite;
        entry.operand = regs_[op.rs1];
      } else {
        entry.kind = OffloadKind::kSsrCfgRead;
        if (op.rd != 0) ready_[op.rd] = kBusy;
      }
      fpss_->offload(std::move(entry));
      ++counters_->ssr_cfg;
      retire_and_advance(pc_ + 4, now);
      return std::nullopt;
    }
    case ExecUnit::kDma: {
      if (op.mnemonic == Mnemonic::kDmwait) {
        // The cluster ticks the DMA engine before core prepare, so this
        // observes the post-tick queue: dmwait retires the same cycle the
        // last queued transfer completes.
        if (dma_->pending() > 0) {
          account(now, dma_->dram_pending() > 0 ? StallCause::kIntDmaDram
                                                : StallCause::kIntDmaWait);
          return std::nullopt;
        }
        ++counters_->dma_cmds;
        retire_and_advance(pc_ + 4, now);
        return std::nullopt;
      }
      if (op.rd != 0 && !wb_free(now + 1)) {
        account(now, StallCause::kIntWbPort);
        return std::nullopt;
      }
      switch (op.mnemonic) {
        case Mnemonic::kDmsrc: dma_->set_src(regs_[op.rs1]); break;
        case Mnemonic::kDmdst: dma_->set_dst(regs_[op.rs1]); break;
        case Mnemonic::kDmcpy:
          write_rd(op.rd, dma_->start(regs_[op.rs1]), now + 1);
          if (op.rd != 0) book_wb(now + 1);
          break;
        case Mnemonic::kDmstat:
          write_rd(op.rd, dma_->pending(), now + 1);
          if (op.rd != 0) book_wb(now + 1);
          break;
        default: throw SimError("bad DMA instruction");
      }
      ++counters_->dma_cmds;
      retire_and_advance(pc_ + 4, now);
      return std::nullopt;
    }
    case ExecUnit::kBarrier:
      if (fpss_->quiescent_below(epoch_counter_)) {
        ++counters_->barriers;
        retire_and_advance(pc_ + 4, now);
      } else {
        account(now, StallCause::kIntBarrier);
      }
      return std::nullopt;
    case ExecUnit::kFpu:
    case ExecUnit::kFpLoad:
    case ExecUnit::kFpStore: {
      if (fpss_->fifo_full()) {
        account(now, StallCause::kIntOffloadFull);
        return std::nullopt;
      }
      offload_fp(op, now);
      // Offloaded instructions retire (fp_retired) when the FPSS issues
      // them; the handoff still occupies this cycle's integer issue slot.
      account(now, StallCause::kIntOffload);
      pc_ += 4;
      fetch_done_ = false;
      return std::nullopt;
    }
  }
  return std::nullopt;
}

void IntCore::commit(std::uint64_t now, bool granted) {
  if (mem_action_ == MemAction::kNone) return;
  if (!granted) {
    account(now, StallCause::kIntTcdm);
    mem_action_ = MemAction::kNone;
    return;
  }
  const MicroOp& op = *op_;
  if (mem_action_ == MemAction::kLoad) {
    std::uint32_t v = 0;
    switch (op.mnemonic) {
      case Mnemonic::kLw: v = memory_->load32(mem_addr_); break;
      case Mnemonic::kLh:
        v = static_cast<std::uint32_t>(
            static_cast<std::int32_t>(static_cast<std::int16_t>(memory_->load16(mem_addr_))));
        break;
      case Mnemonic::kLhu: v = memory_->load16(mem_addr_); break;
      case Mnemonic::kLb:
        v = static_cast<std::uint32_t>(
            static_cast<std::int32_t>(static_cast<std::int8_t>(memory_->load8(mem_addr_))));
        break;
      case Mnemonic::kLbu: v = memory_->load8(mem_addr_); break;
      default: throw SimError("bad load");
    }
    write_rd(op.rd, v, now + params_.load_use_latency);
    if (op.rd != 0) book_wb(now + params_.load_use_latency);
    ++counters_->int_load;
    ++counters_->tcdm_reads;
  } else {
    const std::uint32_t v = regs_[op.rs2];
    switch (op.mnemonic) {
      case Mnemonic::kSw: memory_->store32(mem_addr_, v); break;
      case Mnemonic::kSh: memory_->store16(mem_addr_, static_cast<std::uint16_t>(v)); break;
      case Mnemonic::kSb: memory_->store8(mem_addr_, static_cast<std::uint8_t>(v)); break;
      default: throw SimError("bad store");
    }
    ++counters_->int_store;
    ++counters_->tcdm_writes;
  }
  retire_and_advance(pc_ + 4, now);
  mem_action_ = MemAction::kNone;
}

WakeInfo IntCore::probe_csr(const MicroOp& op, std::uint64_t now) const {
  const auto csr = static_cast<std::uint16_t>(op.imm);
  const bool imm_form = op.mnemonic == Mnemonic::kCsrrwi || op.mnemonic == Mnemonic::kCsrrsi ||
                        op.mnemonic == Mnemonic::kCsrrci;
  const std::uint32_t src = imm_form ? op.rs1 : regs_[op.rs1];
  const bool is_write = op.mnemonic == Mnemonic::kCsrrw || op.mnemonic == Mnemonic::kCsrrwi;
  const bool is_set = op.mnemonic == Mnemonic::kCsrrs || op.mnemonic == Mnemonic::kCsrrsi;
  if (op.rd != 0 && !wb_free(now + 1)) return WakeInfo::sleep(now + 1, StallCause::kIntWbPort);
  switch (csr) {
    case isa::kCsrSsr: {
      const std::uint32_t old = ssr_->enabled() ? 1 : 0;
      std::uint32_t next = is_write ? src : is_set ? (old | src) : (old & ~src);
      next &= 1;
      if (old != 0 && next == 0 && !(ssr_->all_idle() && fpss_->idle())) {
        return WakeInfo::blocked(StallCause::kIntBarrier);
      }
      return WakeInfo::progress();
    }
    case isa::kCsrFpss:
      if (op.rd != 0 && !fpss_->idle()) return WakeInfo::blocked(StallCause::kIntBarrier);
      return WakeInfo::progress();
    case isa::kCsrBarrier:
      // A hart that has not registered yet would mutate the barrier this
      // cycle (that counts as progress); a registered hart just re-polls.
      if (barrier_->would_block(hart_id_)) return WakeInfo::blocked(StallCause::kIntHwBarrier);
      return WakeInfo::progress();
    default:
      return WakeInfo::progress();
  }
}

WakeInfo IntCore::probe(std::uint64_t now) const {
  // Mirrors prepare() in order; every kSleep/kBlocked answer corresponds to
  // a condition that stays true (with the same stall cause) until the
  // reported wake cycle, because every agent that could change it is itself
  // stalled during a skip window.
  if (fpss_->has_int_writeback()) return WakeInfo::progress();
  if (halted_) return WakeInfo::blocked(StallCause::kIntHalted);
  if (fetch_stall_ > 0) return WakeInfo::sleep(now + fetch_stall_, StallCause::kIntFrontend);
  if (branch_stall_ > 0) return WakeInfo::sleep(now + branch_stall_, StallCause::kIntBranch);
  if (!fetch_done_) return WakeInfo::progress();  // fetch charges the L0 this cycle

  const MicroOp& op = *op_;
  const std::uint64_t ready =
      std::max({ready_[op.sb_rs1], ready_[op.sb_rs2], ready_[op.sb_rd]});
  if (ready > now) {
    // kBusy means an in-flight FPSS integer writeback clears it; that drain
    // is bounded by the FPSS probe's wake, so report "blocked" here.
    if (ready == kBusy) return WakeInfo::blocked(StallCause::kIntRaw);
    return WakeInfo::sleep(ready, StallCause::kIntRaw);
  }

  switch (op.unit) {
    case ExecUnit::kIntAlu:
    case ExecUnit::kMul:
    case ExecUnit::kDiv: {
      unsigned latency = 1;
      if (op.unit == ExecUnit::kMul) latency = params_.mul_latency;
      if (op.unit == ExecUnit::kDiv) {
        if (div_busy_until_ > now) {
          return WakeInfo::sleep(div_busy_until_, StallCause::kIntDivBusy);
        }
        latency = params_.div_latency;
      }
      if (op.rd != 0 && !wb_free(now + latency)) {
        return WakeInfo::sleep(now + 1, StallCause::kIntWbPort);
      }
      return WakeInfo::progress();
    }
    case ExecUnit::kLoad: {
      if (op.rd != 0 && !wb_free(now + params_.load_use_latency)) {
        return WakeInfo::sleep(now + 1, StallCause::kIntWbPort);
      }
      const std::uint32_t addr = regs_[op.rs1] + static_cast<std::uint32_t>(op.imm);
      if (fpss_->store_conflict(addr, 4)) return WakeInfo::blocked(StallCause::kIntMemOrder);
      return WakeInfo::progress();  // TCDM request
    }
    case ExecUnit::kStore:
    case ExecUnit::kBranch:
    case ExecUnit::kSys:
      return WakeInfo::progress();
    case ExecUnit::kJump:
      if (op.rd != 0 && !wb_free(now + 1)) {
        return WakeInfo::sleep(now + 1, StallCause::kIntWbPort);
      }
      return WakeInfo::progress();
    case ExecUnit::kCsr:
      return probe_csr(op, now);
    case ExecUnit::kDma:
      if (op.mnemonic == Mnemonic::kDmwait) {
        if (dma_->pending() == 0) return WakeInfo::progress();
        // The probe runs before this cycle's DMA tick. If the queue needs K
        // more ticks, prepare() (which observes post-tick state) retires at
        // now + K - 1; the cycles before that stall with a constant cause.
        // A bound of <= 1 means this very cycle may retire: report progress.
        // While a DRAM-touching transfer is in flight the cause is
        // kIntDmaDram; dram_drain_cycles_lower_bound() bounds the window
        // over which that stays true.
        if (dma_->dram_pending() > 0) {
          const std::uint64_t k = dma_->dram_drain_cycles_lower_bound();
          if (k <= 1) return WakeInfo::progress();
          return WakeInfo::sleep(now + k - 1, StallCause::kIntDmaDram);
        }
        const std::uint64_t k = dma_->drain_cycles_lower_bound();
        if (k <= 1) return WakeInfo::progress();
        return WakeInfo::sleep(now + k - 1, StallCause::kIntDmaWait);
      }
      if (op.rd != 0 && !wb_free(now + 1)) {
        return WakeInfo::sleep(now + 1, StallCause::kIntWbPort);
      }
      return WakeInfo::progress();
    case ExecUnit::kBarrier:
      if (!fpss_->quiescent_below(epoch_counter_)) {
        return WakeInfo::blocked(StallCause::kIntBarrier);
      }
      return WakeInfo::progress();
    case ExecUnit::kFrep:
    case ExecUnit::kSsrCfg:
    case ExecUnit::kFpu:
    case ExecUnit::kFpLoad:
    case ExecUnit::kFpStore:
      if (fpss_->fifo_full()) return WakeInfo::blocked(StallCause::kIntOffloadFull);
      return WakeInfo::progress();
  }
  return WakeInfo::progress();
}

}  // namespace copift::sim

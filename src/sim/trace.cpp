#include "sim/trace.hpp"

#include "sim/counters.hpp"

#include <map>
#include <sstream>

namespace copift::sim {

namespace {

struct CauseInfo {
  const char* name;
  const char* counter;
  std::uint64_t ActivityCounters::* field;
  SlotKind kind;
  const char* legend;
};

const CauseInfo& cause_info(StallCause cause) noexcept {
  static const CauseInfo kInfo[kNumStallCauses] = {
      // Integer core.
      {"int/raw", "stall_raw", &ActivityCounters::stall_raw, SlotKind::kStall,
       "operand not ready (register in flight, incl. waiting on an FPSS int writeback)"},
      {"int/wb-port", "stall_wb_port", &ActivityCounters::stall_wb_port, SlotKind::kStall,
       "single RF write port already booked for the result's writeback cycle"},
      {"int/offload-full", "stall_offload_full", &ActivityCounters::stall_offload_full, SlotKind::kStall,
       "offload FIFO full (accelerator bus busy; often FREP replay serialization)"},
      {"int/frontend", "stall_icache", &ActivityCounters::stall_icache, SlotKind::kStall,
       "L0 I-cache miss / fetch refill penalty"},
      {"int/branch", "stall_branch", &ActivityCounters::stall_branch, SlotKind::kStall,
       "bubble after a taken branch or jump"},
      {"int/div-busy", "stall_div_busy", &ActivityCounters::stall_div_busy, SlotKind::kStall,
       "iterative divider still occupied by an earlier div/rem"},
      {"int/tcdm", "stall_tcdm", &ActivityCounters::stall_tcdm, SlotKind::kStall,
       "lost TCDM bank arbitration (bank conflict)"},
      {"int/mem-order", "stall_mem_order", &ActivityCounters::stall_mem_order, SlotKind::kStall,
       "load held back by an overlapping FP store still queued in the FPSS"},
      {"int/barrier", "stall_barrier", &ActivityCounters::stall_barrier, SlotKind::kStall,
       "copift.barrier or SSR/FPSS drain wait"},
      {"int/hw-barrier", "stall_hw_barrier", &ActivityCounters::stall_hw_barrier,
       SlotKind::kStall, "waiting for the other harts at the inter-hart barrier CSR"},
      {"int/dma-wait", "stall_dma_wait", &ActivityCounters::stall_dma_wait, SlotKind::kStall,
       "dmwait: queued DMA transfers still draining (TCDM-local traffic)"},
      {"int/dma-dram", "stall_dma_dram", &ActivityCounters::stall_dma_dram, SlotKind::kStall,
       "dmwait: DMA transfer in flight against the DRAM row/bandwidth model"},
      {"int/offload", "int_offloads", &ActivityCounters::int_offloads, SlotKind::kIssue,
       "issue slot used to hand an instruction to the FPSS FIFO (retires FP-side)"},
      {"int/halted", "int_halt_cycles", &ActivityCounters::int_halt_cycles, SlotKind::kIdle,
       "post-ecall: core halted, cluster draining in-flight FP work"},
      // FPSS.
      {"fp/raw", "fpss_stall_raw", &ActivityCounters::fpss_stall_raw, SlotKind::kStall,
       "FP operand still in flight (RAW/WAW on the FP register file)"},
      {"fp/ssr", "fpss_stall_ssr", &ActivityCounters::fpss_stall_ssr, SlotKind::kStall,
       "SSR lane not ready (read stream empty or write stream full)"},
      {"fp/struct", "fpss_stall_struct", &ActivityCounters::fpss_stall_struct, SlotKind::kStall,
       "structural: FPU busy (div/sqrt or cfg), FP-RF write port booked, or lane re-arm wait"},
      {"fp/tcdm", "fpss_stall_tcdm", &ActivityCounters::fpss_stall_tcdm, SlotKind::kStall,
       "lost TCDM bank arbitration (bank conflict)"},
      {"fp/cfg", "fpss_cfg_cycles", &ActivityCounters::fpss_cfg_cycles, SlotKind::kIssue,
       "issue slot used to consume an SSR/FREP configuration entry"},
      {"fp/idle", "fpss_idle", &ActivityCounters::fpss_idle, SlotKind::kIdle,
       "offload FIFO empty: integer core has not produced FP work"},
  };
  return kInfo[static_cast<unsigned>(cause)];
}

}  // namespace

SlotKind slot_kind(StallCause cause) noexcept { return cause_info(cause).kind; }

const char* stall_cause_name(StallCause cause) noexcept { return cause_info(cause).name; }

const char* stall_cause_counter_name(StallCause cause) noexcept {
  return cause_info(cause).counter;
}

std::uint64_t stall_cause_counter_value(const ActivityCounters& counters,
                                        StallCause cause) noexcept {
  return counters.*cause_info(cause).field;
}

const char* trace_unit_name(TraceUnit unit) noexcept {
  switch (unit) {
    case TraceUnit::kIntCore: return "int core";
    case TraceUnit::kFpss: return "fpss";
    case TraceUnit::kFrepReplay: return "frep replay";
  }
  return "?";
}

std::string stall_taxonomy_legend() {
  std::ostringstream os;
  os << "stall taxonomy (cause -> counter field: meaning):\n";
  for (unsigned i = 0; i < kNumStallCauses; ++i) {
    const auto cause = static_cast<StallCause>(i);
    const CauseInfo& info = cause_info(cause);
    const char* kind = info.kind == SlotKind::kStall  ? "stall"
                       : info.kind == SlotKind::kIssue ? "issue"
                                                       : "idle ";
    os << "  [" << kind << "] " << info.name;
    for (std::size_t pad = std::string(info.name).size(); pad < 18; ++pad) os << ' ';
    os << "-> " << info.counter;
    for (std::size_t pad = std::string(info.counter).size(); pad < 19; ++pad) os << ' ';
    os << ": " << info.legend << '\n';
  }
  return os.str();
}

std::string Tracer::render(std::uint64_t from_cycle, std::uint64_t to_cycle) const {
  std::ostringstream os;
  for (const TraceEntry& e : entries_) {
    if (e.cycle < from_cycle || e.cycle > to_cycle) continue;
    const char* tag = e.unit == TraceUnit::kIntCore    ? "int "
                      : e.unit == TraceUnit::kFpss     ? "fpss"
                                                       : "frep";
    os << e.cycle << " [" << tag << "] ";
    if (e.pc != 0) {
      os << "0x" << std::hex << e.pc << std::dec << " ";
    } else {
      os << "(replay)   ";
    }
    os << isa::disassemble(e.instr) << "\n";
  }
  return os.str();
}

std::uint64_t Tracer::dual_issue_cycles() const {
  std::map<std::uint64_t, unsigned> per_cycle;  // bit0: int, bit1: fp
  for (const TraceEntry& e : entries_) {
    per_cycle[e.cycle] |= e.unit == TraceUnit::kIntCore ? 1u : 2u;
  }
  std::uint64_t dual = 0;
  for (const auto& [cycle, mask] : per_cycle) {
    if (mask == 3u) ++dual;
  }
  return dual;
}

}  // namespace copift::sim

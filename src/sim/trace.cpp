#include "sim/trace.hpp"

#include <map>
#include <sstream>

namespace copift::sim {

std::string Tracer::render(std::uint64_t from_cycle, std::uint64_t to_cycle) const {
  std::ostringstream os;
  for (const TraceEntry& e : entries_) {
    if (e.cycle < from_cycle || e.cycle > to_cycle) continue;
    const char* tag = e.unit == TraceUnit::kIntCore    ? "int "
                      : e.unit == TraceUnit::kFpss     ? "fpss"
                                                       : "frep";
    os << e.cycle << " [" << tag << "] ";
    if (e.pc != 0) {
      os << "0x" << std::hex << e.pc << std::dec << " ";
    } else {
      os << "(replay)   ";
    }
    os << isa::disassemble(e.instr) << "\n";
  }
  return os.str();
}

std::uint64_t Tracer::dual_issue_cycles() const {
  std::map<std::uint64_t, unsigned> per_cycle;  // bit0: int, bit1: fp
  for (const TraceEntry& e : entries_) {
    per_cycle[e.cycle] |= e.unit == TraceUnit::kIntCore ? 1u : 2u;
  }
  std::uint64_t dual = 0;
  for (const auto& [cycle, mask] : per_cycle) {
    if (mask == 3u) ++dual;
  }
  return dual;
}

}  // namespace copift::sim

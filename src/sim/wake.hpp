// Skip-ahead probe protocol.
//
// Each per-hart agent (IntCore, FpSubsystem) can be probed for what it would
// do at cycle `now` without mutating any state. The cluster skips ahead only
// when every agent is provably stalled and at least one knows its wake-up
// cycle; the skipped cycles are then attributed in bulk to each agent's
// probed stall cause, so counters, identities and traces are bit-identical
// to per-cycle execution (see Cluster::step_fast()).
//
// Probes are conservative: when an agent cannot cheaply prove it will stall,
// it answers kProgress and the cluster falls back to a normal tick. That
// only costs a missed skip, never exactness.
#pragma once

#include <cstdint>

#include "sim/trace.hpp"

namespace copift::sim {

struct WakeInfo {
  enum class Kind : std::uint8_t {
    kProgress,  // may change architectural state this cycle — no skip
    kSleep,     // stalls with `cause` every cycle until at least `wake`
    kBlocked,   // stalls with `cause`; wake-up is driven by another agent
  };

  Kind kind = Kind::kProgress;
  std::uint64_t wake = 0;  // first cycle the agent may act again (kSleep only)
  StallCause cause = StallCause::kIntRaw;

  [[nodiscard]] static WakeInfo progress() noexcept { return {}; }
  [[nodiscard]] static WakeInfo sleep(std::uint64_t wake, StallCause cause) noexcept {
    return {Kind::kSleep, wake, cause};
  }
  [[nodiscard]] static WakeInfo blocked(StallCause cause) noexcept {
    return {Kind::kBlocked, 0, cause};
  }
};

}  // namespace copift::sim

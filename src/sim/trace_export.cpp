#include "sim/trace_export.hpp"

#include <algorithm>
#include <array>
#include <cstdio>
#include <map>
#include <ostream>
#include <sstream>
#include <vector>

#include "common/error.hpp"
#include "sim/cluster.hpp"

namespace copift::sim {

namespace {

void write_json_string(std::ostream& os, std::string_view s) {
  os << '"';
  for (const char c : s) {
    switch (c) {
      case '"': os << "\\\""; break;
      case '\\': os << "\\\\"; break;
      case '\n': os << "\\n"; break;
      case '\t': os << "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          os << buf;
        } else {
          os << c;
        }
    }
  }
  os << '"';
}

// Perfetto assigns colors by slice name, so giving stall slices their cause
// name ("int/raw", "fp/ssr", ...) colors each cause consistently.
const char* slot_category(SlotKind kind) {
  switch (kind) {
    case SlotKind::kIssue: return "issue";
    case SlotKind::kStall: return "stall";
    case SlotKind::kIdle: return "idle";
  }
  return "?";
}

struct Slice {
  std::uint64_t start = 0;
  std::uint64_t dur = 0;
  StallCause cause = StallCause::kIntRaw;
};

/// Merge per-cycle stall events of one unit into maximal same-cause runs.
std::vector<Slice> merge_stalls(const std::vector<StallEvent>& events, TraceUnit unit) {
  std::vector<Slice> slices;
  for (const StallEvent& e : events) {
    if (e.unit != unit) continue;
    if (!slices.empty() && slices.back().cause == e.cause &&
        slices.back().start + slices.back().dur == e.cycle) {
      ++slices.back().dur;
    } else {
      slices.push_back(Slice{e.cycle, 1, e.cause});
    }
  }
  return slices;
}

void write_event_prefix(std::ostream& os, bool& first) {
  if (!first) os << ",\n";
  first = false;
  os << "    ";
}

struct UnitTotals {
  std::uint64_t issue = 0;
  std::uint64_t stall = 0;
  std::uint64_t idle = 0;
  [[nodiscard]] std::uint64_t total() const { return issue + stall + idle; }
};

double pct(std::uint64_t part, std::uint64_t whole) {
  return whole == 0 ? 0.0 : 100.0 * static_cast<double>(part) / static_cast<double>(whole);
}

void append_bar(std::string& line, double percent) {
  const auto ticks = static_cast<unsigned>(percent / 2.5);  // 40 chars == 100%
  line.push_back(' ');
  line.append(ticks, '#');
}

void append_cause_row(std::string& out, const char* label, std::uint64_t value,
                      std::uint64_t total) {
  char buf[96];
  std::snprintf(buf, sizeof(buf), "    %-18s %10llu  %5.1f%%", label,
                static_cast<unsigned long long>(value), pct(value, total));
  std::string line(buf);
  append_bar(line, pct(value, total));
  out += line;
  out += '\n';
}

/// Emit one tracer's metadata + events as track group `pid` (Perfetto shows
/// each pid as a named group with its tid tracks inside).
void write_tracer_group(std::ostream& os, bool& first, const Tracer& tracer, unsigned pid,
                        const std::string& process_name) {
  const auto thread_name = [&](unsigned tid, const char* name) {
    write_event_prefix(os, first);
    os << "{\"ph\":\"M\",\"pid\":" << pid << ",\"tid\":" << tid
       << ",\"name\":\"thread_name\",\"args\":{\"name\":\"" << name << "\"}}";
  };
  write_event_prefix(os, first);
  os << "{\"ph\":\"M\",\"pid\":" << pid << ",\"name\":\"process_name\",\"args\":{\"name\":";
  write_json_string(os, process_name);
  os << "}}";
  thread_name(0, "int core");
  thread_name(1, "fpss");

  // Retired instructions: one 1-cycle slice each, named by disassembly.
  for (const TraceEntry& e : tracer.entries()) {
    write_event_prefix(os, first);
    const unsigned tid = e.unit == TraceUnit::kIntCore ? 0 : 1;
    const char* cat = e.unit == TraceUnit::kFrepReplay ? "replay" : "retire";
    os << "{\"ph\":\"X\",\"pid\":" << pid << ",\"tid\":" << tid << ",\"ts\":" << e.cycle
       << ",\"dur\":1,\"cat\":\"" << cat << "\",\"name\":";
    write_json_string(os, isa::disassemble(e.instr));
    os << ",\"args\":{";
    if (e.pc != 0) {
      char pcbuf[16];
      std::snprintf(pcbuf, sizeof(pcbuf), "0x%x", e.pc);
      os << "\"pc\":\"" << pcbuf << "\"";
    } else {
      os << "\"pc\":\"(fpss)\"";
    }
    os << "}}";
  }

  // Stall/idle/occupied spans, merged into maximal same-cause runs.
  for (const TraceUnit unit : {TraceUnit::kIntCore, TraceUnit::kFpss}) {
    const unsigned tid = unit == TraceUnit::kIntCore ? 0 : 1;
    for (const Slice& s : merge_stalls(tracer.stalls(), unit)) {
      write_event_prefix(os, first);
      os << "{\"ph\":\"X\",\"pid\":" << pid << ",\"tid\":" << tid << ",\"ts\":" << s.start
         << ",\"dur\":" << s.dur << ",\"cat\":\"" << slot_category(slot_kind(s.cause))
         << "\",\"name\":";
      write_json_string(os, stall_cause_name(s.cause));
      os << ",\"args\":{\"cycles\":" << s.dur << "}}";
    }
  }
}

}  // namespace

void write_chrome_trace(std::ostream& os, const Tracer& tracer) {
  if (!tracer.enabled()) {
    throw Error("write_chrome_trace: tracer was not enabled for the run");
  }
  os << "{\n  \"displayTimeUnit\": \"ns\",\n  \"traceEvents\": [\n";
  bool first = true;
  write_tracer_group(os, first, tracer, 0, "copift cluster");
  os << "\n  ]\n}\n";
}

void write_chrome_trace(std::ostream& os, const Cluster& cluster) {
  for (unsigned h = 0; h < cluster.num_cores(); ++h) {
    if (!cluster.complex(h).tracer().enabled()) {
      throw Error("write_chrome_trace: tracing was not enabled on hart " +
                  std::to_string(h) + " (use Cluster::set_tracing before run())");
    }
  }
  os << "{\n  \"displayTimeUnit\": \"ns\",\n  \"traceEvents\": [\n";
  bool first = true;
  for (unsigned h = 0; h < cluster.num_cores(); ++h) {
    write_tracer_group(os, first, cluster.complex(h).tracer(), h,
                       "hart " + std::to_string(h));
  }
  os << "\n  ]\n}\n";
}

std::string render_hart_summary(const Cluster& cluster) {
  std::string out = "per-hart issue slots:\n";
  char buf[192];
  for (unsigned h = 0; h < cluster.num_cores(); ++h) {
    const ActivityCounters& c = cluster.complex(h).counters();
    std::snprintf(buf, sizeof(buf),
                  "  hart %u  int issue %5.1f%%  fpss issue %5.1f%%  retired %llu"
                  " (int %llu, fp %llu)  tcdm-stall %llu  barrier-wait %llu\n",
                  h, pct(c.int_issue_cycles(), c.cycles),
                  pct(c.fpss_issue_cycles(), c.cycles),
                  static_cast<unsigned long long>(c.retired()),
                  static_cast<unsigned long long>(c.int_retired),
                  static_cast<unsigned long long>(c.fp_retired),
                  static_cast<unsigned long long>(c.stall_tcdm + c.fpss_stall_tcdm),
                  static_cast<unsigned long long>(c.stall_hw_barrier));
    out += buf;
  }
  return out;
}

std::string render_report(const Tracer& tracer, const ActivityCounters& counters,
                          unsigned top_pcs, unsigned num_harts,
                          const rvasm::Program* program) {
  const ActivityCounters& c = counters;
  // Multi-hart aggregates sum slot-cycles over harts while `cycles` stays
  // the cluster cycle count; normalizing by cycles*harts keeps every
  // percentage a fraction of the available issue slots (sums to 100%).
  const std::uint64_t slots = c.cycles * (num_harts == 0 ? 1 : num_harts);
  std::string out;
  char buf[160];

  if (num_harts > 1) {
    std::snprintf(buf, sizeof(buf), "=== pipeline report (%llu cycles x %u harts) ===\n",
                  static_cast<unsigned long long>(c.cycles), num_harts);
  } else {
    std::snprintf(buf, sizeof(buf), "=== pipeline report (%llu cycles) ===\n",
                  static_cast<unsigned long long>(c.cycles));
  }
  out += buf;

  // --- integer core ---------------------------------------------------------
  const UnitTotals it{c.int_issue_cycles(), c.int_stall_cycles(), c.int_halt_cycles};
  std::snprintf(buf, sizeof(buf),
                "\nint core   issue %5.1f%%  stall %5.1f%%  halted %5.1f%%   "
                "(retired %llu, offloaded %llu)\n",
                pct(it.issue, slots), pct(it.stall, slots), pct(it.idle, slots),
                static_cast<unsigned long long>(c.int_retired),
                static_cast<unsigned long long>(c.int_offloads));
  out += buf;
  const char* breakdown_header = num_harts > 1
                                     ? "  stall breakdown (% of all issue slots):\n"
                                     : "  stall breakdown (% of all cycles):\n";
  out += breakdown_header;
  append_cause_row(out, "raw", c.stall_raw, slots);
  append_cause_row(out, "wb-port", c.stall_wb_port, slots);
  append_cause_row(out, "offload-full", c.stall_offload_full, slots);
  append_cause_row(out, "frontend", c.stall_icache, slots);
  append_cause_row(out, "branch", c.stall_branch, slots);
  append_cause_row(out, "div-busy", c.stall_div_busy, slots);
  append_cause_row(out, "tcdm", c.stall_tcdm, slots);
  append_cause_row(out, "mem-order", c.stall_mem_order, slots);
  append_cause_row(out, "barrier", c.stall_barrier, slots);
  append_cause_row(out, "hw-barrier", c.stall_hw_barrier, slots);

  // --- FPSS -----------------------------------------------------------------
  const UnitTotals ft{c.fpss_issue_cycles(), c.fpss_stall_cycles(), c.fpss_idle};
  std::snprintf(buf, sizeof(buf),
                "\nfpss       issue %5.1f%%  stall %5.1f%%  idle %5.1f%%     "
                "(retired %llu, of which %llu FREP replays; cfg %llu)\n",
                pct(ft.issue, slots), pct(ft.stall, slots), pct(ft.idle, slots),
                static_cast<unsigned long long>(c.fp_retired),
                static_cast<unsigned long long>(c.frep_replays),
                static_cast<unsigned long long>(c.fpss_cfg_cycles));
  out += buf;
  out += breakdown_header;
  append_cause_row(out, "raw", c.fpss_stall_raw, slots);
  append_cause_row(out, "ssr", c.fpss_stall_ssr, slots);
  append_cause_row(out, "struct", c.fpss_stall_struct, slots);
  append_cause_row(out, "tcdm", c.fpss_stall_tcdm, slots);

  // --- trace-derived sections ----------------------------------------------
  if (!tracer.enabled()) {
    out += "\n(the dual-issue rate and hottest-PC table need tracing: enable "
           "the tracer or pass --report to copift_sim)\n";
    return out;
  }

  const char* hart_note = num_harts > 1 ? " [hart 0]" : "";
  const std::uint64_t dual = tracer.dual_issue_cycles();
  std::snprintf(buf, sizeof(buf), "\ndual-issue cycles%s: %llu (%.1f%% of %llu)\n",
                hart_note, static_cast<unsigned long long>(dual), pct(dual, c.cycles),
                static_cast<unsigned long long>(c.cycles));
  out += buf;

  // Hottest PCs by retired instruction count (int-core entries carry a pc).
  std::map<std::uint32_t, std::pair<std::uint64_t, const TraceEntry*>> by_pc;
  for (const TraceEntry& e : tracer.entries()) {
    if (e.pc == 0) continue;
    auto& slot = by_pc[e.pc];
    ++slot.first;
    slot.second = &e;
  }
  std::vector<std::pair<std::uint32_t, std::pair<std::uint64_t, const TraceEntry*>>> hot(
      by_pc.begin(), by_pc.end());
  std::sort(hot.begin(), hot.end(), [](const auto& a, const auto& b) {
    return a.second.first != b.second.first ? a.second.first > b.second.first
                                            : a.first < b.first;
  });
  if (hot.size() > top_pcs) hot.resize(top_pcs);
  std::snprintf(buf, sizeof(buf), "\ntop %zu hottest PCs%s (by retired instructions):\n",
                hot.size(), hart_note);
  out += buf;
  for (const auto& [pc, entry] : hot) {
    // Symbolized as `label+0xNN` when the program (and a label at or below
    // the PC) is available, so hot loops are recognizable at a glance.
    const std::string sym = program != nullptr ? program->symbolize(pc) : std::string();
    std::snprintf(buf, sizeof(buf), "  0x%-8x %8llu  %-28s%s%s%s\n", pc,
                  static_cast<unsigned long long>(entry.first),
                  isa::disassemble(entry.second->instr).c_str(), sym.empty() ? "" : " <",
                  sym.c_str(), sym.empty() ? "" : ">");
    out += buf;
  }
  return out;
}

}  // namespace copift::sim

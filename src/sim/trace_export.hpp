// Trace exporters: Chrome/Perfetto trace-event JSON and the top-down text
// report over a Tracer's instruction + stall streams.
//
// The JSON loads directly in https://ui.perfetto.dev (or chrome://tracing):
// one track per unit ("int core", "fpss"), retired instructions as 1-cycle
// slices named by their disassembly, and stall/idle spans merged into
// duration slices named by their cause. 1 trace ts unit == 1 cycle. The
// exact schema is documented in docs/trace-format.md.
//
// The report is the quick, terminal-friendly view of the same data:
// issue-slot occupancy per unit, a stall-cause histogram, and the top-N
// hottest PCs with disassembly (see docs/performance-debugging.md for the
// intended workflow).
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>

#include "sim/counters.hpp"
#include "sim/trace.hpp"

namespace copift::sim {

/// Write the trace as Chrome trace-event JSON. Requires a tracer that was
/// enabled for the run; throws copift::Error otherwise.
void write_chrome_trace(std::ostream& os, const Tracer& tracer);

/// Render the top-down performance report. Occupancy and the stall
/// histogram come from `counters` (available even with tracing off); the
/// hottest-PC table and dual-issue rate need an enabled tracer and are
/// omitted (with a note) when `tracer` was disabled.
[[nodiscard]] std::string render_report(const Tracer& tracer, const ActivityCounters& counters,
                                        unsigned top_pcs = 10);

}  // namespace copift::sim

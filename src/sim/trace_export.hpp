// Trace exporters: Chrome/Perfetto trace-event JSON and the top-down text
// report over a Tracer's instruction + stall streams.
//
// The JSON loads directly in https://ui.perfetto.dev (or chrome://tracing):
// one track per unit ("int core", "fpss"), retired instructions as 1-cycle
// slices named by their disassembly, and stall/idle spans merged into
// duration slices named by their cause. 1 trace ts unit == 1 cycle. The
// exact schema is documented in docs/trace-format.md.
//
// The report is the quick, terminal-friendly view of the same data:
// issue-slot occupancy per unit, a stall-cause histogram, and the top-N
// hottest PCs with disassembly (see docs/performance-debugging.md for the
// intended workflow).
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>

#include "rvasm/program.hpp"
#include "sim/counters.hpp"
#include "sim/trace.hpp"

namespace copift::sim {

class Cluster;

/// Write the trace as Chrome trace-event JSON. Requires a tracer that was
/// enabled for the run; throws copift::Error otherwise.
void write_chrome_trace(std::ostream& os, const Tracer& tracer);

/// Multi-hart export: one track group ("process") per hart, named "hart N",
/// with the hart's int-core and FPSS tracks inside it. Requires tracing to
/// have been enabled on every hart (Cluster::set_tracing(true)).
void write_chrome_trace(std::ostream& os, const Cluster& cluster);

/// Per-hart one-line summaries: issue-slot occupancy, retire counts,
/// TCDM-conflict stalls and barrier-wait cycles for every hart. Printed by
/// `copift_sim --report` alongside the aggregate render_report() so
/// multi-hart runs show where each hart's time went.
[[nodiscard]] std::string render_hart_summary(const Cluster& cluster);

/// Render the top-down performance report. Occupancy and the stall
/// histogram come from `counters` (available even with tracing off); the
/// hottest-PC table and dual-issue rate need an enabled tracer and are
/// omitted (with a note) when `tracer` was disabled. For a multi-hart
/// aggregate pass `num_harts` so percentages normalize to the total issue
/// slots (cycles x harts) and the identity issue+stall+idle == 100% holds;
/// the trace-derived sections then carry a hart-0 label (pass hart 0's
/// tracer). With `program` supplied, hottest-PC lines are symbolized as
/// `label+0xNN` via Program::nearest_label.
[[nodiscard]] std::string render_report(const Tracer& tracer, const ActivityCounters& counters,
                                        unsigned top_pcs = 10, unsigned num_harts = 1,
                                        const rvasm::Program* program = nullptr);

}  // namespace copift::sim

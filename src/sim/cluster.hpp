// Snitch cluster: one integer core + FPSS + SSRs + banked TCDM + L0 I$ + DMA.
//
// This is the top-level simulation object: load an assembled program,
// `run()` it to completion (ecall), then read the activity counters, region
// snapshots and memory state — and, with the tracer enabled before run(),
// the per-cycle instruction/stall streams that feed the Perfetto export and
// stall report (sim/trace_export.hpp).
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "mem/address_space.hpp"
#include "mem/dma.hpp"
#include "mem/l0_icache.hpp"
#include "mem/tcdm.hpp"
#include "rvasm/program.hpp"
#include "sim/core.hpp"
#include "sim/counters.hpp"
#include "sim/fpss.hpp"
#include "sim/params.hpp"
#include "sim/trace.hpp"
#include "ssr/ssr.hpp"

namespace copift::sim {

struct RunResult {
  bool halted = false;
  std::uint64_t cycles = 0;
  std::uint32_t exit_code = 0;
};

class Cluster {
 public:
  /// Primary constructor: the program is shared, immutable, and may be run
  /// by many clusters concurrently (e.g. a parameter sweep assembles each
  /// kernel once and fans the runs out across engine worker threads).
  explicit Cluster(std::shared_ptr<const rvasm::Program> program, SimParams params = {});

  /// Convenience: take ownership of a freshly assembled program (moved into
  /// a shared_ptr, not deep-copied).
  explicit Cluster(rvasm::Program program, SimParams params = {});

  /// Run until the program executes `ecall` or max_cycles elapse.
  RunResult run();

  /// Advance exactly one cycle (exposed for fine-grained tests).
  void tick();

  [[nodiscard]] bool halted() const noexcept { return core_.halted(); }
  [[nodiscard]] std::uint64_t cycles() const noexcept { return cycle_; }

  [[nodiscard]] const ActivityCounters& counters() const noexcept { return counters_; }
  [[nodiscard]] const std::vector<RegionEvent>& regions() const noexcept { return regions_; }
  [[nodiscard]] mem::AddressSpace& memory() noexcept { return memory_; }
  [[nodiscard]] const rvasm::Program& program() const noexcept { return *program_; }
  [[nodiscard]] const std::shared_ptr<const rvasm::Program>& program_ptr() const noexcept {
    return program_;
  }
  [[nodiscard]] IntCore& core() noexcept { return core_; }
  [[nodiscard]] FpSubsystem& fpss() noexcept { return fpss_; }
  [[nodiscard]] ssr::SsrUnit& ssr() noexcept { return ssr_; }
  [[nodiscard]] mem::DmaEngine& dma() noexcept { return dma_; }
  /// Instruction + stall tracer (disabled by default; enable before run()).
  [[nodiscard]] Tracer& tracer() noexcept { return tracer_; }
  [[nodiscard]] const Tracer& tracer() const noexcept { return tracer_; }

 private:
  std::shared_ptr<const rvasm::Program> program_;
  SimParams params_;
  ActivityCounters counters_;
  std::vector<RegionEvent> regions_;
  Tracer tracer_;
  mem::AddressSpace memory_;
  mem::TcdmArbiter arbiter_;
  mem::L0ICache icache_;
  mem::DmaEngine dma_;
  ssr::SsrUnit ssr_;
  FpSubsystem fpss_;
  IntCore core_;
  std::uint64_t cycle_ = 0;
};

}  // namespace copift::sim

// Snitch cluster SoC: N core complexes (IntCore + FPSS + SSRs + L0 I$) built
// from a ClusterTopology around one shared memory system (banked TCDM + DMA)
// and a hardware barrier.
//
// This is the top-level simulation object: load an assembled program,
// `run()` it to completion (every hart executes ecall), then read the
// activity counters, region snapshots and memory state — and, with tracing
// enabled before run(), the per-cycle instruction/stall streams that feed
// the Perfetto export and stall report (sim/trace_export.hpp).
//
// Every hart starts at the program entry point; programs partition work by
// reading the `mhartid` CSR and synchronize through the `barrier` CSR. The
// hart-0 view doubles as the aggregated single-core view: with one complex,
// counters()/regions()/tracer() are exactly the historical Cluster API and
// the simulation is bit-identical to the pre-topology model.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "mem/address_space.hpp"
#include "mem/dma.hpp"
#include "mem/dram.hpp"
#include "mem/tcdm.hpp"
#include "rvasm/program.hpp"
#include "sim/core_complex.hpp"
#include "sim/counters.hpp"
#include "sim/decode.hpp"
#include "sim/params.hpp"
#include "sim/topology.hpp"
#include "sim/trace.hpp"

namespace copift::sim {

struct RunResult {
  bool halted = false;
  std::uint64_t cycles = 0;
  std::uint32_t exit_code = 0;  // hart 0's a0
};

class Cluster {
 public:
  /// Primary constructor: the program is shared, immutable, and may be run
  /// by many clusters concurrently (e.g. a parameter sweep assembles each
  /// kernel once and fans the runs out across engine worker threads). The
  /// topology is validated; bad configurations throw copift::Error.
  Cluster(std::shared_ptr<const rvasm::Program> program, ClusterTopology topology);

  /// Homogeneous topology of `params.num_cores` complexes built from
  /// `params` (the historical constructor; `num_cores` defaults to 1).
  explicit Cluster(std::shared_ptr<const rvasm::Program> program, SimParams params = {});

  /// Convenience: take ownership of a freshly assembled program (moved into
  /// a shared_ptr, not deep-copied).
  explicit Cluster(rvasm::Program program, SimParams params = {});
  Cluster(rvasm::Program program, ClusterTopology topology);

  /// Run until every hart executes `ecall` (plus the FPSS drain) or
  /// max_cycles elapse.
  RunResult run();

  /// Advance exactly one cycle (exposed for fine-grained tests).
  void tick();

  /// Advance one cycle OR jump the clock over a provable all-harts wait
  /// (used by run() when SimParams::skip_ahead is set; exposed for tests).
  /// Bit-exact with repeated tick(): skipped cycles are attributed in bulk
  /// to each agent's probed stall cause, including trace events.
  void step_fast();

  // --- skip-ahead diagnostics ----------------------------------------------
  /// Number of clock jumps step_fast() performed.
  [[nodiscard]] std::uint64_t skip_jumps() const noexcept { return skip_jumps_; }
  /// Total cycles covered by those jumps (cycles not individually ticked).
  [[nodiscard]] std::uint64_t skipped_cycles() const noexcept { return skipped_cycles_; }

  /// True when every hart has halted.
  [[nodiscard]] bool halted() const noexcept;
  [[nodiscard]] std::uint64_t cycles() const noexcept { return cycle_; }

  // --- topology ------------------------------------------------------------
  [[nodiscard]] unsigned num_cores() const noexcept {
    return static_cast<unsigned>(complexes_.size());
  }
  [[nodiscard]] const ClusterTopology& topology() const noexcept { return topo_; }
  [[nodiscard]] CoreComplex& complex(unsigned hart) { return *complexes_.at(hart); }
  [[nodiscard]] const CoreComplex& complex(unsigned hart) const {
    return *complexes_.at(hart);
  }
  [[nodiscard]] HwBarrier& barrier() noexcept { return barrier_; }
  [[nodiscard]] const HwBarrier& barrier() const noexcept { return barrier_; }

  // --- aggregated / hart-0 view (the historical single-core API) -----------
  /// Cluster-wide counters: hart 0's counters for a single-core cluster
  /// (bit-identical to the historical behaviour); the element-wise sum over
  /// all harts (cycles = cluster cycles) otherwise.
  [[nodiscard]] const ActivityCounters& counters() const noexcept;
  /// Hart 0's region stream (see CoreComplex::regions() for other harts).
  [[nodiscard]] const std::vector<RegionEvent>& regions() const noexcept {
    return complexes_.front()->regions();
  }
  [[nodiscard]] mem::AddressSpace& memory() noexcept { return memory_; }
  [[nodiscard]] const mem::AddressSpace& memory() const noexcept { return memory_; }
  [[nodiscard]] const rvasm::Program& program() const noexcept { return *program_; }
  [[nodiscard]] const std::shared_ptr<const rvasm::Program>& program_ptr() const noexcept {
    return program_;
  }
  [[nodiscard]] IntCore& core() noexcept { return complexes_.front()->core(); }
  [[nodiscard]] const IntCore& core() const noexcept { return complexes_.front()->core(); }
  [[nodiscard]] FpSubsystem& fpss() noexcept { return complexes_.front()->fpss(); }
  [[nodiscard]] const FpSubsystem& fpss() const noexcept { return complexes_.front()->fpss(); }
  [[nodiscard]] ssr::SsrUnit& ssr() noexcept { return complexes_.front()->ssr(); }
  [[nodiscard]] const ssr::SsrUnit& ssr() const noexcept { return complexes_.front()->ssr(); }
  [[nodiscard]] mem::DmaEngine& dma() noexcept { return dma_; }
  [[nodiscard]] const mem::DmaEngine& dma() const noexcept { return dma_; }
  /// DRAM timing model, or nullptr when SimParams::dram_enabled is false.
  [[nodiscard]] const mem::DramModel* dram() const noexcept { return dram_.get(); }
  /// Hart 0's instruction + stall tracer (disabled by default). Use
  /// set_tracing() to switch every hart's tracer at once.
  [[nodiscard]] Tracer& tracer() noexcept { return complexes_.front()->tracer(); }
  [[nodiscard]] const Tracer& tracer() const noexcept { return complexes_.front()->tracer(); }
  /// Enable/disable tracing on every hart (call before run()).
  void set_tracing(bool enabled);

 private:
  [[nodiscard]] bool all_fpss_idle() const noexcept;
  /// Probe every agent; on a provable all-harts wait, jump the clock and
  /// return true. Returns false (without ticking) when no skip is possible.
  bool try_skip();

  enum class RequestSrc : std::uint8_t { kCore, kFpss, kSsr };
  struct RequestTag {
    unsigned hart;
    RequestSrc src;
    ssr::SsrUnit::RequestTag ssr_tag;
  };

  std::shared_ptr<const rvasm::Program> program_;
  // Decode-once micro-op table, shared across clusters running the same
  // program (see sim/decode.hpp).
  std::shared_ptr<const DecodedProgram> decoded_;
  ClusterTopology topo_;
  mem::AddressSpace memory_;
  mem::TcdmArbiter arbiter_;
  // Heap-allocated so the DmaEngine's pointer into it stays stable; null
  // when the shared params leave DRAM timing disabled (the default, which
  // keeps every pinned paper cycle count byte-identical).
  std::unique_ptr<mem::DramModel> dram_;
  mem::DmaEngine dma_;
  HwBarrier barrier_;
  // unique_ptr: complexes hold pointers into the shared members above and
  // into themselves, so their addresses must be stable.
  std::vector<std::unique_ptr<CoreComplex>> complexes_;
  std::uint64_t cycle_ = 0;
  std::uint64_t skip_jumps_ = 0;
  std::uint64_t skipped_cycles_ = 0;
  // Probe back-off: a failed probe (no skip possible) suppresses probing for
  // exponentially more ticks, so probe overhead stays negligible while the
  // cluster is busy issuing; any successful jump resets it. Skips are purely
  // an optimization, so missing one never affects exactness.
  std::uint64_t probe_backoff_ = 0;
  std::uint64_t next_probe_ = 0;
  // Rebuilt on demand by counters() for multi-hart clusters.
  mutable ActivityCounters agg_;
  // tick() scratch space, kept as members so the per-cycle hot path does no
  // heap allocation (the vectors are cleared, not reallocated, every cycle).
  std::vector<mem::TcdmRequest> requests_;
  std::vector<RequestTag> tags_;
  std::vector<mem::TcdmRequest> ssr_requests_;
  std::vector<ssr::SsrUnit::RequestTag> ssr_tags_;
};

}  // namespace copift::sim

// Floating-point subsystem (FPSS): offload FIFO, FREP sequencer, FPU timing,
// SSR binding and the COPIFT epoch/barrier bookkeeping.
//
// The integer core pushes every FP-ish instruction (FP compute, FP
// loads/stores, FREP and SSR configuration) into the offload FIFO together
// with any integer operand captured at offload time. The FPSS processes one
// entry per cycle in order; while an FREP loop is replaying, the FIFO is not
// popped and the integer core runs ahead — that concurrency is the paper's
// pseudo dual-issue.
//
// Epochs: the integer core tags each offloaded entry with the number of
// `frep.o` instructions offloaded so far. `copift.barrier` then waits until
// every instruction with an epoch lower than the current one has completed
// (including SSR write-stream drain), which is exactly the inter-iteration
// synchronization the software-pipelined schedule of paper Fig. 1j needs.
#pragma once

#include <array>
#include <cstdint>
#include <optional>
#include <utility>
#include <vector>

#include "common/ring.hpp"
#include "frep/frep.hpp"
#include "fpu/fp_rf.hpp"
#include "fpu/fpu.hpp"
#include "mem/address_space.hpp"
#include "mem/tcdm.hpp"
#include "sim/counters.hpp"
#include "sim/params.hpp"
#include "sim/trace.hpp"
#include "sim/wake.hpp"
#include "ssr/ssr.hpp"

namespace copift::sim {

enum class OffloadKind : std::uint8_t {
  kCompute,      // FP arithmetic / compare / convert / move (incl. Xcopift)
  kLoad,         // flw/fld, address precomputed
  kStore,        // fsw/fsd, address precomputed
  kFrepCfg,      // frep.o / frep.i
  kSsrCfgWrite,  // scfgwi
  kSsrCfgRead,   // scfgri
};

struct OffloadEntry {
  isa::Instr instr;
  // Cached instr.meta(): issue attempts repeat on stall cycles, so the
  // metadata lookup is resolved once at offload time (decode-once).
  const isa::InstrInfo* meta = nullptr;
  OffloadKind kind = OffloadKind::kCompute;
  std::uint32_t operand = 0;  // ld/st address, int source value, scfg value, frep reps
  std::uint64_t epoch = 0;
};

/// A completed FP instruction that writes the integer RF (flt.d, fclass,
/// scfgri, ...). The integer core drains at most one per cycle through its
/// register-file write port.
struct IntWriteback {
  std::uint8_t rd = 0;
  std::uint32_t value = 0;
};

class FpSubsystem {
 public:
  FpSubsystem(const SimParams& params, mem::AddressSpace& memory, ssr::SsrUnit& ssr,
              ActivityCounters& counters, Tracer& tracer);

  // ---- integer-core-facing interface ----
  [[nodiscard]] bool fifo_full() const noexcept { return fifo_.size() >= params_.offload_fifo_depth; }
  void offload(OffloadEntry entry);
  [[nodiscard]] std::optional<IntWriteback> take_int_writeback();
  [[nodiscard]] bool has_int_writeback() const noexcept { return !int_wb_queue_.empty(); }
  /// All offloaded work retired (FIFO drained, sequencer idle, nothing in flight).
  [[nodiscard]] bool idle() const noexcept;
  /// copift.barrier condition: nothing with epoch < `epoch` still in flight.
  [[nodiscard]] bool quiescent_below(std::uint64_t epoch) const noexcept;
  /// Memory-ordering interlock: true if a queued FP store may overlap
  /// [addr, addr+size). The integer core holds back loads until the store
  /// drains (Snitch guarantees int-load-after-FP-store program order).
  [[nodiscard]] bool store_conflict(std::uint32_t addr, std::uint32_t size) const noexcept;

  // ---- cluster-facing cycle interface ----
  /// Process completions and drained SSR write tokens for cycle `now`.
  void begin_cycle(std::uint64_t now);
  /// Decide this cycle's action; returns a TCDM request if one is needed
  /// (FP load/store). Non-memory actions execute immediately.
  std::optional<mem::TcdmRequest> prepare(std::uint64_t now);
  /// Finalize a memory action after arbitration.
  void commit(std::uint64_t now, bool granted);

  /// Side-effect-free mirror of begin_cycle()+prepare() for the skip-ahead
  /// clock: progress if anything would retire or issue at `now`, otherwise
  /// the stall cause and (when provable) the earliest wake-up cycle — which
  /// also bounds pending completion retirements, so no event is skipped.
  [[nodiscard]] WakeInfo probe(std::uint64_t now) const;
  /// Attribute `n` skipped cycles (starting at `now`) to `cause` — the bulk
  /// equivalent of `n` stalled prepare() calls, including trace events.
  void skip_stall(std::uint64_t now, std::uint64_t n, StallCause cause);

  [[nodiscard]] fpu::FpRegFile& rf() noexcept { return rf_; }
  [[nodiscard]] const fpu::FpRegFile& rf() const noexcept { return rf_; }
  [[nodiscard]] const frep::FrepSequencer& sequencer() const noexcept { return sequencer_; }

 private:
  struct Completion {
    std::uint64_t epoch = 0;
    bool has_int_wb = false;
    IntWriteback int_wb;
  };

  // Attribute a non-issuing cycle: bumps the matching ActivityCounters field
  // and, when tracing, records the StallEvent (counters and trace stay in
  // lockstep). FREP replay slots are attributed to the FPSS track too.
  void account(std::uint64_t now, StallCause cause);
  void add_stall(StallCause cause, std::uint64_t n);
  [[nodiscard]] WakeInfo probe_issue(std::uint64_t now) const;
  [[nodiscard]] WakeInfo probe_compute(std::uint64_t now, const isa::Instr& instr,
                                       const isa::InstrInfo& meta) const;
  void add_outstanding(std::uint64_t epoch, std::uint64_t n = 1);
  void complete_epoch(std::uint64_t epoch);
  void schedule_completion(std::uint64_t cycle, Completion c);

  /// Attempt to issue `entry` (from FIFO or replay). Returns true on issue.
  bool try_issue_compute(std::uint64_t now, const OffloadEntry& entry, bool from_replay);
  void process_cfg(std::uint64_t now, const OffloadEntry& entry);

  [[nodiscard]] bool ssr_read_reg(unsigned reg) const;
  [[nodiscard]] bool ssr_write_reg(unsigned reg) const;
  void count_fpu_op(isa::FpuClass cls);

  const SimParams params_;
  mem::AddressSpace* memory_;
  ssr::SsrUnit* ssr_;
  ActivityCounters* counters_;
  Tracer* tracer_;

  RingFifo<OffloadEntry> fifo_;
  frep::FrepSequencer sequencer_;
  fpu::FpRegFile rf_;
  std::array<std::uint64_t, 32> fp_ready_{};  // cycle the register becomes usable

  // Timing state. All containers here sit on the per-cycle hot path, so they
  // are allocation-free in steady state: the writeback port is a
  // cycle-stamped ring (slot `c & mask` holds `c` iff cycle c is booked; the
  // ring spans more than the largest latency, so live bookings cannot
  // alias), completions are a binary min-heap over (cycle, seq) in a
  // persistent vector (seq preserves schedule order for equal cycles, which
  // fixes the int-writeback drain order), and the epoch ledger is a small
  // epoch-sorted vector (a handful of epochs are ever outstanding at once).
  std::uint64_t fpu_busy_until_ = 0;  // div/sqrt block the whole unit
  std::vector<std::uint64_t> wb_ring_;
  std::uint64_t wb_mask_ = 0;
  struct ScheduledCompletion {
    std::uint64_t cycle = 0;
    std::uint64_t seq = 0;
    Completion c;
  };
  std::vector<ScheduledCompletion> completions_;
  std::uint64_t completion_seq_ = 0;
  std::vector<std::pair<std::uint64_t, std::uint64_t>> outstanding_by_epoch_;
  std::uint64_t total_outstanding_ = 0;
  RingFifo<IntWriteback> int_wb_queue_;

  [[nodiscard]] bool wb_port_booked(std::uint64_t cycle) const noexcept {
    return wb_ring_[cycle & wb_mask_] == cycle;
  }
  void book_wb_port(std::uint64_t cycle) noexcept { wb_ring_[cycle & wb_mask_] = cycle; }

  // Pending memory action decided in prepare().
  enum class MemAction { kNone, kLoad, kStore };
  MemAction mem_action_ = MemAction::kNone;
};

}  // namespace copift::sim

#include "sim/params.hpp"

#include <string>

#include "common/bits.hpp"
#include "common/error.hpp"

namespace copift::sim {

void SimParams::validate() const {
  const auto fail = [](const std::string& what) { throw Error("SimParams: " + what); };
  if (num_cores == 0) fail("num_cores must be >= 1");
  if (num_cores > kMaxHarts) {
    fail("num_cores=" + std::to_string(num_cores) + " exceeds the cluster maximum of " +
         std::to_string(kMaxHarts) + " harts");
  }
  if (num_tcdm_banks == 0) fail("num_tcdm_banks must be >= 1");
  if (offload_fifo_depth == 0) fail("offload_fifo_depth must be >= 1");
  if (ssr_fifo_depth == 0) fail("ssr_fifo_depth must be >= 1");
  if (frep_capacity == 0) fail("frep_capacity must be >= 1");
  if (!copift::is_pow2(l0_lines)) {
    fail("l0_lines=" + std::to_string(l0_lines) + " must be a non-zero power of two");
  }
  if (!copift::is_pow2(l0_words_per_line)) {
    fail("l0_words_per_line=" + std::to_string(l0_words_per_line) +
         " must be a non-zero power of two");
  }
  if (dma_bytes_per_cycle == 0) fail("dma_bytes_per_cycle must be >= 1 (the DMA would hang)");
  if (dram_enabled) {
    if (!copift::is_pow2(dram_row_bytes)) {
      fail("dram_row_bytes=" + std::to_string(dram_row_bytes) +
           " must be a non-zero power of two");
    }
    if (dram_bytes_per_cycle == 0) fail("dram_bytes_per_cycle must be >= 1");
    if (dram_channels == 0) fail("dram_channels must be >= 1");
    if (dram_max_inflight == 0) fail("dram_max_inflight must be >= 1");
    if (dram_burst_bytes == 0) fail("dram_burst_bytes must be >= 1");
    // Bursts must cut the transfer at engine-chunk boundaries, or the
    // per-cycle byte flow would diverge from the flat path even with zero
    // row latency — breaking the present-but-unused == absent equivalence
    // the differential tests pin.
    if (dram_burst_bytes % dma_bytes_per_cycle != 0) {
      fail("dram_burst_bytes=" + std::to_string(dram_burst_bytes) +
           " must be a multiple of dma_bytes_per_cycle=" +
           std::to_string(dma_bytes_per_cycle));
    }
  }
  if (max_cycles == 0) fail("max_cycles must be >= 1");
}

}  // namespace copift::sim

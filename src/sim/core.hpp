// Snitch integer core: single-issue, in-order, with a scoreboarded register
// file, a single RF write port (the structural hazard the paper blames for
// the LCG stalls), an L0 loop cache, and the FP offload interface.
#pragma once

#include <array>
#include <cstdint>
#include <map>
#include <optional>
#include <vector>

#include "mem/address_space.hpp"
#include "mem/dma.hpp"
#include "mem/l0_icache.hpp"
#include "mem/tcdm.hpp"
#include "rvasm/program.hpp"
#include "sim/counters.hpp"
#include "sim/decode.hpp"
#include "sim/fpss.hpp"
#include "sim/params.hpp"
#include "sim/topology.hpp"
#include "sim/trace.hpp"
#include "sim/wake.hpp"

namespace copift::sim {

class IntCore {
 public:
  /// `hart_id`/`num_harts` feed the `mhartid` CSR and the per-hart stack
  /// carve-out; `barrier` is the cluster-shared hardware barrier behind the
  /// `barrier` CSR. Hart 0 of a 1-hart cluster behaves exactly like the
  /// historical single-core model.
  IntCore(const SimParams& params, const DecodedProgram& decoded, mem::AddressSpace& memory,
          FpSubsystem& fpss, ssr::SsrUnit& ssr, mem::L0ICache& icache, mem::DmaEngine& dma,
          ActivityCounters& counters, std::vector<RegionEvent>& regions,
          Tracer& tracer, unsigned hart_id, unsigned num_harts, HwBarrier& barrier);

  [[nodiscard]] bool halted() const noexcept { return halted_; }
  [[nodiscard]] std::uint32_t exit_code() const noexcept { return regs_[10]; }  // a0

  /// Phase 1: decide this cycle's action; may return a TCDM request.
  std::optional<mem::TcdmRequest> prepare(std::uint64_t now);
  /// Phase 2: finalize a memory action after arbitration.
  void commit(std::uint64_t now, bool granted);

  /// Side-effect-free mirror of prepare()'s stall conditions for the
  /// skip-ahead clock: would this core stall at `now`, and until when?
  [[nodiscard]] WakeInfo probe(std::uint64_t now) const;
  /// Attribute `n` skipped cycles (starting at `now`) to `cause` — the bulk
  /// equivalent of `n` stalled prepare() calls, including trace events.
  void skip_stall(std::uint64_t now, std::uint64_t n, StallCause cause);

  [[nodiscard]] std::uint32_t reg(unsigned index) const noexcept { return regs_[index]; }
  void set_reg(unsigned index, std::uint32_t value) noexcept {
    if (index != 0) regs_[index] = value;
  }
  [[nodiscard]] std::uint32_t pc() const noexcept { return pc_; }
  [[nodiscard]] unsigned hart_id() const noexcept { return hart_id_; }

  /// Debugger write to the architectural PC (RSP `P` on regnum 32): repoints
  /// the fetch stage between cycles. The cached micro-op and any in-progress
  /// fetch/branch shadow are discarded, exactly as a taken redirect would.
  /// Only call while the cluster is stopped (never between prepare/commit).
  void debug_set_pc(std::uint32_t pc) noexcept {
    pc_ = pc;
    op_ = nullptr;
    fetch_done_ = false;
    fetch_stall_ = 0;
    branch_stall_ = 0;
  }

 private:
  static constexpr std::uint64_t kBusy = ~std::uint64_t{0};  // written by FPSS later

  void write_rd(unsigned rd, std::uint32_t value, std::uint64_t ready_at);
  // Attribute a non-retiring issue-slot cycle: bumps the matching
  // ActivityCounters field and, when tracing, records the StallEvent — the
  // single place that keeps counters and trace in lockstep.
  void account(std::uint64_t now, StallCause cause);
  void add_stall(StallCause cause, std::uint64_t n);
  [[nodiscard]] WakeInfo probe_csr(const MicroOp& op, std::uint64_t now) const;
  // Single RF write-port bookings live in a fixed ring indexed by cycle:
  // a slot blocks exactly the cycle stored in it, so entries for past cycles
  // go stale by construction and are overwritten in place — no per-cycle
  // garbage collection. This replaces a std::map that needed a GC sweep in
  // every prepare() and paid a node allocation plus log-time lookups per
  // booking on the issue hot path.
  [[nodiscard]] bool wb_free(std::uint64_t cycle) const {
    return wb_ring_[cycle & wb_ring_mask_] != cycle;
  }
  void book_wb(std::uint64_t cycle) { wb_ring_[cycle & wb_ring_mask_] = cycle; }
  void retire_and_advance(std::uint32_t next_pc, std::uint64_t now);
  void execute_alu(const MicroOp& op, std::uint64_t now);
  bool execute_csr(const MicroOp& op, std::uint64_t now);  // false => stall
  void offload_fp(const MicroOp& op, std::uint64_t now);

  const SimParams params_;
  const DecodedProgram* decoded_;
  mem::AddressSpace* memory_;
  FpSubsystem* fpss_;
  ssr::SsrUnit* ssr_;
  mem::L0ICache* icache_;
  mem::DmaEngine* dma_;
  ActivityCounters* counters_;
  std::vector<RegionEvent>* regions_;
  Tracer* tracer_;
  HwBarrier* barrier_;
  unsigned hart_id_ = 0;
  unsigned num_harts_ = 1;

  std::array<std::uint32_t, 32> regs_{};
  std::array<std::uint64_t, 32> ready_{};  // cycle each register becomes usable
  // Ring of booked write-port cycles; sized in the constructor to cover the
  // largest booking horizon (the iterative divider latency).
  std::vector<std::uint64_t> wb_ring_;
  std::uint64_t wb_ring_mask_ = 0;
  std::uint32_t pc_;
  // Micro-op of the instruction at pc_, resolved once per fetch (stall
  // cycles re-enter prepare() without paying the index math again).
  const MicroOp* op_ = nullptr;
  bool halted_ = false;
  unsigned fetch_stall_ = 0;
  unsigned branch_stall_ = 0;
  bool fetch_done_ = false;  // L0 charged for the current pc
  std::uint64_t div_busy_until_ = 0;
  std::uint64_t epoch_counter_ = 0;
  std::map<std::uint16_t, std::uint32_t> scratch_csrs_;

  // Pending memory action decided in prepare().
  enum class MemAction { kNone, kLoad, kStore };
  MemAction mem_action_ = MemAction::kNone;
  std::uint32_t mem_addr_ = 0;
};

}  // namespace copift::sim

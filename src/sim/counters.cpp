#include "sim/counters.hpp"

#include <algorithm>

namespace copift::sim {

namespace {

// Every countable field except `cycles` (which is wall time, not an event
// count: minus subtracts it, plus takes the max). Keeping one table makes it
// impossible for minus() and plus() to drift apart when a field is added —
// only this list and the struct need to change.
constexpr std::uint64_t ActivityCounters::* kEventFields[] = {
    &ActivityCounters::int_retired,
    &ActivityCounters::fp_retired,
    &ActivityCounters::frep_replays,
    &ActivityCounters::int_offloads,
    &ActivityCounters::int_halt_cycles,
    &ActivityCounters::fpss_cfg_cycles,
    &ActivityCounters::int_alu,
    &ActivityCounters::int_mul,
    &ActivityCounters::int_div,
    &ActivityCounters::int_load,
    &ActivityCounters::int_store,
    &ActivityCounters::branches,
    &ActivityCounters::branches_taken,
    &ActivityCounters::jumps,
    &ActivityCounters::csr_ops,
    &ActivityCounters::dma_cmds,
    &ActivityCounters::ssr_cfg,
    &ActivityCounters::frep_cfg,
    &ActivityCounters::barriers,
    &ActivityCounters::fp_add,
    &ActivityCounters::fp_mul,
    &ActivityCounters::fp_fma,
    &ActivityCounters::fp_divsqrt,
    &ActivityCounters::fp_cmp,
    &ActivityCounters::fp_cvt,
    &ActivityCounters::fp_move,
    &ActivityCounters::fp_minmax,
    &ActivityCounters::fp_class,
    &ActivityCounters::fp_load,
    &ActivityCounters::fp_store,
    &ActivityCounters::tcdm_reads,
    &ActivityCounters::tcdm_writes,
    &ActivityCounters::tcdm_conflicts,
    &ActivityCounters::ssr_elements,
    &ActivityCounters::issr_indices,
    &ActivityCounters::l0_hits,
    &ActivityCounters::l0_refills,
    &ActivityCounters::dma_busy_cycles,
    &ActivityCounters::dma_bytes,
    &ActivityCounters::dram_row_hits,
    &ActivityCounters::dram_row_misses,
    &ActivityCounters::stall_raw,
    &ActivityCounters::stall_wb_port,
    &ActivityCounters::stall_offload_full,
    &ActivityCounters::stall_icache,
    &ActivityCounters::stall_tcdm,
    &ActivityCounters::stall_barrier,
    &ActivityCounters::stall_hw_barrier,
    &ActivityCounters::stall_branch,
    &ActivityCounters::stall_div_busy,
    &ActivityCounters::stall_mem_order,
    &ActivityCounters::stall_dma_wait,
    &ActivityCounters::stall_dma_dram,
    &ActivityCounters::fpss_stall_ssr,
    &ActivityCounters::fpss_stall_raw,
    &ActivityCounters::fpss_stall_struct,
    &ActivityCounters::fpss_stall_tcdm,
    &ActivityCounters::fpss_idle,
};

}  // namespace

ActivityCounters ActivityCounters::minus(const ActivityCounters& e) const noexcept {
  ActivityCounters d;
  d.cycles = cycles - e.cycles;
  for (const auto field : kEventFields) d.*field = this->*field - e.*field;
  return d;
}

ActivityCounters ActivityCounters::plus(const ActivityCounters& other) const noexcept {
  ActivityCounters s;
  s.cycles = std::max(cycles, other.cycles);
  for (const auto field : kEventFields) s.*field = this->*field + other.*field;
  return s;
}

}  // namespace copift::sim

#include "sim/counters.hpp"

namespace copift::sim {

ActivityCounters ActivityCounters::minus(const ActivityCounters& e) const noexcept {
  ActivityCounters d;
  d.cycles = cycles - e.cycles;
  d.int_retired = int_retired - e.int_retired;
  d.fp_retired = fp_retired - e.fp_retired;
  d.frep_replays = frep_replays - e.frep_replays;
  d.int_offloads = int_offloads - e.int_offloads;
  d.int_halt_cycles = int_halt_cycles - e.int_halt_cycles;
  d.fpss_cfg_cycles = fpss_cfg_cycles - e.fpss_cfg_cycles;
  d.int_alu = int_alu - e.int_alu;
  d.int_mul = int_mul - e.int_mul;
  d.int_div = int_div - e.int_div;
  d.int_load = int_load - e.int_load;
  d.int_store = int_store - e.int_store;
  d.branches = branches - e.branches;
  d.branches_taken = branches_taken - e.branches_taken;
  d.jumps = jumps - e.jumps;
  d.csr_ops = csr_ops - e.csr_ops;
  d.dma_cmds = dma_cmds - e.dma_cmds;
  d.ssr_cfg = ssr_cfg - e.ssr_cfg;
  d.frep_cfg = frep_cfg - e.frep_cfg;
  d.barriers = barriers - e.barriers;
  d.fp_add = fp_add - e.fp_add;
  d.fp_mul = fp_mul - e.fp_mul;
  d.fp_fma = fp_fma - e.fp_fma;
  d.fp_divsqrt = fp_divsqrt - e.fp_divsqrt;
  d.fp_cmp = fp_cmp - e.fp_cmp;
  d.fp_cvt = fp_cvt - e.fp_cvt;
  d.fp_move = fp_move - e.fp_move;
  d.fp_minmax = fp_minmax - e.fp_minmax;
  d.fp_class = fp_class - e.fp_class;
  d.fp_load = fp_load - e.fp_load;
  d.fp_store = fp_store - e.fp_store;
  d.tcdm_reads = tcdm_reads - e.tcdm_reads;
  d.tcdm_writes = tcdm_writes - e.tcdm_writes;
  d.tcdm_conflicts = tcdm_conflicts - e.tcdm_conflicts;
  d.ssr_elements = ssr_elements - e.ssr_elements;
  d.issr_indices = issr_indices - e.issr_indices;
  d.l0_hits = l0_hits - e.l0_hits;
  d.l0_refills = l0_refills - e.l0_refills;
  d.dma_busy_cycles = dma_busy_cycles - e.dma_busy_cycles;
  d.dma_bytes = dma_bytes - e.dma_bytes;
  d.stall_raw = stall_raw - e.stall_raw;
  d.stall_wb_port = stall_wb_port - e.stall_wb_port;
  d.stall_offload_full = stall_offload_full - e.stall_offload_full;
  d.stall_icache = stall_icache - e.stall_icache;
  d.stall_tcdm = stall_tcdm - e.stall_tcdm;
  d.stall_barrier = stall_barrier - e.stall_barrier;
  d.stall_branch = stall_branch - e.stall_branch;
  d.stall_div_busy = stall_div_busy - e.stall_div_busy;
  d.stall_mem_order = stall_mem_order - e.stall_mem_order;
  d.fpss_stall_ssr = fpss_stall_ssr - e.fpss_stall_ssr;
  d.fpss_stall_raw = fpss_stall_raw - e.fpss_stall_raw;
  d.fpss_stall_struct = fpss_stall_struct - e.fpss_stall_struct;
  d.fpss_stall_tcdm = fpss_stall_tcdm - e.fpss_stall_tcdm;
  d.fpss_idle = fpss_idle - e.fpss_idle;
  return d;
}

}  // namespace copift::sim

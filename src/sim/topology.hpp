// Composable SoC topology: how many core complexes a cluster instantiates,
// with which per-complex parameters, around one shared memory system.
//
// A ClusterTopology is a value describing the wiring; sim::Cluster is the
// built SoC. The common cases are one-liners:
//
//   Cluster soc(program);                                   // 1 complex
//   Cluster soc(program, ClusterTopology().cores(4));       // 4 identical
//   Cluster soc(program, ClusterTopology(base)
//                            .add_complex(fast)
//                            .add_complex(slow));           // heterogeneous
//
// Memory-system parameters (TCDM bank count, DMA bandwidth, max_cycles) come
// from the base/shared SimParams; per-complex parameters (FPU latencies,
// FIFO depths, L0 geometry) may differ per hart. validate() — called by the
// Cluster constructor — rejects unusable configurations with descriptive
// errors instead of letting the simulation silently misbehave.
#pragma once

#include <cstdint>
#include <vector>

#include "sim/params.hpp"

namespace copift::sim {

class ClusterTopology {
 public:
  /// `base.num_cores` identical complexes built from `base`.
  ClusterTopology() : ClusterTopology(SimParams{}) {}
  explicit ClusterTopology(const SimParams& base);

  /// Resize to `n` identical complexes of the base parameters (drops any
  /// heterogeneous complexes added earlier).
  ClusterTopology& cores(unsigned n);
  /// Append one complex with its own parameters (heterogeneous clusters).
  ClusterTopology& add_complex(const SimParams& params);
  /// Replace the shared memory-system / run-limit parameters.
  ClusterTopology& shared_params(const SimParams& base);

  [[nodiscard]] unsigned num_cores() const noexcept {
    return static_cast<unsigned>(complexes_.size());
  }
  [[nodiscard]] const SimParams& complex(unsigned hart) const { return complexes_.at(hart); }
  /// Memory-system + run-limit parameters (bank count, DMA bandwidth,
  /// max_cycles) shared by every complex.
  [[nodiscard]] const SimParams& shared() const noexcept { return base_; }

  /// Throw copift::Error on zero complexes, more than kMaxHarts, or any
  /// per-complex/shared SimParams that fails SimParams::validate().
  void validate() const;

 private:
  SimParams base_;
  std::vector<SimParams> complexes_;
  // Complex count as requested by the caller. The stored vector is clamped
  // to kMaxHarts so absurd requests (cores(1e9)) fail in validate() with a
  // descriptive error instead of dying in a gigantic allocation here.
  unsigned requested_cores_ = 1;
};

/// Single-cycle hardware barrier shared by all harts of a cluster.
///
/// A hart "at the barrier" (executing an access to the `barrier` CSR) calls
/// try_pass(hart) once per cycle. The first call registers the arrival; the
/// call that completes the full set releases every hart — the completing
/// hart passes the same cycle, the others on their next poll (one broadcast
/// cycle, like the real cluster's central barrier node). With one hart the
/// first call passes immediately.
class HwBarrier {
 public:
  explicit HwBarrier(unsigned num_harts)
      : num_harts_(num_harts), arrived_(num_harts, false), released_(num_harts, false) {}

  [[nodiscard]] unsigned num_harts() const noexcept { return num_harts_; }

  /// Returns true iff hart `h` may proceed past the barrier this cycle.
  bool try_pass(unsigned h);

  /// Const mirror of try_pass for the skip-ahead probe: true iff hart `h`
  /// has already registered for the current round and the round is still
  /// incomplete, i.e. its next try_pass would return false without mutating
  /// any state. (An unregistered hart's try_pass mutates, so the probe
  /// reports it as progress instead.)
  [[nodiscard]] bool would_block(unsigned h) const noexcept {
    return !released_[h] && arrived_[h] && count_ < num_harts_;
  }

  /// Completed barrier rounds (diagnostics).
  [[nodiscard]] std::uint64_t rounds() const noexcept { return rounds_; }

 private:
  unsigned num_harts_;
  unsigned count_ = 0;              // arrivals in the current round
  std::uint64_t rounds_ = 0;
  std::vector<bool> arrived_;       // hart has registered for the current round
  std::vector<bool> released_;      // pending pass from a completed round
};

}  // namespace copift::sim

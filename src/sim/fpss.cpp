#include "sim/fpss.hpp"

#include <algorithm>
#include <array>

#include "common/error.hpp"
#include "isa/reg.hpp"

namespace copift::sim {

using isa::ExecUnit;
using isa::FpuClass;
using isa::Mnemonic;
using isa::RegClass;

namespace {
/// Longest issue-to-writeback distance the writeback-port ring must cover.
unsigned max_wb_horizon(const SimParams& params) {
  const fpu::FpuLatencies& f = params.fpu;
  unsigned h = params.fp_load_latency;
  for (unsigned lat : {f.add, f.mul, f.fma, f.div_sqrt, f.cmp, f.cvt, f.move, f.minmax, f.fclass}) {
    h = std::max(h, lat);
  }
  return h;
}

/// Min-heap comparator: the completion with the smallest (cycle, seq) is on
/// top, so equal-cycle completions retire in schedule order (the multimap
/// insertion order this replaces).
struct CompletionLater {
  bool operator()(const auto& a, const auto& b) const noexcept {
    return a.cycle != b.cycle ? a.cycle > b.cycle : a.seq > b.seq;
  }
};
}  // namespace

FpSubsystem::FpSubsystem(const SimParams& params, mem::AddressSpace& memory, ssr::SsrUnit& ssr,
                         ActivityCounters& counters, Tracer& tracer)
    : params_(params),
      memory_(&memory),
      ssr_(&ssr),
      counters_(&counters),
      tracer_(&tracer),
      fifo_(params.offload_fifo_depth),
      sequencer_(params.frep_capacity) {
  std::uint64_t cap = 2;
  while (cap < max_wb_horizon(params) + 1) cap *= 2;
  wb_ring_.assign(cap, ~std::uint64_t{0});
  wb_mask_ = cap - 1;
  completions_.reserve(16);
  outstanding_by_epoch_.reserve(8);
}

void FpSubsystem::add_stall(StallCause cause, std::uint64_t n) {
  switch (cause) {
    case StallCause::kFpRaw: counters_->fpss_stall_raw += n; break;
    case StallCause::kFpSsr: counters_->fpss_stall_ssr += n; break;
    case StallCause::kFpStruct: counters_->fpss_stall_struct += n; break;
    case StallCause::kFpTcdm: counters_->fpss_stall_tcdm += n; break;
    case StallCause::kFpCfg: counters_->fpss_cfg_cycles += n; break;
    case StallCause::kFpIdle: counters_->fpss_idle += n; break;
    default: throw SimError("integer-core stall cause attributed to the FPSS");
  }
}

void FpSubsystem::account(std::uint64_t now, StallCause cause) {
  add_stall(cause, 1);
  tracer_->record_stall(now, TraceUnit::kFpss, cause);
}

void FpSubsystem::skip_stall(std::uint64_t now, std::uint64_t n, StallCause cause) {
  add_stall(cause, n);
  if (tracer_->enabled()) {
    for (std::uint64_t i = 0; i < n; ++i) {
      tracer_->record_stall(now + i, TraceUnit::kFpss, cause);
    }
  }
}

void FpSubsystem::offload(OffloadEntry entry) {
  if (fifo_full()) throw SimError("offload to full FPSS FIFO");
  if (entry.meta == nullptr) entry.meta = &entry.instr.meta();
  add_outstanding(entry.epoch);
  fifo_.push_back(std::move(entry));
}

std::optional<IntWriteback> FpSubsystem::take_int_writeback() {
  if (int_wb_queue_.empty()) return std::nullopt;
  IntWriteback wb = int_wb_queue_.front();
  int_wb_queue_.pop_front();
  return wb;
}

bool FpSubsystem::idle() const noexcept {
  return fifo_.empty() && sequencer_.idle() && total_outstanding_ == 0 && int_wb_queue_.empty();
}

bool FpSubsystem::store_conflict(std::uint32_t addr, std::uint32_t size) const noexcept {
  for (std::size_t i = 0; i < fifo_.size(); ++i) {
    const OffloadEntry& e = fifo_[i];
    if (e.kind != OffloadKind::kStore) continue;
    const std::uint32_t ssize = e.instr.mnemonic == Mnemonic::kFsd ? 8 : 4;
    if (e.operand < addr + size && addr < e.operand + ssize) return true;
  }
  return false;
}

bool FpSubsystem::quiescent_below(std::uint64_t epoch) const noexcept {
  return outstanding_by_epoch_.empty() || outstanding_by_epoch_.front().first >= epoch;
}

void FpSubsystem::add_outstanding(std::uint64_t epoch, std::uint64_t n) {
  if (n == 0) return;
  // Epochs only grow, so the slot is almost always the last one.
  auto it = outstanding_by_epoch_.end();
  while (it != outstanding_by_epoch_.begin() && std::prev(it)->first > epoch) --it;
  if (it != outstanding_by_epoch_.begin() && std::prev(it)->first == epoch) {
    std::prev(it)->second += n;
  } else {
    outstanding_by_epoch_.insert(it, {epoch, n});
  }
  total_outstanding_ += n;
}

void FpSubsystem::complete_epoch(std::uint64_t epoch) {
  // Completions target the oldest outstanding epochs, so scan from the front.
  auto it = outstanding_by_epoch_.begin();
  while (it != outstanding_by_epoch_.end() && it->first != epoch) ++it;
  if (it == outstanding_by_epoch_.end() || it->second == 0) {
    throw SimError("epoch completion underflow");
  }
  if (--it->second == 0) outstanding_by_epoch_.erase(it);
  --total_outstanding_;
}

void FpSubsystem::schedule_completion(std::uint64_t cycle, Completion c) {
  completions_.push_back(ScheduledCompletion{cycle, completion_seq_++, std::move(c)});
  std::push_heap(completions_.begin(), completions_.end(), CompletionLater{});
}

void FpSubsystem::begin_cycle(std::uint64_t now) {
  // Retire completions due this cycle, oldest (cycle, seq) first.
  while (!completions_.empty() && completions_.front().cycle <= now) {
    std::pop_heap(completions_.begin(), completions_.end(), CompletionLater{});
    const Completion& c = completions_.back().c;
    if (c.has_int_wb) int_wb_queue_.push_back(c.int_wb);
    complete_epoch(c.epoch);
    completions_.pop_back();
  }
  // SSR write-stream drains complete their producing instructions.
  for (unsigned lane = 0; lane < isa::kNumSsrLanes; ++lane) {
    ssr::SsrLane& l = ssr_->lane(lane);
    if (!l.has_drained_tokens()) continue;
    for (std::uint64_t epoch : l.drained_tokens()) complete_epoch(epoch);
    l.clear_drained_tokens();
  }
}

bool FpSubsystem::ssr_read_reg(unsigned reg) const {
  return ssr_->enabled() && reg < isa::kNumSsrLanes && ssr_->lane(reg).is_read_stream();
}

bool FpSubsystem::ssr_write_reg(unsigned reg) const {
  return ssr_->enabled() && reg < isa::kNumSsrLanes && ssr_->lane(reg).is_write_stream();
}

void FpSubsystem::count_fpu_op(FpuClass cls) {
  switch (cls) {
    case FpuClass::kAdd: ++counters_->fp_add; break;
    case FpuClass::kMul: ++counters_->fp_mul; break;
    case FpuClass::kFma: ++counters_->fp_fma; break;
    case FpuClass::kDivSqrt: ++counters_->fp_divsqrt; break;
    case FpuClass::kCmp: ++counters_->fp_cmp; break;
    case FpuClass::kCvt: ++counters_->fp_cvt; break;
    case FpuClass::kMove: ++counters_->fp_move; break;
    case FpuClass::kMinMax: ++counters_->fp_minmax; break;
    case FpuClass::kClass: ++counters_->fp_class; break;
    case FpuClass::kNone: break;
  }
}

void FpSubsystem::process_cfg(std::uint64_t now, const OffloadEntry& entry) {
  if (entry.kind == OffloadKind::kFrepCfg) {
    const auto mode = entry.instr.mnemonic == Mnemonic::kFrepI ? frep::FrepSequencer::Mode::kInner
                                                               : frep::FrepSequencer::Mode::kOuter;
    const auto body = static_cast<unsigned>(entry.instr.imm);
    const std::uint64_t extra_reps = entry.operand;
    sequencer_.configure(body, extra_reps, mode);
    // Replays belong to the body's epoch (offloaded after this frep.o).
    add_outstanding(entry.epoch + 1, static_cast<std::uint64_t>(body) * extra_reps);
  } else if (entry.kind == OffloadKind::kSsrCfgWrite) {
    ssr_->write_cfg(static_cast<unsigned>(entry.instr.imm), entry.operand);
    fpu_busy_until_ = std::max<std::uint64_t>(fpu_busy_until_, now + params_.ssr_cfg_latency);
  } else {  // kSsrCfgRead
    const std::uint32_t value = ssr_->read_cfg(static_cast<unsigned>(entry.instr.imm));
    int_wb_queue_.push_back(IntWriteback{entry.instr.rd, value});
    fpu_busy_until_ = std::max<std::uint64_t>(fpu_busy_until_, now + params_.ssr_cfg_latency);
  }
  complete_epoch(entry.epoch);
  (void)now;
}

bool FpSubsystem::try_issue_compute(std::uint64_t now, const OffloadEntry& entry,
                                    bool from_replay) {
  const auto& meta = *entry.meta;
  if (fpu_busy_until_ > now) {
    account(now, StallCause::kFpStruct);
    return false;
  }
  // Source readiness. Integer sources were captured at offload. An SSR
  // stream register may be read by several operands of one instruction
  // (e.g. `fmul.d ft0, ft2, ft2` popping w then s); the lane must have that
  // many elements ready.
  std::array<unsigned, isa::kNumSsrLanes> ssr_need{};
  bool raw_stall = false;
  const auto check_src = [&](RegClass cls, unsigned reg) {
    if (cls != RegClass::kFp) return;
    if (ssr_read_reg(reg)) {
      ++ssr_need[reg];
    } else if (fp_ready_[reg] > now) {
      raw_stall = true;
    }
  };
  check_src(meta.rs1_class, entry.instr.rs1);
  check_src(meta.rs2_class, entry.instr.rs2);
  check_src(meta.rs3_class, entry.instr.rs3);
  bool ssr_stall = false;
  for (unsigned lane = 0; lane < isa::kNumSsrLanes; ++lane) {
    if (ssr_need[lane] > 0 && ssr_->lane(lane).ready_count() < ssr_need[lane]) ssr_stall = true;
  }
  if (raw_stall || ssr_stall) {
    if (ssr_stall) {
      account(now, StallCause::kFpSsr);
    } else {
      account(now, StallCause::kFpRaw);
    }
    return false;
  }
  // Destination checks.
  const unsigned latency = params_.fpu.of(meta.fpu_class);
  const bool dest_ssr = meta.rd_class == RegClass::kFp && ssr_write_reg(entry.instr.rd);
  if (dest_ssr) {
    if (!ssr_->lane(entry.instr.rd).can_push()) {
      account(now, StallCause::kFpSsr);
      return false;
    }
  } else if (meta.rd_class == RegClass::kFp) {
    if (fp_ready_[entry.instr.rd] > now) {  // WAW: wait for in-flight write
      account(now, StallCause::kFpRaw);
      return false;
    }
    if (wb_port_booked(now + latency)) {  // one FP-RF write per cycle
      account(now, StallCause::kFpStruct);
      return false;
    }
  }
  // Issue: gather operands (SSR reads pop their lane).
  const auto operand = [&](RegClass cls, unsigned reg) -> std::uint64_t {
    if (cls != RegClass::kFp) return 0;
    if (ssr_read_reg(reg)) return ssr_->lane(reg).pop();
    return rf_.read(reg);
  };
  const std::uint64_t a = operand(meta.rs1_class, entry.instr.rs1);
  const std::uint64_t b = operand(meta.rs2_class, entry.instr.rs2);
  const std::uint64_t c = operand(meta.rs3_class, entry.instr.rs3);
  const fpu::FpuResult result = fpu::execute(entry.instr, a, b, c, entry.operand);

  if (meta.fpu_class == FpuClass::kDivSqrt) fpu_busy_until_ = now + latency;

  if (result.writes_fp) {
    if (dest_ssr) {
      // Completion deferred until the value drains to memory.
      ssr_->lane(entry.instr.rd).push(result.fp, entry.epoch);
    } else {
      rf_.write(entry.instr.rd, result.fp);
      fp_ready_[entry.instr.rd] = now + latency;
      book_wb_port(now + latency);
      schedule_completion(now + latency, Completion{entry.epoch, false, {}});
    }
  } else if (result.writes_int) {
    Completion comp;
    comp.epoch = entry.epoch;
    comp.has_int_wb = true;
    comp.int_wb = IntWriteback{entry.instr.rd, result.intval};
    schedule_completion(now + latency, std::move(comp));
  } else {
    schedule_completion(now + latency, Completion{entry.epoch, false, {}});
  }

  count_fpu_op(meta.fpu_class);
  ++counters_->fp_retired;
  tracer_->record(now, 0, entry.instr,
                  from_replay ? TraceUnit::kFrepReplay : TraceUnit::kFpss);
  if (from_replay) {
    ++counters_->frep_replays;
    sequencer_.advance();
  } else {
    if (sequencer_.recording()) {
      sequencer_.record(frep::FrepEntry{entry.instr, entry.epoch});
      // The first iteration already ran; replays re-enter via the sequencer.
    }
    fifo_.pop_front();
  }
  return true;
}

std::optional<mem::TcdmRequest> FpSubsystem::prepare(std::uint64_t now) {
  mem_action_ = MemAction::kNone;
  // Replays take priority: the FIFO is blocked while a loop replays.
  if (sequencer_.replaying()) {
    const frep::FrepEntry& e = sequencer_.current();
    OffloadEntry entry;
    entry.instr = e.instr;
    entry.meta = &e.instr.meta();
    entry.kind = OffloadKind::kCompute;
    entry.epoch = e.epoch;
    try_issue_compute(now, entry, /*from_replay=*/true);
    return std::nullopt;
  }
  if (fifo_.empty()) {
    account(now, StallCause::kFpIdle);
    return std::nullopt;
  }
  const OffloadEntry& head = fifo_.front();
  switch (head.kind) {
    case OffloadKind::kCompute:
      try_issue_compute(now, head, /*from_replay=*/false);
      return std::nullopt;
    case OffloadKind::kFrepCfg:
    case OffloadKind::kSsrCfgWrite:
    case OffloadKind::kSsrCfgRead: {
      if (sequencer_.recording()) {
        throw SimError("FREP/SSR config inside an FREP body");
      }
      if (head.kind == OffloadKind::kSsrCfgWrite) {
        // Re-arming a lane (RPTR/WPTR write) backpressures until the lane
        // has drained its previous stream.
        const auto imm = static_cast<unsigned>(head.instr.imm);
        const unsigned reg = imm % 32;
        const unsigned lane = imm / 32;
        if (reg >= ssr::kRegRptr0 && lane < isa::kNumSsrLanes && !ssr_->lane(lane).idle()) {
          account(now, StallCause::kFpStruct);
          return std::nullopt;
        }
      }
      OffloadEntry entry = head;
      fifo_.pop_front();
      process_cfg(now, entry);
      // Config consumption occupies this cycle's FPSS issue slot but is not
      // an FP retire (the int core already counted ssr_cfg/frep_cfg).
      account(now, StallCause::kFpCfg);
      return std::nullopt;
    }
    case OffloadKind::kLoad: {
      // WAW on the destination register.
      if (fp_ready_[head.instr.rd] > now) {
        account(now, StallCause::kFpRaw);
        return std::nullopt;
      }
      if (wb_port_booked(now + params_.fp_load_latency)) {
        account(now, StallCause::kFpStruct);
        return std::nullopt;
      }
      mem_action_ = MemAction::kLoad;
      return mem::TcdmRequest{mem::TcdmPort::kFpLsu, head.operand};
    }
    case OffloadKind::kStore: {
      const unsigned rs2 = head.instr.rs2;
      if (ssr_read_reg(rs2)) {
        if (!ssr_->lane(rs2).can_pop()) {
          account(now, StallCause::kFpSsr);
          return std::nullopt;
        }
      } else if (fp_ready_[rs2] > now) {
        account(now, StallCause::kFpRaw);
        return std::nullopt;
      }
      mem_action_ = MemAction::kStore;
      return mem::TcdmRequest{mem::TcdmPort::kFpLsu, head.operand};
    }
  }
  return std::nullopt;
}

WakeInfo FpSubsystem::probe_compute(std::uint64_t now, const isa::Instr& instr,
                                    const isa::InstrInfo& meta) const {
  // Mirrors try_issue_compute()'s stall conditions in order. SSR-related
  // stalls are reported as blocked: their wake-up comes from lane traffic,
  // and any lane that still wants memory access pins the cluster to
  // per-cycle execution anyway.
  if (fpu_busy_until_ > now) return WakeInfo::sleep(fpu_busy_until_, StallCause::kFpStruct);
  std::array<unsigned, isa::kNumSsrLanes> ssr_need{};
  bool raw_stall = false;
  std::uint64_t raw_ready = 0;
  const auto check_src = [&](RegClass cls, unsigned reg) {
    if (cls != RegClass::kFp) return;
    if (ssr_read_reg(reg)) {
      ++ssr_need[reg];
    } else if (fp_ready_[reg] > now) {
      raw_stall = true;
      raw_ready = std::max(raw_ready, fp_ready_[reg]);
    }
  };
  check_src(meta.rs1_class, instr.rs1);
  check_src(meta.rs2_class, instr.rs2);
  check_src(meta.rs3_class, instr.rs3);
  for (unsigned lane = 0; lane < isa::kNumSsrLanes; ++lane) {
    if (ssr_need[lane] > 0 && ssr_->lane(lane).ready_count() < ssr_need[lane]) {
      return WakeInfo::blocked(StallCause::kFpSsr);
    }
  }
  if (raw_stall) return WakeInfo::sleep(raw_ready, StallCause::kFpRaw);
  const unsigned latency = params_.fpu.of(meta.fpu_class);
  const bool dest_ssr = meta.rd_class == RegClass::kFp && ssr_write_reg(instr.rd);
  if (dest_ssr) {
    if (!ssr_->lane(instr.rd).can_push()) return WakeInfo::blocked(StallCause::kFpSsr);
  } else if (meta.rd_class == RegClass::kFp) {
    if (fp_ready_[instr.rd] > now) return WakeInfo::sleep(fp_ready_[instr.rd], StallCause::kFpRaw);
    if (wb_port_booked(now + latency)) return WakeInfo::sleep(now + 1, StallCause::kFpStruct);
  }
  return WakeInfo::progress();
}

WakeInfo FpSubsystem::probe_issue(std::uint64_t now) const {
  if (sequencer_.replaying()) {
    const frep::FrepEntry& e = sequencer_.current();
    return probe_compute(now, e.instr, e.instr.meta());
  }
  if (fifo_.empty()) return WakeInfo::blocked(StallCause::kFpIdle);
  const OffloadEntry& head = fifo_.front();
  switch (head.kind) {
    case OffloadKind::kCompute:
      return probe_compute(now, head.instr, *head.meta);
    case OffloadKind::kFrepCfg:
    case OffloadKind::kSsrCfgWrite:
    case OffloadKind::kSsrCfgRead: {
      if (head.kind == OffloadKind::kSsrCfgWrite) {
        const auto imm = static_cast<unsigned>(head.instr.imm);
        const unsigned reg = imm % 32;
        const unsigned lane = imm / 32;
        if (reg >= ssr::kRegRptr0 && lane < isa::kNumSsrLanes && !ssr_->lane(lane).idle()) {
          return WakeInfo::blocked(StallCause::kFpStruct);  // re-arm backpressure
        }
      }
      return WakeInfo::progress();
    }
    case OffloadKind::kLoad:
      if (fp_ready_[head.instr.rd] > now) {
        return WakeInfo::sleep(fp_ready_[head.instr.rd], StallCause::kFpRaw);
      }
      if (wb_port_booked(now + params_.fp_load_latency)) {
        return WakeInfo::sleep(now + 1, StallCause::kFpStruct);
      }
      return WakeInfo::progress();  // TCDM request
    case OffloadKind::kStore: {
      const unsigned rs2 = head.instr.rs2;
      if (ssr_read_reg(rs2)) {
        if (!ssr_->lane(rs2).can_pop()) return WakeInfo::blocked(StallCause::kFpSsr);
      } else if (fp_ready_[rs2] > now) {
        return WakeInfo::sleep(fp_ready_[rs2], StallCause::kFpRaw);
      }
      return WakeInfo::progress();  // TCDM request
    }
  }
  return WakeInfo::progress();
}

WakeInfo FpSubsystem::probe(std::uint64_t now) const {
  // begin_cycle() work due at `now` is progress (completion retirements and
  // drained-token processing change state the integer core can observe).
  std::uint64_t event = ~std::uint64_t{0};
  if (!completions_.empty()) {
    if (completions_.front().cycle <= now) return WakeInfo::progress();
    event = completions_.front().cycle;
  }
  for (unsigned lane = 0; lane < isa::kNumSsrLanes; ++lane) {
    if (ssr_->lane(lane).has_drained_tokens()) return WakeInfo::progress();
  }
  const WakeInfo stall = probe_issue(now);
  if (stall.kind == WakeInfo::Kind::kProgress) return stall;
  // The earliest pending completion caps any sleep: at that cycle
  // begin_cycle() retires it, which may unblock this or another agent.
  if (stall.kind == WakeInfo::Kind::kSleep) {
    return WakeInfo::sleep(std::min(stall.wake, event), stall.cause);
  }
  if (event != ~std::uint64_t{0}) return WakeInfo::sleep(event, stall.cause);
  return stall;
}

void FpSubsystem::commit(std::uint64_t now, bool granted) {
  if (mem_action_ == MemAction::kNone) return;
  if (!granted) {
    account(now, StallCause::kFpTcdm);
    mem_action_ = MemAction::kNone;
    return;
  }
  OffloadEntry entry = fifo_.front();
  fifo_.pop_front();
  if (mem_action_ == MemAction::kLoad) {
    std::uint64_t value;
    if (entry.instr.mnemonic == Mnemonic::kFld) {
      value = memory_->load64(entry.operand);
    } else {
      value = 0xFFFFFFFF00000000ULL | memory_->load32(entry.operand);
    }
    rf_.write(entry.instr.rd, value);
    fp_ready_[entry.instr.rd] = now + params_.fp_load_latency;
    book_wb_port(now + params_.fp_load_latency);
    schedule_completion(now + params_.fp_load_latency, Completion{entry.epoch, false, {}});
    ++counters_->fp_load;
    ++counters_->tcdm_reads;
  } else {
    const std::uint64_t value =
        ssr_read_reg(entry.instr.rs2) ? ssr_->lane(entry.instr.rs2).pop() : rf_.read(entry.instr.rs2);
    if (entry.instr.mnemonic == Mnemonic::kFsd) {
      memory_->store64(entry.operand, value);
    } else {
      memory_->store32(entry.operand, static_cast<std::uint32_t>(value));
    }
    schedule_completion(now + 1, Completion{entry.epoch, false, {}});
    ++counters_->fp_store;
    ++counters_->tcdm_writes;
  }
  ++counters_->fp_retired;
  tracer_->record(now, 0, entry.instr, TraceUnit::kFpss);
  mem_action_ = MemAction::kNone;
}

}  // namespace copift::sim

#include "sim/cluster.hpp"

#include <algorithm>
#include <array>

#include "common/error.hpp"

namespace copift::sim {

namespace {
std::shared_ptr<const rvasm::Program> require(std::shared_ptr<const rvasm::Program> p) {
  if (!p) throw Error("Cluster requires a non-null program");
  return p;
}
}  // namespace

Cluster::Cluster(std::shared_ptr<const rvasm::Program> program, ClusterTopology topology)
    : program_(require(std::move(program))),
      decoded_(DecodedProgram::get(program_)),
      topo_((topology.validate(), std::move(topology))),
      arbiter_(topo_.shared().num_tcdm_banks, topo_.num_cores()),
      dma_(memory_, topo_.shared().dma_bytes_per_cycle),
      barrier_(topo_.num_cores()) {
  const SimParams& shared = topo_.shared();
  if (shared.dram_enabled) {
    mem::DramTiming timing;
    timing.t_row_hit = shared.dram_t_row_hit;
    timing.t_row_miss = shared.dram_t_row_miss;
    timing.row_bytes = shared.dram_row_bytes;
    timing.bytes_per_cycle = shared.dram_bytes_per_cycle;
    timing.channels = shared.dram_channels;
    timing.max_inflight = shared.dram_max_inflight;
    dram_ = std::make_unique<mem::DramModel>(timing);
    dma_.attach_dram(*dram_, shared.dram_burst_bytes);
  }
  complexes_.reserve(topo_.num_cores());
  for (unsigned h = 0; h < topo_.num_cores(); ++h) {
    complexes_.push_back(std::make_unique<CoreComplex>(h, topo_.num_cores(), topo_.complex(h),
                                                       *decoded_, memory_, dma_, barrier_));
  }
  memory_.write_block(program_->data_base, program_->data);
  memory_.write_block(program_->dram_base, program_->dram);
}

Cluster::Cluster(std::shared_ptr<const rvasm::Program> program, SimParams params)
    : Cluster(std::move(program), ClusterTopology(params)) {}

Cluster::Cluster(rvasm::Program program, SimParams params)
    : Cluster(std::make_shared<const rvasm::Program>(std::move(program)), params) {}

Cluster::Cluster(rvasm::Program program, ClusterTopology topology)
    : Cluster(std::make_shared<const rvasm::Program>(std::move(program)),
              std::move(topology)) {}

bool Cluster::halted() const noexcept {
  for (const auto& cx : complexes_) {
    if (!cx->core().halted()) return false;
  }
  return true;
}

bool Cluster::all_fpss_idle() const noexcept {
  for (const auto& cx : complexes_) {
    if (!cx->fpss().idle()) return false;
  }
  return true;
}

const ActivityCounters& Cluster::counters() const noexcept {
  if (complexes_.size() == 1) return complexes_.front()->counters();
  agg_ = ActivityCounters{};
  agg_.cycles = cycle_;
  for (const auto& cx : complexes_) agg_ = agg_.plus(cx->counters());
  return agg_;
}

void Cluster::set_tracing(bool enabled) {
  for (auto& cx : complexes_) cx->tracer().set_enabled(enabled);
}

void Cluster::tick() {
  // counters().cycles needs no refresh here: the end of the previous tick
  // left it at cycle_, and mcycle/region reads stamp `now` themselves.
  for (auto& cx : complexes_) cx->fpss().begin_cycle(cycle_);
  dma_.tick();

  // Phase 1: every agent of every hart decides what it wants from the TCDM
  // this cycle.
  requests_.clear();
  tags_.clear();
  // Whether hart h's core/fpss presented a request this cycle (commit must
  // still run for them on denial so the tcdm stall is attributed).
  std::array<std::uint8_t, kMaxHarts> core_pending{};
  std::array<std::uint8_t, kMaxHarts> fpss_pending{};
  std::array<std::uint8_t, kMaxHarts> core_granted{};
  std::array<std::uint8_t, kMaxHarts> fpss_granted{};

  for (unsigned h = 0; h < complexes_.size(); ++h) {
    CoreComplex& cx = *complexes_[h];
    if (const auto core_req = cx.core().prepare(cycle_)) {
      auto req = *core_req;
      req.hart = h;
      requests_.push_back(req);
      tags_.push_back(RequestTag{h, RequestSrc::kCore, {}});
      core_pending[h] = 1;
    }
    if (const auto fpss_req = cx.fpss().prepare(cycle_)) {
      auto req = *fpss_req;
      req.hart = h;
      requests_.push_back(req);
      tags_.push_back(RequestTag{h, RequestSrc::kFpss, {}});
      fpss_pending[h] = 1;
    }
    ssr_requests_.clear();
    ssr_tags_.clear();
    cx.ssr().collect_requests(ssr_requests_, ssr_tags_);
    for (std::size_t i = 0; i < ssr_requests_.size(); ++i) {
      auto req = ssr_requests_[i];
      req.hart = h;
      requests_.push_back(req);
      tags_.push_back(RequestTag{h, RequestSrc::kSsr, ssr_tags_[i]});
    }
  }

  // Phase 2: bank arbitration over the shared TCDM.
  const std::uint64_t grants = requests_.empty() ? 0 : arbiter_.arbitrate(requests_);

  // Phase 3: commit, attributing every grant/denial to the owning hart.
  for (std::size_t i = 0; i < requests_.size(); ++i) {
    const bool granted = (grants >> i) & 1;
    CoreComplex& cx = *complexes_[tags_[i].hart];
    if (!granted) ++cx.counters().tcdm_conflicts;
    switch (tags_[i].src) {
      case RequestSrc::kCore:
        core_granted[tags_[i].hart] = granted ? 1 : 0;
        break;
      case RequestSrc::kFpss:
        fpss_granted[tags_[i].hart] = granted ? 1 : 0;
        break;
      case RequestSrc::kSsr:
        if (granted) {
          ActivityCounters& c = cx.counters();
          cx.ssr().apply_grant(tags_[i].ssr_tag);
          ++c.ssr_elements;
          if (tags_[i].ssr_tag.index) {
            ++c.issr_indices;
            ++c.tcdm_reads;
          } else if (cx.ssr().lane(tags_[i].ssr_tag.lane).is_write_stream()) {
            ++c.tcdm_writes;
          } else {
            ++c.tcdm_reads;
          }
        }
        break;
    }
  }
  for (unsigned h = 0; h < complexes_.size(); ++h) {
    CoreComplex& cx = *complexes_[h];
    if (core_pending[h]) cx.core().commit(cycle_, core_granted[h] != 0);
    if (fpss_pending[h]) cx.fpss().commit(cycle_, fpss_granted[h] != 0);
    cx.ssr().commit_cycle();
  }

  // The DMA is cluster-shared; its activity is attributed to hart 0 (and
  // thereby to the aggregate view).
  complexes_.front()->counters().dma_busy_cycles = dma_.busy_cycles();
  complexes_.front()->counters().dma_bytes = dma_.bytes_moved();
  if (dram_) {
    complexes_.front()->counters().dram_row_hits = dram_->row_hits();
    complexes_.front()->counters().dram_row_misses = dram_->row_misses();
  }
  ++cycle_;
  for (auto& cx : complexes_) cx->counters().cycles = cycle_;
}

bool Cluster::try_skip() {
  // A clock jump is legal only when no agent can change architectural state
  // this cycle and at least one knows its wake-up time. SSR stream traffic
  // (a lane wanting a data/index access) always counts as progress, so any
  // active stream pins the cluster to per-cycle execution.
  std::array<WakeInfo, kMaxHarts> core_wake;
  std::array<WakeInfo, kMaxHarts> fpss_wake;
  std::uint64_t window = ~std::uint64_t{0};
  bool has_sleeper = false;
  for (unsigned h = 0; h < complexes_.size(); ++h) {
    const CoreComplex& cx = *complexes_[h];
    if (cx.ssr().wants_any_access()) return false;
    fpss_wake[h] = cx.fpss().probe(cycle_);
    if (fpss_wake[h].kind == WakeInfo::Kind::kProgress) return false;
    core_wake[h] = cx.core().probe(cycle_);
    if (core_wake[h].kind == WakeInfo::Kind::kProgress) return false;
    for (const WakeInfo& w : {core_wake[h], fpss_wake[h]}) {
      if (w.kind == WakeInfo::Kind::kSleep) {
        has_sleeper = true;
        window = std::min(window, w.wake);
      }
    }
  }
  // Every hart blocked on another agent with no provable wake (e.g. a
  // program deadlock): fall back to ticking so max_cycles still fires.
  if (!has_sleeper) return false;
  // Never jump past the cycle budget, so the timeout path counts the same
  // number of cycles as per-cycle execution.
  window = std::min(window, topo_.shared().max_cycles);
  // Jump: cycles [cycle_, window) are pure stalls; attribute them in bulk.
  const std::uint64_t n = window - cycle_;
  for (unsigned h = 0; h < complexes_.size(); ++h) {
    CoreComplex& cx = *complexes_[h];
    cx.core().skip_stall(cycle_, n, core_wake[h].cause);
    cx.fpss().skip_stall(cycle_, n, fpss_wake[h].cause);
  }
  dma_.advance(n);
  complexes_.front()->counters().dma_busy_cycles = dma_.busy_cycles();
  complexes_.front()->counters().dma_bytes = dma_.bytes_moved();
  if (dram_) {
    complexes_.front()->counters().dram_row_hits = dram_->row_hits();
    complexes_.front()->counters().dram_row_misses = dram_->row_misses();
  }
  cycle_ = window;
  for (auto& cx : complexes_) cx->counters().cycles = cycle_;
  ++skip_jumps_;
  skipped_cycles_ += n;
  return true;
}

void Cluster::step_fast() {
  if (cycle_ >= next_probe_) {
    if (try_skip()) {
      probe_backoff_ = 0;
      return;
    }
    // Failed probe: suppress probing for exponentially more ticks so the
    // overhead vanishes while the cluster is busy issuing.
    probe_backoff_ = std::min<std::uint64_t>(probe_backoff_ == 0 ? 1 : probe_backoff_ * 2, 16);
    next_probe_ = cycle_ + probe_backoff_;
  }
  tick();
}

RunResult Cluster::run() {
  const std::uint64_t max_cycles = topo_.shared().max_cycles;
  const bool fast = topo_.shared().skip_ahead;
  while (!halted() && cycle_ < max_cycles) {
    fast ? step_fast() : tick();
  }
  // Drain in-flight FP work so memory state is final at halt.
  while (halted() && !all_fpss_idle() && cycle_ < max_cycles) {
    fast ? step_fast() : tick();
  }
  RunResult result;
  result.halted = halted();
  result.cycles = cycle_;
  result.exit_code = complexes_.front()->core().exit_code();
  if (!result.halted) {
    throw SimError("simulation exceeded max_cycles (" + std::to_string(max_cycles) + ")");
  }
  return result;
}

}  // namespace copift::sim

#include "sim/cluster.hpp"

#include "common/error.hpp"

namespace copift::sim {

namespace {
std::shared_ptr<const rvasm::Program> require(std::shared_ptr<const rvasm::Program> p) {
  if (!p) throw Error("Cluster requires a non-null program");
  return p;
}
}  // namespace

Cluster::Cluster(std::shared_ptr<const rvasm::Program> program, SimParams params)
    : program_(require(std::move(program))),
      params_(params),
      arbiter_(params.num_tcdm_banks),
      icache_(params.l0_lines, params.l0_words_per_line, params.l0_branch_penalty),
      dma_(memory_, params.dma_bytes_per_cycle),
      ssr_(memory_),
      fpss_(params, memory_, ssr_, counters_, tracer_),
      core_(params, *program_, memory_, fpss_, ssr_, icache_, dma_, counters_, regions_, tracer_) {
  memory_.write_block(program_->data_base, program_->data);
  memory_.write_block(program_->dram_base, program_->dram);
}

Cluster::Cluster(rvasm::Program program, SimParams params)
    : Cluster(std::make_shared<const rvasm::Program>(std::move(program)), params) {}

void Cluster::tick() {
  counters_.cycles = cycle_;
  fpss_.begin_cycle(cycle_);
  dma_.tick();

  // Phase 1: every agent decides what it wants from the TCDM this cycle.
  std::vector<mem::TcdmRequest> requests;
  enum class Src : std::uint8_t { kCore, kFpss, kSsr };
  struct Tag {
    Src src;
    ssr::SsrUnit::RequestTag ssr_tag;
  };
  std::vector<Tag> tags;

  const auto core_req = core_.prepare(cycle_);
  if (core_req) {
    requests.push_back(*core_req);
    tags.push_back(Tag{Src::kCore, {}});
  }
  const auto fpss_req = fpss_.prepare(cycle_);
  if (fpss_req) {
    requests.push_back(*fpss_req);
    tags.push_back(Tag{Src::kFpss, {}});
  }
  std::vector<ssr::SsrUnit::RequestTag> ssr_tags;
  std::vector<mem::TcdmRequest> ssr_requests;
  ssr_.collect_requests(ssr_requests, ssr_tags);
  for (std::size_t i = 0; i < ssr_requests.size(); ++i) {
    requests.push_back(ssr_requests[i]);
    tags.push_back(Tag{Src::kSsr, ssr_tags[i]});
  }

  // Phase 2: bank arbitration.
  const std::uint64_t grants = requests.empty() ? 0 : arbiter_.arbitrate(requests);
  counters_.tcdm_conflicts = arbiter_.conflicts();

  // Phase 3: commit.
  bool core_granted = false;
  bool fpss_granted = false;
  for (std::size_t i = 0; i < requests.size(); ++i) {
    const bool granted = (grants >> i) & 1;
    switch (tags[i].src) {
      case Src::kCore:
        core_granted = granted;
        break;
      case Src::kFpss:
        fpss_granted = granted;
        break;
      case Src::kSsr:
        if (granted) {
          ssr_.apply_grant(tags[i].ssr_tag);
          ++counters_.ssr_elements;
          if (tags[i].ssr_tag.index) {
            ++counters_.issr_indices;
            ++counters_.tcdm_reads;
          } else if (ssr_.lane(tags[i].ssr_tag.lane).is_write_stream()) {
            ++counters_.tcdm_writes;
          } else {
            ++counters_.tcdm_reads;
          }
        }
        break;
    }
  }
  if (core_req) core_.commit(cycle_, core_granted);
  if (fpss_req) fpss_.commit(cycle_, fpss_granted);
  ssr_.commit_cycle();

  counters_.dma_busy_cycles = dma_.busy_cycles();
  counters_.dma_bytes = dma_.bytes_moved();
  ++cycle_;
  counters_.cycles = cycle_;
}

RunResult Cluster::run() {
  while (!core_.halted() && cycle_ < params_.max_cycles) {
    tick();
  }
  // Drain in-flight FP work so memory state is final at halt.
  while (core_.halted() && !fpss_.idle() && cycle_ < params_.max_cycles) {
    tick();
  }
  RunResult result;
  result.halted = core_.halted();
  result.cycles = cycle_;
  result.exit_code = core_.exit_code();
  if (!result.halted) {
    throw SimError("simulation exceeded max_cycles (" + std::to_string(params_.max_cycles) + ")");
  }
  return result;
}

}  // namespace copift::sim

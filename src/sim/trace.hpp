// Instruction trace and issue-slot attribution (Snitch-style traces).
//
// When attached to a cluster, the tracer records two parallel streams:
//
//  * one `TraceEntry` per retired instruction (issue cycle, pc, unit), and
//  * one `StallEvent` per non-retiring cycle of each unit, tagged with the
//    stall cause (RAW, write-port conflict, offload FIFO full, frontend,
//    TCDM conflict, barrier wait, ...) or the occupied/idle reason
//    (offload handoff, SSR/FREP config, post-ecall drain, empty FIFO).
//
// Together the streams cover every simulated cycle of every unit exactly
// once — the same attribution the ActivityCounters accumulate in aggregate.
// `render()` produces a human-readable listing; `sim/trace_export.hpp` adds
// the Chrome/Perfetto trace-event JSON exporter and the top-down stall
// report. This is the tool of first resort when a kernel's schedule doesn't
// behave (stalls, barrier waits, FREP replays): see
// docs/performance-debugging.md for the workflow.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "isa/instr.hpp"

namespace copift::sim {

enum class TraceUnit : std::uint8_t { kIntCore, kFpss, kFrepReplay };

/// Why a unit's issue slot did not retire an instruction this cycle. The
/// first group are integer-core causes, the second FPSS causes; each maps
/// 1:1 onto an ActivityCounters field (see stall_cause_counter_name()).
enum class StallCause : std::uint8_t {
  // Integer core.
  kIntRaw,          // operand not ready (incl. waiting on an FPSS writeback)
  kIntWbPort,       // single RF write port already booked for the result cycle
  kIntOffloadFull,  // accelerator bus busy: offload FIFO full (often FREP replay serialization)
  kIntFrontend,     // L0 I$ miss / fetch penalty
  kIntBranch,       // taken-branch or jump bubble
  kIntDivBusy,      // iterative divider occupied by an earlier div/rem
  kIntTcdm,         // lost TCDM bank arbitration
  kIntMemOrder,     // load held back by an overlapping queued FP store
  kIntBarrier,      // copift.barrier / FPSS or SSR drain wait
  kIntHwBarrier,    // waiting for the other harts at the hardware barrier CSR
  kIntDmaWait,      // dmwait: queued DMA transfers still draining (TCDM-local)
  kIntDmaDram,      // dmwait: DMA transfer in flight against the DRAM model
  kIntOffload,      // occupied: instruction handed to the FPSS FIFO this cycle
  kIntHalted,       // idle: post-ecall, waiting for FP work to drain
  // FPSS.
  kFpRaw,           // FP operand in flight (RAW/WAW on the FP register file)
  kFpSsr,           // SSR lane empty (read) or full (write)
  kFpStruct,        // FPU busy, FP-RF write port booked, or lane re-arm wait
  kFpTcdm,          // lost TCDM bank arbitration
  kFpCfg,           // occupied: SSR/FREP config entry consumed this cycle
  kFpIdle,          // idle: offload FIFO empty, nothing to do
};

/// Coarse classification of a StallCause for reports and trace coloring.
enum class SlotKind : std::uint8_t { kIssue, kStall, kIdle };

struct ActivityCounters;

[[nodiscard]] SlotKind slot_kind(StallCause cause) noexcept;
[[nodiscard]] const char* stall_cause_name(StallCause cause) noexcept;
/// Name of the ActivityCounters field the cause accumulates into.
[[nodiscard]] const char* stall_cause_counter_name(StallCause cause) noexcept;
/// Value of that field — the taxonomy table owns the cause->field mapping,
/// so consumers (and tests) can iterate all causes without hand-kept lists.
[[nodiscard]] std::uint64_t stall_cause_counter_value(const ActivityCounters& counters,
                                                     StallCause cause) noexcept;
[[nodiscard]] const char* trace_unit_name(TraceUnit unit) noexcept;
/// One-line-per-cause legend of the whole taxonomy (printed by
/// `copift_sim --report` so the output is self-describing).
[[nodiscard]] std::string stall_taxonomy_legend();

constexpr unsigned kNumStallCauses = static_cast<unsigned>(StallCause::kFpIdle) + 1;

struct TraceEntry {
  std::uint64_t cycle = 0;
  std::uint32_t pc = 0;  // 0 for FPSS-side entries (no fetch)
  isa::Instr instr;
  TraceUnit unit = TraceUnit::kIntCore;
};

/// One non-retiring cycle of one unit, attributed to its cause. FREP replay
/// issue slots live on the FPSS track, so `unit` is kIntCore or kFpss only.
struct StallEvent {
  std::uint64_t cycle = 0;
  TraceUnit unit = TraceUnit::kIntCore;
  StallCause cause = StallCause::kIntRaw;
};

class Tracer {
 public:
  void record(std::uint64_t cycle, std::uint32_t pc, const isa::Instr& instr,
              TraceUnit unit) {
    if (!enabled_) return;
    entries_.push_back(TraceEntry{cycle, pc, instr, unit});
  }

  /// Attribute a non-retiring cycle of `unit` to `cause`. Called by the
  /// units in lockstep with the ActivityCounters stall fields, so with
  /// tracing on, entries + stalls cover every cycle of every unit once.
  void record_stall(std::uint64_t cycle, TraceUnit unit, StallCause cause) {
    if (!enabled_) return;
    stalls_.push_back(StallEvent{cycle, unit, cause});
  }

  void set_enabled(bool on) noexcept { enabled_ = on; }
  [[nodiscard]] bool enabled() const noexcept { return enabled_; }
  [[nodiscard]] const std::vector<TraceEntry>& entries() const noexcept { return entries_; }
  [[nodiscard]] const std::vector<StallEvent>& stalls() const noexcept { return stalls_; }
  void clear() {
    entries_.clear();
    stalls_.clear();
  }

  /// Render the trace (optionally a cycle range) as text, one line per
  /// retired instruction: cycle, unit tag, pc, disassembly.
  [[nodiscard]] std::string render(std::uint64_t from_cycle = 0,
                                   std::uint64_t to_cycle = UINT64_MAX) const;

  /// Dual-issue cycles: cycles in which both the integer core and the FPSS
  /// retired an instruction.
  [[nodiscard]] std::uint64_t dual_issue_cycles() const;

 private:
  bool enabled_ = false;
  std::vector<TraceEntry> entries_;
  std::vector<StallEvent> stalls_;
};

}  // namespace copift::sim

// Instruction trace collection (Snitch-style simulation traces).
//
// When attached to a cluster, the tracer records one entry per retired
// instruction with its issue cycle and originating unit, and can render a
// human-readable listing — the tool of first resort when a kernel's
// schedule doesn't behave (stalls, barrier waits, FREP replays).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "isa/instr.hpp"

namespace copift::sim {

enum class TraceUnit : std::uint8_t { kIntCore, kFpss, kFrepReplay };

struct TraceEntry {
  std::uint64_t cycle = 0;
  std::uint32_t pc = 0;  // 0 for FREP replays (no fetch)
  isa::Instr instr;
  TraceUnit unit = TraceUnit::kIntCore;
};

class Tracer {
 public:
  void record(std::uint64_t cycle, std::uint32_t pc, const isa::Instr& instr,
              TraceUnit unit) {
    if (!enabled_) return;
    entries_.push_back(TraceEntry{cycle, pc, instr, unit});
  }

  void set_enabled(bool on) noexcept { enabled_ = on; }
  [[nodiscard]] bool enabled() const noexcept { return enabled_; }
  [[nodiscard]] const std::vector<TraceEntry>& entries() const noexcept { return entries_; }
  void clear() { entries_.clear(); }

  /// Render the trace (optionally a cycle range) as text, one line per
  /// retired instruction: cycle, unit tag, pc, disassembly.
  [[nodiscard]] std::string render(std::uint64_t from_cycle = 0,
                                   std::uint64_t to_cycle = UINT64_MAX) const;

  /// Dual-issue cycles: cycles in which both the integer core and the FPSS
  /// retired an instruction.
  [[nodiscard]] std::uint64_t dual_issue_cycles() const;

 private:
  bool enabled_ = false;
  std::vector<TraceEntry> entries_;
};

}  // namespace copift::sim

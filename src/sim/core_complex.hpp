// One Snitch core complex: the unit a ClusterTopology instantiates N times.
//
// A complex bundles everything private to a hart — integer core, FP
// subsystem, SSR lanes, L0 I$, activity counters, region stream and tracer —
// around the cluster-shared memory system (AddressSpace, TCDM arbiter, DMA,
// hardware barrier). sim::Cluster owns the shared pieces and ticks every
// complex in lockstep; all per-hart introspection (counters, regions,
// traces) hangs off the complex.
#pragma once

#include <cstdint>
#include <vector>

#include "mem/address_space.hpp"
#include "mem/dma.hpp"
#include "mem/l0_icache.hpp"
#include "rvasm/program.hpp"
#include "sim/core.hpp"
#include "sim/counters.hpp"
#include "sim/decode.hpp"
#include "sim/fpss.hpp"
#include "sim/params.hpp"
#include "sim/topology.hpp"
#include "sim/trace.hpp"
#include "ssr/ssr.hpp"

namespace copift::sim {

class CoreComplex {
 public:
  CoreComplex(unsigned hart_id, unsigned num_harts, const SimParams& params,
              const DecodedProgram& decoded, mem::AddressSpace& memory, mem::DmaEngine& dma,
              HwBarrier& barrier);

  CoreComplex(const CoreComplex&) = delete;
  CoreComplex& operator=(const CoreComplex&) = delete;

  [[nodiscard]] unsigned hart_id() const noexcept { return hart_id_; }
  [[nodiscard]] const SimParams& params() const noexcept { return params_; }

  [[nodiscard]] IntCore& core() noexcept { return core_; }
  [[nodiscard]] const IntCore& core() const noexcept { return core_; }
  [[nodiscard]] FpSubsystem& fpss() noexcept { return fpss_; }
  [[nodiscard]] const FpSubsystem& fpss() const noexcept { return fpss_; }
  [[nodiscard]] ssr::SsrUnit& ssr() noexcept { return ssr_; }
  [[nodiscard]] const ssr::SsrUnit& ssr() const noexcept { return ssr_; }
  [[nodiscard]] mem::L0ICache& icache() noexcept { return icache_; }
  [[nodiscard]] const mem::L0ICache& icache() const noexcept { return icache_; }

  [[nodiscard]] ActivityCounters& counters() noexcept { return counters_; }
  [[nodiscard]] const ActivityCounters& counters() const noexcept { return counters_; }
  [[nodiscard]] const std::vector<RegionEvent>& regions() const noexcept { return regions_; }
  [[nodiscard]] Tracer& tracer() noexcept { return tracer_; }
  [[nodiscard]] const Tracer& tracer() const noexcept { return tracer_; }

 private:
  unsigned hart_id_;
  SimParams params_;
  ActivityCounters counters_;
  std::vector<RegionEvent> regions_;
  Tracer tracer_;
  mem::L0ICache icache_;
  ssr::SsrUnit ssr_;
  FpSubsystem fpss_;
  IntCore core_;
};

}  // namespace copift::sim

#include "sim/decode.hpp"

#include <map>
#include <mutex>

#include "common/error.hpp"

namespace copift::sim {

using isa::RegClass;

DecodedProgram::DecodedProgram(std::shared_ptr<const rvasm::Program> program)
    : program_(std::move(program)) {
  if (!program_) throw Error("DecodedProgram requires a non-null program");
  text_base_ = program_->text_base;
  ops_.reserve(program_->text.size());
  for (const isa::Instr& instr : program_->text) {
    const isa::InstrInfo& meta = instr.meta();
    MicroOp op;
    op.instr = &instr;
    op.imm = instr.imm;
    op.mnemonic = instr.mnemonic;
    op.unit = meta.unit;
    op.rd = instr.rd;
    op.rs1 = instr.rs1;
    op.rs2 = instr.rs2;
    op.sb_rd = meta.rd_class == RegClass::kInt ? instr.rd : 0;
    op.sb_rs1 = meta.rs1_class == RegClass::kInt ? instr.rs1 : 0;
    op.sb_rs2 = meta.rs2_class == RegClass::kInt ? instr.rs2 : 0;
    if (meta.writes_int_rf()) op.flags |= MicroOp::kWritesIntRf;
    if (meta.rs1_class == RegClass::kInt) op.flags |= MicroOp::kRs1Int;
    ops_.push_back(op);
  }
}

std::shared_ptr<const DecodedProgram> DecodedProgram::get(
    const std::shared_ptr<const rvasm::Program>& program) {
  if (!program) throw Error("DecodedProgram requires a non-null program");
  // Keyed on program identity; entries self-expire when the last cluster
  // using a program releases its decoded table. A recycled address whose
  // weak_ptr has expired is simply rebuilt.
  static std::mutex mutex;
  static std::map<const rvasm::Program*, std::weak_ptr<const DecodedProgram>> cache;
  std::lock_guard<std::mutex> lock(mutex);
  auto& slot = cache[program.get()];
  if (auto cached = slot.lock()) {
    if (&cached->program() == program.get()) return cached;
  }
  auto decoded = std::make_shared<const DecodedProgram>(program);
  slot = decoded;
  // Opportunistically drop expired slots so the cache stays bounded by the
  // number of live programs.
  for (auto it = cache.begin(); it != cache.end();) {
    it = it->second.expired() ? cache.erase(it) : std::next(it);
  }
  return decoded;
}

std::uint32_t DecodedProgram::index_of(std::uint32_t pc) const {
  if (pc < text_base_ || (pc - text_base_) / 4 >= ops_.size()) {
    throw Error("address outside text section: " + std::to_string(pc));
  }
  if ((pc & 3U) != 0) throw Error("misaligned text address");
  return (pc - text_base_) / 4;
}

}  // namespace copift::sim

// Decode-once instruction cache: the per-PC micro-op table the cycle loop
// indexes instead of re-deriving instruction metadata every cycle.
//
// The assembler already hands the simulator predecoded `isa::Instr`s, but the
// issue path still paid per cycle for `Program::text_index` (bounds checks +
// division), the `info(mnemonic)` metadata lookup, and the register-class
// comparisons of the scoreboard busy check — and it paid them again on every
// stall cycle of the same instruction. A DecodedProgram flattens all of that
// into one MicroOp per instruction, built exactly once per program:
// scoreboard operand indices are pre-resolved (0 for non-integer operands, so
// the busy check is three array loads), the execution unit and offload flags
// are copied out of the InstrInfo table, and the micro-op carries a pointer
// to its backing Instr for the tracer and the FP offload path.
//
// DecodedProgram::get() extends the assemble-once ProgramCache idea down into
// the simulator: decoded tables are shared by every cluster running the same
// program (a parameter sweep decodes each kernel once), keyed on program
// identity and dropped when the last user releases them.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "isa/instr.hpp"
#include "rvasm/program.hpp"

namespace copift::sim {

/// One pre-decoded instruction, resolved for the issue hot path.
struct MicroOp {
  const isa::Instr* instr = nullptr;  // backing instruction (tracer, FPU, offload)
  std::int32_t imm = 0;
  isa::Mnemonic mnemonic = isa::Mnemonic::kEcall;
  isa::ExecUnit unit = isa::ExecUnit::kSys;
  std::uint8_t rd = 0;
  std::uint8_t rs1 = 0;
  std::uint8_t rs2 = 0;
  // Scoreboard indices: the operand's register number when it lives in the
  // integer RF, else 0. x0 is never marked busy, so `ready_[sb_*] > now`
  // reproduces the class-checked busy test with three unconditional loads.
  std::uint8_t sb_rd = 0;
  std::uint8_t sb_rs1 = 0;
  std::uint8_t sb_rs2 = 0;
  std::uint8_t flags = 0;

  static constexpr std::uint8_t kWritesIntRf = 1U << 0;  // offloaded, writes int RF
  static constexpr std::uint8_t kRs1Int = 1U << 1;       // rs1 read from the int RF

  [[nodiscard]] bool writes_int_rf() const noexcept { return (flags & kWritesIntRf) != 0; }
  [[nodiscard]] bool rs1_is_int() const noexcept { return (flags & kRs1Int) != 0; }
};

/// Immutable per-program micro-op table. Holds a strong reference to the
/// backing program (MicroOps point into its text).
class DecodedProgram {
 public:
  explicit DecodedProgram(std::shared_ptr<const rvasm::Program> program);

  /// Shared decode-once lookup: returns the cached table for `program`,
  /// building it on first use. Thread-safe (sweeps decode concurrently).
  static std::shared_ptr<const DecodedProgram> get(
      const std::shared_ptr<const rvasm::Program>& program);

  /// Micro-op index for a text address; throws copift::Error on addresses
  /// outside the text section or misaligned ones (same contract as
  /// Program::text_index).
  [[nodiscard]] std::uint32_t index_of(std::uint32_t pc) const;

  [[nodiscard]] const MicroOp& op(std::uint32_t index) const noexcept { return ops_[index]; }
  [[nodiscard]] std::uint32_t size() const noexcept {
    return static_cast<std::uint32_t>(ops_.size());
  }
  [[nodiscard]] const rvasm::Program& program() const noexcept { return *program_; }

 private:
  std::shared_ptr<const rvasm::Program> program_;
  std::vector<MicroOp> ops_;
  std::uint32_t text_base_ = 0;
};

}  // namespace copift::sim

#include "sim/core_complex.hpp"

namespace copift::sim {

CoreComplex::CoreComplex(unsigned hart_id, unsigned num_harts, const SimParams& params,
                         const DecodedProgram& decoded, mem::AddressSpace& memory,
                         mem::DmaEngine& dma, HwBarrier& barrier)
    : hart_id_(hart_id),
      params_(params),
      icache_(params.l0_lines, params.l0_words_per_line, params.l0_branch_penalty),
      ssr_(memory),
      fpss_(params, memory, ssr_, counters_, tracer_),
      core_(params, decoded, memory, fpss_, ssr_, icache_, dma, counters_, regions_,
            tracer_, hart_id, num_harts, barrier) {
  // Typical kernels emit a handful of region markers; reserving here keeps
  // the steady-state cycle loop allocation-free (programs with more regions
  // just fall back to amortized growth).
  regions_.reserve(64);
}

}  // namespace copift::sim

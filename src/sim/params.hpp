// Simulation parameters for the Snitch cluster model.
//
// Defaults approximate the paper's configuration: one compute core at 1 GHz
// in GF12LP+, 128 KiB TCDM in 32 banks, an 8-entry offload FIFO, a 16-entry
// FREP buffer, and FPnew-like latencies.
#pragma once

#include <cstdint>

#include "fpu/fpu.hpp"

namespace copift::sim {

/// Most harts a cluster can instantiate. The Snitch cluster the paper's core
/// lives in has 8 compute cores; the TCDM arbiter's grant mask also bounds
/// the per-cycle request count (<= 64), which 8 harts stay well inside.
inline constexpr unsigned kMaxHarts = 8;

struct SimParams {
  fpu::FpuLatencies fpu{};

  /// Core complexes (IntCore + FPSS + SSRs + L0 I$) sharing the TCDM. Each
  /// hart reads its id from the `mhartid` CSR and synchronizes through the
  /// `barrier` CSR. 1 reproduces the paper's single-core measurements.
  unsigned num_cores = 1;

  // Core <-> FPSS decoupling.
  unsigned offload_fifo_depth = 8;
  unsigned frep_capacity = 32;
  // Cycles the FPSS is occupied by one SSR config write (lane arming is a
  // round trip to the stream controller). This is the per-block overhead
  // that penalizes small COPIFT block sizes (paper Fig. 3).
  unsigned ssr_cfg_latency = 10;

  // Integer pipeline.
  unsigned load_use_latency = 2;     // TCDM grant -> result usable
  unsigned mul_latency = 3;          // pipelined multiplier
  unsigned div_latency = 20;         // iterative divider (blocking)
  unsigned branch_taken_penalty = 1; // bubble after a taken branch/jump

  // FP loads (baseline kernels; COPIFT maps these to SSRs instead).
  unsigned fp_load_latency = 2;

  // Memory system.
  unsigned num_tcdm_banks = 32;
  unsigned l0_lines = 8;            // 8 lines x 8 words = 64-instr L0 I$
  unsigned l0_words_per_line = 8;
  unsigned l0_branch_penalty = 2;
  unsigned ssr_fifo_depth = 4;
  unsigned dma_bytes_per_cycle = 64;

  // Main-memory (DRAM) level behind the DMA engine. Off by default: every
  // paper measurement fits in TCDM, and the pinned cycle counts must stay
  // byte-identical with the level absent. When enabled, DMA transfers whose
  // source or destination lies in the kDramBase window are split into
  // dram_burst_bytes bursts; each burst pays the open-row hit or miss
  // latency before streaming at min(dma_bytes_per_cycle,
  // dram_bytes_per_cycle). Rows interleave across dram_channels at
  // dram_row_bytes granularity, and at most dram_max_inflight requests can
  // be outstanding in the closed-form request model (mem::DramModel).
  bool dram_enabled = false;
  unsigned dram_t_row_hit = 4;
  unsigned dram_t_row_miss = 30;
  unsigned dram_row_bytes = 2048;
  unsigned dram_bytes_per_cycle = 32;
  unsigned dram_burst_bytes = 256;
  unsigned dram_channels = 2;
  unsigned dram_max_inflight = 8;

  std::uint64_t max_cycles = 1'000'000'000;

  /// Event-driven clock: when every hart is in a provable known-duration
  /// wait, jump the cluster clock to the earliest wake-up instead of ticking
  /// through the stall cycles one by one. Bit-exact by construction (stall
  /// counters and trace events are applied in bulk); disable to force
  /// per-cycle execution, e.g. when diffing against the skip path.
  bool skip_ahead = true;

  /// Throw copift::Error (naming the offending field and value) on any
  /// configuration the simulator cannot honestly model: zero cores, banks,
  /// FIFO/FREP depths, non-power-of-two L0 geometry, a stalled DMA, or a
  /// zero cycle budget. Called by the Cluster/topology constructors so bad
  /// configurations fail loudly instead of hanging or dividing by zero.
  void validate() const;
};

}  // namespace copift::sim

// Stream fusion (Step 6 of the COPIFT methodology).
//
// Each Snitch core has only 3 SSR lanes but a COPIFT kernel typically needs
// more logical streams (paper: 6 for expf). Stream fusion merges multiple
// lower-dimensional affine streams into one higher-dimensional stream
// (paper Fig. 1i): two 1-D streams with identical element stride and count
// and bases b1 < b2 fuse into a 2-D stream with outer bound 2 and outer
// stride b2 - b1.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

namespace copift::core {

enum class StreamDir : std::uint8_t { kRead, kWrite };

/// A logical affine stream (up to 4-D, dim 0 innermost), as programmed into
/// an SSR lane: bounds are iteration counts (not minus one).
struct AffineStream {
  std::string name;
  StreamDir dir = StreamDir::kRead;
  std::uint32_t base = 0;
  unsigned dims = 1;
  std::array<std::uint32_t, 4> bounds = {1, 1, 1, 1};
  std::array<std::int32_t, 4> strides = {8, 0, 0, 0};

  [[nodiscard]] std::uint64_t total_elements() const noexcept {
    std::uint64_t n = 1;
    for (unsigned d = 0; d < dims; ++d) n *= bounds[d];
    return n;
  }

  /// Enumerate every address the stream touches, in order (test oracle and
  /// fusion-equivalence checking).
  [[nodiscard]] std::vector<std::uint32_t> enumerate() const;
};

/// Result of fusing logical streams onto the available lanes.
struct FusionResult {
  std::vector<AffineStream> lanes;            // <= max_lanes fused streams
  std::vector<std::vector<std::size_t>> members;  // input indices per lane
};

/// Fuse `streams` into at most `max_lanes` physical streams. Streams are
/// only fused when the interleaved element order is expressible as a single
/// affine stream (identical shape and direction). Throws TransformError if
/// the streams cannot be packed into `max_lanes` lanes.
FusionResult fuse_streams(const std::vector<AffineStream>& streams, unsigned max_lanes = 3);

}  // namespace copift::core

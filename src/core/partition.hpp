// Phase partitioning (Step 2 of the COPIFT methodology).
//
// Partitions the DFG into subgraphs ("phases") of uniform domain such that a
// total (acyclic) precedence order exists among them, and heuristically
// minimizes the number of edges cut between phases — each cut edge becomes a
// block-sized spill buffer after loop tiling (Step 4), so fewer cuts mean
// less spill traffic and memory (paper Section II-A).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/dfg.hpp"

namespace copift::core {

struct Phase {
  Domain domain = Domain::kInt;
  std::vector<std::size_t> nodes;  // node indices, in original program order
};

struct Partition {
  std::vector<Phase> phases;               // in precedence order
  std::vector<std::size_t> phase_of;       // node index -> phase index
  std::vector<DfgEdge> cut_edges;          // edges crossing phase boundaries

  [[nodiscard]] std::size_t num_cut_edges() const noexcept { return cut_edges.size(); }
  [[nodiscard]] std::string dump(const Dfg& dfg) const;
};

/// Partition `dfg` into alternating integer/FP phases.
///
/// Algorithm: greedy level assignment in topological (program) order —
/// a node's phase is the smallest phase >= all its producers' phases whose
/// domain matches, i.e. level(n) = max over preds p of
/// (level(p) + (domain(p) != domain(n))), bumped until the phase's domain
/// matches — followed by a local-improvement pass that moves single nodes to
/// later compatible phases when that reduces the cut size.
Partition partition(const Dfg& dfg);

/// Check the invariant that the phase order is a valid precedence relation:
/// every edge goes from a phase to the same or a later phase. Throws
/// TransformError on violation.
void validate(const Partition& partition, const Dfg& dfg);

}  // namespace copift::core

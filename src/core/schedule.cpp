#include "core/schedule.hpp"

#include <map>
#include <sstream>

#include "isa/reg.hpp"

namespace copift::core {

std::uint64_t PipelineSchedule::tcdm_bytes(std::uint64_t block) const noexcept {
  std::uint64_t total = io_bytes_per_element * block;
  for (const auto& b : buffers) total += b.bytes(block);
  return total;
}

std::uint64_t PipelineSchedule::max_block(std::uint64_t l1_budget) const noexcept {
  const std::uint64_t per_element = tcdm_bytes(1);
  return per_element == 0 ? 0 : l1_budget / per_element;
}

std::string PipelineSchedule::dump() const {
  std::ostringstream os;
  os << num_phases << " phases, pipeline depth " << depth() << "\n";
  for (const auto& b : buffers) {
    os << "  buffer " << b.name << ": phase " << b.producer_phase << " -> " << b.consumer_phase
       << ", " << b.bytes_per_element << " B/elem x" << b.replicas << "\n";
  }
  return os.str();
}

PipelineSchedule plan_pipeline(const Partition& partition, const Dfg& dfg,
                               std::uint64_t io_bytes_per_element) {
  PipelineSchedule sched;
  sched.num_phases = partition.phases.size();
  sched.io_bytes_per_element = io_bytes_per_element;

  // Group cut edges by (value, producer phase, consumer phase): all reads of
  // the same produced value share one buffer. For register edges the value
  // is identified by (producer node, register); memory edges by the
  // producing store.
  struct Key {
    std::size_t producer_node;
    std::size_t producer_phase;
    std::size_t consumer_phase;
    bool operator<(const Key& other) const {
      if (producer_node != other.producer_node) return producer_node < other.producer_node;
      if (producer_phase != other.producer_phase) return producer_phase < other.producer_phase;
      return consumer_phase < other.consumer_phase;
    }
  };
  std::map<Key, DfgEdge> groups;
  for (const DfgEdge& e : partition.cut_edges) {
    Key key{e.from, partition.phase_of[e.from], partition.phase_of[e.to]};
    groups.emplace(key, e);
  }

  for (const auto& [key, e] : groups) {
    BufferPlan b;
    b.producer_phase = key.producer_phase;
    b.consumer_phase = key.consumer_phase;
    b.replicas = static_cast<unsigned>(key.consumer_phase - key.producer_phase) + 1;
    const auto& producer = dfg.nodes()[e.from];
    if (e.kind == DepKind::kIntReg) {
      b.name = isa::int_reg_name(e.reg) + "@" + std::to_string(e.from);
      b.bytes_per_element = 4;
    } else if (e.kind == DepKind::kFpReg) {
      b.name = isa::fp_reg_name(e.reg) + "@" + std::to_string(e.from);
      b.bytes_per_element = 8;
    } else {
      b.name = "mem@" + std::to_string(e.from);
      b.bytes_per_element = producer.instr.meta().unit == isa::ExecUnit::kStore ? 4 : 8;
    }
    sched.buffers.push_back(b);
  }
  return sched;
}

}  // namespace copift::core

// Analytical performance model (paper Equations 1-3).
//
// From the integer/FP instruction counts of the baseline and COPIFT loop
// bodies, the paper derives:
//   TI  = min(n_int, n_fp) / max(n_int, n_fp)         (thread imbalance)
//   S'  = (n_int^base + n_fp^base) / max(n_int^copift, n_fp^copift)
//   S'' = 1 + TI                                        (base-only estimate)
//   I'  = (n_int^copift + n_fp^copift) / max(n_int^copift, n_fp^copift)
// These are the "expected" dashed lines in paper Fig. 2 and the last three
// columns of Table I.
#pragma once

#include <cstdint>
#include <span>
#include <string>

#include "isa/instr.hpp"
#include "rvasm/program.hpp"

namespace copift::core {

/// Integer/FP instruction counts of a loop body.
struct InstrMix {
  std::uint64_t n_int = 0;
  std::uint64_t n_fp = 0;

  [[nodiscard]] std::uint64_t total() const noexcept { return n_int + n_fp; }
  [[nodiscard]] std::uint64_t max_thread() const noexcept { return n_int > n_fp ? n_int : n_fp; }
  [[nodiscard]] std::uint64_t min_thread() const noexcept { return n_int < n_fp ? n_int : n_fp; }

  /// Thread imbalance TI in [0, 1].
  [[nodiscard]] double thread_imbalance() const noexcept {
    return max_thread() == 0 ? 0.0
                             : static_cast<double>(min_thread()) / static_cast<double>(max_thread());
  }
};

/// Count the integer/FP mix of an instruction span (FP = offloaded to the
/// FPSS; FREP/SSR-config/barrier instructions count as integer).
InstrMix count_mix(std::span<const isa::Instr> body);

/// Count the mix of the instructions between two labels of a program.
InstrMix count_mix(const rvasm::Program& program, std::string_view begin_label,
                   std::string_view end_label);

/// The paper's analytical estimates for one kernel.
struct SpeedupModel {
  InstrMix base;
  InstrMix copift;

  /// Expected speedup S' (Eq. 1).
  [[nodiscard]] double s_prime() const noexcept {
    return copift.max_thread() == 0
               ? 0.0
               : static_cast<double>(base.total()) / static_cast<double>(copift.max_thread());
  }
  /// Base-only speedup estimate S'' = 1 + TI (Eq. 3).
  [[nodiscard]] double s_double_prime() const noexcept {
    return 1.0 + base.thread_imbalance();
  }
  /// Expected IPC improvement I' (Eq. 2).
  [[nodiscard]] double i_prime() const noexcept {
    return copift.max_thread() == 0
               ? 0.0
               : static_cast<double>(copift.total()) / static_cast<double>(copift.max_thread());
  }
  /// Expected steady-state COPIFT IPC assuming the slower thread issues
  /// every cycle: IPC = I' (per Eq. 2 with the slow thread at IPC 1).
  [[nodiscard]] double expected_ipc() const noexcept { return i_prime(); }
};

}  // namespace copift::core

// Loop tiling, software pipelining and buffer planning
// (Steps 4-5 of the COPIFT methodology).
//
// After partitioning, each cut edge carries one value per element between
// phases; tiling turns it into a block-sized spill buffer, and software
// pipelining (offsetting phase p by p block iterations, paper Fig. 1g)
// requires the buffer to be replicated `distance + 1` times, where distance
// is the number of phases between producer and consumer (paper Section II-A,
// Step 5).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/partition.hpp"

namespace copift::core {

/// One spill buffer introduced by Step 4, with its Step-5 replication.
struct BufferPlan {
  std::string name;
  std::size_t producer_phase = 0;
  std::size_t consumer_phase = 0;
  unsigned bytes_per_element = 8;
  unsigned replicas = 1;  // = consumer_phase - producer_phase + 1

  /// TCDM bytes needed for block size B.
  [[nodiscard]] std::uint64_t bytes(std::uint64_t block) const noexcept {
    return static_cast<std::uint64_t>(replicas) * bytes_per_element * block;
  }
};

/// The steady-state software-pipeline schedule (paper Fig. 1g/1j): in block
/// iteration j', phase p processes data block j' - p.
struct PipelineSchedule {
  std::size_t num_phases = 0;
  std::vector<BufferPlan> buffers;
  // Extra per-block TCDM bytes not tied to a cut edge (e.g. input/output
  // blocks resident in L1).
  std::uint64_t io_bytes_per_element = 0;

  /// Pipeline depth: number of prologue (and epilogue) block iterations.
  [[nodiscard]] std::size_t depth() const noexcept {
    return num_phases == 0 ? 0 : num_phases - 1;
  }

  /// Which data block phase `p` works on during steady-state iteration `j`
  /// (negative => phase idle, prologue).
  [[nodiscard]] std::int64_t block_for(std::size_t phase, std::int64_t j) const noexcept {
    return j - static_cast<std::int64_t>(phase);
  }

  /// Total TCDM bytes for block size B (buffers + I/O blocks).
  [[nodiscard]] std::uint64_t tcdm_bytes(std::uint64_t block) const noexcept;

  /// Largest block size fitting in `l1_budget` bytes (0 if none fits).
  [[nodiscard]] std::uint64_t max_block(std::uint64_t l1_budget) const noexcept;

  [[nodiscard]] std::string dump() const;
};

/// Derive the pipeline schedule and buffer plan from a partition: one buffer
/// per cut edge (register edges spill their register; memory edges reuse the
/// memory slot), replicated by phase distance + 1.
PipelineSchedule plan_pipeline(const Partition& partition, const Dfg& dfg,
                               std::uint64_t io_bytes_per_element = 0);

}  // namespace copift::core

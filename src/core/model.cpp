#include "core/model.hpp"

#include "common/error.hpp"
#include "core/dfg.hpp"

namespace copift::core {

InstrMix count_mix(std::span<const isa::Instr> body) {
  InstrMix mix;
  for (const isa::Instr& instr : body) {
    if (domain_of(instr) == Domain::kFp) {
      ++mix.n_fp;
    } else {
      ++mix.n_int;
    }
  }
  return mix;
}

InstrMix count_mix(const rvasm::Program& program, std::string_view begin_label,
                   std::string_view end_label) {
  const std::size_t begin = program.text_index(program.symbol(begin_label));
  const std::size_t end = program.text_index(program.symbol(end_label));
  if (end < begin) throw Error("end label precedes begin label");
  return count_mix(std::span<const isa::Instr>(program.text.data() + begin, end - begin));
}

}  // namespace copift::core

#include "core/dfg.hpp"

#include <array>
#include <map>
#include <sstream>

#include "isa/reg.hpp"

namespace copift::core {

using isa::ExecUnit;
using isa::RegClass;

Domain domain_of(const isa::Instr& instr) noexcept {
  return instr.meta().offloaded() ? Domain::kFp : Domain::kInt;
}

namespace {

constexpr std::size_t kNoWriter = static_cast<std::size_t>(-1);

struct StoreRecord {
  std::size_t node;
  std::uint8_t base_reg;
  std::size_t base_version;  // node that last wrote the base reg (kNoWriter = invariant)
  std::int32_t offset;
  unsigned size;
};

unsigned access_size(const isa::Instr& instr) {
  switch (instr.mnemonic) {
    case isa::Mnemonic::kLb:
    case isa::Mnemonic::kLbu:
    case isa::Mnemonic::kSb:
      return 1;
    case isa::Mnemonic::kLh:
    case isa::Mnemonic::kLhu:
    case isa::Mnemonic::kSh:
      return 2;
    case isa::Mnemonic::kFld:
    case isa::Mnemonic::kFsd:
      return 8;
    default:
      return 4;
  }
}

}  // namespace

Dfg Dfg::build(std::span<const isa::Instr> body) {
  Dfg g;
  g.nodes_.reserve(body.size());
  // Last writer per register.
  std::array<std::size_t, isa::kNumIntRegs> int_writer;
  std::array<std::size_t, isa::kNumFpRegs> fp_writer;
  int_writer.fill(kNoWriter);
  fp_writer.fill(kNoWriter);
  std::vector<StoreRecord> stores;

  const auto add_reg_edge = [&g](std::size_t from, std::size_t to, DepKind kind,
                                 std::uint8_t reg) {
    if (from == kNoWriter || from == to) return;
    DfgEdge e;
    e.from = from;
    e.to = to;
    e.kind = kind;
    e.reg = reg;
    g.edges_.push_back(e);
  };

  for (std::size_t i = 0; i < body.size(); ++i) {
    const isa::Instr& instr = body[i];
    const auto& meta = instr.meta();
    DfgNode node;
    node.index = i;
    node.instr = instr;
    node.domain = domain_of(instr);
    g.nodes_.push_back(node);

    // Register flow dependencies.
    const auto handle_src = [&](RegClass cls, std::uint8_t reg) {
      if (cls == RegClass::kInt && reg != 0) {
        add_reg_edge(int_writer[reg], i, DepKind::kIntReg, reg);
      } else if (cls == RegClass::kFp) {
        add_reg_edge(fp_writer[reg], i, DepKind::kFpReg, reg);
      }
    };
    handle_src(meta.rs1_class, instr.rs1);
    handle_src(meta.rs2_class, instr.rs2);
    handle_src(meta.rs3_class, instr.rs3);

    // Memory flow dependencies (store -> load, same base register version,
    // overlapping byte range; distinct base registers assumed no-alias).
    if (meta.is_load()) {
      const std::size_t base_version = int_writer[instr.rs1];
      const unsigned size = access_size(instr);
      for (const StoreRecord& s : stores) {
        if (s.base_reg != instr.rs1 || s.base_version != base_version) continue;
        const std::int32_t lo = instr.imm;
        const std::int32_t hi = lo + static_cast<std::int32_t>(size);
        const std::int32_t slo = s.offset;
        const std::int32_t shi = slo + static_cast<std::int32_t>(s.size);
        if (lo < shi && slo < hi) {
          DfgEdge e;
          e.from = s.node;
          e.to = i;
          e.kind = DepKind::kMemory;
          g.edges_.push_back(e);
        }
      }
    }
    if (meta.is_store()) {
      stores.push_back(StoreRecord{i, instr.rs1, int_writer[instr.rs1], instr.imm,
                                   access_size(instr)});
    }

    // Record destination writer.
    if (meta.rd_class == RegClass::kInt && instr.rd != 0) {
      int_writer[instr.rd] = i;
    } else if (meta.rd_class == RegClass::kFp) {
      fp_writer[instr.rd] = i;
    }
  }

  // Classify cross-domain edges (paper Types 1-3).
  const auto base_written_in_body = [&](std::size_t node_index) {
    const isa::Instr& instr = g.nodes_[node_index].instr;
    // Was the base register written by an earlier body instruction?
    for (const DfgEdge& e : g.edges_) {
      if (e.to == node_index && e.kind == DepKind::kIntReg && e.reg == instr.rs1) return true;
    }
    return false;
  };
  for (DfgEdge& e : g.edges_) {
    if (g.nodes_[e.from].domain == g.nodes_[e.to].domain) continue;
    const DfgNode& fp_node = g.nodes_[e.from].domain == Domain::kFp ? g.nodes_[e.from]
                                                                    : g.nodes_[e.to];
    const bool fp_is_mem = fp_node.instr.meta().is_load() || fp_node.instr.meta().is_store();
    if (e.kind == DepKind::kMemory) {
      e.cross = fp_is_mem && base_written_in_body(fp_node.index) ? CrossDepType::kType1
                                                                 : CrossDepType::kType2;
    } else if (fp_is_mem && e.reg == fp_node.instr.rs1 &&
               g.nodes_[e.to].index == fp_node.index) {
      // Integer-computed address feeding an FP load/store.
      e.cross = CrossDepType::kType1;
    } else {
      e.cross = CrossDepType::kType3;
    }
  }
  return g;
}

std::vector<DfgEdge> Dfg::cross_edges() const {
  std::vector<DfgEdge> out;
  for (const DfgEdge& e : edges_) {
    if (nodes_[e.from].domain != nodes_[e.to].domain) out.push_back(e);
  }
  return out;
}

std::vector<std::size_t> Dfg::preds(std::size_t node) const {
  std::vector<std::size_t> out;
  for (const DfgEdge& e : edges_) {
    if (e.to == node) out.push_back(e.from);
  }
  return out;
}

std::vector<std::size_t> Dfg::succs(std::size_t node) const {
  std::vector<std::size_t> out;
  for (const DfgEdge& e : edges_) {
    if (e.from == node) out.push_back(e.to);
  }
  return out;
}

std::size_t Dfg::num_int_nodes() const noexcept {
  std::size_t n = 0;
  for (const auto& node : nodes_) n += node.domain == Domain::kInt ? 1 : 0;
  return n;
}

std::size_t Dfg::num_fp_nodes() const noexcept { return nodes_.size() - num_int_nodes(); }

std::string Dfg::dump() const {
  std::ostringstream os;
  for (const auto& node : nodes_) {
    os << node.index << " [" << (node.domain == Domain::kFp ? "FP " : "INT") << "] "
       << isa::disassemble(node.instr);
    bool first = true;
    for (const DfgEdge& e : edges_) {
      if (e.to != node.index) continue;
      os << (first ? "   <- " : ", ") << e.from;
      if (e.cross != CrossDepType::kNone) {
        os << "(T" << static_cast<int>(e.cross) << ")";
      }
      first = false;
    }
    os << "\n";
  }
  return os.str();
}

}  // namespace copift::core

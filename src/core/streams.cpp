#include "core/streams.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace copift::core {

std::vector<std::uint32_t> AffineStream::enumerate() const {
  std::vector<std::uint32_t> out;
  out.reserve(total_elements());
  std::array<std::uint32_t, 4> idx{};
  for (;;) {
    std::uint32_t addr = base;
    for (unsigned d = 0; d < dims; ++d) {
      addr += static_cast<std::uint32_t>(strides[d]) * idx[d];
    }
    out.push_back(addr);
    unsigned d = 0;
    for (; d < dims; ++d) {
      if (++idx[d] < bounds[d]) break;
      idx[d] = 0;
    }
    if (d == dims) break;
  }
  return out;
}

namespace {

/// Can `a` and `b` fuse? Both must have the same direction, dimensionality,
/// bounds and strides, and the combination must leave a free dimension.
bool fusable(const AffineStream& a, const AffineStream& b) {
  if (a.dir != b.dir || a.dims != b.dims || a.dims >= 4) return false;
  for (unsigned d = 0; d < a.dims; ++d) {
    if (a.bounds[d] != b.bounds[d] || a.strides[d] != b.strides[d]) return false;
  }
  return true;
}

/// Fuse stream `b` into multi-stream `a` (a may already have an outer fused
/// dimension with stride == b.base - previous base).
AffineStream fuse_two(const AffineStream& a, const AffineStream& b) {
  AffineStream out = a;
  out.name = a.name + "+" + b.name;
  const unsigned outer = a.dims;
  out.dims = a.dims + 1;
  out.bounds[outer] = 2;
  out.strides[outer] = static_cast<std::int32_t>(b.base - a.base);
  return out;
}

/// Try to extend an already-fused stream (whose outer dim interleaves
/// members) with one more member at constant outer stride.
bool extend_fused(AffineStream& fused, const AffineStream& next, unsigned inner_dims) {
  const unsigned outer = inner_dims;
  const auto expected = static_cast<std::uint32_t>(
      fused.base + fused.strides[outer] * fused.bounds[outer]);
  if (next.base != expected) return false;
  fused.bounds[outer] += 1;
  fused.name += "+" + next.name;
  return true;
}

}  // namespace

FusionResult fuse_streams(const std::vector<AffineStream>& streams, unsigned max_lanes) {
  FusionResult result;
  std::vector<bool> used(streams.size(), false);
  // Greedy: take each unused stream, gather all compatible streams with the
  // same shape, sort them by base, and fuse runs with a constant base delta.
  for (std::size_t i = 0; i < streams.size(); ++i) {
    if (used[i]) continue;
    std::vector<std::size_t> group{i};
    for (std::size_t j = i + 1; j < streams.size(); ++j) {
      if (!used[j] && fusable(streams[i], streams[j])) group.push_back(j);
    }
    std::sort(group.begin(), group.end(), [&](std::size_t a, std::size_t b) {
      return streams[a].base < streams[b].base;
    });
    // Fuse the longest constant-delta run starting at the first element;
    // remaining members start a new lane on the next outer iteration.
    while (!group.empty()) {
      std::vector<std::size_t> members{group.front()};
      AffineStream fused = streams[group.front()];
      const unsigned inner_dims = fused.dims;
      for (std::size_t k = 1; k < group.size(); ++k) {
        if (members.size() == 1) {
          fused = fuse_two(fused, streams[group[k]]);
          members.push_back(group[k]);
        } else if (extend_fused(fused, streams[group[k]], inner_dims)) {
          members.push_back(group[k]);
        } else {
          break;
        }
      }
      for (std::size_t m : members) used[m] = true;
      group.erase(group.begin(), group.begin() + static_cast<std::ptrdiff_t>(members.size()));
      result.lanes.push_back(fused);
      result.members.push_back(members);
    }
  }
  if (result.lanes.size() > max_lanes) {
    throw TransformError("stream fusion needs " + std::to_string(result.lanes.size()) +
                         " lanes but only " + std::to_string(max_lanes) + " are available");
  }
  return result;
}

}  // namespace copift::core

// Data-flow graph construction over a straight-line instruction sequence
// (a loop body), with classification of integer<->FP dependencies.
//
// This implements Step 1 of the COPIFT methodology (paper Section II-A):
// build the DFG of the RISC-V assembly and identify all dependencies between
// integer and FP instructions, classified as
//   Type 1 — dynamic memory dependencies (FP load/store whose address is
//            computed by integer instructions inside the body),
//   Type 2 — static memory dependencies (FP load/store at a statically
//            determined address that integer code also accesses),
//   Type 3 — register dependencies (FP conversion/move/comparison
//            instructions bridging the register files).
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "isa/instr.hpp"

namespace copift::core {

/// Which thread an instruction belongs to under the COPIFT split.
enum class Domain : std::uint8_t { kInt, kFp };

/// Dependency edge kinds.
enum class DepKind : std::uint8_t {
  kIntReg,   // through an integer register
  kFpReg,    // through an FP register
  kMemory,   // through memory (store -> load on potentially same location)
};

/// Paper classification for integer<->FP (cross-domain) edges.
enum class CrossDepType : std::uint8_t {
  kNone,   // not a cross-domain edge
  kType1,  // dynamic memory dependency
  kType2,  // static memory dependency
  kType3,  // register dependency
};

struct DfgNode {
  std::size_t index = 0;        // position in the instruction sequence
  isa::Instr instr;
  Domain domain = Domain::kInt;
};

struct DfgEdge {
  std::size_t from = 0;  // producer node index
  std::size_t to = 0;    // consumer node index
  DepKind kind = DepKind::kIntReg;
  std::uint8_t reg = 0;  // register for register edges
  CrossDepType cross = CrossDepType::kNone;
};

class Dfg {
 public:
  /// Build the DFG of a straight-line body. Memory dependencies are inferred
  /// conservatively: a load depends on the latest prior store whose base
  /// register + offset may alias (same base register, or unknown).
  static Dfg build(std::span<const isa::Instr> body);

  [[nodiscard]] const std::vector<DfgNode>& nodes() const noexcept { return nodes_; }
  [[nodiscard]] const std::vector<DfgEdge>& edges() const noexcept { return edges_; }

  /// Edges crossing the integer/FP domain boundary.
  [[nodiscard]] std::vector<DfgEdge> cross_edges() const;

  /// Predecessor node indices of `node`.
  [[nodiscard]] std::vector<std::size_t> preds(std::size_t node) const;
  /// Successor node indices of `node`.
  [[nodiscard]] std::vector<std::size_t> succs(std::size_t node) const;

  [[nodiscard]] std::size_t num_int_nodes() const noexcept;
  [[nodiscard]] std::size_t num_fp_nodes() const noexcept;

  /// Human-readable dump (one node per line with dependency annotations).
  [[nodiscard]] std::string dump() const;

 private:
  std::vector<DfgNode> nodes_;
  std::vector<DfgEdge> edges_;
};

/// Domain of a single instruction under the COPIFT split: everything the
/// FPSS executes is FP, the rest is integer.
[[nodiscard]] Domain domain_of(const isa::Instr& instr) noexcept;

}  // namespace copift::core

#include "core/partition.hpp"

#include <algorithm>
#include <map>
#include <sstream>

#include "common/error.hpp"

namespace copift::core {

namespace {

std::vector<DfgEdge> collect_cut_edges(const Dfg& dfg, const std::vector<std::size_t>& phase_of) {
  std::vector<DfgEdge> cut;
  for (const DfgEdge& e : dfg.edges()) {
    if (phase_of[e.from] != phase_of[e.to]) cut.push_back(e);
  }
  return cut;
}

}  // namespace

Partition partition(const Dfg& dfg) {
  const auto& nodes = dfg.nodes();
  const std::size_t n = nodes.size();

  // Pass 1: greedy level assignment. Levels map 1:1 to phases; each level's
  // domain is fixed by the first node assigned to it.
  std::vector<std::size_t> level(n, 0);
  std::map<std::size_t, Domain> level_domain;
  // Adjacency (predecessors) once.
  std::vector<std::vector<std::size_t>> preds(n);
  for (const DfgEdge& e : dfg.edges()) preds[e.to].push_back(e.from);

  for (std::size_t i = 0; i < n; ++i) {  // program order is a topological order
    std::size_t lvl = 0;
    for (std::size_t p : preds[i]) {
      const std::size_t need = level[p] + (nodes[p].domain != nodes[i].domain ? 1 : 0);
      lvl = std::max(lvl, need);
    }
    // Bump until the level's domain matches this node's domain.
    while (true) {
      const auto it = level_domain.find(lvl);
      if (it == level_domain.end()) {
        level_domain[lvl] = nodes[i].domain;
        break;
      }
      if (it->second == nodes[i].domain) break;
      ++lvl;
    }
    level[i] = lvl;
  }

  // Compact level numbering (some levels may be empty after bumping).
  std::map<std::size_t, std::size_t> remap;
  for (std::size_t i = 0; i < n; ++i) remap[level[i]] = 0;
  std::size_t next = 0;
  for (auto& [lvl, idx] : remap) idx = next++;
  std::vector<std::size_t> phase_of(n);
  for (std::size_t i = 0; i < n; ++i) phase_of[i] = remap[level[i]];
  const std::size_t num_phases = next;

  // Pass 2: local improvement — try moving each node to any other phase of
  // the same domain that preserves precedence, keeping the move if it
  // strictly reduces the number of cut edges.
  std::vector<std::vector<std::size_t>> succs(n);
  for (const DfgEdge& e : dfg.edges()) succs[e.from].push_back(e.to);
  std::vector<Domain> phase_domain(num_phases, Domain::kInt);
  for (std::size_t i = 0; i < n; ++i) phase_domain[phase_of[i]] = nodes[i].domain;

  const auto cut_count_for = [&](std::size_t node, std::size_t phase) {
    std::size_t cut = 0;
    for (std::size_t p : preds[node]) cut += phase_of[p] != phase ? 1 : 0;
    for (std::size_t s : succs[node]) cut += phase_of[s] != phase ? 1 : 0;
    return cut;
  };
  bool improved = true;
  unsigned rounds = 0;
  while (improved && rounds++ < 8) {
    improved = false;
    for (std::size_t i = 0; i < n; ++i) {
      std::size_t lo = 0;
      auto hi = static_cast<std::int64_t>(num_phases) - 1;
      for (std::size_t p : preds[i]) {
        lo = std::max(lo, phase_of[p] + (nodes[p].domain != nodes[i].domain ? 1 : 0));
      }
      for (std::size_t s : succs[i]) {
        const std::int64_t limit = static_cast<std::int64_t>(phase_of[s]) -
                                   (nodes[s].domain != nodes[i].domain ? 1 : 0);
        hi = std::min(hi, limit);
      }
      if (hi < static_cast<std::int64_t>(lo)) continue;
      const std::size_t current_cut = cut_count_for(i, phase_of[i]);
      for (std::size_t cand = lo; cand <= static_cast<std::size_t>(hi) && cand < num_phases;
           ++cand) {
        if (phase_domain[cand] != nodes[i].domain || cand == phase_of[i]) continue;
        if (cut_count_for(i, cand) < current_cut) {
          phase_of[i] = cand;
          improved = true;
          break;
        }
      }
    }
  }

  // Assemble result (dropping phases that became empty).
  Partition result;
  std::map<std::size_t, std::size_t> finalmap;
  for (std::size_t i = 0; i < n; ++i) finalmap[phase_of[i]] = 0;
  next = 0;
  for (auto& [old_phase, new_phase] : finalmap) new_phase = next++;
  result.phases.resize(next);
  result.phase_of.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t p = finalmap[phase_of[i]];
    result.phase_of[i] = p;
    result.phases[p].domain = nodes[i].domain;
    result.phases[p].nodes.push_back(i);
  }
  result.cut_edges = collect_cut_edges(dfg, result.phase_of);
  validate(result, dfg);
  return result;
}

void validate(const Partition& partition, const Dfg& dfg) {
  for (const DfgEdge& e : dfg.edges()) {
    if (partition.phase_of[e.from] > partition.phase_of[e.to]) {
      throw TransformError("partition violates precedence: edge " + std::to_string(e.from) +
                           " -> " + std::to_string(e.to));
    }
  }
  for (std::size_t p = 0; p < partition.phases.size(); ++p) {
    for (std::size_t node : partition.phases[p].nodes) {
      if (dfg.nodes()[node].domain != partition.phases[p].domain) {
        throw TransformError("phase " + std::to_string(p) + " mixes domains");
      }
    }
  }
}

std::string Partition::dump(const Dfg& dfg) const {
  std::ostringstream os;
  for (std::size_t p = 0; p < phases.size(); ++p) {
    os << "Phase " << p << " (" << (phases[p].domain == Domain::kFp ? "FP" : "Int") << "):";
    for (std::size_t node : phases[p].nodes) os << ' ' << node;
    os << "\n";
  }
  os << "cut edges: " << cut_edges.size() << "\n";
  (void)dfg;
  return os.str();
}

}  // namespace copift::core

#include "mem/address_space.hpp"

#include <cstring>
#include <sstream>

#include "common/error.hpp"

namespace copift::mem {

AddressSpace::AddressSpace() : tcdm_(kTcdmSize, 0), dram_(kDramSize, 0) {}

const std::uint8_t* AddressSpace::at(std::uint32_t addr, std::uint32_t size) const {
  return const_cast<AddressSpace*>(this)->at(addr, size);
}

std::uint8_t* AddressSpace::at(std::uint32_t addr, std::uint32_t size) {
  if (addr >= kTcdmBase && addr + size <= kTcdmBase + kTcdmSize) {
    return tcdm_.data() + (addr - kTcdmBase);
  }
  if (addr >= kDramBase && addr + size <= kDramBase + kDramSize) {
    return dram_.data() + (addr - kDramBase);
  }
  std::ostringstream os;
  os << "unmapped memory access at 0x" << std::hex << addr << " size " << std::dec << size;
  throw SimError(os.str());
}

std::uint8_t AddressSpace::load8(std::uint32_t addr) const { return *at(addr, 1); }

std::uint16_t AddressSpace::load16(std::uint32_t addr) const {
  std::uint16_t v;
  std::memcpy(&v, at(addr, 2), 2);
  return v;
}

std::uint32_t AddressSpace::load32(std::uint32_t addr) const {
  std::uint32_t v;
  std::memcpy(&v, at(addr, 4), 4);
  return v;
}

std::uint64_t AddressSpace::load64(std::uint32_t addr) const {
  std::uint64_t v;
  std::memcpy(&v, at(addr, 8), 8);
  return v;
}

void AddressSpace::store8(std::uint32_t addr, std::uint8_t value) { *at(addr, 1) = value; }

void AddressSpace::store16(std::uint32_t addr, std::uint16_t value) {
  std::memcpy(at(addr, 2), &value, 2);
}

void AddressSpace::store32(std::uint32_t addr, std::uint32_t value) {
  std::memcpy(at(addr, 4), &value, 4);
}

void AddressSpace::store64(std::uint32_t addr, std::uint64_t value) {
  std::memcpy(at(addr, 8), &value, 8);
}

void AddressSpace::write_block(std::uint32_t addr, const std::vector<std::uint8_t>& bytes) {
  if (bytes.empty()) return;
  std::memcpy(at(addr, static_cast<std::uint32_t>(bytes.size())), bytes.data(), bytes.size());
}

void AddressSpace::copy(std::uint32_t dst, std::uint32_t src, std::uint32_t bytes) {
  if (bytes == 0) return;
  std::memmove(at(dst, bytes), at(src, bytes), bytes);
}

}  // namespace copift::mem

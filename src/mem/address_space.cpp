#include "mem/address_space.hpp"

#include <algorithm>
#include <cstring>
#include <sstream>

#include "common/error.hpp"

namespace copift::mem {

namespace {
// DRAM growth granularity; keeps the resize count logarithmic without
// committing pages nothing touches.
constexpr std::uint32_t kDramChunk = 64 * 1024;
}  // namespace

AddressSpace::AddressSpace() : tcdm_(kTcdmSize, 0) {}

const std::uint8_t* AddressSpace::at(std::uint32_t addr, std::uint32_t size) const {
  return const_cast<AddressSpace*>(this)->at(addr, size);
}

std::uint8_t* AddressSpace::at(std::uint32_t addr, std::uint32_t size) {
  if (addr >= kTcdmBase && addr + size <= kTcdmBase + kTcdmSize) {
    return tcdm_.data() + (addr - kTcdmBase);
  }
  if (addr >= kDramBase && addr + size <= kDramBase + kDramSize) {
    const std::uint32_t off = addr - kDramBase;
    if (off + size > dram_used_) grow_dram(off + size);
    return dram_.data() + off;
  }
  std::ostringstream os;
  os << "unmapped memory access at 0x" << std::hex << addr << " size " << std::dec << size;
  throw SimError(os.str());
}

void AddressSpace::grow_dram(std::uint32_t required) {
  std::uint64_t target = std::max<std::uint64_t>(required, std::uint64_t{dram_used_} * 2);
  target = (target + kDramChunk - 1) / kDramChunk * kDramChunk;
  target = std::min<std::uint64_t>(target, kDramSize);
  dram_used_ = static_cast<std::uint32_t>(target);
  dram_.resize(dram_used_);  // value-initialization zero-fills the new bytes
}

std::uint8_t AddressSpace::load8(std::uint32_t addr) const {
  if (watcher_) watcher_->on_load(addr, 1);
  return *at(addr, 1);
}

std::uint16_t AddressSpace::load16(std::uint32_t addr) const {
  if (watcher_) watcher_->on_load(addr, 2);
  std::uint16_t v;
  std::memcpy(&v, at(addr, 2), 2);
  return v;
}

std::uint32_t AddressSpace::load32(std::uint32_t addr) const {
  if (watcher_) watcher_->on_load(addr, 4);
  std::uint32_t v;
  std::memcpy(&v, at(addr, 4), 4);
  return v;
}

std::uint64_t AddressSpace::load64(std::uint32_t addr) const {
  if (watcher_) watcher_->on_load(addr, 8);
  std::uint64_t v;
  std::memcpy(&v, at(addr, 8), 8);
  return v;
}

void AddressSpace::store8(std::uint32_t addr, std::uint8_t value) {
  if (watcher_) watcher_->on_store(addr, 1);
  *at(addr, 1) = value;
}

void AddressSpace::store16(std::uint32_t addr, std::uint16_t value) {
  if (watcher_) watcher_->on_store(addr, 2);
  std::memcpy(at(addr, 2), &value, 2);
}

void AddressSpace::store32(std::uint32_t addr, std::uint32_t value) {
  if (watcher_) watcher_->on_store(addr, 4);
  std::memcpy(at(addr, 4), &value, 4);
}

void AddressSpace::store64(std::uint32_t addr, std::uint64_t value) {
  if (watcher_) watcher_->on_store(addr, 8);
  std::memcpy(at(addr, 8), &value, 8);
}

void AddressSpace::write_block(std::uint32_t addr, const std::vector<std::uint8_t>& bytes) {
  if (bytes.empty()) return;
  std::memcpy(at(addr, static_cast<std::uint32_t>(bytes.size())), bytes.data(), bytes.size());
}

void AddressSpace::copy(std::uint32_t dst, std::uint32_t src, std::uint32_t bytes) {
  if (bytes == 0) return;
  if (watcher_) {
    watcher_->on_load(src, bytes);
    watcher_->on_store(dst, bytes);
  }
  // Resolve the source after the destination: either at() may grow the DRAM
  // backing store, which would invalidate a previously obtained pointer.
  std::uint8_t* d = at(dst, bytes);
  const std::uint8_t* s = at(src, bytes);
  d = at(dst, bytes);  // re-resolve in case the source lookup grew DRAM
  std::memmove(d, s, bytes);
}

}  // namespace copift::mem

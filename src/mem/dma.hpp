// Cluster DMA engine model.
//
// Functionally the copy completes when the transfer's last beat retires;
// timing-wise the engine moves `bytes_per_cycle` per cycle while busy.
// The engine's contribution to the power model is its busy/idle cycle split
// (the paper notes the Monte Carlo kernels draw less power partly because
// the DMA is inactive).
#pragma once

#include <cstdint>
#include <deque>

#include "mem/address_space.hpp"

namespace copift::mem {

class DmaEngine {
 public:
  explicit DmaEngine(AddressSpace& memory, unsigned bytes_per_cycle = 64)
      : memory_(&memory), bytes_per_cycle_(bytes_per_cycle) {}

  void set_src(std::uint32_t addr) noexcept { src_ = addr; }
  void set_dst(std::uint32_t addr) noexcept { dst_ = addr; }

  /// Enqueue a copy of `bytes` from the configured src to dst.
  /// Returns a transfer id.
  std::uint32_t start(std::uint32_t bytes);

  /// Number of pending (unfinished) transfers, as returned by dmstat.
  [[nodiscard]] std::uint32_t pending() const noexcept {
    return static_cast<std::uint32_t>(queue_.size());
  }

  /// Advance one cycle.
  void tick();

  /// Advance `n` cycles at once (skip-ahead). Chunk boundaries and stats are
  /// identical to `n` tick() calls; idle cycles are free either way.
  void advance(std::uint64_t n) {
    while (n-- > 0 && !queue_.empty()) tick();
  }

  [[nodiscard]] std::uint64_t busy_cycles() const noexcept { return busy_cycles_; }
  [[nodiscard]] std::uint64_t bytes_moved() const noexcept { return bytes_moved_; }
  void reset_stats() noexcept { busy_cycles_ = 0; bytes_moved_ = 0; }

 private:
  struct Transfer {
    std::uint32_t src;
    std::uint32_t dst;
    std::uint32_t bytes;
    std::uint32_t progress = 0;
  };

  AddressSpace* memory_;
  unsigned bytes_per_cycle_;
  std::uint32_t src_ = 0;
  std::uint32_t dst_ = 0;
  std::uint32_t next_id_ = 0;
  std::deque<Transfer> queue_;
  std::uint64_t busy_cycles_ = 0;
  std::uint64_t bytes_moved_ = 0;
};

}  // namespace copift::mem

// Cluster DMA engine model.
//
// Functionally the copy completes when the transfer's last beat retires;
// timing-wise the engine moves `bytes_per_cycle` per cycle while busy.
// The engine's contribution to the power model is its busy/idle cycle split
// (the paper notes the Monte Carlo kernels draw less power partly because
// the DMA is inactive).
//
// With a DramModel attached, transfers touching the DRAM window are issued
// as row-buffer bursts: each `burst_bytes` slice pays the open-row hit or
// miss latency up front (no bytes move), then streams at
// min(bytes_per_cycle, dram bandwidth). All burst state is kept as relative
// countdowns inside the front Transfer, so advance(n) == n tick()s exactly
// and skip-ahead stays chunk-exact. Transfers entirely inside TCDM keep the
// flat path bit-for-bit, DramModel attached or not.
#pragma once

#include <cstdint>
#include <deque>

#include "mem/address_space.hpp"
#include "mem/dram.hpp"

namespace copift::mem {

class DmaEngine {
 public:
  explicit DmaEngine(AddressSpace& memory, unsigned bytes_per_cycle = 64)
      : memory_(&memory), bytes_per_cycle_(bytes_per_cycle) {}

  /// Attach the DRAM timing model; transfers with a src or dst in the DRAM
  /// window go through it. `burst_bytes` must be a multiple of
  /// bytes_per_cycle (SimParams::validate enforces it).
  void attach_dram(DramModel& dram, unsigned burst_bytes) noexcept {
    dram_ = &dram;
    burst_bytes_ = burst_bytes;
  }

  void set_src(std::uint32_t addr) noexcept { src_ = addr; }
  void set_dst(std::uint32_t addr) noexcept { dst_ = addr; }

  /// Enqueue a copy of `bytes` from the configured src to dst.
  /// Returns a transfer id.
  std::uint32_t start(std::uint32_t bytes);

  /// Number of pending (unfinished) transfers, as returned by dmstat.
  [[nodiscard]] std::uint32_t pending() const noexcept {
    return static_cast<std::uint32_t>(queue_.size());
  }

  /// Pending transfers that touch the DRAM window (0 when no DramModel is
  /// attached). Drives the dmwait stall-cause split: waiting on DRAM traffic
  /// is attributed separately from waiting on TCDM-local copies.
  [[nodiscard]] std::uint32_t dram_pending() const noexcept { return dram_pending_; }

  /// Advance one cycle.
  void tick();

  /// Advance `n` cycles at once (skip-ahead). Chunk boundaries and stats are
  /// identical to `n` tick() calls; idle cycles are free either way.
  void advance(std::uint64_t n) {
    while (n-- > 0 && !queue_.empty()) tick();
  }

  /// Lower bound on the busy cycles left until the queue drains, for the
  /// skip-ahead probe. Exact on the flat path (sum of per-chunk cycles);
  /// with DRAM attached the real drain only grows (row latencies, narrower
  /// bandwidth), so sleeping this many cycles never overshoots the wake.
  [[nodiscard]] std::uint64_t drain_cycles_lower_bound() const noexcept;

  /// Same bound, summed only through the *last* DRAM-touching transfer in
  /// the queue: for at least this many busy cycles dram_pending() stays
  /// nonzero, so a dmwait sleep attributed to the DRAM cause is safe for
  /// this window. 0 when nothing pending touches DRAM.
  [[nodiscard]] std::uint64_t dram_drain_cycles_lower_bound() const noexcept;

  [[nodiscard]] std::uint64_t busy_cycles() const noexcept { return busy_cycles_; }
  [[nodiscard]] std::uint64_t bytes_moved() const noexcept { return bytes_moved_; }
  void reset_stats() noexcept { busy_cycles_ = 0; bytes_moved_ = 0; }

 private:
  struct Transfer {
    std::uint32_t src;
    std::uint32_t dst;
    std::uint32_t bytes;
    std::uint32_t progress = 0;
    // DRAM burst state, all relative countdowns (no absolute clock: this is
    // what keeps advance(n) == n ticks under skip-ahead).
    bool touches_dram = false;
    bool burst_open = false;
    unsigned latency_left = 0;   // row hit/miss cycles before bytes flow
    std::uint32_t burst_left = 0;  // bytes remaining in the open burst
  };

  void open_burst(Transfer& t);

  AddressSpace* memory_;
  unsigned bytes_per_cycle_;
  DramModel* dram_ = nullptr;
  unsigned burst_bytes_ = 256;
  std::uint32_t src_ = 0;
  std::uint32_t dst_ = 0;
  std::uint32_t next_id_ = 0;
  std::uint32_t dram_pending_ = 0;
  std::deque<Transfer> queue_;
  std::uint64_t busy_cycles_ = 0;
  std::uint64_t bytes_moved_ = 0;
};

}  // namespace copift::mem

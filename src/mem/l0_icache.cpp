#include "mem/l0_icache.hpp"

#include <algorithm>

namespace copift::mem {

L0ICache::L0ICache(unsigned num_lines, unsigned words_per_line, unsigned branch_miss_penalty)
    : num_lines_(num_lines),
      words_per_line_(words_per_line),
      branch_miss_penalty_(branch_miss_penalty),
      lines_(num_lines, UINT32_MAX) {}

bool L0ICache::present(std::uint32_t line) const noexcept {
  return std::find(lines_.begin(), lines_.end(), line) != lines_.end();
}

void L0ICache::install(std::uint32_t line) {
  lines_[fifo_head_] = line;
  fifo_head_ = (fifo_head_ + 1) % num_lines_;
}

unsigned L0ICache::fetch(std::uint32_t pc) {
  const std::uint32_t line = line_of(pc);
  if (present(line)) {
    ++stats_.hits;
    last_line_ = line;
    return 0;
  }
  install(line);
  const bool sequential = last_line_ != UINT32_MAX && line == last_line_ + 1;
  last_line_ = line;
  if (sequential) {
    // The next-line prefetcher already requested this line from L1.
    ++stats_.sequential_refills;
    return 0;
  }
  ++stats_.branch_misses;
  return branch_miss_penalty_;
}

void L0ICache::flush() {
  std::fill(lines_.begin(), lines_.end(), UINT32_MAX);
  fifo_head_ = 0;
  last_line_ = UINT32_MAX;
}

}  // namespace copift::mem

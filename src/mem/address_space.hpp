// Functional memory: byte-addressed storage for TCDM and DRAM regions.
//
// Timing (bank conflicts, DMA bandwidth) is modeled separately by TcdmArbiter
// and DmaEngine; this class answers "what is at address X" only.
#pragma once

#include <cstdint>
#include <vector>

#include "common/layout.hpp"

namespace copift::mem {

/// Observer for functional memory traffic, used by the debug subsystem's
/// watchpoints. Purely observational: implementations must not touch memory.
/// The null default keeps the access paths a single pointer test, so runs
/// without a debugger attached are bit-identical and effectively free.
class MemWatcher {
 public:
  virtual ~MemWatcher() = default;
  virtual void on_load(std::uint32_t addr, std::uint32_t size) = 0;
  virtual void on_store(std::uint32_t addr, std::uint32_t size) = 0;
};

class AddressSpace {
 public:
  AddressSpace();

  /// Install (or clear, with nullptr) the traffic observer. Bulk program
  /// loading via write_block() is not reported — it happens before cycle 0.
  void set_watcher(MemWatcher* watcher) noexcept { watcher_ = watcher; }

  /// Narrow loads return zero-extended values; the core sign-extends.
  [[nodiscard]] std::uint8_t load8(std::uint32_t addr) const;
  [[nodiscard]] std::uint16_t load16(std::uint32_t addr) const;
  [[nodiscard]] std::uint32_t load32(std::uint32_t addr) const;
  [[nodiscard]] std::uint64_t load64(std::uint32_t addr) const;

  void store8(std::uint32_t addr, std::uint8_t value);
  void store16(std::uint32_t addr, std::uint16_t value);
  void store32(std::uint32_t addr, std::uint32_t value);
  void store64(std::uint32_t addr, std::uint64_t value);

  /// Bulk initialization (program loading).
  void write_block(std::uint32_t addr, const std::vector<std::uint8_t>& bytes);

  /// Raw copy used by the DMA engine.
  void copy(std::uint32_t dst, std::uint32_t src, std::uint32_t bytes);

 private:
  // Maps an address to backing storage; throws SimError when unmapped.
  [[nodiscard]] const std::uint8_t* at(std::uint32_t addr, std::uint32_t size) const;
  [[nodiscard]] std::uint8_t* at(std::uint32_t addr, std::uint32_t size);

  // Extend the lazily-grown DRAM backing store to cover `required` bytes.
  void grow_dram(std::uint32_t required);

  MemWatcher* watcher_ = nullptr;
  std::vector<std::uint8_t> tcdm_;
  // DRAM backing grows on demand to the touched high-water mark instead of
  // committing (and zeroing) all of kDramSize up front: constructing a
  // cluster used to cost a 32 MiB memset, which dominated single-run
  // latency. Untouched bytes read as zero either way.
  std::vector<std::uint8_t> dram_;
  std::uint32_t dram_used_ = 0;  // logical bytes backed by dram_
};

}  // namespace copift::mem

#include "mem/dram.hpp"

#include <algorithm>

namespace copift::mem {

DramModel::DramModel(const DramTiming& timing)
    : timing_(timing),
      open_row_(timing.channels, kNoRow),
      busy_until_(timing.channels, 0) {}

unsigned DramModel::touch_row(std::uint32_t addr) {
  const unsigned c = channel_of(addr);
  const std::uint64_t row = row_of(addr);
  const bool hit = open_row_[c] == row;
  open_row_[c] = row;
  if (hit) {
    ++row_hits_;
    return timing_.t_row_hit;
  }
  ++row_misses_;
  return timing_.t_row_miss;
}

DramModel::Access DramModel::access(std::uint64_t now, std::uint32_t addr,
                                    std::uint32_t bytes) {
  // A full in-flight window pushes the issue out to the earliest completion.
  std::uint64_t slot_free = 0;
  if (inflight_done_.size() >= timing_.max_inflight) {
    slot_free = inflight_done_.top();
    inflight_done_.pop();
  }
  const unsigned c = channel_of(addr);
  Access a;
  a.start = std::max({now, busy_until_[c], slot_free});
  const std::uint64_t row = row_of(addr);
  a.row_hit = open_row_[c] == row;
  open_row_[c] = row;
  if (a.row_hit) ++row_hits_; else ++row_misses_;
  const unsigned row_latency = a.row_hit ? timing_.t_row_hit : timing_.t_row_miss;
  const std::uint64_t beats =
      (static_cast<std::uint64_t>(bytes) + timing_.bytes_per_cycle - 1) /
      timing_.bytes_per_cycle;
  a.done = a.start + row_latency + beats;
  busy_until_[c] = a.done;
  inflight_done_.push(a.done);
  return a;
}

}  // namespace copift::mem

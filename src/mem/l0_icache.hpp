// L0 instruction cache (loop buffer) model.
//
// Snitch's L0 I$ is a small fully-associative buffer of cache lines with a
// sequential next-line prefetcher in front of the shared L1 I$. Loop bodies
// that fit execute without refills; larger bodies thrash (paper Section
// III-B: the base `exp`/`log` loop bodies exceed 64 instructions and thrash,
// the COPIFT integer loops fit and save refill energy).
//
// Timing: sequential misses are hidden by the prefetcher (zero penalty, but
// they still cost refill energy); non-sequential misses (taken branches to an
// evicted line) pay `branch_miss_penalty` cycles.
#pragma once

#include <cstdint>
#include <vector>

namespace copift::mem {

struct L0Stats {
  std::uint64_t hits = 0;
  std::uint64_t sequential_refills = 0;
  std::uint64_t branch_misses = 0;

  [[nodiscard]] std::uint64_t refills() const noexcept {
    return sequential_refills + branch_misses;
  }
};

class L0ICache {
 public:
  /// `num_lines` lines of `words_per_line` 32-bit instructions each.
  /// Defaults give the paper's 64-instruction capacity.
  explicit L0ICache(unsigned num_lines = 8, unsigned words_per_line = 8,
                    unsigned branch_miss_penalty = 2);

  /// Fetch the instruction at `pc`. Returns the stall penalty in cycles
  /// (0 on hit or prefetched sequential refill).
  unsigned fetch(std::uint32_t pc);

  /// Total capacity in instructions.
  [[nodiscard]] unsigned capacity_instrs() const noexcept {
    return num_lines_ * words_per_line_;
  }

  [[nodiscard]] const L0Stats& stats() const noexcept { return stats_; }
  void reset_stats() noexcept { stats_ = L0Stats{}; }
  void flush();

 private:
  [[nodiscard]] std::uint32_t line_of(std::uint32_t pc) const noexcept {
    return pc / (4 * words_per_line_);
  }
  [[nodiscard]] bool present(std::uint32_t line) const noexcept;
  void install(std::uint32_t line);

  unsigned num_lines_;
  unsigned words_per_line_;
  unsigned branch_miss_penalty_;
  std::vector<std::uint32_t> lines_;  // FIFO of resident line ids
  unsigned fifo_head_ = 0;
  std::uint32_t last_line_ = UINT32_MAX;
  L0Stats stats_;
};

}  // namespace copift::mem

// Main-memory (DRAM) timing model behind the cluster DMA engine.
//
// The functional store already lives in AddressSpace (the lazily grown
// region above kDramBase); this model adds *timing*: an open-row buffer per
// channel (row hits are cheap, row misses pay activate+precharge), a
// bandwidth cap in bytes per cycle, per-channel busy tracking, and a bound
// on outstanding requests. Channels interleave at row granularity, the same
// scheme DRAMSim-style models use for cluster-level traffic.
//
// Two APIs on one state machine:
//
//  * touch_row(addr) — the low-level hook the DmaEngine uses once per burst:
//    update the channel's open row and return the access latency in cycles
//    (hit or miss). The engine owns the bandwidth/burst sequencing itself so
//    its per-cycle byte flow stays chunk-exact under skip-ahead.
//
//  * access(now, addr, bytes) — the closed-form request model: returns the
//    issue and completion cycle of a whole burst, honoring per-channel
//    busy_until serialization and the max_inflight outstanding-request
//    bound. This is the "optimized" model the randomized differential test
//    (tests/test_dram.cpp) checks against a naive cycle-by-cycle reference.
#pragma once

#include <cstdint>
#include <queue>
#include <vector>

namespace copift::mem {

/// Timing knobs, mirrored from sim::SimParams::dram_* (validated there).
struct DramTiming {
  unsigned t_row_hit = 4;        // cycles: access when the row is open
  unsigned t_row_miss = 30;      // cycles: precharge + activate + access
  unsigned row_bytes = 2048;     // open-row size; also the channel stride
  unsigned bytes_per_cycle = 32; // per-channel bandwidth
  unsigned channels = 2;
  unsigned max_inflight = 8;     // outstanding requests across all channels
};

class DramModel {
 public:
  explicit DramModel(const DramTiming& timing);

  /// One scheduled burst: the cycle the request started occupying its
  /// channel, the cycle its last byte arrives, and whether the row was open.
  struct Access {
    std::uint64_t start = 0;
    std::uint64_t done = 0;
    bool row_hit = false;
  };

  /// Row-buffer bookkeeping for one burst at `addr`: records the hit/miss,
  /// opens the row, and returns the access latency in cycles. Bandwidth and
  /// request ordering are the caller's business (the DMA engine serializes
  /// its own queue).
  unsigned touch_row(std::uint32_t addr);

  /// Schedule a whole `bytes`-byte burst arriving at cycle `now`: the burst
  /// waits for a free in-flight slot and for its channel, pays the row
  /// hit/miss latency, then streams at bytes_per_cycle. Requests must be
  /// issued in nondecreasing `now` order (the engine and the tests both do).
  Access access(std::uint64_t now, std::uint32_t addr, std::uint32_t bytes);

  [[nodiscard]] const DramTiming& timing() const noexcept { return timing_; }
  [[nodiscard]] std::uint64_t row_hits() const noexcept { return row_hits_; }
  [[nodiscard]] std::uint64_t row_misses() const noexcept { return row_misses_; }
  void reset_stats() noexcept { row_hits_ = 0; row_misses_ = 0; }

 private:
  [[nodiscard]] unsigned channel_of(std::uint32_t addr) const noexcept {
    return static_cast<unsigned>((addr / timing_.row_bytes) % timing_.channels);
  }
  [[nodiscard]] std::uint64_t row_of(std::uint32_t addr) const noexcept {
    return addr / timing_.row_bytes;
  }

  DramTiming timing_;
  static constexpr std::uint64_t kNoRow = ~std::uint64_t{0};
  std::vector<std::uint64_t> open_row_;    // per channel; kNoRow = closed
  std::vector<std::uint64_t> busy_until_;  // per channel; first free cycle
  // Completion times of outstanding requests (min-heap); size is bounded by
  // max_inflight — a full window delays the next issue to the earliest done.
  std::priority_queue<std::uint64_t, std::vector<std::uint64_t>,
                      std::greater<std::uint64_t>>
      inflight_done_;
  std::uint64_t row_hits_ = 0;
  std::uint64_t row_misses_ = 0;
};

}  // namespace copift::mem

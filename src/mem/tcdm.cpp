#include "mem/tcdm.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace copift::mem {

std::uint64_t TcdmArbiter::arbitrate(const std::vector<TcdmRequest>& requests) {
  if (requests.size() > 64) throw SimError("too many TCDM requests in one cycle");
  std::uint64_t granted = 0;
  // Track which banks are taken this cycle. num_banks_ is small (<= 64).
  std::vector<bool> bank_taken(num_banks_, false);
  // Visit requesters in rotating priority order: the request whose port
  // matches the current priority head goes first.
  std::vector<unsigned> order(requests.size());
  for (unsigned i = 0; i < requests.size(); ++i) order[i] = i;
  const auto priority = [&](const TcdmRequest& r) {
    const unsigned id = r.hart * kNumTcdmPorts + static_cast<unsigned>(r.port);
    return (id + num_requesters_ - rr_) % num_requesters_;
  };
  std::stable_sort(order.begin(), order.end(), [&](unsigned a, unsigned b) {
    return priority(requests[a]) < priority(requests[b]);
  });
  for (unsigned i : order) {
    const unsigned bank = bank_of(requests[i].addr);
    if (bank_taken[bank]) {
      ++conflicts_;
      continue;
    }
    bank_taken[bank] = true;
    granted |= (std::uint64_t{1} << i);
    ++grants_;
  }
  rr_ = (rr_ + 1) % num_requesters_;
  return granted;
}

}  // namespace copift::mem

#include "mem/tcdm.hpp"

#include "common/error.hpp"

namespace copift::mem {

std::uint64_t TcdmArbiter::arbitrate(const std::vector<TcdmRequest>& requests) {
  if (requests.size() > 64) throw SimError("too many TCDM requests in one cycle");
  std::uint64_t granted = 0;
  // Lazily size the persistent scratch; after warm-up no cycle allocates
  // (this loop runs every simulated cycle of every run in a sweep).
  if (bank_taken_.size() < num_banks_) bank_taken_.assign(num_banks_, 0);
  if (head_.size() < num_requesters_) head_.assign(num_requesters_, -1);
  if (next_.size() < requests.size()) next_.resize(requests.size());

  // Bucket the requests by requester id, preserving original order within a
  // bucket (build the chains back-to-front).
  const auto id_of = [&](const TcdmRequest& r) {
    return (r.hart * kNumTcdmPorts + static_cast<unsigned>(r.port)) % num_requesters_;
  };
  for (int i = static_cast<int>(requests.size()) - 1; i >= 0; --i) {
    const unsigned id = id_of(requests[static_cast<unsigned>(i)]);
    next_[static_cast<unsigned>(i)] = head_[id];
    head_[id] = i;
  }

  // Visit requesters in rotating priority order: the requester whose id
  // matches the current priority head rr_ goes first. Equivalent to sorting
  // the requests by (id - rr_) mod R with a stable tie-break, without the
  // per-cycle sort.
  for (unsigned k = 0; k < num_requesters_; ++k) {
    unsigned id = rr_ + k;
    if (id >= num_requesters_) id -= num_requesters_;
    for (int i = head_[id]; i >= 0; i = next_[static_cast<unsigned>(i)]) {
      const unsigned bank = bank_of(requests[static_cast<unsigned>(i)].addr);
      if (bank_taken_[bank]) {
        ++conflicts_;
        continue;
      }
      bank_taken_[bank] = 1;
      granted |= (std::uint64_t{1} << static_cast<unsigned>(i));
      ++grants_;
    }
    head_[id] = -1;  // reset for the next cycle as we go
  }
  // Clear only the banks this cycle touched.
  for (const TcdmRequest& r : requests) bank_taken_[bank_of(r.addr)] = 0;

  rr_ = (rr_ + 1) % num_requesters_;
  return granted;
}

}  // namespace copift::mem

#include "mem/tcdm.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace copift::mem {

std::uint64_t TcdmArbiter::arbitrate(const std::vector<TcdmRequest>& requests) {
  if (requests.size() > 64) throw SimError("too many TCDM requests in one cycle");
  std::uint64_t granted = 0;
  // Track which banks are taken this cycle. num_banks_ is small (<= 64).
  std::vector<bool> bank_taken(num_banks_, false);
  // Visit requesters in rotating priority order: the request whose port
  // matches the current priority head goes first.
  std::vector<unsigned> order(requests.size());
  for (unsigned i = 0; i < requests.size(); ++i) order[i] = i;
  std::stable_sort(order.begin(), order.end(), [&](unsigned a, unsigned b) {
    const auto pa = (static_cast<unsigned>(requests[a].port) + kNumTcdmPorts - rr_) % kNumTcdmPorts;
    const auto pb = (static_cast<unsigned>(requests[b].port) + kNumTcdmPorts - rr_) % kNumTcdmPorts;
    return pa < pb;
  });
  for (unsigned i : order) {
    const unsigned bank = bank_of(requests[i].addr);
    if (bank_taken[bank]) {
      ++conflicts_;
      continue;
    }
    bank_taken[bank] = true;
    granted |= (std::uint64_t{1} << i);
    ++grants_;
  }
  rr_ = (rr_ + 1) % kNumTcdmPorts;
  return granted;
}

}  // namespace copift::mem

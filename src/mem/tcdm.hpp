// TCDM bank-conflict arbitration.
//
// The Snitch cluster TCDM is organized as interleaved single-ported banks
// (64-bit words). Each cycle, every requester (integer LSU, the three SSR
// lanes, the ISSR index port) may present one request; the arbiter grants at
// most one request per bank, with a rotating round-robin priority so no
// requester starves. Ungranted requests retry next cycle.
#pragma once

#include <cstdint>
#include <vector>

#include "common/layout.hpp"

namespace copift::mem {

/// Requester identifiers; also index the round-robin priority state.
enum class TcdmPort : std::uint8_t {
  kIntLsu = 0,
  kFpLsu,
  kSsr0,
  kSsr1,
  kSsr2,
  kIssrIndex,
  kDma,
  kCount,
};

inline constexpr unsigned kNumTcdmPorts = static_cast<unsigned>(TcdmPort::kCount);

struct TcdmRequest {
  TcdmPort port;
  std::uint32_t addr;
  /// Which core complex issued the request (multi-hart clusters share one
  /// arbiter; the rotating priority covers every (hart, port) pair so no
  /// hart starves another's same-class port).
  unsigned hart = 0;
};

class TcdmArbiter {
 public:
  explicit TcdmArbiter(unsigned num_banks = 32, unsigned num_harts = 1)
      : num_banks_(num_banks), num_requesters_(kNumTcdmPorts * num_harts) {}

  [[nodiscard]] unsigned num_banks() const noexcept { return num_banks_; }

  /// Bank index of an address (64-bit interleaving).
  [[nodiscard]] unsigned bank_of(std::uint32_t addr) const noexcept {
    return (addr >> 3) % num_banks_;
  }

  /// Arbitrate one cycle. Returns a bitmask over `requests` indices: bit i is
  /// set iff requests[i] was granted. Priority rotates every cycle.
  std::uint64_t arbitrate(const std::vector<TcdmRequest>& requests);

  /// Statistics.
  [[nodiscard]] std::uint64_t conflicts() const noexcept { return conflicts_; }
  [[nodiscard]] std::uint64_t grants() const noexcept { return grants_; }
  void reset_stats() noexcept { conflicts_ = 0; grants_ = 0; }

 private:
  unsigned num_banks_;
  unsigned num_requesters_;  // kNumTcdmPorts x harts, the rr_ modulus
  unsigned rr_ = 0;          // rotating priority offset
  std::uint64_t conflicts_ = 0;
  std::uint64_t grants_ = 0;

  // Per-cycle scratch, kept across calls so the hot arbitration loop never
  // allocates (sized lazily on first use, cleared incrementally per cycle).
  std::vector<std::uint8_t> bank_taken_;  // indexed by bank
  std::vector<int> head_;                 // requester id -> first request index, -1 = none
  std::vector<int> next_;                 // request index -> next with the same id
};

}  // namespace copift::mem

#include "mem/dma.hpp"

#include <algorithm>

namespace copift::mem {

std::uint32_t DmaEngine::start(std::uint32_t bytes) {
  queue_.push_back(Transfer{src_, dst_, bytes});
  return next_id_++;
}

void DmaEngine::tick() {
  if (queue_.empty()) return;
  ++busy_cycles_;
  Transfer& t = queue_.front();
  const std::uint32_t chunk = std::min<std::uint32_t>(bytes_per_cycle_, t.bytes - t.progress);
  memory_->copy(t.dst + t.progress, t.src + t.progress, chunk);
  t.progress += chunk;
  bytes_moved_ += chunk;
  if (t.progress >= t.bytes) queue_.pop_front();
}

}  // namespace copift::mem

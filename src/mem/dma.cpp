#include "mem/dma.hpp"

#include <algorithm>

#include "common/layout.hpp"

namespace copift::mem {

namespace {

bool transfer_touches_dram(std::uint32_t src, std::uint32_t dst, std::uint32_t bytes) {
  const std::uint32_t last = bytes == 0 ? 0 : bytes - 1;
  return in_dram(src) || in_dram(src + last) || in_dram(dst) || in_dram(dst + last);
}

}  // namespace

std::uint32_t DmaEngine::start(std::uint32_t bytes) {
  Transfer t{src_, dst_, bytes};
  if (dram_ != nullptr && transfer_touches_dram(src_, dst_, bytes)) {
    t.touches_dram = true;
    ++dram_pending_;
  }
  queue_.push_back(t);
  return next_id_++;
}

void DmaEngine::open_burst(Transfer& t) {
  // One row touch per DRAM endpoint; concurrent hits overlap, so the burst
  // pays the slower of the two.
  unsigned latency = 0;
  if (in_dram(t.src + t.progress)) {
    latency = std::max(latency, dram_->touch_row(t.src + t.progress));
  }
  if (in_dram(t.dst + t.progress)) {
    latency = std::max(latency, dram_->touch_row(t.dst + t.progress));
  }
  t.latency_left = latency;
  t.burst_left = std::min<std::uint32_t>(burst_bytes_, t.bytes - t.progress);
  t.burst_open = true;
}

void DmaEngine::tick() {
  if (queue_.empty()) return;
  ++busy_cycles_;
  Transfer& t = queue_.front();
  if (t.touches_dram) {
    if (!t.burst_open) open_burst(t);
    if (t.latency_left > 0) {
      --t.latency_left;  // row hit/miss wait: busy, no bytes move
      return;
    }
    const unsigned bw = std::min(bytes_per_cycle_, dram_->timing().bytes_per_cycle);
    const std::uint32_t chunk = std::min<std::uint32_t>(bw, t.burst_left);
    memory_->copy(t.dst + t.progress, t.src + t.progress, chunk);
    t.progress += chunk;
    t.burst_left -= chunk;
    bytes_moved_ += chunk;
    if (t.burst_left == 0) t.burst_open = false;
    if (t.progress >= t.bytes) {
      --dram_pending_;
      queue_.pop_front();
    }
    return;
  }
  const std::uint32_t chunk = std::min<std::uint32_t>(bytes_per_cycle_, t.bytes - t.progress);
  memory_->copy(t.dst + t.progress, t.src + t.progress, chunk);
  t.progress += chunk;
  bytes_moved_ += chunk;
  if (t.progress >= t.bytes) queue_.pop_front();
}

std::uint64_t DmaEngine::drain_cycles_lower_bound() const noexcept {
  std::uint64_t cycles = 0;
  for (const Transfer& t : queue_) {
    const std::uint32_t remaining = t.bytes - t.progress;
    cycles += (static_cast<std::uint64_t>(remaining) + bytes_per_cycle_ - 1) /
              bytes_per_cycle_;
  }
  return cycles;
}

std::uint64_t DmaEngine::dram_drain_cycles_lower_bound() const noexcept {
  // Find the last DRAM-touching transfer; the drain bound through it is the
  // window during which dram_pending() provably stays > 0.
  std::size_t last = queue_.size();
  for (std::size_t i = queue_.size(); i-- > 0;) {
    if (queue_[i].touches_dram) {
      last = i;
      break;
    }
  }
  if (last == queue_.size()) return 0;
  std::uint64_t cycles = 0;
  for (std::size_t i = 0; i <= last; ++i) {
    const std::uint32_t remaining = queue_[i].bytes - queue_[i].progress;
    cycles += (static_cast<std::uint64_t>(remaining) + bytes_per_cycle_ - 1) /
              bytes_per_cycle_;
  }
  return cycles;
}

}  // namespace copift::mem

// Hart-partitioning codegen helper: the one place that knows how a workload
// slices its index space across the cluster's harts.
//
// A HartSlice is built from the run's WorkloadConfig and hands generators the
// standard multi-hart skeleton — the `mhartid` CSR read, contiguous
// chunk-offset computation for input/output pointers, per-hart rows of
// scratch arenas or codegen-time lookup tables, hart-0-only guards (for
// shared resources like the DMA engine) and the hardware-barrier epilogue.
// Every emitter is a no-op when the config runs single-core, so `cores == 1`
// programs stay byte-identical to the historical single-core generators (the
// pinned paper cycle counts depend on this).
//
// Typical use inside a generator (see src/workloads/axpy.cpp and the six
// paper kernels in src/kernels/):
//
//   const workload::HartSlice slice(cfg);
//   ...
//   slice.read_hartid(b, "t5", "partition: this hart's chunk of x and y");
//   slice.offset_by_elements(b, "t5", 8, {"a3", "a4"}, "t1", "t2");
//   b.l(cat("li t3, ", slice.chunk() / kUnroll));   // per-hart trip count
//   ...
//   slice.epilogue(b);                               // barrier (+ ecall)
//
// Validation goes through HartSlice::validate so every workload reports
// unsplittable configurations with the same value-carrying messages.
#pragma once

#include <cstdint>
#include <initializer_list>
#include <string_view>

#include "kernels/codegen.hpp"
#include "workload/workload.hpp"

namespace copift::workload {

class HartSlice {
 public:
  explicit HartSlice(const WorkloadConfig& config) noexcept
      : cores_(config.cores == 0 ? 1 : config.cores), chunk_(config.n / cores_) {}

  /// Shared validation for contiguous slicing: throws ConfigError unless
  /// `cores` divides `n` and the per-hart chunk is a multiple of `granule`
  /// (the workload's unroll factor or stream group size; pass 1 to skip the
  /// granule check). `granule_what` names the granule in the error message,
  /// e.g. "the unroll factor".
  static void validate(std::string_view workload, Variant variant,
                       const WorkloadConfig& config, std::uint32_t granule,
                       std::string_view granule_what);

  [[nodiscard]] bool multi() const noexcept { return cores_ > 1; }
  [[nodiscard]] std::uint32_t cores() const noexcept { return cores_; }
  /// Elements (or samples) each hart processes: n / cores.
  [[nodiscard]] std::uint32_t chunk() const noexcept { return chunk_; }

  /// `csrr <hart_reg>, mhartid`, preceded by `comment` when non-empty.
  void read_hartid(kernels::AsmBuilder& b, std::string_view hart_reg,
                   std::string_view comment = {}) const;

  /// Advance each pointer to this hart's contiguous slice:
  /// `ptr += hartid * chunk() * elem_bytes`. All pointers share one stride,
  /// so group them per element size (log's float inputs vs double outputs
  /// take two calls).
  void offset_by_elements(kernels::AsmBuilder& b, std::string_view hart_reg,
                          std::uint32_t elem_bytes,
                          std::initializer_list<std::string_view> ptrs,
                          std::string_view tmp0, std::string_view tmp1) const;

  /// Advance each pointer by this hart's row of a per-hart resource:
  /// `ptr += hartid * row_bytes`. Use for scratch arenas replicated per hart
  /// (emit `.space row_bytes * cores` and offset every base pointer).
  void offset_by_rows(kernels::AsmBuilder& b, std::string_view hart_reg,
                      std::uint32_t row_bytes,
                      std::initializer_list<std::string_view> ptrs,
                      std::string_view tmp0, std::string_view tmp1) const;

  /// `dst = &label[hartid * row_bytes]` — this hart's row of a codegen-time
  /// table (e.g. per-hart PRNG start states). Clobbers `tmp`.
  void table_row(kernels::AsmBuilder& b, std::string_view hart_reg,
                 std::string_view dst, std::string_view label,
                 std::uint32_t row_bytes, std::string_view tmp) const;

  /// Guard a hart-0-only section (shared-resource setup such as programming
  /// the cluster DMA): begin emits `bnez <hart_reg>, <skip_label>`, end emits
  /// the label. Both are no-ops single-core, so pair them unconditionally.
  void begin_hart0_only(kernels::AsmBuilder& b, std::string_view hart_reg,
                        std::string_view skip_label) const;
  void end_hart0_only(kernels::AsmBuilder& b, std::string_view skip_label) const;

  /// `csrr zero, barrier` — all harts rendezvous at the hardware barrier.
  void barrier(kernels::AsmBuilder& b) const;

  /// Standard ending: barrier so the harts leave together, then `ecall`.
  void epilogue(kernels::AsmBuilder& b) const;

 private:
  std::uint32_t cores_;
  std::uint32_t chunk_;
};

}  // namespace copift::workload

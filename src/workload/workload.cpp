#include "workload/workload.hpp"

#include <algorithm>
#include <sstream>

#include "common/bits.hpp"
#include "sim/cluster.hpp"

namespace copift::workload {

const char* variant_name(Variant v) noexcept {
  return v == Variant::kBaseline ? "baseline" : "copift";
}

Variant variant_from(std::string_view name) {
  if (name == "base" || name == "baseline") return Variant::kBaseline;
  if (name == "copift") return Variant::kCopift;
  throw Error("unknown variant '" + std::string(name) + "' (expected base|baseline|copift)");
}

std::string GeneratedWorkload::name() const {
  return workload ? workload->name() : std::string();
}

bool Workload::supports(Variant v) const {
  const auto vs = variants();
  return std::find(vs.begin(), vs.end(), v) != vs.end();
}

Variant Workload::default_variant() const {
  const auto vs = variants();
  if (vs.empty()) throw Error(name() + ": workload declares no variants");
  return vs.front();
}

std::string Workload::variants_list() const {
  std::string out;
  for (const Variant v : variants()) {
    if (!out.empty()) out += ", ";
    out += variant_name(v);
  }
  return out;
}

void Workload::validate(Variant variant, const WorkloadConfig& config) const {
  if (!supports(variant)) {
    throw ConfigError(name(), variant,
                      "variant not supported (supported: " + variants_list() + ")");
  }
  if (config.n == 0) throw ConfigError(name(), variant, "n must be positive");
  if (config.cores == 0) throw ConfigError(name(), variant, "cores must be positive");
  if (config.cores > 1 && !multi_hart_capable(variant)) {
    throw ConfigError(name(), variant,
                      "cores=" + std::to_string(config.cores) +
                          " requested but this workload has no multi-hart variant");
  }
  if (config.cores > sim::kMaxHarts) {
    throw ConfigError(name(), variant,
                      "cores=" + std::to_string(config.cores) + " exceeds the cluster maximum of " +
                          std::to_string(sim::kMaxHarts) + " harts");
  }
  if (config.tile != 0 && !tiled_capable(variant)) {
    throw ConfigError(name(), variant,
                      "tile=" + std::to_string(config.tile) +
                          " requested but this workload has no tiled (DRAM/DMA) variant");
  }
}

void Workload::populate_inputs(sim::Cluster&, const WorkloadConfig&) const {}

GeneratedWorkload Workload::instantiate(Variant variant, const WorkloadConfig& config) const {
  validate(variant, config);
  GeneratedWorkload g;
  g.source = generate(variant, config);
  g.workload = shared_from_this();
  g.variant = variant;
  g.config = config;
  return g;
}

WorkloadRegistry& WorkloadRegistry::instance() {
  static WorkloadRegistry registry;
  return registry;
}

void WorkloadRegistry::add(std::shared_ptr<const Workload> workload) {
  if (workload == nullptr) throw Error("WorkloadRegistry: null workload");
  const std::string name = workload->name();
  if (name.empty()) throw Error("WorkloadRegistry: workload name must not be empty");
  std::lock_guard lock(mutex_);
  const auto [it, inserted] = entries_.emplace(name, std::move(workload));
  if (!inserted) {
    throw Error("WorkloadRegistry: duplicate registration of workload '" + name + "'");
  }
}

std::shared_ptr<const Workload> WorkloadRegistry::find(std::string_view name) const {
  std::lock_guard lock(mutex_);
  const auto it = entries_.find(name);
  return it == entries_.end() ? nullptr : it->second;
}

std::shared_ptr<const Workload> WorkloadRegistry::at(std::string_view name) const {
  auto workload = find(name);
  if (workload == nullptr) {
    throw Error("unknown workload '" + std::string(name) + "'; registered workloads: " +
                names_list());
  }
  return workload;
}

std::vector<std::string> WorkloadRegistry::names() const {
  std::lock_guard lock(mutex_);
  std::vector<std::string> out;
  out.reserve(entries_.size());
  for (const auto& [name, workload] : entries_) out.push_back(name);
  return out;  // std::map iterates in sorted order
}

std::string WorkloadRegistry::names_list() const {
  std::string out;
  for (const auto& name : names()) {
    if (!out.empty()) out += ", ";
    out += name;
  }
  return out;
}

std::size_t WorkloadRegistry::size() const {
  std::lock_guard lock(mutex_);
  return entries_.size();
}

GeneratedWorkload generate(std::string_view name, Variant variant,
                           const WorkloadConfig& config) {
  return WorkloadRegistry::instance().at(name)->instantiate(variant, config);
}

void verify_doubles(sim::Cluster& cluster, std::string_view workload,
                    std::string_view symbol, std::uint32_t n,
                    const std::function<double(std::uint32_t)>& expected) {
  const std::uint32_t base = cluster.program().symbol(symbol);
  std::uint64_t mismatches = 0;
  std::ostringstream detail;
  for (std::uint32_t i = 0; i < n; ++i) {
    const double want = expected(i);
    const std::uint64_t got = cluster.memory().load64(base + i * 8);
    if (got != copift::bit_cast<std::uint64_t>(want)) {
      if (mismatches == 0) {
        detail << " first at i=" << i << ": got " << copift::bit_cast<double>(got)
               << ", expected " << want;
      }
      ++mismatches;
    }
  }
  if (mismatches != 0) {
    throw Error(std::string(workload) + " verification failed: " +
                std::to_string(mismatches) + " mismatches" + detail.str());
  }
}

}  // namespace copift::workload

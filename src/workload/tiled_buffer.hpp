// DMA double-buffering codegen helper: the one place that knows how a
// workload streams DRAM-resident arrays through TCDM tile buffers.
//
// A TiledBuffer is built from the run's WorkloadConfig plus a description of
// the arrays the kernel touches (name, direction, element size). When
// `config.tile > 0` it hands generators the standard tile-loop skeleton:
//
//   * double buffers in TCDM (`<name>_buf`, 2 x tile elements each) and the
//     full-size backing arrays in the `.dram` section (emit_data);
//   * a prologue that DMAs tile 0 in and synchronizes every hart;
//   * a per-tile hart-0 stage that enqueues the DMA-out of tile k-1 and the
//     DMA-in of tile k+1 *before* the compute code runs, so the serial-FIFO
//     DMA engine drains them while every hart computes tile k (the classic
//     double-buffer overlap); the out transfer is enqueued first, so the
//     FIFO order protects the shared back buffer;
//   * a tile epilogue — barrier, hart-0 `dmwait`, barrier, buffer flip,
//     countdown branch — and a final stage that stores the last tile.
//
// Register convention inside the tile loop (all unused by the kernels):
//   gp (x3) — tile countdown, T down to 1;
//   ra (x1) — byte offset of the *current* compute buffer (0 or tile bytes);
//   tp (x4) — DRAM byte offset of the current tile (k * tile_bytes).
// Every emitter is a no-op when `config.tile == 0`, so untiled programs stay
// byte-identical to the historical generators (the pinned paper cycle counts
// depend on this).
//
// Typical use inside a generator (see src/workloads/axpy.cpp):
//
//   workload::TiledBuffer tiled(cfg, {{"xarr", TiledBuffer::kIn, 8},
//                                     {"yarr", TiledBuffer::kInOut, 8}});
//   tiled.emit_data(b);                 // buffers + .dram arrays
//   ...
//   tiled.prologue(b, slice);           // gp/ra/tp init, DMA tile 0, barrier
//   b.label("tile_loop");
//   tiled.hart0_stage(b, slice);        // enqueue out(k-1) + in(k+1)
//   tiled.compute_base(b, "a3", 0, ...);// a3 = x tile buffer (+ hart slice)
//   ...compute the tile...
//   tiled.tile_epilogue(b, slice, "tile_loop");
//   tiled.final_store(b, slice);        // DMA out the last tile
//
// Validation goes through TiledBuffer::validate so every workload reports
// untileable configurations with the same value-carrying messages.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "kernels/codegen.hpp"
#include "workload/hart_slice.hpp"
#include "workload/workload.hpp"

namespace copift::workload {

class TiledBuffer {
 public:
  enum Direction { kIn, kOut, kInOut };

  struct Array {
    std::string name;        // DRAM label; the TCDM buffer is "<name>_buf"
    Direction dir = kIn;
    std::uint32_t elem_bytes = 8;
  };

  TiledBuffer(const WorkloadConfig& config, std::vector<Array> arrays);

  /// Shared validation: throws ConfigError unless `tile` divides `n` into at
  /// least 2 tiles, `cores` divides `tile`, the per-hart per-tile chunk is a
  /// multiple of `granule` and at least `min_chunks` granules, and the
  /// double buffers leave `reserved_tcdm_bytes` (tables, arenas, stacks)
  /// free in TCDM. Arrays are described by their summed element bytes.
  static void validate(std::string_view workload, Variant variant,
                       const WorkloadConfig& config, std::uint32_t granule,
                       std::string_view granule_what, std::uint32_t min_granules,
                       std::uint32_t bytes_per_element,
                       std::uint32_t reserved_tcdm_bytes);

  [[nodiscard]] bool enabled() const noexcept { return tile_ != 0; }
  /// Elements per tile (whole cluster) and tile count n / tile.
  [[nodiscard]] std::uint32_t tile() const noexcept { return tile_; }
  [[nodiscard]] std::uint32_t tiles() const noexcept { return tiles_; }
  /// Elements of one tile each hart computes: tile / cores.
  [[nodiscard]] std::uint32_t chunk() const noexcept { return chunk_; }

  /// Emit the TCDM double buffers (`.data`) and the DRAM backing arrays
  /// (`.section .dram`), leaving the builder in `.text`. No-op untiled —
  /// the caller emits its historical TCDM-resident arrays instead.
  void emit_data(kernels::AsmBuilder& b) const;

  /// Initialize gp/ra/tp, DMA tile 0 into buffer 0 (hart 0), `dmwait`, and
  /// rendezvous all harts.
  void prologue(kernels::AsmBuilder& b, const HartSlice& slice);

  /// Hart-0 overlap stage at the top of the tile loop: enqueue the DMA-out
  /// of the previous tile (skipped on the first tile) and the DMA-in of the
  /// next tile (skipped on the last) against the back buffer. The transfers
  /// drain while the compute code that follows runs.
  void hart0_stage(kernels::AsmBuilder& b, const HartSlice& slice);

  /// `dst = <arrays[index]>_buf + ra (+ hartid * chunk * elem_bytes)` — this
  /// hart's slice of the array's current compute buffer. Clobbers `tmp0`
  /// and, multi-core, `tmp1`; `hart_reg` must hold mhartid (ignored
  /// single-core).
  void compute_base(kernels::AsmBuilder& b, std::string_view dst, std::size_t index,
                    std::string_view hart_reg, std::string_view tmp0,
                    std::string_view tmp1) const;

  /// Close one tile: barrier, hart-0 `dmwait` (the back buffer's transfers
  /// must have landed before anyone computes from it), barrier, buffer flip
  /// (ra ^= tile bytes), tp advance, gp countdown and branch to `loop_label`.
  /// The caller must have drained its FP/SSR stores to TCDM first.
  void tile_epilogue(kernels::AsmBuilder& b, const HartSlice& slice,
                     std::string_view loop_label);

  /// After the loop: DMA the last computed tile out (hart 0), `dmwait`.
  void final_store(kernels::AsmBuilder& b, const HartSlice& slice);

 private:
  [[nodiscard]] std::uint32_t tile_bytes(const Array& a) const noexcept {
    return tile_ * a.elem_bytes;
  }
  /// Emit one dmsrc/dmdst/dmcpy triple. `dram_off`/`buf_off` are byte
  /// offsets added on top of the array base and the register-held cursors.
  void emit_transfer(kernels::AsmBuilder& b, const Array& a, bool to_tcdm,
                     std::int64_t dram_off, bool back_buffer) const;
  /// Fresh label suffix (emitters are called once per generator, but hart-0
  /// guards and branches need unique label names per call site).
  [[nodiscard]] std::string site_label(const char* stem);

  std::vector<Array> arrays_;
  std::uint32_t n_;
  std::uint32_t cores_;
  std::uint32_t tile_;
  std::uint32_t tiles_;
  std::uint32_t chunk_;
  unsigned next_site_ = 0;
};

}  // namespace copift::workload

#include "workload/hart_slice.hpp"

#include <string>

namespace copift::workload {

using kernels::AsmBuilder;
using kernels::cat;

void HartSlice::validate(std::string_view workload, Variant variant,
                         const WorkloadConfig& config, std::uint32_t granule,
                         std::string_view granule_what) {
  if (config.cores <= 1) return;
  if (config.n % config.cores != 0) {
    throw ConfigError(workload, variant,
                      "cores=" + std::to_string(config.cores) + " does not divide n=" +
                          std::to_string(config.n));
  }
  const std::uint32_t chunk = config.n / config.cores;
  if (granule > 1 && chunk % granule != 0) {
    throw ConfigError(workload, variant,
                      "per-hart chunk " + std::to_string(chunk) + " (n=" +
                          std::to_string(config.n) + " / cores=" +
                          std::to_string(config.cores) + ") must be a multiple of " +
                          std::string(granule_what) + " " + std::to_string(granule));
  }
}

void HartSlice::read_hartid(AsmBuilder& b, std::string_view hart_reg,
                            std::string_view comment) const {
  if (!multi()) return;
  if (!comment.empty()) b.c(std::string(comment));
  b.l(cat("csrr ", hart_reg, ", mhartid"));
}

void HartSlice::offset_by_rows(AsmBuilder& b, std::string_view hart_reg,
                               std::uint32_t row_bytes,
                               std::initializer_list<std::string_view> ptrs,
                               std::string_view tmp0, std::string_view tmp1) const {
  if (!multi()) return;
  b.l(cat("li ", tmp0, ", ", row_bytes));
  b.l(cat("mul ", tmp1, ", ", hart_reg, ", ", tmp0));
  for (const std::string_view ptr : ptrs) b.l(cat("add ", ptr, ", ", ptr, ", ", tmp1));
}

void HartSlice::offset_by_elements(AsmBuilder& b, std::string_view hart_reg,
                                   std::uint32_t elem_bytes,
                                   std::initializer_list<std::string_view> ptrs,
                                   std::string_view tmp0, std::string_view tmp1) const {
  offset_by_rows(b, hart_reg, chunk_ * elem_bytes, ptrs, tmp0, tmp1);
}

void HartSlice::table_row(AsmBuilder& b, std::string_view hart_reg, std::string_view dst,
                          std::string_view label, std::uint32_t row_bytes,
                          std::string_view tmp) const {
  if (!multi()) return;
  b.l(cat("la ", dst, ", ", label));
  b.l(cat("li ", tmp, ", ", row_bytes));
  b.l(cat("mul ", tmp, ", ", hart_reg, ", ", tmp));
  b.l(cat("add ", dst, ", ", dst, ", ", tmp));
}

void HartSlice::begin_hart0_only(AsmBuilder& b, std::string_view hart_reg,
                                 std::string_view skip_label) const {
  if (!multi()) return;
  b.l(cat("bnez ", hart_reg, ", ", skip_label));
}

void HartSlice::end_hart0_only(AsmBuilder& b, std::string_view skip_label) const {
  if (!multi()) return;
  b.label(std::string(skip_label));
}

void HartSlice::barrier(AsmBuilder& b) const {
  if (!multi()) return;
  b.l("csrr zero, barrier");
}

void HartSlice::epilogue(AsmBuilder& b) const {
  barrier(b);
  b.l("ecall");
}

}  // namespace copift::workload

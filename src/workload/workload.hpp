// Open workload API: self-describing, name-registered workloads.
//
// A Workload owns everything the harness needs to run one scenario on the
// simulated cluster: assembly generation per variant, configuration
// validation, input population, golden-reference output verification and
// work-item counting for steady-state metrics. Workloads register themselves
// under a unique name in the process-wide WorkloadRegistry; every layer above
// (runner, batch engine, CLI tools, benchmarks) resolves workloads by name,
// so adding a scenario means adding ONE translation unit — no harness edits.
//
//   class Axpy final : public workload::Workload { ... };
//   const workload::Registrar kReg(std::make_shared<Axpy>());
//
// See src/workloads/axpy.cpp for a complete worked example and the README
// "Adding a workload" guide.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "common/error.hpp"

namespace copift::sim {
class Cluster;
}  // namespace copift::sim

namespace copift::workload {

/// Code-generation strategy. kBaseline is the Snitch-optimized RV32G code;
/// kCopift applies the paper's pseudo-dual-issue transformation (or, for
/// workloads without a mixed int/FP body, an SSR/FREP-streamed form).
enum class Variant { kBaseline, kCopift };

[[nodiscard]] const char* variant_name(Variant v) noexcept;
/// Parse "base"/"baseline"/"copift"; throws copift::Error on anything else.
[[nodiscard]] Variant variant_from(std::string_view name);

/// Per-run configuration shared by all workloads. Interpretation of each
/// field is up to the workload (documented via Workload::validate errors).
struct WorkloadConfig {
  /// Problem size: elements (exp/log/axpy/softmax) or samples (Monte Carlo).
  std::uint32_t n = 1024;
  /// COPIFT block size B (ignored by baseline variants).
  std::uint32_t block = 32;
  /// PRNG seed for random inputs / PRN streams.
  std::uint32_t seed = 42;
  /// Harts the generated program partitions its work across. The harness
  /// builds the cluster topology with this many core complexes; workloads
  /// that override Workload::multi_hart_capable emit mhartid-partitioned
  /// code for cores > 1. 1 (the default) is the single-core paper setup.
  std::uint32_t cores = 1;
  /// Elements per DMA tile for workloads that support DRAM-resident data
  /// (Workload::tiled_capable). 0 (the default) keeps the historical
  /// TCDM-resident codegen byte-identical; a positive value places the
  /// arrays in DRAM and generates a double-buffered tile loop that DMAs
  /// tile k+1 in while computing tile k (workload/tiled_buffer.hpp), so n
  /// may exceed the TCDM capacity by orders of magnitude.
  std::uint32_t tile = 0;
};

/// Raised by Workload::validate on unusable configurations. The message
/// always leads with "<workload>/<variant>:" and names the offending values,
/// e.g. "exp/copift: block=48 does not divide n=1024".
class ConfigError : public Error {
 public:
  ConfigError(std::string_view workload, Variant variant, const std::string& what)
      : Error(std::string(workload) + "/" + variant_name(variant) + ": " + what) {}
};

class Workload;

/// One generated program instance: the assembly source plus the workload
/// handle and configuration needed to populate inputs and verify outputs.
struct GeneratedWorkload {
  std::string source;
  std::shared_ptr<const Workload> workload;
  Variant variant = Variant::kCopift;
  WorkloadConfig config{};

  [[nodiscard]] std::string name() const;
};

/// A self-describing workload. Implementations are immutable and shared;
/// every virtual must be const and thread-safe (the batch engine calls them
/// concurrently from worker threads).
class Workload : public std::enable_shared_from_this<Workload> {
 public:
  virtual ~Workload() = default;

  /// Unique registry key (also the CSV/JSON "kernel" column and the CLI
  /// `--kernel` spelling).
  [[nodiscard]] virtual std::string name() const = 0;
  /// One-line human description for `copift_sim --list`.
  [[nodiscard]] virtual std::string description() const { return {}; }

  /// The variants this workload can generate, in preference order (first is
  /// the default the CLI picks when the user does not ask for one).
  [[nodiscard]] virtual std::vector<Variant> variants() const {
    return {Variant::kCopift, Variant::kBaseline};
  }
  [[nodiscard]] bool supports(Variant v) const;
  [[nodiscard]] Variant default_variant() const;
  /// The supported variants joined as "copift, baseline" (for messages/UIs).
  [[nodiscard]] std::string variants_list() const;

  /// Default configuration (shown by `copift_sim --list`, used by the CLI
  /// when no -n/--block flags are given).
  [[nodiscard]] virtual WorkloadConfig default_config() const { return {}; }

  /// Whether this workload's generator can partition work across multiple
  /// harts (emit `mhartid`-based slicing + `barrier` synchronization) for
  /// the given variant. The base validate() rejects cores > 1 when false.
  [[nodiscard]] virtual bool multi_hart_capable(Variant) const { return false; }

  /// Whether this workload's generator can emit the DMA double-buffered
  /// tile loop over DRAM-resident arrays (WorkloadConfig::tile > 0). The
  /// base validate() rejects tile > 0 when false.
  [[nodiscard]] virtual bool tiled_capable(Variant) const { return false; }

  /// Throw ConfigError when the configuration cannot be generated. The base
  /// implementation rejects unsupported variants; overrides should call it
  /// first, then add workload-specific checks with value-carrying messages.
  virtual void validate(Variant variant, const WorkloadConfig& config) const;

  /// Generate the complete assembly source for one run:
  ///   _start -> setup -> [region marker 1] main loop [region marker 2]
  ///          -> drain FPSS -> ecall
  /// plus `body_begin`/`body_end` labels around the steady-state loop body.
  /// May assume validate() passed.
  [[nodiscard]] virtual std::string generate(Variant variant,
                                             const WorkloadConfig& config) const = 0;

  /// Poke input data (arrays, seeds) into the loaded program's data-section
  /// symbols before the run. Default: no inputs.
  virtual void populate_inputs(sim::Cluster& cluster, const WorkloadConfig& config) const;

  /// Check outputs against the golden reference; throw copift::Error on any
  /// mismatch.
  virtual void verify_outputs(sim::Cluster& cluster, Variant variant,
                              const WorkloadConfig& config) const = 0;

  /// Work items performed at `config` (elements, samples, ...). Steady-state
  /// metrics divide marginal cycles/energy by the marginal item count.
  [[nodiscard]] virtual std::uint64_t items(const WorkloadConfig& config) const {
    return config.n;
  }

  /// validate() + generate(), bundling the handle for the runner.
  [[nodiscard]] GeneratedWorkload instantiate(Variant variant,
                                              const WorkloadConfig& config) const;
};

/// Name-keyed workload registry. The process-wide instance() is what the
/// harness uses; independent instances can be created for tests.
class WorkloadRegistry {
 public:
  WorkloadRegistry() = default;
  WorkloadRegistry(const WorkloadRegistry&) = delete;
  WorkloadRegistry& operator=(const WorkloadRegistry&) = delete;

  /// The process-wide registry (initialized on first use; safe to call from
  /// static initializers in any translation unit).
  static WorkloadRegistry& instance();

  /// Register a workload under its name(). Throws copift::Error on an empty
  /// name or a duplicate registration.
  void add(std::shared_ptr<const Workload> workload);

  /// nullptr when unknown.
  [[nodiscard]] std::shared_ptr<const Workload> find(std::string_view name) const;
  /// Throws copift::Error listing the registered names when unknown.
  [[nodiscard]] std::shared_ptr<const Workload> at(std::string_view name) const;

  /// Registered names, sorted.
  [[nodiscard]] std::vector<std::string> names() const;
  /// The registered names joined as "a, b, c" (for error/usage messages).
  [[nodiscard]] std::string names_list() const;
  [[nodiscard]] std::size_t size() const;

 private:
  mutable std::mutex mutex_;
  std::map<std::string, std::shared_ptr<const Workload>, std::less<>> entries_;
};

/// Static-initialization helper: `const Registrar r(std::make_shared<W>());`
/// at namespace scope registers W with the process-wide registry.
struct Registrar {
  explicit Registrar(std::shared_ptr<const Workload> workload) {
    WorkloadRegistry::instance().add(std::move(workload));
  }
};

/// Registry-level conveniences used by the runner/engine/CLI.
[[nodiscard]] GeneratedWorkload generate(std::string_view name, Variant variant,
                                         const WorkloadConfig& config);

/// Shared verifier: compare `n` doubles at data-section `symbol` against
/// `expected(i)` bit-for-bit; throws copift::Error naming `workload`, the
/// mismatch count and the first differing element. Implement verify_outputs
/// with this whenever outputs are a dense array of doubles.
void verify_doubles(sim::Cluster& cluster, std::string_view workload,
                    std::string_view symbol, std::uint32_t n,
                    const std::function<double(std::uint32_t)>& expected);

}  // namespace copift::workload

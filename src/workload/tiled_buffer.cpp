#include "workload/tiled_buffer.hpp"

#include <string>

#include "common/error.hpp"
#include "common/layout.hpp"

namespace copift::workload {

using kernels::AsmBuilder;
using kernels::cat;

TiledBuffer::TiledBuffer(const WorkloadConfig& config, std::vector<Array> arrays)
    : arrays_(std::move(arrays)),
      n_(config.n),
      cores_(config.cores == 0 ? 1 : config.cores),
      tile_(config.tile),
      tiles_(config.tile == 0 ? 0 : config.n / config.tile),
      chunk_(config.tile / cores_) {
  if (arrays_.empty()) throw Error("TiledBuffer: no arrays described");
  // One DRAM cursor (tp) serves every array, so they must share a stride.
  for (const Array& a : arrays_) {
    if (a.elem_bytes != arrays_.front().elem_bytes) {
      throw Error("TiledBuffer: arrays must share one element size (" + a.name + " differs)");
    }
  }
}

void TiledBuffer::validate(std::string_view workload, Variant variant,
                           const WorkloadConfig& config, std::uint32_t granule,
                           std::string_view granule_what, std::uint32_t min_granules,
                           std::uint32_t bytes_per_element,
                           std::uint32_t reserved_tcdm_bytes) {
  if (config.tile == 0) return;
  const auto fail = [&](const std::string& what) {
    throw ConfigError(workload, variant, what);
  };
  const std::uint32_t tile = config.tile;
  if (config.n % tile != 0) {
    fail("tile=" + std::to_string(tile) + " does not divide n=" + std::to_string(config.n));
  }
  if (config.n / tile < 2) {
    fail("n=" + std::to_string(config.n) + " with tile=" + std::to_string(tile) +
         " yields fewer than 2 tiles (double buffering needs a second tile)");
  }
  const std::uint32_t cores = config.cores == 0 ? 1 : config.cores;
  if (tile % cores != 0) {
    fail("cores=" + std::to_string(cores) + " does not divide tile=" + std::to_string(tile));
  }
  const std::uint32_t chunk = tile / cores;
  if (granule > 1 && chunk % granule != 0) {
    fail("per-hart tile chunk " + std::to_string(chunk) + " (tile=" + std::to_string(tile) +
         " / cores=" + std::to_string(cores) + ") must be a multiple of " +
         std::string(granule_what) + " " + std::to_string(granule));
  }
  if (chunk / (granule == 0 ? 1 : granule) < min_granules) {
    fail("per-hart tile chunk " + std::to_string(chunk) + " needs at least " +
         std::to_string(min_granules) + " x " + std::string(granule_what) + " " +
         std::to_string(granule));
  }
  // Two buffers per array plus the workload's resident data and the per-hart
  // stacks must fit in TCDM.
  const std::uint64_t buffers = 2ull * tile * bytes_per_element;
  const std::uint64_t budget =
      kTcdmSize - static_cast<std::uint64_t>(cores) * kHartStackBytes - reserved_tcdm_bytes;
  if (buffers > budget) {
    fail("tile=" + std::to_string(tile) + " needs " + std::to_string(buffers) +
         " bytes of double buffers but only " + std::to_string(budget) +
         " bytes of TCDM remain after resident data and stacks");
  }
}

void TiledBuffer::emit_data(AsmBuilder& b) const {
  if (!enabled()) return;
  b.raw(".data\n");
  b.l(".align 3");
  b.c("double-buffered tile staging (2 tiles per array)");
  for (const Array& a : arrays_) {
    b.label(a.name + "_buf");
    b.l(cat(".space ", 2 * tile_bytes(a)));
  }
  b.raw(".section .dram\n");
  b.c("full-size arrays, reachable only through the cluster DMA");
  for (const Array& a : arrays_) {
    b.label(a.name);
    b.l(cat(".space ", static_cast<std::uint64_t>(n_) * a.elem_bytes));
  }
  b.raw(".text\n");
}

std::string TiledBuffer::site_label(const char* stem) {
  return cat("tiled_", stem, "_", next_site_++);
}

void TiledBuffer::emit_transfer(AsmBuilder& b, const Array& a, bool to_tcdm,
                                std::int64_t dram_off, bool back_buffer) const {
  const std::uint32_t tb = tile_bytes(a);
  // DRAM endpoint: array base + tp (current tile) + dram_off.
  b.l(cat("la a1, ", a.name));
  b.l("add a1, a1, tp");
  if (dram_off != 0) kernels::emit_add_imm(b, "a1", "a1", dram_off, "a5");
  // TCDM endpoint: front buffer at +ra, back buffer at +(ra ^ tile bytes).
  b.l(cat("la a2, ", a.name, "_buf"));
  if (back_buffer) {
    b.l(cat("li a5, ", tb));
    b.l("xor a5, ra, a5");
    b.l("add a2, a2, a5");
  } else {
    b.l("add a2, a2, ra");
  }
  b.l(to_tcdm ? "dmsrc a1" : "dmsrc a2");
  b.l(to_tcdm ? "dmdst a2" : "dmdst a1");
  b.l(cat("li a5, ", tb));
  b.l("dmcpy zero, a5");
}

void TiledBuffer::prologue(AsmBuilder& b, const HartSlice& slice) {
  if (!enabled()) return;
  b.c(cat("tile loop state: gp counts ", tiles_, " tiles down, ra is the compute-"));
  b.c("buffer byte offset, tp the DRAM byte offset of the current tile");
  b.l(cat("li gp, ", tiles_));
  b.l("li ra, 0");
  b.l("li tp, 0");
  const std::string skip = site_label("prologue");
  slice.read_hartid(b, "a0", "hart 0 owns the shared DMA engine");
  slice.begin_hart0_only(b, "a0", skip);
  b.c("stage tile 0 into the front buffers before anyone computes");
  for (const Array& a : arrays_) {
    if (a.dir != kOut) emit_transfer(b, a, /*to_tcdm=*/true, 0, /*back_buffer=*/false);
  }
  b.l("dmwait");
  slice.end_hart0_only(b, skip);
  slice.barrier(b);
}

void TiledBuffer::hart0_stage(AsmBuilder& b, const HartSlice& slice) {
  if (!enabled()) return;
  const std::string skip = site_label("stage");
  const std::string no_out = site_label("no_out");
  const std::string no_in = site_label("no_in");
  b.c("overlap stage: hart 0 streams the back buffer while everyone computes;");
  b.c("the out transfer is enqueued first, so the serial DMA FIFO finishes");
  b.c("reading the back buffer before the in transfer overwrites it");
  slice.read_hartid(b, "a0");
  slice.begin_hart0_only(b, "a0", skip);
  b.l(cat("li a0, ", tiles_));
  b.l(cat("beq gp, a0, ", no_out));  // first tile: nothing computed yet
  for (const Array& a : arrays_) {
    if (a.dir != kIn) {
      emit_transfer(b, a, /*to_tcdm=*/false, -static_cast<std::int64_t>(tile_bytes(a)),
                    /*back_buffer=*/true);
    }
  }
  b.label(no_out);
  b.l("li a0, 1");
  b.l(cat("beq gp, a0, ", no_in));  // last tile: nothing left to fetch
  for (const Array& a : arrays_) {
    if (a.dir != kOut) {
      emit_transfer(b, a, /*to_tcdm=*/true, static_cast<std::int64_t>(tile_bytes(a)),
                    /*back_buffer=*/true);
    }
  }
  b.label(no_in);
  slice.end_hart0_only(b, skip);
}

void TiledBuffer::compute_base(AsmBuilder& b, std::string_view dst, std::size_t index,
                               std::string_view hart_reg, std::string_view tmp0,
                               std::string_view tmp1) const {
  if (!enabled()) return;
  const Array& a = arrays_.at(index);
  b.l(cat("la ", dst, ", ", a.name, "_buf"));
  b.l(cat("add ", dst, ", ", dst, ", ra"));
  if (cores_ > 1) {
    b.l(cat("li ", tmp0, ", ", chunk_ * a.elem_bytes));
    b.l(cat("mul ", tmp1, ", ", hart_reg, ", ", tmp0));
    b.l(cat("add ", dst, ", ", dst, ", ", tmp1));
  }
}

void TiledBuffer::tile_epilogue(AsmBuilder& b, const HartSlice& slice,
                                std::string_view loop_label) {
  if (!enabled()) return;
  const std::string skip = site_label("wait");
  b.c("close the tile: everyone done computing, then the back buffer's DMA");
  b.c("must have landed before anyone swaps onto it");
  slice.barrier(b);
  slice.read_hartid(b, "a0");
  slice.begin_hart0_only(b, "a0", skip);
  b.l("dmwait");
  slice.end_hart0_only(b, skip);
  slice.barrier(b);
  const std::uint32_t tb = tile_bytes(arrays_.front());
  b.l(cat("li a0, ", tb));
  b.l("xor ra, ra, a0");  // swap compute/back buffers
  b.l("add tp, tp, a0");  // next tile's DRAM offset
  b.l("addi gp, gp, -1");
  b.l(cat("bnez gp, ", loop_label));
}

void TiledBuffer::final_store(AsmBuilder& b, const HartSlice& slice) {
  if (!enabled()) return;
  const std::string skip = site_label("final");
  b.c("drain the last computed tile back to DRAM");
  const std::uint32_t tb = tile_bytes(arrays_.front());
  b.l(cat("li a0, ", tb));
  b.l("xor ra, ra, a0");  // back to the buffer holding the last tile
  slice.read_hartid(b, "a0");
  slice.begin_hart0_only(b, "a0", skip);
  for (const Array& a : arrays_) {
    if (a.dir != kIn) {
      // tp overshot by one tile in the last tile_epilogue.
      emit_transfer(b, a, /*to_tcdm=*/false, -static_cast<std::int64_t>(tile_bytes(a)),
                    /*back_buffer=*/false);
    }
  }
  b.l("dmwait");
  slice.end_hart0_only(b, skip);
}

}  // namespace copift::workload

// Minimal leveled logger used by the simulator's trace mode.
//
// The logger is intentionally tiny: benchmarks run with logging compiled in
// but disabled, so the guard must be a cheap branch.
#pragma once

#include <iostream>
#include <sstream>
#include <string>

namespace copift {

enum class LogLevel { kError = 0, kWarn = 1, kInfo = 2, kTrace = 3 };

/// Global log level; defaults to kWarn. Not thread-safe by design (the
/// simulator is single-threaded).
LogLevel log_level() noexcept;
void set_log_level(LogLevel level) noexcept;

namespace detail {
void emit(LogLevel level, const std::string& message);
}

/// Log a message if `level` is enabled. Usage:
///   copift::log(LogLevel::kTrace, [&]{ return "cycle " + std::to_string(c); });
/// The lambda keeps message formatting off the hot path when disabled.
template <typename MessageFn>
void log(LogLevel level, MessageFn&& fn) {
  if (static_cast<int>(level) <= static_cast<int>(log_level())) {
    detail::emit(level, fn());
  }
}

}  // namespace copift

#include "common/error.hpp"

namespace copift {

void check(bool condition, const std::string& message) {
  if (!condition) throw Error(message);
}

}  // namespace copift

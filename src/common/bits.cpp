#include "common/bits.hpp"

// Header-only; this translation unit exists so the library has an archive
// member and the header is compiled standalone at least once.
namespace copift {

static_assert(bits(0xDEADBEEFu, 8, 8) == 0xBEu);
static_assert(sign_extend(0xFFFu, 12) == -1);
static_assert(sign_extend(0x7FFu, 12) == 2047);
static_assert(fits_signed(-2048, 12) && !fits_signed(2048, 12));
static_assert(rotl32(0x80000001u, 1) == 0x00000003u);
static_assert(align_up(13, 8) == 16);
static_assert(log2_exact(64) == 6);

}  // namespace copift

// Address-space layout of the simulated Snitch cluster.
//
// Mirrors the open-source Snitch cluster memory map at cluster granularity:
// instruction memory, tightly-coupled data memory (TCDM / L1 scratchpad) and
// an external DRAM region reachable through the cluster DMA.
#pragma once

#include <cstdint>

namespace copift {

inline constexpr std::uint32_t kTextBase = 0x0000'1000;
inline constexpr std::uint32_t kTextSize = 64 * 1024;

inline constexpr std::uint32_t kTcdmBase = 0x1000'0000;
inline constexpr std::uint32_t kTcdmSize = 128 * 1024;  // paper: L1 scratchpad

inline constexpr std::uint32_t kDramBase = 0x8000'0000;
inline constexpr std::uint32_t kDramSize = 32 * 1024 * 1024;

/// Initial stack pointer: top of TCDM, 16-byte aligned.
inline constexpr std::uint32_t kStackTop = kTcdmBase + kTcdmSize;

/// Per-hart stack carve-out below kStackTop in multi-hart clusters:
/// hart h starts with sp = kStackTop - h * kHartStackBytes (hart 0 keeps the
/// historical single-core stack pointer).
inline constexpr std::uint32_t kHartStackBytes = 4 * 1024;

inline constexpr bool in_tcdm(std::uint32_t addr) {
  return addr >= kTcdmBase && addr < kTcdmBase + kTcdmSize;
}
inline constexpr bool in_dram(std::uint32_t addr) {
  return addr >= kDramBase && addr < kDramBase + kDramSize;
}
inline constexpr bool in_text(std::uint32_t addr) {
  return addr >= kTextBase && addr < kTextBase + kTextSize;
}

}  // namespace copift

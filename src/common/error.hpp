// Error types thrown by the library.
//
// Per project convention, unrecoverable user/programming errors (malformed
// assembly, invalid encodings, simulator misconfiguration) throw exceptions
// derived from `copift::Error`; hot simulation paths never throw.
#pragma once

#include <stdexcept>
#include <string>

namespace copift {

/// Base class for all errors raised by the COPIFT library.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// Raised when an instruction cannot be encoded or decoded.
class EncodingError : public Error {
 public:
  explicit EncodingError(const std::string& what) : Error("encoding error: " + what) {}
};

/// Raised by the assembler on malformed source (carries line information).
class AsmError : public Error {
 public:
  AsmError(const std::string& what, unsigned line)
      : Error("asm error at line " + std::to_string(line) + ": " + what), line_(line) {}
  [[nodiscard]] unsigned line() const noexcept { return line_; }

 private:
  unsigned line_;
};

/// Raised by the simulator on fatal machine conditions (bad PC, misaligned
/// access, unsupported instruction reaching execute).
class SimError : public Error {
 public:
  explicit SimError(const std::string& what) : Error("sim error: " + what) {}
};

/// Raised by the COPIFT toolkit on invalid transformation requests
/// (e.g. a partition with a cyclic precedence relation).
class TransformError : public Error {
 public:
  explicit TransformError(const std::string& what) : Error("transform error: " + what) {}
};

void check(bool condition, const std::string& message);

}  // namespace copift

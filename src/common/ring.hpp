// Power-of-two ring FIFO for per-cycle simulator queues.
//
// std::deque allocates and frees its backing blocks as the queue crosses
// block boundaries, so a FIFO that cycles millions of entries through a
// small steady-state depth still produces steady-state heap churn. This ring
// grows (by doubling) only until it reaches the workload's high-water depth
// and never shrinks, so push_back/pop_front are allocation-free in steady
// state. Indices are monotonically increasing 64-bit counters; the mask
// wraps them into the buffer.
#pragma once

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace copift {

template <typename T>
class RingFifo {
 public:
  RingFifo() : buf_(kMinCapacity) {}
  explicit RingFifo(std::size_t capacity_hint) {
    std::size_t cap = kMinCapacity;
    while (cap < capacity_hint) cap *= 2;
    buf_.resize(cap);
  }

  [[nodiscard]] bool empty() const noexcept { return head_ == tail_; }
  [[nodiscard]] std::size_t size() const noexcept {
    return static_cast<std::size_t>(tail_ - head_);
  }
  [[nodiscard]] std::size_t capacity() const noexcept { return buf_.size(); }

  void push_back(T value) {
    if (size() == buf_.size()) grow();
    buf_[static_cast<std::size_t>(tail_) & (buf_.size() - 1)] = std::move(value);
    ++tail_;
  }
  void pop_front() { ++head_; }
  void clear() noexcept { head_ = tail_ = 0; }

  [[nodiscard]] T& front() { return (*this)[0]; }
  [[nodiscard]] const T& front() const { return (*this)[0]; }
  [[nodiscard]] T& back() { return (*this)[size() - 1]; }
  [[nodiscard]] const T& back() const { return (*this)[size() - 1]; }

  /// i-th element counted from the front (0 == front()).
  [[nodiscard]] T& operator[](std::size_t i) {
    return buf_[static_cast<std::size_t>(head_ + i) & (buf_.size() - 1)];
  }
  [[nodiscard]] const T& operator[](std::size_t i) const {
    return buf_[static_cast<std::size_t>(head_ + i) & (buf_.size() - 1)];
  }

 private:
  static constexpr std::size_t kMinCapacity = 8;

  void grow() {
    std::vector<T> bigger(buf_.size() * 2);
    const std::size_t n = size();
    for (std::size_t i = 0; i < n; ++i) bigger[i] = std::move((*this)[i]);
    buf_ = std::move(bigger);
    head_ = 0;
    tail_ = n;
  }

  std::vector<T> buf_;
  std::uint64_t head_ = 0;
  std::uint64_t tail_ = 0;
};

}  // namespace copift

// Bit-manipulation helpers shared across the ISA, assembler and simulator.
//
// All helpers are constexpr and operate on explicitly-sized integer types so
// that instruction encodings are reproducible across hosts.
#pragma once

#include <bit>
#include <cstdint>
#include <type_traits>

namespace copift {

/// Extract bits [lo, lo+width) of `value` (little-endian bit order).
constexpr std::uint32_t bits(std::uint32_t value, unsigned lo, unsigned width) noexcept {
  if (width >= 32) return value >> lo;
  return (value >> lo) & ((std::uint32_t{1} << width) - 1U);
}

/// Extract the single bit at position `pos`.
constexpr std::uint32_t bit(std::uint32_t value, unsigned pos) noexcept {
  return (value >> pos) & 1U;
}

/// Place `value`'s low `width` bits at position `lo` of a zeroed word.
constexpr std::uint32_t place(std::uint32_t value, unsigned lo, unsigned width) noexcept {
  const std::uint32_t mask = width >= 32 ? ~std::uint32_t{0} : ((std::uint32_t{1} << width) - 1U);
  return (value & mask) << lo;
}

/// Sign-extend the low `width` bits of `value` to a signed 32-bit integer.
constexpr std::int32_t sign_extend(std::uint32_t value, unsigned width) noexcept {
  const unsigned shift = 32U - width;
  return static_cast<std::int32_t>(value << shift) >> shift;
}

/// True iff `value` fits in a signed immediate of `width` bits.
constexpr bool fits_signed(std::int64_t value, unsigned width) noexcept {
  const std::int64_t lo = -(std::int64_t{1} << (width - 1));
  const std::int64_t hi = (std::int64_t{1} << (width - 1)) - 1;
  return value >= lo && value <= hi;
}

/// True iff `value` fits in an unsigned immediate of `width` bits.
constexpr bool fits_unsigned(std::int64_t value, unsigned width) noexcept {
  return value >= 0 && value < (std::int64_t{1} << width);
}

/// Rotate a 32-bit value left by `amount` (mod 32).
constexpr std::uint32_t rotl32(std::uint32_t value, unsigned amount) noexcept {
  return std::rotl(value, static_cast<int>(amount));
}

/// Bit-cast between equally sized trivially-copyable types (e.g. FP <-> raw).
template <typename To, typename From>
constexpr To bit_cast(const From& from) noexcept {
  static_assert(sizeof(To) == sizeof(From));
  return std::bit_cast<To>(from);
}

/// Round `value` up to the next multiple of `align` (align must be a power of 2).
constexpr std::uint32_t align_up(std::uint32_t value, std::uint32_t align) noexcept {
  return (value + align - 1) & ~(align - 1);
}

/// True iff `value` is a power of two (and non-zero).
constexpr bool is_pow2(std::uint64_t value) noexcept {
  return value != 0 && (value & (value - 1)) == 0;
}

/// Integer log2 for powers of two.
constexpr unsigned log2_exact(std::uint64_t value) noexcept {
  unsigned result = 0;
  while (value > 1) {
    value >>= 1;
    ++result;
  }
  return result;
}

}  // namespace copift

#include "common/log.hpp"

namespace copift {

namespace {
LogLevel g_level = LogLevel::kWarn;

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kError: return "ERROR";
    case LogLevel::kWarn: return "WARN ";
    case LogLevel::kInfo: return "INFO ";
    case LogLevel::kTrace: return "TRACE";
  }
  return "?";
}
}  // namespace

LogLevel log_level() noexcept { return g_level; }
void set_log_level(LogLevel level) noexcept { g_level = level; }

namespace detail {
void emit(LogLevel level, const std::string& message) {
  std::cerr << "[" << level_name(level) << "] " << message << "\n";
}
}  // namespace detail

}  // namespace copift

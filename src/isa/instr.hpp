// Decoded instruction representation used by the assembler, the simulator
// (predecoded program image) and the COPIFT analysis toolkit.
#pragma once

#include <cstdint>

#include "isa/mnemonic.hpp"

namespace copift::isa {

/// A fully decoded instruction. `imm` holds, depending on format: the
/// sign-extended immediate, the CSR number (kICsr*), the shift amount
/// (kIShift), or the FREP/SSR-config immediate.
struct Instr {
  Mnemonic mnemonic = Mnemonic::kEcall;
  std::uint8_t rd = 0;
  std::uint8_t rs1 = 0;
  std::uint8_t rs2 = 0;
  std::uint8_t rs3 = 0;
  std::int32_t imm = 0;

  [[nodiscard]] const InstrInfo& meta() const noexcept { return info(mnemonic); }

  friend bool operator==(const Instr& a, const Instr& b) = default;
};

/// Encode a decoded instruction into its 32-bit word. Throws EncodingError
/// on out-of-range immediates or operands.
std::uint32_t encode(const Instr& instr);

/// Decode a 32-bit instruction word. Throws EncodingError if the word does
/// not match any supported instruction.
Instr decode(std::uint32_t word);

/// Render an instruction as assembly text (branch/jump targets printed as
/// pc-relative offsets).
std::string disassemble(const Instr& instr);

}  // namespace copift::isa

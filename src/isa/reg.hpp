// Register names and classes for RV32G plus the Snitch FP subsystem.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

namespace copift::isa {

/// Which register file an operand lives in.
enum class RegClass : std::uint8_t { kNone, kInt, kFp };

inline constexpr unsigned kNumIntRegs = 32;
inline constexpr unsigned kNumFpRegs = 32;

/// SSR data registers: Snitch remaps ft0..ft2 to stream lanes when SSRs are
/// enabled. These constants identify the architectural FP register indices.
inline constexpr unsigned kNumSsrLanes = 3;
inline constexpr std::uint8_t kSsrReg0 = 0;  // ft0
inline constexpr std::uint8_t kSsrReg1 = 1;  // ft1
inline constexpr std::uint8_t kSsrReg2 = 2;  // ft2

/// Render an integer register as its ABI name (x10 -> "a0").
std::string int_reg_name(unsigned index);

/// Render an FP register as its ABI name (f10 -> "fa0").
std::string fp_reg_name(unsigned index);

/// Parse an integer register name: accepts both "x13" and ABI names ("a3").
/// Returns std::nullopt if the token is not an integer register.
std::optional<unsigned> parse_int_reg(std::string_view token);

/// Parse an FP register name: accepts both "f13" and ABI names ("fa3").
std::optional<unsigned> parse_fp_reg(std::string_view token);

}  // namespace copift::isa

#include "isa/instr.hpp"

#include <algorithm>
#include <array>
#include <sstream>
#include <vector>

#include "common/bits.hpp"
#include "common/error.hpp"

namespace copift::isa {

namespace {

void require(bool ok, const std::string& message) {
  if (!ok) throw EncodingError(message);
}

constexpr std::uint32_t rd_field(std::uint32_t r) { return place(r, 7, 5); }
constexpr std::uint32_t rs1_field(std::uint32_t r) { return place(r, 15, 5); }
constexpr std::uint32_t rs2_field(std::uint32_t r) { return place(r, 20, 5); }
constexpr std::uint32_t rs3_field(std::uint32_t r) { return place(r, 27, 5); }

// Dynamic rounding mode for FP instructions whose rm field is free.
constexpr std::uint32_t kRmDyn = 0b111;

std::uint32_t encode_b_imm(std::int32_t imm) {
  require((imm & 1) == 0, "branch offset must be even");
  require(fits_signed(imm, 13), "branch offset out of range");
  const auto u = static_cast<std::uint32_t>(imm);
  return place(bit(u, 12), 31, 1) | place(bits(u, 5, 6), 25, 6) |
         place(bits(u, 1, 4), 8, 4) | place(bit(u, 11), 7, 1);
}

std::uint32_t encode_j_imm(std::int32_t imm) {
  require((imm & 1) == 0, "jump offset must be even");
  require(fits_signed(imm, 21), "jump offset out of range");
  const auto u = static_cast<std::uint32_t>(imm);
  return place(bit(u, 20), 31, 1) | place(bits(u, 1, 10), 21, 10) |
         place(bit(u, 11), 20, 1) | place(bits(u, 12, 8), 12, 8);
}

std::int32_t decode_b_imm(std::uint32_t w) {
  const std::uint32_t u = place(bit(w, 31), 12, 1) | place(bits(w, 25, 6), 5, 6) |
                          place(bits(w, 8, 4), 1, 4) | place(bit(w, 7), 11, 1);
  return sign_extend(u, 13);
}

std::int32_t decode_j_imm(std::uint32_t w) {
  const std::uint32_t u = place(bit(w, 31), 20, 1) | place(bits(w, 21, 10), 1, 10) |
                          place(bit(w, 20), 11, 1) | place(bits(w, 12, 8), 12, 8);
  return sign_extend(u, 21);
}

// Specs sorted by mask specificity so that fully-fixed encodings (ecall,
// copift.barrier) win over partially-fixed ones sharing an opcode.
const std::vector<Mnemonic>& decode_order() {
  static const std::vector<Mnemonic> order = [] {
    std::vector<Mnemonic> v;
    v.reserve(kNumMnemonics);
    for (std::size_t i = 0; i < kNumMnemonics; ++i) v.push_back(static_cast<Mnemonic>(i));
    std::stable_sort(v.begin(), v.end(), [](Mnemonic a, Mnemonic b) {
      return info(a).mask > info(b).mask;
    });
    return v;
  }();
  return order;
}

}  // namespace

std::uint32_t encode(const Instr& instr) {
  const InstrInfo& m = instr.meta();
  std::uint32_t w = m.match;
  require(instr.rd < 32 && instr.rs1 < 32 && instr.rs2 < 32 && instr.rs3 < 32,
          "register index out of range");
  switch (m.format) {
    case Format::kR:
      w |= rd_field(instr.rd) | rs1_field(instr.rs1) | rs2_field(instr.rs2);
      break;
    case Format::kR4:
      w |= rd_field(instr.rd) | rs1_field(instr.rs1) | rs2_field(instr.rs2) |
           rs3_field(instr.rs3) | place(kRmDyn, 12, 3);
      break;
    case Format::kRFpRm:
      w |= rd_field(instr.rd) | rs1_field(instr.rs1) | rs2_field(instr.rs2) |
           place(kRmDyn, 12, 3);
      break;
    case Format::kRFp1Rm:
      w |= rd_field(instr.rd) | rs1_field(instr.rs1) | place(kRmDyn, 12, 3);
      break;
    case Format::kRFp1:
      w |= rd_field(instr.rd) | rs1_field(instr.rs1);
      break;
    case Format::kI:
    case Format::kILoad:
      require(fits_signed(instr.imm, 12), std::string(m.name) + ": imm12 out of range");
      w |= rd_field(instr.rd) | rs1_field(instr.rs1) |
           place(static_cast<std::uint32_t>(instr.imm), 20, 12);
      break;
    case Format::kIShift:
      require(fits_unsigned(instr.imm, 5), std::string(m.name) + ": shamt out of range");
      w |= rd_field(instr.rd) | rs1_field(instr.rs1) |
           place(static_cast<std::uint32_t>(instr.imm), 20, 5);
      break;
    case Format::kS: {
      require(fits_signed(instr.imm, 12), std::string(m.name) + ": imm12 out of range");
      const auto u = static_cast<std::uint32_t>(instr.imm);
      w |= rs1_field(instr.rs1) | rs2_field(instr.rs2) | place(bits(u, 5, 7), 25, 7) |
           place(bits(u, 0, 5), 7, 5);
      break;
    }
    case Format::kB:
      w |= rs1_field(instr.rs1) | rs2_field(instr.rs2) | encode_b_imm(instr.imm);
      break;
    case Format::kU:
      require(fits_unsigned(instr.imm, 20) || fits_signed(instr.imm, 20),
              std::string(m.name) + ": imm20 out of range");
      w |= rd_field(instr.rd) | place(static_cast<std::uint32_t>(instr.imm), 12, 20);
      break;
    case Format::kJ:
      w |= rd_field(instr.rd) | encode_j_imm(instr.imm);
      break;
    case Format::kICsr:
      require(fits_unsigned(instr.imm, 12), "csr number out of range");
      w |= rd_field(instr.rd) | rs1_field(instr.rs1) |
           place(static_cast<std::uint32_t>(instr.imm), 20, 12);
      break;
    case Format::kICsrImm:
      require(fits_unsigned(instr.imm, 12), "csr number out of range");
      require(instr.rs1 < 32, "zimm out of range");
      w |= rd_field(instr.rd) | rs1_field(instr.rs1) |
           place(static_cast<std::uint32_t>(instr.imm), 20, 12);
      break;
    case Format::kFixed:
      break;
    case Format::kRdOnly:
      w |= rd_field(instr.rd);
      break;
    case Format::kRs1Only:
      w |= rs1_field(instr.rs1);
      break;
    case Format::kRdRs1:
      w |= rd_field(instr.rd) | rs1_field(instr.rs1);
      break;
    case Format::kRs1Imm:
      require(fits_unsigned(instr.imm, 12), std::string(m.name) + ": imm12 out of range");
      w |= rs1_field(instr.rs1) | place(static_cast<std::uint32_t>(instr.imm), 20, 12);
      break;
    case Format::kRdImm:
      require(fits_unsigned(instr.imm, 12), std::string(m.name) + ": imm12 out of range");
      w |= rd_field(instr.rd) | place(static_cast<std::uint32_t>(instr.imm), 20, 12);
      break;
  }
  return w;
}

Instr decode(std::uint32_t word) {
  for (Mnemonic m : decode_order()) {
    const InstrInfo& spec = info(m);
    if ((word & spec.mask) != spec.match) continue;
    Instr instr;
    instr.mnemonic = m;
    const auto rd = static_cast<std::uint8_t>(bits(word, 7, 5));
    const auto rs1 = static_cast<std::uint8_t>(bits(word, 15, 5));
    const auto rs2 = static_cast<std::uint8_t>(bits(word, 20, 5));
    const auto rs3 = static_cast<std::uint8_t>(bits(word, 27, 5));
    switch (spec.format) {
      case Format::kR:
        instr.rd = rd; instr.rs1 = rs1; instr.rs2 = rs2;
        break;
      case Format::kR4:
        instr.rd = rd; instr.rs1 = rs1; instr.rs2 = rs2; instr.rs3 = rs3;
        break;
      case Format::kRFpRm:
        instr.rd = rd; instr.rs1 = rs1; instr.rs2 = rs2;
        break;
      case Format::kRFp1Rm:
      case Format::kRFp1:
        instr.rd = rd; instr.rs1 = rs1;
        break;
      case Format::kI:
      case Format::kILoad:
        instr.rd = rd; instr.rs1 = rs1;
        instr.imm = sign_extend(bits(word, 20, 12), 12);
        break;
      case Format::kIShift:
        instr.rd = rd; instr.rs1 = rs1;
        instr.imm = static_cast<std::int32_t>(bits(word, 20, 5));
        break;
      case Format::kS:
        instr.rs1 = rs1; instr.rs2 = rs2;
        instr.imm = sign_extend(place(bits(word, 25, 7), 5, 7) | bits(word, 7, 5), 12);
        break;
      case Format::kB:
        instr.rs1 = rs1; instr.rs2 = rs2;
        instr.imm = decode_b_imm(word);
        break;
      case Format::kU:
        instr.rd = rd;
        instr.imm = static_cast<std::int32_t>(bits(word, 12, 20));
        break;
      case Format::kJ:
        instr.rd = rd;
        instr.imm = decode_j_imm(word);
        break;
      case Format::kICsr:
      case Format::kICsrImm:
        instr.rd = rd; instr.rs1 = rs1;
        instr.imm = static_cast<std::int32_t>(bits(word, 20, 12));
        break;
      case Format::kFixed:
        break;
      case Format::kRdOnly:
        instr.rd = rd;
        break;
      case Format::kRs1Only:
        instr.rs1 = rs1;
        break;
      case Format::kRdRs1:
        instr.rd = rd; instr.rs1 = rs1;
        break;
      case Format::kRs1Imm:
        instr.rs1 = rs1;
        instr.imm = static_cast<std::int32_t>(bits(word, 20, 12));
        break;
      case Format::kRdImm:
        instr.rd = rd;
        instr.imm = static_cast<std::int32_t>(bits(word, 20, 12));
        break;
    }
    return instr;
  }
  std::ostringstream os;
  os << "cannot decode word 0x" << std::hex << word;
  throw EncodingError(os.str());
}

std::string disassemble(const Instr& instr) {
  const InstrInfo& m = instr.meta();
  const auto reg = [](RegClass cls, unsigned index) {
    return cls == RegClass::kFp ? fp_reg_name(index) : int_reg_name(index);
  };
  std::ostringstream os;
  os << m.name;
  switch (m.format) {
    case Format::kR:
      os << ' ' << reg(m.rd_class, instr.rd) << ", " << reg(m.rs1_class, instr.rs1) << ", "
         << reg(m.rs2_class, instr.rs2);
      break;
    case Format::kR4:
      os << ' ' << reg(m.rd_class, instr.rd) << ", " << reg(m.rs1_class, instr.rs1) << ", "
         << reg(m.rs2_class, instr.rs2) << ", " << reg(m.rs3_class, instr.rs3);
      break;
    case Format::kRFpRm:
      os << ' ' << reg(m.rd_class, instr.rd) << ", " << reg(m.rs1_class, instr.rs1) << ", "
         << reg(m.rs2_class, instr.rs2);
      break;
    case Format::kRFp1Rm:
    case Format::kRFp1:
      os << ' ' << reg(m.rd_class, instr.rd) << ", " << reg(m.rs1_class, instr.rs1);
      break;
    case Format::kI:
    case Format::kIShift:
      os << ' ' << reg(m.rd_class, instr.rd) << ", " << reg(m.rs1_class, instr.rs1) << ", "
         << instr.imm;
      break;
    case Format::kILoad:
      os << ' ' << reg(m.rd_class, instr.rd) << ", " << instr.imm << '('
         << int_reg_name(instr.rs1) << ')';
      break;
    case Format::kS:
      os << ' ' << reg(m.rs2_class, instr.rs2) << ", " << instr.imm << '('
         << int_reg_name(instr.rs1) << ')';
      break;
    case Format::kB:
      os << ' ' << int_reg_name(instr.rs1) << ", " << int_reg_name(instr.rs2) << ", "
         << instr.imm;
      break;
    case Format::kU:
      os << ' ' << int_reg_name(instr.rd) << ", " << instr.imm;
      break;
    case Format::kJ:
      os << ' ' << int_reg_name(instr.rd) << ", " << instr.imm;
      break;
    case Format::kICsr:
      os << ' ' << int_reg_name(instr.rd) << ", 0x" << std::hex << instr.imm << std::dec << ", "
         << int_reg_name(instr.rs1);
      break;
    case Format::kICsrImm:
      os << ' ' << int_reg_name(instr.rd) << ", 0x" << std::hex << instr.imm << std::dec << ", "
         << static_cast<unsigned>(instr.rs1);
      break;
    case Format::kFixed:
      break;
    case Format::kRdOnly:
      os << ' ' << int_reg_name(instr.rd);
      break;
    case Format::kRs1Only:
      os << ' ' << int_reg_name(instr.rs1);
      break;
    case Format::kRdRs1:
      os << ' ' << int_reg_name(instr.rd) << ", " << int_reg_name(instr.rs1);
      break;
    case Format::kRs1Imm:
      os << ' ' << int_reg_name(instr.rs1) << ", " << instr.imm;
      break;
    case Format::kRdImm:
      os << ' ' << int_reg_name(instr.rd) << ", " << instr.imm;
      break;
  }
  return os.str();
}

}  // namespace copift::isa

// CSR numbers understood by the simulated Snitch core.
#pragma once

#include <cstdint>

namespace copift::isa {

/// Standard performance counters.
inline constexpr std::uint16_t kCsrMcycle = 0xB00;
inline constexpr std::uint16_t kCsrMinstret = 0xB02;

/// Snitch SSR enable CSR: bit 0 enables the remapping of ft0..ft2 to the
/// stream lanes (write 1 with csrsi to enable, csrci to disable). Disabling
/// waits for all stream writebacks to drain.
inline constexpr std::uint16_t kCsrSsr = 0x7C0;

/// FPSS status CSR: reads return the number of offloaded-but-uncompleted FP
/// instructions. Reading it with rd != x0 stalls until the FPSS is idle —
/// the full-barrier used at kernel boundaries.
inline constexpr std::uint16_t kCsrFpss = 0x7C1;

}  // namespace copift::isa

// CSR numbers understood by the simulated Snitch core.
#pragma once

#include <cstdint>

namespace copift::isa {

/// Standard performance counters.
inline constexpr std::uint16_t kCsrMcycle = 0xB00;
inline constexpr std::uint16_t kCsrMinstret = 0xB02;

/// Snitch SSR enable CSR: bit 0 enables the remapping of ft0..ft2 to the
/// stream lanes (write 1 with csrsi to enable, csrci to disable). Disabling
/// waits for all stream writebacks to drain.
inline constexpr std::uint16_t kCsrSsr = 0x7C0;

/// FPSS status CSR: reads return the number of offloaded-but-uncompleted FP
/// instructions. Reading it with rd != x0 stalls until the FPSS is idle —
/// the full-barrier used at kernel boundaries.
inline constexpr std::uint16_t kCsrFpss = 0x7C1;

/// Hardware inter-hart barrier: any access (read or write) holds the hart
/// until every hart in the cluster has reached the barrier, then all are
/// released. Reads return the number of harts. With one hart the access
/// completes immediately.
inline constexpr std::uint16_t kCsrBarrier = 0x7C3;

/// Standard machine hart id (read-only): which CoreComplex this is.
inline constexpr std::uint16_t kCsrMhartid = 0xF14;

}  // namespace copift::isa

#include "isa/reg.hpp"

#include <array>

namespace copift::isa {

namespace {

constexpr std::array<std::string_view, kNumIntRegs> kIntAbiNames = {
    "zero", "ra", "sp", "gp", "tp", "t0", "t1", "t2", "s0", "s1", "a0",
    "a1",   "a2", "a3", "a4", "a5", "a6", "a7", "s2", "s3", "s4", "s5",
    "s6",   "s7", "s8", "s9", "s10", "s11", "t3", "t4", "t5", "t6"};

constexpr std::array<std::string_view, kNumFpRegs> kFpAbiNames = {
    "ft0", "ft1", "ft2", "ft3", "ft4", "ft5", "ft6", "ft7", "fs0", "fs1", "fa0",
    "fa1", "fa2", "fa3", "fa4", "fa5", "fa6", "fa7", "fs2", "fs3", "fs4", "fs5",
    "fs6", "fs7", "fs8", "fs9", "fs10", "fs11", "ft8", "ft9", "ft10", "ft11"};

std::optional<unsigned> parse_numeric(std::string_view token, char prefix) {
  if (token.size() < 2 || token.size() > 3 || token[0] != prefix) return std::nullopt;
  unsigned value = 0;
  for (char c : token.substr(1)) {
    if (c < '0' || c > '9') return std::nullopt;
    value = value * 10 + static_cast<unsigned>(c - '0');
  }
  if (value >= 32) return std::nullopt;
  return value;
}

}  // namespace

std::string int_reg_name(unsigned index) {
  return index < kNumIntRegs ? std::string(kIntAbiNames[index]) : "x?";
}

std::string fp_reg_name(unsigned index) {
  return index < kNumFpRegs ? std::string(kFpAbiNames[index]) : "f?";
}

std::optional<unsigned> parse_int_reg(std::string_view token) {
  if (auto n = parse_numeric(token, 'x')) return n;
  if (token == "fp") return 8;  // alias for s0
  for (unsigned i = 0; i < kNumIntRegs; ++i) {
    if (token == kIntAbiNames[i]) return i;
  }
  return std::nullopt;
}

std::optional<unsigned> parse_fp_reg(std::string_view token) {
  if (token.size() >= 2 && token[0] == 'f' && token[1] >= '0' && token[1] <= '9') {
    if (auto n = parse_numeric(token, 'f')) return n;
  }
  for (unsigned i = 0; i < kNumFpRegs; ++i) {
    if (token == kFpAbiNames[i]) return i;
  }
  return std::nullopt;
}

}  // namespace copift::isa

// Instruction set: RV32G (I, M, F, D, Zicsr) plus the Snitch custom
// extensions (Xfrep, Xssr, Xdma) and the paper's Xcopift extension.
//
// Xcopift re-encodes the "D" conversion/comparison/classify instructions in
// the custom-1 opcode space with altered semantics: all operands live in the
// FP register file, so the instructions can execute under FREP without
// touching integer-core state (paper Section II-B). `copift.barrier` makes
// the integer thread wait for completion of all FP instructions offloaded
// before the most recent `frep.o` — the synchronization the schedule in
// paper Fig. 1j relies on between pipelined block iterations.
#pragma once

#include <cstdint>
#include <optional>
#include <string_view>

#include "isa/reg.hpp"

namespace copift::isa {

enum class Mnemonic : std::uint16_t {
  // ---- RV32I ----
  kLui, kAuipc, kJal, kJalr,
  kBeq, kBne, kBlt, kBge, kBltu, kBgeu,
  kLb, kLh, kLw, kLbu, kLhu,
  kSb, kSh, kSw,
  kAddi, kSlti, kSltiu, kXori, kOri, kAndi, kSlli, kSrli, kSrai,
  kAdd, kSub, kSll, kSlt, kSltu, kXor, kSrl, kSra, kOr, kAnd,
  kFence, kEcall, kEbreak,
  // ---- Zicsr ----
  kCsrrw, kCsrrs, kCsrrc, kCsrrwi, kCsrrsi, kCsrrci,
  // ---- M ----
  kMul, kMulh, kMulhsu, kMulhu, kDiv, kDivu, kRem, kRemu,
  // ---- F ----
  kFlw, kFsw,
  kFmaddS, kFmsubS, kFnmsubS, kFnmaddS,
  kFaddS, kFsubS, kFmulS, kFdivS, kFsqrtS,
  kFsgnjS, kFsgnjnS, kFsgnjxS, kFminS, kFmaxS,
  kFcvtWS, kFcvtWuS, kFmvXW, kFeqS, kFltS, kFleS, kFclassS,
  kFcvtSW, kFcvtSWu, kFmvWX,
  // ---- D ----
  kFld, kFsd,
  kFmaddD, kFmsubD, kFnmsubD, kFnmaddD,
  kFaddD, kFsubD, kFmulD, kFdivD, kFsqrtD,
  kFsgnjD, kFsgnjnD, kFsgnjxD, kFminD, kFmaxD,
  kFcvtSD, kFcvtDS,
  kFeqD, kFltD, kFleD, kFclassD,
  kFcvtWD, kFcvtWuD, kFcvtDW, kFcvtDWu,
  // ---- Xfrep (Snitch hardware loop) ----
  kFrepO,  // frep.o rs1, n_instr : repeat next n_instr FP instrs (rs1)+1 times
  kFrepI,  // frep.i rs1, n_instr : inner-loop variant (repeat each instr)
  // ---- Xssr (stream semantic register configuration) ----
  kScfgwi,  // scfgwi rs1, imm    : write SSR config word [imm] <- rs1
  kScfgri,  // scfgri rd, imm     : read SSR config word [imm] -> rd
  // ---- Xdma (cluster DMA engine) ----
  kDmsrc,   // dmsrc rs1          : set DMA source address
  kDmdst,   // dmdst rs1          : set DMA destination address
  kDmcpy,   // dmcpy rd, rs1      : start copy of rs1 bytes, rd <- txn id
  kDmstat,  // dmstat rd          : rd <- number of pending DMA transfers
  kDmwait,  // dmwait             : stall until all pending DMA transfers finish
  // ---- Xcopift (paper Section II-B, custom-1 opcode space) ----
  kFcvtWDCop,   // fcvt.w.d.cop  fd, fs  : double -> int32, result in FP RF
  kFcvtWuDCop,  // fcvt.wu.d.cop fd, fs
  kFcvtDWCop,   // fcvt.d.w.cop  fd, fs  : int32 bit-pattern in fs -> double
  kFcvtDWuCop,  // fcvt.d.wu.cop fd, fs
  kFeqDCop,     // feq.d.cop fd, fs1, fs2 : compare, 0.0/1.0 result in FP RF
  kFltDCop,     // flt.d.cop fd, fs1, fs2
  kFleDCop,     // fle.d.cop fd, fs1, fs2
  kFclassDCop,  // fclass.d.cop fd, fs
  kCopiftBarrier,  // copift.barrier : wait for FP work issued before last frep.o
  kCount
};

inline constexpr std::size_t kNumMnemonics = static_cast<std::size_t>(Mnemonic::kCount);

/// Functional unit an instruction executes on. Determines latency and the
/// energy event charged by the power model.
enum class ExecUnit : std::uint8_t {
  kIntAlu,   // single-cycle integer ALU
  kMul,      // shared multiplier (pipelined, multi-cycle)
  kDiv,      // iterative divider
  kLoad,     // integer LSU load (TCDM)
  kStore,    // integer LSU store
  kBranch,   // conditional branch
  kJump,     // jal/jalr
  kCsr,      // CSR access
  kSys,      // fence/ecall/ebreak
  kFpu,      // FP compute (fpu_class() refines)
  kFpLoad,   // FP load (flw/fld)
  kFpStore,  // FP store (fsw/fsd)
  kFrep,     // FREP configuration
  kSsrCfg,   // SSR configuration
  kDma,      // DMA engine command
  kBarrier,  // copift.barrier
};

/// Refinement of ExecUnit::kFpu used for latency/energy lookup.
enum class FpuClass : std::uint8_t {
  kNone,
  kAdd,     // fadd/fsub
  kMul,     // fmul
  kFma,     // fmadd/fmsub/fnmadd/fnmsub
  kDivSqrt, // fdiv/fsqrt (iterative)
  kCmp,     // feq/flt/fle
  kCvt,     // conversions
  kMove,    // fmv.x.w / fmv.w.x / fsgnj (register moves)
  kMinMax,  // fmin/fmax
  kClass,   // fclass
};

/// Assembly syntax / encoding format.
enum class Format : std::uint8_t {
  kR,       // rd, rs1, rs2                 (funct3+funct7 fixed)
  kR4,      // rd, rs1, rs2, rs3            (FP fused multiply-add, rm dynamic)
  kRFpRm,   // rd, rs1, rs2, rm dynamic     (fadd.d ...)
  kRFp1Rm,  // rd, rs1; rs2-field fixed, rm dynamic (fsqrt, fcvt)
  kRFp1,    // rd, rs1; rs2-field fixed, funct3 fixed (fclass, fmv)
  kI,       // rd, rs1, imm12
  kIShift,  // rd, rs1, shamt5              (funct7 fixed)
  kILoad,   // rd, imm12(rs1)
  kS,       // rs2, imm12(rs1)
  kB,       // rs1, rs2, pc-relative imm13
  kU,       // rd, imm20 (upper)
  kJ,       // rd, pc-relative imm21
  kICsr,    // rd, csr, rs1
  kICsrImm, // rd, csr, zimm5
  kFixed,   // entire word fixed (ecall, ebreak, copift.barrier)
  kRdOnly,  // rd                           (dmstat)
  kRs1Only, // rs1                          (dmsrc, dmdst)
  kRdRs1,   // rd, rs1                      (dmcpy)
  kRs1Imm,  // rs1, imm12                   (frep.o, scfgwi)
  kRdImm,   // rd, imm12                    (scfgri)
};

/// Static metadata for one mnemonic.
struct InstrInfo {
  std::string_view name;
  Format format = Format::kFixed;
  ExecUnit unit = ExecUnit::kSys;
  FpuClass fpu_class = FpuClass::kNone;
  RegClass rd_class = RegClass::kNone;
  RegClass rs1_class = RegClass::kNone;
  RegClass rs2_class = RegClass::kNone;
  RegClass rs3_class = RegClass::kNone;
  bool xcopift = false;  // member of the paper's Xcopift extension
  // Encoding match: fixed fields assembled into (match, mask) over the 32-bit
  // instruction word. Operand fields are zero in both `match` and `mask`.
  std::uint32_t match = 0;
  std::uint32_t mask = 0;

  /// True if this instruction is dispatched to the FP subsystem (Snitch
  /// offloads every FP instruction, including FP loads/stores and Xcopift).
  [[nodiscard]] bool offloaded() const noexcept {
    return unit == ExecUnit::kFpu || unit == ExecUnit::kFpLoad ||
           unit == ExecUnit::kFpStore;
  }

  /// Offloaded instruction that consumes an integer-RF operand at issue
  /// (FP loads/stores take the address from rs1; fcvt.d.w / fmv.w.x take the
  /// value). Together with writes_int_rf these are the paper's Type-1/2/3
  /// dual-issue blockers.
  [[nodiscard]] bool reads_int_rf() const noexcept {
    return offloaded() &&
           (rs1_class == RegClass::kInt || rs2_class == RegClass::kInt);
  }

  /// Offloaded instruction producing a result in the integer RF
  /// (comparisons, fclass, fcvt.w.d, fmv.x.w) — the integer core must wait.
  [[nodiscard]] bool writes_int_rf() const noexcept {
    return offloaded() && rd_class == RegClass::kInt;
  }

  [[nodiscard]] bool is_load() const noexcept {
    return unit == ExecUnit::kLoad || unit == ExecUnit::kFpLoad;
  }
  [[nodiscard]] bool is_store() const noexcept {
    return unit == ExecUnit::kStore || unit == ExecUnit::kFpStore;
  }
  [[nodiscard]] bool is_control_flow() const noexcept {
    return unit == ExecUnit::kBranch || unit == ExecUnit::kJump;
  }
};

/// Metadata for a mnemonic. O(1) table lookup.
const InstrInfo& info(Mnemonic m) noexcept;

/// Find a mnemonic by assembly name ("fmadd.d"). Case-sensitive, lower case.
std::optional<Mnemonic> mnemonic_by_name(std::string_view name);

/// Short helper: assembly name of a mnemonic.
std::string_view name(Mnemonic m) noexcept;

}  // namespace copift::isa

#include "isa/mnemonic.hpp"

#include <array>

namespace copift::isa {

namespace {

// Opcode constants (RISC-V unprivileged spec, table 24.1).
constexpr std::uint32_t kLoad = 0x03, kLoadFp = 0x07, kMiscMem = 0x0F;
constexpr std::uint32_t kOpImm = 0x13, kAuipcOp = 0x17, kStoreOp = 0x23;
constexpr std::uint32_t kStoreFp = 0x27, kOp = 0x33, kLuiOp = 0x37;
constexpr std::uint32_t kMadd = 0x43, kMsub = 0x47, kNmsub = 0x4B, kNmadd = 0x4F;
constexpr std::uint32_t kOpFp = 0x53, kBranchOp = 0x63, kJalrOp = 0x67;
constexpr std::uint32_t kJalOp = 0x6F, kSystem = 0x73;
constexpr std::uint32_t kCustom0 = 0x0B;  // Xfrep
constexpr std::uint32_t kCustom1 = 0x2B;  // Xcopift (paper Section II-B)
constexpr std::uint32_t kCustom2 = 0x5B;  // Xssr + Xdma

struct Enc {
  std::uint32_t match;
  std::uint32_t mask;
};

constexpr Enc op(std::uint32_t opcode) { return {opcode, 0x7F}; }
constexpr Enc f3(Enc e, std::uint32_t v) { return {e.match | (v << 12), e.mask | 0x7000}; }
constexpr Enc f7(Enc e, std::uint32_t v) { return {e.match | (v << 25), e.mask | 0xFE000000}; }
constexpr Enc rs2f(Enc e, std::uint32_t v) { return {e.match | (v << 20), e.mask | 0x01F00000}; }
constexpr Enc fmt2(Enc e, std::uint32_t v) { return {e.match | (v << 25), e.mask | 0x06000000}; }
constexpr Enc whole(std::uint32_t w) { return {w, 0xFFFFFFFF}; }

constexpr RegClass N = RegClass::kNone;
constexpr RegClass I = RegClass::kInt;
constexpr RegClass F = RegClass::kFp;

constexpr InstrInfo mk(std::string_view nm, Format fmt, ExecUnit u, FpuClass fc,
                       RegClass rd, RegClass rs1, RegClass rs2, RegClass rs3,
                       Enc e, bool xcop = false) {
  InstrInfo x{};
  x.name = nm;
  x.format = fmt;
  x.unit = u;
  x.fpu_class = fc;
  x.rd_class = rd;
  x.rs1_class = rs1;
  x.rs2_class = rs2;
  x.rs3_class = rs3;
  x.xcopift = xcop;
  x.match = e.match;
  x.mask = e.mask;
  return x;
}

// Shorthand builders per recurring shape.
constexpr InstrInfo alu_r(std::string_view nm, std::uint32_t funct3, std::uint32_t funct7,
                          ExecUnit u = ExecUnit::kIntAlu) {
  return mk(nm, Format::kR, u, FpuClass::kNone, I, I, I, N, f7(f3(op(kOp), funct3), funct7));
}
constexpr InstrInfo alu_i(std::string_view nm, std::uint32_t funct3) {
  return mk(nm, Format::kI, ExecUnit::kIntAlu, FpuClass::kNone, I, I, N, N, f3(op(kOpImm), funct3));
}
constexpr InstrInfo shift_i(std::string_view nm, std::uint32_t funct3, std::uint32_t funct7) {
  return mk(nm, Format::kIShift, ExecUnit::kIntAlu, FpuClass::kNone, I, I, N, N,
            f7(f3(op(kOpImm), funct3), funct7));
}
constexpr InstrInfo load_i(std::string_view nm, std::uint32_t funct3) {
  return mk(nm, Format::kILoad, ExecUnit::kLoad, FpuClass::kNone, I, I, N, N, f3(op(kLoad), funct3));
}
constexpr InstrInfo store_i(std::string_view nm, std::uint32_t funct3) {
  return mk(nm, Format::kS, ExecUnit::kStore, FpuClass::kNone, N, I, I, N, f3(op(kStoreOp), funct3));
}
constexpr InstrInfo branch(std::string_view nm, std::uint32_t funct3) {
  return mk(nm, Format::kB, ExecUnit::kBranch, FpuClass::kNone, N, I, I, N,
            f3(op(kBranchOp), funct3));
}
constexpr InstrInfo csr_r(std::string_view nm, std::uint32_t funct3) {
  return mk(nm, Format::kICsr, ExecUnit::kCsr, FpuClass::kNone, I, I, N, N,
            f3(op(kSystem), funct3));
}
constexpr InstrInfo csr_i(std::string_view nm, std::uint32_t funct3) {
  return mk(nm, Format::kICsrImm, ExecUnit::kCsr, FpuClass::kNone, I, N, N, N,
            f3(op(kSystem), funct3));
}
constexpr InstrInfo fma(std::string_view nm, std::uint32_t opcode, std::uint32_t fmt) {
  return mk(nm, Format::kR4, ExecUnit::kFpu, FpuClass::kFma, F, F, F, F, fmt2(op(opcode), fmt));
}
constexpr InstrInfo fp_rr(std::string_view nm, std::uint32_t funct7, FpuClass fc) {
  return mk(nm, Format::kRFpRm, ExecUnit::kFpu, fc, F, F, F, N, f7(op(kOpFp), funct7));
}
constexpr InstrInfo fp_sgnj(std::string_view nm, std::uint32_t funct7, std::uint32_t funct3,
                            FpuClass fc) {
  return mk(nm, Format::kR, ExecUnit::kFpu, fc, F, F, F, N, f7(f3(op(kOpFp), funct3), funct7));
}
constexpr InstrInfo fp_cmp(std::string_view nm, std::uint32_t funct7, std::uint32_t funct3) {
  return mk(nm, Format::kR, ExecUnit::kFpu, FpuClass::kCmp, I, F, F, N,
            f7(f3(op(kOpFp), funct3), funct7));
}
constexpr InstrInfo fp_cvt(std::string_view nm, std::uint32_t funct7, std::uint32_t rs2field,
                           RegClass rd, RegClass rs1) {
  return mk(nm, Format::kRFp1Rm, ExecUnit::kFpu, FpuClass::kCvt, rd, rs1, N, N,
            rs2f(f7(op(kOpFp), funct7), rs2field));
}

constexpr std::array<InstrInfo, kNumMnemonics> build_table() {
  std::array<InstrInfo, kNumMnemonics> t{};
  auto set = [&t](Mnemonic m, InstrInfo x) { t[static_cast<std::size_t>(m)] = x; };

  // ---- RV32I ----
  set(Mnemonic::kLui, mk("lui", Format::kU, ExecUnit::kIntAlu, FpuClass::kNone, I, N, N, N, op(kLuiOp)));
  set(Mnemonic::kAuipc, mk("auipc", Format::kU, ExecUnit::kIntAlu, FpuClass::kNone, I, N, N, N, op(kAuipcOp)));
  set(Mnemonic::kJal, mk("jal", Format::kJ, ExecUnit::kJump, FpuClass::kNone, I, N, N, N, op(kJalOp)));
  set(Mnemonic::kJalr, mk("jalr", Format::kI, ExecUnit::kJump, FpuClass::kNone, I, I, N, N, f3(op(kJalrOp), 0)));
  set(Mnemonic::kBeq, branch("beq", 0b000));
  set(Mnemonic::kBne, branch("bne", 0b001));
  set(Mnemonic::kBlt, branch("blt", 0b100));
  set(Mnemonic::kBge, branch("bge", 0b101));
  set(Mnemonic::kBltu, branch("bltu", 0b110));
  set(Mnemonic::kBgeu, branch("bgeu", 0b111));
  set(Mnemonic::kLb, load_i("lb", 0b000));
  set(Mnemonic::kLh, load_i("lh", 0b001));
  set(Mnemonic::kLw, load_i("lw", 0b010));
  set(Mnemonic::kLbu, load_i("lbu", 0b100));
  set(Mnemonic::kLhu, load_i("lhu", 0b101));
  set(Mnemonic::kSb, store_i("sb", 0b000));
  set(Mnemonic::kSh, store_i("sh", 0b001));
  set(Mnemonic::kSw, store_i("sw", 0b010));
  set(Mnemonic::kAddi, alu_i("addi", 0b000));
  set(Mnemonic::kSlti, alu_i("slti", 0b010));
  set(Mnemonic::kSltiu, alu_i("sltiu", 0b011));
  set(Mnemonic::kXori, alu_i("xori", 0b100));
  set(Mnemonic::kOri, alu_i("ori", 0b110));
  set(Mnemonic::kAndi, alu_i("andi", 0b111));
  set(Mnemonic::kSlli, shift_i("slli", 0b001, 0b0000000));
  set(Mnemonic::kSrli, shift_i("srli", 0b101, 0b0000000));
  set(Mnemonic::kSrai, shift_i("srai", 0b101, 0b0100000));
  set(Mnemonic::kAdd, alu_r("add", 0b000, 0b0000000));
  set(Mnemonic::kSub, alu_r("sub", 0b000, 0b0100000));
  set(Mnemonic::kSll, alu_r("sll", 0b001, 0b0000000));
  set(Mnemonic::kSlt, alu_r("slt", 0b010, 0b0000000));
  set(Mnemonic::kSltu, alu_r("sltu", 0b011, 0b0000000));
  set(Mnemonic::kXor, alu_r("xor", 0b100, 0b0000000));
  set(Mnemonic::kSrl, alu_r("srl", 0b101, 0b0000000));
  set(Mnemonic::kSra, alu_r("sra", 0b101, 0b0100000));
  set(Mnemonic::kOr, alu_r("or", 0b110, 0b0000000));
  set(Mnemonic::kAnd, alu_r("and", 0b111, 0b0000000));
  set(Mnemonic::kFence, mk("fence", Format::kFixed, ExecUnit::kSys, FpuClass::kNone, N, N, N, N,
                           Enc{kMiscMem, 0x0000707F}));
  set(Mnemonic::kEcall, mk("ecall", Format::kFixed, ExecUnit::kSys, FpuClass::kNone, N, N, N, N,
                           whole(0x00000073)));
  set(Mnemonic::kEbreak, mk("ebreak", Format::kFixed, ExecUnit::kSys, FpuClass::kNone, N, N, N, N,
                            whole(0x00100073)));
  // ---- Zicsr ----
  set(Mnemonic::kCsrrw, csr_r("csrrw", 0b001));
  set(Mnemonic::kCsrrs, csr_r("csrrs", 0b010));
  set(Mnemonic::kCsrrc, csr_r("csrrc", 0b011));
  set(Mnemonic::kCsrrwi, csr_i("csrrwi", 0b101));
  set(Mnemonic::kCsrrsi, csr_i("csrrsi", 0b110));
  set(Mnemonic::kCsrrci, csr_i("csrrci", 0b111));
  // ---- M ----
  set(Mnemonic::kMul, alu_r("mul", 0b000, 0b0000001, ExecUnit::kMul));
  set(Mnemonic::kMulh, alu_r("mulh", 0b001, 0b0000001, ExecUnit::kMul));
  set(Mnemonic::kMulhsu, alu_r("mulhsu", 0b010, 0b0000001, ExecUnit::kMul));
  set(Mnemonic::kMulhu, alu_r("mulhu", 0b011, 0b0000001, ExecUnit::kMul));
  set(Mnemonic::kDiv, alu_r("div", 0b100, 0b0000001, ExecUnit::kDiv));
  set(Mnemonic::kDivu, alu_r("divu", 0b101, 0b0000001, ExecUnit::kDiv));
  set(Mnemonic::kRem, alu_r("rem", 0b110, 0b0000001, ExecUnit::kDiv));
  set(Mnemonic::kRemu, alu_r("remu", 0b111, 0b0000001, ExecUnit::kDiv));
  // ---- F ----
  set(Mnemonic::kFlw, mk("flw", Format::kILoad, ExecUnit::kFpLoad, FpuClass::kNone, F, I, N, N,
                         f3(op(kLoadFp), 0b010)));
  set(Mnemonic::kFsw, mk("fsw", Format::kS, ExecUnit::kFpStore, FpuClass::kNone, N, I, F, N,
                         f3(op(kStoreFp), 0b010)));
  set(Mnemonic::kFmaddS, fma("fmadd.s", kMadd, 0b00));
  set(Mnemonic::kFmsubS, fma("fmsub.s", kMsub, 0b00));
  set(Mnemonic::kFnmsubS, fma("fnmsub.s", kNmsub, 0b00));
  set(Mnemonic::kFnmaddS, fma("fnmadd.s", kNmadd, 0b00));
  set(Mnemonic::kFaddS, fp_rr("fadd.s", 0b0000000, FpuClass::kAdd));
  set(Mnemonic::kFsubS, fp_rr("fsub.s", 0b0000100, FpuClass::kAdd));
  set(Mnemonic::kFmulS, fp_rr("fmul.s", 0b0001000, FpuClass::kMul));
  set(Mnemonic::kFdivS, fp_rr("fdiv.s", 0b0001100, FpuClass::kDivSqrt));
  set(Mnemonic::kFsqrtS, fp_cvt("fsqrt.s", 0b0101100, 0b00000, F, F));
  set(Mnemonic::kFsgnjS, fp_sgnj("fsgnj.s", 0b0010000, 0b000, FpuClass::kMove));
  set(Mnemonic::kFsgnjnS, fp_sgnj("fsgnjn.s", 0b0010000, 0b001, FpuClass::kMove));
  set(Mnemonic::kFsgnjxS, fp_sgnj("fsgnjx.s", 0b0010000, 0b010, FpuClass::kMove));
  set(Mnemonic::kFminS, fp_sgnj("fmin.s", 0b0010100, 0b000, FpuClass::kMinMax));
  set(Mnemonic::kFmaxS, fp_sgnj("fmax.s", 0b0010100, 0b001, FpuClass::kMinMax));
  set(Mnemonic::kFcvtWS, fp_cvt("fcvt.w.s", 0b1100000, 0b00000, I, F));
  set(Mnemonic::kFcvtWuS, fp_cvt("fcvt.wu.s", 0b1100000, 0b00001, I, F));
  set(Mnemonic::kFmvXW, mk("fmv.x.w", Format::kRFp1, ExecUnit::kFpu, FpuClass::kMove, I, F, N, N,
                           rs2f(f7(f3(op(kOpFp), 0b000), 0b1110000), 0)));
  set(Mnemonic::kFeqS, fp_cmp("feq.s", 0b1010000, 0b010));
  set(Mnemonic::kFltS, fp_cmp("flt.s", 0b1010000, 0b001));
  set(Mnemonic::kFleS, fp_cmp("fle.s", 0b1010000, 0b000));
  set(Mnemonic::kFclassS, mk("fclass.s", Format::kRFp1, ExecUnit::kFpu, FpuClass::kClass, I, F, N, N,
                             rs2f(f7(f3(op(kOpFp), 0b001), 0b1110000), 0)));
  set(Mnemonic::kFcvtSW, fp_cvt("fcvt.s.w", 0b1101000, 0b00000, F, I));
  set(Mnemonic::kFcvtSWu, fp_cvt("fcvt.s.wu", 0b1101000, 0b00001, F, I));
  set(Mnemonic::kFmvWX, mk("fmv.w.x", Format::kRFp1, ExecUnit::kFpu, FpuClass::kMove, F, I, N, N,
                           rs2f(f7(f3(op(kOpFp), 0b000), 0b1111000), 0)));
  // ---- D ----
  set(Mnemonic::kFld, mk("fld", Format::kILoad, ExecUnit::kFpLoad, FpuClass::kNone, F, I, N, N,
                         f3(op(kLoadFp), 0b011)));
  set(Mnemonic::kFsd, mk("fsd", Format::kS, ExecUnit::kFpStore, FpuClass::kNone, N, I, F, N,
                         f3(op(kStoreFp), 0b011)));
  set(Mnemonic::kFmaddD, fma("fmadd.d", kMadd, 0b01));
  set(Mnemonic::kFmsubD, fma("fmsub.d", kMsub, 0b01));
  set(Mnemonic::kFnmsubD, fma("fnmsub.d", kNmsub, 0b01));
  set(Mnemonic::kFnmaddD, fma("fnmadd.d", kNmadd, 0b01));
  set(Mnemonic::kFaddD, fp_rr("fadd.d", 0b0000001, FpuClass::kAdd));
  set(Mnemonic::kFsubD, fp_rr("fsub.d", 0b0000101, FpuClass::kAdd));
  set(Mnemonic::kFmulD, fp_rr("fmul.d", 0b0001001, FpuClass::kMul));
  set(Mnemonic::kFdivD, fp_rr("fdiv.d", 0b0001101, FpuClass::kDivSqrt));
  set(Mnemonic::kFsqrtD, fp_cvt("fsqrt.d", 0b0101101, 0b00000, F, F));
  set(Mnemonic::kFsgnjD, fp_sgnj("fsgnj.d", 0b0010001, 0b000, FpuClass::kMove));
  set(Mnemonic::kFsgnjnD, fp_sgnj("fsgnjn.d", 0b0010001, 0b001, FpuClass::kMove));
  set(Mnemonic::kFsgnjxD, fp_sgnj("fsgnjx.d", 0b0010001, 0b010, FpuClass::kMove));
  set(Mnemonic::kFminD, fp_sgnj("fmin.d", 0b0010101, 0b000, FpuClass::kMinMax));
  set(Mnemonic::kFmaxD, fp_sgnj("fmax.d", 0b0010101, 0b001, FpuClass::kMinMax));
  set(Mnemonic::kFcvtSD, fp_cvt("fcvt.s.d", 0b0100000, 0b00001, F, F));
  set(Mnemonic::kFcvtDS, fp_cvt("fcvt.d.s", 0b0100001, 0b00000, F, F));
  set(Mnemonic::kFeqD, fp_cmp("feq.d", 0b1010001, 0b010));
  set(Mnemonic::kFltD, fp_cmp("flt.d", 0b1010001, 0b001));
  set(Mnemonic::kFleD, fp_cmp("fle.d", 0b1010001, 0b000));
  set(Mnemonic::kFclassD, mk("fclass.d", Format::kRFp1, ExecUnit::kFpu, FpuClass::kClass, I, F, N, N,
                             rs2f(f7(f3(op(kOpFp), 0b001), 0b1110001), 0)));
  set(Mnemonic::kFcvtWD, fp_cvt("fcvt.w.d", 0b1100001, 0b00000, I, F));
  set(Mnemonic::kFcvtWuD, fp_cvt("fcvt.wu.d", 0b1100001, 0b00001, I, F));
  set(Mnemonic::kFcvtDW, fp_cvt("fcvt.d.w", 0b1101001, 0b00000, F, I));
  set(Mnemonic::kFcvtDWu, fp_cvt("fcvt.d.wu", 0b1101001, 0b00001, F, I));
  // ---- Xfrep ----
  set(Mnemonic::kFrepO, mk("frep.o", Format::kRs1Imm, ExecUnit::kFrep, FpuClass::kNone, N, I, N, N,
                           f3(op(kCustom0), 0b001)));
  set(Mnemonic::kFrepI, mk("frep.i", Format::kRs1Imm, ExecUnit::kFrep, FpuClass::kNone, N, I, N, N,
                           f3(op(kCustom0), 0b000)));
  // ---- Xssr ----
  set(Mnemonic::kScfgwi, mk("scfgwi", Format::kRs1Imm, ExecUnit::kSsrCfg, FpuClass::kNone, N, I, N, N,
                            f3(op(kCustom2), 0b010)));
  set(Mnemonic::kScfgri, mk("scfgri", Format::kRdImm, ExecUnit::kSsrCfg, FpuClass::kNone, I, N, N, N,
                            f3(op(kCustom2), 0b001)));
  // ---- Xdma ----
  set(Mnemonic::kDmsrc, mk("dmsrc", Format::kRs1Only, ExecUnit::kDma, FpuClass::kNone, N, I, N, N,
                           f3(op(kCustom2), 0b100)));
  set(Mnemonic::kDmdst, mk("dmdst", Format::kRs1Only, ExecUnit::kDma, FpuClass::kNone, N, I, N, N,
                           f3(op(kCustom2), 0b101)));
  set(Mnemonic::kDmcpy, mk("dmcpy", Format::kRdRs1, ExecUnit::kDma, FpuClass::kNone, I, I, N, N,
                           f3(op(kCustom2), 0b110)));
  set(Mnemonic::kDmstat, mk("dmstat", Format::kRdOnly, ExecUnit::kDma, FpuClass::kNone, I, N, N, N,
                            f3(op(kCustom2), 0b111)));
  // dmwait blocks the issue slot until the DMA queue drains — the hardware
  // equivalent of the dmstat/bnez poll loop, but with a provable wake time
  // the skip-ahead clock can jump over (funct3=000 is the one free slot in
  // the custom-2 Xssr/Xdma space).
  set(Mnemonic::kDmwait, mk("dmwait", Format::kFixed, ExecUnit::kDma, FpuClass::kNone, N, N, N, N,
                            whole(kCustom2)));
  // ---- Xcopift: copies of the "D" encodings in custom-1, all-FP operands.
  auto cop_cvt = [](std::string_view nm, std::uint32_t funct7, std::uint32_t rs2field) {
    return mk(nm, Format::kRFp1Rm, ExecUnit::kFpu, FpuClass::kCvt, F, F, N, N,
              rs2f(f7(op(kCustom1), funct7), rs2field), /*xcop=*/true);
  };
  auto cop_cmp = [](std::string_view nm, std::uint32_t funct3) {
    return mk(nm, Format::kR, ExecUnit::kFpu, FpuClass::kCmp, F, F, F, N,
              f7(f3(op(kCustom1), funct3), 0b1010001), /*xcop=*/true);
  };
  set(Mnemonic::kFcvtWDCop, cop_cvt("fcvt.w.d.cop", 0b1100001, 0b00000));
  set(Mnemonic::kFcvtWuDCop, cop_cvt("fcvt.wu.d.cop", 0b1100001, 0b00001));
  set(Mnemonic::kFcvtDWCop, cop_cvt("fcvt.d.w.cop", 0b1101001, 0b00000));
  set(Mnemonic::kFcvtDWuCop, cop_cvt("fcvt.d.wu.cop", 0b1101001, 0b00001));
  set(Mnemonic::kFeqDCop, cop_cmp("feq.d.cop", 0b010));
  set(Mnemonic::kFltDCop, cop_cmp("flt.d.cop", 0b001));
  set(Mnemonic::kFleDCop, cop_cmp("fle.d.cop", 0b000));
  set(Mnemonic::kFclassDCop, mk("fclass.d.cop", Format::kRFp1, ExecUnit::kFpu, FpuClass::kClass,
                                F, F, N, N, rs2f(f7(f3(op(kCustom1), 0b001), 0b1110001), 0),
                                /*xcop=*/true));
  set(Mnemonic::kCopiftBarrier, mk("copift.barrier", Format::kFixed, ExecUnit::kBarrier,
                                   FpuClass::kNone, N, N, N, N, whole(kCustom1)));
  return t;
}

constexpr auto kTable = build_table();

// Sanity: every slot must have been filled.
constexpr bool all_filled() {
  for (const auto& e : kTable) {
    if (e.name.empty()) return false;
  }
  return true;
}
static_assert(all_filled(), "instruction table has unfilled entries");

}  // namespace

const InstrInfo& info(Mnemonic m) noexcept {
  return kTable[static_cast<std::size_t>(m)];
}

std::optional<Mnemonic> mnemonic_by_name(std::string_view nm) {
  for (std::size_t i = 0; i < kNumMnemonics; ++i) {
    if (kTable[i].name == nm) return static_cast<Mnemonic>(i);
  }
  return std::nullopt;
}

std::string_view name(Mnemonic m) noexcept { return info(m).name; }

}  // namespace copift::isa

// Reproduces paper Table I: characteristics of the evaluated kernels.
//
// Static integer/FP instruction counts come from the generated steady-state
// loop bodies (normalized per baseline unroll group: 4 elements for exp/log,
// 8 samples for the Monte Carlo kernels); the load/store deltas compare the
// COPIFT body with the baseline; buffer counts and maximum block sizes
// reflect the kernels' actual TCDM arenas; I', S'' and S' are the paper's
// analytical estimates (Eq. 1-3). The marginal counters come straight from
// one steady-mode engine experiment (12 grid points, run in parallel).
#include <cstdio>

#include "bench_util.hpp"
#include "core/model.hpp"

namespace {

using namespace copift;
using core::InstrMix;
using workload::Variant;

struct BodyCounts {
  InstrMix mix;
  unsigned int_ldst = 0;
  unsigned fp_ldst = 0;
};

/// Dynamic per-unroll-group instruction counts from a steady-state row
/// (marginal between two problem sizes, so prologue/setup cancel out).
BodyCounts body_counts(const engine::ResultRow& row, std::string_view name, std::uint32_t n1,
                       std::uint32_t n2) {
  const double group = kernels::is_transcendental(name) ? 4.0 : 8.0;
  const double groups = (n2 - n1) / group;
  const auto& delta = row.steady_region;
  BodyCounts out;
  const auto per_group = [groups](std::uint64_t d) {
    return static_cast<std::uint64_t>(d / groups + 0.5);
  };
  out.mix.n_int = per_group(delta.int_retired);
  out.mix.n_fp = per_group(delta.fp_retired);
  out.int_ldst = static_cast<unsigned>(per_group(delta.int_load + delta.int_store));
  out.fp_ldst = static_cast<unsigned>(per_group(delta.fp_load + delta.fp_store));
  return out;
}

/// TCDM bytes per element of block buffering in the COPIFT variants
/// (from the kernels' arena layouts) and buffer/replica counts.
struct BufferInfo {
  unsigned logical_buffers;   // distinct spill buffers (paper "#Buff." step 4)
  unsigned replicas_total;    // buffers after multi-buffering (steps 5-6)
  unsigned bytes_per_element; // arena + in/out bytes per element
};

BufferInfo buffer_info(std::string_view name) {
  if (name == "exp") {
    // arena: [ki | w | t] x 3 slots (8 B each) + x,y blocks resident.
    return {3, 9, 3 * 3 * 8 + 16};
  }
  if (name == "log") {
    // izk cells (16 B/elem) + idx (8 B/elem), double-buffered; x,y blocks.
    return {2, 4, 2 * (16 + 8) + 12};
  }
  // MC: raw (x, y) pair cells, double-buffered; no in/out arrays.
  return {1, 2, 2 * 16};
}

}  // namespace

int main(int argc, char** argv) {
  constexpr std::uint32_t kBlock = 96;
  constexpr std::uint32_t kN1 = 10 * kBlock;
  constexpr std::uint32_t kN2 = 20 * kBlock;

  try {
  copift::engine::SimEngine pool(copift::bench::parse_threads(argc, argv));
  copift::bench::SteadyConfig sc{kN1, kN2, kBlock,
                                 copift::bench::parse_cores(argc, argv)};
  const auto table = copift::bench::steady_table(pool, sc);

  for (const std::uint32_t cores : sc.cores) {
    if (sc.cores.size() > 1) std::printf("=== cores=%u ===\n", cores);
    // The paper reports counts per baseline unroll group. The marginal
    // counters aggregate every hart, so the per-group numbers stay put as
    // the work spreads across the cluster (and drifts flag imbalance).
    std::printf("Table I: characteristics of the evaluated kernels (paper Table I)\n");
    std::printf("Counts per unroll group (exp/log: 4 elements, MC: 8 samples)\n\n");
    std::printf(
        "%-18s | %5s %5s %5s | %7s %6s | %7s %6s | %6s | %5s %5s | %5s %5s %5s\n",
        "Kernel", "#Int", "#FP", "TI", "IntL/S", "#Buff", "FPL/S", "#Repl", "MaxBlk",
        "c#Int", "c#FP", "I'", "S''", "S'");
    for (const auto name : copift::bench::kPaperOrder) {
      const auto base = body_counts(
          copift::bench::row_of(table, name, Variant::kBaseline, cores), name, kN1, kN2);
      const auto cop = body_counts(
          copift::bench::row_of(table, name, Variant::kCopift, cores), name, kN1, kN2);
      core::SpeedupModel model;
      model.base = base.mix;
      model.copift = cop.mix;
      const BufferInfo buf = buffer_info(name);
      const std::uint64_t max_block = (96 * 1024ull) / buf.bytes_per_element / cores;
      std::printf(
          "%-18s | %5llu %5llu %5.2f | %+7d %6u | %+7d %6u | %6llu | %5llu %5llu |"
          " %5.2f %5.2f %5.2f\n",
          std::string(name).c_str(), (unsigned long long)base.mix.n_int,
          (unsigned long long)base.mix.n_fp, base.mix.thread_imbalance(),
          static_cast<int>(cop.int_ldst) - static_cast<int>(base.int_ldst),
          buf.logical_buffers,
          static_cast<int>(cop.fp_ldst) - static_cast<int>(base.fp_ldst),
          buf.replicas_total, (unsigned long long)max_block,
          (unsigned long long)cop.mix.n_int, (unsigned long long)cop.mix.n_fp,
          model.i_prime(), model.s_double_prime(), model.s_prime());
    }
    std::printf(
        "\nPaper reference rows (expf 43/52 TI 0.83 ... pi_xoshiro128p 172/56 TI 0.33);\n"
        "see EXPERIMENTS.md for the side-by-side comparison.\n");
    if (sc.cores.size() > 1) std::printf("\n");
  }
  return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 2;
  }
}

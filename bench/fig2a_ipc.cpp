// Reproduces paper Fig. 2a: steady-state IPC of baseline vs COPIFT codes,
// with the expected IPC (I', dashed line in the paper) per kernel.
//
// One engine experiment covers all kernels in both variants; the expected
// I' comes from the marginal (steady-state) instruction mixes the same rows
// already carry, so no extra simulations are needed. `--cores v1,v2,...`
// adds a hart-count axis: the same sweep then also yields the dual-issue
// IPC-vs-cores scaling curves (every kernel partitions via mhartid and
// stays bit-exact against the single-hart reference).
#include <cstdio>
#include <vector>

#include "bench_util.hpp"
#include "core/model.hpp"

int main(int argc, char** argv) {
  using namespace copift;
  using namespace copift::bench;
  try {
  engine::SimEngine pool(parse_threads(argc, argv));
  SteadyConfig sc;
  sc.cores = parse_cores(argc, argv);
  const auto table = steady_table(pool, sc);

  for (const std::uint32_t cores : sc.cores) {
    if (sc.cores.size() > 1) std::printf("=== cores=%u ===\n", cores);
    std::printf("Fig. 2a: steady-state IPC (base vs COPIFT), kernels ordered by S'\n\n");
    std::printf("%-18s %8s %8s %8s %10s\n", "Kernel", "base", "COPIFT", "gain", "expect I'");
    std::vector<double> gains;
    std::vector<double> cop_ipcs;
    for (const auto name : kPaperOrder) {
      const auto& base = row_of(table, name, workload::Variant::kBaseline, cores);
      const auto& cop = row_of(table, name, workload::Variant::kCopift, cores);
      // Expected I' from the steady-state dynamic instruction mixes (paper Eq. 2).
      core::SpeedupModel model;
      model.copift = {cop.steady_region.int_retired, cop.steady_region.fp_retired};
      const double gain = cop.metrics.ipc / base.metrics.ipc;
      std::printf("%-18s %8.2f %8.2f %7.2fx %10.2f\n", std::string(name).c_str(),
                  base.metrics.ipc, cop.metrics.ipc, gain, model.i_prime());
      gains.push_back(gain);
      cop_ipcs.push_back(cop.metrics.ipc);
    }
    double peak = 0;
    for (const double v : cop_ipcs) peak = std::max(peak, v);
    std::printf("\ngeomean IPC improvement: %.2fx   (paper: 1.62x)\n", geomean(gains));
    std::printf("peak COPIFT IPC:         %.2f    (paper: 1.75)\n", peak);
    if (sc.cores.size() > 1) std::printf("\n");
  }

  if (sc.cores.size() > 1) {
    // Cluster-aggregate COPIFT IPC over the cores axis: the dual-issue
    // story at scale (per-hart IPC holds while throughput multiplies).
    std::printf("COPIFT cluster IPC vs cores (steady state)\n%-18s", "Kernel");
    for (const std::uint32_t cores : sc.cores) std::printf(" %7u", cores);
    std::printf("\n");
    for (const auto name : kPaperOrder) {
      std::printf("%-18s", std::string(name).c_str());
      for (const std::uint32_t cores : sc.cores) {
        std::printf(" %7.2f",
                    row_of(table, name, workload::Variant::kCopift, cores).metrics.ipc);
      }
      std::printf("\n");
    }
  }
  return 0;
  } catch (const std::exception& e) {
    // e.g. a --cores value the steady operating point cannot partition
    // (exp/copift: block=96 does not divide the per-hart chunk ...).
    std::fprintf(stderr, "error: %s\n", e.what());
    return 2;
  }
}

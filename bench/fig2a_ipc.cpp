// Reproduces paper Fig. 2a: steady-state IPC of baseline vs COPIFT codes,
// with the expected IPC (I', dashed line in the paper) per kernel.
#include <cstdio>
#include <vector>

#include "bench_util.hpp"
#include "core/model.hpp"

int main() {
  using namespace copift;
  using namespace copift::bench;
  std::printf("Fig. 2a: steady-state IPC (base vs COPIFT), kernels ordered by S'\n\n");
  std::printf("%-18s %8s %8s %8s %10s\n", "Kernel", "base", "COPIFT", "gain", "expect I'");
  std::vector<double> gains;
  std::vector<double> cop_ipcs;
  for (const auto id : kPaperOrder) {
    const auto base = steady(id, kernels::Variant::kBaseline);
    const auto cop = steady(id, kernels::Variant::kCopift);
    // Expected I' from the dynamic instruction mixes (paper Eq. 2).
    kernels::KernelConfig cfg;
    cfg.n = 1920;
    cfg.block = 96;
    const auto cop_run = kernels::run_kernel(kernels::generate(id, kernels::Variant::kCopift, cfg));
    core::SpeedupModel model;
    model.copift = {cop_run.region.int_retired, cop_run.region.fp_retired};
    std::printf("%-18s %8.2f %8.2f %7.2fx %10.2f\n", kernels::kernel_name(id).c_str(),
                base.ipc, cop.ipc, cop.ipc / base.ipc, model.i_prime());
    gains.push_back(cop.ipc / base.ipc);
    cop_ipcs.push_back(cop.ipc);
  }
  double peak = 0;
  for (const double v : cop_ipcs) peak = std::max(peak, v);
  std::printf("\ngeomean IPC improvement: %.2fx   (paper: 1.62x)\n", geomean(gains));
  std::printf("peak COPIFT IPC:         %.2f    (paper: 1.75)\n", peak);
  return 0;
}

// Simulator-throughput microbenchmarks: host throughput in simulated cycles
// and instructions per second, per kernel variant, plus assembly speed and
// the batch engine's sweep throughput.
//
// Self-contained timing harness (no google-benchmark dependency): each
// benchmark is repeated until a minimum wall-clock budget is spent, then
// reported as per-run wall time and simulated-cycles/sec. `--json FILE`
// additionally emits the results in the BENCH_simulator.json schema consumed
// by tools/check_bench_regression.py and the CI benchmark step.
//
// Usage:
//   bench_simulator [--json FILE] [--min-time SECONDS] [--filter SUBSTR]
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <functional>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "engine/experiment.hpp"
#include "kernels/runner.hpp"
#include "rvasm/assembler.hpp"
#include "sim/cluster.hpp"
#include "sim/topology.hpp"
#include "workload/workload.hpp"

namespace {

using namespace copift;
using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

struct BenchResult {
  std::string name;
  std::uint64_t runs = 0;
  double wall_s = 0.0;            // total measured wall time
  std::uint64_t sim_cycles = 0;   // total simulated cycles across runs
  std::uint64_t sim_instrs = 0;   // total retired instructions across runs
  std::uint64_t items = 0;        // benchmark-specific unit (programs, grid points)

  [[nodiscard]] double wall_ms_per_run() const {
    return runs == 0 ? 0.0 : wall_s * 1e3 / static_cast<double>(runs);
  }
  [[nodiscard]] double cycles_per_sec() const {
    return wall_s <= 0.0 ? 0.0 : static_cast<double>(sim_cycles) / wall_s;
  }
  [[nodiscard]] double instrs_per_sec() const {
    return wall_s <= 0.0 ? 0.0 : static_cast<double>(sim_instrs) / wall_s;
  }
  [[nodiscard]] double items_per_sec() const {
    return wall_s <= 0.0 ? 0.0 : static_cast<double>(items) / wall_s;
  }
};

/// One benchmark body: performs a single run and adds its totals to `r`
/// (sim_cycles/sim_instrs/items as applicable).
using BenchFn = std::function<void(BenchResult&)>;

/// Repeat `fn` (after one untimed warmup) until `min_time` seconds have been
/// measured and at least three runs completed.
BenchResult measure(const std::string& name, double min_time, const BenchFn& fn) {
  BenchResult r;
  r.name = name;
  {
    BenchResult warmup;
    fn(warmup);
  }
  const auto start = Clock::now();
  do {
    fn(r);
    ++r.runs;
    r.wall_s = seconds_since(start);
  } while (r.wall_s < min_time || r.runs < 3);
  return r;
}

/// Single-run simulation throughput of one workload variant.
BenchFn sim_bench(std::string_view workload, workload::Variant variant, std::uint32_t cores) {
  workload::WorkloadConfig cfg;
  cfg.n = 1024;
  cfg.block = 64;
  cfg.cores = cores;
  const auto generated = workload::generate(workload, variant, cfg);
  // Assemble once; every iteration shares the immutable program.
  const auto program = kernels::assemble_kernel(generated);
  return [generated, program, cores](BenchResult& r) {
    sim::Cluster cluster(program, sim::ClusterTopology().cores(cores));
    kernels::populate_inputs(cluster, generated);
    const auto result = cluster.run();
    r.sim_cycles += result.cycles;
    r.sim_instrs += cluster.counters().retired();
  };
}

/// Beyond-TCDM throughput: one tiled run (arrays in DRAM, double-buffered
/// DMA, DRAM timing on) so the regression gate covers the dram/dma tick path
/// and the tile-loop codegen, not just TCDM-resident simulation.
BenchFn tiled_bench(std::string_view workload, workload::Variant variant, std::uint32_t n,
                    std::uint32_t tile, std::uint32_t cores) {
  workload::WorkloadConfig cfg;
  cfg.n = n;
  cfg.block = 64;
  cfg.cores = cores;
  cfg.tile = tile;
  const auto generated = workload::generate(workload, variant, cfg);
  const auto program = kernels::assemble_kernel(generated);
  sim::SimParams params;
  params.num_cores = cores;
  params.dram_enabled = true;
  return [generated, program, params](BenchResult& r) {
    sim::Cluster cluster(program, params);
    kernels::populate_inputs(cluster, generated);
    const auto result = cluster.run();
    r.sim_cycles += result.cycles;
    r.sim_instrs += cluster.counters().retired();
  };
}

/// Assembly throughput (programs/sec) for the exp/copift kernel.
BenchFn assemble_bench() {
  workload::WorkloadConfig cfg;
  cfg.n = 1024;
  cfg.block = 64;
  const auto generated = workload::generate("exp", workload::Variant::kCopift, cfg);
  return [generated](BenchResult& r) {
    const auto program = rvasm::assemble(generated.source);
    if (program.text.empty()) throw Error("assemble benchmark produced empty program");
    r.items += 1;
  };
}

/// Engine sweep throughput: an 8-point block sweep per run on `threads`
/// workers (grid points/sec).
BenchFn sweep_bench(unsigned threads) {
  auto pool = std::make_shared<engine::SimEngine>(threads);
  return [pool](BenchResult& r) {
    const auto table = engine::Experiment()
                           .over("poly_lcg")
                           .over(workload::Variant::kCopift)
                           .n(768)
                           .sweep({16, 24, 32, 48, 64, 96, 128, 192})
                           .verify(false)
                           .run(*pool);
    r.items += table.size();
    for (const auto& row : table.rows()) r.sim_cycles += row.run.result.cycles;
  };
}

void print_result(const BenchResult& r) {
  std::printf("%-24s %8llu runs  %10.3f ms/run", r.name.c_str(),
              static_cast<unsigned long long>(r.runs), r.wall_ms_per_run());
  if (r.sim_cycles > 0) {
    std::printf("  %12.3e sim_cycles/s", r.cycles_per_sec());
  }
  if (r.sim_instrs > 0) {
    std::printf("  %12.3e sim_instrs/s", r.instrs_per_sec());
  }
  if (r.items > 0) {
    std::printf("  %10.2f items/s", r.items_per_sec());
  }
  std::printf("\n");
}

void write_json(const std::string& path, const std::vector<BenchResult>& results) {
  std::ofstream out(path);
  if (!out) {
    std::fprintf(stderr, "error: cannot write %s\n", path.c_str());
    std::exit(1);
  }
  out << "{\n  \"schema\": \"copift-bench-simulator/1\",\n  \"benchmarks\": [\n";
  for (std::size_t i = 0; i < results.size(); ++i) {
    const auto& r = results[i];
    char buf[512];
    std::snprintf(buf, sizeof(buf),
                  "    {\"name\": \"%s\", \"runs\": %llu, \"wall_ms_per_run\": %.4f, "
                  "\"sim_cycles_per_run\": %.1f, \"sim_cycles_per_sec\": %.1f, "
                  "\"sim_instrs_per_sec\": %.1f, \"items_per_sec\": %.4f}%s\n",
                  r.name.c_str(), static_cast<unsigned long long>(r.runs), r.wall_ms_per_run(),
                  r.runs == 0 ? 0.0 : static_cast<double>(r.sim_cycles) / static_cast<double>(r.runs),
                  r.cycles_per_sec(), r.instrs_per_sec(), r.items_per_sec(),
                  i + 1 < results.size() ? "," : "");
    out << buf;
  }
  out << "  ]\n}\n";
}

}  // namespace

int main(int argc, char** argv) {
  std::string json_path;
  std::string filter;
  double min_time = 0.5;
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    if (arg == "--json" && i + 1 < argc) {
      json_path = argv[++i];
    } else if (arg == "--min-time" && i + 1 < argc) {
      char* end = nullptr;
      min_time = std::strtod(argv[++i], &end);
      if (end == nullptr || *end != '\0' || min_time <= 0.0) {
        std::fprintf(stderr, "error: invalid --min-time value\n");
        return 2;
      }
    } else if (arg == "--filter" && i + 1 < argc) {
      filter = argv[++i];
    } else {
      std::fprintf(stderr,
                   "usage: bench_simulator [--json FILE] [--min-time SECONDS] [--filter SUBSTR]\n");
      return 2;
    }
  }

  struct Spec {
    const char* name;
    BenchFn fn;
  };
  std::vector<Spec> specs;
  try {
    specs.push_back({"exp_baseline", sim_bench("exp", workload::Variant::kBaseline, 1)});
    specs.push_back({"exp_copift", sim_bench("exp", workload::Variant::kCopift, 1)});
    specs.push_back({"log_copift", sim_bench("log", workload::Variant::kCopift, 1)});
    specs.push_back({"pi_lcg_copift", sim_bench("pi_lcg", workload::Variant::kCopift, 1)});
    specs.push_back({"exp_copift_cores4", sim_bench("exp", workload::Variant::kCopift, 4)});
    specs.push_back(
        {"axpy_copift_tiled_dram", tiled_bench("axpy", workload::Variant::kCopift, 65536, 1024, 2)});
    specs.push_back({"assemble", assemble_bench()});
    specs.push_back({"engine_sweep_t4", sweep_bench(4)});
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: benchmark setup failed: %s\n", e.what());
    return 1;
  }

  std::vector<BenchResult> results;
  for (const auto& spec : specs) {
    if (!filter.empty() && std::string_view(spec.name).find(filter) == std::string_view::npos) {
      continue;
    }
    try {
      const auto r = measure(spec.name, min_time, spec.fn);
      print_result(r);
      results.push_back(r);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "error: benchmark %s failed: %s\n", spec.name, e.what());
      return 1;
    }
  }

  if (!json_path.empty()) write_json(json_path, results);
  return 0;
}

// google-benchmark microbenchmarks of the simulator itself: host throughput
// in simulated cycles and instructions per second, per kernel variant, plus
// the batch engine's sweep throughput.
#include <benchmark/benchmark.h>

#include "engine/experiment.hpp"
#include "kernels/runner.hpp"
#include "rvasm/assembler.hpp"
#include "sim/cluster.hpp"

namespace {

using namespace copift;

void run_variant(benchmark::State& state, kernels::KernelId id, kernels::Variant variant) {
  kernels::KernelConfig cfg;
  cfg.n = 1024;
  cfg.block = 64;
  const auto generated = kernels::generate(id, variant, cfg);
  // Assemble once; every iteration shares the immutable program.
  const auto program = kernels::assemble_kernel(generated);
  std::uint64_t cycles = 0;
  std::uint64_t instrs = 0;
  for (auto _ : state) {
    sim::Cluster cluster(program);
    kernels::populate_inputs(cluster, generated);
    const auto result = cluster.run();
    cycles += result.cycles;
    instrs += cluster.counters().retired();
    benchmark::DoNotOptimize(result.cycles);
  }
  state.counters["sim_cycles/s"] =
      benchmark::Counter(static_cast<double>(cycles), benchmark::Counter::kIsRate);
  state.counters["sim_instrs/s"] =
      benchmark::Counter(static_cast<double>(instrs), benchmark::Counter::kIsRate);
}

void BM_ExpBaseline(benchmark::State& s) {
  run_variant(s, kernels::KernelId::kExp, kernels::Variant::kBaseline);
}
void BM_ExpCopift(benchmark::State& s) {
  run_variant(s, kernels::KernelId::kExp, kernels::Variant::kCopift);
}
void BM_PiLcgCopift(benchmark::State& s) {
  run_variant(s, kernels::KernelId::kPiLcg, kernels::Variant::kCopift);
}
void BM_LogCopift(benchmark::State& s) {
  run_variant(s, kernels::KernelId::kLog, kernels::Variant::kCopift);
}

void BM_Assemble(benchmark::State& s) {
  kernels::KernelConfig cfg;
  cfg.n = 1024;
  cfg.block = 64;
  const auto generated =
      kernels::generate(kernels::KernelId::kExp, kernels::Variant::kCopift, cfg);
  for (auto _ : s) {
    auto program = rvasm::assemble(generated.source);
    benchmark::DoNotOptimize(program.text.size());
  }
}

/// Engine sweep throughput: a 8-point block sweep per iteration, at the
/// pool size given by --benchmark arg (thread counts via BENCHMARK Range).
void BM_EngineBlockSweep(benchmark::State& s) {
  engine::SimEngine pool(static_cast<unsigned>(s.range(0)));
  std::uint64_t points = 0;
  for (auto _ : s) {
    const auto table = engine::Experiment()
                           .over("poly_lcg")
                           .over(kernels::Variant::kCopift)
                           .n(768)
                           .sweep({16, 24, 32, 48, 64, 96, 128, 192})
                           .verify(false)
                           .run(pool);
    points += table.size();
    benchmark::DoNotOptimize(table.rows().data());
  }
  s.counters["grid_points/s"] =
      benchmark::Counter(static_cast<double>(points), benchmark::Counter::kIsRate);
}

BENCHMARK(BM_ExpBaseline)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_ExpCopift)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_PiLcgCopift)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_LogCopift)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Assemble)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_EngineBlockSweep)->Arg(1)->Arg(2)->Arg(4)->Arg(8)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();

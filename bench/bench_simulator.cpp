// google-benchmark microbenchmarks of the simulator itself: host throughput
// in simulated cycles and instructions per second, per kernel variant.
#include <benchmark/benchmark.h>

#include "kernels/runner.hpp"
#include "rvasm/assembler.hpp"
#include "sim/cluster.hpp"

namespace {

using namespace copift;

void run_variant(benchmark::State& state, kernels::KernelId id, kernels::Variant variant) {
  kernels::KernelConfig cfg;
  cfg.n = 1024;
  cfg.block = 64;
  const auto generated = kernels::generate(id, variant, cfg);
  std::uint64_t cycles = 0;
  std::uint64_t instrs = 0;
  for (auto _ : state) {
    sim::Cluster cluster(rvasm::assemble(generated.source));
    kernels::populate_inputs(cluster, generated);
    const auto result = cluster.run();
    cycles += result.cycles;
    instrs += cluster.counters().retired();
    benchmark::DoNotOptimize(result.cycles);
  }
  state.counters["sim_cycles/s"] =
      benchmark::Counter(static_cast<double>(cycles), benchmark::Counter::kIsRate);
  state.counters["sim_instrs/s"] =
      benchmark::Counter(static_cast<double>(instrs), benchmark::Counter::kIsRate);
}

void BM_ExpBaseline(benchmark::State& s) {
  run_variant(s, kernels::KernelId::kExp, kernels::Variant::kBaseline);
}
void BM_ExpCopift(benchmark::State& s) {
  run_variant(s, kernels::KernelId::kExp, kernels::Variant::kCopift);
}
void BM_PiLcgCopift(benchmark::State& s) {
  run_variant(s, kernels::KernelId::kPiLcg, kernels::Variant::kCopift);
}
void BM_LogCopift(benchmark::State& s) {
  run_variant(s, kernels::KernelId::kLog, kernels::Variant::kCopift);
}

void BM_Assemble(benchmark::State& s) {
  kernels::KernelConfig cfg;
  cfg.n = 1024;
  cfg.block = 64;
  const auto generated =
      kernels::generate(kernels::KernelId::kExp, kernels::Variant::kCopift, cfg);
  for (auto _ : s) {
    auto program = rvasm::assemble(generated.source);
    benchmark::DoNotOptimize(program.text.size());
  }
}

BENCHMARK(BM_ExpBaseline)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_ExpCopift)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_PiLcgCopift)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_LogCopift)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Assemble)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();

// Ablation study (extension beyond the paper): how much each modeled
// mechanism contributes to COPIFT's dual-issue performance, by sweeping the
// corresponding simulator parameters.
//
// Each section is one engine experiment whose params axis enumerates the
// mechanism's settings; the programs are assembled once per kernel and
// shared across all parameter variants (ProgramCache), and the runs execute
// in parallel on the worker pool.
#include <cstdio>
#include <string>

#include "bench_util.hpp"

namespace {

using namespace copift;
using workload::Variant;

double ipc_of(const engine::ResultTable& table, std::string_view name, Variant variant,
              const std::string& label) {
  const auto* row = table.find(name, variant, 0, 0, label);
  if (row == nullptr) throw Error("missing ablation row");
  return row->run.ipc();
}

/// Sweep one SimParams knob over `values` for two COPIFT kernels and print
/// one line per value (the same list drives the sweep and the report, so
/// they cannot diverge).
template <typename Apply>
void knob_sweep(engine::SimEngine& pool, const char* label, std::string_view a,
                std::string_view b, std::initializer_list<unsigned> values, Apply&& apply) {
  engine::Experiment e;
  e.over({a, b}).over(Variant::kCopift).n(1920).block(96);
  for (const unsigned v : values) {
    sim::SimParams p;
    apply(p, v);
    e.with_params(std::to_string(v), p);
  }
  const auto t = e.run(pool);
  for (const unsigned v : values) {
    std::printf("  %s %2u: %s %.3f  %s %.3f\n", label, v,
                std::string(a).c_str(), ipc_of(t, a, Variant::kCopift, std::to_string(v)),
                std::string(b).c_str(), ipc_of(t, b, Variant::kCopift, std::to_string(v)));
  }
}

}  // namespace

int main(int argc, char** argv) {
  engine::SimEngine pool(bench::parse_threads(argc, argv));
  std::printf("Ablations: COPIFT IPC sensitivity to the modeled mechanisms\n\n");

  std::printf("[offload FIFO depth] (decoupling between integer core and FPSS)\n");
  knob_sweep(pool, "depth", "exp", "pi_lcg", {2u, 4u, 8u, 16u},
             [](sim::SimParams& p, unsigned v) { p.offload_fifo_depth = v; });

  std::printf("\n[SSR config latency] (per-block lane-arming cost, drives Fig. 3)\n");
  knob_sweep(pool, "latency", "exp", "poly_lcg", {1u, 5u, 10u, 20u},
             [](sim::SimParams& p, unsigned v) { p.ssr_cfg_latency = v; });

  std::printf("\n[FPU FMA latency] (dependency chains inside FREP bodies)\n");
  knob_sweep(pool, "latency", "poly_lcg", "log", {2u, 3u, 4u, 6u}, [](sim::SimParams& p, unsigned v) {
               p.fpu.fma = v;
               p.fpu.add = v;
               p.fpu.mul = v;
             });

  std::printf("\n[TCDM banks] (SSR/LSU bank conflicts)\n");
  knob_sweep(pool, "banks", "exp", "log", {2u, 4u, 8u, 32u},
             [](sim::SimParams& p, unsigned v) { p.num_tcdm_banks = v; });

  std::printf("\n[SSR FIFO depth] (stream prefetch slack)\n");
  knob_sweep(pool, "depth", "exp", "pi_lcg", {1u, 2u, 4u, 8u},
             [](sim::SimParams& p, unsigned v) { p.ssr_fifo_depth = v; });

  std::printf("\n[mul latency] (the LCG writeback-port hazard, paper Section III-A)\n");
  {
    const std::initializer_list<unsigned> lats = {1u, 2u, 3u, 5u};
    engine::Experiment e;
    e.over("pi_lcg")
        .over({Variant::kBaseline, Variant::kCopift})
        .n(1920)
        .block(96);
    for (const unsigned lat : lats) {
      sim::SimParams p;
      p.mul_latency = lat;
      e.with_params(std::to_string(lat), p);
    }
    const auto t = e.run(pool);
    for (const unsigned lat : lats) {
      const auto* base = t.find("pi_lcg", Variant::kBaseline, 0, 0, std::to_string(lat));
      const auto* cop = t.find("pi_lcg", Variant::kCopift, 0, 0, std::to_string(lat));
      if (base == nullptr || cop == nullptr) throw Error("missing ablation row");
      std::printf("  latency %u: pi_lcg base %.3f copift %.3f (speedup %.2fx, wb stalls %llu)\n",
                  lat, base->run.ipc(), cop->run.ipc(),
                  static_cast<double>(base->run.region.cycles) / cop->run.region.cycles,
                  static_cast<unsigned long long>(cop->run.region.stall_wb_port));
    }
  }
  return 0;
}

// Ablation study (extension beyond the paper): how much each modeled
// mechanism contributes to COPIFT's dual-issue performance, by sweeping the
// corresponding simulator parameters.
#include <cstdio>

#include "bench_util.hpp"

namespace {

using namespace copift;

double copift_ipc(kernels::KernelId id, const sim::SimParams& params) {
  kernels::KernelConfig cfg;
  cfg.n = 1920;
  cfg.block = 96;
  return kernels::run_kernel(kernels::generate(id, kernels::Variant::kCopift, cfg), params)
      .ipc();
}

}  // namespace

int main() {
  using kernels::KernelId;
  std::printf("Ablations: COPIFT IPC sensitivity to the modeled mechanisms\n\n");

  const sim::SimParams def;
  std::printf("[offload FIFO depth] (decoupling between integer core and FPSS)\n");
  for (const unsigned depth : {2u, 4u, 8u, 16u}) {
    sim::SimParams p = def;
    p.offload_fifo_depth = depth;
    std::printf("  depth %2u: exp %.3f  pi_lcg %.3f\n", depth,
                copift_ipc(KernelId::kExp, p), copift_ipc(KernelId::kPiLcg, p));
  }

  std::printf("\n[SSR config latency] (per-block lane-arming cost, drives Fig. 3)\n");
  for (const unsigned lat : {1u, 5u, 10u, 20u}) {
    sim::SimParams p = def;
    p.ssr_cfg_latency = lat;
    std::printf("  latency %2u: exp %.3f  poly_lcg %.3f\n", lat,
                copift_ipc(KernelId::kExp, p), copift_ipc(KernelId::kPolyLcg, p));
  }

  std::printf("\n[FPU FMA latency] (dependency chains inside FREP bodies)\n");
  for (const unsigned lat : {2u, 3u, 4u, 6u}) {
    sim::SimParams p = def;
    p.fpu.fma = lat;
    p.fpu.add = lat;
    p.fpu.mul = lat;
    std::printf("  latency %u: poly_lcg %.3f  log %.3f\n", lat,
                copift_ipc(KernelId::kPolyLcg, p), copift_ipc(KernelId::kLog, p));
  }

  std::printf("\n[TCDM banks] (SSR/LSU bank conflicts)\n");
  for (const unsigned banks : {2u, 4u, 8u, 32u}) {
    sim::SimParams p = def;
    p.num_tcdm_banks = banks;
    std::printf("  banks %2u: exp %.3f  log %.3f\n", banks,
                copift_ipc(KernelId::kExp, p), copift_ipc(KernelId::kLog, p));
  }

  std::printf("\n[SSR FIFO depth] (stream prefetch slack)\n");
  for (const unsigned depth : {1u, 2u, 4u, 8u}) {
    sim::SimParams p = def;
    p.ssr_fifo_depth = depth;
    std::printf("  depth %u: exp %.3f  pi_lcg %.3f\n", depth,
                copift_ipc(KernelId::kExp, p), copift_ipc(KernelId::kPiLcg, p));
  }

  std::printf("\n[mul latency] (the LCG writeback-port hazard, paper Section III-A)\n");
  for (const unsigned lat : {1u, 2u, 3u, 5u}) {
    sim::SimParams p = def;
    p.mul_latency = lat;
    kernels::KernelConfig cfg;
    cfg.n = 1920;
    cfg.block = 96;
    const auto base =
        kernels::run_kernel(kernels::generate(KernelId::kPiLcg, kernels::Variant::kBaseline, cfg), p);
    const auto cop =
        kernels::run_kernel(kernels::generate(KernelId::kPiLcg, kernels::Variant::kCopift, cfg), p);
    std::printf("  latency %u: pi_lcg base %.3f copift %.3f (speedup %.2fx, wb stalls %llu)\n",
                lat, base.ipc(), cop.ipc(),
                static_cast<double>(base.region.cycles) / cop.region.cycles,
                static_cast<unsigned long long>(cop.region.stall_wb_port));
  }
  return 0;
}

// Reproduces paper Fig. 2b: average power of baseline vs COPIFT codes in mW
// (activity-based energy model calibrated for GF12LP+ at 1 GHz, 0.8 V).
#include <cstdio>
#include <vector>

#include "bench_util.hpp"

int main(int argc, char** argv) {
  using namespace copift;
  using namespace copift::bench;
  engine::SimEngine pool(parse_threads(argc, argv));
  const auto table = steady_table(pool);

  std::printf("Fig. 2b: steady-state power [mW] (base vs COPIFT)\n\n");
  std::printf("%-18s %9s %9s %8s\n", "Kernel", "base mW", "COPIFT mW", "ratio");
  std::vector<double> ratios;
  double max_ratio = 0.0;
  for (const auto name : kPaperOrder) {
    const auto& base = row_of(table, name, workload::Variant::kBaseline);
    const auto& cop = row_of(table, name, workload::Variant::kCopift);
    const double ratio = cop.metrics.power_mw / base.metrics.power_mw;
    ratios.push_back(ratio);
    max_ratio = std::max(max_ratio, ratio);
    std::printf("%-18s %9.2f %9.2f %7.2fx\n", std::string(name).c_str(),
                base.metrics.power_mw, cop.metrics.power_mw, ratio);
  }
  std::printf("\ngeomean power increase: %.2fx  (paper: 1.07x)\n", geomean(ratios));
  std::printf("maximum power increase: %.2fx  (paper: 1.17x)\n", max_ratio);
  std::printf(
      "\nNotes (paper Section III-B): the Monte Carlo kernels draw less absolute\n"
      "power (idle DMA, no L1 data traffic); the COPIFT exp/log integer loops fit\n"
      "the L0 I$ and stop thrashing, damping their power increase.\n");
  return 0;
}

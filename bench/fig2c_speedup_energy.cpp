// Reproduces paper Fig. 2c: speedup and energy improvement of COPIFT over
// the optimized RV32G baselines, with the expected speedup S' (dashed).
#include <cstdio>
#include <vector>

#include "bench_util.hpp"
#include "core/model.hpp"

int main() {
  using namespace copift;
  using namespace copift::bench;
  std::printf("Fig. 2c: speedup and energy improvement (COPIFT vs base)\n\n");
  std::printf("%-18s %9s %10s %10s\n", "Kernel", "speedup", "E-improv", "expect S'");
  std::vector<double> speedups;
  std::vector<double> energies;
  double peak_speedup = 0.0;
  double peak_energy = 0.0;
  for (const auto id : kPaperOrder) {
    const auto base = steady(id, kernels::Variant::kBaseline);
    const auto cop = steady(id, kernels::Variant::kCopift);
    const double speedup = base.cycles_per_item / cop.cycles_per_item;
    const double energy = base.energy_pj_per_item / cop.energy_pj_per_item;
    // Expected speedup S' from dynamic mixes (paper Eq. 1).
    kernels::KernelConfig cfg;
    cfg.n = 1920;
    cfg.block = 96;
    const auto b = kernels::run_kernel(kernels::generate(id, kernels::Variant::kBaseline, cfg));
    const auto c = kernels::run_kernel(kernels::generate(id, kernels::Variant::kCopift, cfg));
    core::SpeedupModel model;
    model.base = {b.region.int_retired, b.region.fp_retired};
    model.copift = {c.region.int_retired, c.region.fp_retired};
    std::printf("%-18s %8.2fx %9.2fx %10.2f\n", kernels::kernel_name(id).c_str(), speedup,
                energy, model.s_prime());
    speedups.push_back(speedup);
    energies.push_back(energy);
    peak_speedup = std::max(peak_speedup, speedup);
    peak_energy = std::max(peak_energy, energy);
  }
  std::printf("\ngeomean speedup:            %.2fx  (paper: 1.47x)\n", geomean(speedups));
  std::printf("peak speedup:               %.2fx  (paper: 2.05x, exp)\n", peak_speedup);
  std::printf("geomean energy improvement: %.2fx  (paper: 1.37x)\n", geomean(energies));
  std::printf("peak energy improvement:    %.2fx  (paper: 1.93x, exp)\n", peak_energy);
  return 0;
}

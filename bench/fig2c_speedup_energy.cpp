// Reproduces paper Fig. 2c: speedup and energy improvement of COPIFT over
// the optimized RV32G baselines, with the expected speedup S' (dashed).
//
// The expected S' comes from the steady-state instruction mixes carried by
// the same engine rows — the seed's extra per-kernel warm-up runs are gone.
#include <cstdio>
#include <vector>

#include "bench_util.hpp"
#include "core/model.hpp"

int main(int argc, char** argv) {
  using namespace copift;
  using namespace copift::bench;
  engine::SimEngine pool(parse_threads(argc, argv));
  const auto table = steady_table(pool);

  std::printf("Fig. 2c: speedup and energy improvement (COPIFT vs base)\n\n");
  std::printf("%-18s %9s %10s %10s\n", "Kernel", "speedup", "E-improv", "expect S'");
  std::vector<double> speedups;
  std::vector<double> energies;
  double peak_speedup = 0.0;
  double peak_energy = 0.0;
  for (const auto name : kPaperOrder) {
    const auto& base = row_of(table, name, workload::Variant::kBaseline);
    const auto& cop = row_of(table, name, workload::Variant::kCopift);
    const double speedup = base.metrics.cycles_per_item / cop.metrics.cycles_per_item;
    const double energy = base.metrics.energy_pj_per_item / cop.metrics.energy_pj_per_item;
    // Expected speedup S' from the dynamic mixes (paper Eq. 1).
    core::SpeedupModel model;
    model.base = {base.steady_region.int_retired, base.steady_region.fp_retired};
    model.copift = {cop.steady_region.int_retired, cop.steady_region.fp_retired};
    std::printf("%-18s %8.2fx %9.2fx %10.2f\n", std::string(name).c_str(), speedup,
                energy, model.s_prime());
    speedups.push_back(speedup);
    energies.push_back(energy);
    peak_speedup = std::max(peak_speedup, speedup);
    peak_energy = std::max(peak_energy, energy);
  }
  std::printf("\ngeomean speedup:            %.2fx  (paper: 1.47x)\n", geomean(speedups));
  std::printf("peak speedup:               %.2fx  (paper: 2.05x, exp)\n", peak_speedup);
  std::printf("geomean energy improvement: %.2fx  (paper: 1.37x)\n", geomean(energies));
  std::printf("peak energy improvement:    %.2fx  (paper: 1.93x, exp)\n", peak_energy);
  return 0;
}

// Shared helpers for the paper-reproduction benchmark binaries.
#pragma once

#include <cmath>
#include <cstdio>
#include <vector>

#include "kernels/runner.hpp"

namespace copift::bench {

inline constexpr kernels::KernelId kPaperOrder[] = {
    // Paper Fig. 2 orders kernels by increasing expected speedup S'.
    kernels::KernelId::kPiXoshiro, kernels::KernelId::kPolyXoshiro,
    kernels::KernelId::kPiLcg,     kernels::KernelId::kPolyLcg,
    kernels::KernelId::kLog,       kernels::KernelId::kExp,
};

/// Steady-state measurement configuration used by the Fig. 2 benches.
struct SteadyConfig {
  std::uint32_t n1 = 1920;
  std::uint32_t n2 = 3840;
  std::uint32_t block = 96;
};

inline kernels::SteadyMetrics steady(kernels::KernelId id, kernels::Variant variant,
                                     const SteadyConfig& sc = {}) {
  kernels::KernelConfig cfg;
  cfg.block = sc.block;
  return kernels::steady_metrics(id, variant, cfg, sc.n1, sc.n2);
}

inline double geomean(const std::vector<double>& values) {
  double log_sum = 0.0;
  for (const double v : values) log_sum += std::log(v);
  return values.empty() ? 0.0 : std::exp(log_sum / static_cast<double>(values.size()));
}

}  // namespace copift::bench

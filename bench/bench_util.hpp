// Shared helpers for the paper-reproduction benchmark binaries.
//
// All figure drivers run on the batch engine: one Experiment describes the
// grid over workload-registry names, a SimEngine fans the independent runs
// out across worker threads, and the drivers format the deterministic
// ResultTable. Pass `--threads N` to any driver to pin the pool size
// (default: hardware concurrency).
#pragma once

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string_view>
#include <vector>

#include "common/error.hpp"
#include "engine/experiment.hpp"

namespace copift::bench {

inline constexpr std::string_view kPaperOrder[] = {
    // Paper Fig. 2 orders kernels by increasing expected speedup S'.
    "pi_xoshiro128p", "poly_xoshiro128p", "pi_lcg", "poly_lcg", "log", "exp",
};

/// Parse `--threads N` from the command line; 0 = hardware concurrency.
inline unsigned parse_threads(int argc, char** argv) {
  return engine::parse_threads(argc, argv);
}

/// Steady-state measurement configuration used by the Fig. 2 benches.
struct SteadyConfig {
  std::uint32_t n1 = 1920;
  std::uint32_t n2 = 3840;
  std::uint32_t block = 96;
};

/// One steady-state table covering the paper's kernels in both variants:
/// 12 independent grid points, executed in parallel on the pool.
inline engine::ResultTable steady_table(engine::SimEngine& pool, const SteadyConfig& sc = {}) {
  return engine::Experiment()
      .over(std::span<const std::string_view>(kPaperOrder))
      .over({workload::Variant::kBaseline, workload::Variant::kCopift})
      .block(sc.block)
      .steady(sc.n1, sc.n2)
      .run(pool);
}

/// Row lookup that throws instead of returning nullptr (bench tables are
/// complete by construction).
inline const engine::ResultRow& row_of(const engine::ResultTable& table,
                                       std::string_view workload,
                                       workload::Variant variant) {
  const auto* row = table.find(workload, variant);
  if (row == nullptr) throw Error("missing result row");
  return *row;
}

inline double geomean(const std::vector<double>& values) {
  double log_sum = 0.0;
  for (const double v : values) log_sum += std::log(v);
  return values.empty() ? 0.0 : std::exp(log_sum / static_cast<double>(values.size()));
}

}  // namespace copift::bench

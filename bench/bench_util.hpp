// Shared helpers for the paper-reproduction benchmark binaries.
//
// All figure drivers run on the batch engine: one Experiment describes the
// grid, a SimEngine fans the independent runs out across worker threads, and
// the drivers format the deterministic ResultTable. Pass `--threads N` to
// any driver to pin the pool size (default: hardware concurrency).
#pragma once

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <vector>

#include "common/error.hpp"
#include "engine/experiment.hpp"

namespace copift::bench {

inline constexpr kernels::KernelId kPaperOrder[] = {
    // Paper Fig. 2 orders kernels by increasing expected speedup S'.
    kernels::KernelId::kPiXoshiro, kernels::KernelId::kPolyXoshiro,
    kernels::KernelId::kPiLcg,     kernels::KernelId::kPolyLcg,
    kernels::KernelId::kLog,       kernels::KernelId::kExp,
};

/// Parse `--threads N` from the command line; 0 = hardware concurrency.
inline unsigned parse_threads(int argc, char** argv) {
  return engine::parse_threads(argc, argv);
}

/// Steady-state measurement configuration used by the Fig. 2 benches.
struct SteadyConfig {
  std::uint32_t n1 = 1920;
  std::uint32_t n2 = 3840;
  std::uint32_t block = 96;
};

/// One steady-state table covering the paper's kernels in both variants:
/// 12 independent grid points, executed in parallel on the pool.
inline engine::ResultTable steady_table(engine::SimEngine& pool, const SteadyConfig& sc = {}) {
  return engine::Experiment()
      .over(std::span<const kernels::KernelId>(kPaperOrder))
      .over({kernels::Variant::kBaseline, kernels::Variant::kCopift})
      .block(sc.block)
      .steady(sc.n1, sc.n2)
      .run(pool);
}

/// Row lookup that throws instead of returning nullptr (bench tables are
/// complete by construction).
inline const engine::ResultRow& row_of(const engine::ResultTable& table, kernels::KernelId id,
                                       kernels::Variant variant) {
  const auto* row = table.find(id, variant);
  if (row == nullptr) throw Error("missing result row");
  return *row;
}

inline double geomean(const std::vector<double>& values) {
  double log_sum = 0.0;
  for (const double v : values) log_sum += std::log(v);
  return values.empty() ? 0.0 : std::exp(log_sum / static_cast<double>(values.size()));
}

}  // namespace copift::bench

// Shared helpers for the paper-reproduction benchmark binaries.
//
// All figure drivers run on the batch engine: one Experiment describes the
// grid over workload-registry names, a SimEngine fans the independent runs
// out across worker threads, and the drivers format the deterministic
// ResultTable. Pass `--threads N` to any driver to pin the pool size
// (default: hardware concurrency).
#pragma once

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string_view>
#include <vector>

#include "common/error.hpp"
#include "engine/experiment.hpp"

namespace copift::bench {

inline constexpr std::string_view kPaperOrder[] = {
    // Paper Fig. 2 orders kernels by increasing expected speedup S'.
    "pi_xoshiro128p", "poly_xoshiro128p", "pi_lcg", "poly_lcg", "log", "exp",
};

/// Parse `--threads N` from the command line; 0 = hardware concurrency.
/// A missing or malformed value is a usage error (exit 2).
inline unsigned parse_threads(int argc, char** argv) {
  try {
    return engine::parse_threads(argc, argv);
  } catch (const Error& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    std::exit(2);
  }
}

/// Parse `--cores v1,v2,...` from the command line (default {1}). A missing
/// or malformed list is a usage error (exit 2).
inline std::vector<std::uint32_t> parse_cores(int argc, char** argv) {
  try {
    return engine::parse_cores_list(argc, argv);
  } catch (const Error& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    std::exit(2);
  }
}

/// Steady-state measurement configuration used by the Fig. 2 benches.
struct SteadyConfig {
  std::uint32_t n1 = 1920;
  std::uint32_t n2 = 3840;
  std::uint32_t block = 96;
  /// Hart counts to sweep ({1} = the paper's single-core setup).
  std::vector<std::uint32_t> cores{1};
};

/// One steady-state table covering the paper's kernels in both variants
/// (and every requested core count): independent grid points, executed in
/// parallel on the pool.
inline engine::ResultTable steady_table(engine::SimEngine& pool, const SteadyConfig& sc = {}) {
  return engine::Experiment()
      .over(std::span<const std::string_view>(kPaperOrder))
      .over({workload::Variant::kBaseline, workload::Variant::kCopift})
      .block(sc.block)
      .sweep_cores(std::span<const std::uint32_t>(sc.cores))
      .steady(sc.n1, sc.n2)
      .run(pool);
}

/// Row lookup that throws instead of returning nullptr (bench tables are
/// complete by construction). Pass `cores` when the table sweeps the cores
/// axis — without the filter, find() returns the first core count's row.
inline const engine::ResultRow& row_of(const engine::ResultTable& table,
                                       std::string_view workload,
                                       workload::Variant variant,
                                       std::uint32_t cores = 0) {
  const auto* row = table.find(workload, variant, 0, 0, {}, cores);
  if (row == nullptr) throw Error("missing result row");
  return *row;
}

inline double geomean(const std::vector<double>& values) {
  double log_sum = 0.0;
  for (const double v : values) log_sum += std::log(v);
  return values.empty() ? 0.0 : std::exp(log_sum / static_cast<double>(values.size()));
}

}  // namespace copift::bench

// Reproduces paper Fig. 3: IPC of the poly_lcg COPIFT kernel for various
// problem and block sizes, with the ">99.5%" annotations (smallest problem
// reaching 99.5% of a block size's maximum IPC) and the per-problem "peak"
// block size.
//
// The 56-point grid is a single engine experiment; `--threads N` sets the
// worker-pool size (`--threads 1` reproduces the serial seed behaviour and
// must give bit-identical results).
#include <cstdio>
#include <vector>

#include "bench_util.hpp"

int main(int argc, char** argv) {
  using namespace copift;
  using namespace copift::bench;
  const std::vector<std::uint32_t> blocks = {32, 48, 64, 96, 128, 192, 256};
  const std::vector<std::uint32_t> problems = {768,   1536,  3072,  6144,
                                               12288, 24576, 49152, 98304};

  engine::SimEngine pool(parse_threads(argc, argv));
  const auto table =
      engine::Experiment()
          .over("poly_lcg")
          .over(kernels::Variant::kCopift)
          .sweep_n(problems)
          .sweep(blocks)
          // Verify the smaller runs; skip the golden check on the largest for
          // time (the same code path is verified at smaller sizes).
          .verify_if([](const engine::GridPoint& p) { return p.config.n <= 6144; })
          .run(pool);

  std::printf("Fig. 3: poly_lcg COPIFT IPC over problem size x block size\n\n");
  std::printf("%8s |", "n \\ B");
  for (const auto b : blocks) std::printf(" %6u", b);
  std::printf("   peak\n");

  std::vector<std::vector<double>> grid(problems.size(), std::vector<double>(blocks.size()));
  for (std::size_t pi = 0; pi < problems.size(); ++pi) {
    std::printf("%8u |", problems[pi]);
    double best = 0.0;
    std::uint32_t best_block = 0;
    for (std::size_t bi = 0; bi < blocks.size(); ++bi) {
      const auto& row = table.at(pi * blocks.size() + bi);
      grid[pi][bi] = row.run.ipc();
      std::printf(" %6.3f", row.run.ipc());
      if (row.run.ipc() > best) {
        best = row.run.ipc();
        best_block = blocks[bi];
      }
    }
    std::printf("   B=%u\n", best_block);
  }

  std::printf("\n>99.5%% annotations (smallest n reaching 99.5%% of each block's max IPC):\n");
  for (std::size_t bi = 0; bi < blocks.size(); ++bi) {
    double max_ipc = 0.0;
    for (std::size_t pi = 0; pi < problems.size(); ++pi) max_ipc = std::max(max_ipc, grid[pi][bi]);
    for (std::size_t pi = 0; pi < problems.size(); ++pi) {
      if (grid[pi][bi] >= 0.995 * max_ipc) {
        std::printf("  B=%-4u reaches >99.5%% of max IPC (%.3f) at n=%u\n", blocks[bi],
                    max_ipc, problems[pi]);
        break;
      }
    }
  }
  // Why the IPC moves: per-unit issue-slot occupancy over block size at the
  // largest problem, straight from the stall-attribution counters (the same
  // numbers every sweep CSV row carries — see docs/trace-format.md).
  const std::size_t last = problems.size() - 1;
  std::printf("\nIssue-slot occupancy at n=%u (%% of region cycles):\n", problems[last]);
  std::printf("%8s | %9s %9s %9s %9s\n", "B", "int-issue", "int-stall", "fp-issue",
              "fp-stall");
  for (std::size_t bi = 0; bi < blocks.size(); ++bi) {
    const auto& region = table.at(last * blocks.size() + bi).run.region;
    const auto pct = [&](std::uint64_t v) {
      return region.cycles == 0 ? 0.0 : 100.0 * static_cast<double>(v) /
                                            static_cast<double>(region.cycles);
    };
    std::printf("%8u | %8.1f%% %8.1f%% %8.1f%% %8.1f%%\n", blocks[bi],
                pct(region.int_issue_cycles()), pct(region.int_stall_cycles()),
                pct(region.fpss_issue_cycles()), pct(region.fpss_stall_cycles()));
  }
  std::printf(
      "\nExpected shape (paper): IPC rises with n; the peak block size grows with n;\n"
      "IPC converges to the steady-state value reported in Fig. 2a; the occupancy\n"
      "table shows FPSS issue saturating with larger blocks while the integer\n"
      "side's per-block SSR/FREP setup overhead shrinks into offload-full waits.\n");
  return 0;
}

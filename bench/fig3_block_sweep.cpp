// Reproduces paper Fig. 3: IPC of the poly_lcg COPIFT kernel for various
// problem and block sizes, with the ">99.5%" annotations (smallest problem
// reaching 99.5% of a block size's maximum IPC) and the per-problem "peak"
// block size.
//
// The 56-point grid is a single engine experiment; `--threads N` sets the
// worker-pool size (`--threads 1` reproduces the serial seed behaviour and
// must give bit-identical results). `--cores v1,v2,...` adds a hart-count
// axis and prints one IPC surface per core count — the per-hart block-size
// trade-off at cluster scale.
#include <cstdio>
#include <vector>

#include "bench_util.hpp"

int main(int argc, char** argv) {
  using namespace copift;
  using namespace copift::bench;
  const std::vector<std::uint32_t> blocks = {32, 48, 64, 96, 128, 192, 256};
  std::vector<std::uint32_t> problems = {768,   1536,  3072,  6144,
                                         12288, 24576, 49152, 98304};
  const std::vector<std::uint32_t> cores_list = parse_cores(argc, argv);

  // The cartesian grid must be valid at every (n, block, cores) point: each
  // hart's chunk needs at least two whole blocks. Drop problems that cannot
  // partition across every requested core count (no-op for the default
  // single-core sweep).
  std::erase_if(problems, [&](std::uint32_t n) {
    for (const std::uint32_t c : cores_list) {
      for (const std::uint32_t b : blocks) {
        const std::uint32_t chunk = n / c;
        if (n % c != 0 || chunk % b != 0 || chunk / b < 2) {
          std::printf("note: skipping n=%u (not partitionable into >=2 B=%u blocks "
                      "per hart at cores=%u)\n",
                      n, b, c);
          return true;
        }
      }
    }
    return false;
  });
  if (problems.empty()) {
    std::fprintf(stderr,
                 "error: no problem size is partitionable into >=2 blocks per hart for "
                 "every block size at the requested --cores values\n");
    return 2;
  }

  engine::SimEngine pool(parse_threads(argc, argv));
  const auto table =
      engine::Experiment()
          .over("poly_lcg")
          .over(kernels::Variant::kCopift)
          .sweep_n(problems)
          .sweep(blocks)
          .sweep_cores(cores_list)
          // Verify the smaller runs; skip the golden check on the largest for
          // time (the same code path is verified at smaller sizes).
          .verify_if([](const engine::GridPoint& p) { return p.config.n <= 6144; })
          .run(pool);

  // Grid order: n, block, cores (last axis fastest).
  const auto row_at = [&](std::size_t pi, std::size_t bi, std::size_t ci)
      -> const engine::ResultRow& {
    return table.at((pi * blocks.size() + bi) * cores_list.size() + ci);
  };

  for (std::size_t ci = 0; ci < cores_list.size(); ++ci) {
  if (cores_list.size() > 1) std::printf("=== cores=%u ===\n", cores_list[ci]);
  std::printf("Fig. 3: poly_lcg COPIFT IPC over problem size x block size\n\n");
  std::printf("%8s |", "n \\ B");
  for (const auto b : blocks) std::printf(" %6u", b);
  std::printf("   peak\n");

  std::vector<std::vector<double>> grid(problems.size(), std::vector<double>(blocks.size()));
  for (std::size_t pi = 0; pi < problems.size(); ++pi) {
    std::printf("%8u |", problems[pi]);
    double best = 0.0;
    std::uint32_t best_block = 0;
    for (std::size_t bi = 0; bi < blocks.size(); ++bi) {
      const auto& row = row_at(pi, bi, ci);
      grid[pi][bi] = row.run.ipc();
      std::printf(" %6.3f", row.run.ipc());
      if (row.run.ipc() > best) {
        best = row.run.ipc();
        best_block = blocks[bi];
      }
    }
    std::printf("   B=%u\n", best_block);
  }

  std::printf("\n>99.5%% annotations (smallest n reaching 99.5%% of each block's max IPC):\n");
  for (std::size_t bi = 0; bi < blocks.size(); ++bi) {
    double max_ipc = 0.0;
    for (std::size_t pi = 0; pi < problems.size(); ++pi) max_ipc = std::max(max_ipc, grid[pi][bi]);
    for (std::size_t pi = 0; pi < problems.size(); ++pi) {
      if (grid[pi][bi] >= 0.995 * max_ipc) {
        std::printf("  B=%-4u reaches >99.5%% of max IPC (%.3f) at n=%u\n", blocks[bi],
                    max_ipc, problems[pi]);
        break;
      }
    }
  }
  // Why the IPC moves: per-unit issue-slot occupancy over block size at the
  // largest problem, straight from the stall-attribution counters (the same
  // numbers every sweep CSV row carries — see docs/trace-format.md).
  const std::size_t last = problems.size() - 1;
  std::printf("\nIssue-slot occupancy at n=%u (%% of region cycles):\n", problems[last]);
  std::printf("%8s | %9s %9s %9s %9s\n", "B", "int-issue", "int-stall", "fp-issue",
              "fp-stall");
  for (std::size_t bi = 0; bi < blocks.size(); ++bi) {
    const auto& region = row_at(last, bi, ci).run.region;
    const auto pct = [&](std::uint64_t v) {
      return region.cycles == 0 ? 0.0 : 100.0 * static_cast<double>(v) /
                                            static_cast<double>(region.cycles);
    };
    std::printf("%8u | %8.1f%% %8.1f%% %8.1f%% %8.1f%%\n", blocks[bi],
                pct(region.int_issue_cycles()), pct(region.int_stall_cycles()),
                pct(region.fpss_issue_cycles()), pct(region.fpss_stall_cycles()));
  }
  std::printf(
      "\nExpected shape (paper): IPC rises with n; the peak block size grows with n;\n"
      "IPC converges to the steady-state value reported in Fig. 2a; the occupancy\n"
      "table shows FPSS issue saturating with larger blocks while the integer\n"
      "side's per-block SSR/FREP setup overhead shrinks into offload-full waits.\n");
  if (cores_list.size() > 1) std::printf("\n");
  }  // cores_list
  return 0;
}

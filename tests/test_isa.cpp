#include "isa/instr.hpp"

#include <gtest/gtest.h>

#include <random>

#include "common/error.hpp"
#include "isa/reg.hpp"

namespace copift::isa {
namespace {

// Golden encodings cross-checked against GNU binutils output.
TEST(IsaGolden, BaseInteger) {
  // addi a0, a1, 42
  EXPECT_EQ(encode({Mnemonic::kAddi, 10, 11, 0, 0, 42}), 0x02A58513u);
  // add s0, s1, s2
  EXPECT_EQ(encode({Mnemonic::kAdd, 8, 9, 18, 0, 0}), 0x01248433u);
  // sub t0, t1, t2
  EXPECT_EQ(encode({Mnemonic::kSub, 5, 6, 7, 0, 0}), 0x407302B3u);
  // lw a0, 16(sp)
  EXPECT_EQ(encode({Mnemonic::kLw, 10, 2, 0, 0, 16}), 0x01012503u);
  // sw a0, -4(s0)
  EXPECT_EQ(encode({Mnemonic::kSw, 0, 8, 10, 0, -4}), 0xFEA42E23u);
  // lui a0, 0x12345
  EXPECT_EQ(encode({Mnemonic::kLui, 10, 0, 0, 0, 0x12345}), 0x12345537u);
  // jal ra, +8
  EXPECT_EQ(encode({Mnemonic::kJal, 1, 0, 0, 0, 8}), 0x008000EFu);
  // beq a0, a1, -4
  EXPECT_EQ(encode({Mnemonic::kBeq, 0, 10, 11, 0, -4}), 0xFEB50EE3u);
  // mul a0, a1, a2
  EXPECT_EQ(encode({Mnemonic::kMul, 10, 11, 12, 0, 0}), 0x02C58533u);
  // ecall
  EXPECT_EQ(encode({Mnemonic::kEcall, 0, 0, 0, 0, 0}), 0x00000073u);
}

TEST(IsaGolden, FloatingPoint) {
  // fld fa3, 0(a3): rd=f13 rs1=x13
  EXPECT_EQ(encode({Mnemonic::kFld, 13, 13, 0, 0, 0}), 0x0006B687u);
  // fsd fa4, 8(a4)
  EXPECT_EQ(encode({Mnemonic::kFsd, 0, 14, 14, 0, 8}), 0x00E73427u);
  // fadd.d fa0, fa1, fa2 (rm = dyn)
  EXPECT_EQ(encode({Mnemonic::kFaddD, 10, 11, 12, 0, 0}), 0x02C5F553u);
  // fmadd.d fa4, fa2, fa1, fa4: rs3 at bits 31:27, fmt=01
  EXPECT_EQ(encode({Mnemonic::kFmaddD, 14, 12, 11, 14, 0}), 0x72B67743u);
  // flt.d a0, fa0, fa1
  EXPECT_EQ(encode({Mnemonic::kFltD, 10, 10, 11, 0, 0}), 0xA2B51553u);
  // fcvt.d.wu fa0, a1
  EXPECT_EQ(encode({Mnemonic::kFcvtDWu, 10, 11, 0, 0, 0}), 0xD215F553u);
  // fcvt.w.d a0, fa1
  EXPECT_EQ(encode({Mnemonic::kFcvtWD, 10, 11, 0, 0, 0}), 0xC205F553u);
}

TEST(IsaRoundTrip, EveryMnemonicRandomOperands) {
  std::mt19937 rng(7);
  for (std::size_t m = 0; m < kNumMnemonics; ++m) {
    const auto mnemonic = static_cast<Mnemonic>(m);
    const auto& meta = info(mnemonic);
    for (int trial = 0; trial < 50; ++trial) {
      Instr instr;
      instr.mnemonic = mnemonic;
      instr.rd = static_cast<std::uint8_t>(rng() % 32);
      instr.rs1 = static_cast<std::uint8_t>(rng() % 32);
      instr.rs2 = static_cast<std::uint8_t>(rng() % 32);
      instr.rs3 = static_cast<std::uint8_t>(rng() % 32);
      switch (meta.format) {
        case Format::kI:
        case Format::kILoad:
        case Format::kS:
          instr.imm = static_cast<std::int32_t>(rng() % 4096) - 2048;
          break;
        case Format::kB:
          instr.imm = (static_cast<std::int32_t>(rng() % 4096) - 2048) * 2;
          break;
        case Format::kIShift:
          instr.imm = static_cast<std::int32_t>(rng() % 32);
          break;
        case Format::kU:
          instr.imm = static_cast<std::int32_t>(rng() % (1 << 20));
          break;
        case Format::kJ:
          instr.imm = (static_cast<std::int32_t>(rng() % (1 << 20)) - (1 << 19)) * 2;
          break;
        case Format::kICsr:
        case Format::kICsrImm:
        case Format::kRs1Imm:
        case Format::kRdImm:
          instr.imm = static_cast<std::int32_t>(rng() % 4096);
          break;
        default:
          instr.imm = 0;
          break;
      }
      // Zero out operand fields the format does not encode.
      switch (meta.format) {
        case Format::kFixed: instr.rd = instr.rs1 = instr.rs2 = instr.rs3 = 0; break;
        case Format::kRdOnly: instr.rs1 = instr.rs2 = instr.rs3 = 0; break;
        case Format::kRs1Only: instr.rd = instr.rs2 = instr.rs3 = 0; break;
        case Format::kRdRs1: instr.rs2 = instr.rs3 = 0; break;
        case Format::kRs1Imm: instr.rd = instr.rs2 = instr.rs3 = 0; break;
        case Format::kRdImm: instr.rs1 = instr.rs2 = instr.rs3 = 0; break;
        case Format::kU:
        case Format::kJ: instr.rs1 = instr.rs2 = instr.rs3 = 0; break;
        case Format::kI:
        case Format::kILoad:
        case Format::kIShift:
        case Format::kICsr:
        case Format::kICsrImm: instr.rs2 = instr.rs3 = 0; break;
        case Format::kS:
        case Format::kB: instr.rd = instr.rs3 = 0; break;
        case Format::kR:
        case Format::kRFpRm: instr.rs3 = 0; break;
        case Format::kRFp1Rm:
        case Format::kRFp1: instr.rs2 = instr.rs3 = 0; break;
        case Format::kR4: break;
      }
      const std::uint32_t word = encode(instr);
      const Instr decoded = decode(word);
      EXPECT_EQ(decoded, instr) << meta.name << " word=0x" << std::hex << word;
    }
  }
}

TEST(IsaDecode, RejectsGarbage) {
  EXPECT_THROW(decode(0x00000000u), EncodingError);
  EXPECT_THROW(decode(0xFFFFFFFFu), EncodingError);
}

TEST(IsaMeta, OffloadClassification) {
  EXPECT_TRUE(info(Mnemonic::kFaddD).offloaded());
  EXPECT_TRUE(info(Mnemonic::kFld).offloaded());
  EXPECT_TRUE(info(Mnemonic::kFsd).offloaded());
  EXPECT_TRUE(info(Mnemonic::kFltDCop).offloaded());
  EXPECT_FALSE(info(Mnemonic::kAdd).offloaded());
  EXPECT_FALSE(info(Mnemonic::kFrepO).offloaded());
  EXPECT_FALSE(info(Mnemonic::kScfgwi).offloaded());
  EXPECT_FALSE(info(Mnemonic::kCopiftBarrier).offloaded());
}

TEST(IsaMeta, IntRfBridges) {
  // The paper's dual-issue blockers: FP ops touching the integer RF.
  EXPECT_TRUE(info(Mnemonic::kFltD).writes_int_rf());
  EXPECT_TRUE(info(Mnemonic::kFcvtWD).writes_int_rf());
  EXPECT_TRUE(info(Mnemonic::kFclassD).writes_int_rf());
  EXPECT_TRUE(info(Mnemonic::kFmvXW).writes_int_rf());
  EXPECT_TRUE(info(Mnemonic::kFcvtDW).reads_int_rf());
  EXPECT_TRUE(info(Mnemonic::kFld).reads_int_rf());
  EXPECT_TRUE(info(Mnemonic::kFsd).reads_int_rf());
  // Their Xcopift replacements operate entirely on the FP RF.
  EXPECT_FALSE(info(Mnemonic::kFltDCop).writes_int_rf());
  EXPECT_FALSE(info(Mnemonic::kFcvtDWCop).reads_int_rf());
  EXPECT_FALSE(info(Mnemonic::kFcvtWDCop).writes_int_rf());
  EXPECT_FALSE(info(Mnemonic::kFclassDCop).writes_int_rf());
}

TEST(IsaMeta, XcopiftFlag) {
  unsigned count = 0;
  for (std::size_t m = 0; m < kNumMnemonics; ++m) {
    if (info(static_cast<Mnemonic>(m)).xcopift) ++count;
  }
  EXPECT_EQ(count, 8u);  // the paper's 8 re-encoded instructions
}

TEST(IsaMeta, NamesAreUniqueAndLookupWorks) {
  for (std::size_t m = 0; m < kNumMnemonics; ++m) {
    const auto mnemonic = static_cast<Mnemonic>(m);
    const auto found = mnemonic_by_name(name(mnemonic));
    ASSERT_TRUE(found.has_value()) << name(mnemonic);
    EXPECT_EQ(*found, mnemonic);
  }
  EXPECT_FALSE(mnemonic_by_name("bogus.instr").has_value());
}

TEST(IsaRegs, ParseAbiAndNumeric) {
  EXPECT_EQ(parse_int_reg("zero"), 0u);
  EXPECT_EQ(parse_int_reg("ra"), 1u);
  EXPECT_EQ(parse_int_reg("sp"), 2u);
  EXPECT_EQ(parse_int_reg("a0"), 10u);
  EXPECT_EQ(parse_int_reg("t6"), 31u);
  EXPECT_EQ(parse_int_reg("x13"), 13u);
  EXPECT_EQ(parse_int_reg("fp"), 8u);
  EXPECT_FALSE(parse_int_reg("x32").has_value());
  EXPECT_FALSE(parse_int_reg("fa0").has_value());
  EXPECT_EQ(parse_fp_reg("ft0"), 0u);
  EXPECT_EQ(parse_fp_reg("fa3"), 13u);
  EXPECT_EQ(parse_fp_reg("fs11"), 27u);
  EXPECT_EQ(parse_fp_reg("ft11"), 31u);
  EXPECT_EQ(parse_fp_reg("f5"), 5u);
  EXPECT_FALSE(parse_fp_reg("a0").has_value());
}

TEST(IsaDisasm, ReadableOutput) {
  EXPECT_EQ(disassemble({Mnemonic::kAddi, 10, 11, 0, 0, 42}), "addi a0, a1, 42");
  EXPECT_EQ(disassemble({Mnemonic::kFmaddD, 14, 12, 11, 14, 0}),
            "fmadd.d fa4, fa2, fa1, fa4");
  EXPECT_EQ(disassemble({Mnemonic::kLw, 10, 2, 0, 0, 16}), "lw a0, 16(sp)");
  EXPECT_EQ(disassemble({Mnemonic::kCopiftBarrier, 0, 0, 0, 0, 0}), "copift.barrier");
}

}  // namespace
}  // namespace copift::isa

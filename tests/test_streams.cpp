#include "core/streams.hpp"

#include <gtest/gtest.h>

#include <random>

#include "common/error.hpp"

namespace copift::core {
namespace {

AffineStream stream1d(const std::string& name, std::uint32_t base, std::uint32_t count,
                      std::int32_t stride = 8, StreamDir dir = StreamDir::kRead) {
  AffineStream s;
  s.name = name;
  s.dir = dir;
  s.base = base;
  s.dims = 1;
  s.bounds = {count, 1, 1, 1};
  s.strides = {stride, 0, 0, 0};
  return s;
}

TEST(Streams, EnumerateSimple) {
  const auto s = stream1d("x", 0x1000, 3);
  EXPECT_EQ(s.enumerate(), (std::vector<std::uint32_t>{0x1000, 0x1008, 0x1010}));
  EXPECT_EQ(s.total_elements(), 3u);
}

TEST(Streams, Enumerate2D) {
  AffineStream s;
  s.base = 0;
  s.dims = 2;
  s.bounds = {2, 3, 1, 1};
  s.strides = {8, 100, 0, 0};
  EXPECT_EQ(s.enumerate(), (std::vector<std::uint32_t>{0, 8, 100, 108, 200, 208}));
}

TEST(Streams, FuseTwoCompatibleStreams) {
  // Paper Fig. 1i: two 1-D streams with equal shape fuse into one 2-D
  // stream whose outer stride is the base difference.
  const auto r = fuse_streams({stream1d("a", 0x1000, 8), stream1d("b", 0x2000, 8)}, 3);
  ASSERT_EQ(r.lanes.size(), 1u);
  EXPECT_EQ(r.lanes[0].dims, 2u);
  EXPECT_EQ(r.lanes[0].strides[1], 0x1000);
  EXPECT_EQ(r.lanes[0].total_elements(), 16u);
  // Fused enumeration = concatenation of the members' enumerations.
  std::vector<std::uint32_t> expected = stream1d("a", 0x1000, 8).enumerate();
  const auto eb = stream1d("b", 0x2000, 8).enumerate();
  expected.insert(expected.end(), eb.begin(), eb.end());
  EXPECT_EQ(r.lanes[0].enumerate(), expected);
}

TEST(Streams, FuseThreeEquispacedStreams) {
  // The paper merges w, ki and y write streams: three equispaced bases.
  const auto r = fuse_streams({stream1d("w", 0x1000, 4, 8, StreamDir::kWrite),
                               stream1d("ki", 0x1100, 4, 8, StreamDir::kWrite),
                               stream1d("y", 0x1200, 4, 8, StreamDir::kWrite)},
                              3);
  ASSERT_EQ(r.lanes.size(), 1u);
  EXPECT_EQ(r.lanes[0].bounds[1], 3u);
  EXPECT_EQ(r.lanes[0].total_elements(), 12u);
}

TEST(Streams, DirectionMismatchNotFused) {
  const auto r = fuse_streams({stream1d("a", 0x1000, 4, 8, StreamDir::kRead),
                               stream1d("b", 0x2000, 4, 8, StreamDir::kWrite)},
                              3);
  EXPECT_EQ(r.lanes.size(), 2u);
}

TEST(Streams, ShapeMismatchNotFused) {
  const auto r = fuse_streams({stream1d("a", 0x1000, 4), stream1d("b", 0x2000, 8)}, 3);
  EXPECT_EQ(r.lanes.size(), 2u);
}

TEST(Streams, NonEquispacedSplitsLanes) {
  const auto r = fuse_streams(
      {stream1d("a", 0x1000, 4), stream1d("b", 0x1100, 4), stream1d("c", 0x1300, 4)}, 3);
  // a+b fuse (delta 0x100); c starts a new lane (delta 0x200).
  EXPECT_EQ(r.lanes.size(), 2u);
}

TEST(Streams, ThrowsWhenLanesExhausted) {
  EXPECT_THROW(fuse_streams({stream1d("a", 0, 4, 8), stream1d("b", 0x100, 2, 16),
                             stream1d("c", 0x200, 4, 24), stream1d("d", 0x300, 4, 32)},
                            3),
               TransformError);
}

TEST(Streams, ExpKernelSixStreamsFitThreeLanes) {
  // The paper's exp kernel: reads x, w, t; writes ki, w, y — with block
  // buffers laid out contiguously, fusion packs them into 3 lanes.
  const std::uint32_t kBlockBytes = 32 * 8;
  std::vector<AffineStream> streams = {
      stream1d("x", 0x10000, 32, 8, StreamDir::kRead),
      stream1d("w_r", 0x20000, 32, 8, StreamDir::kRead),
      stream1d("t", 0x20000 + kBlockBytes, 32, 8, StreamDir::kRead),
      stream1d("ki", 0x30000, 32, 8, StreamDir::kWrite),
      stream1d("w_w", 0x30000 + kBlockBytes, 32, 8, StreamDir::kWrite),
      stream1d("y", 0x30000 + 2 * kBlockBytes, 32, 8, StreamDir::kWrite),
  };
  const auto r = fuse_streams(streams, 3);
  EXPECT_LE(r.lanes.size(), 3u);
}

TEST(Streams, FusionPreservesElementOrderProperty) {
  std::mt19937 rng(5);
  for (int trial = 0; trial < 30; ++trial) {
    // Equispaced group of k streams with identical shape.
    const unsigned k = 2 + rng() % 3;
    const std::uint32_t count = 1 + rng() % 8;
    const std::uint32_t spacing = 0x100 * (1 + rng() % 4);
    std::vector<AffineStream> streams;
    std::vector<std::uint32_t> expected;
    for (unsigned i = 0; i < k; ++i) {
      streams.push_back(stream1d("s" + std::to_string(i), 0x1000 + i * spacing, count));
      const auto e = streams.back().enumerate();
      expected.insert(expected.end(), e.begin(), e.end());
    }
    const auto r = fuse_streams(streams, 4);
    ASSERT_EQ(r.lanes.size(), 1u);
    EXPECT_EQ(r.lanes[0].enumerate(), expected);
  }
}

}  // namespace
}  // namespace copift::core

// Batch engine tests: worker-pool semantics, assemble-once program sharing,
// grid expansion, and — most importantly — determinism: a sweep must produce
// bit-identical results at any thread count. The engine addresses workloads
// by registry name (see tests/test_workload.cpp for the registry itself).
#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <set>

#include "common/error.hpp"
#include "engine/experiment.hpp"

namespace copift::engine {
namespace {

using workload::Variant;

// --- SimEngine --------------------------------------------------------------

TEST(SimEngine, RunsEveryJobExactlyOnce) {
  for (const unsigned threads : {1u, 2u, 8u}) {
    SimEngine pool(threads);
    EXPECT_EQ(pool.threads(), threads);
    std::vector<std::atomic<int>> hits(97);
    pool.parallel_for(hits.size(), [&](std::size_t i) { ++hits[i]; });
    for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
  }
}

TEST(SimEngine, EmptyBatchIsANoop) {
  SimEngine pool(4);
  bool ran = false;
  pool.parallel_for(0, [&](std::size_t) { ran = true; });
  EXPECT_FALSE(ran);
}

TEST(SimEngine, PoolIsReusableAcrossBatches) {
  SimEngine pool(4);
  std::atomic<int> total{0};
  for (int round = 0; round < 5; ++round) {
    pool.parallel_for(10, [&](std::size_t) { ++total; });
  }
  EXPECT_EQ(total.load(), 50);
}

TEST(SimEngine, BackToBackBatchesNeverLeakJobsAcrossBatches) {
  // Regression: a worker waking late for a finished batch must not steal
  // indices from (or run the closure of) the batch posted after it.
  SimEngine pool(8);
  for (int round = 0; round < 300; ++round) {
    const std::size_t count = 1 + static_cast<std::size_t>(round % 7);
    std::vector<std::atomic<int>> hits(count);
    pool.parallel_for(count, [&](std::size_t i) { ++hits[i]; });
    for (const auto& h : hits) ASSERT_EQ(h.load(), 1);
  }
}

TEST(SimEngine, ParseThreadsRejectsNonsenseAsUsageErrors) {
  char prog[] = "prog", flag[] = "--threads";
  char neg[] = "-1", huge[] = "4000000000", junk[] = "abc", trail[] = "4x", four[] = "4";
  // Malformed values used to fall back silently to hardware concurrency,
  // masking typos with a full-width pool; they are usage errors now.
  {
    char* argv[] = {prog, flag, neg};
    EXPECT_THROW(parse_threads(3, argv), Error);
  }
  {
    char* argv[] = {prog, flag, huge};
    EXPECT_THROW(parse_threads(3, argv), Error);
  }
  {
    char* argv[] = {prog, flag, junk};
    EXPECT_THROW(parse_threads(3, argv), Error);
  }
  {
    char* argv[] = {prog, flag, trail};
    EXPECT_THROW(parse_threads(3, argv), Error);
  }
  // Regression: `--threads` as the very last argument was silently ignored
  // (the scan loop stopped one short); it must be a usage error.
  {
    char* argv[] = {prog, flag};
    try {
      parse_threads(2, argv);
      FAIL() << "expected an exception";
    } catch (const Error& e) {
      EXPECT_NE(std::string(e.what()).find("requires a value"), std::string::npos)
          << e.what();
    }
  }
  {
    char* argv[] = {prog, flag, four};
    EXPECT_EQ(parse_threads(3, argv), 4u);
  }
  {
    char* argv[] = {prog};
    EXPECT_EQ(parse_threads(1, argv), 0u);
  }
}

TEST(SimEngine, RethrowsLowestIndexException) {
  // The same (lowest-index) exception must surface at any thread count.
  for (const unsigned threads : {1u, 8u}) {
    SimEngine pool(threads);
    try {
      pool.parallel_for(16, [](std::size_t i) {
        if (i % 2 == 1) throw Error("job " + std::to_string(i));
      });
      FAIL() << "expected an exception";
    } catch (const Error& e) {
      EXPECT_STREQ(e.what(), "job 1");
    }
  }
}

TEST(SimEngine, ZeroThreadsMeansHardwareConcurrency) {
  SimEngine pool(0);
  EXPECT_GE(pool.threads(), 1u);
}

TEST(SimEngine, NestedParallelForThrowsInsteadOfDeadlocking) {
  // A job that re-enters its own engine would deadlock waiting for the
  // worker slot it occupies; the engine must detect this and throw a
  // descriptive error from the job instead.
  for (const unsigned threads : {1u, 4u}) {
    SimEngine pool(threads);
    try {
      pool.parallel_for(2, [&](std::size_t) {
        pool.parallel_for(2, [](std::size_t) {});
      });
      FAIL() << "nested parallel_for did not throw";
    } catch (const Error& e) {
      EXPECT_NE(std::string(e.what()).find("inside one of its own jobs"), std::string::npos)
          << e.what();
    }
    // The pool stays usable after the misuse.
    std::atomic<int> ran{0};
    EXPECT_TRUE(pool.parallel_for(4, [&](std::size_t) { ++ran; }));
    EXPECT_EQ(ran.load(), 4);
  }
}

TEST(SimEngine, CancelTokenStopsBetweenJobs) {
  SimEngine pool(2);
  CancelToken cancel;
  cancel.request_stop();
  std::atomic<int> ran{0};
  // A pre-cancelled batch runs nothing and reports incompleteness.
  EXPECT_FALSE(pool.parallel_for(8, [&](std::size_t) { ++ran; }, &cancel));
  EXPECT_EQ(ran.load(), 0);

  cancel.reset();
  std::atomic<int> invocations{0};
  const bool complete = pool.parallel_for(
      1000,
      [&](std::size_t) {
        ++invocations;
        cancel.request_stop();  // first job cancels the rest
      },
      &cancel);
  EXPECT_FALSE(complete);
  // At most the jobs already claimed before the stop flag landed ran —
  // far fewer than the full batch.
  EXPECT_LT(invocations.load(), 1000);

  // The token is per-batch input: a fresh batch without it completes fully.
  std::atomic<int> after{0};
  EXPECT_TRUE(pool.parallel_for(8, [&](std::size_t) { ++after; }));
  EXPECT_EQ(after.load(), 8);
}

TEST(Experiment, CancelledRunReturnsFinishedPrefixRows) {
  Experiment e;
  e.over("exp").n(256).sweep({8, 16, 32, 64}).verify(false);
  SimEngine pool(1);

  CancelToken cancel;
  cancel.request_stop();
  const auto none = e.run(pool, &cancel);
  EXPECT_EQ(none.size(), 0u);  // cancelled before any point ran

  cancel.reset();
  const auto all = e.run(pool, &cancel);
  EXPECT_EQ(all.size(), e.grid().size());  // un-cancelled token is harmless
}

// --- ProgramCache -----------------------------------------------------------

TEST(ProgramCache, SharesOneProgramPerDistinctConfig) {
  ProgramCache cache;
  kernels::KernelConfig cfg;
  cfg.n = 256;
  cfg.block = 32;
  const auto k = workload::generate("exp", Variant::kCopift, cfg);
  const auto a = cache.get(k);
  const auto b = cache.get(k);
  EXPECT_EQ(a.get(), b.get());  // same immutable program, not a copy
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_EQ(cache.hits(), 1u);

  cfg.block = 64;
  const auto c = cache.get(workload::generate("exp", Variant::kCopift, cfg));
  EXPECT_NE(a.get(), c.get());
  EXPECT_EQ(cache.size(), 2u);
}

TEST(ProgramCache, SharedProgramRunsManyClustersBitIdentically) {
  kernels::KernelConfig cfg;
  cfg.n = 256;
  cfg.block = 32;
  const auto k = workload::generate("pi_lcg", Variant::kCopift, cfg);
  const auto program = kernels::assemble_kernel(k);
  const auto r1 = kernels::run_kernel(k, program);
  const auto r2 = kernels::run_kernel(k, program);
  EXPECT_EQ(r1.result.cycles, r2.result.cycles);
  EXPECT_EQ(r1.region.cycles, r2.region.cycles);
  EXPECT_TRUE(r1.verified);
  // And identical to the assemble-per-run path.
  const auto r3 = kernels::run_kernel(k);
  EXPECT_EQ(r1.result.cycles, r3.result.cycles);
}

// --- ParamGrid --------------------------------------------------------------

TEST(ParamGrid, ExpandsCartesianProductRowMajor) {
  ParamGrid grid;
  grid.workloads = {"exp", "log"};
  grid.variants = {Variant::kBaseline, Variant::kCopift};
  grid.ns = {256, 512};
  grid.blocks = {32};
  grid.seeds = {1, 2, 3};
  ASSERT_EQ(grid.size(), 2u * 2u * 2u * 1u * 3u);

  // Last axis (params, then seeds) moves fastest.
  EXPECT_EQ(grid.point(0).config.seed, 1u);
  EXPECT_EQ(grid.point(1).config.seed, 2u);
  EXPECT_EQ(grid.point(2).config.seed, 3u);
  EXPECT_EQ(grid.point(3).config.n, 512u);
  EXPECT_EQ(grid.point(0).name(), "exp");
  EXPECT_EQ(grid.point(grid.size() - 1).name(), "log");
  EXPECT_EQ(grid.point(grid.size() - 1).variant, Variant::kCopift);
  EXPECT_EQ(grid.point(grid.size() - 1).config.seed, 3u);
  for (std::size_t i = 0; i < grid.size(); ++i) EXPECT_EQ(grid.point(i).index, i);
  EXPECT_THROW(grid.point(grid.size()), Error);
}

TEST(ParamGrid, UnknownWorkloadNameThrowsWithRegisteredNames) {
  ParamGrid grid;
  grid.workloads = {"no_such_workload"};
  try {
    (void)grid.point(0);
    FAIL() << "expected an exception";
  } catch (const Error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("no_such_workload"), std::string::npos);
    EXPECT_NE(what.find("exp"), std::string::npos);  // lists what is registered
  }
}

// --- Experiment determinism (the satellite requirement) ---------------------

/// Field-by-field bitwise comparison of two result tables.
void expect_identical(const ResultTable& a, const ResultTable& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    const auto& ra = a.at(i);
    const auto& rb = b.at(i);
    EXPECT_EQ(ra.point.name(), rb.point.name());
    EXPECT_EQ(ra.point.variant, rb.point.variant);
    EXPECT_EQ(ra.point.config.n, rb.point.config.n);
    EXPECT_EQ(ra.point.config.block, rb.point.config.block);
    EXPECT_EQ(ra.run.result.cycles, rb.run.result.cycles);
    EXPECT_EQ(ra.run.region.cycles, rb.run.region.cycles);
    EXPECT_EQ(ra.run.region.int_retired, rb.run.region.int_retired);
    EXPECT_EQ(ra.run.region.fp_retired, rb.run.region.fp_retired);
    EXPECT_EQ(ra.run.verified, rb.run.verified);
    // Doubles must match bit-for-bit, not approximately.
    EXPECT_EQ(std::memcmp(&ra.run.region_energy, &rb.run.region_energy,
                          sizeof(ra.run.region_energy)),
              0);
    EXPECT_EQ(ra.steady, rb.steady);
    if (ra.steady) {
      EXPECT_EQ(std::memcmp(&ra.metrics, &rb.metrics, sizeof(ra.metrics)), 0);
      EXPECT_EQ(ra.steady_region.cycles, rb.steady_region.cycles);
    }
  }
  // The emitted artifacts are deterministic too.
  EXPECT_EQ(a.csv(), b.csv());
  EXPECT_EQ(a.json(), b.json());
}

Experiment small_sweep() {
  Experiment e;
  e.over({"exp", "pi_lcg"})
      .over({Variant::kBaseline, Variant::kCopift})
      .n(256)
      .sweep({16, 32});
  return e;
}

TEST(Experiment, OneThreadAndEightThreadsAreBitIdentical) {
  const Experiment e = small_sweep();
  SimEngine serial(1);
  SimEngine wide(8);
  const auto a = e.run(serial);
  const auto b = e.run(wide);
  ASSERT_EQ(a.size(), 8u);
  expect_identical(a, b);
  for (const auto& row : a.rows()) EXPECT_TRUE(row.run.verified);
}

TEST(Experiment, SteadyModeMatchesSteadyMetricsAndIsDeterministic) {
  Experiment e;
  e.over("exp").over(Variant::kCopift).block(32).steady(320, 640);
  SimEngine serial(1);
  SimEngine wide(8);
  const auto a = e.run(serial);
  const auto b = e.run(wide);
  expect_identical(a, b);

  ASSERT_EQ(a.size(), 1u);
  const auto& row = a.at(0);
  ASSERT_TRUE(row.steady);
  kernels::KernelConfig cfg;
  cfg.block = 32;
  const auto direct = kernels::steady_metrics("exp", Variant::kCopift, cfg, 320, 640);
  EXPECT_EQ(row.metrics.delta_cycles, direct.delta_cycles);
  EXPECT_EQ(row.metrics.ipc, direct.ipc);
  EXPECT_EQ(row.metrics.energy_pj_per_item, direct.energy_pj_per_item);
}

TEST(Experiment, ParamsAxisSweepsSimulatorConfigs) {
  Experiment e;
  e.over("pi_lcg").over(Variant::kBaseline).n(256).block(32);
  for (const unsigned lat : {1u, 5u}) {
    sim::SimParams p;
    p.mul_latency = lat;
    e.with_params(std::to_string(lat), p);
  }
  SimEngine pool(2);
  const auto table = e.run(pool);
  ASSERT_EQ(table.size(), 2u);
  const auto* fast = table.find("pi_lcg", Variant::kBaseline, 0, 0, "1");
  const auto* slow = table.find("pi_lcg", Variant::kBaseline, 0, 0, "5");
  ASSERT_NE(fast, nullptr);
  ASSERT_NE(slow, nullptr);
  EXPECT_LT(fast->run.region.cycles, slow->run.region.cycles);
  EXPECT_EQ(slow->point.params.mul_latency, 5u);
}

TEST(Experiment, VerifyPredicateSelectsPerPoint) {
  Experiment e;
  e.over("exp").over(Variant::kCopift).sweep_n({256, 512}).block(32).verify_if(
      [](const GridPoint& p) { return p.config.n <= 256; });
  SimEngine pool(2);
  const auto table = e.run(pool);
  ASSERT_EQ(table.size(), 2u);
  EXPECT_TRUE(table.at(0).run.verified);
  EXPECT_FALSE(table.at(1).run.verified);
}

TEST(Experiment, VerificationFailurePropagatesFromWorkers) {
  // pi estimation at a size that violates the MC unroll contract throws in
  // validate(); a grid with such a point must surface the error.
  Experiment e;
  e.over("pi_lcg").over(Variant::kCopift).sweep_n({12}).block(32);
  SimEngine pool(4);
  EXPECT_THROW((void)e.run(pool), Error);
}

TEST(ResultTable, CsvAndJsonCarryTheGrid) {
  Experiment e;
  e.over("exp").over(Variant::kCopift).n(256).sweep({16, 32});
  SimEngine pool(2);
  const auto table = e.run(pool);
  const std::string csv = table.csv();
  EXPECT_NE(csv.find("index,kernel,variant,n,block"), std::string::npos);
  EXPECT_NE(csv.find("exp,copift,256,16"), std::string::npos);
  EXPECT_NE(csv.find("exp,copift,256,32"), std::string::npos);
  const std::string json = table.json();
  EXPECT_NE(json.find("\"kernel\":\"exp\""), std::string::npos);
  EXPECT_NE(json.find("\"block\":32"), std::string::npos);
}

// Regression: find() ignored the cores and seed axes, so in a cores/seed
// sweep it silently returned the first row of the wrong configuration.
TEST(ResultTable, FindDisambiguatesByCoresAndSeed) {
  Experiment e;
  e.over("axpy").over(Variant::kCopift).n(256).sweep_cores({1, 2}).sweep_seeds({7, 9});
  SimEngine pool(4);
  const auto table = e.run(pool);
  ASSERT_EQ(table.size(), 4u);

  for (const std::uint32_t cores : {1u, 2u}) {
    for (const std::uint32_t seed : {7u, 9u}) {
      const auto* row = table.find("axpy", Variant::kCopift, 0, 0, {}, cores, seed);
      ASSERT_NE(row, nullptr) << "cores=" << cores << " seed=" << seed;
      EXPECT_EQ(row->point.config.cores, cores);
      EXPECT_EQ(row->point.config.seed, seed);
    }
  }
  // Unfiltered lookups keep the historical "first match" behaviour.
  const auto* first = table.find("axpy", Variant::kCopift);
  ASSERT_NE(first, nullptr);
  EXPECT_EQ(first->point.index, 0u);
  // seed=0 must mean "exactly seed 0" (no row here), not "any".
  EXPECT_EQ(table.find("axpy", Variant::kCopift, 0, 0, {}, 0, 0u), nullptr);
  EXPECT_EQ(table.find("axpy", Variant::kCopift, 0, 0, {}, 4), nullptr);
}

namespace {

/// Minimal RFC 4180 parser: split one CSV record into fields, honouring
/// quoted fields with doubled quotes. Used to prove the emitted CSV
/// round-trips through a conforming reader.
std::vector<std::string> parse_csv_record(const std::string& line) {
  std::vector<std::string> fields;
  std::string cur;
  bool quoted = false;
  for (std::size_t i = 0; i < line.size(); ++i) {
    const char c = line[i];
    if (quoted) {
      if (c == '"' && i + 1 < line.size() && line[i + 1] == '"') {
        cur += '"';
        ++i;
      } else if (c == '"') {
        quoted = false;
      } else {
        cur += c;
      }
    } else if (c == '"') {
      quoted = true;
    } else if (c == ',') {
      fields.push_back(cur);
      cur.clear();
    } else {
      cur += c;
    }
  }
  fields.push_back(cur);
  return fields;
}

/// Minimal JSON string decoder for the escapes write_json produces.
std::string decode_json_string(const std::string& s) {
  std::string out;
  for (std::size_t i = 0; i < s.size(); ++i) {
    if (s[i] != '\\') {
      out += s[i];
      continue;
    }
    ++i;
    switch (s[i]) {
      case '"': out += '"'; break;
      case '\\': out += '\\'; break;
      case 'n': out += '\n'; break;
      case 'r': out += '\r'; break;
      case 't': out += '\t'; break;
      case 'u':
        out += static_cast<char>(std::stoi(s.substr(i + 1, 4), nullptr, 16));
        i += 4;
        break;
      default: out += s[i];
    }
  }
  return out;
}

}  // namespace

// Regression: params labels (and workload names) were written unescaped, so
// a label containing a comma corrupted the CSV columns and a quote produced
// invalid JSON.
TEST(ResultTable, HostileLabelsRoundTripThroughCsvAndJson) {
  const std::string hostile = "fifo=1,\"deep\" mode\nline2";
  Experiment e;
  e.over("exp").over(Variant::kCopift).n(256).block(32);
  e.with_params(hostile, sim::SimParams{});
  SimEngine pool(2);
  const auto table = e.run(pool);
  ASSERT_EQ(table.size(), 1u);

  // CSV: the header names the column layout; the data record must parse back
  // to the same number of fields with the label intact.
  const std::string csv = table.csv();
  const std::size_t header_end = csv.find('\n');
  ASSERT_NE(header_end, std::string::npos);
  const auto header = parse_csv_record(csv.substr(0, header_end));
  // The record may legitimately contain an escaped newline; take the rest.
  const auto record = parse_csv_record(
      csv.substr(header_end + 1, csv.size() - header_end - 2));
  ASSERT_EQ(record.size(), header.size());
  std::size_t params_col = 0;
  for (std::size_t i = 0; i < header.size(); ++i) {
    if (header[i] == "params") params_col = i;
  }
  EXPECT_EQ(record[params_col], hostile);
  EXPECT_EQ(record[1], "exp");  // neighbouring columns uncorrupted
  EXPECT_EQ(record[2], "copift");

  // JSON: extract the "params" string value and decode it.
  const std::string json = table.json();
  const std::string key = "\"params\":\"";
  const std::size_t start = json.find(key);
  ASSERT_NE(start, std::string::npos);
  std::size_t end = start + key.size();
  while (end < json.size() && !(json[end] == '"' && json[end - 1] != '\\')) ++end;
  EXPECT_EQ(decode_json_string(json.substr(start + key.size(), end - start - key.size())),
            hostile);
  // No raw control characters may survive inside the JSON document.
  for (const char c : json) EXPECT_NE(c, '\t');
  EXPECT_EQ(json.find(hostile), std::string::npos);  // i.e. it was escaped
}

}  // namespace
}  // namespace copift::engine

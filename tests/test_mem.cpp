#include <gtest/gtest.h>

#include <algorithm>
#include <random>

#include "common/error.hpp"
#include "common/layout.hpp"
#include "mem/address_space.hpp"
#include "mem/dma.hpp"
#include "mem/l0_icache.hpp"
#include "mem/tcdm.hpp"

namespace copift::mem {
namespace {

TEST(AddressSpace, RoundTripAllWidths) {
  AddressSpace m;
  m.store8(kTcdmBase, 0xAB);
  EXPECT_EQ(m.load8(kTcdmBase), 0xAB);
  m.store16(kTcdmBase + 2, 0xBEEF);
  EXPECT_EQ(m.load16(kTcdmBase + 2), 0xBEEF);
  m.store32(kTcdmBase + 4, 0xDEADBEEF);
  EXPECT_EQ(m.load32(kTcdmBase + 4), 0xDEADBEEFu);
  m.store64(kTcdmBase + 8, 0x0102030405060708ull);
  EXPECT_EQ(m.load64(kTcdmBase + 8), 0x0102030405060708ull);
  m.store64(kDramBase, 42);
  EXPECT_EQ(m.load64(kDramBase), 42u);
}

TEST(AddressSpace, LittleEndianLayout) {
  AddressSpace m;
  m.store32(kTcdmBase, 0x04030201);
  EXPECT_EQ(m.load8(kTcdmBase), 0x01);
  EXPECT_EQ(m.load8(kTcdmBase + 3), 0x04);
}

TEST(AddressSpace, UnmappedThrows) {
  AddressSpace m;
  EXPECT_THROW(m.load32(0x100), SimError);
  EXPECT_THROW(m.store32(kTcdmBase + kTcdmSize, 1), SimError);
  EXPECT_THROW(m.load64(kTcdmBase + kTcdmSize - 4), SimError);  // straddles end
}

TEST(AddressSpace, BlockWriteAndCopy) {
  AddressSpace m;
  m.write_block(kTcdmBase, {1, 2, 3, 4});
  EXPECT_EQ(m.load32(kTcdmBase), 0x04030201u);
  m.copy(kTcdmBase + 16, kTcdmBase, 4);
  EXPECT_EQ(m.load32(kTcdmBase + 16), 0x04030201u);
  m.copy(kDramBase, kTcdmBase, 4);
  EXPECT_EQ(m.load32(kDramBase), 0x04030201u);
}

TEST(Tcdm, NoConflictDifferentBanks) {
  TcdmArbiter arb(32);
  std::vector<TcdmRequest> reqs = {
      {TcdmPort::kIntLsu, kTcdmBase + 0},
      {TcdmPort::kSsr0, kTcdmBase + 8},
      {TcdmPort::kSsr1, kTcdmBase + 16},
  };
  EXPECT_EQ(arb.arbitrate(reqs), 0b111u);
  EXPECT_EQ(arb.conflicts(), 0u);
}

TEST(Tcdm, ConflictSameBank) {
  TcdmArbiter arb(32);
  std::vector<TcdmRequest> reqs = {
      {TcdmPort::kIntLsu, kTcdmBase + 0},
      {TcdmPort::kSsr0, kTcdmBase + 0},  // same bank
  };
  const auto grants = arb.arbitrate(reqs);
  EXPECT_EQ(__builtin_popcountll(grants), 1);
  EXPECT_EQ(arb.conflicts(), 1u);
}

TEST(Tcdm, SameBankDifferentWord) {
  TcdmArbiter arb(4);  // 4 banks: addresses 32 bytes apart share a bank
  std::vector<TcdmRequest> reqs = {
      {TcdmPort::kIntLsu, kTcdmBase + 0},
      {TcdmPort::kSsr0, kTcdmBase + 32},
  };
  EXPECT_EQ(__builtin_popcountll(arb.arbitrate(reqs)), 1);
}

TEST(Tcdm, RoundRobinFairness) {
  TcdmArbiter arb(32);
  // Two requesters fighting for the same bank must alternate.
  int wins0 = 0;
  int wins1 = 0;
  for (int i = 0; i < 100; ++i) {
    std::vector<TcdmRequest> reqs = {
        {TcdmPort::kIntLsu, kTcdmBase}, {TcdmPort::kSsr0, kTcdmBase}};
    const auto grants = arb.arbitrate(reqs);
    if (grants & 1) ++wins0;
    if (grants & 2) ++wins1;
  }
  EXPECT_EQ(wins0 + wins1, 100);
  EXPECT_GT(wins0, 20);
  EXPECT_GT(wins1, 20);
}

TEST(Tcdm, BankOfInterleaving) {
  TcdmArbiter arb(32);
  EXPECT_EQ(arb.bank_of(kTcdmBase + 0), arb.bank_of(kTcdmBase + 32 * 8));
  EXPECT_NE(arb.bank_of(kTcdmBase + 0), arb.bank_of(kTcdmBase + 8));
}

namespace {

/// Reference arbitration: the pre-optimization algorithm (rotating priority
/// via a stable sort over the requests), transcribed verbatim. The
/// production arbiter replaced the per-cycle sort and scratch allocations
/// with rotating-start chain iteration; grants must stay bit-identical.
class ReferenceArbiter {
 public:
  ReferenceArbiter(unsigned num_banks, unsigned num_harts)
      : num_banks_(num_banks), num_requesters_(kNumTcdmPorts * num_harts) {}

  std::uint64_t arbitrate(const std::vector<TcdmRequest>& requests) {
    std::uint64_t granted = 0;
    std::vector<bool> bank_taken(num_banks_, false);
    std::vector<unsigned> order(requests.size());
    for (unsigned i = 0; i < requests.size(); ++i) order[i] = i;
    const auto priority = [&](const TcdmRequest& r) {
      const unsigned id = r.hart * kNumTcdmPorts + static_cast<unsigned>(r.port);
      return (id + num_requesters_ - rr_) % num_requesters_;
    };
    std::stable_sort(order.begin(), order.end(), [&](unsigned a, unsigned b) {
      return priority(requests[a]) < priority(requests[b]);
    });
    for (unsigned i : order) {
      const unsigned bank = (requests[i].addr >> 3) % num_banks_;
      if (bank_taken[bank]) continue;
      bank_taken[bank] = true;
      granted |= (std::uint64_t{1} << i);
    }
    rr_ = (rr_ + 1) % num_requesters_;
    return granted;
  }

 private:
  unsigned num_banks_;
  unsigned num_requesters_;
  unsigned rr_ = 0;
};

}  // namespace

// Guard for the allocation-free rewrite: randomized multi-hart request
// patterns over thousands of cycles must produce exactly the grant masks of
// the historical stable-sort arbiter (same rotating-priority decisions, same
// conflict counts).
TEST(Tcdm, RotatingIterationMatchesStableSortReference) {
  constexpr unsigned kBanks = 8;
  constexpr unsigned kHarts = 4;
  TcdmArbiter arb(kBanks, kHarts);
  ReferenceArbiter ref(kBanks, kHarts);
  std::mt19937 rng(1234);
  std::uint64_t total_grants = 0;
  for (int cycle = 0; cycle < 5000; ++cycle) {
    std::vector<TcdmRequest> reqs;
    // Each (hart, port) pair presents at most one request, like the cluster.
    for (unsigned h = 0; h < kHarts; ++h) {
      for (unsigned p = 0; p < kNumTcdmPorts; ++p) {
        if ((rng() & 3u) != 0) continue;  // ~25% of ports active per cycle
        TcdmRequest r;
        r.port = static_cast<TcdmPort>(p);
        r.addr = kTcdmBase + (rng() % 64) * 8;
        r.hart = h;
        reqs.push_back(r);
      }
    }
    const std::uint64_t got = arb.arbitrate(reqs);
    const std::uint64_t want = ref.arbitrate(reqs);
    ASSERT_EQ(got, want) << "cycle " << cycle << " with " << reqs.size() << " requests";
    total_grants += static_cast<std::uint64_t>(__builtin_popcountll(got));
  }
  EXPECT_EQ(arb.grants(), total_grants);
  EXPECT_GT(arb.conflicts(), 0u);  // the pattern actually exercised conflicts
}

TEST(L0, SequentialStreamIsPrefetched) {
  L0ICache l0(8, 8, 2);
  unsigned total_penalty = 0;
  for (std::uint32_t pc = 0x1000; pc < 0x1000 + 4 * 100; pc += 4) {
    total_penalty += l0.fetch(pc);
  }
  // First line is a cold branch miss; every other line is prefetched.
  EXPECT_EQ(total_penalty, 2u);
  EXPECT_GT(l0.stats().sequential_refills, 10u);
}

TEST(L0, SmallLoopFits) {
  L0ICache l0(8, 8, 2);
  // 32-instruction loop executed 10 times: only cold refills.
  for (int iter = 0; iter < 10; ++iter) {
    for (std::uint32_t pc = 0x1000; pc < 0x1000 + 4 * 32; pc += 4) l0.fetch(pc);
  }
  EXPECT_EQ(l0.stats().refills(), 4u);  // 32 instrs = 4 lines, fetched once
  EXPECT_EQ(l0.stats().branch_misses + l0.stats().sequential_refills, 4u);
}

TEST(L0, LargeLoopThrashes) {
  L0ICache l0(8, 8, 2);  // 64-instruction capacity
  // 96-instruction loop: every iteration refills every line (FIFO).
  for (int iter = 0; iter < 10; ++iter) {
    for (std::uint32_t pc = 0x1000; pc < 0x1000 + 4 * 96; pc += 4) l0.fetch(pc);
  }
  EXPECT_GE(l0.stats().refills(), 10u * 12u - 12u);
}

TEST(L0, FlushEvicts) {
  L0ICache l0(8, 8, 2);
  l0.fetch(0x1000);
  l0.reset_stats();
  l0.fetch(0x1000);
  EXPECT_EQ(l0.stats().hits, 1u);
  l0.flush();
  l0.reset_stats();
  EXPECT_GT(l0.fetch(0x1000), 0u);  // branch miss again
}

TEST(Dma, CopiesAndTracksBusy) {
  AddressSpace m;
  for (unsigned i = 0; i < 256; ++i) m.store8(kDramBase + i, static_cast<std::uint8_t>(i));
  DmaEngine dma(m, 64);
  dma.set_src(kDramBase);
  dma.set_dst(kTcdmBase);
  dma.start(256);
  EXPECT_EQ(dma.pending(), 1u);
  unsigned ticks = 0;
  while (dma.pending() > 0 && ticks < 100) {
    dma.tick();
    ++ticks;
  }
  EXPECT_EQ(ticks, 4u);  // 256 bytes at 64 B/cycle
  EXPECT_EQ(dma.busy_cycles(), 4u);
  EXPECT_EQ(dma.bytes_moved(), 256u);
  for (unsigned i = 0; i < 256; ++i) EXPECT_EQ(m.load8(kTcdmBase + i), i);
}

TEST(Dma, QueuesMultipleTransfers) {
  AddressSpace m;
  DmaEngine dma(m, 64);
  dma.set_src(kDramBase);
  dma.set_dst(kTcdmBase);
  dma.start(64);
  dma.set_src(kDramBase + 1024);
  dma.set_dst(kTcdmBase + 1024);
  dma.start(64);
  EXPECT_EQ(dma.pending(), 2u);
  dma.tick();
  EXPECT_EQ(dma.pending(), 1u);
  dma.tick();
  EXPECT_EQ(dma.pending(), 0u);
  dma.tick();  // idle tick
  EXPECT_EQ(dma.busy_cycles(), 2u);
}

}  // namespace
}  // namespace copift::mem

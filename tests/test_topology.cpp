// Multi-hart topology tests: SimParams/ClusterTopology validation, the
// mhartid + hardware-barrier primitives, per-hart counter identity, the
// bit-exactness of multi-hart workload results against the single-hart
// reference, per-complex energy attribution, and engine sweeps over the
// cores axis at different thread counts.
#include "sim/topology.hpp"

#include <gtest/gtest.h>

#include <functional>
#include <memory>
#include <sstream>

#include "common/error.hpp"
#include "engine/experiment.hpp"
#include "kernels/runner.hpp"
#include "rvasm/assembler.hpp"
#include "sim/cluster.hpp"
#include "sim/trace_export.hpp"
#include "workload/workload.hpp"

namespace copift::sim {
namespace {

using workload::Variant;
using workload::WorkloadConfig;

/// Per-unit accounting identity on one hart: every cycle attributed once.
void expect_hart_identity(const Cluster& cluster, unsigned hart) {
  const ActivityCounters& c = cluster.complex(hart).counters();
  EXPECT_EQ(c.int_issue_cycles() + c.int_stall_cycles() + c.int_halt_cycles, cluster.cycles())
      << "hart " << hart;
  EXPECT_EQ(c.fpss_issue_cycles() + c.fpss_stall_cycles() + c.fpss_idle, cluster.cycles())
      << "hart " << hart;
}

/// Assembled multi-hart axpy instance plus the cluster that ran it.
struct AxpyRun {
  kernels::GeneratedKernel kernel;
  std::unique_ptr<Cluster> cluster;
};

AxpyRun run_axpy(std::uint32_t n, std::uint32_t cores, Variant variant = Variant::kCopift,
                 bool tracing = false) {
  WorkloadConfig cfg;
  cfg.n = n;
  cfg.cores = cores;
  AxpyRun out;
  out.kernel = workload::generate("axpy", variant, cfg);
  SimParams params;
  params.num_cores = cores;
  out.cluster = std::make_unique<Cluster>(rvasm::assemble(out.kernel.source), params);
  if (tracing) out.cluster->set_tracing(true);
  kernels::populate_inputs(*out.cluster, out.kernel);
  out.cluster->run();
  return out;
}

// --- SimParams / topology validation (satellite) -----------------------------

TEST(SimParamsValidate, RejectsBadConfigurationsWithDescriptiveErrors) {
  const struct {
    const char* expect;  // substring of the error message
    std::function<void(SimParams&)> corrupt;
  } kCases[] = {
      {"num_cores", [](SimParams& p) { p.num_cores = 0; }},
      {"exceeds the cluster maximum", [](SimParams& p) { p.num_cores = kMaxHarts + 1; }},
      {"num_tcdm_banks", [](SimParams& p) { p.num_tcdm_banks = 0; }},
      {"offload_fifo_depth", [](SimParams& p) { p.offload_fifo_depth = 0; }},
      {"ssr_fifo_depth", [](SimParams& p) { p.ssr_fifo_depth = 0; }},
      {"frep_capacity", [](SimParams& p) { p.frep_capacity = 0; }},
      {"power of two", [](SimParams& p) { p.l0_lines = 3; }},
      {"l0_words_per_line", [](SimParams& p) { p.l0_words_per_line = 0; }},
      {"dma_bytes_per_cycle", [](SimParams& p) { p.dma_bytes_per_cycle = 0; }},
      {"max_cycles", [](SimParams& p) { p.max_cycles = 0; }},
  };
  EXPECT_NO_THROW(SimParams{}.validate());
  for (const auto& c : kCases) {
    SimParams p;
    c.corrupt(p);
    try {
      p.validate();
      FAIL() << "expected an exception mentioning '" << c.expect << "'";
    } catch (const Error& e) {
      EXPECT_NE(std::string(e.what()).find(c.expect), std::string::npos) << e.what();
    }
  }
}

TEST(SimParamsValidate, ClusterConstructorValidates) {
  SimParams bad;
  bad.num_tcdm_banks = 0;
  EXPECT_THROW(Cluster(rvasm::assemble("ecall\n"), bad), Error);
  ClusterTopology empty;
  empty.cores(0);
  EXPECT_THROW(Cluster(rvasm::assemble("ecall\n"), empty), Error);
  SimParams none;
  none.num_cores = 0;
  EXPECT_THROW(Cluster(rvasm::assemble("ecall\n"), none), Error);
}

TEST(ClusterTopology, AbsurdCoreCountFailsWithoutAllocating) {
  // cores() must not materialize a billion SimParams before validate() can
  // reject the request with the descriptive error.
  ClusterTopology huge = ClusterTopology().cores(1'000'000'000);
  try {
    huge.validate();
    FAIL() << "expected an exception";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("exceeds the cluster maximum"), std::string::npos)
        << e.what();
    EXPECT_NE(std::string(e.what()).find("1000000000"), std::string::npos) << e.what();
  }
}

TEST(ClusterTopology, BuilderComposesHomogeneousAndHeterogeneous) {
  ClusterTopology quad = ClusterTopology().cores(4);
  EXPECT_EQ(quad.num_cores(), 4u);
  EXPECT_NO_THROW(quad.validate());

  SimParams slow;
  slow.mul_latency = 9;
  ClusterTopology hetero = ClusterTopology().add_complex(slow);
  ASSERT_EQ(hetero.num_cores(), 2u);
  EXPECT_EQ(hetero.complex(0).mul_latency, SimParams{}.mul_latency);
  EXPECT_EQ(hetero.complex(1).mul_latency, 9u);
  EXPECT_NO_THROW(hetero.validate());
}

TEST(ClusterTopology, SingleCoreTopologyMatchesParamsConstructor) {
  const auto kernel = workload::generate("exp", Variant::kCopift, WorkloadConfig{});
  const auto program = kernels::assemble_kernel(kernel);

  Cluster via_params(program);
  kernels::populate_inputs(via_params, kernel);
  via_params.run();

  Cluster via_topology(program, ClusterTopology().cores(1));
  kernels::populate_inputs(via_topology, kernel);
  via_topology.run();

  EXPECT_EQ(via_params.cycles(), via_topology.cycles());
  EXPECT_EQ(via_params.counters().int_retired, via_topology.counters().int_retired);
  EXPECT_EQ(via_params.counters().fp_retired, via_topology.counters().fp_retired);
  EXPECT_EQ(via_params.counters().int_stall_cycles(),
            via_topology.counters().int_stall_cycles());
}

// --- mhartid + hardware barrier ----------------------------------------------

TEST(HwBarrier, HartsIdentifyThemselvesAndSynchronize) {
  const char* kSource = R"(
  .data
  .align 3
out:
  .space 64
  .text
_start:
  csrr t0, mhartid
  slli t1, t0, 3
  la t2, out
  add t2, t2, t1
  sw t0, 0(t2)
  csrr zero, barrier
  ecall
)";
  SimParams params;
  params.num_cores = 4;
  Cluster cluster(rvasm::assemble(kSource), params);
  const auto result = cluster.run();
  EXPECT_TRUE(result.halted);
  EXPECT_EQ(cluster.barrier().rounds(), 1u);
  const std::uint32_t out = cluster.program().symbol("out");
  std::uint64_t total_wait = 0;
  for (unsigned h = 0; h < 4; ++h) {
    EXPECT_EQ(cluster.memory().load32(out + 8 * h), h) << "hart " << h;
    EXPECT_EQ(cluster.complex(h).counters().barriers, 1u) << "hart " << h;
    total_wait += cluster.complex(h).counters().stall_hw_barrier;
    expect_hart_identity(cluster, h);
  }
  // The harts do not all arrive in the same relative slot; someone waited.
  EXPECT_GT(total_wait, 0u);
}

TEST(HwBarrier, SingleHartPassesImmediately) {
  Cluster cluster(rvasm::assemble("csrr zero, barrier\necall\n"));
  cluster.run();
  EXPECT_EQ(cluster.counters().stall_hw_barrier, 0u);
  EXPECT_EQ(cluster.counters().barriers, 1u);
}

// --- per-hart counters and bit-exact multi-hart results ----------------------

TEST(MultiHart, PerHartIdentityOnEveryHartAndVariant) {
  for (const Variant variant : {Variant::kBaseline, Variant::kCopift}) {
    for (const std::uint32_t cores : {1u, 2u, 4u, 8u}) {
      SCOPED_TRACE(std::string(workload::variant_name(variant)) + " cores=" +
                   std::to_string(cores));
      const AxpyRun run = run_axpy(512, cores, variant);
      for (unsigned h = 0; h < cores; ++h) {
        expect_hart_identity(*run.cluster, h);
        EXPECT_GT(run.cluster->complex(h).counters().retired(), 0u) << "hart " << h;
      }
      EXPECT_NO_THROW(kernels::verify_outputs(*run.cluster, run.kernel));
    }
  }
}

TEST(MultiHart, AxpyOutputsBitExactVsSingleHartReference) {
  const AxpyRun single = run_axpy(512, 1);
  const AxpyRun quad = run_axpy(512, 4);
  const std::uint32_t ybase = single.cluster->program().symbol("yarr");
  for (std::uint32_t i = 0; i < 512; ++i) {
    EXPECT_EQ(single.cluster->memory().load64(ybase + i * 8),
              quad.cluster->memory().load64(ybase + i * 8))
        << "element " << i;
  }
  // Partitioning actually bought wall time, and the shared TCDM pushed back.
  EXPECT_LT(quad.cluster->cycles(), single.cluster->cycles());
  EXPECT_GT(quad.cluster->counters().tcdm_conflicts, 0u);
}

TEST(MultiHart, AggregateCountersSumHarts) {
  const AxpyRun quad = run_axpy(512, 4);
  const ActivityCounters& agg = quad.cluster->counters();
  std::uint64_t fp_retired = 0;
  std::uint64_t conflicts = 0;
  for (unsigned h = 0; h < 4; ++h) {
    fp_retired += quad.cluster->complex(h).counters().fp_retired;
    conflicts += quad.cluster->complex(h).counters().tcdm_conflicts;
  }
  EXPECT_EQ(agg.fp_retired, fp_retired);
  EXPECT_EQ(agg.tcdm_conflicts, conflicts);
  EXPECT_EQ(agg.cycles, quad.cluster->cycles());
}

TEST(MultiHart, TracingCoversEveryHartCycleAndStaysTransparent) {
  const AxpyRun plain = run_axpy(256, 2);
  const AxpyRun traced = run_axpy(256, 2, Variant::kCopift, /*tracing=*/true);
  EXPECT_EQ(plain.cluster->cycles(), traced.cluster->cycles());
  for (unsigned h = 0; h < 2; ++h) {
    const Tracer& t = traced.cluster->complex(h).tracer();
    std::uint64_t int_slots = 0;
    std::uint64_t fp_slots = 0;
    for (const TraceEntry& e : t.entries()) {
      (e.unit == TraceUnit::kIntCore ? int_slots : fp_slots) += 1;
    }
    for (const StallEvent& s : t.stalls()) {
      (s.unit == TraceUnit::kIntCore ? int_slots : fp_slots) += 1;
    }
    EXPECT_EQ(int_slots, traced.cluster->cycles()) << "hart " << h;
    EXPECT_EQ(fp_slots, traced.cluster->cycles()) << "hart " << h;
  }
}

TEST(MultiHart, ChromeTraceEmitsOneTrackGroupPerHart) {
  const AxpyRun traced = run_axpy(256, 2, Variant::kCopift, /*tracing=*/true);
  std::ostringstream os;
  write_chrome_trace(os, *traced.cluster);
  const std::string json = os.str();
  EXPECT_NE(json.find("\"hart 0\""), std::string::npos);
  EXPECT_NE(json.find("\"hart 1\""), std::string::npos);
  EXPECT_NE(json.find("\"pid\":1"), std::string::npos);

  const std::string summary = render_hart_summary(*traced.cluster);
  EXPECT_NE(summary.find("hart 0"), std::string::npos);
  EXPECT_NE(summary.find("hart 1"), std::string::npos);
  EXPECT_NE(summary.find("barrier-wait"), std::string::npos);
}

// --- per-complex energy attribution ------------------------------------------

TEST(MultiHart, KernelRunAttributesRegionAndEnergyPerComplex) {
  WorkloadConfig cfg;
  cfg.n = 512;
  cfg.cores = 4;
  const auto run =
      kernels::run_kernel(workload::generate("axpy", Variant::kCopift, cfg));
  EXPECT_TRUE(run.verified);
  ASSERT_EQ(run.hart_region.size(), 4u);
  ASSERT_EQ(run.hart_energy.size(), 4u);
  double total_pj = 0.0;
  for (unsigned h = 0; h < 4; ++h) {
    EXPECT_GT(run.hart_region[h].fp_retired, 0u) << "hart " << h;
    EXPECT_GT(run.hart_energy[h].total_pj, 0.0) << "hart " << h;
    total_pj += run.hart_energy[h].total_pj;
  }
  EXPECT_DOUBLE_EQ(run.region_energy.total_pj, total_pj);
  // Hart 0 carries the cluster-constant terms; the others only their
  // complex constant.
  EXPECT_GT(run.hart_energy[0].constant_pj, run.hart_energy[1].constant_pj);

  // Single-core runs keep the historical shape: no per-hart vectors.
  cfg.cores = 1;
  const auto single =
      kernels::run_kernel(workload::generate("axpy", Variant::kCopift, cfg));
  EXPECT_TRUE(single.hart_region.empty());
  EXPECT_TRUE(single.hart_energy.empty());
}

// --- config validation for the cores axis ------------------------------------

TEST(MultiHart, ValidationRejectsUnsupportedOrUnsplittableConfigs) {
  WorkloadConfig cfg;
  cfg.cores = 2;
  try {
    // softmax needs cluster-wide max/sum reductions and stays single-core.
    (void)workload::generate("softmax", Variant::kBaseline, cfg);
    FAIL() << "expected an exception";
  } catch (const workload::ConfigError& e) {
    EXPECT_NE(std::string(e.what()).find("no multi-hart variant"), std::string::npos)
        << e.what();
  }
  cfg.n = 1024;
  cfg.cores = 3;
  EXPECT_THROW((void)workload::generate("axpy", Variant::kCopift, cfg),
               workload::ConfigError);
  cfg.cores = 0;
  EXPECT_THROW((void)workload::generate("axpy", Variant::kCopift, cfg),
               workload::ConfigError);
  cfg.cores = kMaxHarts * 2;
  EXPECT_THROW((void)workload::generate("axpy", Variant::kCopift, cfg),
               workload::ConfigError);
}

// --- engine sweeps over the cores axis ---------------------------------------

TEST(MultiHart, EngineCoresSweepBitIdenticalAcrossThreadCounts) {
  engine::Experiment e;
  e.over("axpy").over(Variant::kCopift).n(256).sweep_cores({1, 2, 4, 8});
  engine::SimEngine serial(1);
  engine::SimEngine wide(8);
  const auto a = e.run(serial);
  const auto b = e.run(wide);
  ASSERT_EQ(a.size(), 4u);
  EXPECT_EQ(a.csv(), b.csv());
  EXPECT_EQ(a.json(), b.json());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_TRUE(a.at(i).run.verified);
    EXPECT_EQ(a.at(i).run.result.cycles, b.at(i).run.result.cycles);
  }
  // More harts, fewer cycles — the whole point of the topology.
  EXPECT_GT(a.at(0).run.result.cycles, a.at(3).run.result.cycles);
  EXPECT_NE(a.csv().find(",cores,"), std::string::npos);
}

}  // namespace
}  // namespace copift::sim

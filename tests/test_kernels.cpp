#include <gtest/gtest.h>

#include <cmath>

#include "kernels/glibc_math.hpp"
#include "kernels/montecarlo.hpp"
#include "kernels/prng.hpp"
#include "kernels/runner.hpp"

#include "common/error.hpp"

namespace copift::kernels {
namespace {

TEST(Prng, LcgKnownSequence) {
  Lcg gen(0);
  EXPECT_EQ(gen.next(), 1013904223u);
  EXPECT_EQ(gen.next(), 1196435762u);  // 1664525*1013904223 + 1013904223 mod 2^32
}

TEST(Prng, LcgFullState) {
  Lcg gen(42);
  gen.next();
  EXPECT_EQ(gen.state(), 42u * Lcg::kMul + Lcg::kInc);
}

TEST(Prng, XoshiroMatchesReferenceAlgorithm) {
  // Reference implementation from Blackman & Vigna, transcribed inline.
  std::array<std::uint32_t, 4> s = {1, 2, 3, 4};
  Xoshiro128Plus gen(s);
  for (int i = 0; i < 100; ++i) {
    const std::uint32_t expected = s[0] + s[3];
    const std::uint32_t t = s[1] << 9;
    s[2] ^= s[0];
    s[3] ^= s[1];
    s[1] ^= s[2];
    s[0] ^= s[3];
    s[2] ^= t;
    s[3] = (s[3] << 11) | (s[3] >> 21);
    EXPECT_EQ(gen.next(), expected);
  }
}

TEST(Prng, SeededStateIsNonZeroAndDeterministic) {
  const auto a = Xoshiro128Plus::seeded(7);
  const auto b = Xoshiro128Plus::seeded(7);
  EXPECT_EQ(a.state(), b.state());
  const auto c = Xoshiro128Plus::seeded(8);
  EXPECT_NE(a.state(), c.state());
}

TEST(Prng, UnitDoubleRange) {
  EXPECT_EQ(to_unit_double(0), 0.0);
  EXPECT_LT(to_unit_double(0xFFFFFFFFu), 1.0);
  EXPECT_NEAR(to_unit_double(0x80000000u), 0.5, 1e-9);
}

TEST(GlibcMath, ExpMatchesStdExp) {
  for (double x = -0.95; x < 1.0; x += 0.01) {
    const double got = ref_exp(x);
    const double expected = std::exp(x);
    EXPECT_NEAR(got / expected, 1.0, 1e-7) << "x=" << x;
  }
}

TEST(GlibcMath, ExpTableStructure) {
  const auto& tab = exp_table();
  // T[0] encodes exp2(0) == 1.0 exactly.
  EXPECT_EQ(copift::bit_cast<double>(tab[0]), 1.0);
  // Adding back the (i << 47) term reconstructs 2^(i/32).
  for (unsigned i = 0; i < kExpTableSize; ++i) {
    const double v = copift::bit_cast<double>(tab[i] + (static_cast<std::uint64_t>(i) << 47));
    EXPECT_NEAR(v, std::exp2(i / 32.0), 1e-15);
  }
}

TEST(GlibcMath, ExpNearZeroIsExact) {
  EXPECT_EQ(ref_exp(0.0), 1.0);
}

TEST(GlibcMath, LogMatchesStdLog) {
  for (float x = 0.26f; x < 4.0f; x += 0.0137f) {
    const double got = ref_log(x);
    const double expected = std::log(static_cast<double>(x));
    EXPECT_NEAR(got - expected, 0.0, 2e-8) << "x=" << x;
  }
}

TEST(GlibcMath, LogDecomposeRoundTrips) {
  for (float x : {0.3f, 0.7f, 1.0f, 1.5f, 2.0f, 3.9f}) {
    const LogDecomposition d = log_decompose(x);
    EXPECT_LT(d.index, kLogTableSize);
    const float z = copift::bit_cast<float>(d.iz_bits);
    // x == z * 2^k by construction.
    EXPECT_NEAR(static_cast<double>(z) * std::exp2(d.k), x, 1e-6);
    EXPECT_GT(z, 0.69f);
    EXPECT_LT(z, 1.4f);
  }
}

TEST(GlibcMath, LogTableInverse) {
  for (const auto& e : log_table()) {
    // logc == log(1/invc) by construction.
    EXPECT_NEAR(e.logc, -std::log(e.invc), 1e-12);
  }
}

TEST(MonteCarlo, PolySchemesAgreeToUlps) {
  for (double x = 0.0; x < 1.0; x += 0.003) {
    const double h = mc_poly(x, PolyScheme::kHorner);
    const double e = mc_poly(x, PolyScheme::kEstrin);
    const double eo = mc_poly(x, PolyScheme::kEvenOdd);
    EXPECT_NEAR(h, e, 1e-14);
    EXPECT_NEAR(h, eo, 1e-14);
  }
}

TEST(MonteCarlo, PolyRangeIsUnitInterval) {
  EXPECT_NEAR(mc_poly(0.0), 1.0 / 6, 1e-15);
  EXPECT_NEAR(mc_poly(1.0), 1.0, 1e-12);
}

TEST(MonteCarlo, PiEstimateConverges) {
  const std::uint64_t n = 80000;
  const std::uint64_t hits = ref_pi_hits_lcg(7, n);
  const double pi = 4.0 * static_cast<double>(hits) / static_cast<double>(n);
  EXPECT_NEAR(pi, 3.14159, 0.05);
}

TEST(MonteCarlo, PolyEstimateConvergesToIntegral) {
  // Integral of P over [0,1] = (1/6)(1 + 1/2 + 1/3 + 1/4 + 1/5 + 1/6).
  const double expected = (1.0 + 0.5 + 1 / 3.0 + 0.25 + 0.2 + 1 / 6.0) / 6.0;
  const std::uint64_t n = 80000;
  const std::uint64_t hits = ref_poly_hits_xoshiro(11, n);
  EXPECT_NEAR(static_cast<double>(hits) / static_cast<double>(n), expected, 0.02);
}

TEST(MonteCarlo, DifferentSeedsDiffer) {
  EXPECT_NE(ref_pi_hits_lcg(1, 8000), ref_pi_hits_lcg(2, 8000));
  EXPECT_NE(ref_pi_hits_xoshiro(1, 8000), ref_pi_hits_xoshiro(2, 8000));
}

TEST(MonteCarlo, RequiresUnrollMultiple) {
  EXPECT_THROW(ref_pi_hits_lcg(1, 12), copift::Error);
}

TEST(Generators, AllVariantsProduceAssembly) {
  KernelConfig cfg;
  cfg.n = 64;
  cfg.block = 16;
  for (const auto id : kAllKernels) {
    for (const auto v : {Variant::kBaseline, Variant::kCopift}) {
      const auto g = generate(id, v, cfg);
      EXPECT_FALSE(g.source.empty());
      EXPECT_NE(g.source.find("_start"), std::string::npos);
      EXPECT_NE(g.source.find("body_begin"), std::string::npos);
      EXPECT_NE(g.source.find("ecall"), std::string::npos);
    }
  }
}

TEST(Generators, CopiftUsesPaperMechanisms) {
  KernelConfig cfg;
  cfg.n = 64;
  cfg.block = 16;
  for (const auto id : kAllKernels) {
    const auto g = generate(id, Variant::kCopift, cfg);
    EXPECT_NE(g.source.find("frep.o"), std::string::npos) << kernel_name(id);
    EXPECT_NE(g.source.find("scfgwi"), std::string::npos) << kernel_name(id);
    EXPECT_NE(g.source.find("copift.barrier"), std::string::npos) << kernel_name(id);
  }
  // MC kernels use the Xcopift conversions/comparisons.
  const auto mc = generate(KernelId::kPiLcg, Variant::kCopift, cfg);
  EXPECT_NE(mc.source.find("fcvt.d.wu.cop"), std::string::npos);
  EXPECT_NE(mc.source.find("flt.d.cop"), std::string::npos);
  // log uses the ISSR and fcvt.d.w.cop (paper Table I footnotes * and ‡).
  const auto lg = generate(KernelId::kLog, Variant::kCopift, cfg);
  EXPECT_NE(lg.source.find("fcvt.d.w.cop"), std::string::npos);
}

TEST(Generators, InvalidConfigsThrow) {
  KernelConfig cfg;
  cfg.n = 100;  // not a multiple of block
  cfg.block = 32;
  EXPECT_THROW(generate(KernelId::kExp, Variant::kCopift, cfg), copift::Error);
  cfg.n = 32;
  cfg.block = 32;  // single block
  EXPECT_THROW(generate(KernelId::kExp, Variant::kCopift, cfg), copift::Error);
  cfg.n = 30;  // not a multiple of the MC unroll
  cfg.block = 30;
  EXPECT_THROW(generate(KernelId::kPiLcg, Variant::kBaseline, cfg), copift::Error);
}

TEST(Inputs, DeterministicPerSeed) {
  const auto a = exp_inputs(16, 1);
  const auto b = exp_inputs(16, 1);
  const auto c = exp_inputs(16, 2);
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
  for (double x : a) {
    EXPECT_GE(x, -1.0);
    EXPECT_LT(x, 1.0);
  }
  for (float x : log_inputs(64, 3)) {
    EXPECT_GE(x, 0.25f);
    EXPECT_LT(x, 4.0f);
  }
}

}  // namespace
}  // namespace copift::kernels

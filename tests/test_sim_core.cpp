#include <gtest/gtest.h>

#include "common/bits.hpp"
#include "common/error.hpp"
#include "common/layout.hpp"
#include "rvasm/assembler.hpp"
#include "sim/cluster.hpp"

namespace copift::sim {
namespace {

Cluster run(const std::string& src, SimParams params = {}) {
  Cluster cluster(rvasm::assemble(src), params);
  cluster.run();
  return cluster;
}

TEST(SimCore, ArithmeticAndHalt) {
  auto c = run(R"(
  li a0, 21
  slli a1, a0, 1
  add a2, a0, a1
  sub a3, a2, a0
  xor a4, a1, a1
  ecall
)");
  EXPECT_EQ(c.core().reg(10), 21u);
  EXPECT_EQ(c.core().reg(11), 42u);
  EXPECT_EQ(c.core().reg(12), 63u);
  EXPECT_EQ(c.core().reg(13), 42u);
  EXPECT_EQ(c.core().reg(14), 0u);
  EXPECT_TRUE(c.halted());
}

TEST(SimCore, X0IsHardwiredZero) {
  auto c = run("li a0, 5\nadd x0, a0, a0\nadd a1, x0, x0\necall\n");
  EXPECT_EQ(c.core().reg(0), 0u);
  EXPECT_EQ(c.core().reg(11), 0u);
}

TEST(SimCore, MulDivSemantics) {
  auto c = run(R"(
  li a0, -6
  li a1, 4
  mul a2, a0, a1
  mulhu a3, a0, a1
  div a4, a0, a1
  rem a5, a0, a1
  li a6, 1
  li a7, 0
  div s0, a6, a7
  rem s1, a6, a7
  ecall
)");
  EXPECT_EQ(static_cast<std::int32_t>(c.core().reg(12)), -24);
  EXPECT_EQ(c.core().reg(13), 3u);  // (2^32-6)*4 >> 32
  EXPECT_EQ(static_cast<std::int32_t>(c.core().reg(14)), -1);
  EXPECT_EQ(static_cast<std::int32_t>(c.core().reg(15)), -2);
  EXPECT_EQ(c.core().reg(8), 0xFFFFFFFFu);  // div by zero
  EXPECT_EQ(c.core().reg(9), 1u);           // rem by zero -> dividend
}

TEST(SimCore, LoadsStoresAllWidths) {
  auto c = run(R"(
.data
buf: .word 0
.text
  la a0, buf
  li a1, -2
  sw a1, 0(a0)
  lw a2, 0(a0)
  lh a3, 0(a0)
  lhu a4, 0(a0)
  lb a5, 0(a0)
  lbu a6, 0(a0)
  ecall
)");
  EXPECT_EQ(c.core().reg(12), 0xFFFFFFFEu);
  EXPECT_EQ(c.core().reg(13), 0xFFFFFFFEu);  // lh sign-extends
  EXPECT_EQ(c.core().reg(14), 0x0000FFFEu);
  EXPECT_EQ(c.core().reg(15), 0xFFFFFFFEu);
  EXPECT_EQ(c.core().reg(16), 0x000000FEu);
}

TEST(SimCore, LoopSumsCorrectly) {
  auto c = run(R"(
  li a0, 0
  li a1, 100
loop:
  add a0, a0, a1
  addi a1, a1, -1
  bnez a1, loop
  ecall
)");
  EXPECT_EQ(c.core().reg(10), 5050u);
}

TEST(SimCore, JalLinksAndJalrReturns) {
  auto c = run(R"(
  li a0, 1
  call sub
  addi a0, a0, 100
  ecall
sub:
  addi a0, a0, 10
  ret
)");
  EXPECT_EQ(c.core().reg(10), 111u);
}

TEST(SimCore, McycleAndMinstretProgress) {
  auto c = run(R"(
  csrr a0, mcycle
  csrr a1, minstret
  nop
  nop
  nop
  csrr a2, mcycle
  csrr a3, minstret
  ecall
)");
  EXPECT_GT(c.core().reg(12), c.core().reg(10));
  // Between the two minstret reads: the first csrr retires after its own
  // read, then 3 nops and the mcycle csrr: 5 instructions.
  EXPECT_EQ(c.core().reg(13) - c.core().reg(11), 5u);
}

TEST(SimCore, RegionMarkersSnapshotCounters) {
  auto c = run(R"(
  csrwi region, 1
  nop
  nop
  csrwi region, 2
  ecall
)");
  ASSERT_EQ(c.regions().size(), 2u);
  EXPECT_EQ(c.regions()[0].id, 1u);
  EXPECT_EQ(c.regions()[1].id, 2u);
  const auto delta = c.regions()[1].snapshot.minus(c.regions()[0].snapshot);
  EXPECT_EQ(delta.int_retired, 3u);  // 2 nops + the second marker... marker counted at issue
  EXPECT_GE(delta.cycles, 3u);
}

TEST(SimCore, LoadUseLatencyStalls) {
  // Dependent use immediately after a load pays the load-use latency.
  SimParams p;
  auto c1 = run(R"(
.data
v: .word 7
.text
  la a0, v
  csrwi region, 1
  lw a1, 0(a0)
  addi a2, a1, 1
  csrwi region, 2
  ecall
)", p);
  auto c2 = run(R"(
.data
v: .word 7
.text
  la a0, v
  csrwi region, 1
  lw a1, 0(a0)
  nop
  nop
  addi a2, a1, 1
  csrwi region, 2
  ecall
)", p);
  const auto d1 = c1.regions()[1].snapshot.minus(c1.regions()[0].snapshot);
  const auto d2 = c2.regions()[1].snapshot.minus(c2.regions()[0].snapshot);
  // The padded version retires 2 more instructions in the same cycles.
  EXPECT_EQ(d2.cycles, d1.cycles + 1);
  EXPECT_GT(d1.stall_raw, d2.stall_raw);
}

TEST(SimCore, WritebackPortConflictMulThenAlu) {
  // A 1-cycle ALU op issued 2 cycles after a mul collides on the single
  // RF write port (the paper's LCG structural hazard).
  auto c = run(R"(
  li a0, 3
  li a1, 5
  csrwi region, 1
  mul a2, a0, a1
  addi a3, a0, 1
  addi a4, a0, 2
  addi a5, a0, 3
  csrwi region, 2
  ecall
)");
  const auto d = c.regions()[1].snapshot.minus(c.regions()[0].snapshot);
  EXPECT_GE(d.stall_wb_port, 1u);
  EXPECT_EQ(c.core().reg(12), 15u);
}

TEST(SimCore, TakenBranchPaysPenalty) {
  auto taken = run(R"(
  li a0, 1
  csrwi region, 1
  bnez a0, skip
  nop
skip:
  csrwi region, 2
  ecall
)");
  auto not_taken = run(R"(
  li a0, 0
  csrwi region, 1
  bnez a0, skip
  nop
skip:
  csrwi region, 2
  ecall
)");
  const auto dt = taken.regions()[1].snapshot.minus(taken.regions()[0].snapshot);
  const auto dn = not_taken.regions()[1].snapshot.minus(not_taken.regions()[0].snapshot);
  EXPECT_GT(dt.stall_branch + dt.stall_icache, dn.stall_branch);
}

TEST(SimCore, DmaProgrammableFromCode) {
  auto c = run(R"(
.data
src: .dword 0x1122334455667788
dst: .dword 0
.text
  la a0, src
  dmsrc a0
  la a1, dst
  dmdst a1
  li a2, 8
  dmcpy a3, a2
wait:
  dmstat a4
  bnez a4, wait
  ecall
)");
  EXPECT_EQ(c.memory().load64(c.program().symbol("dst")), 0x1122334455667788ull);
  EXPECT_GT(c.counters().dma_busy_cycles, 0u);
}

TEST(SimCore, EbreakThrows) {
  Cluster cluster(rvasm::assemble("ebreak\n"));
  EXPECT_THROW(cluster.run(), SimError);
}

TEST(SimCore, MaxCyclesGuard) {
  SimParams p;
  p.max_cycles = 100;
  Cluster cluster(rvasm::assemble("spin: j spin\n"), p);
  EXPECT_THROW(cluster.run(), SimError);
}

TEST(SimCore, ScratchCsrReadWrite) {
  auto c = run(R"(
  li a0, 0x5a
  csrw 0x7D0, a0
  csrr a1, 0x7D0
  ecall
)");
  EXPECT_EQ(c.core().reg(11), 0x5Au);
}

TEST(SimCore, BaselineIpcIsBelowOne) {
  // Single-issue: IPC can never exceed 1 without FREP.
  auto c = run(R"(
  li a0, 200
  li a1, 0
loop:
  addi a1, a1, 3
  addi a2, a1, 1
  addi a3, a1, 2
  addi a0, a0, -1
  bnez a0, loop
  ecall
)");
  EXPECT_LE(c.counters().ipc(), 1.0);
  EXPECT_GT(c.counters().ipc(), 0.7);
}

}  // namespace
}  // namespace copift::sim
